// Spatial + network analysis combined — what the paper's Section 2.1
// secondary index is for: "It can support point and range queries on
// spatial databases."
//
//   $ ./build/examples/spatial_analysis
//
// A dispatcher's afternoon: find every intersection inside an incident
// window, find the nearest hospitals to a crash site, and route an
// ambulance there — point/window queries through the Z-order B+ tree and
// R-tree, then network queries over the same CCAM file.

#include <cstdio>

#include "src/core/ccam.h"
#include "src/graph/generator.h"
#include "src/query/search.h"
#include "src/query/spatial.h"

using namespace ccam;

int main() {
  Network city = GenerateMinneapolisLikeMap(404);
  AccessMethodOptions options;
  options.page_size = 1024;
  options.buffer_pool_pages = 8;
  Ccam am(options, CcamCreateMode::kStatic);
  if (!am.Create(city).ok()) return 1;

  auto engine = SpatialQueryEngine::Build(&am);
  if (!engine.ok()) {
    std::fprintf(stderr, "index build failed: %s\n",
                 engine.status().ToString().c_str());
    return 1;
  }
  std::printf("indexed %zu intersections (Z-order B+ tree + R-tree)\n\n",
              (*engine)->NumIndexedNodes());

  // --- 1. A water main burst: which intersections are inside the
  //        affected window?
  auto window = (*engine)->WindowQuery(800, 800, 1400, 1400);
  if (!window.ok()) return 1;
  std::printf("incident window [800,1400]^2: %zu intersections affected\n",
              window->records.size());
  std::printf("  Z-scan inspected %llu index entries with %llu BIGMIN "
              "jumps; fetching the records cost %llu data-page accesses\n\n",
              static_cast<unsigned long long>(window->entries_scanned),
              static_cast<unsigned long long>(window->bigmin_jumps),
              static_cast<unsigned long long>(window->data_page_accesses));

  // --- 2. A crash at (2000, 2100): the three nearest hospitals.
  //        (Any intersection doubles as a hospital for the demo.)
  const double crash_x = 2000, crash_y = 2100;
  auto hospitals = (*engine)->NearestNeighbors(crash_x, crash_y, 3);
  if (!hospitals.ok()) return 1;
  std::printf("crash at (%.0f, %.0f); nearest facilities:\n", crash_x,
              crash_y);
  for (const NodeRecord& rec : hospitals->records) {
    std::printf("  node %u at (%.0f, %.0f)\n", rec.id, rec.x, rec.y);
  }

  // --- 3. Route the ambulance from the nearest facility to the crash
  //        site's nearest intersection.
  auto site = (*engine)->NearestNeighbors(crash_x, crash_y, 1);
  if (!site.ok() || site->records.empty()) return 1;
  NodeId from = hospitals->records[1].id;  // second nearest: first is on site
  NodeId to = site->records[0].id;
  auto route = ShortestPathAStar(&am, from, to);
  if (!route.ok()) return 1;
  if (route->Found()) {
    std::printf("\nambulance route %u -> %u: %.1f s over %zu hops, %llu "
                "data-page accesses\n",
                from, to, route->cost, route->path.size() - 1,
                static_cast<unsigned long long>(route->page_accesses));
  } else {
    std::printf("\nno route from %u to %u (one-way maze?)\n", from, to);
  }
  return 0;
}
