// Living with change: maintenance operations and reorganization policies.
//
//   $ ./build/examples/dynamic_network
//
// A season of city works hits the road network: street closures (edge
// deletes), a new subdivision (node inserts), demolitions (node deletes).
// The same update stream is applied under the paper's three reorganization
// policies (Table 1), tracking the I/O paid per update and the CRR the
// file retains — the trade-off at the heart of the paper's Section 4.4.

#include <cstdio>
#include <vector>

#include "src/common/random.h"
#include "src/core/ccam.h"
#include "src/graph/generator.h"

using namespace ccam;

namespace {

struct Outcome {
  double avg_io;
  double crr;
  size_t pages;
};

Outcome RunSeason(ReorgPolicy policy) {
  Network city = GenerateMinneapolisLikeMap(33);
  AccessMethodOptions options;
  options.page_size = 1024;
  options.buffer_pool_pages = 8;
  Ccam am(options, CcamCreateMode::kStatic);
  if (!am.Create(city).ok()) return {};

  // Mirror the logical network so we can measure CRR afterwards.
  Network current = city;
  Random rng(9);
  uint64_t io = 0;
  int updates = 0;
  auto charge = [&](const Status& s) {
    if (!s.ok()) {
      std::fprintf(stderr, "update failed: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    io += am.DataIoStats().Accesses();
    ++updates;
  };

  // --- 60 street closures. ---------------------------------------------
  for (int i = 0; i < 60; ++i) {
    auto edges = current.Edges();
    const auto& e = edges[rng.Uniform(static_cast<uint32_t>(edges.size()))];
    am.ResetIoStats();
    charge(am.DeleteEdge(e.from, e.to, policy));
    (void)current.RemoveEdge(e.from, e.to);
  }

  // --- A new 30-lot subdivision, wired to the nearest intersections. ----
  for (NodeId lot = 5000; lot < 5030; ++lot) {
    NodeId anchor = rng.Uniform(1000);
    if (!current.HasNode(anchor)) continue;
    NodeRecord rec;
    rec.id = lot;
    rec.x = current.node(anchor).x + 5.0 + (lot % 3);
    rec.y = current.node(anchor).y + 5.0;
    rec.payload = "lot";
    rec.succ = {{anchor, 15.0f}};
    rec.pred = {{anchor, 15.0f}};
    if (lot > 5000 && current.HasNode(lot - 1)) {
      rec.succ.push_back({lot - 1, 5.0f});
      rec.pred.push_back({lot - 1, 5.0f});
    }
    am.ResetIoStats();
    charge(am.InsertNode(rec, policy));
    (void)current.AddNode(lot, rec.x, rec.y, rec.payload);
    for (const AdjEntry& e : rec.succ) {
      if (current.HasNode(e.node)) (void)current.AddEdge(lot, e.node, e.cost);
    }
    for (const AdjEntry& e : rec.pred) {
      if (current.HasNode(e.node)) (void)current.AddEdge(e.node, lot, e.cost);
    }
  }

  // --- 40 demolitions. ----------------------------------------------------
  for (int i = 0; i < 40; ++i) {
    auto ids = current.NodeIds();
    NodeId victim = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
    am.ResetIoStats();
    charge(am.DeleteNode(victim, policy));
    (void)current.RemoveNode(victim);
  }

  Outcome out;
  out.avg_io = static_cast<double>(io) / updates;
  out.crr = ComputeCrr(current, am.PageMap());
  out.pages = am.NumDataPages();
  return out;
}

}  // namespace

int main() {
  std::printf("A season of updates (60 closures, 30 new lots, 40 "
              "demolitions) under each reorganization policy:\n\n");
  std::printf("%-14s %12s %8s %8s\n", "policy", "avg io/op", "CRR", "pages");
  for (ReorgPolicy policy :
       {ReorgPolicy::kFirstOrder, ReorgPolicy::kSecondOrder,
        ReorgPolicy::kHigherOrder}) {
    Outcome out = RunSeason(policy);
    std::printf("%-14s %12.2f %8.3f %8zu\n", ReorgPolicyName(policy),
                out.avg_io, out.crr, out.pages);
  }
  std::printf(
      "\nThe paper's conclusion (Section 4.4): second-order is the sweet "
      "spot — I/O close to first-order, CRR competitive with "
      "higher-order.\n");
  return 0;
}
