// Route planning for daily commuters — the paper's IVHS motivating
// scenario (Section 1.1): travelers compare a set of familiar routes
// between origin and destination on current travel times, and the
// navigation system also offers a computed shortest path.
//
//   $ ./build/examples/route_planning
//
// Shows route-evaluation queries (Find + Get-A-successor chains) and
// A*/Dijkstra search running over the paged CCAM file, with the data-page
// I/O each query cost.

#include <cstdio>

#include "src/core/ccam.h"
#include "src/graph/generator.h"
#include "src/graph/route.h"
#include "src/query/route_eval.h"
#include "src/query/search.h"

using namespace ccam;

int main() {
  // A Minneapolis-scale road map (synthetic; see DESIGN.md).
  Network city = GenerateMinneapolisLikeMap(2026);
  std::printf("city map: %zu intersections, %zu road segments\n",
              city.NumNodes(), city.NumEdges());

  AccessMethodOptions options;
  options.page_size = 2048;
  options.buffer_pool_pages = 4;  // a car navigator has little RAM
  Ccam am(options, CcamCreateMode::kStatic);
  if (!am.Create(city).ok()) return 1;
  std::printf("CCAM file ready: %zu pages, CRR %.3f\n\n", am.NumDataPages(),
              ComputeCrr(city, am.PageMap()));

  // --- The commuter's three familiar routes home. ------------------------
  // (Generated as random walks from the same origin for the demo.)
  auto candidates = GenerateRandomWalkRoutes(city, 3, 25, 7);
  std::printf("evaluating %zu candidate routes (route evaluation query):\n",
              candidates.size());
  double best_cost = 1e300;
  size_t best = 0;
  for (size_t i = 0; i < candidates.size(); ++i) {
    (void)am.buffer_pool()->Reset();
    auto eval = EvaluateRoute(&am, candidates[i]);
    if (!eval.ok()) {
      std::fprintf(stderr, "  route %zu failed: %s\n", i,
                   eval.status().ToString().c_str());
      continue;
    }
    std::printf("  route %zu: %2zu hops, travel time %7.1f s, %llu page "
                "accesses\n",
                i, eval->num_edges, eval->total_cost,
                static_cast<unsigned long long>(eval->page_accesses));
    if (eval->total_cost < best_cost) {
      best_cost = eval->total_cost;
      best = i;
    }
  }
  std::printf("  -> commuter picks route %zu (%.1f s)\n\n", best, best_cost);

  // --- Can the planner beat the familiar routes? --------------------------
  NodeId origin = candidates[best].nodes.front();
  NodeId destination = candidates[best].nodes.back();
  auto dijkstra = ShortestPathDijkstra(&am, origin, destination);
  auto astar = ShortestPathAStar(&am, origin, destination);
  if (!dijkstra.ok() || !astar.ok()) return 1;
  std::printf("shortest path %u -> %u:\n", origin, destination);
  std::printf("  Dijkstra: cost %.1f s, %zu nodes expanded, %llu page "
              "accesses\n",
              dijkstra->cost, dijkstra->nodes_expanded,
              static_cast<unsigned long long>(dijkstra->page_accesses));
  std::printf("  A*      : cost %.1f s, %zu nodes expanded, %llu page "
              "accesses\n",
              astar->cost, astar->nodes_expanded,
              static_cast<unsigned long long>(astar->page_accesses));
  std::printf("  planner saves %.1f s over the familiar route\n\n",
              best_cost - dijkstra->cost);

  // --- Rush hour: congestion doubles a segment's travel time. ------------
  if (dijkstra->path.size() >= 2) {
    NodeId u = dijkstra->path[0];
    NodeId v = dijkstra->path[1];
    float cost;
    if (city.EdgeCost(u, v, &cost).ok()) {
      // The IVHS database updates the current travel time.
      if (am.DeleteEdge(u, v, ReorgPolicy::kFirstOrder).ok() &&
          am.InsertEdge(u, v, cost * 4.0f, ReorgPolicy::kFirstOrder).ok()) {
        auto rerouted = ShortestPathDijkstra(&am, origin, destination);
        if (rerouted.ok()) {
          std::printf("congestion on (%u,%u): replanned cost %.1f s "
                      "(was %.1f s)\n",
                      u, v, rerouted->cost, dijkstra->cost);
        }
      }
    }
  }
  return 0;
}
