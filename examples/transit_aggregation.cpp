// Aggregate queries over route-units — the paper's transit/utility
// scenario (Section 1.1): "managers of public transit may like to compare
// ridership on different bus routes to determine the number of buses to be
// allocated"; utilities track flow through pipeline route-units.
//
//   $ ./build/examples/transit_aggregation
//
// Builds bus-line route-units over the road map, stores the network with
// CCAM *clustered by the access weights those lines induce* (the WCRR
// case), and runs route-unit aggregation, tour evaluation and
// location-allocation queries — comparing the I/O against a BFS-ordered
// file to show what connectivity clustering buys.

#include <cstdio>

#include "src/baseline/order_am.h"
#include "src/core/ccam.h"
#include "src/graph/generator.h"
#include "src/graph/route.h"
#include "src/query/aggregate.h"

using namespace ccam;

int main() {
  Network city = GenerateMinneapolisLikeMap(77);

  // --- 1. The transit agency operates 8 bus lines. ----------------------
  auto lines = GenerateRandomWalkRoutes(city, 8, 35, 5);
  std::vector<RouteUnit> bus_lines;
  for (size_t i = 0; i < lines.size(); ++i) {
    RouteUnit unit;
    unit.name = "bus line " + std::to_string(i + 1);
    for (size_t k = 0; k + 1 < lines[i].nodes.size(); ++k) {
      unit.edges.emplace_back(lines[i].nodes[k], lines[i].nodes[k + 1]);
    }
    bus_lines.push_back(std::move(unit));
  }
  // The lines define the access pattern: weight edges by how many lines
  // traverse them, and cluster for WCRR.
  DeriveEdgeWeightsFromRoutes(&city, lines);

  AccessMethodOptions options;
  options.page_size = 2048;
  options.buffer_pool_pages = 4;
  options.use_access_weights = true;  // maximize WCRR, not CRR
  Ccam ccam_file(options, CcamCreateMode::kStatic);
  if (!ccam_file.Create(city).ok()) return 1;

  AccessMethodOptions bfs_options = options;
  bfs_options.use_access_weights = false;
  OrderAm bfs_file(bfs_options, NodeOrderKind::kBfs);
  if (!bfs_file.Create(city).ok()) return 1;

  std::printf("WCRR: CCAM %.3f vs BFS-AM %.3f\n\n",
              ComputeWcrr(city, ccam_file.PageMap()),
              ComputeWcrr(city, bfs_file.PageMap()));

  // --- 2. Quarterly report: aggregate every line on both files. ---------
  std::printf("%-12s %8s %10s %10s   %s\n", "line", "stops", "length(s)",
              "io(CCAM)", "io(BFS-AM)");
  uint64_t total_ccam = 0, total_bfs = 0;
  for (const RouteUnit& unit : bus_lines) {
    (void)ccam_file.buffer_pool()->Reset();
    (void)bfs_file.buffer_pool()->Reset();
    auto a = AggregateRouteUnit(&ccam_file, unit);
    auto b = AggregateRouteUnit(&bfs_file, unit);
    if (!a.ok() || !b.ok()) return 1;
    std::printf("%-12s %8zu %10.1f %10llu   %llu\n", unit.name.c_str(),
                a->num_nodes, a->total_edge_cost,
                static_cast<unsigned long long>(a->page_accesses),
                static_cast<unsigned long long>(b->page_accesses));
    total_ccam += a->page_accesses;
    total_bfs += b->page_accesses;
  }
  std::printf("total data-page accesses: CCAM %llu, BFS-AM %llu (%.1fx)\n\n",
              static_cast<unsigned long long>(total_ccam),
              static_cast<unsigned long long>(total_bfs),
              static_cast<double>(total_bfs) / total_ccam);

  // --- 3. A circular sightseeing shuttle: tour evaluation. --------------
  // Walk out and back along a bidirectional stretch of line 1.
  Route tour;
  const Route& line = lines[0];
  size_t half = 6;
  for (size_t i = 0; i <= half; ++i) tour.nodes.push_back(line.nodes[i]);
  for (size_t i = half; i-- > 1;) tour.nodes.push_back(line.nodes[i]);
  auto tour_eval = EvaluateTour(&ccam_file, tour);
  if (tour_eval.ok()) {
    std::printf("shuttle tour: %zu segments, round-trip %.1f s, %llu page "
                "accesses\n\n",
                tour_eval->num_edges, tour_eval->total_cost,
                static_cast<unsigned long long>(tour_eval->page_accesses));
  } else {
    std::printf("shuttle tour skipped (%s)\n\n",
                tour_eval.status().ToString().c_str());
  }

  // --- 4. Where to put two new bus depots? Location-allocation. ---------
  std::vector<NodeId> depots{100, 900};
  std::vector<NodeId> stops;
  for (const RouteUnit& unit : bus_lines) {
    for (const auto& [u, v] : unit.edges) stops.push_back(u);
  }
  auto alloc = EvaluateLocationAllocation(&ccam_file, depots, stops);
  if (!alloc.ok()) return 1;
  std::printf("depot allocation: %zu stops served (%zu unreachable), avg "
              "deadhead %.1f s, worst %.1f s, %llu page accesses\n",
              alloc->num_served, alloc->num_unserved,
              alloc->total_cost / alloc->num_served, alloc->max_cost,
              static_cast<unsigned long long>(alloc->page_accesses));
  return 0;
}
