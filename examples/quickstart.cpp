// Quickstart: build a small road network, store it in CCAM, and run the
// basic operations.
//
//   $ ./build/examples/quickstart
//
// Walks through: constructing a Network, creating a CCAM file, Find(),
// Get-successors(), Get-A-successor(), an insert and a delete, and the
// CRR / I/O numbers that make connectivity clustering worthwhile.

#include <cstdio>

#include "src/core/ccam.h"
#include "src/graph/network.h"

using namespace ccam;  // examples only; library code never does this

int main() {
  // --- 1. Model a toy downtown: a 3x3 grid of intersections. -----------
  Network net;
  for (NodeId id = 0; id < 9; ++id) {
    double x = (id % 3) * 100.0;
    double y = (id / 3) * 100.0;
    if (!net.AddNode(id, x, y, "intersection").ok()) return 1;
  }
  // Two-way streets along the grid; cost = travel time in seconds.
  auto street = [&](NodeId u, NodeId v, float seconds) {
    return net.AddBidirectionalEdge(u, v, seconds).ok();
  };
  for (NodeId r = 0; r < 3; ++r) {
    for (NodeId c = 0; c < 2; ++c) {
      if (!street(r * 3 + c, r * 3 + c + 1, 30.0f)) return 1;  // east-west
      if (!street(c * 3 + r, (c + 1) * 3 + r, 45.0f)) return 1;  // north-south
    }
  }
  std::printf("network: %zu nodes, %zu directed edges\n", net.NumNodes(),
              net.NumEdges());

  // --- 2. Create the CCAM file. -----------------------------------------
  AccessMethodOptions options;
  options.page_size = 512;            // disk block size
  options.buffer_pool_pages = 4;      // data buffer pool
  options.maintain_bptree_index = true;
  Ccam am(options, CcamCreateMode::kStatic);
  Status s = am.Create(net);
  if (!s.ok()) {
    std::fprintf(stderr, "create failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("CCAM file: %zu data pages, CRR = %.3f\n", am.NumDataPages(),
              ComputeCrr(net, am.PageMap()));

  // --- 3. Find() a node record. ------------------------------------------
  auto rec = am.Find(4);  // the center intersection
  if (!rec.ok()) return 1;
  std::printf("Find(4): (%.0f, %.0f) with %zu successors\n", rec->x, rec->y,
              rec->succ.size());

  // --- 4. Get-successors(): most are co-paged, so the I/O stays tiny. ----
  am.ResetIoStats();
  auto successors = am.GetSuccessors(4);
  if (!successors.ok()) return 1;
  std::printf("Get-successors(4): %zu records, %llu extra page accesses\n",
              successors->size(),
              static_cast<unsigned long long>(am.DataIoStats().Accesses()));

  // --- 5. Get-A-successor(): a route-evaluation hop. ----------------------
  am.ResetIoStats();
  auto hop = am.GetASuccessor(4, 5);
  if (!hop.ok()) return 1;
  std::printf("Get-A-successor(4 -> 5): %llu page accesses (buffered page "
              "checked first)\n",
              static_cast<unsigned long long>(am.DataIoStats().Accesses()));

  // --- 6. Maintenance: a new building connects to the center. ------------
  NodeRecord newcomer;
  newcomer.id = 100;
  newcomer.x = 150.0;
  newcomer.y = 150.0;
  newcomer.payload = "parking garage";
  newcomer.succ = {{4, 20.0f}};
  newcomer.pred = {{4, 20.0f}};
  s = am.InsertNode(newcomer, ReorgPolicy::kSecondOrder);
  if (!s.ok()) return 1;
  std::printf("inserted node 100; CRR now %.3f\n",
              ComputeCrr(net, am.PageMap()));  // note: net lacks node 100

  s = am.DeleteNode(100, ReorgPolicy::kSecondOrder);
  if (!s.ok()) return 1;
  std::printf("deleted node 100; file holds %zu records again\n",
              am.PageMap().size());

  std::printf("done.\n");
  return 0;
}
