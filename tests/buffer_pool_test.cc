#include "src/storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>

namespace ccam {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : disk_(64), pool_(&disk_, 3) {}

  PageId NewFormattedPage(char fill) {
    PageId id;
    char* data = nullptr;
    EXPECT_TRUE(pool_.NewPage(&id, &data).ok());
    std::memset(data, fill, 64);
    EXPECT_TRUE(pool_.UnpinPage(id, true).ok());
    return id;
  }

  DiskManager disk_;
  BufferPool pool_;
};

TEST_F(BufferPoolTest, NewPageRequiresNoRead) {
  NewFormattedPage('a');
  EXPECT_EQ(disk_.stats().reads, 0u);
}

TEST_F(BufferPoolTest, FetchHitAvoidsDiskRead) {
  PageId p = NewFormattedPage('a');
  uint64_t reads0 = disk_.stats().reads;
  auto res = pool_.FetchPage(p);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ((*res)[0], 'a');
  EXPECT_EQ(disk_.stats().reads, reads0);  // still buffered
  EXPECT_EQ(pool_.hits(), 1u);
  (void)pool_.UnpinPage(p, false);
}

TEST_F(BufferPoolTest, LruEvictionOrder) {
  PageId a = NewFormattedPage('a');
  PageId b = NewFormattedPage('b');
  PageId c = NewFormattedPage('c');
  EXPECT_EQ(pool_.NumBuffered(), 3u);
  // Touch a so b becomes the LRU.
  auto res = pool_.FetchPage(a);
  ASSERT_TRUE(res.ok());
  (void)pool_.UnpinPage(a, false);
  // Fourth page evicts b.
  PageId d = NewFormattedPage('d');
  EXPECT_TRUE(pool_.Contains(a));
  EXPECT_FALSE(pool_.Contains(b));
  EXPECT_TRUE(pool_.Contains(c));
  EXPECT_TRUE(pool_.Contains(d));
}

TEST_F(BufferPoolTest, DirtyEvictionWritesBack) {
  PageId a = NewFormattedPage('a');
  uint64_t writes0 = disk_.stats().writes;
  NewFormattedPage('b');
  NewFormattedPage('c');
  NewFormattedPage('d');  // evicts a (dirty) -> one write
  EXPECT_FALSE(pool_.Contains(a));
  EXPECT_GE(disk_.stats().writes, writes0 + 1);
  // Re-fetch reads the written contents from disk.
  auto res = pool_.FetchPage(a);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ((*res)[0], 'a');
  (void)pool_.UnpinPage(a, false);
}

TEST_F(BufferPoolTest, CleanEvictionSkipsWrite) {
  PageId a = NewFormattedPage('a');
  ASSERT_TRUE(pool_.FlushPage(a).ok());  // now clean
  uint64_t writes0 = disk_.stats().writes;
  NewFormattedPage('b');
  NewFormattedPage('c');
  NewFormattedPage('d');
  EXPECT_FALSE(pool_.Contains(a));
  EXPECT_EQ(disk_.stats().writes, writes0);
}

TEST_F(BufferPoolTest, PinnedPagesAreNotEvicted) {
  PageId a;
  char* data = nullptr;
  ASSERT_TRUE(pool_.NewPage(&a, &data).ok());  // keep pinned
  NewFormattedPage('b');
  NewFormattedPage('c');
  NewFormattedPage('d');  // must evict b or c, not a
  EXPECT_TRUE(pool_.Contains(a));
  (void)pool_.UnpinPage(a, true);
}

TEST_F(BufferPoolTest, AllPinnedFails) {
  PageId p1, p2, p3, p4;
  char* d = nullptr;
  ASSERT_TRUE(pool_.NewPage(&p1, &d).ok());
  ASSERT_TRUE(pool_.NewPage(&p2, &d).ok());
  ASSERT_TRUE(pool_.NewPage(&p3, &d).ok());
  EXPECT_TRUE(pool_.NewPage(&p4, &d).IsNoSpace());
  (void)pool_.UnpinPage(p1, false);
  EXPECT_TRUE(pool_.NewPage(&p4, &d).ok());
  (void)pool_.UnpinPage(p4, true);
  (void)pool_.UnpinPage(p2, true);
  (void)pool_.UnpinPage(p3, true);
}

TEST_F(BufferPoolTest, UnpinErrors) {
  EXPECT_TRUE(pool_.UnpinPage(99, false).IsInvalidArgument());
  PageId a = NewFormattedPage('a');
  EXPECT_TRUE(pool_.UnpinPage(a, false).IsInvalidArgument());  // already 0
}

TEST_F(BufferPoolTest, PinCountNesting) {
  PageId a = NewFormattedPage('a');
  auto r1 = pool_.FetchPage(a);
  auto r2 = pool_.FetchPage(a);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(pool_.PinCount(a), 2);
  (void)pool_.UnpinPage(a, false);
  EXPECT_EQ(pool_.PinCount(a), 1);
  (void)pool_.UnpinPage(a, false);
  EXPECT_EQ(pool_.PinCount(a), 0);
}

TEST_F(BufferPoolTest, FlushAllClearsDirtyBits) {
  PageId a = NewFormattedPage('a');
  PageId b = NewFormattedPage('b');
  uint64_t writes0 = disk_.stats().writes;
  ASSERT_TRUE(pool_.FlushAll().ok());
  EXPECT_EQ(disk_.stats().writes, writes0 + 2);
  ASSERT_TRUE(pool_.FlushAll().ok());  // second flush: nothing dirty
  EXPECT_EQ(disk_.stats().writes, writes0 + 2);
  (void)a;
  (void)b;
}

TEST_F(BufferPoolTest, ResetFlushesAndEmpties) {
  PageId a = NewFormattedPage('a');
  ASSERT_TRUE(pool_.Reset().ok());
  EXPECT_EQ(pool_.NumBuffered(), 0u);
  auto res = pool_.FetchPage(a);  // re-read from disk
  ASSERT_TRUE(res.ok());
  EXPECT_EQ((*res)[0], 'a');
  (void)pool_.UnpinPage(a, false);
}

TEST_F(BufferPoolTest, DiscardDropsWithoutWriting) {
  PageId a = NewFormattedPage('a');
  ASSERT_TRUE(pool_.FlushPage(a).ok());
  // Dirty it again, then discard: the change must be lost.
  auto res = pool_.FetchPage(a);
  ASSERT_TRUE(res.ok());
  (*res)[0] = 'Z';
  (void)pool_.UnpinPage(a, true);
  pool_.Discard(a);
  EXPECT_FALSE(pool_.Contains(a));
  auto res2 = pool_.FetchPage(a);
  ASSERT_TRUE(res2.ok());
  EXPECT_EQ((*res2)[0], 'a');
  (void)pool_.UnpinPage(a, false);
}

TEST(PageGuardTest, GuardsPinAndUnpin) {
  DiskManager disk(64);
  BufferPool pool(&disk, 2);
  PageId p;
  char* data = nullptr;
  ASSERT_TRUE(pool.NewPage(&p, &data).ok());
  data[0] = 'g';
  ASSERT_TRUE(pool.UnpinPage(p, true).ok());
  {
    PageGuard guard(&pool, p);
    ASSERT_TRUE(guard.ok());
    EXPECT_EQ(guard.data()[0], 'g');
    EXPECT_EQ(pool.PinCount(p), 1);
    guard.data()[0] = 'h';
    guard.MarkDirty();
  }
  EXPECT_EQ(pool.PinCount(p), 0);
  ASSERT_TRUE(pool.FlushPage(p).ok());
  char buf[64];
  ASSERT_TRUE(disk.ReadPage(p, buf).ok());
  EXPECT_EQ(buf[0], 'h');
}

TEST(PageGuardTest, MoveTransfersOwnership) {
  DiskManager disk(64);
  BufferPool pool(&disk, 2);
  PageId p;
  char* data = nullptr;
  ASSERT_TRUE(pool.NewPage(&p, &data).ok());
  ASSERT_TRUE(pool.UnpinPage(p, true).ok());
  PageGuard a(&pool, p);
  ASSERT_TRUE(a.ok());
  PageGuard b(std::move(a));
  EXPECT_FALSE(a.ok());
  EXPECT_TRUE(b.ok());
  EXPECT_EQ(pool.PinCount(p), 1);
  b.Release();
  EXPECT_EQ(pool.PinCount(p), 0);
}

TEST(PageGuardTest, DoubleReleaseIsIdempotent) {
  DiskManager disk(64);
  BufferPool pool(&disk, 2);
  PageId p;
  char* data = nullptr;
  ASSERT_TRUE(pool.NewPage(&p, &data).ok());
  ASSERT_TRUE(pool.UnpinPage(p, true).ok());
  PageGuard guard(&pool, p);
  ASSERT_TRUE(guard.ok());
  guard.Release();
  EXPECT_FALSE(guard.ok());
  EXPECT_EQ(pool.PinCount(p), 0);
  guard.Release();  // second release must not double-unpin
  EXPECT_EQ(pool.PinCount(p), 0);
}

TEST(PageGuardTest, MovedFromGuardIsInert) {
  DiskManager disk(64);
  BufferPool pool(&disk, 2);
  PageId p;
  char* data = nullptr;
  ASSERT_TRUE(pool.NewPage(&p, &data).ok());
  ASSERT_TRUE(pool.UnpinPage(p, true).ok());
  {
    PageGuard a(&pool, p);
    PageGuard b(std::move(a));
    a.Release();  // releasing the moved-from shell does nothing
    EXPECT_EQ(pool.PinCount(p), 1);
  }  // both destroyed: exactly one unpin
  EXPECT_EQ(pool.PinCount(p), 0);
}

TEST(PageGuardTest, MoveAssignOverLiveGuardReleasesTarget) {
  DiskManager disk(64);
  BufferPool pool(&disk, 4);
  PageId p, q;
  char* data = nullptr;
  ASSERT_TRUE(pool.NewPage(&p, &data).ok());
  ASSERT_TRUE(pool.UnpinPage(p, true).ok());
  ASSERT_TRUE(pool.NewPage(&q, &data).ok());
  ASSERT_TRUE(pool.UnpinPage(q, true).ok());
  PageGuard a(&pool, p);
  PageGuard b(&pool, q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  b = std::move(a);  // must unpin q, take over p's pin
  EXPECT_EQ(pool.PinCount(p), 1);
  EXPECT_EQ(pool.PinCount(q), 0);
  EXPECT_EQ(b.id(), p);
  b.Release();
  EXPECT_EQ(pool.PinCount(p), 0);
}

TEST(PageGuardTest, DestructionAfterPoolResetIsHarmless) {
  DiskManager disk(64);
  BufferPool pool(&disk, 2);
  PageId p;
  char* data = nullptr;
  ASSERT_TRUE(pool.NewPage(&p, &data).ok());
  ASSERT_TRUE(pool.UnpinPage(p, true).ok());
  {
    PageGuard guard(&pool, p);
    ASSERT_TRUE(guard.ok());
    // The guard still holds a pin, so Reset()'s flush sees a pinned frame;
    // release the pin state out from under the guard via Discard-free path:
    // unpin manually, then Reset, then let the guard destruct.
    ASSERT_TRUE(pool.UnpinPage(p, false).ok());
    ASSERT_TRUE(pool.Reset().ok());
    EXPECT_EQ(pool.NumBuffered(), 0u);
  }  // guard dtor unpins an unbuffered page: swallowed, no crash
  EXPECT_EQ(pool.NumBuffered(), 0u);
}

TEST(PageGuardTest, ChargesIoOnlyOnMiss) {
  DiskManager disk(64);
  BufferPool pool(&disk, 2);
  PageId p;
  char* data = nullptr;
  ASSERT_TRUE(pool.NewPage(&p, &data).ok());
  ASSERT_TRUE(pool.UnpinPage(p, true).ok());
  ASSERT_TRUE(pool.Reset().ok());  // p now on disk only
  IoStats io;
  {
    PageGuard miss(&pool, p, &io);
    ASSERT_TRUE(miss.ok());
  }
  EXPECT_EQ(io.reads, 1u);
  {
    PageGuard hit(&pool, p, &io);
    ASSERT_TRUE(hit.ok());
  }
  EXPECT_EQ(io.reads, 1u);  // hit: no charge
}

TEST(ShardedBufferPoolTest, SmallPoolsCollapseToOneShard) {
  // Every paper experiment uses pools of at most a few pages; they must
  // keep the classic single-shard replacement behavior.
  EXPECT_EQ(BufferPool::AutoShardCount(1), 1u);
  EXPECT_EQ(BufferPool::AutoShardCount(8), 1u);
  EXPECT_EQ(BufferPool::AutoShardCount(15), 1u);
  DiskManager disk(64);
  BufferPool pool(&disk, 8);
  EXPECT_EQ(pool.num_shards(), 1u);
}

TEST(ShardedBufferPoolTest, ExplicitShardsSplitCapacity) {
  DiskManager disk(64);
  BufferPool pool(&disk, 32, ReplacementPolicy::kLru, 4);
  EXPECT_EQ(pool.num_shards(), 4u);
  EXPECT_EQ(pool.capacity(), 32u);
  // All pages fetchable; counters aggregate across shards.
  std::vector<PageId> ids;
  for (int i = 0; i < 32; ++i) ids.push_back(*disk.AllocatePage());
  for (PageId id : ids) {
    auto res = pool.FetchPage(id);
    ASSERT_TRUE(res.ok());
    ASSERT_TRUE(pool.UnpinPage(id, false).ok());
  }
  EXPECT_EQ(pool.misses(), 32u);
  EXPECT_EQ(pool.hits(), 0u);
  EXPECT_EQ(pool.NumBuffered(), 32u);
  for (PageId id : ids) {
    auto res = pool.FetchPage(id);
    ASSERT_TRUE(res.ok());
    ASSERT_TRUE(pool.UnpinPage(id, false).ok());
  }
  EXPECT_EQ(pool.hits(), 32u);
}

TEST(ShardedBufferPoolTest, ShardCountClampedToCapacity) {
  DiskManager disk(64);
  BufferPool pool(&disk, 2, ReplacementPolicy::kLru, 16);
  EXPECT_EQ(pool.num_shards(), 2u);
}

TEST(ShardedBufferPoolTest, TrackedFetchReportsMiss) {
  DiskManager disk(64);
  BufferPool pool(&disk, 4);
  PageId p = *disk.AllocatePage();
  bool was_miss = false;
  auto res = pool.FetchPage(p, &was_miss);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(was_miss);
  ASSERT_TRUE(pool.UnpinPage(p, false).ok());
  res = pool.FetchPage(p, &was_miss);
  ASSERT_TRUE(res.ok());
  EXPECT_FALSE(was_miss);
  ASSERT_TRUE(pool.UnpinPage(p, false).ok());
}

}  // namespace
}  // namespace ccam
