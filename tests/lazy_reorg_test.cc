#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "src/common/random.h"
#include "src/core/ccam.h"
#include "src/graph/generator.h"
#include "src/storage/snapshot_manager.h"

namespace ccam {
namespace {

AccessMethodOptions Opts() {
  AccessMethodOptions options;
  options.page_size = 1024;
  options.buffer_pool_pages = 8;
  return options;
}

/// Runs an identical update stream and returns (#lazy reorgs, final CRR,
/// total update I/O).
struct StreamResult {
  uint64_t lazy_reorgs;
  double crr;
  uint64_t io;
};

StreamResult RunStream(int lazy_threshold, int n_ops) {
  Network net = GenerateMinneapolisLikeMap(808);
  Ccam am(Opts(), CcamCreateMode::kStatic);
  EXPECT_TRUE(am.Create(net).ok());
  if (lazy_threshold > 0) am.EnableLazyReorganization(lazy_threshold);

  Network current = net;
  Random rng(11);
  am.ResetIoStats();
  for (int i = 0; i < n_ops; ++i) {
    auto edges = current.Edges();
    const auto& e = edges[rng.Uniform(static_cast<uint32_t>(edges.size()))];
    if (i % 2 == 0) {
      EXPECT_TRUE(am.DeleteEdge(e.from, e.to, ReorgPolicy::kFirstOrder).ok());
      EXPECT_TRUE(current.RemoveEdge(e.from, e.to).ok());
    } else {
      // Re-wire: connect two random nodes.
      auto ids = current.NodeIds();
      NodeId u = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
      NodeId v = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
      if (u == v || current.HasEdge(u, v)) continue;
      EXPECT_TRUE(am.InsertEdge(u, v, 9.0f, ReorgPolicy::kFirstOrder).ok());
      EXPECT_TRUE(current.AddEdge(u, v, 9.0f).ok());
    }
  }
  EXPECT_TRUE(am.CheckFileInvariants().ok());
  return {am.LazyReorgCount(), ComputeCrr(current, am.PageMap()),
          am.DataIoStats().Accesses()};
}

TEST(LazyReorgTest, DisabledByDefault) {
  StreamResult r = RunStream(0, 100);
  EXPECT_EQ(r.lazy_reorgs, 0u);
}

TEST(LazyReorgTest, TriggersAfterThresholdUpdates) {
  StreamResult r = RunStream(4, 200);
  EXPECT_GT(r.lazy_reorgs, 0u);
}

TEST(LazyReorgTest, HigherThresholdTriggersLess) {
  StreamResult aggressive = RunStream(3, 200);
  StreamResult relaxed = RunStream(12, 200);
  EXPECT_GT(aggressive.lazy_reorgs, relaxed.lazy_reorgs);
}

TEST(LazyReorgTest, LazyCostsMoreIoButKeepsFileValid) {
  StreamResult plain = RunStream(0, 200);
  StreamResult lazy = RunStream(4, 200);
  // The deferred reorganizations pay extra I/O relative to first-order...
  EXPECT_GT(lazy.io, plain.io);
  // ...and both CRRs remain sane.
  EXPECT_GE(lazy.crr, 0.0);
  EXPECT_LE(lazy.crr, 1.0);
}

TEST(LazyReorgTest, LazyImprovesCrrOnInsertionStream) {
  // The Figure 7 scenario: insert 15% of the nodes under first-order,
  // with and without lazy reclustering on top.
  Network net = GenerateMinneapolisLikeMap(909);
  Random rng(3);
  std::vector<NodeId> ids = net.NodeIds();
  rng.Shuffle(&ids);
  size_t n_insert = net.NumNodes() * 3 / 20;
  std::vector<NodeId> stream(ids.begin(), ids.begin() + n_insert);
  std::vector<NodeId> base_ids(ids.begin() + n_insert, ids.end());
  Network base = net.InducedSubnetwork(base_ids);

  double crr[2];
  for (int use_lazy = 0; use_lazy < 2; ++use_lazy) {
    Ccam am(Opts(), CcamCreateMode::kStatic);
    ASSERT_TRUE(am.Create(base).ok());
    if (use_lazy) am.EnableLazyReorganization(5);
    for (NodeId id : stream) {
      NodeRecord rec = NodeRecord::FromNetworkNode(id, net.node(id));
      ASSERT_TRUE(am.InsertNode(rec, ReorgPolicy::kFirstOrder).ok());
    }
    ASSERT_TRUE(am.CheckFileInvariants().ok());
    crr[use_lazy] = ComputeCrr(net, am.PageMap());
  }
  EXPECT_GT(crr[1], crr[0]);
}

TEST(LazyReorgTest, DisableStopsFurtherReorgs) {
  Network net = GenerateMinneapolisLikeMap(808);
  Ccam am(Opts(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  am.EnableLazyReorganization(2);
  auto edges = net.Edges();
  ASSERT_TRUE(
      am.DeleteEdge(edges[0].from, edges[0].to, ReorgPolicy::kFirstOrder)
          .ok());
  am.DisableLazyReorganization();
  uint64_t count = am.LazyReorgCount();
  for (int i = 1; i < 30; ++i) {
    (void)am.DeleteEdge(edges[i].from, edges[i].to,
                        ReorgPolicy::kFirstOrder);
  }
  EXPECT_EQ(am.LazyReorgCount(), count);
}

// The Figure 7 repair, done online: lazy reorganization above reclusters
// *in place* and therefore owns the file exclusively while it runs. The
// snapshot store reaches the same end state — a full reclustering over the
// mutated network — through a background build and an atomic version swap,
// with a reader session open (and readable) the entire time.
TEST(LazyReorgTest, SnapshotSwapRepairsCrrWithReadersOpen) {
  Network net = GenerateMinneapolisLikeMap(909);
  Random rng(3);
  std::vector<NodeId> ids = net.NodeIds();
  rng.Shuffle(&ids);
  size_t n_insert = net.NumNodes() * 3 / 20;
  std::vector<NodeId> stream(ids.begin(), ids.begin() + n_insert);
  std::vector<NodeId> base_ids(ids.begin() + n_insert, ids.end());
  Network base = net.InducedSubnetwork(base_ids);

  SnapshotOptions sopt;
  sopt.am.page_size = 1024;
  sopt.am.buffer_pool_pages = 8;
  sopt.am.num_threads = 1;
  const char* tmp = std::getenv("TMPDIR");
  sopt.dir = std::string(tmp != nullptr ? tmp : "/tmp") +
             "/ccam_lazy_swap_store";
  std::error_code ec;
  std::filesystem::remove_all(sopt.dir, ec);
  auto mgr = SnapshotManager::Create(sopt, base);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  std::unique_ptr<SnapshotSession> session = (*mgr)->OpenSession();

  // Insert the 15% stream: the nodes are visible immediately through the
  // overlay, but the *base* clustering predates them, so CRR over the
  // mutated network decays (overlay-only nodes have no page).
  for (NodeId id : stream) {
    NodeRecord rec = NodeRecord::FromNetworkNode(id, net.node(id));
    ASSERT_TRUE((*mgr)->InsertNode(rec).ok());
  }
  session->Refresh();
  ASSERT_EQ(session->NumLiveNodes(), (*mgr)->network().NumNodes());
  double crr_degraded = ComputeCrr((*mgr)->network(), session->PageMap());

  ASSERT_TRUE((*mgr)->ReorganizeNow().ok());
  // The old session keeps reading without interruption...
  ASSERT_TRUE(session->Find(base_ids.front()).ok());
  // ...and one refresh later sees the repaired clustering.
  session->Refresh();
  double crr_repaired = ComputeCrr((*mgr)->network(), session->PageMap());
  EXPECT_GT(crr_repaired, crr_degraded);
  EXPECT_GE(crr_repaired, 0.0);
  EXPECT_LE(crr_repaired, 1.0);
}

}  // namespace
}  // namespace ccam
