#include "src/core/file_stats.h"

#include <gtest/gtest.h>

#include <numeric>

#include "src/core/ccam.h"
#include "src/graph/generator.h"

namespace ccam {
namespace {

AccessMethodOptions Opts() {
  AccessMethodOptions options;
  options.page_size = 1024;
  options.buffer_pool_pages = 8;
  return options;
}

TEST(FileStatsTest, CountsAreConsistent) {
  Network net = GenerateMinneapolisLikeMap(1995);
  Ccam am(Opts(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  auto stats = CollectFileStats(&am, net);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_nodes, net.NumNodes());
  EXPECT_EQ(stats->num_pages, am.NumDataPages());
  EXPECT_DOUBLE_EQ(stats->crr, ComputeCrr(net, am.PageMap()));
  EXPECT_DOUBLE_EQ(stats->blocking_factor, am.AvgBlockingFactor());
  // The histogram accounts for every page.
  size_t hist_total = std::accumulate(
      stats->records_per_page_histogram.begin(),
      stats->records_per_page_histogram.end(), size_t{0});
  EXPECT_EQ(hist_total, stats->num_pages);
  // Fill bounds sane; a ratio-cut-packed file is well-filled on average.
  EXPECT_GE(stats->min_fill, 0.0);
  EXPECT_LE(stats->max_fill, 1.0);
  EXPECT_GT(stats->avg_fill, 0.5);
  EXPECT_GE(stats->max_fill, stats->avg_fill);
  EXPECT_LE(stats->min_fill, stats->avg_fill);
  EXPECT_GT(stats->pag_avg_degree, 0.0);
}

TEST(FileStatsTest, ScanDoesNotPerturbIoCounters) {
  Network net = GenerateMinneapolisLikeMap(3);
  Ccam am(Opts(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  am.ResetIoStats();
  ASSERT_TRUE(am.Find(5).ok());
  IoStats before = am.DataIoStats();
  auto stats = CollectFileStats(&am, net);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(am.DataIoStats().reads, before.reads);
  EXPECT_EQ(am.DataIoStats().writes, before.writes);
}

TEST(FileStatsTest, ToStringMentionsKeyNumbers) {
  Network net = GenerateMinneapolisLikeMap(3);
  Ccam am(Opts(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  auto stats = CollectFileStats(&am, net);
  ASSERT_TRUE(stats.ok());
  std::string report = stats->ToString();
  EXPECT_NE(report.find("CRR"), std::string::npos);
  EXPECT_NE(report.find("gamma"), std::string::npos);
  EXPECT_NE(report.find("pages"), std::string::npos);
}

TEST(FileStatsTest, EmptyFile) {
  AccessMethodOptions options = Opts();
  Ccam am(options, CcamCreateMode::kStatic);
  Network empty;
  ASSERT_TRUE(am.Create(empty).ok());
  auto stats = CollectFileStats(&am, empty);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_nodes, 0u);
  EXPECT_EQ(stats->avg_fill, 0.0);
}

TEST(FileStatsTest, DetectsUnderfullPagesAfterMassDeletes) {
  Network net = GenerateMinneapolisLikeMap(5);
  // Grid file keeps sparse buckets (no merging), so deletions create
  // underfull pages that the stats must report.
  Ccam am(Opts(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  auto before = CollectFileStats(&am, net);
  ASSERT_TRUE(before.ok());
  Network current = net;
  for (NodeId id = 0; id < 400; id += 2) {
    ASSERT_TRUE(am.DeleteNode(id, ReorgPolicy::kFirstOrder).ok());
    ASSERT_TRUE(current.RemoveNode(id).ok());
  }
  auto after = CollectFileStats(&am, current);
  ASSERT_TRUE(after.ok());
  EXPECT_LT(after->num_nodes, before->num_nodes);
  EXPECT_LE(after->avg_fill, before->avg_fill + 1e-9);
}

}  // namespace
}  // namespace ccam
