#include "src/common/fault_injector.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/storage/disk_manager.h"

namespace ccam {
namespace {

FaultAction IoError() {
  FaultAction a;
  a.kind = FaultAction::Kind::kError;
  a.code = Status::Code::kIOError;
  return a;
}

TEST(FaultInjectorTest, UnarmedPointNeverFires) {
  FaultInjector faults(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(faults.Hit("disk.read").has_value());
  }
  EXPECT_EQ(faults.HitCount("disk.read"), 0u);
  EXPECT_TRUE(faults.FiringLog().empty());
}

TEST(FaultInjectorTest, OnceFiresExactlyOnNthHit) {
  FaultInjector faults(1);
  faults.Arm("disk.read", IoError(), FaultTrigger::Once(3));
  EXPECT_FALSE(faults.Hit("disk.read").has_value());
  EXPECT_FALSE(faults.Hit("disk.read").has_value());
  auto fault = faults.Hit("disk.read");
  ASSERT_TRUE(fault.has_value());
  EXPECT_EQ(fault->kind, FaultAction::Kind::kError);
  EXPECT_FALSE(faults.Hit("disk.read").has_value());
  EXPECT_EQ(faults.HitCount("disk.read"), 4u);
  std::vector<FaultFiring> expected = {{"disk.read", 3}};
  EXPECT_EQ(faults.FiringLog(), expected);
}

TEST(FaultInjectorTest, FromFiresOnEveryLaterHit) {
  FaultInjector faults(1);
  faults.Arm("disk.write", IoError(), FaultTrigger::From(2));
  EXPECT_FALSE(faults.Hit("disk.write").has_value());
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(faults.Hit("disk.write").has_value());
  }
}

TEST(FaultInjectorTest, EveryFiresPeriodically) {
  FaultInjector faults(1);
  faults.Arm("disk.read", IoError(), FaultTrigger::Every(3));
  int fired = 0;
  for (int i = 1; i <= 9; ++i) {
    if (faults.Hit("disk.read").has_value()) {
      ++fired;
      EXPECT_EQ(i % 3, 0) << "fired on hit " << i;
    }
  }
  EXPECT_EQ(fired, 3);
}

TEST(FaultInjectorTest, ProbIsDeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    FaultInjector faults(seed);
    faults.Arm("disk.read", IoError(), FaultTrigger::Prob(0.3));
    std::vector<bool> fires;
    for (int i = 0; i < 200; ++i) {
      fires.push_back(faults.Hit("disk.read").has_value());
    }
    return fires;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
  // Roughly the configured rate.
  auto fires = run(7);
  int n = 0;
  for (bool b : fires) n += b;
  EXPECT_GT(n, 200 * 0.3 / 2);
  EXPECT_LT(n, 200 * 0.3 * 2);
}

TEST(FaultInjectorTest, ProbStreamIndependentOfOtherPoints) {
  // The per-point PCG stream depends only on (seed, point name), so arming
  // or hitting another failpoint must not shift the sequence.
  auto run = [](bool with_noise) {
    FaultInjector faults(42);
    faults.Arm("disk.read", IoError(), FaultTrigger::Prob(0.25));
    if (with_noise) {
      faults.Arm("disk.write", IoError(), FaultTrigger::Prob(0.25));
    }
    std::vector<bool> fires;
    for (int i = 0; i < 100; ++i) {
      if (with_noise) faults.Hit("disk.write");
      fires.push_back(faults.Hit("disk.read").has_value());
    }
    return fires;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(FaultInjectorTest, RearmResetsHitCount) {
  FaultInjector faults(1);
  faults.Arm("p", IoError(), FaultTrigger::Once(2));
  faults.Hit("p");
  faults.Arm("p", IoError(), FaultTrigger::Once(2));
  EXPECT_FALSE(faults.Hit("p").has_value());  // hit 1 again
  EXPECT_TRUE(faults.Hit("p").has_value());
}

TEST(FaultInjectorTest, SuppressScopeHidesAndCountsNothing) {
  FaultInjector faults(1);
  faults.Arm("p", IoError(), FaultTrigger::From(1));
  {
    FaultInjector::SuppressScope suppress(&faults);
    EXPECT_FALSE(faults.Hit("p").has_value());
    {
      FaultInjector::SuppressScope nested(&faults);
      EXPECT_FALSE(faults.Hit("p").has_value());
    }
    EXPECT_FALSE(faults.Hit("p").has_value());
  }
  EXPECT_EQ(faults.HitCount("p"), 0u);
  EXPECT_TRUE(faults.Hit("p").has_value());
}

TEST(FaultInjectorTest, ConfigureParsesScheduleGrammar) {
  FaultInjector faults(1);
  ASSERT_TRUE(
      faults
          .Configure("disk.write=crash:96@17,disk.read=error@p0.5,"
                     "disk.alloc=nospace,disk.free=error:corruption@4+,"
                     "a=short:10@every3,b=torn:7")
          .ok());
  // disk.write: crash with 96 torn bytes on hit 17.
  for (int i = 1; i <= 16; ++i) EXPECT_FALSE(faults.Hit("disk.write"));
  auto crash = faults.Hit("disk.write");
  ASSERT_TRUE(crash.has_value());
  EXPECT_EQ(crash->kind, FaultAction::Kind::kCrash);
  EXPECT_EQ(crash->bytes, 96u);
  // disk.alloc: nospace on the first hit (default trigger @1).
  auto nospace = faults.Hit("disk.alloc");
  ASSERT_TRUE(nospace.has_value());
  EXPECT_EQ(nospace->kind, FaultAction::Kind::kNoSpace);
  // disk.free: permanent corruption error from hit 4.
  for (int i = 1; i <= 3; ++i) EXPECT_FALSE(faults.Hit("disk.free"));
  auto corrupt = faults.Hit("disk.free");
  ASSERT_TRUE(corrupt.has_value());
  EXPECT_EQ(corrupt->code, Status::Code::kCorruption);
  EXPECT_TRUE(faults.Hit("disk.free").has_value());
  // a: short 10 bytes on hits 3, 6, ...
  EXPECT_FALSE(faults.Hit("a"));
  EXPECT_FALSE(faults.Hit("a"));
  auto short_read = faults.Hit("a");
  ASSERT_TRUE(short_read.has_value());
  EXPECT_EQ(short_read->kind, FaultAction::Kind::kShort);
  EXPECT_EQ(short_read->bytes, 10u);
  // b: torn is an alias for short.
  auto torn = faults.Hit("b");
  ASSERT_TRUE(torn.has_value());
  EXPECT_EQ(torn->kind, FaultAction::Kind::kShort);
  EXPECT_EQ(torn->bytes, 7u);
}

TEST(FaultInjectorTest, ConfigureRejectsMalformedSpecs) {
  FaultInjector faults(1);
  EXPECT_TRUE(faults.Configure("noequals").IsInvalidArgument());
  EXPECT_TRUE(faults.Configure("p=unknownaction").IsInvalidArgument());
  EXPECT_TRUE(faults.Configure("p=short").IsInvalidArgument());  // no bytes
  EXPECT_TRUE(faults.Configure("p=error@p1.5").IsInvalidArgument());
  EXPECT_TRUE(faults.Configure("p=error@xyz").IsInvalidArgument());
  EXPECT_TRUE(faults.Configure("p=error:badcode").IsInvalidArgument());
  EXPECT_TRUE(faults.Configure("p=nospace:5").IsInvalidArgument());
}

TEST(FaultInjectorTest, FiringLogIdenticalAcrossSameSeedRuns) {
  auto run = [](uint64_t seed) {
    FaultInjector faults(seed);
    EXPECT_TRUE(
        faults.Configure("disk.read=error@p0.1,disk.write=error@every7").ok());
    for (int i = 0; i < 300; ++i) {
      faults.Hit("disk.read");
      if (i % 2 == 0) faults.Hit("disk.write");
    }
    return faults.FiringLog();
  };
  auto log_a = run(1995);
  auto log_b = run(1995);
  EXPECT_EQ(log_a, log_b);
  EXPECT_FALSE(log_a.empty());
  EXPECT_NE(run(1996), log_a);
}

// End-to-end determinism at the DiskManager level: the same seeded fault
// schedule against the same write workload leaves byte-identical disks.
TEST(FaultInjectorTest, SameSeedSameScheduleSameDiskBytes) {
  auto run = [](uint64_t seed, std::vector<std::string>* pages) {
    FaultInjector faults(seed);
    ASSERT_TRUE(
        faults.Configure("disk.write=torn:40@p0.2,disk.read=error@p0.1").ok());
    DiskManager disk(256);
    disk.SetFaultInjector(&faults);
    std::vector<PageId> ids;
    for (int i = 0; i < 8; ++i) {
      auto id = disk.AllocatePage();
      ASSERT_TRUE(id.ok());
      ids.push_back(*id);
    }
    std::string buf(256, 'x');
    Random rng(seed + 1);
    for (int i = 0; i < 200; ++i) {
      PageId id = ids[rng.Uniform(8)];
      for (size_t j = 0; j < buf.size(); ++j) {
        buf[j] = static_cast<char>('a' + (i + j) % 26);
      }
      (void)disk.WritePage(id, buf.data());  // torn writes expected
    }
    FaultInjector::SuppressScope suppress(&faults);
    for (PageId id : ids) {
      std::string out(256, 0);
      ASSERT_TRUE(disk.ReadPage(id, out.data()).ok());
      pages->push_back(out);
    }
  };
  std::vector<std::string> a, b, c;
  run(7, &a);
  run(7, &b);
  run(8, &c);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

}  // namespace
}  // namespace ccam
