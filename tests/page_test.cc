#include "src/storage/page.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "src/common/random.h"

namespace ccam {
namespace {

constexpr size_t kPageSize = 512;

class PageTest : public ::testing::Test {
 protected:
  PageTest() : page_(buf_, kPageSize) {
    SlottedPage::Initialize(buf_, kPageSize);
  }
  char buf_[kPageSize];
  SlottedPage page_;
};

TEST_F(PageTest, FreshPageIsEmpty) {
  EXPECT_EQ(page_.NumSlots(), 0);
  EXPECT_EQ(page_.NumRecords(), 0);
  EXPECT_EQ(page_.UsedBytes(), 0u);
  EXPECT_EQ(page_.FreeSpaceForRecord(),
            kPageSize - SlottedPage::kHeaderSize - SlottedPage::kSlotOverhead);
}

TEST_F(PageTest, InsertAndGet) {
  int slot = page_.InsertRecord("hello");
  ASSERT_GE(slot, 0);
  EXPECT_EQ(page_.GetRecord(slot), "hello");
  EXPECT_EQ(page_.NumRecords(), 1);
  EXPECT_EQ(page_.UsedBytes(), 5u);
}

TEST_F(PageTest, MultipleInsertsKeepDistinctContents) {
  int a = page_.InsertRecord("alpha");
  int b = page_.InsertRecord("bravo!");
  int c = page_.InsertRecord("c");
  EXPECT_EQ(page_.GetRecord(a), "alpha");
  EXPECT_EQ(page_.GetRecord(b), "bravo!");
  EXPECT_EQ(page_.GetRecord(c), "c");
  EXPECT_EQ(page_.NumRecords(), 3);
}

TEST_F(PageTest, DeleteFreesSlotAndSpace) {
  int a = page_.InsertRecord("aaaa");
  int b = page_.InsertRecord("bbbb");
  ASSERT_TRUE(page_.DeleteRecord(a).ok());
  EXPECT_EQ(page_.NumRecords(), 1);
  EXPECT_TRUE(page_.GetRecord(a).empty());
  EXPECT_EQ(page_.GetRecord(b), "bbbb");
  // Slot a is reusable.
  int c = page_.InsertRecord("cccc");
  EXPECT_EQ(c, a);
}

TEST_F(PageTest, DeleteErrors) {
  EXPECT_TRUE(page_.DeleteRecord(0).IsInvalidArgument());
  int a = page_.InsertRecord("x");
  ASSERT_TRUE(page_.DeleteRecord(a).ok());
  EXPECT_FALSE(page_.DeleteRecord(a).ok());
  EXPECT_TRUE(page_.DeleteRecord(-1).IsInvalidArgument());
  EXPECT_TRUE(page_.DeleteRecord(99).IsInvalidArgument());
}

TEST_F(PageTest, InsertUntilFullThenFail) {
  std::string rec(40, 'r');
  int inserted = 0;
  while (page_.InsertRecord(rec) >= 0) ++inserted;
  // 512-byte page, 4B header, 44B per record incl. slot: ~11 records.
  EXPECT_GE(inserted, 10);
  EXPECT_LE(inserted, 12);
  EXPECT_LT(page_.FreeSpaceForRecord(), rec.size());
}

TEST_F(PageTest, RejectOversizedRecord) {
  std::string big(kPageSize, 'b');
  EXPECT_EQ(page_.InsertRecord(big), -1);
  std::string exact(SlottedPage::MaxRecordSize(kPageSize), 'e');
  EXPECT_GE(page_.InsertRecord(exact), 0);
}

TEST_F(PageTest, RejectEmptyRecord) {
  EXPECT_EQ(page_.InsertRecord(""), -1);
}

TEST_F(PageTest, CompactionReclaimsHoles) {
  // Fill, delete every other record, then insert something that only fits
  // after compaction.
  std::vector<int> slots;
  std::string rec(40, 'r');
  for (;;) {
    int s = page_.InsertRecord(rec);
    if (s < 0) break;
    slots.push_back(s);
  }
  size_t freed = 0;
  for (size_t i = 0; i < slots.size(); i += 2) {
    ASSERT_TRUE(page_.DeleteRecord(slots[i]).ok());
    freed += rec.size();
  }
  std::string big(freed - 8, 'B');
  int s = page_.InsertRecord(big);
  ASSERT_GE(s, 0);
  EXPECT_EQ(page_.GetRecord(s), big);
  // Remaining original records survive compaction intact.
  for (size_t i = 1; i < slots.size(); i += 2) {
    EXPECT_EQ(page_.GetRecord(slots[i]), rec);
  }
}

TEST_F(PageTest, UpdateShrinkInPlace) {
  int a = page_.InsertRecord("long-record-content");
  ASSERT_TRUE(page_.UpdateRecord(a, "tiny").ok());
  EXPECT_EQ(page_.GetRecord(a), "tiny");
}

TEST_F(PageTest, UpdateGrow) {
  int a = page_.InsertRecord("aa");
  int b = page_.InsertRecord("bb");
  ASSERT_TRUE(page_.UpdateRecord(a, std::string(100, 'A')).ok());
  EXPECT_EQ(page_.GetRecord(a), std::string(100, 'A'));
  EXPECT_EQ(page_.GetRecord(b), "bb");
}

TEST_F(PageTest, UpdateGrowBeyondCapacityFailsAndPreserves) {
  std::string rec(200, 'x');
  int a = page_.InsertRecord(rec);
  int b = page_.InsertRecord(rec);
  ASSERT_GE(a, 0);
  ASSERT_GE(b, 0);
  Status s = page_.UpdateRecord(a, std::string(400, 'y'));
  EXPECT_TRUE(s.IsNoSpace());
  EXPECT_EQ(page_.GetRecord(a), rec);  // original preserved
  EXPECT_EQ(page_.GetRecord(b), rec);
}

TEST_F(PageTest, UpdateErrors) {
  EXPECT_TRUE(page_.UpdateRecord(0, "x").IsInvalidArgument());
  int a = page_.InsertRecord("x");
  ASSERT_TRUE(page_.DeleteRecord(a).ok());
  // After trimming trailing slots the slot is out of range again.
  EXPECT_FALSE(page_.UpdateRecord(a, "y").ok());
}

TEST_F(PageTest, LiveSlotsListsOnlyOccupied) {
  int a = page_.InsertRecord("a");
  int b = page_.InsertRecord("b");
  int c = page_.InsertRecord("c");
  ASSERT_TRUE(page_.DeleteRecord(b).ok());
  std::vector<int> live = page_.LiveSlots();
  EXPECT_EQ(live, (std::vector<int>{a, c}));
}

/// Randomized differential test against a std::map reference model.
TEST(PageFuzzTest, RandomOpsMatchReferenceModel) {
  Random rng(2024);
  char buf[1024];
  SlottedPage::Initialize(buf, sizeof(buf));
  SlottedPage page(buf, sizeof(buf));
  std::map<int, std::string> model;  // slot -> content
  int next_tag = 0;

  for (int step = 0; step < 5000; ++step) {
    int op = rng.Uniform(3);
    if (op == 0) {  // insert
      std::string rec(1 + rng.Uniform(60), 'a' + (next_tag % 26));
      rec += std::to_string(next_tag++);
      int slot = page.InsertRecord(rec);
      if (slot >= 0) {
        ASSERT_EQ(model.count(slot), 0u);
        model[slot] = rec;
      }
    } else if (op == 1 && !model.empty()) {  // delete random live slot
      auto it = model.begin();
      std::advance(it, rng.Uniform(static_cast<uint32_t>(model.size())));
      ASSERT_TRUE(page.DeleteRecord(it->first).ok());
      model.erase(it);
    } else if (op == 2 && !model.empty()) {  // update random live slot
      auto it = model.begin();
      std::advance(it, rng.Uniform(static_cast<uint32_t>(model.size())));
      std::string rec(1 + rng.Uniform(80), 'Z');
      rec += std::to_string(next_tag++);
      Status s = page.UpdateRecord(it->first, rec);
      if (s.ok()) {
        it->second = rec;
      } else {
        ASSERT_TRUE(s.IsNoSpace());
      }
    }
    // Verify the whole page against the model periodically.
    if (step % 97 == 0) {
      ASSERT_EQ(page.NumRecords(), static_cast<int>(model.size()));
      for (const auto& [slot, content] : model) {
        ASSERT_EQ(page.GetRecord(slot), content) << "step " << step;
      }
      size_t used = 0;
      for (const auto& [slot, content] : model) used += content.size();
      ASSERT_EQ(page.UsedBytes(), used);
    }
  }
}

}  // namespace
}  // namespace ccam
