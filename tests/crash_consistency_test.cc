#include "src/core/crash_harness.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace ccam {
namespace {

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

CrashSimOptions BaseOptions(uint64_t seed, const std::string& image) {
  CrashSimOptions opt;
  opt.seed = seed;
  opt.image_path = TempPath(image);
  return opt;
}

TEST(CrashConsistencyTest, WorkloadWritesEnoughCrashPoints) {
  // The acceptance sweep wants >= 200 distinct crash points; make sure the
  // default workload's write sequence is long enough to host them.
  auto writes = CountWorkloadWrites(BaseOptions(1995, "ccam_crash_count.img"));
  ASSERT_TRUE(writes.ok()) << writes.status().ToString();
  EXPECT_GE(*writes, 200u);
}

// Every scheduled crash point must leave a disk image that either reopens
// with all invariants intact or is *detected* with a clean typed Status.
// A crash must never be silently absorbed as a consistent-looking file
// that lost the corruption, and never trip UB (ASan/UBSan builds of this
// test are the real teeth of that claim).
TEST(CrashConsistencyTest, EveryCrashPointRecoversOrDetects) {
  // Default: a fast evenly-spread subset; the `faults`-configuration sweep
  // (scripts/check_faults.sh) raises CCAM_CRASH_POINTS to cover >= 200.
  int points = EnvInt("CCAM_CRASH_POINTS", 24);
  int seeds = EnvInt("CCAM_CRASH_SEEDS", 1);
  for (int s = 0; s < seeds; ++s) {
    CrashSimOptions opt =
        BaseOptions(1995 + 7 * s, "ccam_crash_sweep.img");
    auto report = RunCrashSim(opt, static_cast<uint64_t>(points));
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->points.size(),
              std::min<uint64_t>(points, report->total_writes));
    for (const CrashPointReport& p : report->points) {
      EXPECT_NE(p.result.outcome, CrashOutcome::kNoCrash)
          << "crash point " << p.crash_point << " never fired";
    }
    // A 96-byte torn prefix shreds most pages; validation must catch at
    // least some of them (rather than absorbing every torn page).
    EXPECT_GT(report->corruption_detected, 0u) << "seed " << opt.seed;
  }
}

TEST(CrashConsistencyTest, CrashAfterCompleteWritesCanRecoverFully) {
  // With the torn prefix as large as the page, the crashing write lands
  // completely before the device halts — the power cut falls exactly on a
  // write boundary. Points that coincide with the end of an operation's
  // flush then reopen fully consistent, so the sweep must report
  // recoveries, not just detections.
  CrashSimOptions opt = BaseOptions(1995, "ccam_crash_boundary.img");
  opt.torn_bytes = static_cast<int>(opt.page_size);
  auto report = RunCrashSim(opt, 16);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->recovered, 0u);
  // The very last write boundary is the completed workload itself.
  auto writes = CountWorkloadWrites(opt);
  ASSERT_TRUE(writes.ok());
  auto last = RunCrashOnce(opt, *writes);
  ASSERT_TRUE(last.ok()) << last.status().ToString();
  EXPECT_EQ(last->outcome, CrashOutcome::kRecovered) << last->detail;
}

TEST(CrashConsistencyTest, EarlyCrashLosesEverythingCleanly) {
  // Crash on the very first page write: the capture holds at most one torn
  // page. Whatever the classification, it must be clean.
  CrashSimOptions opt = BaseOptions(1995, "ccam_crash_first.img");
  auto result = RunCrashOnce(opt, 1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_NE(result->outcome, CrashOutcome::kNoCrash);
}

TEST(CrashConsistencyTest, OutcomeAndRecoveredBytesAreDeterministic) {
  // Satellite: same seed -> identical firing sequence and identical
  // post-recovery file bytes, byte for byte.
  CrashSimOptions opt_a = BaseOptions(2024, "ccam_crash_det_a.img");
  CrashSimOptions opt_b = BaseOptions(2024, "ccam_crash_det_b.img");
  for (uint64_t point : {5u, 37u, 90u}) {
    auto a = RunCrashOnce(opt_a, point);
    auto b = RunCrashOnce(opt_b, point);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->outcome, b->outcome) << "point " << point;
    EXPECT_EQ(a->detail, b->detail) << "point " << point;
    EXPECT_EQ(a->writes_before_crash, b->writes_before_crash);
    EXPECT_EQ(a->recovered_nodes, b->recovered_nodes);
    EXPECT_EQ(ReadFileBytes(opt_a.image_path), ReadFileBytes(opt_b.image_path))
        << "point " << point;
  }
  std::remove(opt_a.image_path.c_str());
  std::remove(opt_b.image_path.c_str());
}

TEST(CrashConsistencyTest, FirstOrderPolicyAlsoSurvivesCrashes) {
  CrashSimOptions opt = BaseOptions(77, "ccam_crash_first_order.img");
  opt.policy = ReorgPolicy::kFirstOrder;
  auto report = RunCrashSim(opt, 12);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  for (const CrashPointReport& p : report->points) {
    EXPECT_NE(p.result.outcome, CrashOutcome::kNoCrash)
        << "crash point " << p.crash_point;
  }
}

// --- Strict durable mode ---------------------------------------------------
// With durability on, detection is not enough: every kill point must
// recover to exactly the acknowledged operations (plus at most the one in
// flight, applied atomically), with deterministic replay.

// Runs a strict sweep over one failpoint space and requires every point to
// classify as kDurable.
void ExpectAllDurable(const CrashSimOptions& opt, uint64_t points) {
  auto report = RunCrashSim(opt, points);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->points.size(), 0u) << opt.crash_failpoint;
  for (const CrashPointReport& p : report->points) {
    EXPECT_EQ(p.result.outcome, CrashOutcome::kDurable)
        << opt.crash_failpoint << " kill point " << p.crash_point << ": "
        << CrashOutcomeName(p.result.outcome) << " — " << p.result.detail;
  }
}

TEST(DurableCrashTest, EveryPageWriteKillPointIsDurable) {
  // The faults-configuration sweep raises CCAM_DURABLE_POINTS so the three
  // failpoint spaces together cover >= 200 seeded kill points.
  int points = EnvInt("CCAM_DURABLE_POINTS", 16);
  CrashSimOptions opt = BaseOptions(1995, "ccam_durable_write.img");
  opt.durability = true;
  ExpectAllDurable(opt, static_cast<uint64_t>(points));
}

TEST(DurableCrashTest, EveryWalAppendKillPointIsDurable) {
  int points = EnvInt("CCAM_DURABLE_POINTS", 16);
  CrashSimOptions opt = BaseOptions(1995, "ccam_durable_append.img");
  opt.durability = true;
  opt.crash_failpoint = "wal.append";
  ExpectAllDurable(opt, static_cast<uint64_t>(points));
}

TEST(DurableCrashTest, EveryWalFlushKillPointIsDurable) {
  int points = EnvInt("CCAM_DURABLE_POINTS", 16);
  CrashSimOptions opt = BaseOptions(1995, "ccam_durable_flush.img");
  opt.durability = true;
  opt.crash_failpoint = "wal.flush";
  ExpectAllDurable(opt, static_cast<uint64_t>(points));
}

TEST(DurableCrashTest, SecondSeedAndFirstOrderPolicyAreDurableToo) {
  CrashSimOptions opt = BaseOptions(2024, "ccam_durable_seed2.img");
  opt.durability = true;
  opt.policy = ReorgPolicy::kFirstOrder;
  ExpectAllDurable(opt, 8);
}

TEST(DurableCrashTest, RecoveredImageIsByteIdenticalAcrossRuns) {
  // The WAL determinism guarantee: the same (seed, kill point) recovers to
  // the same image, byte for byte — RunCrashOnce certifies each run's
  // replay determinism internally and exposes the recovered image CRC, so
  // equal CRCs across independent runs close the loop.
  CrashSimOptions opt_a = BaseOptions(1995, "ccam_durable_det_a.img");
  CrashSimOptions opt_b = BaseOptions(1995, "ccam_durable_det_b.img");
  opt_a.durability = opt_b.durability = true;
  for (uint64_t point : {3u, 29u, 61u}) {
    auto a = RunCrashOnce(opt_a, point);
    auto b = RunCrashOnce(opt_b, point);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    ASSERT_EQ(a->outcome, CrashOutcome::kDurable) << a->detail;
    EXPECT_EQ(a->recovered_image_crc, b->recovered_image_crc)
        << "point " << point;
    EXPECT_EQ(ReadFileBytes(opt_a.image_path), ReadFileBytes(opt_b.image_path))
        << "point " << point;
  }
  std::remove(opt_a.image_path.c_str());
  std::remove(opt_b.image_path.c_str());
}

// --- Snapshot-store mid-swap sweep -----------------------------------------
// The versioned-swap reorganization protocol: kills inside the delta log,
// the background image build, the MANIFEST publish and the retire steps.
// Always strict — every kill point must recover to exactly the old or
// exactly the new version (never a blend), classified kDurable.

constexpr const char* kSnapshotFailpoints[] = {
    "snapshot.log.append", "snapshot.log.flush", "snapshot.build",
    "snapshot.publish",    "snapshot.retire",
};

SnapshotCrashOptions SnapshotOptionsFor(uint64_t seed,
                                        const std::string& failpoint) {
  SnapshotCrashOptions opt;
  opt.seed = seed;
  opt.crash_failpoint = failpoint;
  std::string suffix = failpoint;
  for (char& c : suffix) {
    if (c == '.') c = '_';
  }
  opt.dir = TempPath("ccam_snap_crash_" + suffix);
  return opt;
}

void ExpectAllSnapshotDurable(const SnapshotCrashOptions& opt,
                              uint64_t points) {
  auto report = RunSnapshotCrashSim(opt, points);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->points.size(), 0u) << opt.crash_failpoint;
  for (const CrashPointReport& p : report->points) {
    EXPECT_EQ(p.result.outcome, CrashOutcome::kDurable)
        << opt.crash_failpoint << " kill point " << p.crash_point << ": "
        << CrashOutcomeName(p.result.outcome) << " — " << p.result.detail;
  }
}

TEST(SnapshotCrashTest, MidSwapKillPointSpacesHostTheAcceptanceSweep) {
  // The acceptance criterion wants >= 100 kill points across the
  // build/publish/retire/log protocol; verify the seeded workload's spaces
  // are big enough to host them.
  uint64_t total = 0;
  for (const char* fp : kSnapshotFailpoints) {
    auto count = CountSnapshotKillPoints(SnapshotOptionsFor(1995, fp));
    ASSERT_TRUE(count.ok()) << fp << ": " << count.status().ToString();
    EXPECT_GT(*count, 0u) << fp;
    total += *count;
  }
  EXPECT_GE(total, 100u);
}

TEST(SnapshotCrashTest, EveryMidSwapKillPointLandsOnOldOrNewVersion) {
  // The mid-swap acceptance sweep. Default: an evenly-spread subset per
  // failpoint; the faults configuration raises CCAM_SNAPSHOT_POINTS so the
  // five spaces together cover >= 100 kill points.
  int points = EnvInt("CCAM_SNAPSHOT_POINTS", 6);
  for (const char* fp : kSnapshotFailpoints) {
    ExpectAllSnapshotDurable(SnapshotOptionsFor(1995, fp),
                             static_cast<uint64_t>(points));
  }
}

TEST(SnapshotCrashTest, SecondSeedSurvivesPublishAndRetireKills) {
  for (const char* fp : {"snapshot.publish", "snapshot.retire"}) {
    ExpectAllSnapshotDurable(SnapshotOptionsFor(2024, fp), 6);
  }
}

TEST(SnapshotCrashTest, KillBeforeTheFirstReorganization) {
  // Kill point 1 of the log path fires before any swap: recovery replays
  // the delta log against the very first published image.
  auto result =
      RunSnapshotCrashOnce(SnapshotOptionsFor(1995, "snapshot.log.flush"), 1);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->outcome, CrashOutcome::kDurable) << result->detail;
}

TEST(SnapshotCrashTest, OutcomeIsDeterministicAcrossRuns) {
  SnapshotCrashOptions opt_a = SnapshotOptionsFor(1995, "snapshot.publish");
  SnapshotCrashOptions opt_b = SnapshotOptionsFor(1995, "snapshot.publish");
  opt_b.dir += "_b";
  for (uint64_t point : {1u, 5u, 9u}) {
    auto a = RunSnapshotCrashOnce(opt_a, point);
    auto b = RunSnapshotCrashOnce(opt_b, point);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(a->outcome, b->outcome) << "point " << point;
    EXPECT_EQ(a->detail, b->detail) << "point " << point;
    EXPECT_EQ(a->recovered_nodes, b->recovered_nodes) << "point " << point;
    EXPECT_EQ(a->recovered_image_crc, b->recovered_image_crc)
        << "point " << point;
  }
}

TEST(SnapshotCrashTest, WideTornPrefixCrossesWriteBoundaries) {
  // With the torn prefix wider than any log frame or MANIFEST, the
  // crashing write always lands completely — the power cut falls on a
  // write boundary. Still strictly durable.
  SnapshotCrashOptions opt = SnapshotOptionsFor(1995, "snapshot.log.flush");
  opt.dir += "_wide";
  opt.torn_bytes = 1 << 20;
  ExpectAllSnapshotDurable(opt, 6);
}

TEST(DurableCrashTest, KillPointSpacesAreLargeEnoughForTheAcceptanceSweep) {
  // The acceptance criterion wants >= 200 seeded kill points including
  // kills inside WAL appends and flushes; check the three spaces are big
  // enough to host the sweep (the sweep itself runs via
  // CCAM_DURABLE_POINTS in the faults configuration).
  uint64_t total = 0;
  for (const char* fp : {"disk.write", "wal.append", "wal.flush"}) {
    CrashSimOptions opt = BaseOptions(1995, "ccam_durable_space.img");
    opt.durability = true;
    opt.crash_failpoint = fp;
    auto count = CountWorkloadWrites(opt);
    ASSERT_TRUE(count.ok()) << fp << ": " << count.status().ToString();
    EXPECT_GT(*count, 0u) << fp;
    total += *count;
  }
  EXPECT_GE(total, 200u);
}

}  // namespace
}  // namespace ccam
