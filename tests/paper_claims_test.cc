// Consolidated regression tests for the paper's headline claims: if any of
// these fail, the reproduction no longer reproduces. Each test mirrors one
// table/figure of the evaluation section in miniature (the full harnesses
// live in bench/).

#include <gtest/gtest.h>

#include "src/baseline/grid_am.h"
#include "src/baseline/order_am.h"
#include "src/common/random.h"
#include "src/core/ccam.h"
#include "src/core/cost_model.h"
#include "src/graph/generator.h"
#include "src/query/route_eval.h"

namespace ccam {
namespace {

AccessMethodOptions Opts(size_t page_size) {
  AccessMethodOptions options;
  options.page_size = page_size;
  options.buffer_pool_pages = 8;
  return options;
}

/// Figure 5: CRR grows monotonically with the disk block size for CCAM-S.
TEST(PaperClaimsTest, Fig5CrrMonotoneInBlockSize) {
  Network net = GenerateMinneapolisLikeMap(1995);
  double prev = 0.0;
  for (size_t page_size : {512u, 1024u, 2048u, 4096u}) {
    Ccam am(Opts(page_size), CcamCreateMode::kStatic);
    ASSERT_TRUE(am.Create(net).ok());
    double crr = ComputeCrr(net, am.PageMap());
    EXPECT_GT(crr, prev) << "page " << page_size;
    prev = crr;
  }
}

/// Figure 5 at 1 KiB: the paper's CCAM CRR is 0.7606 on the real map; the
/// matched synthetic map must land in the same band.
TEST(PaperClaimsTest, Fig5CcamCrrInPaperBand) {
  Network net = GenerateMinneapolisLikeMap(1995);
  Ccam am(Opts(1024), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  double crr = ComputeCrr(net, am.PageMap());
  EXPECT_GT(crr, 0.68);
  EXPECT_LT(crr, 0.82);
}

/// Table 5: the cost model predicts the measured Get-A-successor() cost,
/// and actual lands at or slightly below predicted (buffer carryover).
TEST(PaperClaimsTest, Table5GetASuccessorActualTracksPredicted) {
  Network net = GenerateMinneapolisLikeMap(1995);
  Ccam am(Opts(1024), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  CostModelParams p = MeasureCostModelParams(net, am);
  Random rng(7);
  // A *shuffled* sample, as in the paper: sequential ids would be co-paged
  // with the previous op's buffer contents and undershoot the model.
  std::vector<NodeId> sample = net.NodeIds();
  rng.Shuffle(&sample);
  sample.resize(sample.size() / 2);
  uint64_t io = 0;
  size_t measured = 0;
  for (NodeId id : sample) {
    const NetworkNode& node = net.node(id);
    if (node.succ.empty()) continue;
    NodeId to =
        node.succ[rng.Uniform(static_cast<uint32_t>(node.succ.size()))].node;
    ASSERT_TRUE(am.Find(id).ok());
    am.ResetIoStats();
    ASSERT_TRUE(am.GetASuccessor(id, to).ok());
    io += am.DataIoStats().Accesses();
    ++measured;
  }
  double actual = static_cast<double>(io) / measured;
  double predicted = PredictedGetASuccessorCost(p);
  EXPECT_LE(actual, predicted * 1.05);
  EXPECT_GE(actual, predicted * 0.6);
}

/// Table 5: the Insert() column — the one operation where the Grid File
/// beats CCAM, because the neighbors of a *new* node are spatially close
/// but not necessarily connected to each other.
TEST(PaperClaimsTest, Table5GridFileWinsInsert) {
  Network net = GenerateMinneapolisLikeMap(1995);
  Random rng(7);
  std::vector<NodeId> ids = net.NodeIds();
  rng.Shuffle(&ids);
  size_t half = ids.size() / 2;
  std::vector<NodeId> base_ids(ids.begin() + half, ids.end());
  Network base = net.InducedSubnetwork(base_ids);

  auto insert_cost = [&](NetworkFile* am) {
    EXPECT_TRUE(am->Create(base).ok());
    uint64_t io = 0;
    size_t measured = 0;
    for (size_t i = 0; i < half; ++i) {
      NodeRecord rec = NodeRecord::FromNetworkNode(ids[i], net.node(ids[i]));
      (void)am->buffer_pool()->Reset();
      am->ResetIoStats();
      if (!am->InsertNode(rec, ReorgPolicy::kFirstOrder).ok()) continue;
      if (!am->LastOpChangedStructure()) {
        io += am->DataIoStats().Accesses();
        ++measured;
      }
    }
    return static_cast<double>(io) / measured;
  };
  Ccam ccam_am(Opts(1024), CcamCreateMode::kStatic);
  GridAm grid_am(Opts(1024));
  double ccam_cost = insert_cost(&ccam_am);
  double grid_cost = insert_cost(&grid_am);
  EXPECT_LT(grid_cost, ccam_cost);
}

/// Figure 6: CCAM-S evaluates routes with the least I/O at every length.
TEST(PaperClaimsTest, Fig6CcamWinsRouteEvalAtAllLengths) {
  Network net = GenerateMinneapolisLikeMap(1995);
  for (int length : {10, 40}) {
    auto routes = GenerateRandomWalkRoutes(net, 60, length, 1000 + length);
    auto mean_io = [&](NetworkFile* am) {
      EXPECT_TRUE(am->Create(net).ok());
      uint64_t total = 0;
      for (const Route& r : routes) {
        EXPECT_TRUE(am->buffer_pool()->Reset().ok());
        auto res = EvaluateRoute(am, r);
        EXPECT_TRUE(res.ok());
        total += res->page_accesses;
      }
      return static_cast<double>(total) / routes.size();
    };
    AccessMethodOptions options = Opts(2048);
    options.buffer_pool_pages = 1;
    Ccam ccam_am(options, CcamCreateMode::kStatic);
    OrderAm dfs_am(options, NodeOrderKind::kDfs);
    GridAm grid_am(options);
    double io_ccam = mean_io(&ccam_am);
    EXPECT_LT(io_ccam, mean_io(&dfs_am)) << "L=" << length;
    EXPECT_LT(io_ccam, mean_io(&grid_am)) << "L=" << length;
  }
}

/// Figure 7 / Table 4: first- and second-order insert I/O are close while
/// higher-order costs a multiple.
TEST(PaperClaimsTest, Fig7PolicyCostOrdering) {
  Network net = GenerateMinneapolisLikeMap(1995);
  Random rng(4);
  std::vector<NodeId> ids = net.NodeIds();
  rng.Shuffle(&ids);
  std::vector<NodeId> stream(ids.begin(), ids.begin() + 80);
  std::vector<NodeId> base_ids(ids.begin() + 80, ids.end());
  Network base = net.InducedSubnetwork(base_ids);

  auto stream_cost = [&](ReorgPolicy policy) {
    Ccam am(Opts(1024), CcamCreateMode::kStatic);
    EXPECT_TRUE(am.Create(base).ok());
    am.ResetIoStats();
    for (NodeId id : stream) {
      NodeRecord rec = NodeRecord::FromNetworkNode(id, net.node(id));
      EXPECT_TRUE(am.InsertNode(rec, policy).ok());
    }
    return static_cast<double>(am.DataIoStats().Accesses()) / stream.size();
  };
  double first = stream_cost(ReorgPolicy::kFirstOrder);
  double second = stream_cost(ReorgPolicy::kSecondOrder);
  double higher = stream_cost(ReorgPolicy::kHigherOrder);
  EXPECT_LT(second, first * 1.25);  // "very close"
  EXPECT_GT(higher, second * 1.6);  // "much higher"
}

/// Section 3: higher CRR means lower cost for the three CRR-bound
/// operations, across all five access methods.
TEST(PaperClaimsTest, OperationCostTracksCrrAcrossMethods) {
  Network net = GenerateMinneapolisLikeMap(1995);
  struct Point {
    double crr;
    double get_succ_io;
  };
  std::vector<Point> points;
  std::vector<std::unique_ptr<NetworkFile>> ams;
  ams.push_back(std::make_unique<Ccam>(Opts(1024), CcamCreateMode::kStatic));
  ams.push_back(std::make_unique<OrderAm>(Opts(1024), NodeOrderKind::kDfs));
  ams.push_back(std::make_unique<GridAm>(Opts(1024)));
  ams.push_back(std::make_unique<OrderAm>(Opts(1024), NodeOrderKind::kBfs));
  for (auto& am : ams) {
    ASSERT_TRUE(am->Create(net).ok());
    uint64_t io = 0;
    size_t measured = 0;
    for (NodeId id = 0; id < net.NumNodes(); id += 4) {
      if (!am->Find(id).ok()) continue;
      am->ResetIoStats();
      if (!am->GetSuccessors(id).ok()) continue;
      io += am->DataIoStats().Accesses();
      ++measured;
    }
    points.push_back({ComputeCrr(net, am->PageMap()),
                      static_cast<double>(io) / measured});
  }
  // Sort by CRR descending: costs must be ascending.
  std::sort(points.begin(), points.end(),
            [](const Point& a, const Point& b) { return a.crr > b.crr; });
  for (size_t i = 0; i + 1 < points.size(); ++i) {
    EXPECT_LE(points[i].get_succ_io, points[i + 1].get_succ_io + 0.05)
        << "CRR " << points[i].crr << " vs " << points[i + 1].crr;
  }
}

}  // namespace
}  // namespace ccam
