#include "src/index/grid_file.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "src/common/random.h"

namespace ccam {
namespace {

class GridFileTest : public ::testing::Test {
 protected:
  GridFileTest() : disk_(256), pool_(&disk_, 8), grid_(&disk_, &pool_) {}

  DiskManager disk_;
  BufferPool pool_;
  GridFile grid_;
};

TEST_F(GridFileTest, EmptyGrid) {
  EXPECT_EQ(grid_.NumEntries(), 0u);
  EXPECT_EQ(grid_.NumBuckets(), 1u);
  auto res = grid_.Search(1.0, 2.0);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->empty());
  EXPECT_TRUE(grid_.CheckInvariants().ok());
}

TEST_F(GridFileTest, InsertAndSearch) {
  ASSERT_TRUE(grid_.Insert(1.0, 2.0, 42).ok());
  ASSERT_TRUE(grid_.Insert(1.0, 2.0, 43).ok());  // same point, new value
  ASSERT_TRUE(grid_.Insert(5.0, 5.0, 44).ok());
  auto res = grid_.Search(1.0, 2.0);
  ASSERT_TRUE(res.ok());
  std::set<uint64_t> values(res->begin(), res->end());
  EXPECT_EQ(values, (std::set<uint64_t>{42, 43}));
  EXPECT_EQ(grid_.NumEntries(), 3u);
}

TEST_F(GridFileTest, ExactDuplicateRejected) {
  ASSERT_TRUE(grid_.Insert(1.0, 2.0, 42).ok());
  EXPECT_TRUE(grid_.Insert(1.0, 2.0, 42).IsAlreadyExists());
}

TEST_F(GridFileTest, NonFiniteCoordinatesRejected) {
  EXPECT_TRUE(grid_.Insert(std::nan(""), 0.0, 1).IsInvalidArgument());
  EXPECT_TRUE(
      grid_.Insert(std::numeric_limits<double>::infinity(), 0.0, 1)
          .IsInvalidArgument());
}

TEST_F(GridFileTest, DeleteRemovesExactEntry) {
  ASSERT_TRUE(grid_.Insert(1.0, 2.0, 42).ok());
  ASSERT_TRUE(grid_.Insert(1.0, 2.0, 43).ok());
  ASSERT_TRUE(grid_.Delete(1.0, 2.0, 42).ok());
  EXPECT_TRUE(grid_.Delete(1.0, 2.0, 42).IsNotFound());
  auto res = grid_.Search(1.0, 2.0);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(*res, std::vector<uint64_t>{43});
  EXPECT_EQ(grid_.NumEntries(), 1u);
}

TEST_F(GridFileTest, OverflowSplitsBuckets) {
  // 256-byte pages hold ~10 of the 24-byte entries; 200 inserts force many
  // splits and directory refinements.
  Random rng(3);
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(grid_
                    .Insert(rng.NextDouble() * 1000.0,
                            rng.NextDouble() * 1000.0, i)
                    .ok())
        << i;
  }
  EXPECT_GT(grid_.NumBuckets(), 10u);
  EXPECT_EQ(grid_.NumEntries(), 200u);
  ASSERT_TRUE(grid_.CheckInvariants().ok());
}

TEST_F(GridFileTest, EverythingFindableAfterSplits) {
  Random rng(5);
  std::vector<GridFile::Entry> inserted;
  for (uint64_t i = 0; i < 300; ++i) {
    double x = rng.NextDouble() * 100.0;
    double y = rng.NextDouble() * 100.0;
    ASSERT_TRUE(grid_.Insert(x, y, i).ok());
    inserted.push_back({x, y, i});
  }
  for (const auto& e : inserted) {
    auto res = grid_.Search(e.x, e.y);
    ASSERT_TRUE(res.ok());
    EXPECT_NE(std::find(res->begin(), res->end(), e.value), res->end());
  }
}

TEST_F(GridFileTest, RangeQueryMatchesBruteForce) {
  Random rng(7);
  std::vector<GridFile::Entry> inserted;
  for (uint64_t i = 0; i < 250; ++i) {
    double x = rng.NextDouble() * 100.0;
    double y = rng.NextDouble() * 100.0;
    ASSERT_TRUE(grid_.Insert(x, y, i).ok());
    inserted.push_back({x, y, i});
  }
  for (int trial = 0; trial < 40; ++trial) {
    double xmin = rng.NextDouble() * 80.0;
    double ymin = rng.NextDouble() * 80.0;
    double xmax = xmin + rng.NextDouble() * 30.0;
    double ymax = ymin + rng.NextDouble() * 30.0;
    auto res = grid_.RangeQuery(xmin, ymin, xmax, ymax);
    ASSERT_TRUE(res.ok());
    std::set<uint64_t> got;
    for (const auto& e : *res) got.insert(e.value);
    std::set<uint64_t> expected;
    for (const auto& e : inserted) {
      if (e.x >= xmin && e.x <= xmax && e.y >= ymin && e.y <= ymax) {
        expected.insert(e.value);
      }
    }
    EXPECT_EQ(got, expected) << "trial " << trial;
  }
}

TEST_F(GridFileTest, InvertedRangeRejected) {
  EXPECT_TRUE(grid_.RangeQuery(10, 0, 0, 10).status().IsInvalidArgument());
}

TEST_F(GridFileTest, BucketOfIsStableForPoints) {
  ASSERT_TRUE(grid_.Insert(1.0, 1.0, 1).ok());
  PageId bucket = grid_.BucketOf(1.0, 1.0);
  auto res = grid_.Search(1.0, 1.0);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->size(), 1u);
  EXPECT_EQ(grid_.BucketOf(1.0, 1.0), bucket);
}

TEST_F(GridFileTest, ClusteredInsertsStillSplit) {
  // Clustered points around two hot spots — the grid must separate them.
  Random rng(11);
  for (uint64_t i = 0; i < 150; ++i) {
    double cx = (i % 2 == 0) ? 10.0 : 90.0;
    ASSERT_TRUE(grid_
                    .Insert(cx + rng.NextDouble(), cx + rng.NextDouble(), i)
                    .ok());
  }
  EXPECT_EQ(grid_.NumEntries(), 150u);
  ASSERT_TRUE(grid_.CheckInvariants().ok());
}

TEST_F(GridFileTest, AllEntriesAtOnePointEventuallyFails) {
  // A page holds ~10 entries; duplicates of a single point cannot be split.
  Status last = Status::OK();
  for (uint64_t i = 0; i < 50 && last.ok(); ++i) {
    last = grid_.Insert(5.0, 5.0, i);
  }
  EXPECT_TRUE(last.IsNoSpace());
  ASSERT_TRUE(grid_.CheckInvariants().ok());
}

TEST_F(GridFileTest, DeleteThenReinsertKeepsStructureValid) {
  Random rng(13);
  std::vector<GridFile::Entry> entries;
  for (uint64_t i = 0; i < 120; ++i) {
    double x = rng.NextDouble() * 50.0, y = rng.NextDouble() * 50.0;
    ASSERT_TRUE(grid_.Insert(x, y, i).ok());
    entries.push_back({x, y, i});
  }
  for (size_t i = 0; i < entries.size(); i += 2) {
    ASSERT_TRUE(grid_.Delete(entries[i].x, entries[i].y, entries[i].value).ok());
  }
  ASSERT_TRUE(grid_.CheckInvariants().ok());
  for (size_t i = 0; i < entries.size(); i += 2) {
    ASSERT_TRUE(
        grid_.Insert(entries[i].x, entries[i].y, entries[i].value).ok());
  }
  EXPECT_EQ(grid_.NumEntries(), 120u);
  ASSERT_TRUE(grid_.CheckInvariants().ok());
}

}  // namespace
}  // namespace ccam
