#include "src/index/zorder.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/random.h"

namespace ccam {
namespace {

TEST(ZOrderTest, EncodeDecodeRoundTrip) {
  Random rng(31);
  for (int i = 0; i < 1000; ++i) {
    uint32_t x = rng.Next();
    uint32_t y = rng.Next();
    uint32_t dx, dy;
    ZOrderDecode(ZOrderEncode(x, y), &dx, &dy);
    ASSERT_EQ(dx, x);
    ASSERT_EQ(dy, y);
  }
}

TEST(ZOrderTest, KnownInterleavings) {
  EXPECT_EQ(ZOrderEncode(0, 0), 0u);
  EXPECT_EQ(ZOrderEncode(1, 0), 1u);
  EXPECT_EQ(ZOrderEncode(0, 1), 2u);
  EXPECT_EQ(ZOrderEncode(1, 1), 3u);
  EXPECT_EQ(ZOrderEncode(2, 0), 4u);
  EXPECT_EQ(ZOrderEncode(0, 2), 8u);
  EXPECT_EQ(ZOrderEncode(3, 3), 15u);
}

TEST(ZOrderTest, MonotonicPerDimension) {
  // Increasing one coordinate with the other fixed increases the code.
  for (uint32_t y : {0u, 5u, 100u}) {
    uint64_t prev = ZOrderEncode(0, y);
    for (uint32_t x = 1; x < 64; ++x) {
      uint64_t code = ZOrderEncode(x, y);
      EXPECT_GT(code, prev);
      prev = code;
    }
  }
}

TEST(ZOrderTest, PointQuantizationClampsOutOfRange) {
  uint64_t lo = ZOrderFromPoint(-100.0, -100.0, 0.0, 10.0);
  uint64_t hi = ZOrderFromPoint(100.0, 100.0, 0.0, 10.0);
  EXPECT_EQ(lo, ZOrderEncode(0, 0));
  EXPECT_EQ(hi, ZOrderEncode(65535, 65535));
  EXPECT_EQ(ZOrderFromPoint(3.0, 3.0, 5.0, 5.0), 0u);  // degenerate range
}

TEST(ZOrderTest, InRectMatchesComponentCheck) {
  Random rng(33);
  for (int i = 0; i < 500; ++i) {
    uint32_t xmin = rng.Uniform(100), ymin = rng.Uniform(100);
    uint32_t xmax = xmin + rng.Uniform(100);
    uint32_t ymax = ymin + rng.Uniform(100);
    uint32_t px = rng.Uniform(250), py = rng.Uniform(250);
    bool expected = px >= xmin && px <= xmax && py >= ymin && py <= ymax;
    EXPECT_EQ(ZOrderInRect(ZOrderEncode(px, py), ZOrderEncode(xmin, ymin),
                           ZOrderEncode(xmax, ymax)),
              expected);
  }
}

/// BIGMIN correctness against brute force on a small grid: for any query
/// rectangle and any current code outside the rectangle, BIGMIN must be the
/// smallest in-rectangle code greater than the current one.
TEST(ZOrderTest, BigMinMatchesBruteForce) {
  Random rng(35);
  const uint32_t kGrid = 32;
  for (int trial = 0; trial < 400; ++trial) {
    uint32_t xmin = rng.Uniform(kGrid), ymin = rng.Uniform(kGrid);
    uint32_t xmax = xmin + rng.Uniform(kGrid - xmin);
    uint32_t ymax = ymin + rng.Uniform(kGrid - ymin);
    uint64_t min_code = ZOrderEncode(xmin, ymin);
    uint64_t max_code = ZOrderEncode(xmax, ymax);

    // Collect all in-rectangle codes.
    std::vector<uint64_t> codes;
    for (uint32_t x = xmin; x <= xmax; ++x) {
      for (uint32_t y = ymin; y <= ymax; ++y) {
        codes.push_back(ZOrderEncode(x, y));
      }
    }
    std::sort(codes.begin(), codes.end());

    // Pick a current code inside [min_code, max_code] but outside the rect.
    for (int pick = 0; pick < 8; ++pick) {
      uint64_t current =
          min_code + rng.Uniform(static_cast<uint32_t>(
                         std::min<uint64_t>(max_code - min_code + 1, 1u << 30)));
      if (ZOrderInRect(current, min_code, max_code)) continue;
      auto it = std::upper_bound(codes.begin(), codes.end(), current);
      if (it == codes.end()) continue;  // nothing above: BIGMIN unspecified
      uint64_t expected = *it;
      EXPECT_EQ(ZOrderBigMin(current, min_code, max_code), expected)
          << "rect=(" << xmin << "," << ymin << ")-(" << xmax << "," << ymax
          << ") current=" << current;
    }
  }
}

TEST(ZOrderTest, BigMinSkipsDeadCurveSegments) {
  // Classic example: rectangle x in [1,2], y in [2,3] on a 4x4 grid. The
  // Z-curve leaves the rectangle between codes; BIGMIN from code 7 (the
  // corner (1,1)... outside) must land on the next in-rect code.
  uint64_t min_code = ZOrderEncode(1, 2);
  uint64_t max_code = ZOrderEncode(2, 3);
  uint64_t current = ZOrderEncode(3, 1);  // inside code interval, off-rect
  ASSERT_FALSE(ZOrderInRect(current, min_code, max_code));
  uint64_t bigmin = ZOrderBigMin(current, min_code, max_code);
  EXPECT_TRUE(ZOrderInRect(bigmin, min_code, max_code));
  EXPECT_GT(bigmin, current);
}

}  // namespace
}  // namespace ccam
