#include "src/storage/record.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace ccam {
namespace {

NodeRecord SampleRecord() {
  NodeRecord rec;
  rec.id = 42;
  rec.x = 1.5;
  rec.y = -2.25;
  rec.payload = "attrs";
  rec.succ = {{7, 1.0f}, {9, 2.5f}};
  rec.pred = {{3, 0.5f}};
  return rec;
}

TEST(RecordTest, EncodeDecodeRoundTrip) {
  NodeRecord rec = SampleRecord();
  std::string bytes = rec.Encode();
  EXPECT_EQ(bytes.size(), rec.EncodedSize());
  auto decoded = NodeRecord::Decode(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, rec);
}

TEST(RecordTest, EncodedSizeFormula) {
  NodeRecord rec = SampleRecord();
  EXPECT_EQ(rec.EncodedSize(),
            kNodeRecordFixedBytes + rec.payload.size() +
                kNodeRecordAdjEntryBytes * (rec.succ.size() +
                                            rec.pred.size()));
}

TEST(RecordTest, EmptyListsRoundTrip) {
  NodeRecord rec;
  rec.id = 1;
  rec.x = 0;
  rec.y = 0;
  auto decoded = NodeRecord::Decode(rec.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, rec);
}

TEST(RecordTest, PeekIdReadsWithoutFullDecode) {
  NodeRecord rec = SampleRecord();
  std::string bytes = rec.Encode();
  EXPECT_EQ(NodeRecord::PeekId(bytes), 42u);
  EXPECT_EQ(NodeRecord::PeekId("abc"), kInvalidNodeId);  // too short
}

TEST(RecordTest, DecodeRejectsTruncation) {
  NodeRecord rec = SampleRecord();
  std::string bytes = rec.Encode();
  for (size_t cut : {size_t{0}, size_t{3}, size_t{10}, bytes.size() - 1}) {
    auto res = NodeRecord::Decode(std::string_view(bytes.data(), cut));
    EXPECT_FALSE(res.ok()) << "cut=" << cut;
    EXPECT_TRUE(res.status().IsCorruption());
  }
}

TEST(RecordTest, SuccessorCostLookup) {
  NodeRecord rec = SampleRecord();
  auto c = rec.SuccessorCost(9);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(*c, 2.5f);
  EXPECT_TRUE(rec.SuccessorCost(3).status().IsNotFound());  // 3 is a pred
}

TEST(RecordTest, HasSuccessorPredecessor) {
  NodeRecord rec = SampleRecord();
  EXPECT_TRUE(rec.HasSuccessor(7));
  EXPECT_FALSE(rec.HasSuccessor(3));
  EXPECT_TRUE(rec.HasPredecessor(3));
  EXPECT_FALSE(rec.HasPredecessor(7));
}

TEST(RecordTest, NeighborsAreDistinctUnion) {
  NodeRecord rec = SampleRecord();
  rec.pred.push_back({7, 9.0f});  // 7 in both lists
  EXPECT_EQ(rec.Neighbors(), (std::vector<NodeId>{3, 7, 9}));
}

TEST(RecordTest, FromNetworkNodeCopiesEverything) {
  NetworkNode node;
  node.x = 3.5;
  node.y = 4.5;
  node.payload = "p";
  node.succ = {{2, 1.0f}};
  node.pred = {{4, 2.0f}};
  NodeRecord rec = NodeRecord::FromNetworkNode(9, node);
  EXPECT_EQ(rec.id, 9u);
  EXPECT_EQ(rec.x, 3.5);
  EXPECT_EQ(rec.payload, "p");
  EXPECT_EQ(rec.succ, node.succ);
  EXPECT_EQ(rec.pred, node.pred);
  EXPECT_EQ(RecordSizeOf(9, node), rec.EncodedSize());
}

/// Property sweep: random records round-trip for many shapes.
TEST(RecordTest, RandomRecordsRoundTrip) {
  Random rng(77);
  for (int trial = 0; trial < 300; ++trial) {
    NodeRecord rec;
    rec.id = rng.Next();
    rec.x = rng.NextDouble() * 1e6 - 5e5;
    rec.y = rng.NextDouble() * 1e6 - 5e5;
    rec.payload = std::string(rng.Uniform(32), static_cast<char>('a' + trial % 26));
    int ns = rng.Uniform(8), np = rng.Uniform(8);
    for (int i = 0; i < ns; ++i) {
      rec.succ.push_back({rng.Next(), static_cast<float>(rng.NextDouble())});
    }
    for (int i = 0; i < np; ++i) {
      rec.pred.push_back({rng.Next(), static_cast<float>(rng.NextDouble())});
    }
    auto decoded = NodeRecord::Decode(rec.Encode());
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(*decoded, rec);
  }
}

}  // namespace
}  // namespace ccam
