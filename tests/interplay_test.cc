// Cross-feature interplay: the features added on top of the paper's core
// (persistence, lazy reorganization, bulk insert, spatial engine,
// replacement policies) composed with each other and with the query layer.

#include <gtest/gtest.h>

#include <cstdio>

#include "src/common/random.h"
#include "src/core/ccam.h"
#include "src/core/file_stats.h"
#include "src/graph/generator.h"
#include "src/graph/route.h"
#include "src/query/route_eval.h"
#include "src/query/search.h"
#include "src/query/spatial.h"
#include "src/query/traversal.h"

namespace ccam {
namespace {

AccessMethodOptions Opts() {
  AccessMethodOptions options;
  options.page_size = 1024;
  options.buffer_pool_pages = 8;
  options.maintain_bptree_index = true;
  return options;
}

TEST(InterplayTest, QueriesWorkOnReopenedImage) {
  Network net = GenerateMinneapolisLikeMap(12);
  std::string path = ::testing::TempDir() + "/interplay_image.bin";
  {
    Ccam am(Opts(), CcamCreateMode::kStatic);
    ASSERT_TRUE(am.Create(net).ok());
    ASSERT_TRUE(am.SaveImage(path).ok());
  }
  Ccam am(Opts(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.OpenImage(path).ok());

  // Route evaluation.
  auto routes = GenerateRandomWalkRoutes(net, 5, 10, 2);
  for (const Route& r : routes) {
    ASSERT_TRUE(EvaluateRoute(&am, r).ok());
  }
  // Shortest path.
  auto sp = ShortestPathDijkstra(&am, 0, 500);
  ASSERT_TRUE(sp.ok());
  EXPECT_TRUE(sp->Found());
  // Traversal.
  auto reach = ReachableFrom(&am, 0, 6);
  ASSERT_TRUE(reach.ok());
  EXPECT_GT(reach->nodes.size(), 10u);
  // Spatial engine built over the reopened file.
  auto engine = SpatialQueryEngine::Build(&am);
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->NumIndexedNodes(), net.NumNodes());
  auto window = (*engine)->WindowQuery(0, 0, 800, 800);
  ASSERT_TRUE(window.ok());
  EXPECT_GT(window->records.size(), 0u);
  std::remove(path.c_str());
}

TEST(InterplayTest, LazyReorgSurvivesImageCycle) {
  Network net = GenerateMinneapolisLikeMap(13);
  std::string path = ::testing::TempDir() + "/interplay_lazy.bin";
  Ccam am(Opts(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  am.EnableLazyReorganization(4);
  auto edges = net.Edges();
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(
        am.DeleteEdge(edges[i * 5].from, edges[i * 5].to,
                      ReorgPolicy::kFirstOrder)
            .ok());
  }
  ASSERT_TRUE(am.SaveImage(path).ok());

  Ccam reopened(Opts(), CcamCreateMode::kStatic);
  ASSERT_TRUE(reopened.OpenImage(path).ok());
  reopened.EnableLazyReorganization(4);
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(reopened
                    .InsertEdge(edges[i * 5].from, edges[i * 5].to,
                                edges[i * 5].cost, ReorgPolicy::kFirstOrder)
                    .ok());
  }
  ASSERT_TRUE(reopened.CheckFileInvariants().ok());
  EXPECT_GT(reopened.LazyReorgCount(), 0u);
  std::remove(path.c_str());
}

TEST(InterplayTest, BulkInsertThenSpatialQueriesSeeNewNodes) {
  Network net = GenerateMinneapolisLikeMap(14);
  Ccam am(Opts(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());

  std::vector<NodeRecord> batch;
  for (NodeId id = 80000; id < 80020; ++id) {
    NodeRecord rec;
    rec.id = id;
    rec.x = 5000.0 + (id % 5);
    rec.y = 5000.0 + (id % 7);
    batch.push_back(rec);
  }
  ASSERT_TRUE(am.BulkInsert(batch, ReorgPolicy::kSecondOrder).ok());

  auto engine = SpatialQueryEngine::Build(&am);
  ASSERT_TRUE(engine.ok());
  auto window = (*engine)->WindowQuery(4990, 4990, 5010, 5010);
  ASSERT_TRUE(window.ok());
  EXPECT_EQ(window->records.size(), batch.size());
}

TEST(InterplayTest, ReplacementPoliciesAgreeOnResults) {
  // The replacement policy may change the I/O, never the answers.
  Network net = GenerateMinneapolisLikeMap(15);
  auto routes = GenerateRandomWalkRoutes(net, 8, 20, 6);
  std::vector<double> costs;
  for (ReplacementPolicy policy :
       {ReplacementPolicy::kLru, ReplacementPolicy::kFifo,
        ReplacementPolicy::kClock}) {
    AccessMethodOptions options = Opts();
    options.buffer_pool_pages = 2;
    options.replacement = policy;
    Ccam am(options, CcamCreateMode::kStatic);
    ASSERT_TRUE(am.Create(net).ok());
    double total = 0.0;
    for (const Route& r : routes) {
      auto res = EvaluateRoute(&am, r);
      ASSERT_TRUE(res.ok());
      total += res->total_cost;
    }
    costs.push_back(total);
  }
  EXPECT_DOUBLE_EQ(costs[0], costs[1]);
  EXPECT_DOUBLE_EQ(costs[0], costs[2]);
}

TEST(InterplayTest, FileStatsAfterHeavyCompositeWorkload) {
  Network net = GenerateMinneapolisLikeMap(16);
  Ccam am(Opts(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  am.EnableLazyReorganization(6);

  Network mirror = net;
  Random rng(1);
  for (int step = 0; step < 150; ++step) {
    auto ids = mirror.NodeIds();
    NodeId a = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
    if (step % 3 == 0) {
      ASSERT_TRUE(am.DeleteNode(a, ReorgPolicy::kFirstOrder).ok());
      ASSERT_TRUE(mirror.RemoveNode(a).ok());
    } else {
      NodeId b = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
      if (a == b || mirror.HasEdge(a, b)) continue;
      ASSERT_TRUE(am.InsertEdge(a, b, 1.0f, ReorgPolicy::kFirstOrder).ok());
      ASSERT_TRUE(mirror.AddEdge(a, b, 1.0f).ok());
    }
  }
  auto stats = CollectFileStats(&am, mirror);
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->num_nodes, mirror.NumNodes());
  EXPECT_LE(stats->crr, stats->crr_upper_bound + 1e-12);
  ASSERT_TRUE(am.CheckFileInvariants().ok());
}

TEST(InterplayTest, GetSuccessorsPageGroupingHelpsTinyPools) {
  // With a one-page buffer, grouped fetching must not exceed the number
  // of distinct pages the successors occupy (plus the source page).
  Network net = GenerateMinneapolisLikeMap(17);
  AccessMethodOptions options = Opts();
  options.buffer_pool_pages = 1;
  Ccam am(options, CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  for (NodeId id : {3u, 77u, 444u, 901u}) {
    ASSERT_TRUE(am.Find(id).ok());
    am.ResetIoStats();
    auto succ = am.GetSuccessors(id);
    ASSERT_TRUE(succ.ok());
    std::set<PageId> pages;
    for (const NodeRecord& s : *succ) pages.insert(am.PageMap().at(s.id));
    // Each distinct page is read at most once, plus possibly re-fetching
    // the source page once.
    EXPECT_LE(am.DataIoStats().reads, pages.size() + 1) << id;
  }
}

}  // namespace
}  // namespace ccam
