#include "src/storage/wal.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/storage/disk_manager.h"

namespace ccam {
namespace {

// Builds a small committed-transaction log and returns its durable bytes.
std::string SampleLog() {
  Wal wal;
  EXPECT_TRUE(wal.Append(Wal::RecordType::kBegin, 7, "").ok());
  std::string image = "page-image-bytes";
  EXPECT_TRUE(wal.Append(Wal::RecordType::kPageImage, 7, image).ok());
  EXPECT_TRUE(wal.Append(Wal::RecordType::kPageFree, 7, "free").ok());
  EXPECT_TRUE(wal.Append(Wal::RecordType::kCommit, 7, "").ok());
  EXPECT_TRUE(wal.Flush().ok());
  return wal.durable();
}

TEST(WalTest, AppendFlushRoundTripsRecords) {
  Wal wal;
  ASSERT_TRUE(wal.Append(Wal::RecordType::kBegin, 42, "").ok());
  ASSERT_TRUE(wal.Append(Wal::RecordType::kPageImage, 42, "payload").ok());
  ASSERT_TRUE(wal.Append(Wal::RecordType::kCommit, 42, "").ok());

  // Before the flush barrier nothing is durable: a crash would lose it all.
  EXPECT_EQ(wal.stats().durable_bytes, 0u);
  EXPECT_GT(wal.stats().pending_bytes, 0u);
  auto empty = wal.RecoverScan();
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());

  ASSERT_TRUE(wal.Flush().ok());
  EXPECT_EQ(wal.stats().pending_bytes, 0u);
  auto records = wal.RecoverScan();
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0].type, Wal::RecordType::kBegin);
  EXPECT_EQ((*records)[0].txn, 42u);
  EXPECT_EQ((*records)[1].type, Wal::RecordType::kPageImage);
  EXPECT_EQ((*records)[1].payload, "payload");
  EXPECT_EQ((*records)[2].type, Wal::RecordType::kCommit);
}

TEST(WalTest, TruncateDiscardsEverything) {
  Wal wal;
  ASSERT_TRUE(wal.Append(Wal::RecordType::kBegin, 1, "").ok());
  ASSERT_TRUE(wal.Flush().ok());
  ASSERT_TRUE(wal.Append(Wal::RecordType::kCommit, 1, "").ok());
  ASSERT_TRUE(wal.Truncate().ok());
  EXPECT_EQ(wal.stats().durable_bytes, 0u);
  EXPECT_EQ(wal.stats().pending_bytes, 0u);
  auto records = wal.RecoverScan();
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
}

// The crash contract: a log cut off at ANY byte offset must recover the
// longest complete-frame prefix — silently truncating the torn tail, never
// crashing, never returning a wild record.
TEST(WalTest, TruncationAtEveryByteOffsetRecoversCleanPrefix) {
  std::string log = SampleLog();
  ASSERT_GT(log.size(), 0u);
  // Frame boundaries of the four records, for prefix-count bookkeeping.
  std::vector<size_t> boundaries;
  {
    Wal scan;
    scan.RestoreDurable(log);
    auto records = scan.RecoverScan();
    ASSERT_TRUE(records.ok());
    ASSERT_EQ(records->size(), 4u);
    size_t off = 0;
    for (const Wal::Record& r : *records) {
      off += Wal::kFrameHeaderSize + r.payload.size() +
             Wal::kFrameTrailerSize;
      boundaries.push_back(off);
    }
    ASSERT_EQ(boundaries.back(), log.size());
  }
  for (size_t cut = 0; cut <= log.size(); ++cut) {
    Wal wal;
    wal.RestoreDurable(log.substr(0, cut));
    auto records = wal.RecoverScan();
    ASSERT_TRUE(records.ok())
        << "cut at " << cut << ": " << records.status().ToString();
    size_t complete = 0;
    while (complete < boundaries.size() && boundaries[complete] <= cut) {
      ++complete;
    }
    EXPECT_EQ(records->size(), complete) << "cut at " << cut;
  }
}

// Damage inside the durable region (not a torn tail) must surface as a
// typed Corruption or — when the flip lands in a payload byte whose frame
// CRC no longer matches — as Corruption too. A flip may never be silently
// accepted as a VALID log of different records, and may never crash.
TEST(WalTest, BitFlipAtEveryByteOffsetIsDetectedOrTruncates) {
  std::string log = SampleLog();
  Wal clean;
  clean.RestoreDurable(log);
  auto expected = clean.RecoverScan();
  ASSERT_TRUE(expected.ok());
  for (size_t i = 0; i < log.size(); ++i) {
    for (int bit : {0, 3, 7}) {
      std::string damaged = log;
      damaged[i] = static_cast<char>(damaged[i] ^ (1u << bit));
      Wal wal;
      wal.RestoreDurable(damaged);
      auto records = wal.RecoverScan();
      if (!records.ok()) {
        EXPECT_TRUE(records.status().IsCorruption())
            << "offset " << i << " bit " << bit << ": "
            << records.status().ToString();
        continue;
      }
      // The only acceptable non-error outcome is a shorter log: a flip in
      // a length field can make the final frame look incomplete (a torn
      // tail). It must never produce MORE records or different payloads
      // for the frames it does return... except the flipped byte itself
      // belongs to exactly one frame, whose CRC guards it — so any frame
      // that scans out must equal the original.
      ASSERT_LE(records->size(), expected->size())
          << "offset " << i << " bit " << bit;
      for (size_t r = 0; r < records->size(); ++r) {
        EXPECT_EQ((*records)[r].payload, (*expected)[r].payload)
            << "offset " << i << " bit " << bit << " record " << r;
        EXPECT_EQ((*records)[r].txn, (*expected)[r].txn);
      }
    }
  }
}

TEST(WalTest, CompleteFrameWithBadCrcIsCorruptionNotTruncation) {
  std::string log = SampleLog();
  // Flip a byte of the FIRST frame's payload region: the frame is still
  // complete (length intact), so the scan must fail loudly rather than
  // truncate three good frames after it.
  std::string damaged = log;
  damaged[Wal::kFrameHeaderSize / 2] ^= 0x40;  // inside frame 0's header
  Wal wal;
  wal.RestoreDurable(damaged);
  auto records = wal.RecoverScan();
  // Either typed Corruption (CRC/type/length check) or a clean truncation
  // to zero records if the flip made the frame look torn — never OK with
  // the original four records.
  if (records.ok()) {
    EXPECT_LT(records->size(), 4u);
  } else {
    EXPECT_TRUE(records.status().IsCorruption());
  }
}

TEST(WalTest, GarbageInputNeverCrashesTheScan) {
  // Adversarial inputs: random-ish bytes, huge claimed lengths, valid type
  // bytes with nonsense after. All must yield OK-with-prefix or Corruption.
  const std::string inputs[] = {
      std::string(1, '\x01'),
      std::string(12, '\xff'),
      std::string(13, '\x00'),
      std::string("\x02") + std::string(12, '\xff') + std::string(64, 'A'),
      std::string(200, '\x04'),
  };
  for (const std::string& in : inputs) {
    Wal wal;
    wal.RestoreDurable(in);
    auto records = wal.RecoverScan();
    if (!records.ok()) {
      EXPECT_TRUE(records.status().IsCorruption());
    }
  }
}

TEST(WalTest, AppendCrashFailpointHaltsDeviceAndKeepsTornPrefix) {
  DiskManager disk(256);
  FaultInjector faults(7);
  ASSERT_TRUE(faults.Configure("wal.append=crash:5@2").ok());
  Wal wal;
  wal.SetDevice(&disk);
  wal.SetFaultInjector(&faults);
  ASSERT_TRUE(wal.Append(Wal::RecordType::kBegin, 1, "").ok());
  Status st = wal.Append(Wal::RecordType::kPageImage, 1, "payload");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(disk.halted());
  // 5 torn bytes of the in-flight tail became durable — not a complete
  // frame, so recovery sees an empty log.
  EXPECT_EQ(wal.stats().durable_bytes, 5u);
  auto records = wal.RecoverScan();
  ASSERT_TRUE(records.ok());
  EXPECT_TRUE(records->empty());
  // The halted device fails every later log operation.
  EXPECT_FALSE(wal.Append(Wal::RecordType::kCommit, 1, "").ok());
  EXPECT_FALSE(wal.Flush().ok());
}

TEST(WalTest, FlushCrashFailpointTearsThePendingTail) {
  DiskManager disk(256);
  FaultInjector faults(7);
  ASSERT_TRUE(faults.Configure("wal.flush=crash:20@1").ok());
  Wal wal;
  wal.SetDevice(&disk);
  wal.SetFaultInjector(&faults);
  ASSERT_TRUE(wal.Append(Wal::RecordType::kBegin, 1, "").ok());
  ASSERT_TRUE(wal.Append(Wal::RecordType::kCommit, 1, "").ok());
  EXPECT_FALSE(wal.Flush().ok());
  EXPECT_TRUE(disk.halted());
  EXPECT_EQ(wal.stats().durable_bytes, 20u);
  // 20 bytes cover frame 0 (17 bytes) and tear frame 1: the scan returns
  // exactly the Begin record.
  auto records = wal.RecoverScan();
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].type, Wal::RecordType::kBegin);
}

TEST(WalTest, ScanIsDeterministic) {
  // Identical durable bytes scan to identical records every time — the
  // replay side of the byte-identical recovery guarantee.
  std::string log = SampleLog();
  Wal a, b;
  a.RestoreDurable(log);
  b.RestoreDurable(log);
  auto ra = a.RecoverScan();
  auto rb = b.RecoverScan();
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ASSERT_EQ(ra->size(), rb->size());
  for (size_t i = 0; i < ra->size(); ++i) {
    EXPECT_EQ((*ra)[i].type, (*rb)[i].type);
    EXPECT_EQ((*ra)[i].txn, (*rb)[i].txn);
    EXPECT_EQ((*ra)[i].payload, (*rb)[i].payload);
  }
  EXPECT_EQ(SampleLog(), log) << "log construction must be deterministic";
}

TEST(WalTest, RecordTypeNamesAreStable) {
  EXPECT_STREQ(WalRecordTypeName(Wal::RecordType::kBegin), "begin");
  EXPECT_STREQ(WalRecordTypeName(Wal::RecordType::kPageImage), "page-image");
  EXPECT_STREQ(WalRecordTypeName(Wal::RecordType::kPageFree), "page-free");
  EXPECT_STREQ(WalRecordTypeName(Wal::RecordType::kCommit), "commit");
}

}  // namespace
}  // namespace ccam
