// Hammers one sharded BufferPool (and the QuerySession read path above
// it) from many threads. Run under ThreadSanitizer via the CCAM_TSAN
// build (scripts/check_tsan.sh): the assertions here check counter
// conservation and pin accounting; TSan checks the latching.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/common/metrics.h"
#include "src/common/random.h"
#include "src/core/ccam.h"
#include "src/core/query_session.h"
#include "src/graph/generator.h"
#include "src/graph/route.h"
#include "src/query/route_eval.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/disk_manager.h"

namespace ccam {
namespace {

constexpr int kThreads = 8;

/// Mid-flight counter sampler: repeatedly reads `progress` (the workers'
/// count of completed successful fetches), then takes a GetCounters()
/// snapshot, until `done`. Because a worker bumps its shard's hit/miss
/// counter *before* it bumps `progress`, every consistent snapshot must
/// satisfy hits + misses >= progress-read-before-it, and the snapshot
/// total must be monotone across samples. A torn (per-shard-inconsistent)
/// snapshot breaks both. Returns the number of samples taken; sets
/// `*torn` if any invariant failed.
uint64_t SampleCountersUntilDone(const BufferPool& pool,
                                 const std::atomic<uint64_t>& progress,
                                 const std::atomic<bool>& done, bool* torn) {
  uint64_t samples = 0;
  uint64_t prev_total = 0;
  while (!done.load()) {
    uint64_t before = progress.load();
    BufferPool::Counters c = pool.GetCounters();
    uint64_t total = c.hits + c.misses;
    if (total < before || total < prev_total) *torn = true;
    prev_total = total;
    ++samples;
    std::this_thread::yield();
  }
  return samples;
}

TEST(BufferPoolConcurrencyTest, MixedFetchHammer) {
  DiskManager disk(128);
  std::vector<PageId> ids;
  for (int i = 0; i < 96; ++i) ids.push_back(*disk.AllocatePage());
  BufferPool pool(&disk, 32, ReplacementPolicy::kLru, /*num_shards=*/4);
  MetricsRegistry metrics;
  pool.SetMetrics(&metrics);

  std::atomic<uint64_t> fetches{0};
  std::atomic<bool> failed{false};
  std::atomic<bool> done{false};
  bool torn = false;
  uint64_t samples = 0;
  std::thread sampler([&] {
    samples = SampleCountersUntilDone(pool, fetches, done, &torn);
  });
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(1000 + t);
      for (int i = 0; i < 4000; ++i) {
        // Hot-page skew: half the fetches hit the first 4 pages, forcing
        // same-page contention across shards and threads.
        PageId id = (rng.Uniform(2) == 0)
                        ? ids[rng.Uniform(4)]
                        : ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
        auto res = pool.FetchPage(id);
        if (!res.ok()) {
          failed.store(true);
          return;
        }
        fetches.fetch_add(1);
        // Occasionally nest a second pin on the same page.
        if (rng.Uniform(8) == 0) {
          auto res2 = pool.FetchPage(id);
          if (res2.ok()) {
            fetches.fetch_add(1);
            if (!pool.UnpinPage(id, false).ok()) failed.store(true);
          } else {
            failed.store(true);
          }
        }
        if (!pool.UnpinPage(id, false).ok()) failed.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  done.store(true);
  sampler.join();

  EXPECT_FALSE(failed.load());
  EXPECT_FALSE(torn) << "mid-flight GetCounters() snapshot violated "
                        "hits + misses >= completed fetches";
  EXPECT_GT(samples, 0u);
  // Counter conservation: every fetch is exactly one hit or one miss.
  EXPECT_EQ(pool.hits() + pool.misses(), fetches.load());
  // The attached registry mirrors the pool's own accounting exactly.
  EXPECT_EQ(metrics.GetCounter("buffer_pool.hit")->value(), pool.hits());
  EXPECT_EQ(metrics.GetCounter("buffer_pool.miss")->value(), pool.misses());
  // Every miss is exactly one disk read.
  EXPECT_EQ(disk.stats().reads, pool.misses());
  // No lost pins: every page settles at pin count 0.
  for (PageId id : ids) EXPECT_EQ(pool.PinCount(id), 0) << id;
  EXPECT_LE(pool.NumBuffered(), 32u);
}

TEST(BufferPoolConcurrencyTest, SamePageStorm) {
  // All threads fetch the one page of a capacity-starved shard layout:
  // concurrent first fetches must resolve to a single disk read per
  // residency, with followers waiting and scoring hits.
  DiskManager disk(128);
  PageId hot = *disk.AllocatePage();
  BufferPool pool(&disk, 4, ReplacementPolicy::kClock, /*num_shards=*/2);

  std::atomic<uint64_t> fetches{0};
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 2000; ++i) {
        auto res = pool.FetchPage(hot);
        if (!res.ok()) {
          failed.store(true);
          return;
        }
        fetches.fetch_add(1);
        if (!pool.UnpinPage(hot, false).ok()) failed.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_FALSE(failed.load());
  EXPECT_EQ(pool.hits() + pool.misses(), fetches.load());
  // The page is never evicted (nothing else competes), so exactly one
  // read happens no matter how many threads raced the first fetch.
  EXPECT_EQ(pool.misses(), 1u);
  EXPECT_EQ(disk.stats().reads, 1u);
  EXPECT_EQ(pool.PinCount(hot), 0);
}

TEST(BufferPoolConcurrencyTest, FaultActiveHammerConservesState) {
  // The MixedFetchHammer workload with a ~3% transient read-error fault
  // armed: fetches now fail nondeterministically across threads. The pool
  // must stay conservative — no leaked frames, no stuck pins, no deadlock
  // on the single-flight I/O path — and fully recover once the fault is
  // disarmed. Run under TSan via scripts/check_tsan.sh like the rest of
  // this binary.
  FaultInjector faults(1995);
  ASSERT_TRUE(faults.Configure("disk.read=error@p0.03").ok());
  DiskManager disk(128);
  disk.SetFaultInjector(&faults);
  std::vector<PageId> ids;
  for (int i = 0; i < 96; ++i) ids.push_back(*disk.AllocatePage());
  BufferPool pool(&disk, 32, ReplacementPolicy::kLru, /*num_shards=*/4);

  std::atomic<uint64_t> successes{0};
  std::atomic<uint64_t> io_failures{0};
  std::atomic<bool> broken{false};
  // Mid-flight snapshots must stay consistent even while fetches are
  // failing: a failed fetch bumps neither counter, so the sampler's
  // invariant is against *successes* only.
  std::atomic<bool> done{false};
  bool torn = false;
  uint64_t samples = 0;
  std::thread sampler([&] {
    samples = SampleCountersUntilDone(pool, successes, done, &torn);
  });
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Random rng(2000 + t);
      for (int i = 0; i < 4000; ++i) {
        PageId id = (rng.Uniform(2) == 0)
                        ? ids[rng.Uniform(4)]
                        : ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
        auto res = pool.FetchPage(id);
        if (!res.ok()) {
          // Injected faults surface as IOError; anything else is a bug.
          if (!res.status().IsIOError()) broken.store(true);
          io_failures.fetch_add(1);
          continue;
        }
        successes.fetch_add(1);
        if (!pool.UnpinPage(id, false).ok()) broken.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  done.store(true);
  sampler.join();

  EXPECT_FALSE(broken.load());
  EXPECT_FALSE(torn) << "mid-flight GetCounters() snapshot violated "
                        "hits + misses >= successful fetches";
  EXPECT_GT(samples, 0u);
  EXPECT_GT(io_failures.load(), 0u) << "fault never fired";
  // Conservation under faults: every *successful* fetch is exactly one
  // pool hit or one completed disk read. A failed fetch is neither (the
  // frame is recycled, the read never completed), and followers that
  // joined a failed single-flight I/O propagate the error without
  // touching either counter.
  EXPECT_EQ(successes.load(), pool.hits() + disk.stats().reads);
  // No leaked pins or frames.
  for (PageId id : ids) EXPECT_EQ(pool.PinCount(id), 0) << id;
  EXPECT_LE(pool.NumBuffered(), 32u);

  // Disarmed, the pool serves every page again: transient faults must not
  // leave poisoned frames behind.
  faults.Reset();
  for (PageId id : ids) {
    auto res = pool.FetchPage(id);
    ASSERT_TRUE(res.ok()) << "page " << id << " still failing: "
                          << res.status().ToString();
    EXPECT_TRUE(pool.UnpinPage(id, false).ok());
  }
}

class QuerySessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = GenerateMinneapolisLikeMap(1995);
    AccessMethodOptions options;
    options.page_size = 1024;
    options.buffer_pool_pages = 32;
    options.buffer_pool_shards = 4;
    am_ = std::make_unique<Ccam>(options, CcamCreateMode::kStatic);
    ASSERT_TRUE(am_->Create(net_).ok());
    routes_ = GenerateRandomWalkRoutes(net_, 64, 20, 11);
  }

  Network net_;
  std::unique_ptr<Ccam> am_;
  std::vector<Route> routes_;
};

TEST_F(QuerySessionTest, SessionAccountingMatchesDirectSingleThread) {
  // A single-threaded session must report exactly the same per-route
  // data-page accesses as querying the file directly (same pool state).
  std::vector<uint64_t> direct;
  ASSERT_TRUE(am_->buffer_pool()->Reset().ok());
  am_->ResetIoStats();
  for (const Route& r : routes_) {
    auto res = EvaluateRoute(am_.get(), r);
    ASSERT_TRUE(res.ok());
    direct.push_back(res->page_accesses);
  }
  ASSERT_TRUE(am_->buffer_pool()->Reset().ok());
  am_->ResetIoStats();
  auto session = am_->OpenSession();
  for (size_t i = 0; i < routes_.size(); ++i) {
    auto res = EvaluateRoute(session.get(), routes_[i]);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res->page_accesses, direct[i]) << "route " << i;
  }
  // And the session total equals the global disk-read total.
  EXPECT_EQ(session->DataIoStats().reads, am_->DataIoStats().reads);
  EXPECT_EQ(session->DataIoStats().writes, 0u);
}

TEST_F(QuerySessionTest, ParallelSessionsConserveAccounting) {
  ASSERT_TRUE(am_->buffer_pool()->Reset().ok());
  am_->ResetIoStats();
  am_->buffer_pool()->ResetCounters();

  std::vector<std::unique_ptr<QuerySession>> sessions;
  for (int t = 0; t < kThreads; ++t) sessions.push_back(am_->OpenSession());
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      QuerySession* s = sessions[t].get();
      for (size_t i = t; i < routes_.size(); i += kThreads) {
        auto res = EvaluateRoute(s, routes_[i]);
        if (!res.ok()) failed.store(true);
        auto find = s->Find(routes_[i].nodes.front());
        if (!find.ok()) failed.store(true);
        auto succ = s->GetSuccessors(routes_[i].nodes.back());
        if (!succ.ok()) failed.store(true);
      }
    });
  }
  for (auto& th : threads) th.join();
  ASSERT_FALSE(failed.load());

  // Exact conservation: per-session reads sum to the global disk reads,
  // and mutating counters stay untouched (read-only path).
  uint64_t session_reads = 0;
  for (const auto& s : sessions) {
    IoStats io = s->DataIoStats();
    session_reads += io.reads;
    EXPECT_EQ(io.writes, 0u);
  }
  IoStats global = am_->DataIoStats();
  EXPECT_EQ(session_reads, global.reads);
  EXPECT_EQ(global.writes, 0u);
  EXPECT_EQ(am_->buffer_pool()->misses(), global.reads);
  // No lost pins anywhere.
  for (const auto& [node, page] : am_->PageMap()) {
    EXPECT_EQ(am_->buffer_pool()->PinCount(page), 0);
  }
}

TEST_F(QuerySessionTest, SessionsRejectMutations) {
  auto session = am_->OpenSession();
  NodeRecord rec;
  rec.id = 999999;
  EXPECT_TRUE(session->InsertNode(rec, ReorgPolicy::kFirstOrder)
                  .IsNotSupported());
  EXPECT_TRUE(
      session->DeleteNode(0, ReorgPolicy::kFirstOrder).IsNotSupported());
  EXPECT_TRUE(session->InsertEdge(0, 1, 1.0f, ReorgPolicy::kFirstOrder)
                  .IsNotSupported());
  EXPECT_TRUE(
      session->DeleteEdge(0, 1, ReorgPolicy::kFirstOrder).IsNotSupported());
  EXPECT_TRUE(session->Create(net_).IsNotSupported());
}

}  // namespace
}  // namespace ccam
