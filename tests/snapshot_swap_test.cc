// Concurrency battery for the versioned snapshot swap: many reader
// threads hammer sessions while the writer runs back-to-back full
// reorganizations, each publishing a new version with an atomic
// pointer swap. The assertions pin down the store's three public
// promises:
//
//   * isolation  — a session pinned to a version sees that version's
//     frozen node set, readable in full, no matter how many swaps land
//     mid-iteration;
//   * conservation — every session acquire is matched by exactly one
//     release, and retired versions drain to LiveVersionCount == 1
//     once the last session closes;
//   * availability — reads (and their IoStats accounting) are
//     bit-identical whether or not a background build is in flight,
//     and a reader holding a page pin never blocks a swap.
//
// Registered in scripts/check_tsan.sh: the hammer runs under TSan to
// catch ordering bugs the assertions cannot.

#include "src/storage/snapshot_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/graph/generator.h"

namespace ccam {
namespace {

SnapshotOptions OptionsFor(const std::string& leaf) {
  SnapshotOptions sopt;
  sopt.am.page_size = 1024;
  sopt.am.buffer_pool_pages = 8;
  sopt.am.num_threads = 1;
  const char* tmp = std::getenv("TMPDIR");
  sopt.dir = std::string(tmp != nullptr ? tmp : "/tmp") + "/" + leaf;
  std::error_code ec;
  std::filesystem::remove_all(sopt.dir, ec);
  return sopt;
}

int EnvInt(const char* name, int fallback) {
  if (const char* env = std::getenv(name)) {
    int v = std::atoi(env);
    if (v > 0) return v;
  }
  return fallback;
}

// 8 reader threads churn sessions while the main thread interleaves
// mutations with >= 50 synchronous reorganizations. Each reader
// iteration validates snapshot isolation the hard way: every id the
// pinned version lists as live must Find() OK for as long as the
// session holds the version — even when several swaps land while the
// scan is in progress.
TEST(SnapshotSwapTest, EightReadersAcrossFiftyBackToBackSwaps) {
  const int kReaders = 8;
  const int kSwaps = EnvInt("CCAM_SWAP_COUNT", 50);

  SnapshotOptions sopt = OptionsFor("ccam_swap_hammer_store");
  Network net = GenerateRandomGeometricNetwork(160, 130.0, 1000.0, 1995);
  auto mgr = SnapshotManager::Create(sopt, net);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  SnapshotManager* store = mgr->get();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([store, t, &stop, &reads, &failures] {
      uint64_t local = 0;
      while (!stop.load(std::memory_order_acquire)) {
        // Sessions are thread-bound; each iteration opens a fresh one,
        // which also exercises acquire/release under concurrent swaps.
        std::unique_ptr<SnapshotSession> session = store->OpenSession();
        std::vector<NodeId> ids = session->LiveNodeIds();
        if (ids.empty()) {
          ++failures;
          break;
        }
        // A strided sample keeps iterations short enough that many
        // swaps land per session lifetime across the run.
        for (size_t i = t % 7; i < ids.size(); i += 7) {
          auto rec = session->Find(ids[i]);
          if (!rec.ok()) {
            ADD_FAILURE() << "reader " << t << ": live node " << ids[i]
                          << " unreadable in pinned version "
                          << session->version_id() << ": "
                          << rec.status().ToString();
            ++failures;
            stop.store(true, std::memory_order_release);
            break;
          }
          ++local;
        }
        // Half the iterations migrate to the current version mid-life,
        // so refresh-during-swap gets coverage too.
        if (local % 2 == 0) session->Refresh();
      }
      reads.fetch_add(local, std::memory_order_relaxed);
    });
  }

  // Writer: mutate, then swap — back to back, no quiescing.
  NodeId next_id = 0;
  for (NodeId id : net.NodeIds()) next_id = std::max(next_id, id + 1);
  std::vector<NodeId> anchors = net.NodeIds();
  for (int s = 0; s < kSwaps; ++s) {
    NodeRecord rec;
    rec.id = next_id++;
    rec.x = static_cast<double>(s);
    rec.y = -1.0;
    rec.succ.push_back({anchors[s % anchors.size()], 1.0f});
    ASSERT_TRUE(store->InsertNode(rec).ok());
    ASSERT_TRUE(store->ReorganizeNow().ok()) << "swap " << s;
  }

  stop.store(true, std::memory_order_release);
  for (auto& r : readers) r.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(store->ReorgCount(), static_cast<uint64_t>(kSwaps));
  // Version 1 was the initial publication; every swap adds one.
  EXPECT_EQ(store->CurrentVersionId(), static_cast<uint64_t>(1 + kSwaps));

  // Conservation: with every session closed, each acquire has exactly
  // one matching release and every retired version has drained.
  EXPECT_EQ(store->TotalAcquires(), store->TotalReleases());
  EXPECT_EQ(store->LiveVersionCount(), 1u);
  ASSERT_TRUE(store->CheckConsistency().ok());
}

// Retired versions drain in session-close order, not publish order.
TEST(SnapshotSwapTest, RetiredVersionsDrainAsSessionsClose) {
  SnapshotOptions sopt = OptionsFor("ccam_swap_drain_store");
  Network net = GenerateRandomGeometricNetwork(80, 180.0, 1000.0, 7);
  auto mgr = SnapshotManager::Create(sopt, net);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  SnapshotManager* store = mgr->get();

  std::unique_ptr<SnapshotSession> s1 = store->OpenSession();
  ASSERT_TRUE(store->ReorganizeNow().ok());
  std::unique_ptr<SnapshotSession> s2 = store->OpenSession();
  ASSERT_TRUE(store->ReorganizeNow().ok());
  std::unique_ptr<SnapshotSession> s3 = store->OpenSession();

  EXPECT_EQ(s1->version_id(), 1u);
  EXPECT_EQ(s2->version_id(), 2u);
  EXPECT_EQ(s3->version_id(), 3u);
  EXPECT_EQ(store->LiveVersionCount(), 3u);

  // Close the middle session first: its version drains while the
  // older one stays alive — retirement is refcount-driven, not FIFO.
  s2.reset();
  EXPECT_EQ(store->LiveVersionCount(), 2u);
  EXPECT_TRUE(s1->Find(net.NodeIds().front()).ok());
  s1.reset();
  EXPECT_EQ(store->LiveVersionCount(), 1u);
  s3.reset();
  EXPECT_EQ(store->LiveVersionCount(), 1u);
  EXPECT_EQ(store->TotalAcquires(), store->TotalReleases());
}

// The availability guarantee, measured at the accounting level: a
// session's query results AND its per-session IoStats are bit-identical
// whether a background build is provably in flight or the store is
// quiescent. Two stores created from the same network run the same read
// script; one has a gated reorganization parked mid-build.
TEST(SnapshotSwapTest, GatedBuildKeepsReadsAndIoStatsBitIdentical) {
  Network net = GenerateRandomGeometricNetwork(160, 130.0, 1000.0, 1995);

  SnapshotOptions quiet_opt = OptionsFor("ccam_swap_quiet_store");
  SnapshotOptions busy_opt = OptionsFor("ccam_swap_busy_store");
  auto quiet = SnapshotManager::Create(quiet_opt, net);
  auto busy = SnapshotManager::Create(busy_opt, net);
  ASSERT_TRUE(quiet.ok()) << quiet.status().ToString();
  ASSERT_TRUE(busy.ok()) << busy.status().ToString();

  // Identical acked mutations on both stores, so the overlays match.
  std::vector<NodeId> ids = net.NodeIds();
  for (int i = 0; i < 10; ++i) {
    NodeRecord rec;
    rec.id = 100000 + static_cast<NodeId>(i);
    rec.x = static_cast<double>(i);
    rec.y = 2.0;
    rec.succ.push_back({ids[i], 1.0f});
    ASSERT_TRUE((*quiet)->InsertNode(rec).ok());
    ASSERT_TRUE((*busy)->InsertNode(rec).ok());
  }

  // Park a build mid-flight on the busy store: it completes the
  // reclustering, then blocks before publish until released.
  (*busy)->GatePublish(true);
  ASSERT_TRUE((*busy)->StartBackgroundReorg().ok());

  std::unique_ptr<SnapshotSession> qs = (*quiet)->OpenSession();
  std::unique_ptr<SnapshotSession> bs = (*busy)->OpenSession();
  ASSERT_TRUE((*busy)->ReorgActive());

  std::vector<NodeId> live = qs->LiveNodeIds();
  ASSERT_EQ(live, bs->LiveNodeIds());
  for (NodeId id : live) {
    auto want = qs->Find(id);
    auto got = bs->Find(id);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->id, want->id);
    EXPECT_EQ(got->x, want->x);
    EXPECT_EQ(got->succ.size(), want->succ.size());
    auto succ_want = qs->GetSuccessors(id);
    auto succ_got = bs->GetSuccessors(id);
    ASSERT_TRUE(succ_want.ok());
    ASSERT_TRUE(succ_got.ok());
    ASSERT_EQ(succ_got->size(), succ_want->size());
    for (size_t i = 0; i < succ_want->size(); ++i) {
      EXPECT_EQ((*succ_got)[i].id, (*succ_want)[i].id);
    }
  }

  // The accounting must match to the bit: the build reads only the
  // reorganizer's in-memory cut, never the serving version's pages.
  EXPECT_EQ(bs->DataIoStats().reads, qs->DataIoStats().reads);
  EXPECT_EQ(bs->DataIoStats().writes, qs->DataIoStats().writes);
  EXPECT_EQ(bs->DataIoStats().Accesses(), qs->DataIoStats().Accesses());

  ASSERT_TRUE((*busy)->ReorgActive());  // still parked through all reads
  (*busy)->ReleasePublishGate();
  ASSERT_TRUE((*busy)->WaitForReorg().ok());
  EXPECT_EQ((*busy)->CurrentVersionId(), 2u);
  bs->Refresh();
  EXPECT_EQ(bs->version_id(), 2u);
  ASSERT_TRUE((*busy)->CheckConsistency().ok());
}

// Regression for the in-place reorganizers' exclusivity assumption: a
// reader holding a live page pin must never block a swap. The pin holds
// a frame in the *old* version's private buffer pool; the swap installs
// a new version with its own pool, so the two never contend.
TEST(SnapshotSwapTest, ReaderHoldingPagePinNeverBlocksSwap) {
  SnapshotOptions sopt = OptionsFor("ccam_swap_pin_store");
  Network net = GenerateRandomGeometricNetwork(120, 150.0, 1000.0, 11);
  auto mgr = SnapshotManager::Create(sopt, net);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  SnapshotManager* store = mgr->get();

  std::unique_ptr<SnapshotSession> session = store->OpenSession();
  uint64_t v_before = session->version_id();
  PageId pinned = session->PageMap().begin()->second;
  PageGuard guard = session->PinDataPage(pinned);
  ASSERT_TRUE(guard.ok()) << guard.status().ToString();

  // Same thread, pin held: if the swap needed the old version quiesced
  // (or its pages unpinned), this call would deadlock or fail.
  ASSERT_TRUE(store->ReorganizeNow().ok());
  EXPECT_GT(store->CurrentVersionId(), v_before);

  // The pinned frame is still valid — the old version stays alive until
  // this session releases it — and reads through the pin's session
  // keep working.
  EXPECT_TRUE(guard.ok());
  EXPECT_TRUE(session->Find(net.NodeIds().front()).ok());
  EXPECT_EQ(session->version_id(), v_before);

  guard = PageGuard();  // release the pin, then migrate
  session->Refresh();
  EXPECT_GT(session->version_id(), v_before);
  session.reset();
  EXPECT_EQ(store->LiveVersionCount(), 1u);
  EXPECT_EQ(store->TotalAcquires(), store->TotalReleases());
  ASSERT_TRUE(store->CheckConsistency().ok());
}

}  // namespace
}  // namespace ccam
