// Golden-bytes tests pinning the on-disk formats. Disk images are only as
// durable as the encodings; if any of these fail, a format change broke
// compatibility with existing images and must bump/convert instead.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include "src/common/coding.h"
#include "src/core/ccam.h"
#include "src/graph/generator.h"
#include "src/index/zorder.h"
#include "src/storage/page.h"
#include "src/storage/record.h"

namespace ccam {
namespace {

std::string ToHex(const std::string& bytes) {
  static const char kDigits[] = "0123456789abcdef";
  std::string out;
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

TEST(FormatStabilityTest, NodeRecordGoldenBytes) {
  NodeRecord rec;
  rec.id = 0x01020304;
  rec.x = 1.0;   // IEEE-754: 0x3ff0000000000000
  rec.y = -2.0;  // IEEE-754: 0xc000000000000000
  rec.payload = "AB";
  rec.succ = {{7, 0.5f}};   // 0.5f = 0x3f000000
  rec.pred = {{9, 2.0f}};   // 2.0f = 0x40000000

  EXPECT_EQ(ToHex(rec.Encode()),
            // id (LE)
            "04030201"
            // x, y (LE doubles)
            "000000000000f03f"
            "00000000000000c0"
            // payload_len, n_succ, n_pred (LE u16)
            "0200"
            "0100"
            "0100"
            // payload
            "4142"
            // succ {7, 0.5f}
            "07000000" "0000003f"
            // pred {9, 2.0f}
            "09000000" "00000040");
}

TEST(FormatStabilityTest, FixedIntEncodingsAreLittleEndian) {
  std::string s;
  PutFixed16(&s, 0x1122);
  PutFixed32(&s, 0x33445566);
  PutFixed64(&s, 0x778899aabbccddeeULL);
  EXPECT_EQ(ToHex(s), "2211" "66554433" "eeddccbbaa998877");
}

TEST(FormatStabilityTest, SlottedPageHeaderLayout) {
  char buf[128];
  SlottedPage::Initialize(buf, sizeof(buf));
  SlottedPage page(buf, sizeof(buf));
  int slot = page.InsertRecord("xyz");
  ASSERT_EQ(slot, 0);
  // Header: num_slots = 1, heap_start = 128 - 3 = 125 (0x7d).
  EXPECT_EQ(ToHex(std::string(buf, 4)), "0100" "7d00");
  // Slot 0 entry at offset 4: {offset = 125, size = 3}.
  EXPECT_EQ(ToHex(std::string(buf + 4, 4)), "7d00" "0300");
  // Record bytes at the heap start.
  EXPECT_EQ(std::string(buf + 125, 3), "xyz");
}

TEST(FormatStabilityTest, ZOrderCodesAreStable) {
  // These values are baked into every saved spatial index.
  EXPECT_EQ(ZOrderEncode(0x0000ffff, 0x00000000), 0x0000000055555555ULL);
  EXPECT_EQ(ZOrderEncode(0x00000000, 0x0000ffff), 0x00000000aaaaaaaaULL);
  EXPECT_EQ(ZOrderEncode(0xffffffff, 0xffffffff), 0xffffffffffffffffULL);
  EXPECT_EQ(ZOrderFromPoint(0.0, 0.0, 0.0, 1.0), 0u);
}

TEST(FormatStabilityTest, ImageRoundTripAcrossInstancesIsExact) {
  // A saved image must byte-stably describe the same logical file: save,
  // load, re-save — the two images must be identical.
  Network net = GenerateMinneapolisLikeMap(21);
  AccessMethodOptions options;
  options.page_size = 1024;
  std::string path_a = ::testing::TempDir() + "/fmt_a.img";
  std::string path_b = ::testing::TempDir() + "/fmt_b.img";
  {
    Ccam am(options, CcamCreateMode::kStatic);
    ASSERT_TRUE(am.Create(net).ok());
    ASSERT_TRUE(am.SaveImage(path_a).ok());
  }
  {
    Ccam am(options, CcamCreateMode::kStatic);
    ASSERT_TRUE(am.OpenImage(path_a).ok());
    ASSERT_TRUE(am.SaveImage(path_b).ok());
  }
  std::ifstream a(path_a, std::ios::binary), b(path_b, std::ios::binary);
  std::string bytes_a((std::istreambuf_iterator<char>(a)),
                      std::istreambuf_iterator<char>());
  std::string bytes_b((std::istreambuf_iterator<char>(b)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes_a, bytes_b);
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(FormatStabilityTest, OversizedAddNodeRejected) {
  AccessMethodOptions options;
  options.page_size = 512;
  Ccam am(options, CcamCreateMode::kIncremental);
  Network empty;
  ASSERT_TRUE(am.Create(empty).ok());
  NodeRecord rec;
  rec.id = 1;
  rec.payload = std::string(1000, 'p');  // larger than the page
  EXPECT_TRUE(am.AddNode(rec, ReorgPolicy::kFirstOrder).IsNoSpace());
}

}  // namespace
}  // namespace ccam
