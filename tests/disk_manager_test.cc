#include "src/storage/disk_manager.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace ccam {
namespace {

TEST(DiskManagerTest, AllocateReturnsZeroedDistinctPages) {
  DiskManager disk(256);
  PageId a = disk.AllocatePage();
  PageId b = disk.AllocatePage();
  EXPECT_NE(a, b);
  char buf[256];
  ASSERT_TRUE(disk.ReadPage(a, buf).ok());
  for (char c : buf) EXPECT_EQ(c, 0);
}

TEST(DiskManagerTest, WriteThenReadRoundTrip) {
  DiskManager disk(128);
  PageId p = disk.AllocatePage();
  char in[128], out[128];
  for (int i = 0; i < 128; ++i) in[i] = static_cast<char>(i);
  ASSERT_TRUE(disk.WritePage(p, in).ok());
  ASSERT_TRUE(disk.ReadPage(p, out).ok());
  EXPECT_EQ(std::memcmp(in, out, 128), 0);
}

TEST(DiskManagerTest, StatsCountEveryAccess) {
  DiskManager disk(64);
  PageId p = disk.AllocatePage();
  char buf[64] = {};
  (void)disk.WritePage(p, buf);
  (void)disk.WritePage(p, buf);
  (void)disk.ReadPage(p, buf);
  EXPECT_EQ(disk.stats().allocs, 1u);
  EXPECT_EQ(disk.stats().writes, 2u);
  EXPECT_EQ(disk.stats().reads, 1u);
  EXPECT_EQ(disk.stats().Accesses(), 3u);
  disk.ResetStats();
  EXPECT_EQ(disk.stats().Accesses(), 0u);
}

TEST(DiskManagerTest, FreeAndReuse) {
  DiskManager disk(64);
  PageId a = disk.AllocatePage();
  PageId b = disk.AllocatePage();
  EXPECT_EQ(disk.NumAllocatedPages(), 2u);
  ASSERT_TRUE(disk.FreePage(a).ok());
  EXPECT_EQ(disk.NumAllocatedPages(), 1u);
  EXPECT_FALSE(disk.IsAllocated(a));
  EXPECT_TRUE(disk.IsAllocated(b));
  // Freed page is recycled and comes back zeroed.
  char buf[64];
  std::memset(buf, 0xab, sizeof(buf));
  PageId c = disk.AllocatePage();
  EXPECT_EQ(c, a);
  ASSERT_TRUE(disk.ReadPage(c, buf).ok());
  for (char ch : buf) EXPECT_EQ(ch, 0);
}

TEST(DiskManagerTest, AccessAfterFreeFails) {
  DiskManager disk(64);
  PageId p = disk.AllocatePage();
  ASSERT_TRUE(disk.FreePage(p).ok());
  char buf[64] = {};
  EXPECT_TRUE(disk.ReadPage(p, buf).IsIOError());
  EXPECT_TRUE(disk.WritePage(p, buf).IsIOError());
  EXPECT_TRUE(disk.FreePage(p).IsInvalidArgument());  // double free
}

TEST(DiskManagerTest, AccessUnallocatedFails) {
  DiskManager disk(64);
  char buf[64] = {};
  EXPECT_TRUE(disk.ReadPage(42, buf).IsIOError());
  EXPECT_TRUE(disk.WritePage(42, buf).IsIOError());
}

TEST(DiskManagerTest, AllocatedPageIdsSortedAndLive) {
  DiskManager disk(64);
  PageId a = disk.AllocatePage();
  PageId b = disk.AllocatePage();
  PageId c = disk.AllocatePage();
  ASSERT_TRUE(disk.FreePage(b).ok());
  EXPECT_EQ(disk.AllocatedPageIds(), (std::vector<PageId>{a, c}));
}

}  // namespace
}  // namespace ccam
