#include "src/storage/disk_manager.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/storage/wal.h"

namespace ccam {
namespace {

TEST(DiskManagerTest, AllocateReturnsZeroedDistinctPages) {
  DiskManager disk(256);
  PageId a = *disk.AllocatePage();
  PageId b = *disk.AllocatePage();
  EXPECT_NE(a, b);
  char buf[256];
  ASSERT_TRUE(disk.ReadPage(a, buf).ok());
  for (char c : buf) EXPECT_EQ(c, 0);
}

TEST(DiskManagerTest, WriteThenReadRoundTrip) {
  DiskManager disk(128);
  PageId p = *disk.AllocatePage();
  char in[128], out[128];
  for (int i = 0; i < 128; ++i) in[i] = static_cast<char>(i);
  ASSERT_TRUE(disk.WritePage(p, in).ok());
  ASSERT_TRUE(disk.ReadPage(p, out).ok());
  EXPECT_EQ(std::memcmp(in, out, 128), 0);
}

TEST(DiskManagerTest, StatsCountEveryAccess) {
  DiskManager disk(64);
  PageId p = *disk.AllocatePage();
  char buf[64] = {};
  (void)disk.WritePage(p, buf);
  (void)disk.WritePage(p, buf);
  (void)disk.ReadPage(p, buf);
  EXPECT_EQ(disk.stats().allocs, 1u);
  EXPECT_EQ(disk.stats().writes, 2u);
  EXPECT_EQ(disk.stats().reads, 1u);
  EXPECT_EQ(disk.stats().Accesses(), 3u);
  disk.ResetStats();
  EXPECT_EQ(disk.stats().Accesses(), 0u);
}

TEST(DiskManagerTest, FreeAndReuse) {
  DiskManager disk(64);
  PageId a = *disk.AllocatePage();
  PageId b = *disk.AllocatePage();
  EXPECT_EQ(disk.NumAllocatedPages(), 2u);
  ASSERT_TRUE(disk.FreePage(a).ok());
  EXPECT_EQ(disk.NumAllocatedPages(), 1u);
  EXPECT_FALSE(disk.IsAllocated(a));
  EXPECT_TRUE(disk.IsAllocated(b));
  // Freed page is recycled and comes back zeroed.
  char buf[64];
  std::memset(buf, 0xab, sizeof(buf));
  PageId c = *disk.AllocatePage();
  EXPECT_EQ(c, a);
  ASSERT_TRUE(disk.ReadPage(c, buf).ok());
  for (char ch : buf) EXPECT_EQ(ch, 0);
}

TEST(DiskManagerTest, AccessAfterFreeFails) {
  DiskManager disk(64);
  PageId p = *disk.AllocatePage();
  ASSERT_TRUE(disk.FreePage(p).ok());
  char buf[64] = {};
  EXPECT_TRUE(disk.ReadPage(p, buf).IsIOError());
  EXPECT_TRUE(disk.WritePage(p, buf).IsIOError());
  EXPECT_TRUE(disk.FreePage(p).IsInvalidArgument());  // double free
}

TEST(DiskManagerTest, AccessUnallocatedFails) {
  DiskManager disk(64);
  char buf[64] = {};
  EXPECT_TRUE(disk.ReadPage(42, buf).IsIOError());
  EXPECT_TRUE(disk.WritePage(42, buf).IsIOError());
}

TEST(DiskManagerTest, AllocatedPageIdsSortedAndLive) {
  DiskManager disk(64);
  PageId a = *disk.AllocatePage();
  PageId b = *disk.AllocatePage();
  PageId c = *disk.AllocatePage();
  ASSERT_TRUE(disk.FreePage(b).ok());
  EXPECT_EQ(disk.AllocatedPageIds(), (std::vector<PageId>{a, c}));
}

TEST(DiskManagerFaultTest, ShortReadFillsTailAndReportsTypedStatus) {
  FaultInjector faults(1);
  faults.Arm("disk.read",
             {FaultAction::Kind::kShort, Status::Code::kIOError, 40},
             FaultTrigger::Once(1));
  DiskManager disk(128);
  disk.SetFaultInjector(&faults);
  PageId p = *disk.AllocatePage();
  std::string data(128, 'z');
  ASSERT_TRUE(disk.WritePage(p, data.data()).ok());

  char buf[128];
  Status st = disk.ReadPage(p, buf);
  EXPECT_TRUE(st.IsShortRead()) << st.ToString();
  // Page-id context in the message.
  EXPECT_NE(st.message().find("page " + std::to_string(p)),
            std::string::npos)
      << st.ToString();
  // The transferred prefix is real data; the tail is the 0xCD garbage
  // pattern, so a caller that ignores the status reads obvious junk, not
  // stale plausible bytes.
  for (int i = 0; i < 40; ++i) EXPECT_EQ(buf[i], 'z') << i;
  for (int i = 40; i < 128; ++i) {
    EXPECT_EQ(static_cast<unsigned char>(buf[i]), 0xCD) << i;
  }
  // A short read is not a completed read: it must not count.
  EXPECT_EQ(disk.stats().reads, 0u);
  // The next read succeeds (transient fault).
  EXPECT_TRUE(disk.ReadPage(p, buf).ok());
  EXPECT_EQ(disk.stats().reads, 1u);
}

TEST(DiskManagerFaultTest, TornWriteKeepsOldTailAndReportsTypedStatus) {
  FaultInjector faults(1);
  ASSERT_TRUE(faults.Configure("disk.write=torn:16@2").ok());
  DiskManager disk(64);
  disk.SetFaultInjector(&faults);
  PageId p = *disk.AllocatePage();
  std::string old_data(64, 'a');
  ASSERT_TRUE(disk.WritePage(p, old_data.data()).ok());  // hit 1: clean
  std::string new_data(64, 'b');
  Status st = disk.WritePage(p, new_data.data());        // hit 2: torn
  EXPECT_TRUE(st.IsShortWrite()) << st.ToString();
  EXPECT_NE(st.message().find("page " + std::to_string(p)),
            std::string::npos);

  char buf[64];
  ASSERT_TRUE(disk.ReadPage(p, buf).ok());
  for (int i = 0; i < 16; ++i) EXPECT_EQ(buf[i], 'b') << i;
  for (int i = 16; i < 64; ++i) EXPECT_EQ(buf[i], 'a') << i;
  EXPECT_EQ(disk.stats().writes, 1u);  // only the complete write counted
}

TEST(DiskManagerFaultTest, AllocationNoSpace) {
  FaultInjector faults(1);
  ASSERT_TRUE(faults.Configure("disk.alloc=nospace@2").ok());
  DiskManager disk(64);
  disk.SetFaultInjector(&faults);
  ASSERT_TRUE(disk.AllocatePage().ok());
  auto res = disk.AllocatePage();
  EXPECT_TRUE(res.status().IsNoSpace()) << res.status().ToString();
  // Transient: the device recovers on the next attempt.
  EXPECT_TRUE(disk.AllocatePage().ok());
}

TEST(DiskManagerFaultTest, CrashHaltsDeviceUntilCleared) {
  FaultInjector faults(1);
  ASSERT_TRUE(faults.Configure("disk.write=crash:8@1").ok());
  DiskManager disk(64);
  disk.SetFaultInjector(&faults);
  PageId p = *disk.AllocatePage();
  std::string data(64, 'x');
  EXPECT_TRUE(disk.WritePage(p, data.data()).IsIOError());
  EXPECT_TRUE(disk.halted());
  // Every simulated I/O fails while halted.
  char buf[64];
  EXPECT_TRUE(disk.ReadPage(p, buf).IsIOError());
  EXPECT_TRUE(disk.WritePage(p, data.data()).IsIOError());
  EXPECT_TRUE(disk.AllocatePage().status().IsIOError());
  EXPECT_TRUE(disk.FreePage(p).IsIOError());
  // The torn 8-byte prefix landed before the halt.
  disk.ClearHalt();
  ASSERT_TRUE(disk.ReadPage(p, buf).ok());
  for (int i = 0; i < 8; ++i) EXPECT_EQ(buf[i], 'x') << i;
  for (int i = 8; i < 64; ++i) EXPECT_EQ(buf[i], 0) << i;
}

TEST(DiskManagerFaultTest, LoadFromFileResetsHalt) {
  FaultInjector faults(1);
  ASSERT_TRUE(faults.Configure("disk.write=crash:0@1").ok());
  DiskManager disk(64);
  disk.SetFaultInjector(&faults);
  PageId p = *disk.AllocatePage();
  std::string data(64, 'x');
  ASSERT_TRUE(disk.WritePage(p, data.data()).IsIOError());
  ASSERT_TRUE(disk.halted());
  // Host-level snapshot works on a halted device (the platter survives).
  std::string path = ::testing::TempDir() + "ccam_halted.img";
  ASSERT_TRUE(disk.SaveToFile(path).ok());
  // A restored image is a fresh device: the halt clears.
  {
    FaultInjector::SuppressScope suppress(&faults);
    ASSERT_TRUE(disk.LoadFromFile(path).ok());
  }
  EXPECT_FALSE(disk.halted());
  char buf[64];
  FaultInjector::SuppressScope suppress(&faults);
  EXPECT_TRUE(disk.ReadPage(p, buf).ok());
  std::remove(path.c_str());
}

TEST(DiskManagerChecksumTest, VerifyPageDetectsTornContent) {
  FaultInjector faults(3);
  DiskManager disk(64);
  disk.SetFaultInjector(&faults);
  PageId p = *disk.AllocatePage();
  // A freshly allocated page matches its (zero) seal.
  EXPECT_TRUE(disk.VerifyPage(p).ok());
  std::string data(64, 'a');
  ASSERT_TRUE(disk.WritePage(p, data.data()).ok());
  EXPECT_TRUE(disk.VerifyPage(p).ok());
  // Tear the next write: the page now holds new-head/old-tail content that
  // no complete write ever produced, and the old seal no longer matches.
  ASSERT_TRUE(faults.Configure("disk.write=torn:16@1").ok());
  std::string next(64, 'b');
  EXPECT_FALSE(disk.WritePage(p, next.data()).ok());
  Status st = disk.VerifyPage(p);
  EXPECT_TRUE(st.IsCorruption()) << st.ToString();
}

TEST(DiskManagerChecksumTest, OptInReadVerificationReturnsCorruption) {
  FaultInjector faults(3);
  DiskManager disk(64);
  disk.SetFaultInjector(&faults);
  PageId p = *disk.AllocatePage();
  std::string data(64, 'a');
  ASSERT_TRUE(disk.WritePage(p, data.data()).ok());
  ASSERT_TRUE(faults.Configure("disk.write=torn:16@1").ok());
  std::string next(64, 'b');
  EXPECT_FALSE(disk.WritePage(p, next.data()).ok());
  // Default read semantics: the torn bytes come back as-is (the paper
  // experiments and the detect-only crash tests rely on this).
  char buf[64];
  EXPECT_TRUE(disk.ReadPage(p, buf).ok());
  // Opt-in verification: the same read now fails loudly, naming the page.
  disk.SetVerifyChecksums(true);
  Status st = disk.ReadPage(p, buf);
  ASSERT_TRUE(st.IsCorruption()) << st.ToString();
  EXPECT_NE(st.ToString().find("page 0"), std::string::npos);
}

TEST(DiskManagerTxnTest, CommitAppliesStagedWritesAtomically) {
  DiskManager disk(64);
  Wal wal;
  wal.SetDevice(&disk);
  disk.AttachWal(&wal);
  PageId p = *disk.AllocatePage();
  std::string before(64, 'x');
  ASSERT_TRUE(disk.WritePage(p, before.data()).ok());

  ASSERT_TRUE(disk.BeginTxn().ok());
  EXPECT_TRUE(disk.InTxn());
  std::string staged(64, 'y');
  ASSERT_TRUE(disk.WritePage(p, staged.data()).ok());
  PageId q = *disk.AllocatePage();
  ASSERT_TRUE(disk.WritePage(q, staged.data()).ok());
  // Staged reads see the overlay...
  char buf[64];
  ASSERT_TRUE(disk.ReadPage(p, buf).ok());
  EXPECT_EQ(buf[0], 'y');
  ASSERT_TRUE(disk.CommitTxn().ok());
  EXPECT_FALSE(disk.InTxn());
  // ...and after commit the platter holds them, seals included.
  ASSERT_TRUE(disk.ReadPage(p, buf).ok());
  EXPECT_EQ(buf[0], 'y');
  EXPECT_TRUE(disk.VerifyPage(p).ok());
  EXPECT_TRUE(disk.VerifyPage(q).ok());
  // The committed log was checkpointed away.
  EXPECT_EQ(wal.stats().durable_bytes, 0u);
}

TEST(DiskManagerTxnTest, AbortLeavesPlatterUntouched) {
  DiskManager disk(64);
  Wal wal;
  wal.SetDevice(&disk);
  disk.AttachWal(&wal);
  PageId p = *disk.AllocatePage();
  std::string before(64, 'x');
  ASSERT_TRUE(disk.WritePage(p, before.data()).ok());

  ASSERT_TRUE(disk.BeginTxn().ok());
  std::string staged(64, 'y');
  ASSERT_TRUE(disk.WritePage(p, staged.data()).ok());
  PageId q = *disk.AllocatePage();
  std::vector<PageId> touched = disk.TxnTouchedPages();
  EXPECT_EQ(touched.size(), 2u);
  ASSERT_TRUE(disk.AbortTxn().ok());
  char buf[64];
  ASSERT_TRUE(disk.ReadPage(p, buf).ok());
  EXPECT_EQ(buf[0], 'x');
  // The page allocated inside the aborted transaction never existed.
  EXPECT_FALSE(disk.IsAllocated(q));
}

TEST(DiskManagerTxnTest, CrashBetweenFlushAndApplyReplaysFromWal) {
  std::string path = "/tmp/ccam_dm_txn_recover.img";
  FaultInjector faults(5);
  DiskManager disk(64);
  Wal wal;
  wal.SetDevice(&disk);
  wal.SetFaultInjector(&faults);
  disk.AttachWal(&wal);
  disk.SetFaultInjector(&faults);
  PageId p = *disk.AllocatePage();
  std::string before(64, 'x');
  ASSERT_TRUE(disk.WritePage(p, before.data()).ok());

  ASSERT_TRUE(disk.BeginTxn().ok());
  std::string staged(64, 'y');
  ASSERT_TRUE(disk.WritePage(p, staged.data()).ok());
  // Kill the device inside the commit's apply phase: the WAL is flushed
  // (the txn IS committed) but the platter write tears.
  ASSERT_TRUE(faults.Configure("disk.write=crash:16@1").ok());
  EXPECT_FALSE(disk.CommitTxn().ok());
  EXPECT_TRUE(disk.halted());

  // Capture platter + WAL, reload, replay.
  {
    FaultInjector::SuppressScope suppress(&faults);
    ASSERT_TRUE(disk.SaveToFile(path).ok());
  }
  DiskManager reopened(64);
  ASSERT_TRUE(reopened.LoadFromFile(path).ok());
  ASSERT_TRUE(reopened.Recover().ok());
  char buf[64];
  ASSERT_TRUE(reopened.ReadPage(p, buf).ok());
  EXPECT_EQ(buf[0], 'y') << "committed transaction lost";
  EXPECT_TRUE(reopened.VerifyPage(p).ok());
  std::remove(path.c_str());
}

TEST(DiskManagerTxnTest, UncommittedWalTailIsDiscardedOnRecovery) {
  std::string path = "/tmp/ccam_dm_txn_uncommitted.img";
  FaultInjector faults(5);
  DiskManager disk(64);
  Wal wal;
  wal.SetDevice(&disk);
  wal.SetFaultInjector(&faults);
  disk.AttachWal(&wal);
  disk.SetFaultInjector(&faults);
  PageId p = *disk.AllocatePage();
  std::string before(64, 'x');
  ASSERT_TRUE(disk.WritePage(p, before.data()).ok());

  ASSERT_TRUE(disk.BeginTxn().ok());
  std::string staged(64, 'y');
  ASSERT_TRUE(disk.WritePage(p, staged.data()).ok());
  // Kill inside the flush barrier: a torn prefix of the log survives but
  // the commit never became durable.
  ASSERT_TRUE(faults.Configure("wal.flush=crash:40@1").ok());
  EXPECT_FALSE(disk.CommitTxn().ok());
  EXPECT_TRUE(disk.halted());

  {
    FaultInjector::SuppressScope suppress(&faults);
    ASSERT_TRUE(disk.SaveToFile(path).ok());
  }
  DiskManager reopened(64);
  ASSERT_TRUE(reopened.LoadFromFile(path).ok());
  ASSERT_TRUE(reopened.Recover().ok());
  char buf[64];
  ASSERT_TRUE(reopened.ReadPage(p, buf).ok());
  EXPECT_EQ(buf[0], 'x') << "uncommitted transaction leaked to the platter";
  std::remove(path.c_str());
}

TEST(DiskManagerFaultTest, DetachedInjectorCostsNothing) {
  // With no injector attached the fault paths are skipped entirely; with
  // one attached but unarmed, behavior is identical too.
  FaultInjector faults(1);
  DiskManager disk(64);
  disk.SetFaultInjector(&faults);
  PageId p = *disk.AllocatePage();
  std::string data(64, 'q');
  EXPECT_TRUE(disk.WritePage(p, data.data()).ok());
  char buf[64];
  EXPECT_TRUE(disk.ReadPage(p, buf).ok());
  disk.SetFaultInjector(nullptr);
  EXPECT_TRUE(disk.ReadPage(p, buf).ok());
  EXPECT_EQ(disk.fault_injector(), nullptr);
}

}  // namespace
}  // namespace ccam
