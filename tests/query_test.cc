#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <queue>
#include <unordered_map>

#include "src/core/ccam.h"
#include "src/graph/generator.h"
#include "src/query/aggregate.h"
#include "src/query/route_eval.h"
#include "src/query/search.h"

namespace ccam {
namespace {

/// Reference in-memory Dijkstra, for differential testing.
double ReferenceShortestPath(const Network& net, NodeId src, NodeId dst) {
  std::unordered_map<NodeId, double> dist;
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> open;
  open.push({0.0, src});
  dist[src] = 0.0;
  while (!open.empty()) {
    auto [d, u] = open.top();
    open.pop();
    if (d > dist[u] + 1e-12) continue;
    if (u == dst) return d;
    for (const AdjEntry& e : net.node(u).succ) {
      double nd = d + e.cost;
      auto it = dist.find(e.node);
      if (it == dist.end() || nd < it->second) {
        dist[e.node] = nd;
        open.push({nd, e.node});
      }
    }
  }
  return std::numeric_limits<double>::infinity();
}

class QueryTest : public ::testing::Test {
 protected:
  QueryTest() : net_(GenerateMinneapolisLikeMap(1995)) {
    AccessMethodOptions options;
    options.page_size = 1024;
    options.buffer_pool_pages = 8;
    am_ = std::make_unique<Ccam>(options, CcamCreateMode::kStatic);
    EXPECT_TRUE(am_->Create(net_).ok());
  }

  Network net_;
  std::unique_ptr<Ccam> am_;
};

TEST_F(QueryTest, RouteEvalComputesTotalCost) {
  auto routes = GenerateRandomWalkRoutes(net_, 5, 12, 3);
  for (const Route& route : routes) {
    auto result = EvaluateRoute(am_.get(), route);
    ASSERT_TRUE(result.ok());
    double expected = 0.0;
    for (size_t i = 0; i + 1 < route.nodes.size(); ++i) {
      float c;
      ASSERT_TRUE(net_.EdgeCost(route.nodes[i], route.nodes[i + 1], &c).ok());
      expected += c;
    }
    EXPECT_NEAR(result->total_cost, expected, 1e-3);
    EXPECT_EQ(result->num_edges, route.nodes.size() - 1);
  }
}

TEST_F(QueryTest, RouteEvalFailsOnBrokenRoute) {
  Route bad;
  bad.nodes = {0, 999999};
  EXPECT_FALSE(EvaluateRoute(am_.get(), bad).ok());
  // A pair of nodes with no edge also fails.
  NodeId u = 0, v = 600;
  ASSERT_FALSE(net_.HasEdge(u, v));
  Route noedge;
  noedge.nodes = {u, v};
  EXPECT_FALSE(EvaluateRoute(am_.get(), noedge).ok());
}

TEST_F(QueryTest, EmptyRouteIsFree) {
  auto result = EvaluateRoute(am_.get(), Route{});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->page_accesses, 0u);
}

TEST_F(QueryTest, RouteEvalIoMatchesCostFormulaWithOnePageBuffer) {
  // The paper's model: 1 + (L-1)(1-alpha) with one data-page buffer.
  AccessMethodOptions options;
  options.page_size = 2048;
  options.buffer_pool_pages = 1;
  Ccam am(options, CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net_).ok());
  double alpha = ComputeCrr(net_, am.PageMap());

  auto routes = GenerateRandomWalkRoutes(net_, 100, 20, 9);
  uint64_t total = 0;
  for (const Route& r : routes) {
    ASSERT_TRUE(am.buffer_pool()->Reset().ok());
    auto res = EvaluateRoute(&am, r);
    ASSERT_TRUE(res.ok());
    total += res->page_accesses;
  }
  double actual = static_cast<double>(total) / routes.size();
  double predicted = 1 + 19 * (1 - alpha);
  // Random-walk locality makes actual <= predicted, but the same order.
  EXPECT_LT(actual, predicted * 1.15);
  EXPECT_GT(actual, predicted * 0.4);
}

TEST_F(QueryTest, DijkstraMatchesReferenceCosts) {
  for (auto [src, dst] : std::vector<std::pair<NodeId, NodeId>>{
           {0, 1000}, {5, 900}, {250, 750}, {42, 43}}) {
    auto result = ShortestPathDijkstra(am_.get(), src, dst);
    ASSERT_TRUE(result.ok());
    double expected = ReferenceShortestPath(net_, src, dst);
    ASSERT_TRUE(result->Found());
    EXPECT_NEAR(result->cost, expected, expected * 1e-5 + 1e-6);
    // Path endpoints and continuity.
    EXPECT_EQ(result->path.front(), src);
    EXPECT_EQ(result->path.back(), dst);
    for (size_t i = 0; i + 1 < result->path.size(); ++i) {
      EXPECT_TRUE(net_.HasEdge(result->path[i], result->path[i + 1]));
    }
  }
}

TEST_F(QueryTest, AStarFindsSameCostWithFewerExpansions) {
  NodeId src = 0, dst = 1000;
  auto dij = ShortestPathDijkstra(am_.get(), src, dst);
  auto astar = ShortestPathAStar(am_.get(), src, dst, 0.7);
  ASSERT_TRUE(dij.ok());
  ASSERT_TRUE(astar.ok());
  ASSERT_TRUE(astar->Found());
  EXPECT_NEAR(astar->cost, dij->cost, dij->cost * 1e-6);
  EXPECT_LT(astar->nodes_expanded, dij->nodes_expanded);
}

TEST_F(QueryTest, SearchToSelfIsFree) {
  auto res = ShortestPathDijkstra(am_.get(), 7, 7);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->cost, 0.0);
  EXPECT_EQ(res->path, std::vector<NodeId>{7});
}

TEST_F(QueryTest, SearchMissingNodeFails) {
  EXPECT_FALSE(ShortestPathDijkstra(am_.get(), 0, 999999).ok());
  EXPECT_FALSE(ShortestPathDijkstra(am_.get(), 999999, 0).ok());
}

TEST_F(QueryTest, RouteUnitAggregation) {
  auto routes = GenerateRandomWalkRoutes(net_, 1, 15, 21);
  ASSERT_EQ(routes.size(), 1u);
  RouteUnit unit;
  unit.name = "route 21";
  double expected_total = 0.0;
  for (size_t i = 0; i + 1 < routes[0].nodes.size(); ++i) {
    unit.edges.emplace_back(routes[0].nodes[i], routes[0].nodes[i + 1]);
    float c;
    ASSERT_TRUE(
        net_.EdgeCost(routes[0].nodes[i], routes[0].nodes[i + 1], &c).ok());
    expected_total += c;
  }
  auto agg = AggregateRouteUnit(am_.get(), unit);
  ASSERT_TRUE(agg.ok());
  EXPECT_NEAR(agg->total_edge_cost, expected_total, 1e-3);
  EXPECT_EQ(agg->num_edges, unit.edges.size());
  EXPECT_GE(agg->max_edge_cost, agg->min_edge_cost);
  EXPECT_GT(agg->num_nodes, 0u);
}

TEST_F(QueryTest, EmptyRouteUnit) {
  auto agg = AggregateRouteUnit(am_.get(), RouteUnit{"empty", {}});
  ASSERT_TRUE(agg.ok());
  EXPECT_EQ(agg->num_edges, 0u);
  EXPECT_EQ(agg->total_edge_cost, 0.0);
}

TEST_F(QueryTest, TourEvaluationClosesTheLoop) {
  // Find a short cycle: a bidirectional edge gives u -> v -> u.
  NodeId u = kInvalidNodeId, v = kInvalidNodeId;
  for (const auto& e : net_.Edges()) {
    if (net_.HasEdge(e.to, e.from)) {
      u = e.from;
      v = e.to;
      break;
    }
  }
  ASSERT_NE(u, kInvalidNodeId);
  Route tour;
  tour.nodes = {u, v};  // open: EvaluateTour must close it
  auto res = EvaluateTour(am_.get(), tour);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->num_edges, 2u);
  float c1, c2;
  ASSERT_TRUE(net_.EdgeCost(u, v, &c1).ok());
  ASSERT_TRUE(net_.EdgeCost(v, u, &c2).ok());
  EXPECT_NEAR(res->total_cost, double{c1} + double{c2}, 1e-4);
}

TEST_F(QueryTest, TourTooShortRejected) {
  Route tiny;
  tiny.nodes = {3};
  EXPECT_TRUE(EvaluateTour(am_.get(), tiny).status().IsInvalidArgument());
}

TEST_F(QueryTest, LocationAllocationServesReachableDemands) {
  std::vector<NodeId> facilities{10, 500, 900};
  std::vector<NodeId> demands;
  for (NodeId id = 0; id < 1079; id += 25) demands.push_back(id);
  auto res = EvaluateLocationAllocation(am_.get(), facilities, demands);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res->num_served, demands.size() * 9 / 10);
  EXPECT_GT(res->total_cost, 0.0);
  EXPECT_GE(res->max_cost, res->total_cost / res->num_served);
  // A facility node itself is served at distance 0.
  auto only_facility = EvaluateLocationAllocation(am_.get(), {10}, {10});
  ASSERT_TRUE(only_facility.ok());
  EXPECT_EQ(only_facility->num_served, 1u);
  EXPECT_EQ(only_facility->total_cost, 0.0);
}

TEST_F(QueryTest, LocationAllocationNeedsFacilities) {
  EXPECT_TRUE(EvaluateLocationAllocation(am_.get(), {}, {1})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(QueryTest, MultiSourceDistancesAreShortest) {
  std::vector<NodeId> sources{0, 1000};
  auto res = MultiSourceDistances(am_.get(), sources);
  ASSERT_TRUE(res.ok());
  std::unordered_map<NodeId, double> dist;
  for (const auto& [node, d] : res->distances) dist[node] = d;
  for (NodeId probe : {57u, 333u, 808u}) {
    double expected = std::min(ReferenceShortestPath(net_, 0, probe),
                               ReferenceShortestPath(net_, 1000, probe));
    if (std::isinf(expected)) {
      EXPECT_EQ(dist.count(probe), 0u);
    } else {
      ASSERT_TRUE(dist.count(probe)) << probe;
      EXPECT_NEAR(dist[probe], expected, expected * 1e-5 + 1e-6);
    }
  }
}

}  // namespace
}  // namespace ccam
