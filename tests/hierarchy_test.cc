#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/random.h"
#include "src/core/ccam.h"
#include "src/core/query_session.h"
#include "src/graph/generator.h"
#include "src/query/hierarchy.h"
#include "src/query/search.h"

namespace ccam {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

struct Topology {
  const char* name;
  Network net;
  /// Smallest page size whose data file can host this topology (scale-free
  /// hub records outgrow a 512-byte page — a data-file limit, not an
  /// overlay one).
  size_t min_page_size;
};

std::vector<Topology> AllTopologies() {
  std::vector<Topology> out;
  out.push_back({"minneapolis", GenerateMinneapolisLikeMap(1995), 512});
  out.push_back({"geometric", GenerateRandomGeometricNetwork(400, 80.0), 512});
  out.push_back({"ring-radial", GenerateRingRadialCity(8, 12), 512});
  out.push_back({"scale-free", GenerateScaleFreeNetwork(300), 2048});
  return out;
}

std::unique_ptr<Ccam> MakeOverlayFile(const Network& net, size_t page_size) {
  AccessMethodOptions options;
  options.page_size = page_size;
  options.buffer_pool_pages = 8;
  options.hierarchy_overlay = true;
  auto am = std::make_unique<Ccam>(options, CcamCreateMode::kStatic);
  EXPECT_TRUE(am->Create(net).ok());
  EXPECT_TRUE(am->HasHierarchy());
  return am;
}

/// Checks one CH answer against the paged Dijkstra oracle: same
/// reachability, same cost, and an unpacked path that is a real
/// src..dst walk over original edges summing to the reported cost.
void ExpectMatchesOracle(const Network& net, const SearchResult& ch,
                         const SearchResult& dj, NodeId src, NodeId dst) {
  ASSERT_EQ(ch.Found(), dj.Found()) << src << "->" << dst;
  if (!dj.Found()) return;
  // Costs are double sums of the same float edge costs, associated
  // differently (shortcut costs pre-sum their halves), so allow only
  // accumulation-order noise.
  EXPECT_NEAR(ch.cost, dj.cost, 1e-6 * (1.0 + dj.cost)) << src << "->" << dst;
  ASSERT_GE(ch.path.size(), 1u);
  EXPECT_EQ(ch.path.front(), src);
  EXPECT_EQ(ch.path.back(), dst);
  double walked = 0.0;
  for (size_t i = 0; i + 1 < ch.path.size(); ++i) {
    float c = 0.0f;
    ASSERT_TRUE(net.EdgeCost(ch.path[i], ch.path[i + 1], &c).ok())
        << "unpacked step " << ch.path[i] << "->" << ch.path[i + 1]
        << " is not an original edge";
    walked += c;
  }
  EXPECT_NEAR(walked, ch.cost, 1e-6 * (1.0 + ch.cost));
}

// The equivalence oracle: >= 500 random pairs across every generator
// topology and both extreme page sizes (4 x 2 x 64 = 512 pairs).
TEST(HierarchyOracleTest, MatchesDijkstraAcrossTopologiesAndPageSizes) {
  for (Topology& topo : AllTopologies()) {
    std::vector<NodeId> ids = topo.net.NodeIds();
    for (size_t page_size : {topo.min_page_size, size_t{4096}}) {
      auto am = MakeOverlayFile(topo.net, page_size);
      Random rng(0xCC + page_size);
      for (int i = 0; i < 64; ++i) {
        NodeId src = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
        NodeId dst = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
        auto ch = ShortestPathCH(am.get(), src, dst);
        ASSERT_TRUE(ch.ok()) << topo.name << ": " << ch.status().message();
        auto dj = ShortestPathDijkstra(am.get(), src, dst);
        ASSERT_TRUE(dj.ok());
        ExpectMatchesOracle(topo.net, *ch, *dj, src, dst);
      }
    }
  }
}

TEST(HierarchyOracleTest, SelfQueryReturnsTrivialPath) {
  Network net = GenerateRingRadialCity(4, 6);
  auto am = MakeOverlayFile(net, 1024);
  NodeId n = net.NodeIds()[3];
  auto r = ShortestPathCH(am.get(), n, n);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->path, std::vector<NodeId>{n});
  EXPECT_EQ(r->cost, 0.0);
}

// The overlay bytes are a pure function of the network and the options:
// any worker count produces the identical image.
TEST(HierarchyDeterminismTest, OverlayBytesIdenticalAcrossThreadCounts) {
  Network net = GenerateMinneapolisLikeMap(1995);
  std::string reference;
  for (int threads : {1, 2, 4}) {
    AccessMethodOptions options;
    options.page_size = 1024;
    options.hierarchy_overlay = true;
    options.num_threads = threads;
    Ccam am(options, CcamCreateMode::kStatic);
    ASSERT_TRUE(am.Create(net).ok());
    ASSERT_TRUE(am.HasHierarchy());
    std::string path =
        TempPath("hier_det_" + std::to_string(threads) + ".bin");
    ASSERT_TRUE(am.hierarchy()->SaveImage(path).ok());
    std::string bytes = ReadFileBytes(path);
    std::remove(path.c_str());
    ASSERT_FALSE(bytes.empty());
    if (reference.empty()) {
      reference = bytes;
    } else {
      EXPECT_EQ(bytes, reference) << "threads=" << threads;
    }
  }
}

TEST(HierarchyInvalidationTest, MutationDropsOverlayAndRebuildRestoresIt) {
  Network net = GenerateMinneapolisLikeMap(1995);
  auto am = MakeOverlayFile(net, 1024);
  std::vector<NodeId> ids = net.NodeIds();
  NodeId src = ids.front(), dst = ids.back();
  ASSERT_TRUE(ShortestPathCH(am.get(), src, dst).ok());

  // Any maintenance operation invalidates the overlay...
  ASSERT_TRUE(
      am->InsertEdge(ids[0], ids[5], 123.0f, ReorgPolicy::kFirstOrder).ok());
  EXPECT_FALSE(am->HasHierarchy());
  EXPECT_TRUE(ShortestPathCH(am.get(), src, dst).status().IsNotSupported());

  // ...and an explicit rebuild rescans the file and restores CH queries,
  // now seeing the new edge.
  ASSERT_TRUE(am->BuildHierarchyOverlay().ok());
  ASSERT_TRUE(am->HasHierarchy());
  auto ch = ShortestPathCH(am.get(), ids[0], ids[5]);
  auto dj = ShortestPathDijkstra(am.get(), ids[0], ids[5]);
  ASSERT_TRUE(ch.ok());
  ASSERT_TRUE(dj.ok());
  EXPECT_NEAR(ch->cost, dj->cost, 1e-6 * (1.0 + dj->cost));
  EXPECT_TRUE(am->hierarchy()->CheckInvariants().ok());
}

TEST(HierarchyPersistenceTest, OverlayRoundTripsThroughImages) {
  Network net = GenerateRingRadialCity(8, 12);
  auto am = MakeOverlayFile(net, 1024);
  std::string path = TempPath("hier_roundtrip.bin");
  ASSERT_TRUE(am->SaveImage(path).ok());

  AccessMethodOptions options = am->options();
  Ccam reopened(options, CcamCreateMode::kStatic);
  ASSERT_TRUE(reopened.OpenImage(path).ok());
  ASSERT_TRUE(reopened.HasHierarchy());
  EXPECT_TRUE(reopened.hierarchy()->CheckInvariants().ok());

  std::vector<NodeId> ids = net.NodeIds();
  Random rng(77);
  for (int i = 0; i < 16; ++i) {
    NodeId src = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
    NodeId dst = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
    auto ch = ShortestPathCH(&reopened, src, dst);
    auto dj = ShortestPathDijkstra(&reopened, src, dst);
    ASSERT_TRUE(ch.ok());
    ASSERT_TRUE(dj.ok());
    ExpectMatchesOracle(net, *ch, *dj, src, dst);
  }
  std::remove(path.c_str());
  std::remove((path + ".hier").c_str());
}

TEST(HierarchyPersistenceTest, MissingSidecarReopensWithoutOverlay) {
  Network net = GenerateRingRadialCity(4, 6);
  auto am = MakeOverlayFile(net, 1024);
  std::string path = TempPath("hier_no_sidecar.bin");
  ASSERT_TRUE(am->SaveImage(path).ok());
  std::remove((path + ".hier").c_str());

  Ccam reopened(am->options(), CcamCreateMode::kStatic);
  ASSERT_TRUE(reopened.OpenImage(path).ok());
  EXPECT_FALSE(reopened.HasHierarchy());
  // The data file itself is intact: flat queries still work.
  std::vector<NodeId> ids = net.NodeIds();
  EXPECT_TRUE(ShortestPathDijkstra(&reopened, ids.front(), ids.back()).ok());
  std::remove(path.c_str());
}

TEST(HierarchySessionTest, OverlayIoIsChargedPerSession) {
  Network net = GenerateMinneapolisLikeMap(1995);
  auto am = MakeOverlayFile(net, 1024);
  std::vector<NodeId> ids = net.NodeIds();

  auto session = am->OpenSession();
  ASSERT_TRUE(session->HasHierarchy());
  auto ch = ShortestPathCH(session.get(), ids.front(), ids.back());
  ASSERT_TRUE(ch.ok());
  ASSERT_TRUE(ch->Found());
  // A long query climbs the hierarchy: overlay reads are charged to this
  // session and surface in the search's page_accesses...
  EXPECT_GT(session->HierarchyIoStats().Accesses(), 0u);
  EXPECT_EQ(ch->page_accesses, session->HierarchyIoStats().Accesses() +
                                   session->DataIoStats().Accesses());
  // ...and ResetIoStats clears both families.
  session->ResetIoStats();
  EXPECT_EQ(session->HierarchyIoStats().Accesses(), 0u);
}

// Concurrency hammer (run under TSan via check_tsan.sh): many sessions
// fire CH queries at one shared overlay at once. ReadNode's pool path must
// be race-free and every thread must get the single-threaded answer.
TEST(HierarchySessionTest, ConcurrentSessionsAgreeWithSerialAnswers) {
  Network net = GenerateMinneapolisLikeMap(1995);
  auto am = MakeOverlayFile(net, 1024);
  std::vector<NodeId> ids = net.NodeIds();

  const int kThreads = 8, kQueries = 16;
  std::vector<std::pair<NodeId, NodeId>> pairs;
  Random rng(99);
  for (int i = 0; i < kQueries; ++i) {
    pairs.emplace_back(ids[rng.Uniform(static_cast<uint32_t>(ids.size()))],
                       ids[rng.Uniform(static_cast<uint32_t>(ids.size()))]);
  }
  std::vector<double> serial;
  for (auto& [src, dst] : pairs) {
    auto r = ShortestPathCH(am.get(), src, dst);
    ASSERT_TRUE(r.ok());
    serial.push_back(r->Found() ? r->cost : -1.0);
  }

  std::vector<std::thread> workers;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      auto session = am->OpenSession();
      for (size_t i = 0; i < pairs.size(); ++i) {
        auto r = ShortestPathCH(session.get(), pairs[i].first,
                                pairs[i].second);
        if (!r.ok() || (r->Found() ? r->cost : -1.0) != serial[i]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(HierarchyOverlayTest, IncrementalCreateBuildsOverlayToo) {
  Network net = GenerateRingRadialCity(6, 8);
  AccessMethodOptions options;
  options.page_size = 1024;
  options.hierarchy_overlay = true;
  Ccam am(options, CcamCreateMode::kIncremental);
  ASSERT_TRUE(am.Create(net).ok());
  ASSERT_TRUE(am.HasHierarchy());
  EXPECT_TRUE(am.hierarchy()->CheckInvariants().ok());
  std::vector<NodeId> ids = net.NodeIds();
  auto ch = ShortestPathCH(&am, ids.front(), ids.back());
  auto dj = ShortestPathDijkstra(&am, ids.front(), ids.back());
  ASSERT_TRUE(ch.ok());
  ASSERT_TRUE(dj.ok());
  ExpectMatchesOracle(net, *ch, *dj, ids.front(), ids.back());
}

}  // namespace
}  // namespace ccam
