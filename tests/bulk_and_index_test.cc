#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/ccam.h"
#include "src/graph/generator.h"

namespace ccam {
namespace {

AccessMethodOptions Opts() {
  AccessMethodOptions options;
  options.page_size = 1024;
  options.buffer_pool_pages = 8;
  options.maintain_bptree_index = true;
  return options;
}

struct SplitNet {
  Network full;
  Network base;
  std::vector<NodeRecord> stream;
};

SplitNet MakeSplit(uint64_t seed, size_t stream_size) {
  SplitNet out;
  out.full = GenerateMinneapolisLikeMap(seed);
  Random rng(seed);
  std::vector<NodeId> ids = out.full.NodeIds();
  rng.Shuffle(&ids);
  std::vector<NodeId> stream_ids(ids.begin(), ids.begin() + stream_size);
  std::vector<NodeId> base_ids(ids.begin() + stream_size, ids.end());
  out.base = out.full.InducedSubnetwork(base_ids);
  for (NodeId id : stream_ids) {
    out.stream.push_back(NodeRecord::FromNetworkNode(id, out.full.node(id)));
  }
  return out;
}

TEST(BulkInsertTest, InsertsEverythingConsistently) {
  SplitNet split = MakeSplit(42, 150);
  Ccam am(Opts(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(split.base).ok());
  ASSERT_TRUE(am.BulkInsert(split.stream, ReorgPolicy::kSecondOrder).ok());
  EXPECT_EQ(am.PageMap().size(), split.full.NumNodes());
  ASSERT_TRUE(am.CheckFileInvariants().ok());
  for (const NodeRecord& rec : split.stream) {
    auto found = am.Find(rec.id);
    ASSERT_TRUE(found.ok()) << rec.id;
    EXPECT_EQ(found->succ.size(), split.full.node(rec.id).succ.size());
  }
}

TEST(BulkInsertTest, CheaperThanPerInsertHigherOrderReorganization) {
  // A single deferred pass over the union of touched pages beats paying
  // the higher-order reorganization on every insert. (Under second-order,
  // per-insert reorganization re-reads pages that are still buffered, so
  // the batch advantage there is CPU, not I/O.)
  SplitNet split = MakeSplit(43, 150);
  uint64_t io_bulk, io_each;
  double crr_bulk, crr_each;
  {
    Ccam am(Opts(), CcamCreateMode::kStatic);
    ASSERT_TRUE(am.Create(split.base).ok());
    am.ResetIoStats();
    ASSERT_TRUE(am.BulkInsert(split.stream, ReorgPolicy::kHigherOrder).ok());
    io_bulk = am.DataIoStats().Accesses();
    crr_bulk = ComputeCrr(split.full, am.PageMap());
  }
  {
    Ccam am(Opts(), CcamCreateMode::kStatic);
    ASSERT_TRUE(am.Create(split.base).ok());
    am.ResetIoStats();
    for (const NodeRecord& rec : split.stream) {
      ASSERT_TRUE(am.InsertNode(rec, ReorgPolicy::kHigherOrder).ok());
    }
    io_each = am.DataIoStats().Accesses();
    crr_each = ComputeCrr(split.full, am.PageMap());
  }
  EXPECT_LT(io_bulk, io_each);
  EXPECT_GT(crr_bulk, crr_each - 0.06);  // comparable clustering quality
}

TEST(BulkInsertTest, FirstOrderBulkSkipsReorganization) {
  SplitNet split = MakeSplit(44, 50);
  Ccam am(Opts(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(split.base).ok());
  ASSERT_TRUE(am.BulkInsert(split.stream, ReorgPolicy::kFirstOrder).ok());
  ASSERT_TRUE(am.CheckFileInvariants().ok());
}

TEST(BulkInsertTest, EmptyBatchIsNoOp) {
  Network net = GenerateMinneapolisLikeMap(3);
  Ccam am(Opts(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  ASSERT_TRUE(am.BulkInsert({}, ReorgPolicy::kHigherOrder).ok());
  EXPECT_EQ(am.PageMap().size(), net.NumNodes());
}

TEST(FindViaIndexTest, AgreesWithFind) {
  Network net = GenerateMinneapolisLikeMap(1995);
  Ccam am(Opts(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  for (NodeId id : {0u, 17u, 512u, 1078u}) {
    auto direct = am.Find(id);
    auto via_index = am.FindViaIndex(id);
    ASSERT_TRUE(direct.ok());
    ASSERT_TRUE(via_index.ok());
    EXPECT_EQ(*direct, *via_index);
  }
  EXPECT_TRUE(am.FindViaIndex(99999).status().IsNotFound());
}

TEST(FindViaIndexTest, ChargesIndexIoSeparately) {
  AccessMethodOptions options = Opts();
  options.index_pool_pages = 4;  // small index buffer: descents pay I/O
  Network net = GenerateMinneapolisLikeMap(1995);
  Ccam am(options, CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  ASSERT_TRUE(am.IndexIoStats().has_value());
  uint64_t index_io_before = am.IndexIoStats()->Accesses();
  am.ResetIoStats();
  Random rng(1);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(am.FindViaIndex(rng.Uniform(1079)).ok());
  }
  uint64_t data_io = am.DataIoStats().Accesses();
  uint64_t index_io = am.IndexIoStats()->Accesses() - index_io_before;
  EXPECT_GT(index_io, 0u);       // the descents hit the (tiny) index pool
  EXPECT_LE(data_io, 100u);      // exactly one data page per find at most
  EXPECT_GT(index_io, data_io);  // tree height > 1 with a cold pool
}

TEST(FindViaIndexTest, RequiresMaintainedIndex) {
  AccessMethodOptions options = Opts();
  options.maintain_bptree_index = false;
  Network net = GenerateMinneapolisLikeMap(3);
  Ccam am(options, CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  EXPECT_TRUE(am.FindViaIndex(0).status().IsNotSupported());
}

TEST(FindViaIndexTest, StaysInSyncAcrossUpdates) {
  Network net = GenerateMinneapolisLikeMap(5);
  Ccam am(Opts(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  // Delete + reinsert moves records between pages; the index must follow.
  Random rng(2);
  for (int i = 0; i < 50; ++i) {
    NodeId id = rng.Uniform(1079);
    auto rec = am.Find(id);
    if (!rec.ok()) continue;
    ASSERT_TRUE(am.DeleteNode(id, ReorgPolicy::kSecondOrder).ok());
    ASSERT_TRUE(am.InsertNode(*rec, ReorgPolicy::kSecondOrder).ok());
    auto via_index = am.FindViaIndex(id);
    ASSERT_TRUE(via_index.ok());
    EXPECT_EQ(via_index->id, id);
  }
  ASSERT_TRUE(am.CheckFileInvariants().ok());
}

}  // namespace
}  // namespace ccam
