#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/ccam.h"
#include "src/graph/generator.h"
#include "src/query/route_eval.h"

namespace ccam {
namespace {

/// CCAM maintenance correctness across page sizes and a minimal buffer
/// pool — the configurations the experiments sweep.
struct Config {
  size_t page_size;
  size_t pool_pages;
};

class PageSizeOpsTest : public ::testing::TestWithParam<Config> {};

TEST_P(PageSizeOpsTest, ChurnKeepsFileConsistent) {
  Network net = GenerateMinneapolisLikeMap(777);
  AccessMethodOptions options;
  options.page_size = GetParam().page_size;
  options.buffer_pool_pages = GetParam().pool_pages;
  options.maintain_bptree_index = true;
  Ccam am(options, CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());

  Network mirror = net;
  Random rng(GetParam().page_size + GetParam().pool_pages);
  for (int step = 0; step < 120; ++step) {
    int op = rng.Uniform(4);
    auto ids = mirror.NodeIds();
    NodeId a = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
    NodeId b = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
    switch (op) {
      case 0:
        ASSERT_TRUE(am.DeleteNode(a, ReorgPolicy::kSecondOrder).ok());
        ASSERT_TRUE(mirror.RemoveNode(a).ok());
        break;
      case 1:
        if (a == b || mirror.HasEdge(a, b)) break;
        ASSERT_TRUE(
            am.InsertEdge(a, b, 2.0f, ReorgPolicy::kFirstOrder).ok());
        ASSERT_TRUE(mirror.AddEdge(a, b, 2.0f).ok());
        break;
      case 2:
        if (!mirror.HasEdge(a, b)) break;
        ASSERT_TRUE(am.DeleteEdge(a, b, ReorgPolicy::kHigherOrder).ok());
        ASSERT_TRUE(mirror.RemoveEdge(a, b).ok());
        break;
      default: {
        auto rec = am.Find(a);
        ASSERT_TRUE(rec.ok());
        ASSERT_EQ(rec->succ.size(), mirror.node(a).succ.size());
        break;
      }
    }
  }
  ASSERT_TRUE(am.CheckFileInvariants().ok());
  EXPECT_EQ(am.PageMap().size(), mirror.NumNodes());
}

TEST_P(PageSizeOpsTest, RouteEvalWorksEvenWithOnePageBuffer) {
  Network net = GenerateMinneapolisLikeMap(778);
  AccessMethodOptions options;
  options.page_size = GetParam().page_size;
  options.buffer_pool_pages = GetParam().pool_pages;
  Ccam am(options, CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  auto routes = GenerateRandomWalkRoutes(net, 10, 15, 1);
  for (const Route& r : routes) {
    auto res = EvaluateRoute(&am, r);
    ASSERT_TRUE(res.ok());
    EXPECT_GT(res->total_cost, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, PageSizeOpsTest,
    ::testing::Values(Config{512, 8}, Config{1024, 1}, Config{2048, 4},
                      Config{4096, 2}),
    [](const ::testing::TestParamInfo<Config>& info) {
      return "page" + std::to_string(info.param.page_size) + "pool" +
             std::to_string(info.param.pool_pages);
    });

}  // namespace
}  // namespace ccam
