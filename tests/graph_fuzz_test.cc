#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/random.h"
#include "src/graph/graph_io.h"
#include "src/graph/network.h"
#include "src/storage/buffer_pool.h"

namespace ccam {
namespace {

/// Verifies the Network's core structural invariant: (u,v) is in u's
/// successor-list exactly when u is in v's predecessor-list, with matching
/// costs, and NumEdges() equals the list totals.
void CheckAdjacencyInvariant(const Network& net) {
  size_t succ_total = 0, pred_total = 0;
  for (NodeId id : net.NodeIds()) {
    const NetworkNode& n = net.node(id);
    succ_total += n.succ.size();
    pred_total += n.pred.size();
    for (const AdjEntry& e : n.succ) {
      ASSERT_TRUE(net.HasNode(e.node)) << "dangling successor";
      const NetworkNode& other = net.node(e.node);
      auto it = std::find_if(
          other.pred.begin(), other.pred.end(),
          [id](const AdjEntry& p) { return p.node == id; });
      ASSERT_NE(it, other.pred.end()) << "missing back-link";
      ASSERT_EQ(it->cost, e.cost) << "cost mismatch across lists";
    }
  }
  ASSERT_EQ(succ_total, net.NumEdges());
  ASSERT_EQ(pred_total, net.NumEdges());
}

TEST(GraphFuzzTest, RandomMutationsPreserveInvariants) {
  Random rng(99);
  Network net;
  NodeId next_id = 0;
  for (int step = 0; step < 4000; ++step) {
    int op = rng.Uniform(5);
    std::vector<NodeId> ids = net.NodeIds();
    if (op == 0 || ids.size() < 2) {  // add node
      ASSERT_TRUE(net.AddNode(next_id++, rng.NextDouble() * 100,
                              rng.NextDouble() * 100)
                      .ok());
    } else if (op == 1) {  // add edge
      NodeId u = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
      NodeId v = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
      Status s = net.AddEdge(u, v, 1.0f + static_cast<float>(u % 7));
      if (u == v) {
        ASSERT_TRUE(s.IsInvalidArgument());
      } else if (net.HasEdge(u, v)) {
        ASSERT_TRUE(s.ok() || s.IsAlreadyExists());
      }
    } else if (op == 2) {  // remove edge (maybe absent)
      NodeId u = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
      NodeId v = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
      bool had = net.HasEdge(u, v);
      Status s = net.RemoveEdge(u, v);
      ASSERT_EQ(s.ok(), had);
    } else if (op == 3 && ids.size() > 3) {  // remove node
      NodeId u = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
      ASSERT_TRUE(net.RemoveNode(u).ok());
    } else if (!ids.empty()) {  // weight churn
      NodeId u = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
      const NetworkNode& n = net.node(u);
      if (!n.succ.empty()) {
        net.SetEdgeWeight(u, n.succ[0].node, rng.NextDouble() * 10);
      }
    }
    if (step % 400 == 399) CheckAdjacencyInvariant(net);
  }
  CheckAdjacencyInvariant(net);
}

TEST(GraphFuzzTest, RandomNetworksRoundTripThroughText) {
  Random rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    Network net;
    int n = 2 + rng.Uniform(40);
    for (int i = 0; i < n; ++i) {
      std::string payload(rng.Uniform(16), static_cast<char>(rng.Next()));
      ASSERT_TRUE(net.AddNode(i, rng.NextDouble() * 1e4 - 5e3,
                              rng.NextDouble() * 1e4 - 5e3, payload)
                      .ok());
    }
    int edges = rng.Uniform(static_cast<uint32_t>(n * 3));
    for (int e = 0; e < edges; ++e) {
      NodeId u = rng.Uniform(n), v = rng.Uniform(n);
      if (u == v) continue;
      if (net.AddEdge(u, v, static_cast<float>(rng.NextDouble() * 100))
              .ok() &&
          rng.Bernoulli(0.5)) {
        net.SetEdgeWeight(u, v, rng.NextDouble() * 50);
      }
    }
    auto loaded = NetworkFromString(NetworkToString(net));
    ASSERT_TRUE(loaded.ok()) << trial;
    ASSERT_EQ(loaded->NumNodes(), net.NumNodes());
    ASSERT_EQ(loaded->NumEdges(), net.NumEdges());
    for (const auto& e : net.Edges()) {
      ASSERT_TRUE(loaded->HasEdge(e.from, e.to));
      ASSERT_EQ(loaded->EdgeWeight(e.from, e.to),
                net.EdgeWeight(e.from, e.to));
    }
    CheckAdjacencyInvariant(*loaded);
  }
}

/// LRU differential test: BufferPool hit/miss pattern against a reference
/// LRU model over a random access trace.
TEST(BufferPoolFuzzTest, LruMatchesReferenceModel) {
  DiskManager disk(64);
  const size_t kCapacity = 5;
  BufferPool pool(&disk, kCapacity);
  std::vector<PageId> pages;
  for (int i = 0; i < 20; ++i) {
    PageId id;
    char* data;
    ASSERT_TRUE(pool.NewPage(&id, &data).ok());
    ASSERT_TRUE(pool.UnpinPage(id, true).ok());
    pages.push_back(id);
  }
  ASSERT_TRUE(pool.Reset().ok());

  // Reference LRU: vector ordered most-recent-last.
  std::vector<PageId> lru_model;
  Random rng(31);
  for (int step = 0; step < 5000; ++step) {
    PageId pick = pages[rng.Uniform(static_cast<uint32_t>(pages.size()))];
    bool expect_hit =
        std::find(lru_model.begin(), lru_model.end(), pick) !=
        lru_model.end();
    uint64_t hits = pool.hits();
    auto res = pool.FetchPage(pick);
    ASSERT_TRUE(res.ok());
    ASSERT_TRUE(pool.UnpinPage(pick, false).ok());
    bool was_hit = pool.hits() > hits;
    ASSERT_EQ(was_hit, expect_hit) << "step " << step;
    // Update the model.
    lru_model.erase(std::remove(lru_model.begin(), lru_model.end(), pick),
                    lru_model.end());
    lru_model.push_back(pick);
    if (lru_model.size() > kCapacity) lru_model.erase(lru_model.begin());
  }
}

}  // namespace
}  // namespace ccam
