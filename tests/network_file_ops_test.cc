#include <gtest/gtest.h>

#include <memory>

#include "src/baseline/grid_am.h"
#include "src/baseline/order_am.h"
#include "src/common/random.h"
#include "src/core/ccam.h"
#include "src/graph/generator.h"

namespace ccam {
namespace {

AccessMethodOptions SmallPages() {
  AccessMethodOptions options;
  options.page_size = 512;
  options.buffer_pool_pages = 8;
  options.maintain_bptree_index = true;
  return options;
}

enum class AmKind { kCcam, kDfs, kBfs, kWdfs, kGrid };

const char* AmKindName(AmKind kind) {
  switch (kind) {
    case AmKind::kCcam:
      return "Ccam";
    case AmKind::kDfs:
      return "Dfs";
    case AmKind::kBfs:
      return "Bfs";
    case AmKind::kWdfs:
      return "Wdfs";
    case AmKind::kGrid:
      return "Grid";
  }
  return "Unknown";
}

std::unique_ptr<NetworkFile> MakeAm(AmKind kind,
                                    const AccessMethodOptions& options) {
  switch (kind) {
    case AmKind::kCcam:
      return std::make_unique<Ccam>(options, CcamCreateMode::kStatic);
    case AmKind::kDfs:
      return std::make_unique<OrderAm>(options, NodeOrderKind::kDfs);
    case AmKind::kBfs:
      return std::make_unique<OrderAm>(options, NodeOrderKind::kBfs);
    case AmKind::kWdfs:
      return std::make_unique<OrderAm>(options, NodeOrderKind::kWeightedDfs);
    case AmKind::kGrid:
      return std::make_unique<GridAm>(options);
  }
  return nullptr;
}

/// Parameterized across every access method: the maintenance operations
/// must behave identically at the logical level.
class OpsTest : public ::testing::TestWithParam<AmKind> {
 protected:
  void SetUp() override {
    net_ = GenerateMinneapolisLikeMap(1995);
    am_ = MakeAm(GetParam(), SmallPages());
    ASSERT_TRUE(am_->Create(net_).ok());
  }

  Network net_;
  std::unique_ptr<NetworkFile> am_;
};

TEST_P(OpsTest, CreateCoversAllNodesAndInvariantsHold) {
  EXPECT_EQ(am_->PageMap().size(), net_.NumNodes());
  ASSERT_TRUE(am_->CheckFileInvariants().ok());
}

TEST_P(OpsTest, DeleteNodePatchesNeighbors) {
  NodeId victim = 100;
  std::vector<NodeId> nbrs = net_.Neighbors(victim);
  ASSERT_FALSE(nbrs.empty());
  ASSERT_TRUE(am_->DeleteNode(victim, ReorgPolicy::kFirstOrder).ok());
  EXPECT_TRUE(am_->Find(victim).status().IsNotFound());
  for (NodeId nbr : nbrs) {
    auto rec = am_->Find(nbr);
    ASSERT_TRUE(rec.ok());
    EXPECT_FALSE(rec->HasSuccessor(victim));
    EXPECT_FALSE(rec->HasPredecessor(victim));
  }
  ASSERT_TRUE(am_->CheckFileInvariants().ok());
}

TEST_P(OpsTest, DeleteMissingNodeFails) {
  EXPECT_TRUE(
      am_->DeleteNode(99999, ReorgPolicy::kFirstOrder).IsNotFound());
}

TEST_P(OpsTest, DeleteThenReinsertRestoresRecord) {
  NodeId victim = 200;
  auto before = am_->Find(victim);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(am_->DeleteNode(victim, ReorgPolicy::kFirstOrder).ok());
  ASSERT_TRUE(am_->InsertNode(*before, ReorgPolicy::kFirstOrder).ok());
  auto after = am_->Find(victim);
  ASSERT_TRUE(after.ok());
  // The adjacency lists must match as sets (order may differ).
  EXPECT_EQ(after->Neighbors(), before->Neighbors());
  EXPECT_EQ(after->succ.size(), before->succ.size());
  EXPECT_EQ(after->pred.size(), before->pred.size());
  // And the neighbors' lists reference the node again.
  for (const AdjEntry& e : before->succ) {
    auto nbr = am_->Find(e.node);
    ASSERT_TRUE(nbr.ok());
    EXPECT_TRUE(nbr->HasPredecessor(victim));
  }
  ASSERT_TRUE(am_->CheckFileInvariants().ok());
}

TEST_P(OpsTest, InsertDuplicateNodeFails) {
  auto rec = am_->Find(5);
  ASSERT_TRUE(rec.ok());
  EXPECT_TRUE(
      am_->InsertNode(*rec, ReorgPolicy::kFirstOrder).IsAlreadyExists());
}

TEST_P(OpsTest, InsertBrandNewNodeWithEdges) {
  NodeRecord rec;
  rec.id = 50000;
  rec.x = 500.0;
  rec.y = 500.0;
  rec.payload = "new";
  rec.succ = {{10, 1.5f}, {11, 2.5f}};
  rec.pred = {{10, 1.5f}};
  ASSERT_TRUE(am_->InsertNode(rec, ReorgPolicy::kFirstOrder).ok());
  auto found = am_->Find(50000);
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found->succ.size(), 2u);
  auto n10 = am_->Find(10);
  ASSERT_TRUE(n10.ok());
  EXPECT_TRUE(n10->HasSuccessor(50000));
  EXPECT_TRUE(n10->HasPredecessor(50000));
  auto n11 = am_->Find(11);
  ASSERT_TRUE(n11.ok());
  EXPECT_TRUE(n11->HasPredecessor(50000));
  EXPECT_FALSE(n11->HasSuccessor(50000));
  ASSERT_TRUE(am_->CheckFileInvariants().ok());
}

TEST_P(OpsTest, InsertDropsEdgesToAbsentNodes) {
  NodeRecord rec;
  rec.id = 60000;
  rec.x = 1.0;
  rec.y = 1.0;
  rec.succ = {{12, 1.0f}, {77777, 9.0f}};  // 77777 does not exist
  ASSERT_TRUE(am_->InsertNode(rec, ReorgPolicy::kFirstOrder).ok());
  auto found = am_->Find(60000);
  ASSERT_TRUE(found.ok());
  ASSERT_EQ(found->succ.size(), 1u);
  EXPECT_EQ(found->succ[0].node, 12u);
}

TEST_P(OpsTest, InsertEdgeUpdatesBothRecords) {
  // Find two unconnected nodes.
  NodeId u = 0, v = 0;
  for (NodeId a = 0; a < 50 && v == 0; ++a) {
    for (NodeId b = 500; b < 550; ++b) {
      if (!net_.HasEdge(a, b)) {
        u = a;
        v = b;
        break;
      }
    }
  }
  ASSERT_NE(v, 0u);
  ASSERT_TRUE(am_->InsertEdge(u, v, 7.5f, ReorgPolicy::kFirstOrder).ok());
  auto ru = am_->Find(u);
  auto rv = am_->Find(v);
  ASSERT_TRUE(ru.ok());
  ASSERT_TRUE(rv.ok());
  EXPECT_TRUE(ru->HasSuccessor(v));
  EXPECT_TRUE(rv->HasPredecessor(u));
  auto cost = ru->SuccessorCost(v);
  ASSERT_TRUE(cost.ok());
  EXPECT_EQ(*cost, 7.5f);
  // Duplicate rejected.
  EXPECT_TRUE(am_->InsertEdge(u, v, 1.0f, ReorgPolicy::kFirstOrder)
                  .IsAlreadyExists());
  ASSERT_TRUE(am_->CheckFileInvariants().ok());
}

TEST_P(OpsTest, DeleteEdgeRemovesBothSides) {
  // Pick an existing edge.
  auto edges = net_.Edges();
  NodeId u = edges[42].from, v = edges[42].to;
  ASSERT_TRUE(am_->DeleteEdge(u, v, ReorgPolicy::kFirstOrder).ok());
  auto ru = am_->Find(u);
  auto rv = am_->Find(v);
  ASSERT_TRUE(ru.ok());
  ASSERT_TRUE(rv.ok());
  EXPECT_FALSE(ru->HasSuccessor(v));
  EXPECT_FALSE(rv->HasPredecessor(u));
  EXPECT_TRUE(
      am_->DeleteEdge(u, v, ReorgPolicy::kFirstOrder).IsNotFound());
  ASSERT_TRUE(am_->CheckFileInvariants().ok());
}

TEST_P(OpsTest, ManyEdgeInsertsForceOverflowSplits) {
  // Grow one node's lists until its page must split (but stay under the
  // single-record-per-page format limit of ~60 adjacency entries at 512 B).
  NodeId hub = 300;
  int added = 0;
  for (NodeId v = 700; v < 735; ++v) {
    if (net_.HasEdge(hub, v)) continue;
    ASSERT_TRUE(
        am_->InsertEdge(hub, v, 1.0f, ReorgPolicy::kFirstOrder).ok())
        << v;
    ++added;
  }
  ASSERT_GT(added, 25);
  auto rec = am_->Find(hub);
  ASSERT_TRUE(rec.ok());
  EXPECT_GE(rec->succ.size(), static_cast<size_t>(added));
  ASSERT_TRUE(am_->CheckFileInvariants().ok());
}

TEST_P(OpsTest, RecordGrowthBeyondPageFailsGracefully) {
  // A single record can never exceed one page (variable-length record
  // format limit); the operation must fail with NoSpace and leave the
  // file consistent.
  NodeId hub = 300;
  Status last = Status::OK();
  for (NodeId v = 700; v < 800 && last.ok(); ++v) {
    if (net_.HasEdge(hub, v)) continue;
    last = am_->InsertEdge(hub, v, 1.0f, ReorgPolicy::kFirstOrder);
  }
  EXPECT_TRUE(last.IsNoSpace()) << last.ToString();
  ASSERT_TRUE(am_->CheckFileInvariants().ok());
}

TEST_P(OpsTest, MassDeletionKeepsFileConsistent) {
  Random rng(99);
  std::vector<NodeId> ids = net_.NodeIds();
  rng.Shuffle(&ids);
  for (size_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(am_->DeleteNode(ids[i], ReorgPolicy::kFirstOrder).ok())
        << "i=" << i << " node=" << ids[i];
  }
  EXPECT_EQ(am_->PageMap().size(), net_.NumNodes() - 200);
  ASSERT_TRUE(am_->CheckFileInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(AllAms, OpsTest,
                         ::testing::Values(AmKind::kCcam, AmKind::kDfs,
                                           AmKind::kBfs, AmKind::kWdfs,
                                           AmKind::kGrid),
                         [](const ::testing::TestParamInfo<AmKind>& info) {
                           return AmKindName(info.param);
                         });

/// Reorganization-policy behavior (CCAM only, as in the paper).
class PolicyTest : public ::testing::TestWithParam<ReorgPolicy> {};

TEST_P(PolicyTest, InsertUnderPolicyKeepsInvariants) {
  Network net = GenerateMinneapolisLikeMap(77);
  AccessMethodOptions options = SmallPages();
  Ccam am(options, CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  for (NodeId id = 2000; id < 2030; ++id) {
    NodeRecord rec;
    rec.id = id;
    rec.x = 100.0 + id % 7;
    rec.y = 100.0 + id % 5;
    rec.succ = {{id - 1990, 1.0f}, {id - 1980, 2.0f}};
    rec.pred = {{id - 1990, 1.0f}};
    ASSERT_TRUE(am.InsertNode(rec, GetParam()).ok()) << id;
  }
  ASSERT_TRUE(am.CheckFileInvariants().ok());
  for (NodeId id = 2000; id < 2030; ++id) {
    EXPECT_TRUE(am.Find(id).ok());
  }
}

TEST_P(PolicyTest, DeleteUnderPolicyKeepsInvariants) {
  Network net = GenerateMinneapolisLikeMap(78);
  Ccam am(SmallPages(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  Random rng(5);
  std::vector<NodeId> ids = net.NodeIds();
  rng.Shuffle(&ids);
  for (size_t i = 0; i < 60; ++i) {
    ASSERT_TRUE(am.DeleteNode(ids[i], GetParam()).ok()) << ids[i];
  }
  ASSERT_TRUE(am.CheckFileInvariants().ok());
}

TEST_P(PolicyTest, EdgeOpsUnderPolicyKeepInvariants) {
  Network net = GenerateMinneapolisLikeMap(79);
  Ccam am(SmallPages(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  auto edges = net.Edges();
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(
        am.DeleteEdge(edges[i * 3].from, edges[i * 3].to, GetParam()).ok());
  }
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(am.InsertEdge(edges[i * 3].from, edges[i * 3].to,
                              edges[i * 3].cost, GetParam())
                    .ok());
  }
  ASSERT_TRUE(am.CheckFileInvariants().ok());
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, PolicyTest,
    ::testing::Values(ReorgPolicy::kFirstOrder, ReorgPolicy::kSecondOrder,
                      ReorgPolicy::kHigherOrder),
    [](const ::testing::TestParamInfo<ReorgPolicy>& info) {
      std::string name = ReorgPolicyName(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST(PolicyComparisonTest, HigherOrderCostsMoreIoThanFirstOrder) {
  // Insert the same nodes under first-order and higher-order policies; the
  // higher-order policy must pay more I/O (paper Figure 7, left panel).
  Network net = GenerateMinneapolisLikeMap(1995);
  Random rng(12);
  std::vector<NodeId> ids = net.NodeIds();
  rng.Shuffle(&ids);
  std::vector<NodeId> removed(ids.begin(), ids.begin() + 100);
  std::vector<NodeId> kept(ids.begin() + 100, ids.end());
  std::sort(kept.begin(), kept.end());
  Network base = net.InducedSubnetwork(kept);

  uint64_t io[2];
  int idx = 0;
  for (ReorgPolicy policy :
       {ReorgPolicy::kFirstOrder, ReorgPolicy::kHigherOrder}) {
    AccessMethodOptions options;
    options.page_size = 1024;
    Ccam am(options, CcamCreateMode::kStatic);
    ASSERT_TRUE(am.Create(base).ok());
    am.ResetIoStats();
    for (NodeId id : removed) {
      NodeRecord rec = NodeRecord::FromNetworkNode(id, net.node(id));
      ASSERT_TRUE(am.InsertNode(rec, policy).ok());
    }
    io[idx++] = am.DataIoStats().Accesses();
    ASSERT_TRUE(am.CheckFileInvariants().ok());
  }
  EXPECT_GT(io[1], io[0] * 2);
}

TEST(PolicyComparisonTest, SecondOrderCrrBeatsFirstOrder) {
  // After inserting 20% of the nodes, second-order reclustering must hold
  // a higher CRR than first-order (paper Figure 7, right panel).
  Network net = GenerateMinneapolisLikeMap(1995);
  Random rng(12);
  std::vector<NodeId> ids = net.NodeIds();
  rng.Shuffle(&ids);
  size_t n_removed = net.NumNodes() / 5;
  std::vector<NodeId> removed(ids.begin(), ids.begin() + n_removed);
  std::vector<NodeId> kept(ids.begin() + n_removed, ids.end());
  Network base = net.InducedSubnetwork(kept);

  double crr[2];
  int idx = 0;
  for (ReorgPolicy policy :
       {ReorgPolicy::kFirstOrder, ReorgPolicy::kSecondOrder}) {
    AccessMethodOptions options;
    options.page_size = 1024;
    Ccam am(options, CcamCreateMode::kStatic);
    ASSERT_TRUE(am.Create(base).ok());
    for (NodeId id : removed) {
      NodeRecord rec = NodeRecord::FromNetworkNode(id, net.node(id));
      ASSERT_TRUE(am.InsertNode(rec, policy).ok());
    }
    crr[idx++] = ComputeCrr(net, am.PageMap());
  }
  EXPECT_GT(crr[1], crr[0]);
}

TEST(StructuralFlagTest, FlagReflectsSplitsAndMerges) {
  Network net = GenerateMinneapolisLikeMap(55);
  AccessMethodOptions options;
  options.page_size = 1024;
  Ccam am(options, CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  // An edge delete between co-paged nodes never splits anything.
  auto edges = net.Edges();
  for (const auto& e : edges) {
    if (am.PageMap().at(e.from) == am.PageMap().at(e.to)) {
      ASSERT_TRUE(am.DeleteEdge(e.from, e.to, ReorgPolicy::kFirstOrder).ok());
      EXPECT_FALSE(am.LastOpChangedStructure());
      break;
    }
  }
}

}  // namespace
}  // namespace ccam
