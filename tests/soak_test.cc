// Long-haul soak: 2000 mixed operations with randomly chosen
// reorganization policies, lazy reclustering enabled, against the
// in-memory mirror. Catches rare interactions the per-feature tests and
// the 400-step integration workload may miss.

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/random.h"
#include "src/core/ccam.h"
#include "src/graph/generator.h"

namespace ccam {
namespace {

TEST(SoakTest, TwoThousandMixedOpsUnderRandomPolicies) {
  Network net = GenerateMinneapolisLikeMap(31337);
  AccessMethodOptions options;
  options.page_size = 1024;
  options.buffer_pool_pages = 6;
  options.maintain_bptree_index = true;
  Ccam am(options, CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  am.EnableLazyReorganization(9);

  Network mirror = net;
  Random rng(271828);
  NodeId next_new_id = 200000;
  auto policy = [&]() {
    switch (rng.Uniform(3)) {
      case 0:
        return ReorgPolicy::kFirstOrder;
      case 1:
        return ReorgPolicy::kSecondOrder;
      default:
        return ReorgPolicy::kHigherOrder;
    }
  };
  auto any_node = [&]() {
    auto ids = mirror.NodeIds();
    return ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
  };

  const int kSteps = 2000;
  for (int step = 0; step < kSteps; ++step) {
    switch (rng.Uniform(8)) {
      case 0: {  // delete node
        NodeId victim = any_node();
        ASSERT_TRUE(am.DeleteNode(victim, policy()).ok()) << step;
        ASSERT_TRUE(mirror.RemoveNode(victim).ok());
        break;
      }
      case 1: {  // insert fresh node wired to up to 3 anchors
        NodeRecord rec;
        rec.id = next_new_id++;
        rec.x = rng.NextDouble() * 3300;
        rec.y = rng.NextDouble() * 3300;
        int wires = 1 + rng.Uniform(3);
        std::vector<NodeId> anchors;
        for (int w = 0; w < wires; ++w) {
          NodeId a = any_node();
          if (std::find(anchors.begin(), anchors.end(), a) !=
              anchors.end()) {
            continue;
          }
          anchors.push_back(a);
          rec.succ.push_back({a, 1.0f});
        }
        ASSERT_TRUE(am.InsertNode(rec, policy()).ok()) << step;
        ASSERT_TRUE(mirror.AddNode(rec.id, rec.x, rec.y).ok());
        for (NodeId a : anchors) {
          ASSERT_TRUE(mirror.AddEdge(rec.id, a, 1.0f).ok());
        }
        break;
      }
      case 2: {  // insert edge
        NodeId u = any_node(), v = any_node();
        if (u == v || mirror.HasEdge(u, v)) break;
        ASSERT_TRUE(am.InsertEdge(u, v, 3.0f, policy()).ok()) << step;
        ASSERT_TRUE(mirror.AddEdge(u, v, 3.0f).ok());
        break;
      }
      case 3: {  // delete edge
        auto edges = mirror.Edges();
        if (edges.empty()) break;
        const auto& e =
            edges[rng.Uniform(static_cast<uint32_t>(edges.size()))];
        ASSERT_TRUE(am.DeleteEdge(e.from, e.to, policy()).ok()) << step;
        ASSERT_TRUE(mirror.RemoveEdge(e.from, e.to).ok());
        break;
      }
      default: {  // reads dominate, as in real workloads
        NodeId probe = any_node();
        auto rec = am.Find(probe);
        ASSERT_TRUE(rec.ok()) << step;
        ASSERT_EQ(rec->succ.size(), mirror.node(probe).succ.size())
            << "step " << step << " node " << probe;
        if (!rec->succ.empty()) {
          auto hop = am.GetASuccessor(probe, rec->succ[0].node);
          ASSERT_TRUE(hop.ok());
        }
        break;
      }
    }
    if (step % 500 == 499) {
      ASSERT_TRUE(am.CheckFileInvariants().ok()) << "step " << step;
      ASSERT_EQ(am.PageMap().size(), mirror.NumNodes());
    }
  }

  // Full final diff.
  ASSERT_TRUE(am.CheckFileInvariants().ok());
  for (NodeId id : mirror.NodeIds()) {
    auto rec = am.Find(id);
    ASSERT_TRUE(rec.ok()) << id;
    ASSERT_EQ(rec->succ.size(), mirror.node(id).succ.size()) << id;
    ASSERT_EQ(rec->pred.size(), mirror.node(id).pred.size()) << id;
  }
  double crr = ComputeCrr(mirror, am.PageMap());
  EXPECT_GT(crr, 0.3);  // lazy + policy reclustering keeps quality alive
}

}  // namespace
}  // namespace ccam
