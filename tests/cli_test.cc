// End-to-end tests of the ccam_cli binary: generate -> create -> stats ->
// find -> route -> window -> replay -> shard, checking exit codes and key
// output fragments, plus the crashsim --json contract (the report file is
// valid JSON even when the sweep itself fails). Binary paths are injected
// by CMake (CCAM_CLI_PATH, CCAM_CRASHSIM_PATH).

#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace ccam {
namespace {

#ifndef CCAM_CLI_PATH
#error "CCAM_CLI_PATH must be defined by the build"
#endif
#ifndef CCAM_CRASHSIM_PATH
#error "CCAM_CRASHSIM_PATH must be defined by the build"
#endif

struct CommandResult {
  int exit_code;
  std::string output;
};

CommandResult RunCli(const std::string& args) {
  std::string cmd = std::string(CCAM_CLI_PATH) + " " + args + " 2>&1";
  std::array<char, 512> buf;
  std::string output;
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  while (fgets(buf.data(), buf.size(), pipe) != nullptr) {
    output += buf.data();
  }
  int status = pclose(pipe);
  return {WEXITSTATUS(status), output};
}

class CliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    net_ = ::testing::TempDir() + "/cli_test.net";
    img_ = ::testing::TempDir() + "/cli_test.img";
    trace_ = ::testing::TempDir() + "/cli_test.trace";
    auto gen = RunCli("generate --out " + net_ + " --rows 8 --cols 8 --seed 3");
    ASSERT_EQ(gen.exit_code, 0) << gen.output;
    auto create = RunCli("create --net " + net_ + " --image " + img_ +
                      " --page-size 512");
    ASSERT_EQ(create.exit_code, 0) << create.output;
  }

  void TearDown() override {
    std::remove(net_.c_str());
    std::remove(img_.c_str());
    std::remove(trace_.c_str());
  }

  std::string Common() const {
    return "--net " + net_ + " --image " + img_ + " --page-size 512";
  }

  std::string net_, img_, trace_;
};

TEST_F(CliTest, GenerateReportsCounts) {
  auto res = RunCli("generate --out " + net_ + " --rows 5 --cols 4 --seed 9");
  EXPECT_EQ(res.exit_code, 0);
  EXPECT_NE(res.output.find("nodes"), std::string::npos);
}

TEST_F(CliTest, CreateReportsCrr) {
  auto res =
      RunCli("create --net " + net_ + " --image " + img_ + " --page-size 512");
  EXPECT_EQ(res.exit_code, 0);
  EXPECT_NE(res.output.find("CCAM-S"), std::string::npos);
  EXPECT_NE(res.output.find("CRR"), std::string::npos);
}

TEST_F(CliTest, CreateIncrementalAndPartitionerFlags) {
  auto res = RunCli("create --net " + net_ + " --image " + img_ +
                 " --page-size 512 --mode incremental --partitioner fm");
  EXPECT_EQ(res.exit_code, 0);
  EXPECT_NE(res.output.find("CCAM-D"), std::string::npos);
}

TEST_F(CliTest, StatsShowsFileReport) {
  auto res = RunCli("stats " + Common());
  EXPECT_EQ(res.exit_code, 0) << res.output;
  EXPECT_NE(res.output.find("CRR"), std::string::npos);
  EXPECT_NE(res.output.find("gamma"), std::string::npos);
}

TEST_F(CliTest, FindPrintsAdjacency) {
  auto res = RunCli("find " + Common() + " --id 5");
  EXPECT_EQ(res.exit_code, 0) << res.output;
  EXPECT_NE(res.output.find("node 5"), std::string::npos);
  EXPECT_NE(res.output.find("successors:"), std::string::npos);
}

TEST_F(CliTest, FindMissingNodeFails) {
  auto res = RunCli("find " + Common() + " --id 99999");
  EXPECT_NE(res.exit_code, 0);
  EXPECT_NE(res.output.find("NotFound"), std::string::npos);
}

TEST_F(CliTest, RoutePrintsPath) {
  auto res = RunCli("route " + Common() + " --from 0 --to 10");
  EXPECT_EQ(res.exit_code, 0) << res.output;
  EXPECT_NE(res.output.find("path:"), std::string::npos);
}

TEST_F(CliTest, WindowListsNodes) {
  auto res =
      RunCli("window " + Common() + " --xmin 0 --ymin 0 --xmax 900 --ymax 900");
  EXPECT_EQ(res.exit_code, 0) << res.output;
  EXPECT_NE(res.output.find("nodes in window"), std::string::npos);
}

TEST_F(CliTest, ReplayRunsTrace) {
  FILE* f = fopen(trace_.c_str(), "w");
  ASSERT_NE(f, nullptr);
  fputs("find 1\nget-successors 2\ninsert-node 500 5 5\ndelete-node 500\n",
        f);
  fclose(f);
  auto res = RunCli("replay " + Common() + " --trace " + trace_ +
                 " --policy second-order");
  EXPECT_EQ(res.exit_code, 0) << res.output;
  EXPECT_NE(res.output.find("4 operations"), std::string::npos);
}

TEST_F(CliTest, ServeRunsLoadAndConserves) {
  auto res = RunCli("serve " + Common() +
                    " --qps 500 --duration-ms 300 --workers 4");
  EXPECT_EQ(res.exit_code, 0) << res.output;
  EXPECT_NE(res.output.find("conserved: yes"), std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("qps"), std::string::npos);
}

TEST_F(CliTest, ServeUnbatchedStillConserves) {
  auto res = RunCli("serve " + Common() +
                    " --qps 300 --duration-ms 200 --workers 2 --no-batching");
  EXPECT_EQ(res.exit_code, 0) << res.output;
  EXPECT_NE(res.output.find("unbatched"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("conserved: yes"), std::string::npos)
      << res.output;
}

TEST_F(CliTest, UsageOnBadCommand) {
  auto res = RunCli("frobnicate");
  EXPECT_EQ(res.exit_code, 2);
  EXPECT_NE(res.output.find("usage"), std::string::npos);
}

TEST_F(CliTest, MissingRequiredFlagFails) {
  auto res = RunCli("create --net " + net_);
  EXPECT_EQ(res.exit_code, 2);
  EXPECT_NE(res.output.find("--image"), std::string::npos);
}

TEST_F(CliTest, UnknownSubcommandNamesItselfBeforeFlagParsing) {
  auto res = RunCli("sttas --net " + net_);
  EXPECT_EQ(res.exit_code, 2);
  EXPECT_NE(res.output.find("unknown subcommand 'sttas'"), std::string::npos)
      << res.output;
  EXPECT_NE(res.output.find("usage"), std::string::npos);
}

TEST_F(CliTest, NonNumericFlagValueFailsTyped) {
  auto res = RunCli("find " + Common() + " --id twelve");
  EXPECT_EQ(res.exit_code, 2);
  EXPECT_NE(res.output.find("is not an integer"), std::string::npos)
      << res.output;
}

TEST_F(CliTest, GenerateRejectsDegenerateGrid) {
  auto res = RunCli("generate --out " + net_ + " --rows 1 --cols 8 --seed 3");
  EXPECT_EQ(res.exit_code, 2);
}

TEST_F(CliTest, MissingNetworkFileFailsNonzero) {
  auto res = RunCli("stats --net /nonexistent/no.net --image " + img_ +
                    " --page-size 512");
  EXPECT_NE(res.exit_code, 0);
  EXPECT_NE(res.output.find("/nonexistent/no.net"), std::string::npos)
      << res.output;
}

TEST_F(CliTest, ShardMatchesUnshardedAndReportsLayout) {
  auto res = RunCli("shard --net " + net_ +
                    " --page-size 512 --shards 2 --routes 24");
  EXPECT_EQ(res.exit_code, 0) << res.output;
  EXPECT_NE(res.output.find("2 shards"), std::string::npos) << res.output;
  EXPECT_NE(res.output.find("0 mismatches"), std::string::npos) << res.output;
}

TEST_F(CliTest, ShardRejectsNonPowerOfTwo) {
  auto res = RunCli("shard --net " + net_ + " --shards 3");
  EXPECT_EQ(res.exit_code, 2);
  EXPECT_NE(res.output.find("power of two"), std::string::npos) << res.output;
}

// --- crashsim --json contract --------------------------------------------

CommandResult RunCrashsim(const std::string& args) {
  std::string cmd = std::string(CCAM_CRASHSIM_PATH) + " " + args + " 2>&1";
  std::array<char, 512> buf;
  std::string output;
  FILE* pipe = popen(cmd.c_str(), "r");
  EXPECT_NE(pipe, nullptr);
  while (fgets(buf.data(), buf.size(), pipe) != nullptr) {
    output += buf.data();
  }
  int status = pclose(pipe);
  return {WEXITSTATUS(status), output};
}

bool IsValidJsonFile(const std::string& path) {
  std::string cmd = "python3 -m json.tool " + path + " > /dev/null 2>&1";
  return system(cmd.c_str()) == 0;
}

TEST_F(CliTest, CrashsimJsonReportIsValidJson) {
  std::string json = ::testing::TempDir() + "/crashsim_ok.json";
  auto res = RunCrashsim("--ops=40 --points=3 --json=" + json + " --image=" +
                         ::testing::TempDir() + "/crashsim_ok.img");
  EXPECT_EQ(res.exit_code, 0) << res.output;
  EXPECT_TRUE(IsValidJsonFile(json)) << "unparseable report: " << json;
  std::remove(json.c_str());
}

TEST_F(CliTest, CrashsimJsonIsValidEvenWhenTheSweepFails) {
  // The sweep cannot even start (unwritable image path); the --json
  // consumer must still get a parseable document, not a missing or
  // truncated file.
  std::string json = ::testing::TempDir() + "/crashsim_err.json";
  auto res = RunCrashsim("--ops=20 --points=2 --json=" + json +
                         " --image=/nonexistent_dir/x.img");
  EXPECT_NE(res.exit_code, 0);
  EXPECT_TRUE(IsValidJsonFile(json)) << "unparseable error report: " << json;
  std::remove(json.c_str());
}

}  // namespace
}  // namespace ccam
