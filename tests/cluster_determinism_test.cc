// The task-parallel clustering pipeline promises bit-identical output for
// every value of num_threads: subproblem seeds are derived from node-id
// content (not spawn order), pages are emitted in subproblem-tree leaf
// order, and pairwise refinement runs pair-disjoint batches from a sorted
// pair list. These tests pin that contract for all four partitioners and
// for the end-to-end CCAM-S build (page map and CRR/WCRR bit-equality).

#include <gtest/gtest.h>

#include <vector>

#include "src/core/ccam.h"
#include "src/graph/generator.h"
#include "src/partition/recursive_bisection.h"
#include "src/storage/page.h"

namespace ccam {
namespace {

Network TestMap() { return GenerateMinneapolisLikeMap(1995); }

ClusterOptions BaseOptions(PartitionAlgorithm algo) {
  ClusterOptions o;
  o.page_capacity = 1024 - SlottedPage::kHeaderSize;
  o.per_record_overhead = SlottedPage::kSlotOverhead;
  o.algorithm = algo;
  return o;
}

constexpr PartitionAlgorithm kAllAlgorithms[] = {
    PartitionAlgorithm::kRatioCut, PartitionAlgorithm::kFm,
    PartitionAlgorithm::kKl, PartitionAlgorithm::kRandom};

TEST(ClusterDeterminismTest, PagesIdenticalAcrossThreadCounts) {
  Network net = TestMap();
  for (PartitionAlgorithm algo : kAllAlgorithms) {
    ClusterOptions o = BaseOptions(algo);
    o.num_threads = 1;
    auto sequential = ClusterNodesIntoPages(net, net.NodeIds(), o);
    ASSERT_TRUE(sequential.ok()) << PartitionAlgorithmName(algo);
    ASSERT_FALSE(sequential->empty());
    for (int threads : {2, 8}) {
      o.num_threads = threads;
      auto parallel = ClusterNodesIntoPages(net, net.NodeIds(), o);
      ASSERT_TRUE(parallel.ok());
      EXPECT_EQ(*sequential, *parallel)
          << PartitionAlgorithmName(algo) << " with " << threads
          << " threads diverged from the sequential clustering";
    }
  }
}

TEST(ClusterDeterminismTest, RefinementIdenticalAcrossThreadCounts) {
  Network net = TestMap();
  for (PartitionAlgorithm algo : kAllAlgorithms) {
    ClusterOptions o = BaseOptions(algo);
    o.num_threads = 1;
    auto base = ClusterNodesIntoPages(net, net.NodeIds(), o);
    ASSERT_TRUE(base.ok()) << PartitionAlgorithmName(algo);

    std::vector<std::vector<NodeId>> sequential = *base;
    int improved_seq = RefinePagesPairwise(net, &sequential, o, 2);
    for (int threads : {2, 8}) {
      std::vector<std::vector<NodeId>> parallel = *base;
      o.num_threads = threads;
      int improved_par = RefinePagesPairwise(net, &parallel, o, 2);
      EXPECT_EQ(improved_seq, improved_par) << PartitionAlgorithmName(algo);
      EXPECT_EQ(sequential, parallel)
          << PartitionAlgorithmName(algo) << " refinement with " << threads
          << " threads diverged from the sequential refinement";
    }
  }
}

TEST(ClusterDeterminismTest, RepeatedParallelRunsAreStable) {
  // Same thread count twice: scheduling nondeterminism between two runs of
  // the same configuration must not leak into the output either.
  Network net = TestMap();
  ClusterOptions o = BaseOptions(PartitionAlgorithm::kRatioCut);
  o.num_threads = 8;
  auto first = ClusterNodesIntoPages(net, net.NodeIds(), o);
  auto second = ClusterNodesIntoPages(net, net.NodeIds(), o);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(*first, *second);
}

TEST(ClusterDeterminismTest, CrrInvariantUnderParallelCreate) {
  Network net = TestMap();
  AccessMethodOptions seq_opts;
  seq_opts.page_size = 1024;
  seq_opts.num_threads = 1;
  Ccam sequential(seq_opts, CcamCreateMode::kStatic);
  ASSERT_TRUE(sequential.Create(net).ok());

  AccessMethodOptions par_opts = seq_opts;
  par_opts.num_threads = 8;
  Ccam parallel(par_opts, CcamCreateMode::kStatic);
  ASSERT_TRUE(parallel.Create(net).ok());

  EXPECT_EQ(sequential.PageMap(), parallel.PageMap());
  // Bit-equal, not approximately equal: identical page maps imply the
  // ratios are computed from identical inputs.
  double crr_seq = ComputeCrr(net, sequential.PageMap());
  double crr_par = ComputeCrr(net, parallel.PageMap());
  EXPECT_EQ(crr_seq, crr_par);
  EXPECT_EQ(ComputeWcrr(net, sequential.PageMap()),
            ComputeWcrr(net, parallel.PageMap()));
  EXPECT_GT(crr_seq, 0.0);
}

TEST(ClusterDeterminismTest, DefaultThreadCountMatchesExplicitOne) {
  // num_threads = 0 resolves to hardware concurrency; whatever that is on
  // the host, the assignment must match the sequential path.
  Network net = TestMap();
  ClusterOptions o = BaseOptions(PartitionAlgorithm::kRatioCut);
  o.num_threads = 1;
  auto sequential = ClusterNodesIntoPages(net, net.NodeIds(), o);
  o.num_threads = 0;
  auto defaulted = ClusterNodesIntoPages(net, net.NodeIds(), o);
  ASSERT_TRUE(sequential.ok());
  ASSERT_TRUE(defaulted.ok());
  EXPECT_EQ(*sequential, *defaulted);
}

}  // namespace
}  // namespace ccam
