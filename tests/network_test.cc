#include "src/graph/network.h"

#include <gtest/gtest.h>

namespace ccam {
namespace {

Network Triangle() {
  Network net;
  EXPECT_TRUE(net.AddNode(1, 0, 0).ok());
  EXPECT_TRUE(net.AddNode(2, 1, 0).ok());
  EXPECT_TRUE(net.AddNode(3, 0, 1).ok());
  EXPECT_TRUE(net.AddEdge(1, 2, 1.0f).ok());
  EXPECT_TRUE(net.AddEdge(2, 3, 2.0f).ok());
  EXPECT_TRUE(net.AddEdge(3, 1, 3.0f).ok());
  return net;
}

TEST(NetworkTest, AddNodesAndEdges) {
  Network net = Triangle();
  EXPECT_EQ(net.NumNodes(), 3u);
  EXPECT_EQ(net.NumEdges(), 3u);
  EXPECT_TRUE(net.HasEdge(1, 2));
  EXPECT_FALSE(net.HasEdge(2, 1));  // directed
}

TEST(NetworkTest, DuplicateNodeRejected) {
  Network net;
  ASSERT_TRUE(net.AddNode(1, 0, 0).ok());
  EXPECT_TRUE(net.AddNode(1, 5, 5).IsAlreadyExists());
}

TEST(NetworkTest, ReservedNodeIdRejected) {
  Network net;
  EXPECT_TRUE(net.AddNode(kInvalidNodeId, 0, 0).IsInvalidArgument());
}

TEST(NetworkTest, DuplicateEdgeRejected) {
  Network net = Triangle();
  EXPECT_TRUE(net.AddEdge(1, 2, 9.0f).IsAlreadyExists());
}

TEST(NetworkTest, SelfLoopRejected) {
  Network net = Triangle();
  EXPECT_TRUE(net.AddEdge(1, 1, 1.0f).IsInvalidArgument());
}

TEST(NetworkTest, EdgeNeedsBothEndpoints) {
  Network net = Triangle();
  EXPECT_TRUE(net.AddEdge(1, 99, 1.0f).IsNotFound());
  EXPECT_TRUE(net.AddEdge(99, 1, 1.0f).IsNotFound());
}

TEST(NetworkTest, SuccAndPredListsAreConsistent) {
  Network net = Triangle();
  const NetworkNode& n1 = net.node(1);
  ASSERT_EQ(n1.succ.size(), 1u);
  EXPECT_EQ(n1.succ[0].node, 2u);
  ASSERT_EQ(n1.pred.size(), 1u);
  EXPECT_EQ(n1.pred[0].node, 3u);
}

TEST(NetworkTest, EdgeCostLookup) {
  Network net = Triangle();
  float cost = 0;
  ASSERT_TRUE(net.EdgeCost(2, 3, &cost).ok());
  EXPECT_EQ(cost, 2.0f);
  EXPECT_TRUE(net.EdgeCost(3, 2, &cost).IsNotFound());
}

TEST(NetworkTest, RemoveEdge) {
  Network net = Triangle();
  ASSERT_TRUE(net.RemoveEdge(1, 2).ok());
  EXPECT_FALSE(net.HasEdge(1, 2));
  EXPECT_EQ(net.NumEdges(), 2u);
  EXPECT_TRUE(net.node(2).pred.empty());
  EXPECT_TRUE(net.RemoveEdge(1, 2).IsNotFound());
}

TEST(NetworkTest, RemoveNodeDetachesAllEdges) {
  Network net = Triangle();
  ASSERT_TRUE(net.RemoveNode(2).ok());
  EXPECT_EQ(net.NumNodes(), 2u);
  EXPECT_EQ(net.NumEdges(), 1u);  // only 3->1 remains
  EXPECT_TRUE(net.node(1).succ.empty());
  EXPECT_TRUE(net.node(3).pred.empty());
  EXPECT_TRUE(net.RemoveNode(2).IsNotFound());
}

TEST(NetworkTest, BidirectionalEdgeAddsBothDirections) {
  Network net;
  ASSERT_TRUE(net.AddNode(1, 0, 0).ok());
  ASSERT_TRUE(net.AddNode(2, 1, 1).ok());
  ASSERT_TRUE(net.AddBidirectionalEdge(1, 2, 4.0f).ok());
  EXPECT_TRUE(net.HasEdge(1, 2));
  EXPECT_TRUE(net.HasEdge(2, 1));
  EXPECT_EQ(net.NumEdges(), 2u);
}

TEST(NetworkTest, NeighborsIsDistinctUnion) {
  Network net;
  for (NodeId id : {1u, 2u, 3u}) ASSERT_TRUE(net.AddNode(id, id, id).ok());
  ASSERT_TRUE(net.AddBidirectionalEdge(1, 2, 1.0f).ok());
  ASSERT_TRUE(net.AddEdge(3, 1, 1.0f).ok());
  EXPECT_EQ(net.Neighbors(1), (std::vector<NodeId>{2, 3}));
}

TEST(NetworkTest, EdgesSortedAndComplete) {
  Network net = Triangle();
  auto edges = net.Edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0].from, 1u);
  EXPECT_EQ(edges[1].from, 2u);
  EXPECT_EQ(edges[2].from, 3u);
}

TEST(NetworkTest, EdgeWeightsDefaultToOne) {
  Network net = Triangle();
  EXPECT_EQ(net.EdgeWeight(1, 2), 1.0);
  EXPECT_EQ(net.TotalEdgeWeight(), 3.0);
  net.SetEdgeWeight(1, 2, 5.0);
  EXPECT_EQ(net.EdgeWeight(1, 2), 5.0);
  EXPECT_EQ(net.TotalEdgeWeight(), 7.0);
  net.ClearEdgeWeights();
  EXPECT_EQ(net.TotalEdgeWeight(), 3.0);
}

TEST(NetworkTest, WeightRemovedWithEdge) {
  Network net = Triangle();
  net.SetEdgeWeight(1, 2, 5.0);
  ASSERT_TRUE(net.RemoveEdge(1, 2).ok());
  ASSERT_TRUE(net.AddEdge(1, 2, 1.0f).ok());
  EXPECT_EQ(net.EdgeWeight(1, 2), 1.0);  // back to default
}

TEST(NetworkTest, DegreeStatistics) {
  Network net = Triangle();
  EXPECT_DOUBLE_EQ(net.AvgOutDegree(), 1.0);
  EXPECT_DOUBLE_EQ(net.AvgNeighborListSize(), 2.0);
}

TEST(NetworkTest, InducedSubnetwork) {
  Network net = Triangle();
  net.SetEdgeWeight(1, 2, 3.5);
  Network sub = net.InducedSubnetwork({1, 2});
  EXPECT_EQ(sub.NumNodes(), 2u);
  EXPECT_EQ(sub.NumEdges(), 1u);  // only 1->2; 2->3 and 3->1 cut away
  EXPECT_TRUE(sub.HasEdge(1, 2));
  EXPECT_EQ(sub.EdgeWeight(1, 2), 3.5);
}

TEST(NetworkTest, WeakConnectivity) {
  Network net = Triangle();
  EXPECT_TRUE(net.IsWeaklyConnected());
  ASSERT_TRUE(net.AddNode(10, 9, 9).ok());
  EXPECT_FALSE(net.IsWeaklyConnected());
  ASSERT_TRUE(net.AddEdge(10, 1, 1.0f).ok());
  EXPECT_TRUE(net.IsWeaklyConnected());
  Network empty;
  EXPECT_TRUE(empty.IsWeaklyConnected());
}

TEST(NetworkTest, NodeIdsAscending) {
  Network net;
  for (NodeId id : {5u, 1u, 3u}) ASSERT_TRUE(net.AddNode(id, 0, 0).ok());
  EXPECT_EQ(net.NodeIds(), (std::vector<NodeId>{1, 3, 5}));
}

}  // namespace
}  // namespace ccam
