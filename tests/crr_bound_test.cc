#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/ccam.h"
#include "src/graph/generator.h"
#include "src/storage/page.h"

namespace ccam {
namespace {

TEST(CrrUpperBoundTest, BoundsAchievedCrrAcrossBlockSizes) {
  Network net = GenerateMinneapolisLikeMap(1995);
  for (size_t page_size : {512u, 1024u, 2048u, 4096u}) {
    AccessMethodOptions options;
    options.page_size = page_size;
    Ccam am(options, CcamCreateMode::kStatic);
    ASSERT_TRUE(am.Create(net).ok());
    double achieved = ComputeCrr(net, am.PageMap());
    double bound = CrrUpperBound(net, page_size - SlottedPage::kHeaderSize,
                                 SlottedPage::kSlotOverhead);
    EXPECT_LE(achieved, bound + 1e-12) << "page " << page_size;
    EXPECT_LE(bound, 1.0);
  }
}

TEST(CrrUpperBoundTest, HugePagesAllowPerfectCrr) {
  Network net = GenerateMinneapolisLikeMap(3);
  EXPECT_DOUBLE_EQ(CrrUpperBound(net, 1u << 24), 1.0);
}

TEST(CrrUpperBoundTest, TinyPagesForceSplits) {
  // Pages holding ~2 records: each node can keep at most 1 neighbor, so
  // CRR can never exceed (sum min(deg,1)) / E — far below 1 on a grid.
  Network net = GenerateMinneapolisLikeMap(3);
  double bound = CrrUpperBound(net, 200);
  EXPECT_LT(bound, 0.75);
  EXPECT_GT(bound, 0.0);
}

TEST(CrrUpperBoundTest, EmptyAndEdgelessNetworks) {
  Network empty;
  EXPECT_DOUBLE_EQ(CrrUpperBound(empty, 1024), 1.0);
  Network isolated;
  ASSERT_TRUE(isolated.AddNode(1, 0, 0).ok());
  EXPECT_DOUBLE_EQ(CrrUpperBound(isolated, 1024), 1.0);
}

TEST(CrrUpperBoundTest, MonotoneInPageCapacity) {
  Network net = GenerateMinneapolisLikeMap(9);
  double prev = 0.0;
  for (size_t capacity : {256u, 512u, 1024u, 2048u, 4096u}) {
    double bound = CrrUpperBound(net, capacity);
    EXPECT_GE(bound, prev - 1e-12);
    prev = bound;
  }
}

TEST(ReorganizeAllTest, RestoresCrrAfterChurn) {
  Network net = GenerateMinneapolisLikeMap(404);
  AccessMethodOptions options;
  options.page_size = 1024;
  Ccam am(options, CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  double initial = ComputeCrr(net, am.PageMap());

  // Degrade the clustering: delete/reinsert many nodes under first-order.
  Network mirror = net;
  Random rng(8);
  std::vector<NodeId> ids = net.NodeIds();
  rng.Shuffle(&ids);
  for (size_t i = 0; i < 250; ++i) {
    auto rec = am.Find(ids[i]);
    ASSERT_TRUE(rec.ok());
    ASSERT_TRUE(am.DeleteNode(ids[i], ReorgPolicy::kFirstOrder).ok());
    ASSERT_TRUE(am.InsertNode(*rec, ReorgPolicy::kFirstOrder).ok());
  }
  double degraded = ComputeCrr(net, am.PageMap());

  ASSERT_TRUE(am.ReorganizeAll().ok());
  double restored = ComputeCrr(net, am.PageMap());
  ASSERT_TRUE(am.CheckFileInvariants().ok());
  EXPECT_GT(restored, degraded);
  EXPECT_GT(restored, initial - 0.05);  // near-create quality
  // All records still intact.
  EXPECT_EQ(am.PageMap().size(), net.NumNodes());
  for (NodeId probe : {0u, 500u, 1000u}) {
    EXPECT_TRUE(am.Find(probe).ok());
  }
}

TEST(ReorganizeAllTest, CountsAsStructuralAndCostsIo) {
  Network net = GenerateMinneapolisLikeMap(5);
  AccessMethodOptions options;
  options.page_size = 1024;
  Ccam am(options, CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  am.ResetIoStats();
  ASSERT_TRUE(am.ReorganizeAll().ok());
  EXPECT_TRUE(am.LastOpChangedStructure());
  // Full pass: roughly read+write every page.
  EXPECT_GE(am.DataIoStats().Accesses(), am.NumDataPages());
}

}  // namespace
}  // namespace ccam
