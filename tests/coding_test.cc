#include "src/common/coding.h"

#include <gtest/gtest.h>

#include <limits>

namespace ccam {
namespace {

TEST(CodingTest, Fixed16RoundTrip) {
  char buf[2];
  for (uint32_t v : {0u, 1u, 255u, 256u, 65535u}) {
    EncodeFixed16(buf, static_cast<uint16_t>(v));
    EXPECT_EQ(DecodeFixed16(buf), v);
  }
}

TEST(CodingTest, Fixed32RoundTrip) {
  char buf[4];
  for (uint32_t v : {0u, 1u, 0xdeadbeefu, 0xffffffffu, 0x01020304u}) {
    EncodeFixed32(buf, v);
    EXPECT_EQ(DecodeFixed32(buf), v);
  }
}

TEST(CodingTest, Fixed64RoundTrip) {
  char buf[8];
  for (uint64_t v :
       {uint64_t{0}, uint64_t{1}, uint64_t{0xdeadbeefcafebabeULL},
        std::numeric_limits<uint64_t>::max()}) {
    EncodeFixed64(buf, v);
    EXPECT_EQ(DecodeFixed64(buf), v);
  }
}

TEST(CodingTest, LittleEndianLayout) {
  char buf[4];
  EncodeFixed32(buf, 0x01020304u);
  EXPECT_EQ(static_cast<unsigned char>(buf[0]), 0x04);
  EXPECT_EQ(static_cast<unsigned char>(buf[1]), 0x03);
  EXPECT_EQ(static_cast<unsigned char>(buf[2]), 0x02);
  EXPECT_EQ(static_cast<unsigned char>(buf[3]), 0x01);
}

TEST(CodingTest, FloatRoundTrip) {
  char buf[4];
  for (float v : {0.0f, -1.5f, 3.14159f, 1e30f, -1e-30f}) {
    EncodeFloat(buf, v);
    EXPECT_EQ(DecodeFloat(buf), v);
  }
}

TEST(CodingTest, DoubleRoundTrip) {
  char buf[8];
  for (double v : {0.0, -1.5, 3.141592653589793, 1e300, -1e-300}) {
    EncodeDouble(buf, v);
    EXPECT_EQ(DecodeDouble(buf), v);
  }
}

TEST(CodingTest, PutAppends) {
  std::string s;
  PutFixed16(&s, 7);
  PutFixed32(&s, 9);
  PutFixed64(&s, 11);
  PutFloat(&s, 2.5f);
  PutDouble(&s, -4.5);
  EXPECT_EQ(s.size(), 2u + 4 + 8 + 4 + 8);

  Decoder dec(s.data(), s.size());
  EXPECT_EQ(dec.GetFixed16(), 7);
  EXPECT_EQ(dec.GetFixed32(), 9u);
  EXPECT_EQ(dec.GetFixed64(), 11u);
  EXPECT_EQ(dec.GetFloat(), 2.5f);
  EXPECT_EQ(dec.GetDouble(), -4.5);
  EXPECT_TRUE(dec.Ok());
  EXPECT_EQ(dec.Remaining(), 0u);
}

TEST(CodingTest, DecoderDetectsOverrun) {
  std::string s;
  PutFixed16(&s, 7);
  Decoder dec(s.data(), s.size());
  EXPECT_EQ(dec.GetFixed16(), 7);
  EXPECT_EQ(dec.GetFixed32(), 0u);  // overrun: returns 0, marks failed
  EXPECT_FALSE(dec.Ok());
}

TEST(CodingTest, DecoderGetBytes) {
  std::string s = "abcdef";
  Decoder dec(s.data(), s.size());
  char out[4] = {0};
  dec.GetBytes(out, 4);
  EXPECT_TRUE(dec.Ok());
  EXPECT_EQ(std::string(out, 4), "abcd");
  dec.GetBytes(out, 4);  // only 2 left
  EXPECT_FALSE(dec.Ok());
}

}  // namespace
}  // namespace ccam
