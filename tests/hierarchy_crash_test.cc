#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/core/hierarchy_overlay.h"
#include "src/graph/generator.h"

namespace ccam {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

AccessMethodOptions DurableOptions() {
  AccessMethodOptions options;
  options.page_size = 512;
  options.buffer_pool_pages = 8;
  options.durability = true;
  return options;
}

/// Builds the overlay under one armed kill point, captures the platter,
/// and recovers from the capture. Returns true if the fault fired (the
/// point lies inside the build's fault space).
bool RunKillPoint(const Network& net, const std::string& point, uint64_t hit,
                  size_t expected_nodes, int* no_overlay, int* full_overlay) {
  FaultInjector faults(1995);
  EXPECT_TRUE(
      faults
          .Configure(point + "=crash:96@" + std::to_string(hit))
          .ok());
  AccessMethodOptions options = DurableOptions();
  HierarchyOverlay overlay(options);
  overlay.SetFaultInjector(&faults);
  Status built = overlay.Build(net);
  if (faults.FiringLog().empty()) {
    // Hit `hit` was never reached: the fault space of this point is
    // exhausted, and the unfaulted build must have succeeded.
    EXPECT_TRUE(built.ok()) << point << ": " << built.message();
    return false;
  }
  EXPECT_FALSE(built.ok()) << point << "@" << hit;
  EXPECT_FALSE(overlay.valid());

  // Capture the platter (works on the halted device) and recover.
  std::string img = TempPath("hier_crash_capture.img");
  {
    FaultInjector::SuppressScope suppress(&faults);
    EXPECT_TRUE(overlay.SaveImage(img).ok());
  }
  HierarchyOverlay recovered(options);
  Result<bool> loaded = recovered.LoadImage(img);
  EXPECT_TRUE(loaded.ok()) << point << "@" << hit << ": "
                           << loaded.status().message();
  if (!loaded.ok()) return true;
  if (*loaded) {
    // The crash fell after the commit barrier: recovery replays the WAL to
    // the complete, valid overlay — never a partial one.
    EXPECT_TRUE(recovered.CheckInvariants().ok()) << point << "@" << hit;
    EXPECT_EQ(recovered.NumNodes(), expected_nodes) << point << "@" << hit;
    ++*full_overlay;
  } else {
    ++*no_overlay;
  }
  std::remove(img.c_str());
  return true;
}

// The crash-safety acceptance sweep: a durable overlay build killed at
// every reachable hit of every overlay failpoint (page writes, page
// allocations, log appends, log flushes) recovers to *no* overlay or a
// *fully valid* one — never a torn in-between.
TEST(HierarchyCrashTest, EveryKillPointRecoversToNoneOrFullOverlay) {
  Network net = GenerateRingRadialCity(10, 14);
  const size_t n = net.NodeIds().size();
  int total = 0, no_overlay = 0, full_overlay = 0;
  for (const char* point :
       {"hier.write", "hier.alloc", "hier.wal.append", "hier.wal.flush"}) {
    for (uint64_t hit = 1; hit <= 400; ++hit) {
      if (!RunKillPoint(net, point, hit, n, &no_overlay, &full_overlay)) {
        break;
      }
      ++total;
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  // The sweep covers the whole fault space; the acceptance bar is 50+
  // kill points and both recovery outcomes observed.
  EXPECT_GE(total, 50) << "kill-point space unexpectedly small";
  EXPECT_GT(no_overlay, 0) << "no pre-commit crash observed";
  EXPECT_GT(full_overlay, 0) << "no post-commit crash observed";
}

// Without durability the overlay still fails cleanly under a crash and the
// in-memory handle reports invalid; the metadata-written-last discipline
// keeps torn *flushed* captures readable as "no overlay" in the common
// case, but only the durable build carries the recovery guarantee.
TEST(HierarchyCrashTest, NonDurableBuildFailsCleanlyUnderCrash) {
  Network net = GenerateRingRadialCity(6, 8);
  FaultInjector faults(7);
  ASSERT_TRUE(faults.Configure("hier.write=crash:96@3").ok());
  AccessMethodOptions options;
  options.page_size = 512;
  HierarchyOverlay overlay(options);
  overlay.SetFaultInjector(&faults);
  EXPECT_FALSE(overlay.Build(net).ok());
  EXPECT_FALSE(overlay.valid());
  EXPECT_FALSE(overlay.ReadNode(net.NodeIds()[0], nullptr).ok());
}

// Determinism of the harness itself: the same kill point produces the
// same firing log and the same recovery outcome.
TEST(HierarchyCrashTest, KillPointsAreDeterministic) {
  Network net = GenerateRingRadialCity(6, 8);
  const size_t n = net.NodeIds().size();
  for (int round = 0; round < 2; ++round) {
    int none = 0, full = 0;
    // Durable builds stage every page write: the platter sees them only
    // during the commit apply, after the WAL barrier — so a page-write
    // crash always replays to the full overlay.
    ASSERT_TRUE(RunKillPoint(net, "hier.write", 2, n, &none, &full));
    EXPECT_EQ(full, 1) << "a commit-apply crash must replay to completion";
    none = full = 0;
    // A log-append crash precedes the barrier: nothing was acknowledged,
    // recovery finds no overlay.
    ASSERT_TRUE(RunKillPoint(net, "hier.wal.append", 2, n, &none, &full));
    EXPECT_EQ(none, 1) << "a pre-barrier crash must lose the overlay";
  }
}

}  // namespace
}  // namespace ccam
