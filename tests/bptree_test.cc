#include "src/index/bptree.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/common/random.h"

namespace ccam {
namespace {

class BPlusTreeTest : public ::testing::TestWithParam<size_t> {
 protected:
  BPlusTreeTest()
      : disk_(GetParam()), pool_(&disk_, 16), tree_(&disk_, &pool_) {}

  DiskManager disk_;
  BufferPool pool_;
  BPlusTree tree_;
};

TEST_P(BPlusTreeTest, EmptyTree) {
  EXPECT_EQ(tree_.NumEntries(), 0u);
  EXPECT_EQ(tree_.Height(), 1);
  EXPECT_TRUE(tree_.Find(1).status().IsNotFound());
  EXPECT_FALSE(tree_.Begin().Valid());
  EXPECT_TRUE(tree_.CheckInvariants().ok());
}

TEST_P(BPlusTreeTest, InsertAndFind) {
  ASSERT_TRUE(tree_.Insert(5, 50).ok());
  ASSERT_TRUE(tree_.Insert(3, 30).ok());
  ASSERT_TRUE(tree_.Insert(8, 80).ok());
  auto v = tree_.Find(3);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 30u);
  EXPECT_TRUE(tree_.Find(4).status().IsNotFound());
  EXPECT_EQ(tree_.NumEntries(), 3u);
}

TEST_P(BPlusTreeTest, DuplicateInsertRejectedPutOverwrites) {
  ASSERT_TRUE(tree_.Insert(5, 50).ok());
  EXPECT_TRUE(tree_.Insert(5, 51).IsAlreadyExists());
  EXPECT_EQ(*tree_.Find(5), 50u);
  ASSERT_TRUE(tree_.Put(5, 52).ok());
  EXPECT_EQ(*tree_.Find(5), 52u);
  EXPECT_EQ(tree_.NumEntries(), 1u);
}

TEST_P(BPlusTreeTest, ManyInsertsSplitAndStayOrdered) {
  const uint64_t n = 2000;
  for (uint64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(tree_.Insert(k * 7 % n, k * 7 % n + 1).ok()) << k;
  }
  EXPECT_EQ(tree_.NumEntries(), n);
  EXPECT_GT(tree_.Height(), 1);
  ASSERT_TRUE(tree_.CheckInvariants().ok());
  uint64_t expected = 0;
  for (auto it = tree_.Begin(); it.Valid(); it.Next()) {
    ASSERT_EQ(it.key(), expected);
    ASSERT_EQ(it.value(), expected + 1);
    ++expected;
  }
  EXPECT_EQ(expected, n);
}

TEST_P(BPlusTreeTest, DeleteRebalances) {
  const uint64_t n = 1500;
  for (uint64_t k = 0; k < n; ++k) {
    ASSERT_TRUE(tree_.Insert(k, k).ok());
  }
  // Delete every third key.
  for (uint64_t k = 0; k < n; k += 3) {
    ASSERT_TRUE(tree_.Delete(k).ok()) << k;
  }
  ASSERT_TRUE(tree_.CheckInvariants().ok());
  for (uint64_t k = 0; k < n; ++k) {
    if (k % 3 == 0) {
      EXPECT_TRUE(tree_.Find(k).status().IsNotFound());
    } else {
      ASSERT_TRUE(tree_.Find(k).ok()) << k;
    }
  }
}

TEST_P(BPlusTreeTest, DeleteEverythingCollapsesToEmptyRoot) {
  const uint64_t n = 800;
  for (uint64_t k = 0; k < n; ++k) ASSERT_TRUE(tree_.Insert(k, k).ok());
  for (uint64_t k = 0; k < n; ++k) ASSERT_TRUE(tree_.Delete(k).ok()) << k;
  EXPECT_EQ(tree_.NumEntries(), 0u);
  EXPECT_EQ(tree_.Height(), 1);
  ASSERT_TRUE(tree_.CheckInvariants().ok());
  EXPECT_TRUE(tree_.Insert(42, 1).ok());  // still usable
}

TEST_P(BPlusTreeTest, DeleteMissingFails) {
  ASSERT_TRUE(tree_.Insert(1, 1).ok());
  EXPECT_TRUE(tree_.Delete(2).IsNotFound());
  EXPECT_EQ(tree_.NumEntries(), 1u);
}

TEST_P(BPlusTreeTest, SeekAndRangeScan) {
  for (uint64_t k = 0; k < 100; ++k) {
    ASSERT_TRUE(tree_.Insert(k * 10, k).ok());
  }
  auto it = tree_.Seek(95);
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.key(), 100u);  // smallest key >= 95
  auto range = tree_.RangeScan(200, 250);
  ASSERT_EQ(range.size(), 6u);
  EXPECT_EQ(range.front().first, 200u);
  EXPECT_EQ(range.back().first, 250u);
  EXPECT_TRUE(tree_.RangeScan(991, 2000).empty());
}

TEST_P(BPlusTreeTest, BulkLoadBuildsValidTree) {
  std::vector<std::pair<uint64_t, uint64_t>> entries;
  for (uint64_t k = 0; k < 3000; ++k) entries.emplace_back(k * 2, k);
  ASSERT_TRUE(tree_.BulkLoad(entries).ok());
  EXPECT_EQ(tree_.NumEntries(), 3000u);
  ASSERT_TRUE(tree_.CheckInvariants().ok());
  EXPECT_EQ(*tree_.Find(4000), 2000u);
  EXPECT_TRUE(tree_.Find(4001).status().IsNotFound());
  // The tree remains fully mutable after a bulk load.
  ASSERT_TRUE(tree_.Insert(4001, 7).ok());
  ASSERT_TRUE(tree_.Delete(4000).ok());
  ASSERT_TRUE(tree_.CheckInvariants().ok());
}

TEST_P(BPlusTreeTest, BulkLoadRejectsUnsortedInput) {
  std::vector<std::pair<uint64_t, uint64_t>> entries{{5, 1}, {3, 2}};
  EXPECT_TRUE(tree_.BulkLoad(entries).IsInvalidArgument());
}

TEST_P(BPlusTreeTest, BulkLoadEmptyYieldsEmptyTree) {
  ASSERT_TRUE(tree_.Insert(1, 1).ok());
  ASSERT_TRUE(tree_.BulkLoad({}).ok());
  EXPECT_EQ(tree_.NumEntries(), 0u);
  EXPECT_TRUE(tree_.CheckInvariants().ok());
}

TEST_P(BPlusTreeTest, RandomOpsMatchReferenceMap) {
  Random rng(GetParam());
  std::map<uint64_t, uint64_t> model;
  for (int step = 0; step < 6000; ++step) {
    uint64_t key = rng.Uniform(2000);
    int op = rng.Uniform(3);
    if (op == 0) {
      uint64_t value = rng.Next();
      Status s = tree_.Insert(key, value);
      if (model.count(key)) {
        ASSERT_TRUE(s.IsAlreadyExists());
      } else {
        ASSERT_TRUE(s.ok());
        model[key] = value;
      }
    } else if (op == 1) {
      Status s = tree_.Delete(key);
      if (model.count(key)) {
        ASSERT_TRUE(s.ok()) << s.ToString();
        model.erase(key);
      } else {
        ASSERT_TRUE(s.IsNotFound());
      }
    } else {
      auto res = tree_.Find(key);
      if (model.count(key)) {
        ASSERT_TRUE(res.ok());
        ASSERT_EQ(*res, model[key]);
      } else {
        ASSERT_TRUE(res.status().IsNotFound());
      }
    }
    if (step % 500 == 499) {
      ASSERT_TRUE(tree_.CheckInvariants().ok());
      ASSERT_EQ(tree_.NumEntries(), model.size());
    }
  }
  // Full final sweep: iteration matches the model exactly.
  auto it = tree_.Begin();
  for (const auto& [key, value] : model) {
    ASSERT_TRUE(it.Valid());
    ASSERT_EQ(it.key(), key);
    ASSERT_EQ(it.value(), value);
    it.Next();
  }
  EXPECT_FALSE(it.Valid());
}

INSTANTIATE_TEST_SUITE_P(PageSizes, BPlusTreeTest,
                         ::testing::Values(256, 512, 1024, 4096),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "page" + std::to_string(info.param);
                         });

TEST(BPlusTreeIoTest, IndexIoIsCountedOnItsOwnDisk) {
  DiskManager disk(512);
  BufferPool pool(&disk, 4);
  BPlusTree tree(&disk, &pool);
  for (uint64_t k = 0; k < 500; ++k) {
    ASSERT_TRUE(tree.Insert(k, k).ok());
  }
  ASSERT_TRUE(pool.FlushAll().ok());
  EXPECT_GT(disk.stats().Accesses(), 0u);
}

}  // namespace
}  // namespace ccam
