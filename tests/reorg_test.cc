#include "src/core/reorg.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <string>

#include "src/core/ccam.h"
#include "src/graph/generator.h"
#include "src/storage/snapshot_manager.h"

namespace ccam {
namespace {

/// 6 nodes on 3 pages: pages 0-1 and 1-2 are PAG neighbors; 0-2 are not.
struct Fixture {
  Network net;
  NodePageMap map;

  Fixture() {
    for (NodeId id = 0; id < 6; ++id) {
      EXPECT_TRUE(net.AddNode(id, id, 0).ok());
      map[id] = id / 2;  // pages 0,0,1,1,2,2
    }
    EXPECT_TRUE(net.AddBidirectionalEdge(0, 1, 1.0f).ok());  // intra page 0
    EXPECT_TRUE(net.AddBidirectionalEdge(2, 3, 1.0f).ok());  // intra page 1
    EXPECT_TRUE(net.AddBidirectionalEdge(4, 5, 1.0f).ok());  // intra page 2
    EXPECT_TRUE(net.AddEdge(1, 2, 1.0f).ok());               // page 0 - 1
    EXPECT_TRUE(net.AddEdge(3, 4, 1.0f).ok());               // page 1 - 2
  }
};

TEST(PagTest, BuildMatchesDefinition) {
  Fixture f;
  PageAccessGraph pag = PageAccessGraph::Build(f.net, f.map);
  EXPECT_EQ(pag.NumPages(), 3u);
  EXPECT_EQ(pag.NumEdges(), 2u);
  EXPECT_TRUE(pag.IsNeighborPage(0, 1));
  EXPECT_TRUE(pag.IsNeighborPage(1, 0));  // symmetric
  EXPECT_TRUE(pag.IsNeighborPage(1, 2));
  EXPECT_FALSE(pag.IsNeighborPage(0, 2));
  EXPECT_FALSE(pag.IsNeighborPage(0, 0));  // intra-page edges excluded
}

TEST(PagTest, NbrPages) {
  Fixture f;
  PageAccessGraph pag = PageAccessGraph::Build(f.net, f.map);
  EXPECT_EQ(pag.NbrPages(0), std::vector<PageId>{1});
  EXPECT_EQ(pag.NbrPages(1), (std::vector<PageId>{0, 2}));
  EXPECT_EQ(pag.NbrPages(2), std::vector<PageId>{1});
  EXPECT_TRUE(pag.NbrPages(99).empty());
}

TEST(PagTest, PagesAndDegree) {
  Fixture f;
  PageAccessGraph pag = PageAccessGraph::Build(f.net, f.map);
  EXPECT_EQ(pag.Pages(), (std::vector<PageId>{0, 1, 2}));
  EXPECT_NEAR(pag.AvgDegree(), 4.0 / 3.0, 1e-12);
}

TEST(PagTest, PagesOfNbrsDefinition) {
  Fixture f;
  // Node 2 (page 1) has neighbors 1 (page 0) and 3 (page 1).
  EXPECT_EQ(PagesOfNbrs(f.net, 2, f.map), (std::vector<PageId>{0, 1}));
  // Node 0 has only neighbor 1 (same page 0).
  EXPECT_EQ(PagesOfNbrs(f.net, 0, f.map), std::vector<PageId>{0});
}

TEST(PagTest, UnmappedNodesIgnored) {
  Fixture f;
  f.map.erase(4);
  PageAccessGraph pag = PageAccessGraph::Build(f.net, f.map);
  EXPECT_FALSE(pag.IsNeighborPage(1, 2));  // 3-4 edge lost its endpoint
}

TEST(PagTest, HighCrrClusteringHasSparsePag) {
  // A good clustering confines edges within pages, so the PAG is sparse
  // relative to a random assignment of the same page count.
  Network net = GenerateMinneapolisLikeMap(1995);
  AccessMethodOptions options;
  options.page_size = 1024;
  Ccam am(options, CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  PageAccessGraph good = PageAccessGraph::Build(net, am.PageMap());

  // Scramble: same pages, nodes assigned round-robin.
  NodePageMap scrambled;
  std::vector<PageId> pages;
  for (const auto& [node, page] : am.PageMap()) pages.push_back(page);
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  size_t i = 0;
  for (NodeId id : net.NodeIds()) {
    scrambled[id] = pages[i++ % pages.size()];
  }
  PageAccessGraph bad = PageAccessGraph::Build(net, scrambled);
  EXPECT_LT(good.AvgDegree(), bad.AvgDegree() * 0.5);
}

// The in-place reorganizers above rewrite the pages they serve, so they
// assume exclusive access to the file for the duration. The snapshot store
// drops that assumption: full reclustering builds a next version off to
// the side and publishes it with an atomic swap, while sessions opened
// before the swap keep reading the old clustering undisturbed.
TEST(OnlineReorgTest, SnapshotSwapReclustersWithoutExclusiveAccess) {
  SnapshotOptions sopt;
  sopt.am.page_size = 1024;
  sopt.am.buffer_pool_pages = 8;
  sopt.am.num_threads = 1;
  const char* tmp = std::getenv("TMPDIR");
  sopt.dir = std::string(tmp != nullptr ? tmp : "/tmp") +
             "/ccam_online_reorg_store";
  std::error_code ec;
  std::filesystem::remove_all(sopt.dir, ec);

  Network net = GenerateMinneapolisLikeMap(1995);
  auto mgr = SnapshotManager::Create(sopt, net);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();

  // A reader stays open across the whole reorganization.
  std::unique_ptr<SnapshotSession> session = (*mgr)->OpenSession();
  uint64_t v_before = session->version_id();
  NodeId probe = net.NodeIds().front();
  ASSERT_TRUE(session->Find(probe).ok());

  // Mutate: fresh nodes land in the overlay only, so the *base* clustering
  // no longer covers the full network.
  NodeId next_id = 0;
  for (NodeId id : net.NodeIds()) next_id = std::max(next_id, id + 1);
  std::vector<NodeId> anchors = net.NodeIds();
  for (int i = 0; i < 40; ++i) {
    NodeRecord rec;
    rec.id = next_id++;
    rec.x = static_cast<double>(i);
    rec.y = 0.0;
    rec.succ.push_back({anchors[i % anchors.size()], 1.0f});
    rec.pred.push_back({anchors[i % anchors.size()], 1.0f});
    ASSERT_TRUE((*mgr)->InsertNode(rec).ok());
  }
  double crr_degraded = ComputeCrr((*mgr)->network(), session->PageMap());

  ASSERT_TRUE((*mgr)->ReorganizeNow().ok());

  // The session never migrated — it still reads version 1's clustering —
  // and its reads still work (the old version's pages are alive until the
  // refcount drains).
  EXPECT_EQ(session->version_id(), v_before);
  EXPECT_TRUE(session->Find(probe).ok());

  // After refreshing, the session sees the new base, whose clustering
  // covers the mutated network: CRR recovers past the degraded view.
  session->Refresh();
  EXPECT_GT(session->version_id(), v_before);
  double crr_swapped = ComputeCrr((*mgr)->network(), session->PageMap());
  EXPECT_GT(crr_swapped, crr_degraded);

  // The swapped-in base is exactly what an exclusive static rebuild of the
  // mutated network produces — same clusterer, same options, same seed.
  Ccam fresh(sopt.am, CcamCreateMode::kStatic);
  ASSERT_TRUE(fresh.Create((*mgr)->network()).ok());
  EXPECT_EQ(session->PageMap(), fresh.PageMap());
  ASSERT_TRUE((*mgr)->CheckConsistency().ok());
}

}  // namespace
}  // namespace ccam
