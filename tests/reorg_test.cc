#include "src/core/reorg.h"

#include <gtest/gtest.h>

#include "src/core/ccam.h"
#include "src/graph/generator.h"

namespace ccam {
namespace {

/// 6 nodes on 3 pages: pages 0-1 and 1-2 are PAG neighbors; 0-2 are not.
struct Fixture {
  Network net;
  NodePageMap map;

  Fixture() {
    for (NodeId id = 0; id < 6; ++id) {
      EXPECT_TRUE(net.AddNode(id, id, 0).ok());
      map[id] = id / 2;  // pages 0,0,1,1,2,2
    }
    EXPECT_TRUE(net.AddBidirectionalEdge(0, 1, 1.0f).ok());  // intra page 0
    EXPECT_TRUE(net.AddBidirectionalEdge(2, 3, 1.0f).ok());  // intra page 1
    EXPECT_TRUE(net.AddBidirectionalEdge(4, 5, 1.0f).ok());  // intra page 2
    EXPECT_TRUE(net.AddEdge(1, 2, 1.0f).ok());               // page 0 - 1
    EXPECT_TRUE(net.AddEdge(3, 4, 1.0f).ok());               // page 1 - 2
  }
};

TEST(PagTest, BuildMatchesDefinition) {
  Fixture f;
  PageAccessGraph pag = PageAccessGraph::Build(f.net, f.map);
  EXPECT_EQ(pag.NumPages(), 3u);
  EXPECT_EQ(pag.NumEdges(), 2u);
  EXPECT_TRUE(pag.IsNeighborPage(0, 1));
  EXPECT_TRUE(pag.IsNeighborPage(1, 0));  // symmetric
  EXPECT_TRUE(pag.IsNeighborPage(1, 2));
  EXPECT_FALSE(pag.IsNeighborPage(0, 2));
  EXPECT_FALSE(pag.IsNeighborPage(0, 0));  // intra-page edges excluded
}

TEST(PagTest, NbrPages) {
  Fixture f;
  PageAccessGraph pag = PageAccessGraph::Build(f.net, f.map);
  EXPECT_EQ(pag.NbrPages(0), std::vector<PageId>{1});
  EXPECT_EQ(pag.NbrPages(1), (std::vector<PageId>{0, 2}));
  EXPECT_EQ(pag.NbrPages(2), std::vector<PageId>{1});
  EXPECT_TRUE(pag.NbrPages(99).empty());
}

TEST(PagTest, PagesAndDegree) {
  Fixture f;
  PageAccessGraph pag = PageAccessGraph::Build(f.net, f.map);
  EXPECT_EQ(pag.Pages(), (std::vector<PageId>{0, 1, 2}));
  EXPECT_NEAR(pag.AvgDegree(), 4.0 / 3.0, 1e-12);
}

TEST(PagTest, PagesOfNbrsDefinition) {
  Fixture f;
  // Node 2 (page 1) has neighbors 1 (page 0) and 3 (page 1).
  EXPECT_EQ(PagesOfNbrs(f.net, 2, f.map), (std::vector<PageId>{0, 1}));
  // Node 0 has only neighbor 1 (same page 0).
  EXPECT_EQ(PagesOfNbrs(f.net, 0, f.map), std::vector<PageId>{0});
}

TEST(PagTest, UnmappedNodesIgnored) {
  Fixture f;
  f.map.erase(4);
  PageAccessGraph pag = PageAccessGraph::Build(f.net, f.map);
  EXPECT_FALSE(pag.IsNeighborPage(1, 2));  // 3-4 edge lost its endpoint
}

TEST(PagTest, HighCrrClusteringHasSparsePag) {
  // A good clustering confines edges within pages, so the PAG is sparse
  // relative to a random assignment of the same page count.
  Network net = GenerateMinneapolisLikeMap(1995);
  AccessMethodOptions options;
  options.page_size = 1024;
  Ccam am(options, CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  PageAccessGraph good = PageAccessGraph::Build(net, am.PageMap());

  // Scramble: same pages, nodes assigned round-robin.
  NodePageMap scrambled;
  std::vector<PageId> pages;
  for (const auto& [node, page] : am.PageMap()) pages.push_back(page);
  std::sort(pages.begin(), pages.end());
  pages.erase(std::unique(pages.begin(), pages.end()), pages.end());
  size_t i = 0;
  for (NodeId id : net.NodeIds()) {
    scrambled[id] = pages[i++ % pages.size()];
  }
  PageAccessGraph bad = PageAccessGraph::Build(net, scrambled);
  EXPECT_LT(good.AvgDegree(), bad.AvgDegree() * 0.5);
}

}  // namespace
}  // namespace ccam
