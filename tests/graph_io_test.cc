#include "src/graph/graph_io.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "src/graph/generator.h"

namespace ccam {
namespace {

Network SampleNet() {
  Network net;
  EXPECT_TRUE(net.AddNode(1, 0.5, 1.5, "ab").ok());
  EXPECT_TRUE(net.AddNode(2, -3.25, 4.0).ok());
  EXPECT_TRUE(net.AddEdge(1, 2, 2.5f).ok());
  net.SetEdgeWeight(1, 2, 7.0);
  return net;
}

void ExpectNetworksEqual(const Network& a, const Network& b) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes());
  ASSERT_EQ(a.NumEdges(), b.NumEdges());
  for (NodeId id : a.NodeIds()) {
    ASSERT_TRUE(b.HasNode(id));
    EXPECT_EQ(a.node(id).x, b.node(id).x);
    EXPECT_EQ(a.node(id).y, b.node(id).y);
    EXPECT_EQ(a.node(id).payload, b.node(id).payload);
  }
  auto ea = a.Edges();
  auto eb = b.Edges();
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].from, eb[i].from);
    EXPECT_EQ(ea[i].to, eb[i].to);
    EXPECT_EQ(ea[i].cost, eb[i].cost);
    EXPECT_EQ(a.EdgeWeight(ea[i].from, ea[i].to),
              b.EdgeWeight(eb[i].from, eb[i].to));
  }
}

TEST(GraphIoTest, StringRoundTrip) {
  Network net = SampleNet();
  auto loaded = NetworkFromString(NetworkToString(net));
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ExpectNetworksEqual(net, *loaded);
}

TEST(GraphIoTest, FullMapRoundTrip) {
  Network net = GenerateMinneapolisLikeMap(123);
  auto loaded = NetworkFromString(NetworkToString(net));
  ASSERT_TRUE(loaded.ok());
  ExpectNetworksEqual(net, *loaded);
}

TEST(GraphIoTest, FileRoundTrip) {
  Network net = SampleNet();
  std::string path = ::testing::TempDir() + "/ccam_net_test.txt";
  ASSERT_TRUE(SaveNetwork(net, path).ok());
  auto loaded = LoadNetwork(path);
  ASSERT_TRUE(loaded.ok());
  ExpectNetworksEqual(net, *loaded);
  std::remove(path.c_str());
}

TEST(GraphIoTest, CommentsAndBlankLinesIgnored) {
  auto loaded = NetworkFromString(
      "# header\n"
      "\n"
      "n 1 0 0\n"
      "# middle\n"
      "n 2 1 1\n"
      "e 1 2 3.5\n");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumNodes(), 2u);
  EXPECT_EQ(loaded->NumEdges(), 1u);
}

TEST(GraphIoTest, WeightlessEdgesDefaultToOne) {
  auto loaded = NetworkFromString("n 1 0 0\nn 2 1 1\ne 1 2 3.5\n");
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->EdgeWeight(1, 2), 1.0);
}

TEST(GraphIoTest, BadInputRejected) {
  EXPECT_FALSE(NetworkFromString("x 1 2 3\n").ok());       // unknown tag
  EXPECT_FALSE(NetworkFromString("n 1\n").ok());           // short node
  EXPECT_FALSE(NetworkFromString("e 1 2 3\n").ok());       // missing nodes
  EXPECT_FALSE(NetworkFromString("n 1 0 0 zz\n").ok());    // bad hex
  EXPECT_FALSE(NetworkFromString("n 1 0 0 abc\n").ok());   // odd hex
  EXPECT_FALSE(
      NetworkFromString("n 1 0 0\nn 1 0 0\n").ok());       // dup node
}

TEST(GraphIoTest, MissingFileFails) {
  EXPECT_TRUE(LoadNetwork("/nonexistent/really/not/here").status().IsIOError());
}

TEST(GraphIoTest, BinaryPayloadSurvivesHexEncoding) {
  Network net;
  std::string payload;
  for (int i = 0; i < 256; ++i) payload.push_back(static_cast<char>(i));
  ASSERT_TRUE(net.AddNode(1, 0, 0, payload).ok());
  auto loaded = NetworkFromString(NetworkToString(net));
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->node(1).payload, payload);
}

}  // namespace
}  // namespace ccam
