#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "src/baseline/order_am.h"
#include "src/core/ccam.h"
#include "src/graph/generator.h"
#include "src/partition/recursive_bisection.h"
#include "src/storage/record.h"

namespace ccam {
namespace {

TEST(RingRadialTest, NodeAndEdgeCounts) {
  const int rings = 5, radials = 12;
  Network net = GenerateRingRadialCity(rings, radials);
  EXPECT_EQ(net.NumNodes(), static_cast<size_t>(1 + rings * radials));
  // Streets: rings*radials ring arcs + (rings-1)*radials radial segments
  // + radials spokes, each a bidirectional pair.
  size_t streets = rings * radials + (rings - 1) * radials + radials;
  EXPECT_EQ(net.NumEdges(), 2 * streets);
  EXPECT_TRUE(net.IsWeaklyConnected());
}

TEST(RingRadialTest, GeometryIsConcentric) {
  Network net = GenerateRingRadialCity(3, 8, 50.0);
  // Every node's distance from the origin is a multiple of the spacing.
  for (NodeId id : net.NodeIds()) {
    const NetworkNode& n = net.node(id);
    double r = std::hypot(n.x, n.y);
    double nearest = std::round(r / 50.0) * 50.0;
    EXPECT_NEAR(r, nearest, 1e-6);
  }
}

TEST(RingRadialTest, CcamClustersWell) {
  Network net = GenerateRingRadialCity(8, 24);
  AccessMethodOptions options;
  options.page_size = 1024;
  Ccam am(options, CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  ASSERT_TRUE(am.CheckFileInvariants().ok());
  EXPECT_GT(ComputeCrr(net, am.PageMap()), 0.5);
}

TEST(ScaleFreeTest, BasicShape) {
  Network net = GenerateScaleFreeNetwork(500, 2);
  EXPECT_EQ(net.NumNodes(), 500u);
  EXPECT_TRUE(net.IsWeaklyConnected());
  // Preferential attachment: expect a hub much above the mean degree.
  size_t max_deg = 0;
  for (NodeId id : net.NodeIds()) {
    max_deg = std::max(max_deg, net.node(id).succ.size());
  }
  double mean_deg = net.AvgOutDegree();
  EXPECT_GT(static_cast<double>(max_deg), mean_deg * 5);
}

TEST(ScaleFreeTest, DeterministicPerSeed) {
  Network a = GenerateScaleFreeNetwork(200, 2, 1000.0, 5);
  Network b = GenerateScaleFreeNetwork(200, 2, 1000.0, 5);
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
}

TEST(ScaleFreeTest, CcamStillOrdersAboveBfs) {
  // Hubs cap everyone's CRR, but connectivity clustering must still beat
  // BFS ordering — "general networks", not just road maps.
  Network net = GenerateScaleFreeNetwork(800, 2);
  AccessMethodOptions options;
  // Hub records exceed 1 KiB (a record must fit one page), so scale-free
  // networks need larger blocks.
  options.page_size = 4096;
  Ccam ccam_am(options, CcamCreateMode::kStatic);
  OrderAm bfs_am(options, NodeOrderKind::kBfs);
  ASSERT_TRUE(ccam_am.Create(net).ok());
  ASSERT_TRUE(bfs_am.Create(net).ok());
  double crr_ccam = ComputeCrr(net, ccam_am.PageMap());
  double crr_bfs = ComputeCrr(net, bfs_am.PageMap());
  EXPECT_GT(crr_ccam, crr_bfs);
}

TEST(MinFillTest, LowerMinFillTradesPagesForCrr) {
  Network net = GenerateMinneapolisLikeMap(1995);
  std::map<double, std::pair<double, size_t>> results;  // fill -> (crr, pages)
  for (double fill : {0.25, 0.5}) {
    ClusterOptions options;
    options.page_capacity = 1020;
    options.per_record_overhead = 4;
    options.min_fill_fraction = fill;
    auto pages = ClusterNodesIntoPages(net, net.NodeIds(), options);
    ASSERT_TRUE(pages.ok());
    NodePageMap map;
    for (size_t p = 0; p < pages->size(); ++p) {
      for (NodeId id : (*pages)[p]) map[id] = static_cast<PageId>(p);
    }
    results[fill] = {ComputeCrr(net, map), pages->size()};
  }
  // Relaxing the fill bound can only help (or tie) the cut...
  EXPECT_GE(results[0.25].first, results[0.5].first - 0.02);
  // ...at the cost of at least as many pages.
  EXPECT_GE(results[0.25].second, results[0.5].second);
}

TEST(MinFillTest, RespectedByBisection) {
  Network net = GenerateMinneapolisLikeMap(3);
  ClusterOptions options;
  options.page_capacity = 2040;
  options.per_record_overhead = 4;
  options.min_fill_fraction = 0.4;
  auto pages = ClusterNodesIntoPages(net, net.NodeIds(), options);
  ASSERT_TRUE(pages.ok());
  // All pages fit; totals preserved.
  size_t total = 0;
  for (const auto& page : pages.value()) {
    size_t bytes = 0;
    for (NodeId id : page) bytes += RecordSizeOf(id, net.node(id)) + 4;
    EXPECT_LE(bytes, options.page_capacity);
    total += page.size();
  }
  EXPECT_EQ(total, net.NumNodes());
}

TEST(GeneratorCoverageTest, AllTopologiesFeedAllAms) {
  std::vector<Network> topologies;
  topologies.push_back(GenerateRingRadialCity(6, 16));
  topologies.push_back(GenerateScaleFreeNetwork(300, 2));
  topologies.push_back(GenerateRandomGeometricNetwork(300, 120.0));
  for (Network& net : topologies) {
    AccessMethodOptions options;
    options.page_size = 4096;  // scale-free hubs need large blocks
    Ccam am(options, CcamCreateMode::kIncremental);
    ASSERT_TRUE(am.Create(net).ok());
    ASSERT_TRUE(am.CheckFileInvariants().ok());
    EXPECT_EQ(am.PageMap().size(), net.NumNodes());
  }
}

}  // namespace
}  // namespace ccam
