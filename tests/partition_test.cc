#include "src/partition/partition.h"

#include <gtest/gtest.h>

#include <set>

#include "src/graph/generator.h"
#include "src/partition/recursive_bisection.h"
#include "src/storage/record.h"

namespace ccam {
namespace {

/// Two dense clusters joined by one bridge edge — any sensible bisection
/// cuts exactly the bridge.
Network TwoClusters() {
  Network net;
  for (NodeId id = 0; id < 8; ++id) {
    EXPECT_TRUE(net.AddNode(id, id < 4 ? 0.0 : 100.0, id % 4).ok());
  }
  auto clique = [&](NodeId base) {
    for (NodeId i = 0; i < 4; ++i) {
      for (NodeId j = i + 1; j < 4; ++j) {
        EXPECT_TRUE(net.AddBidirectionalEdge(base + i, base + j, 1.0f).ok());
      }
    }
  };
  clique(0);
  clique(4);
  EXPECT_TRUE(net.AddBidirectionalEdge(3, 4, 1.0f).ok());
  return net;
}

TEST(PartitionGraphTest, FromNetworkCollapsesDirectedPairs) {
  Network net = TwoClusters();
  PartitionGraph g =
      PartitionGraph::FromNetwork(net, net.NodeIds(), false);
  EXPECT_EQ(g.NumNodes(), 8u);
  // 13 undirected edges (6 + 6 + bridge), each a bidirectional pair, in a
  // single CSR allocation of symmetric entries.
  EXPECT_EQ(g.adj.size(), 2u * 13u);
  EXPECT_EQ(g.adj_start.size(), g.NumNodes() + 1);
  EXPECT_EQ(static_cast<size_t>(g.adj_start.back()), g.adj.size());
  // Each undirected edge weight = 2 (two directed edges of weight 1), and
  // each per-node neighbor range is sorted by target index.
  for (size_t i = 0; i < g.NumNodes(); ++i) {
    int prev = -1;
    for (const auto& e : g.Neighbors(static_cast<int>(i))) {
      EXPECT_DOUBLE_EQ(e.weight, 2.0);
      EXPECT_GT(e.to, prev);
      prev = e.to;
    }
  }
}

TEST(PartitionGraphTest, NodeSizesAreRecordSizes) {
  Network net = TwoClusters();
  PartitionGraph g =
      PartitionGraph::FromNetwork(net, net.NodeIds(), false, 4);
  for (size_t i = 0; i < g.NumNodes(); ++i) {
    EXPECT_EQ(g.node_sizes[i],
              RecordSizeOf(g.ids[i], net.node(g.ids[i])) + 4);
  }
}

TEST(PartitionGraphTest, AccessWeightsUsedWhenRequested) {
  Network net = TwoClusters();
  net.SetEdgeWeight(3, 4, 10.0);
  net.SetEdgeWeight(4, 3, 20.0);
  PartitionGraph g = PartitionGraph::FromNetwork(net, net.NodeIds(), true);
  double bridge_weight = 0.0;
  for (size_t i = 0; i < g.NumNodes(); ++i) {
    if (g.ids[i] != 3) continue;
    for (const auto& e : g.Neighbors(static_cast<int>(i))) {
      if (g.ids[e.to] == 4) bridge_weight = e.weight;
    }
  }
  EXPECT_DOUBLE_EQ(bridge_weight, 30.0);
}

TEST(PartitionGraphTest, SubsetRestricts) {
  Network net = TwoClusters();
  PartitionGraph g = PartitionGraph::FromNetwork(net, {0, 1, 2}, false);
  EXPECT_EQ(g.NumNodes(), 3u);
}

TEST(CrrTest, PerfectAndWorstClustering) {
  Network net = TwoClusters();
  NodePageMap same, split;
  for (NodeId id = 0; id < 8; ++id) {
    same[id] = 0;
    split[id] = id;  // every node on its own page
  }
  EXPECT_DOUBLE_EQ(ComputeCrr(net, same), 1.0);
  EXPECT_DOUBLE_EQ(ComputeCrr(net, split), 0.0);
}

TEST(CrrTest, BridgeOnlyCut) {
  Network net = TwoClusters();
  NodePageMap map;
  for (NodeId id = 0; id < 8; ++id) map[id] = id < 4 ? 0 : 1;
  // 26 directed edges total, 2 split (the bidirectional bridge).
  EXPECT_DOUBLE_EQ(ComputeCrr(net, map), 24.0 / 26.0);
}

TEST(CrrTest, UnmappedNodesCountAsSplit) {
  Network net = TwoClusters();
  NodePageMap map;  // empty
  EXPECT_DOUBLE_EQ(ComputeCrr(net, map), 0.0);
  Network empty;
  EXPECT_DOUBLE_EQ(ComputeCrr(empty, map), 1.0);  // vacuous
}

TEST(WcrrTest, WeightsShiftTheRatio) {
  Network net = TwoClusters();
  NodePageMap map;
  for (NodeId id = 0; id < 8; ++id) map[id] = id < 4 ? 0 : 1;
  // Make the (split) bridge dominate the weight mass.
  net.SetEdgeWeight(3, 4, 100.0);
  net.SetEdgeWeight(4, 3, 100.0);
  double wcrr = ComputeWcrr(net, map);
  EXPECT_DOUBLE_EQ(wcrr, 24.0 / 224.0);
  // Uniform weights: WCRR == CRR.
  net.ClearEdgeWeights();
  EXPECT_DOUBLE_EQ(ComputeWcrr(net, map), ComputeCrr(net, map));
}

class BisectionTest
    : public ::testing::TestWithParam<PartitionAlgorithm> {};

TEST_P(BisectionTest, FindsTheBridgeCut) {
  Network net = TwoClusters();
  PartitionGraph g = PartitionGraph::FromNetwork(net, net.NodeIds(), false);
  size_t min_side = g.TotalSize() / 4;
  Bisection b = TwoWayPartition(g, min_side, GetParam(), 11);
  ASSERT_EQ(b.side.size(), 8u);
  EXPECT_GE(b.size_a, min_side);
  EXPECT_GE(b.size_b, min_side);
  if (GetParam() != PartitionAlgorithm::kRandom) {
    // The heuristics must find the 1-bridge (undirected weight 2) cut.
    EXPECT_DOUBLE_EQ(b.cut_weight, 2.0);
    // Each clique lands on one side.
    for (NodeId id = 1; id < 4; ++id) EXPECT_EQ(b.side[id], b.side[0]);
    for (NodeId id = 5; id < 8; ++id) EXPECT_EQ(b.side[id], b.side[4]);
    EXPECT_NE(b.side[0], b.side[4]);
  }
}

TEST_P(BisectionTest, CutWeightMatchesAssignment) {
  Network net = GenerateMinneapolisLikeMap(17);
  std::vector<NodeId> ids = net.NodeIds();
  std::vector<NodeId> subset(ids.begin(), ids.begin() + 200);
  PartitionGraph g = PartitionGraph::FromNetwork(net, subset, false);
  Bisection b = TwoWayPartition(g, g.TotalSize() / 4, GetParam(), 5);
  EXPECT_DOUBLE_EQ(b.cut_weight, CutWeight(g, b.side));
  size_t sa, sb;
  SideSizes(g, b.side, &sa, &sb);
  EXPECT_EQ(sa, b.size_a);
  EXPECT_EQ(sb, b.size_b);
  EXPECT_GE(sa, g.TotalSize() / 4);
  EXPECT_GE(sb, g.TotalSize() / 4);
}

TEST_P(BisectionTest, HeuristicsBeatRandom) {
  if (GetParam() == PartitionAlgorithm::kRandom) GTEST_SKIP();
  Network net = GenerateMinneapolisLikeMap(23);
  std::vector<NodeId> ids = net.NodeIds();
  std::vector<NodeId> subset(ids.begin(), ids.begin() + 400);
  PartitionGraph g = PartitionGraph::FromNetwork(net, subset, false);
  Bisection smart = TwoWayPartition(g, g.TotalSize() / 4, GetParam(), 5);
  Bisection random =
      TwoWayPartition(g, g.TotalSize() / 4, PartitionAlgorithm::kRandom, 5);
  EXPECT_LT(smart.cut_weight, random.cut_weight * 0.5);
}

TEST_P(BisectionTest, DeterministicForSeed) {
  Network net = GenerateMinneapolisLikeMap(41);
  std::vector<NodeId> ids = net.NodeIds();
  std::vector<NodeId> subset(ids.begin(), ids.begin() + 300);
  PartitionGraph g = PartitionGraph::FromNetwork(net, subset, false);
  Bisection a = TwoWayPartition(g, g.TotalSize() / 4, GetParam(), 99);
  Bisection b = TwoWayPartition(g, g.TotalSize() / 4, GetParam(), 99);
  EXPECT_EQ(a.side, b.side);
  EXPECT_EQ(a.cut_weight, b.cut_weight);
}

TEST_P(BisectionTest, EmptyGraph) {
  PartitionGraph g;
  Bisection b = TwoWayPartition(g, 0, GetParam(), 1);
  EXPECT_TRUE(b.side.empty());
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, BisectionTest,
    ::testing::Values(PartitionAlgorithm::kRatioCut, PartitionAlgorithm::kFm,
                      PartitionAlgorithm::kKl, PartitionAlgorithm::kRandom),
    [](const ::testing::TestParamInfo<PartitionAlgorithm>& info) {
      std::string name = PartitionAlgorithmName(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

class ClusterTest : public ::testing::TestWithParam<PartitionAlgorithm> {};

TEST_P(ClusterTest, PagesRespectCapacityAndPartitionNodes) {
  Network net = GenerateMinneapolisLikeMap(29);
  ClusterOptions options;
  options.page_capacity = 1020;
  options.per_record_overhead = 4;
  options.algorithm = GetParam();
  auto pages = ClusterNodesIntoPages(net, net.NodeIds(), options);
  ASSERT_TRUE(pages.ok());
  std::set<NodeId> seen;
  for (const auto& page : pages.value()) {
    EXPECT_FALSE(page.empty());
    size_t bytes = 0;
    for (NodeId id : page) {
      EXPECT_TRUE(seen.insert(id).second) << "node appears twice";
      bytes += RecordSizeOf(id, net.node(id)) + 4;
    }
    EXPECT_LE(bytes, options.page_capacity);
  }
  EXPECT_EQ(seen.size(), net.NumNodes());
}

TEST_P(ClusterTest, PagesAreReasonablyFull) {
  Network net = GenerateMinneapolisLikeMap(29);
  ClusterOptions options;
  options.page_capacity = 1020;
  options.algorithm = GetParam();
  auto pages = ClusterNodesIntoPages(net, net.NodeIds(), options);
  ASSERT_TRUE(pages.ok());
  size_t total_bytes = 0;
  for (NodeId id : net.NodeIds()) {
    total_bytes += RecordSizeOf(id, net.node(id)) + 4;
  }
  // Average fill must beat 50% (every 2-way split keeps sides above the
  // half-page minimum whenever possible).
  double avg_fill = static_cast<double>(total_bytes) /
                    (pages->size() * options.page_capacity);
  EXPECT_GT(avg_fill, 0.5);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, ClusterTest,
    ::testing::Values(PartitionAlgorithm::kRatioCut, PartitionAlgorithm::kFm,
                      PartitionAlgorithm::kKl, PartitionAlgorithm::kRandom),
    [](const ::testing::TestParamInfo<PartitionAlgorithm>& info) {
      std::string name = PartitionAlgorithmName(info.param);
      name.erase(std::remove(name.begin(), name.end(), '-'), name.end());
      return name;
    });

TEST(ClusterTest2, SmallSubsetBecomesOnePage) {
  Network net = TwoClusters();
  ClusterOptions options;
  options.page_capacity = 4096;
  auto pages = ClusterNodesIntoPages(net, net.NodeIds(), options);
  ASSERT_TRUE(pages.ok());
  EXPECT_EQ(pages->size(), 1u);
}

TEST(ClusterTest2, OversizedRecordRejected) {
  Network net;
  ASSERT_TRUE(net.AddNode(1, 0, 0, std::string(500, 'p')).ok());
  ClusterOptions options;
  options.page_capacity = 100;
  auto pages = ClusterNodesIntoPages(net, net.NodeIds(), options);
  EXPECT_TRUE(pages.status().IsNoSpace());
}

TEST(ClusterTest2, MissingSubsetNodeRejected) {
  Network net = TwoClusters();
  ClusterOptions options;
  auto pages = ClusterNodesIntoPages(net, {999}, options);
  EXPECT_TRUE(pages.status().IsInvalidArgument());
}

TEST(ClusterTest2, RatioCutBeatsRandomOnCrr) {
  Network net = GenerateMinneapolisLikeMap(31);
  ClusterOptions options;
  options.page_capacity = 1020;
  options.algorithm = PartitionAlgorithm::kRatioCut;
  auto smart = ClusterNodesIntoPages(net, net.NodeIds(), options);
  options.algorithm = PartitionAlgorithm::kRandom;
  auto random = ClusterNodesIntoPages(net, net.NodeIds(), options);
  ASSERT_TRUE(smart.ok());
  ASSERT_TRUE(random.ok());
  auto to_map = [](const std::vector<std::vector<NodeId>>& pages) {
    NodePageMap map;
    for (size_t p = 0; p < pages.size(); ++p) {
      for (NodeId id : pages[p]) map[id] = static_cast<PageId>(p);
    }
    return map;
  };
  double crr_smart = ComputeCrr(net, to_map(*smart));
  double crr_random = ComputeCrr(net, to_map(*random));
  EXPECT_GT(crr_smart, 0.55);
  EXPECT_GT(crr_smart, crr_random + 0.3);
}

TEST(RefineTest, PairwiseRefinementDoesNotHurt) {
  Network net = GenerateMinneapolisLikeMap(37);
  ClusterOptions options;
  options.page_capacity = 1020;
  options.algorithm = PartitionAlgorithm::kFm;
  auto pages = ClusterNodesIntoPages(net, net.NodeIds(), options);
  ASSERT_TRUE(pages.ok());
  auto to_map = [](const std::vector<std::vector<NodeId>>& pages) {
    NodePageMap map;
    for (size_t p = 0; p < pages.size(); ++p) {
      for (NodeId id : pages[p]) map[id] = static_cast<PageId>(p);
    }
    return map;
  };
  double before = ComputeCrr(net, to_map(*pages));
  std::vector<std::vector<NodeId>> refined = *pages;
  RefinePagesPairwise(net, &refined, options, 2);
  double after = ComputeCrr(net, to_map(refined));
  EXPECT_GE(after, before);
  // Refinement must preserve the node partition and page capacity.
  std::set<NodeId> seen;
  for (const auto& page : refined) {
    size_t bytes = 0;
    for (NodeId id : page) {
      EXPECT_TRUE(seen.insert(id).second);
      bytes += RecordSizeOf(id, net.node(id)) + 4;
    }
    EXPECT_LE(bytes, options.page_capacity);
  }
  EXPECT_EQ(seen.size(), net.NumNodes());
}

}  // namespace
}  // namespace ccam
