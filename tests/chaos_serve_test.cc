// Serve-layer chaos battery: a live QueryService at 8 workers under
// deadline pressure (50% of requests carry tight or already-expired
// deadlines) while the data disk injects corruption and short-read faults
// and one page carries genuine platter damage. The invariants are the
// request-lifecycle contract:
//
//   * no hang, no crash — every ticket completes (the ctest TIMEOUT is
//     the hang detector);
//   * every outcome is TYPED — ok, Overloaded, DeadlineExceeded,
//     Corruption, Quarantined, ShortRead or IOError, never anything else;
//   * quarantined pages never reach results — every OK response is
//     bit-identical to the pre-fault serial oracle;
//   * accounting survives chaos — completed + rejected == submitted, and
//     the workers' session IoStats still equal the file's disk-read delta
//     (failed read attempts count in neither).
//
// Plus a circuit-breaker trip/recovery section and cooperative-
// cancellation checks at the session level. Run by scripts/check_chaos.sh
// and under ThreadSanitizer by scripts/check_tsan.sh.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/common/metrics.h"
#include "src/common/request_context.h"
#include "src/core/ccam.h"
#include "src/core/query_session.h"
#include "src/graph/generator.h"
#include "src/query/route_eval.h"
#include "src/query/search.h"
#include "src/serve/loadgen.h"
#include "src/serve/query_service.h"

namespace ccam {
namespace {

using serve::LoadgenOptions;
using serve::QueryService;
using serve::QueryServiceOptions;
using serve::ServeOp;
using serve::ServeRequest;
using serve::ServeResponse;
using serve::ServeTicketPtr;

Network TestNetwork() {
  RoadMapOptions gen;
  gen.rows = 24;
  gen.cols = 24;
  gen.nodes_to_remove = 6;
  gen.seed = 2024;
  return GenerateRoadMap(gen);
}

std::unique_ptr<Ccam> MakeFile(const Network& net, size_t page_size,
                               size_t pool_pages, bool overlay) {
  AccessMethodOptions options;
  options.page_size = page_size;
  options.buffer_pool_pages = pool_pages;
  if (overlay) options.hierarchy_overlay = true;
  auto am = std::make_unique<Ccam>(options, CcamCreateMode::kStatic);
  EXPECT_TRUE(am->Create(net).ok());
  return am;
}

// The serial oracle (same shape as serve_test.cc's): ground truth computed
// on a healthy file before any fault is armed.
ServeResponse Oracle(QuerySession* session, const ServeRequest& request) {
  ServeResponse response;
  switch (request.op) {
    case ServeOp::kRouteEval: {
      auto r = EvaluateRoute(session, request.route);
      if (r.ok()) {
        response.cost = r.value().total_cost;
        response.num_edges = r.value().num_edges;
      } else {
        response.status = r.status();
      }
      break;
    }
    case ServeOp::kAStar:
    case ServeOp::kHierarchy: {
      auto r = ShortestPathAStar(session, request.route.nodes.front(),
                                 request.route.nodes.back());
      if (r.ok()) {
        response.cost = r.value().cost;
        response.num_edges =
            r.value().path.empty() ? 0 : r.value().path.size() - 1;
        response.path = r.value().path;
      } else {
        response.status = r.status();
      }
      break;
    }
    default:
      break;
  }
  return response;
}

// A lifecycle-era outcome: every chaos ticket must land on one of these.
bool IsTypedChaosOutcome(const Status& s) {
  return s.ok() || s.IsOverloaded() || s.IsDeadlineExceeded() ||
         s.IsCancelled() || s.IsCorruption() || s.IsQuarantined() ||
         s.IsShortRead() || s.IsIOError();
}

// --- The battery ---------------------------------------------------------

TEST(ChaosServeTest, DeadlinePressureWithFaultsKeepsEveryInvariant) {
  Network net = TestNetwork();
  auto file = MakeFile(net, 1024, /*pool_pages=*/16, /*overlay=*/false);
  MetricsRegistry metrics;
  file->SetMetrics(&metrics);

  // Route-eval and A* only: both run entirely on the data disk, where the
  // chaos schedules are armed (aggregates and CH would pass through the
  // same session checks but dilute the fault pressure).
  LoadgenOptions gen;
  gen.tenants = 6;
  gen.pool_size = 400;
  gen.zipf_theta = 0.8;
  gen.w_route_eval = 0.6;
  gen.w_astar = 0.4;
  gen.w_aggregate = 0.0;
  gen.w_hierarchy = 0.0;
  gen.seed = 4242;
  std::vector<ServeRequest> pool = serve::BuildRequestPool(file.get(), gen);
  ASSERT_EQ(pool.size(), 400u);

  // Ground truth BEFORE any fault exists.
  std::vector<ServeResponse> expected;
  {
    auto session = file->OpenSession();
    for (const ServeRequest& request : pool) {
      expected.push_back(Oracle(session.get(), request));
      ASSERT_TRUE(expected.back().status.ok());
    }
  }

  // Genuine platter damage on one cold data page: a torn rewrite leaves
  // new-head/old-tail content under a stale seal, so with verification on
  // every read of it fails Corruption — deterministically, forever.
  FaultInjector faults(99);
  file->SetFaultInjector(&faults);
  ASSERT_TRUE(file->buffer_pool()->Reset().ok());  // all fetches go cold
  PageId victim = file->PageMap().begin()->second;
  {
    std::vector<char> content(1024);
    ASSERT_TRUE(file->disk()->ReadPage(victim, content.data()).ok());
    for (size_t i = 0; i < 48; ++i) {
      content[i] = static_cast<char>(~content[i]);
    }
    ASSERT_TRUE(faults.Configure("disk.write=torn:48@1").ok());
    EXPECT_FALSE(file->disk()->WritePage(victim, content.data()).ok());
    faults.Reset();
  }
  file->disk()->SetVerifyChecksums(true);
  // Plus transient chaos: every 9th read attempt returns a short frame
  // (usually rescued by the pool's bounded re-read).
  ASSERT_TRUE(faults.Configure("disk.read=short:64@every9").ok());

  const IoStats disk_before = file->DataIoStats();

  QueryServiceOptions options;
  options.num_workers = 8;
  options.max_queue_depth = 100000;  // only deadlines/faults may shed
  options.max_tenant_depth = 100000;
  options.retry_max_attempts = 3;
  options.retry_backoff_us = 50;
  options.seed = 17;
  QueryService service(file.get(), options);

  // 50% of traffic carries deadline pressure: one quarter of the pool is
  // born expired (shed at admission/dequeue), one quarter gets a tight
  // 2 ms budget; the other half is deadline-free healthy traffic.
  const int64_t now = RequestContext::NowMicros();
  std::vector<int> kind(pool.size());
  for (size_t i = 0; i < pool.size(); ++i) kind[i] = static_cast<int>(i % 4);

  constexpr int kSubmitters = 4;
  std::vector<std::vector<ServeTicketPtr>> tickets(kSubmitters);
  {
    std::vector<std::thread> submitters;
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&, t] {
        for (size_t i = t; i < pool.size(); i += kSubmitters) {
          ServeRequest request = pool[i];
          if (kind[i] == 1) request.deadline_us = now - 1;  // born expired
          if (kind[i] == 3) {
            request.deadline_us = RequestContext::NowMicros() + 2000;
          }
          tickets[t].push_back(service.Submit(std::move(request)));
        }
      });
    }
    for (auto& thread : submitters) thread.join();
  }

  uint64_t ok = 0, shed = 0, faulted = 0, expired_mid = 0;
  size_t mismatches = 0;
  for (int t = 0; t < kSubmitters; ++t) {
    size_t k = 0;
    for (size_t i = t; i < pool.size(); i += kSubmitters, ++k) {
      const ServeResponse& got = tickets[t][k]->Wait();
      // Invariant 1+2: every ticket completes, with a typed status.
      ASSERT_TRUE(IsTypedChaosOutcome(got.status))
          << "request " << i << ": " << got.status.ToString();
      if (got.status.ok()) {
        ++ok;
        // Invariant 3: an OK response under chaos is bit-identical to the
        // healthy serial oracle — damaged or quarantined page content can
        // never leak into a served result.
        const ServeResponse& want = expected[i];
        if (got.cost != want.cost || got.num_edges != want.num_edges ||
            got.path != want.path) {
          ++mismatches;
        }
      } else if (got.status.IsDeadlineExceeded() ||
                 got.status.IsOverloaded()) {
        (kind[i] == 1 ? shed : expired_mid) += 1;
        // Deadline-free requests must never be shed in this setup.
        EXPECT_NE(kind[i] % 2, 0) << got.status.ToString();
      } else {
        ++faulted;  // Corruption / Quarantined / ShortRead / IOError
      }
    }
  }
  EXPECT_EQ(mismatches, 0u);
  EXPECT_GT(ok, 0u);
  EXPECT_GE(shed, pool.size() / 4);  // every born-expired request was shed

  service.Shutdown(/*drain=*/true);
  QueryService::Stats stats = service.GetStats();
  // Invariant 4: the books balance under chaos.
  EXPECT_EQ(stats.submitted, pool.size());
  EXPECT_EQ(stats.completed + stats.rejected, stats.submitted);
  EXPECT_GE(stats.shed_deadline, pool.size() / 4);

  // The damaged page really was contained: it sits in quarantine with the
  // original Corruption reason, and at least one later fetch fast-failed.
  EXPECT_TRUE(file->quarantine()->Contains(victim));
  EXPECT_GE(metrics.GetCounter("storage.quarantine.added")->value(), 1u);

  // Invariant 4 (conservation): failed attempts count in neither ledger,
  // successful retries count once — the sums still agree exactly.
  EXPECT_EQ(service.TotalSessionIoStats().reads,
            (file->DataIoStats() - disk_before).reads);
}

// Same battery shape, healthy disk: with deadlines on half the traffic but
// zero faults, all non-shed requests must complete OK and match the oracle.
TEST(ChaosServeTest, DeadlinePressureAloneNeverCorruptsResults) {
  Network net = TestNetwork();
  auto file = MakeFile(net, 1024, /*pool_pages=*/16, /*overlay=*/false);

  LoadgenOptions gen;
  gen.tenants = 4;
  gen.pool_size = 300;
  gen.w_aggregate = 0.0;
  gen.w_hierarchy = 0.0;
  gen.seed = 515;
  std::vector<ServeRequest> pool = serve::BuildRequestPool(file.get(), gen);

  std::vector<ServeResponse> expected;
  {
    auto session = file->OpenSession();
    for (const ServeRequest& request : pool) {
      expected.push_back(Oracle(session.get(), request));
    }
  }

  QueryServiceOptions options;
  options.num_workers = 8;
  options.max_queue_depth = 100000;
  options.max_tenant_depth = 100000;
  QueryService service(file.get(), options);

  const int64_t now = RequestContext::NowMicros();
  std::vector<ServeTicketPtr> tickets;
  for (size_t i = 0; i < pool.size(); ++i) {
    ServeRequest request = pool[i];
    if (i % 2 == 1) {
      // Tight-but-future budgets; some will be met, some shed or expire.
      request.deadline_us = now + 1000 + static_cast<int64_t>(i);
    }
    tickets.push_back(service.Submit(std::move(request)));
  }
  for (size_t i = 0; i < pool.size(); ++i) {
    const ServeResponse& got = tickets[i]->Wait();
    if (got.status.ok()) {
      EXPECT_EQ(got.cost, expected[i].cost) << i;
      EXPECT_EQ(got.num_edges, expected[i].num_edges) << i;
      EXPECT_EQ(got.path, expected[i].path) << i;
    } else {
      // The only failure mode a healthy disk allows is the deadline.
      EXPECT_TRUE(got.status.IsDeadlineExceeded()) << got.status.ToString();
      EXPECT_EQ(i % 2, 1u);  // and only deadlined traffic may fail
    }
  }
  service.Shutdown(/*drain=*/true);
  QueryService::Stats stats = service.GetStats();
  EXPECT_EQ(stats.completed + stats.rejected, stats.submitted);
}

// --- Circuit breaker: trip, shed, recover --------------------------------

TEST(ChaosServeTest, BreakerTripsOnIoFailuresAndRecoversAfterCooldown) {
  Network net = TestNetwork();
  auto file = MakeFile(net, 1024, /*pool_pages=*/16, /*overlay=*/false);
  FaultInjector faults(7);
  file->SetFaultInjector(&faults);
  ASSERT_TRUE(file->buffer_pool()->Reset().ok());

  LoadgenOptions gen;
  gen.tenants = 1;
  gen.pool_size = 64;
  gen.w_aggregate = 0.0;
  gen.w_hierarchy = 0.0;
  gen.seed = 23;
  std::vector<ServeRequest> pool = serve::BuildRequestPool(file.get(), gen);
  ASSERT_TRUE(file->buffer_pool()->Reset().ok());  // loadgen warmed it

  QueryServiceOptions options;
  options.num_workers = 2;
  options.breaker_trip_threshold = 4;
  options.breaker_cooldown_us = 20000;  // 20 ms
  QueryService service(file.get(), options);

  // A device that fails every read: requests fail typed IOError (never
  // quarantined — transport trouble is not page damage), and after the
  // 4th consecutive failure the kIo breaker opens.
  ASSERT_TRUE(faults.Configure("disk.read=error:io@1+").ok());
  uint64_t io_failures = 0, breaker_shed = 0;
  for (int i = 0; i < 16; ++i) {
    ServeTicketPtr ticket = service.Submit(pool[i % pool.size()]);
    const ServeResponse& r = ticket->Wait();
    if (r.status.IsIOError()) ++io_failures;
    if (r.status.IsOverloaded() &&
        r.status.message().find("circuit breaker") != std::string::npos) {
      ++breaker_shed;
    }
  }
  EXPECT_GE(io_failures, 4u);   // the failures that tripped it
  EXPECT_GT(breaker_shed, 0u);  // ...and the shedding that followed
  EXPECT_EQ(file->quarantine()->size(), 0u);

  // Device heals; after the cooldown the half-open probe succeeds, the
  // breaker closes, and traffic flows again.
  faults.Reset();
  std::this_thread::sleep_for(std::chrono::milliseconds(25));
  uint64_t recovered = 0;
  for (int i = 0; i < 16; ++i) {
    ServeTicketPtr ticket = service.Submit(pool[i % pool.size()]);
    const ServeResponse& r = ticket->Wait();
    if (r.status.ok()) ++recovered;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(recovered, 8u);

  service.Shutdown(/*drain=*/true);
  QueryService::Stats stats = service.GetStats();
  EXPECT_EQ(stats.completed + stats.rejected, stats.submitted);
  EXPECT_GT(stats.shed_breaker, 0u);
}

// --- Cooperative cancellation at the session level -----------------------

TEST(ChaosServeTest, CancellationAndDeadlineUnwindTyped) {
  Network net = TestNetwork();
  auto file = MakeFile(net, 1024, /*pool_pages=*/16, /*overlay=*/false);
  auto session = file->OpenSession();
  std::vector<NodeId> ids;
  for (const auto& entry : file->PageMap()) ids.push_back(entry.first);
  ASSERT_GE(ids.size(), 2u);

  // A context cancelled up front stops the very next check site.
  RequestContext cancelled;
  cancelled.Cancel();
  session->SetRequestContext(&cancelled);
  auto r1 = ShortestPathAStar(session.get(), ids.front(), ids.back());
  ASSERT_FALSE(r1.ok());
  EXPECT_TRUE(r1.status().IsCancelled()) << r1.status().ToString();

  // A deadline already in the past unwinds as DeadlineExceeded.
  RequestContext expired(RequestContext::NowMicros() - 10);
  session->SetRequestContext(&expired);
  auto r2 = ShortestPathAStar(session.get(), ids.front(), ids.back());
  ASSERT_FALSE(r2.ok());
  EXPECT_TRUE(r2.status().IsDeadlineExceeded()) << r2.status().ToString();

  // Cancellation wins over an expired deadline (it is the more specific
  // "stop now" signal).
  expired.Cancel();
  Status both = expired.Check();
  EXPECT_TRUE(both.IsCancelled()) << both.ToString();

  // Detached again, the same query runs to completion.
  session->SetRequestContext(nullptr);
  auto r3 = ShortestPathAStar(session.get(), ids.front(), ids.back());
  EXPECT_TRUE(r3.ok()) << r3.status().ToString();

  // Cancel mid-flight from another thread: a long scan unwinds promptly
  // with the typed status instead of running to the end.
  RequestContext ctx;
  session->SetRequestContext(&ctx);
  std::atomic<bool> started{false};
  std::thread canceller([&] {
    while (!started.load(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
    ctx.Cancel();
  });
  started.store(true, std::memory_order_release);
  // Terminates because the cancel is already in flight: the next check
  // site after it lands unwinds the query.
  Status last;
  for (size_t i = 0; last.ok(); ++i) {
    auto r = ShortestPathAStar(session.get(), ids[i % ids.size()],
                               ids[(i * 7 + 3) % ids.size()]);
    last = r.status();
  }
  canceller.join();
  EXPECT_TRUE(last.IsCancelled()) << last.ToString();
  session->SetRequestContext(nullptr);
}

}  // namespace
}  // namespace ccam
