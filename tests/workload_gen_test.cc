#include <gtest/gtest.h>

#include "src/core/ccam.h"
#include "src/graph/generator.h"
#include "src/graph/route.h"
#include "src/query/route_eval.h"

namespace ccam {
namespace {

class ShortestPathRoutesTest : public ::testing::Test {
 protected:
  ShortestPathRoutesTest() : net_(GenerateMinneapolisLikeMap(1995)) {}
  Network net_;
};

TEST_F(ShortestPathRoutesTest, RoutesAreValidAndLongEnough) {
  auto routes = GenerateShortestPathRoutes(net_, 30, 8, 3);
  EXPECT_EQ(routes.size(), 30u);
  for (const Route& r : routes) {
    EXPECT_GE(r.Length(), 8u);
    EXPECT_TRUE(IsValidRoute(net_, r));
  }
}

TEST_F(ShortestPathRoutesTest, RoutesAreActuallyShortest) {
  // A shortest path never revisits a node.
  auto routes = GenerateShortestPathRoutes(net_, 20, 5, 7);
  for (const Route& r : routes) {
    std::set<NodeId> uniq(r.nodes.begin(), r.nodes.end());
    EXPECT_EQ(uniq.size(), r.nodes.size());
  }
}

TEST_F(ShortestPathRoutesTest, DeterministicPerSeed) {
  auto a = GenerateShortestPathRoutes(net_, 10, 5, 11);
  auto b = GenerateShortestPathRoutes(net_, 10, 5, 11);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].nodes, b[i].nodes);
}

TEST_F(ShortestPathRoutesTest, TinyNetworkDegradesGracefully) {
  Network tiny;
  ASSERT_TRUE(tiny.AddNode(0, 0, 0).ok());
  auto routes = GenerateShortestPathRoutes(tiny, 5, 2, 1);
  EXPECT_TRUE(routes.empty());
}

TEST_F(ShortestPathRoutesTest, CommuterWorkloadStillFavorsCcam) {
  // Figure 6's conclusion holds under the more realistic workload too.
  auto routes = GenerateShortestPathRoutes(net_, 50, 15, 21);
  ASSERT_EQ(routes.size(), 50u);
  Network weighted = net_;
  DeriveEdgeWeightsFromRoutes(&weighted, routes);

  auto mean_io = [&](AccessMethod* am) {
    uint64_t total = 0;
    for (const Route& r : routes) {
      EXPECT_TRUE(am->buffer_pool()->Reset().ok());
      auto res = EvaluateRoute(am, r);
      EXPECT_TRUE(res.ok());
      total += res->page_accesses;
    }
    return static_cast<double>(total) / routes.size();
  };
  AccessMethodOptions options;
  options.page_size = 2048;
  options.buffer_pool_pages = 1;
  options.use_access_weights = true;
  Ccam ccam_am(options, CcamCreateMode::kStatic);
  ASSERT_TRUE(ccam_am.Create(weighted).ok());
  AccessMethodOptions plain = options;
  plain.use_access_weights = false;
  plain.partitioner = PartitionAlgorithm::kRandom;
  Ccam random_am(plain, CcamCreateMode::kStatic);
  ASSERT_TRUE(random_am.Create(weighted).ok());
  EXPECT_LT(mean_io(&ccam_am), mean_io(&random_am) * 0.5);
}

TEST(InsertOrderTest, NamesAndDefault) {
  EXPECT_STREQ(CcamInsertOrderName(CcamInsertOrder::kNodeId), "z-order");
  EXPECT_STREQ(CcamInsertOrderName(CcamInsertOrder::kBfs), "bfs");
  EXPECT_STREQ(CcamInsertOrderName(CcamInsertOrder::kRandom), "random");
}

TEST(InsertOrderTest, AllOrdersBuildValidFiles) {
  Network net = GenerateMinneapolisLikeMap(55);
  for (CcamInsertOrder order :
       {CcamInsertOrder::kNodeId, CcamInsertOrder::kBfs,
        CcamInsertOrder::kRandom}) {
    AccessMethodOptions options;
    options.page_size = 1024;
    Ccam am(options, CcamCreateMode::kIncremental);
    am.SetIncrementalOrder(order);
    ASSERT_TRUE(am.Create(net).ok()) << CcamInsertOrderName(order);
    ASSERT_TRUE(am.CheckFileInvariants().ok());
    EXPECT_EQ(am.PageMap().size(), net.NumNodes());
  }
}

TEST(InsertOrderTest, CoherentOrdersBeatRandomUnderFirstOrder) {
  Network net = GenerateMinneapolisLikeMap(55);
  auto crr_for = [&](CcamInsertOrder order) {
    AccessMethodOptions options;
    options.page_size = 1024;
    Ccam am(options, CcamCreateMode::kIncremental,
            ReorgPolicy::kFirstOrder);
    am.SetIncrementalOrder(order);
    EXPECT_TRUE(am.Create(net).ok());
    return ComputeCrr(net, am.PageMap());
  };
  double z = crr_for(CcamInsertOrder::kNodeId);
  double bfs = crr_for(CcamInsertOrder::kBfs);
  double random = crr_for(CcamInsertOrder::kRandom);
  EXPECT_GT(z, random);
  EXPECT_GT(bfs, random);
}

}  // namespace
}  // namespace ccam
