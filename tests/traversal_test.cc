#include "src/query/traversal.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/baseline/order_am.h"
#include "src/core/ccam.h"
#include "src/graph/generator.h"

namespace ccam {
namespace {

AccessMethodOptions Opts() {
  AccessMethodOptions options;
  options.page_size = 1024;
  options.buffer_pool_pages = 8;
  return options;
}

/// Directed chain 0 -> 1 -> 2 -> 3, plus an island {10, 11}.
Network ChainWithIsland() {
  Network net;
  for (NodeId id : {0u, 1u, 2u, 3u, 10u, 11u}) {
    EXPECT_TRUE(net.AddNode(id, id, 0).ok());
  }
  EXPECT_TRUE(net.AddEdge(0, 1, 1.0f).ok());
  EXPECT_TRUE(net.AddEdge(1, 2, 1.0f).ok());
  EXPECT_TRUE(net.AddEdge(2, 3, 1.0f).ok());
  EXPECT_TRUE(net.AddBidirectionalEdge(10, 11, 1.0f).ok());
  return net;
}

TEST(TraversalTest, ReachabilityFollowsDirectedEdges) {
  Network net = ChainWithIsland();
  Ccam am(Opts(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());

  auto from0 = ReachableFrom(&am, 0);
  ASSERT_TRUE(from0.ok());
  EXPECT_EQ(std::set<NodeId>(from0->nodes.begin(), from0->nodes.end()),
            (std::set<NodeId>{0, 1, 2, 3}));
  // From node 2 only {2, 3} are reachable (directed).
  auto from2 = ReachableFrom(&am, 2);
  ASSERT_TRUE(from2.ok());
  EXPECT_EQ(std::set<NodeId>(from2->nodes.begin(), from2->nodes.end()),
            (std::set<NodeId>{2, 3}));
  // The island is invisible from the chain.
  for (NodeId id : from0->nodes) EXPECT_LT(id, 10u);
}

TEST(TraversalTest, DepthBoundRespected) {
  Network net = ChainWithIsland();
  Ccam am(Opts(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  auto res = ReachableFrom(&am, 0, /*max_depth=*/1);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(std::set<NodeId>(res->nodes.begin(), res->nodes.end()),
            (std::set<NodeId>{0, 1}));
}

TEST(TraversalTest, MissingSourceFails) {
  Network net = ChainWithIsland();
  Ccam am(Opts(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  EXPECT_TRUE(ReachableFrom(&am, 999).status().IsNotFound());
}

TEST(TraversalTest, FullMapReachability) {
  Network net = GenerateMinneapolisLikeMap(1995);
  Ccam am(Opts(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  auto res = ReachableFrom(&am, 0);
  ASSERT_TRUE(res.ok());
  // The generator patches weak connectivity; one-way streets may make a
  // few nodes unreachable in the directed sense, but the bulk must be.
  EXPECT_GT(res->nodes.size(), net.NumNodes() * 9 / 10);
}

TEST(TraversalTest, ClosureSampleAveragesCorrectly) {
  Network net = ChainWithIsland();
  Ccam am(Opts(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  auto sample = SampleTransitiveClosure(&am, {0, 2, 10});
  ASSERT_TRUE(sample.ok());
  // |reach(0)| = 4, |reach(2)| = 2, |reach(10)| = 2 -> mean 8/3.
  EXPECT_NEAR(sample->mean_reachable, 8.0 / 3.0, 1e-12);
}

TEST(TraversalTest, ComponentsFindChainAndIsland) {
  Network net = ChainWithIsland();
  Ccam am(Opts(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  auto res = WeaklyConnectedComponents(&am);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->components.size(), 2u);
  std::vector<size_t> sizes;
  for (const auto& [repr, size] : res->components) sizes.push_back(size);
  std::sort(sizes.begin(), sizes.end());
  EXPECT_EQ(sizes, (std::vector<size_t>{2, 4}));
}

TEST(TraversalTest, WholeMapIsOneWeakComponent) {
  Network net = GenerateMinneapolisLikeMap(7);
  Ccam am(Opts(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  auto res = WeaklyConnectedComponents(&am);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->components.size(), 1u);
  EXPECT_EQ(res->components[0].second, net.NumNodes());
}

TEST(TraversalTest, CcamNeedsFewerPagesThanBfsAm) {
  // The related-work claim: traversal recursion I/O tracks clustering.
  Network net = GenerateMinneapolisLikeMap(1995);
  Ccam ccam_am(Opts(), CcamCreateMode::kStatic);
  OrderAm bfs_am(Opts(), NodeOrderKind::kBfs);
  ASSERT_TRUE(ccam_am.Create(net).ok());
  ASSERT_TRUE(bfs_am.Create(net).ok());
  std::vector<NodeId> sources{0, 250, 500, 750, 1000};
  auto a = SampleTransitiveClosure(&ccam_am, sources, 12);
  auto b = SampleTransitiveClosure(&bfs_am, sources, 12);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(a->page_accesses, b->page_accesses);
}

}  // namespace
}  // namespace ccam
