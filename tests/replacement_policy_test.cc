#include <gtest/gtest.h>

#include <algorithm>
#include <deque>

#include "src/common/random.h"
#include "src/core/ccam.h"
#include "src/graph/generator.h"
#include "src/query/route_eval.h"
#include "src/storage/buffer_pool.h"

namespace ccam {
namespace {

std::vector<PageId> MakePages(DiskManager* disk, int n) {
  std::vector<PageId> pages;
  for (int i = 0; i < n; ++i) pages.push_back(*disk->AllocatePage());
  return pages;
}

void Touch(BufferPool* pool, PageId id) {
  auto res = pool->FetchPage(id);
  ASSERT_TRUE(res.ok());
  ASSERT_TRUE(pool->UnpinPage(id, false).ok());
}

TEST(ReplacementPolicyTest, Names) {
  EXPECT_STREQ(ReplacementPolicyName(ReplacementPolicy::kLru), "lru");
  EXPECT_STREQ(ReplacementPolicyName(ReplacementPolicy::kFifo), "fifo");
  EXPECT_STREQ(ReplacementPolicyName(ReplacementPolicy::kClock), "clock");
}

TEST(ReplacementPolicyTest, FifoIgnoresReReferences) {
  DiskManager disk(64);
  BufferPool pool(&disk, 3, ReplacementPolicy::kFifo);
  auto pages = MakePages(&disk, 4);
  Touch(&pool, pages[0]);
  Touch(&pool, pages[1]);
  Touch(&pool, pages[2]);
  // Re-touch page 0: under LRU it would survive; under FIFO it is still
  // the oldest-loaded and must be evicted by the next miss.
  Touch(&pool, pages[0]);
  Touch(&pool, pages[3]);
  EXPECT_FALSE(pool.Contains(pages[0]));
  EXPECT_TRUE(pool.Contains(pages[1]));
  EXPECT_TRUE(pool.Contains(pages[2]));
  EXPECT_TRUE(pool.Contains(pages[3]));
}

TEST(ReplacementPolicyTest, LruKeepsReReferencedPage) {
  DiskManager disk(64);
  BufferPool pool(&disk, 3, ReplacementPolicy::kLru);
  auto pages = MakePages(&disk, 4);
  Touch(&pool, pages[0]);
  Touch(&pool, pages[1]);
  Touch(&pool, pages[2]);
  Touch(&pool, pages[0]);  // page 1 becomes LRU
  Touch(&pool, pages[3]);
  EXPECT_TRUE(pool.Contains(pages[0]));
  EXPECT_FALSE(pool.Contains(pages[1]));
}

TEST(ReplacementPolicyTest, ClockGivesSecondChance) {
  DiskManager disk(64);
  BufferPool pool(&disk, 3, ReplacementPolicy::kClock);
  auto pages = MakePages(&disk, 5);
  Touch(&pool, pages[0]);
  Touch(&pool, pages[1]);
  Touch(&pool, pages[2]);
  // All ref bits set. First miss sweeps and clears all bits, then evicts
  // the first candidate (page 0).
  Touch(&pool, pages[3]);
  EXPECT_FALSE(pool.Contains(pages[0]));
  // Re-reference page 1: its bit is set again; the next miss must evict
  // page 2 (bit clear), not page 1.
  Touch(&pool, pages[1]);
  Touch(&pool, pages[4]);
  EXPECT_TRUE(pool.Contains(pages[1]));
  EXPECT_FALSE(pool.Contains(pages[2]));
}

TEST(ReplacementPolicyTest, ClockNeverEvictsPinned) {
  DiskManager disk(64);
  BufferPool pool(&disk, 2, ReplacementPolicy::kClock);
  auto pages = MakePages(&disk, 3);
  auto pinned = pool.FetchPage(pages[0]);
  ASSERT_TRUE(pinned.ok());
  Touch(&pool, pages[1]);
  Touch(&pool, pages[2]);  // must evict pages[1], never pages[0]
  EXPECT_TRUE(pool.Contains(pages[0]));
  EXPECT_FALSE(pool.Contains(pages[1]));
  ASSERT_TRUE(pool.UnpinPage(pages[0], false).ok());
}

/// Differential fuzz for every policy against a reference simulator.
class PolicyFuzzTest : public ::testing::TestWithParam<ReplacementPolicy> {};

TEST_P(PolicyFuzzTest, MatchesReferenceSimulator) {
  const size_t kCapacity = 4;
  DiskManager disk(64);
  BufferPool pool(&disk, kCapacity, GetParam());
  auto pages = MakePages(&disk, 12);

  // Reference state.
  struct Ref {
    PageId id;
    uint64_t load_seq;
    uint64_t use_seq;
    bool ref_bit;
  };
  std::vector<Ref> resident;  // load order
  size_t hand = 0;
  uint64_t seq = 0;

  Random rng(GetParam() == ReplacementPolicy::kLru    ? 1
              : GetParam() == ReplacementPolicy::kFifo ? 2
                                                       : 3);
  for (int step = 0; step < 4000; ++step) {
    PageId pick = pages[rng.Uniform(static_cast<uint32_t>(pages.size()))];
    ++seq;
    auto it = std::find_if(resident.begin(), resident.end(),
                           [&](const Ref& r) { return r.id == pick; });
    bool expect_hit = it != resident.end();
    if (expect_hit) {
      it->use_seq = seq;
      it->ref_bit = true;
    } else {
      if (resident.size() >= kCapacity) {
        size_t victim = 0;
        if (GetParam() == ReplacementPolicy::kFifo) {
          uint64_t best = UINT64_MAX;
          for (size_t i = 0; i < resident.size(); ++i) {
            if (resident[i].load_seq < best) {
              best = resident[i].load_seq;
              victim = i;
            }
          }
        } else if (GetParam() == ReplacementPolicy::kLru) {
          uint64_t best = UINT64_MAX;
          for (size_t i = 0; i < resident.size(); ++i) {
            if (resident[i].use_seq < best) {
              best = resident[i].use_seq;
              victim = i;
            }
          }
        } else {  // clock
          for (;;) {
            Ref& r = resident[hand];
            if (r.ref_bit) {
              r.ref_bit = false;
              hand = (hand + 1) % resident.size();
            } else {
              victim = hand;
              break;
            }
          }
        }
        resident.erase(resident.begin() + victim);
        if (hand > victim) --hand;
        if (!resident.empty()) hand %= resident.size();
      }
      resident.push_back({pick, seq, seq, true});
    }
    uint64_t hits_before = pool.hits();
    auto res = pool.FetchPage(pick);
    ASSERT_TRUE(res.ok());
    ASSERT_TRUE(pool.UnpinPage(pick, false).ok());
    ASSERT_EQ(pool.hits() > hits_before, expect_hit) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, PolicyFuzzTest,
    ::testing::Values(ReplacementPolicy::kLru, ReplacementPolicy::kFifo,
                      ReplacementPolicy::kClock),
    [](const ::testing::TestParamInfo<ReplacementPolicy>& info) {
      return ReplacementPolicyName(info.param);
    });

TEST(ReplacementPolicyTest, AccessMethodsWorkUnderEveryPolicy) {
  Network net = GenerateMinneapolisLikeMap(66);
  auto routes = GenerateRandomWalkRoutes(net, 10, 12, 4);
  for (ReplacementPolicy policy :
       {ReplacementPolicy::kLru, ReplacementPolicy::kFifo,
        ReplacementPolicy::kClock}) {
    AccessMethodOptions options;
    options.page_size = 1024;
    options.buffer_pool_pages = 4;
    options.replacement = policy;
    Ccam am(options, CcamCreateMode::kStatic);
    ASSERT_TRUE(am.Create(net).ok()) << ReplacementPolicyName(policy);
    ASSERT_TRUE(am.CheckFileInvariants().ok());
    for (const Route& r : routes) {
      ASSERT_TRUE(EvaluateRoute(&am, r).ok());
    }
    ASSERT_TRUE(am.DeleteNode(5, ReorgPolicy::kSecondOrder).ok());
    ASSERT_TRUE(am.CheckFileInvariants().ok());
  }
}

}  // namespace
}  // namespace ccam
