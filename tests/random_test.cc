#include "src/common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

namespace ccam {
namespace {

TEST(RandomTest, DeterministicForSameSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RandomTest, UniformInRange) {
  Random rng(7);
  for (uint32_t n : {1u, 2u, 10u, 1000u}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.Uniform(n), n);
    }
  }
}

TEST(RandomTest, UniformIntCoversInclusiveRange) {
  Random rng(9);
  std::set<int> seen;
  for (int i = 0; i < 500; ++i) {
    int v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Random rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, BernoulliExtremes) {
  Random rng(13);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RandomTest, BernoulliRoughlyCalibrated) {
  Random rng(17);
  int hits = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.03);
}

TEST(RandomTest, ShuffleIsPermutation) {
  Random rng(19);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(RandomTest, ShuffleEmptyAndSingleton) {
  Random rng(21);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{5};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{5});
}

TEST(RandomTest, SampleDistinctAndBounded) {
  Random rng(23);
  auto sample = rng.Sample(100, 20);
  EXPECT_EQ(sample.size(), 20u);
  std::set<uint32_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 20u);
  for (uint32_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RandomTest, SampleClampsToPopulation) {
  Random rng(25);
  auto sample = rng.Sample(5, 50);
  EXPECT_EQ(sample.size(), 5u);
  std::set<uint32_t> uniq(sample.begin(), sample.end());
  EXPECT_EQ(uniq.size(), 5u);
}

}  // namespace
}  // namespace ccam
