// MetricsRegistry / histogram / trace-ring unit tests, the multi-thread
// increment-conservation hammer (run under TSan via check_tsan.sh), the
// IoStats saturating-delta regression test, and the guard that attaching
// metrics leaves the paper's page-access accounting byte-identical.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/random.h"
#include "src/core/ccam.h"
#include "src/graph/generator.h"
#include "src/graph/route.h"
#include "src/query/hierarchy.h"
#include "src/query/route_eval.h"
#include "src/query/search.h"
#include "src/storage/io_stats.h"

namespace ccam {
namespace {

TEST(MetricCounterTest, IncAndReset) {
  MetricCounter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricGaugeTest, SetAddReset) {
  MetricGauge g;
  g.Set(7);
  g.Add(-10);
  EXPECT_EQ(g.value(), -3);
  g.Reset();
  EXPECT_EQ(g.value(), 0);
}

TEST(MetricHistogramTest, BucketLayoutTwoPerOctave) {
  // Bounds: 1, 2, 3, 4, 6, 8, 12, 16, 24, ... last bucket = everything.
  EXPECT_EQ(MetricHistogram::BucketUpperBound(0), 1u);
  EXPECT_EQ(MetricHistogram::BucketUpperBound(1), 2u);
  EXPECT_EQ(MetricHistogram::BucketUpperBound(2), 3u);
  EXPECT_EQ(MetricHistogram::BucketUpperBound(3), 4u);
  EXPECT_EQ(MetricHistogram::BucketUpperBound(4), 6u);
  EXPECT_EQ(MetricHistogram::BucketUpperBound(5), 8u);
  EXPECT_EQ(MetricHistogram::BucketUpperBound(6), 12u);
  EXPECT_EQ(MetricHistogram::BucketUpperBound(MetricHistogram::kNumBuckets - 1),
            ~uint64_t{0});
  // Strictly increasing (no duplicate bounds — a duplicate would make a
  // bucket unreachable and shift every percentile).
  for (int i = 1; i < MetricHistogram::kNumBuckets; ++i) {
    EXPECT_LT(MetricHistogram::BucketUpperBound(i - 1),
              MetricHistogram::BucketUpperBound(i))
        << "bucket " << i;
  }
  // A value at a bound lands in that bound's bucket (inclusive upper
  // edge); one past it lands in the next.
  EXPECT_EQ(MetricHistogram::BucketIndex(0), 0);
  EXPECT_EQ(MetricHistogram::BucketIndex(1), 0);
  EXPECT_EQ(MetricHistogram::BucketIndex(2), 1);
  EXPECT_EQ(MetricHistogram::BucketIndex(6), 4);
  EXPECT_EQ(MetricHistogram::BucketIndex(7), 5);
  EXPECT_EQ(MetricHistogram::BucketIndex(~uint64_t{0}),
            MetricHistogram::kNumBuckets - 1);
}

TEST(MetricHistogramTest, CountSumMean) {
  MetricHistogram h;
  EXPECT_EQ(h.Percentile(50), 0u) << "empty histogram reports 0";
  h.Record(1);
  h.Record(3);
  h.Record(8);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 12u);
  EXPECT_DOUBLE_EQ(h.Mean(), 4.0);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.Percentile(99), 0u);
}

TEST(MetricHistogramTest, PercentileAtBucketEdges) {
  // 100 values, one per rank, all exactly on bucket bounds: percentiles
  // must come back exact, not off by one bucket.
  MetricHistogram h;
  for (int i = 0; i < 50; ++i) h.Record(1);
  for (int i = 0; i < 45; ++i) h.Record(4);
  for (int i = 0; i < 4; ++i) h.Record(16);
  h.Record(64);
  ASSERT_EQ(h.count(), 100u);
  // rank(50) = 50 -> cumulative 50 reached by the "1" bucket.
  EXPECT_EQ(h.Percentile(50), 1u);
  // rank(95) = 95 -> reached by the "4" bucket (50 + 45).
  EXPECT_EQ(h.Percentile(95), 4u);
  // rank(99) = 99 -> reached by the "16" bucket (50 + 45 + 4).
  EXPECT_EQ(h.Percentile(99), 16u);
  EXPECT_EQ(h.Percentile(100), 64u);
  // p just past a bucket's cumulative share crosses to the next bound:
  // ceil(50.01) = rank 51, first reached by the "4" bucket.
  EXPECT_EQ(h.Percentile(50.01), 4u);
}

TEST(MetricHistogramTest, SingleValuePercentiles) {
  MetricHistogram h;
  h.Record(6);  // exactly on a bound
  EXPECT_EQ(h.Percentile(1), 6u);
  EXPECT_EQ(h.Percentile(50), 6u);
  EXPECT_EQ(h.Percentile(100), 6u);
  // A value between bounds reports the bucket's upper edge (5 -> 6).
  MetricHistogram h2;
  h2.Record(5);
  EXPECT_EQ(h2.Percentile(50), 6u);
}

TEST(MetricsRegistryTest, StablePointersAndCatalog) {
  MetricsRegistry reg;
  MetricCounter* a = reg.GetCounter("buffer_pool.hit");
  MetricCounter* b = reg.GetCounter("buffer_pool.hit");
  EXPECT_EQ(a, b) << "same name must return the same object";
  EXPECT_NE(a, reg.GetCounter("buffer_pool.miss"));
  reg.GetGauge("pool.resident");
  reg.GetHistogram("disk.read_us")->Record(3);
  a->Inc(5);

  std::vector<MetricsRegistry::Sample> samples = reg.Samples();
  ASSERT_EQ(samples.size(), 4u);
  // Sorted by name within each kind; counters first.
  EXPECT_EQ(samples[0].name, "buffer_pool.hit");
  EXPECT_EQ(samples[0].count, 5u);
  EXPECT_EQ(samples[1].name, "buffer_pool.miss");

  reg.Reset();
  EXPECT_EQ(a->value(), 0u) << "Reset zeroes values, keeps the catalog";
  EXPECT_EQ(reg.GetCounter("buffer_pool.hit"), a);
  EXPECT_EQ(reg.Samples().size(), 4u);
}

TEST(MetricsRegistryTest, ExportJsonContainsSeries) {
  MetricsRegistry reg;
  reg.GetCounter("disk.read")->Inc(3);
  reg.GetHistogram("disk.read_us")->Record(4);
  std::string json = reg.ExportJson();
  EXPECT_NE(json.find("\"disk.read\": 3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"disk.read_us\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"buckets\""), std::string::npos) << json;
}

TEST(MetricsRegistryTest, EightThreadIncrementConservation) {
  // 8 threads hammer one shared counter, one per-thread counter, and one
  // shared histogram. Totals must be exact — relaxed atomics may reorder
  // but never lose increments. Run under TSan via scripts/check_tsan.sh.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  MetricsRegistry reg;
  MetricCounter* shared = reg.GetCounter("hammer.shared");
  MetricHistogram* hist = reg.GetHistogram("hammer.us");

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Concurrent first-use registration of the same per-thread name
      // family exercises the locked lookup path.
      MetricCounter* own =
          reg.GetCounter("hammer.thread" + std::to_string(t % 2));
      for (int i = 0; i < kPerThread; ++i) {
        shared->Inc();
        own->Inc();
        hist->Record(static_cast<uint64_t>(i % 32));
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(shared->value(), uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(reg.GetCounter("hammer.thread0")->value() +
                reg.GetCounter("hammer.thread1")->value(),
            uint64_t{kThreads} * kPerThread);
  EXPECT_EQ(hist->count(), uint64_t{kThreads} * kPerThread);
  // Sum conservation: each thread contributed sum(0..31) * (kPerThread/32).
  uint64_t per_thread_sum = uint64_t{31} * 32 / 2 * (kPerThread / 32);
  EXPECT_EQ(hist->sum(), per_thread_sum * kThreads);
}

TEST(TraceRingTest, DisabledByDefaultAndRingOverwrite) {
  TraceRing ring;
  EXPECT_FALSE(ring.enabled());
  ring.Record("ignored");
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_TRUE(ring.Events().empty());

  ring.Enable(4);
  for (uint64_t i = 0; i < 6; ++i) ring.Record("ev", 0, i);
  EXPECT_EQ(ring.recorded(), 6u);
  std::vector<TraceRing::Event> events = ring.Events();
  ASSERT_EQ(events.size(), 4u) << "ring keeps only the newest capacity";
  // Oldest first: events 2, 3, 4, 5 survive.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].arg, i + 2);
  }
  ring.Enable(0);
  EXPECT_FALSE(ring.enabled());
  EXPECT_TRUE(ring.Events().empty());
}

TEST(QuerySpanTest, NullRegistryIsInert) {
  { QuerySpan span(nullptr, "query.test"); }  // must not touch anything
  MetricsRegistry reg;
  {
    QuerySpan span(&reg, "query.test");
  }
  EXPECT_EQ(reg.GetCounter("query.test")->value(), 1u);
  EXPECT_EQ(reg.GetHistogram("query.test_us")->count(), 1u);
}

// --- IoStats saturating delta (regression) --------------------------------

TEST(IoStatsTest, DeltaSaturatesAtZeroAfterReset) {
  // Before the fix, a "before" snapshot taken before a counter reset
  // produced a wrapped ~2^64 delta that poisoned every derived average.
  IoStats before{/*reads=*/100, /*writes=*/40, /*allocs=*/7, /*frees=*/3};
  IoStats after_reset{/*reads=*/5, /*writes=*/0, /*allocs=*/8, /*frees=*/0};
  IoStats delta = after_reset - before;
  EXPECT_EQ(delta.reads, 0u);
  EXPECT_EQ(delta.writes, 0u);
  EXPECT_EQ(delta.allocs, 1u) << "fields saturate independently";
  EXPECT_EQ(delta.frees, 0u);
  EXPECT_EQ(delta.Accesses(), 0u);

  // The normal direction is untouched.
  IoStats normal = before - IoStats{90, 40, 0, 0};
  EXPECT_EQ(normal.reads, 10u);
  EXPECT_EQ(normal.writes, 0u);
  EXPECT_EQ(normal.allocs, 7u);
}

// --- Attaching metrics must not perturb the paper's accounting ------------

TEST(MetricsGuardTest, PageAccessCountsIdenticalWithMetricsAttached) {
  // Runs the same Table-5-style workload twice — metrics detached, then
  // attached — and requires byte-identical page-access accounting: same
  // per-query counts, same global IoStats, same page map. The registry
  // only observes; it must never change what is counted.
  Network net = GenerateMinneapolisLikeMap(1995);
  std::vector<Route> routes = GenerateRandomWalkRoutes(net, 24, 16, 5);

  struct Run {
    std::vector<uint64_t> per_query;
    IoStats io;
    uint64_t pool_hits = 0, pool_misses = 0;
    NodePageMap page_map;
  };
  auto run_workload = [&](MetricsRegistry* metrics) {
    AccessMethodOptions options;
    options.page_size = 1024;
    options.buffer_pool_pages = 8;
    Ccam am(options, CcamCreateMode::kStatic);
    if (metrics != nullptr) am.SetMetrics(metrics);
    EXPECT_TRUE(am.Create(net).ok());
    am.ResetIoStats();
    am.buffer_pool()->ResetCounters();
    // The registry is cumulative and unaffected by the pool/disk resets;
    // zero it at the same point so both accountings cover the same window.
    if (metrics != nullptr) metrics->Reset();
    Run run;
    for (const Route& r : routes) {
      auto res = EvaluateRoute(&am, r);
      EXPECT_TRUE(res.ok());
      run.per_query.push_back(res->page_accesses);
    }
    auto sp = ShortestPathAStar(&am, routes[0].nodes.front(),
                                routes[0].nodes.back());
    EXPECT_TRUE(sp.ok());
    run.per_query.push_back(sp->page_accesses);
    run.io = am.DataIoStats();
    run.pool_hits = am.buffer_pool()->hits();
    run.pool_misses = am.buffer_pool()->misses();
    run.page_map = am.PageMap();
    return run;
  };

  Run off = run_workload(nullptr);
  MetricsRegistry reg;
  Run on = run_workload(&reg);

  EXPECT_EQ(off.per_query, on.per_query);
  EXPECT_TRUE(off.io == on.io);
  EXPECT_EQ(off.pool_hits, on.pool_hits);
  EXPECT_EQ(off.pool_misses, on.pool_misses);
  EXPECT_EQ(off.page_map, on.page_map);

  // And the observed run actually observed: the registry's counters agree
  // exactly with the pool's own accounting.
  EXPECT_EQ(reg.GetCounter("buffer_pool.hit")->value(), on.pool_hits);
  EXPECT_EQ(reg.GetCounter("buffer_pool.miss")->value(), on.pool_misses);
  EXPECT_EQ(reg.GetCounter("disk.read")->value(), on.io.reads);
  EXPECT_EQ(reg.GetCounter("query.route_eval")->value(), routes.size());
  EXPECT_EQ(reg.GetCounter("query.search")->value(), 1u);
}

// --- Search counter conservation ------------------------------------------

TEST(SearchCountersTest, SettledAndRelaxedConservation) {
  Network net = GenerateMinneapolisLikeMap(1995);
  AccessMethodOptions options;
  options.page_size = 1024;
  options.buffer_pool_pages = 8;
  Ccam am(options, CcamCreateMode::kStatic);
  MetricsRegistry reg;
  am.SetMetrics(&reg);
  ASSERT_TRUE(am.Create(net).ok());
  reg.Reset();

  std::vector<NodeId> ids = net.NodeIds();
  Random rng(42);
  const int kQueries = 12;
  uint64_t expanded_sum = 0;
  for (int i = 0; i < kQueries; ++i) {
    NodeId src = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
    NodeId dst = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
    auto res = (i % 2 == 0) ? ShortestPathDijkstra(&am, src, dst)
                            : ShortestPathAStar(&am, src, dst);
    ASSERT_TRUE(res.ok());
    expanded_sum += res->nodes_expanded;
  }

  // Conservation: the settled counter is exactly the sum of the per-query
  // nodes_expanded the results already report; each search is one span.
  EXPECT_EQ(reg.GetCounter("query.search.settled")->value(), expanded_sum);
  EXPECT_EQ(reg.GetCounter("query.search")->value(),
            static_cast<uint64_t>(kQueries));
  EXPECT_EQ(reg.GetHistogram("query.search_us")->count(),
            static_cast<uint64_t>(kQueries));
  // Every settled node except a source entered the frontier through a
  // relaxation, and no relaxation is counted after its edge is pruned.
  uint64_t relaxed = reg.GetCounter("query.search.relaxed")->value();
  EXPECT_GE(relaxed + kQueries, expanded_sum);
  EXPECT_GT(relaxed, 0u);
}

TEST(SearchCountersTest, HierarchyCountersConservation) {
  Network net = GenerateMinneapolisLikeMap(1995);
  AccessMethodOptions options;
  options.page_size = 1024;
  options.buffer_pool_pages = 8;
  options.hierarchy_overlay = true;
  Ccam am(options, CcamCreateMode::kStatic);
  MetricsRegistry reg;
  am.SetMetrics(&reg);
  ASSERT_TRUE(am.Create(net).ok());
  reg.Reset();

  std::vector<NodeId> ids = net.NodeIds();
  Random rng(7);
  const int kQueries = 12;
  uint64_t expanded_sum = 0;
  for (int i = 0; i < kQueries; ++i) {
    NodeId src = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
    NodeId dst = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
    auto res = ShortestPathCH(&am, src, dst);
    ASSERT_TRUE(res.ok());
    expanded_sum += res->nodes_expanded;
  }

  EXPECT_EQ(reg.GetCounter("query.hierarchy")->value(),
            static_cast<uint64_t>(kQueries));
  EXPECT_EQ(reg.GetHistogram("query.hierarchy_us")->count(),
            static_cast<uint64_t>(kQueries));
  EXPECT_EQ(reg.GetCounter("query.hierarchy.settled")->value(), expanded_sum);
  // The bidirectional search seeds two frontiers per query; every other
  // settle stems from a relaxation.
  uint64_t relaxed = reg.GetCounter("query.hierarchy.relaxed")->value();
  EXPECT_GE(relaxed + 2 * kQueries, expanded_sum);
  EXPECT_GT(relaxed, 0u);
  // CH queries never touch the flat-search counters and vice versa.
  EXPECT_EQ(reg.GetCounter("query.search")->value(), 0u);
}

TEST(SearchCountersTest, NullRegistryLeavesSearchResultsIdentical) {
  // The zero-overhead contract: counters are resolved once per search and
  // skipped entirely on a null registry, so attaching a registry must not
  // change any reported result field.
  Network net = GenerateRingRadialCity(6, 8);
  std::vector<NodeId> ids = net.NodeIds();
  auto run = [&](MetricsRegistry* reg) {
    AccessMethodOptions options;
    options.page_size = 1024;
    options.buffer_pool_pages = 8;
    options.hierarchy_overlay = true;
    Ccam am(options, CcamCreateMode::kStatic);
    if (reg != nullptr) am.SetMetrics(reg);
    EXPECT_TRUE(am.Create(net).ok());
    auto dj = ShortestPathDijkstra(&am, ids.front(), ids.back());
    auto ch = ShortestPathCH(&am, ids.front(), ids.back());
    EXPECT_TRUE(dj.ok());
    EXPECT_TRUE(ch.ok());
    return std::make_tuple(dj->path, dj->nodes_expanded, dj->page_accesses,
                           ch->path, ch->nodes_expanded, ch->page_accesses);
  };
  MetricsRegistry reg;
  EXPECT_EQ(run(nullptr), run(&reg));
  EXPECT_GT(reg.GetCounter("query.search.settled")->value(), 0u);
  EXPECT_GT(reg.GetCounter("query.hierarchy.settled")->value(), 0u);
}

}  // namespace
}  // namespace ccam
