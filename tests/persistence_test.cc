#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "src/baseline/grid_am.h"
#include "src/baseline/order_am.h"
#include "src/core/ccam.h"
#include "src/graph/generator.h"

namespace ccam {
namespace {

AccessMethodOptions Opts() {
  AccessMethodOptions options;
  options.page_size = 1024;
  options.buffer_pool_pages = 8;
  options.maintain_bptree_index = true;
  return options;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(DiskImageTest, SaveLoadRoundTrip) {
  DiskManager disk(256);
  PageId a = *disk.AllocatePage();
  PageId b = *disk.AllocatePage();
  PageId c = *disk.AllocatePage();
  ASSERT_TRUE(disk.FreePage(b).ok());
  char buf[256];
  for (int i = 0; i < 256; ++i) buf[i] = static_cast<char>(i);
  ASSERT_TRUE(disk.WritePage(a, buf).ok());
  std::string path = TempPath("disk_image_test.bin");
  ASSERT_TRUE(disk.SaveToFile(path).ok());

  DiskManager loaded(256);
  ASSERT_TRUE(loaded.LoadFromFile(path).ok());
  EXPECT_EQ(loaded.NumAllocatedPages(), 2u);
  EXPECT_TRUE(loaded.IsAllocated(a));
  EXPECT_FALSE(loaded.IsAllocated(b));
  EXPECT_TRUE(loaded.IsAllocated(c));
  char out[256];
  ASSERT_TRUE(loaded.ReadPage(a, out).ok());
  EXPECT_EQ(std::memcmp(buf, out, 256), 0);
  // The freed slot is reused on the next allocation.
  EXPECT_EQ(*loaded.AllocatePage(), b);
  std::remove(path.c_str());
}

TEST(DiskImageTest, PageSizeMismatchRejected) {
  DiskManager disk(256);
  (void)*disk.AllocatePage();
  std::string path = TempPath("disk_image_mismatch.bin");
  ASSERT_TRUE(disk.SaveToFile(path).ok());
  DiskManager other(512);
  EXPECT_TRUE(other.LoadFromFile(path).IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(DiskImageTest, GarbageRejected) {
  std::string path = TempPath("disk_image_garbage.bin");
  FILE* f = fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  fputs("this is not a disk image", f);
  fclose(f);
  DiskManager disk(256);
  EXPECT_TRUE(disk.LoadFromFile(path).IsCorruption());
  std::remove(path.c_str());
  EXPECT_TRUE(disk.LoadFromFile("/no/such/file").IsIOError());
}

TEST(FileImageTest, CcamSurvivesSaveOpenCycle) {
  Network net = GenerateMinneapolisLikeMap(1995);
  std::string path = TempPath("ccam_image_test.bin");
  double crr_before;
  {
    Ccam am(Opts(), CcamCreateMode::kStatic);
    ASSERT_TRUE(am.Create(net).ok());
    crr_before = ComputeCrr(net, am.PageMap());
    ASSERT_TRUE(am.SaveImage(path).ok());
  }
  Ccam reopened(Opts(), CcamCreateMode::kStatic);
  ASSERT_TRUE(reopened.OpenImage(path).ok());
  EXPECT_EQ(reopened.PageMap().size(), net.NumNodes());
  ASSERT_TRUE(reopened.CheckFileInvariants().ok());
  // Same clustering, same CRR.
  EXPECT_DOUBLE_EQ(ComputeCrr(net, reopened.PageMap()), crr_before);
  // Records fully intact.
  for (NodeId id : {0u, 100u, 500u, 1000u}) {
    auto rec = reopened.Find(id);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(rec->succ.size(), net.node(id).succ.size());
  }
  std::remove(path.c_str());
}

TEST(FileImageTest, ReopenedFileAcceptsUpdates) {
  Network net = GenerateMinneapolisLikeMap(17);
  std::string path = TempPath("ccam_image_updates.bin");
  {
    Ccam am(Opts(), CcamCreateMode::kStatic);
    ASSERT_TRUE(am.Create(net).ok());
    ASSERT_TRUE(am.SaveImage(path).ok());
  }
  Ccam am(Opts(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.OpenImage(path).ok());
  // Insert, delete, edge ops all work on the reopened file.
  NodeRecord rec;
  rec.id = 50000;
  rec.x = 1;
  rec.y = 1;
  rec.succ = {{3, 1.0f}};
  ASSERT_TRUE(am.InsertNode(rec, ReorgPolicy::kSecondOrder).ok());
  ASSERT_TRUE(am.Find(50000).ok());
  ASSERT_TRUE(am.DeleteNode(7, ReorgPolicy::kSecondOrder).ok());
  ASSERT_TRUE(am.CheckFileInvariants().ok());
  std::remove(path.c_str());
}

TEST(FileImageTest, OpenOnCreatedFileRejected) {
  Network net = GenerateMinneapolisLikeMap(17);
  std::string path = TempPath("ccam_image_double.bin");
  Ccam am(Opts(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  ASSERT_TRUE(am.SaveImage(path).ok());
  EXPECT_TRUE(am.OpenImage(path).IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(FileImageTest, OrderAmResumesAppendCursor) {
  Network net = GenerateMinneapolisLikeMap(23);
  std::string path = TempPath("orderam_image.bin");
  {
    OrderAm am(Opts(), NodeOrderKind::kDfs);
    ASSERT_TRUE(am.Create(net).ok());
    ASSERT_TRUE(am.SaveImage(path).ok());
  }
  OrderAm am(Opts(), NodeOrderKind::kDfs);
  ASSERT_TRUE(am.OpenImage(path).ok());
  ASSERT_TRUE(am.CheckFileInvariants().ok());
  NodeRecord rec;
  rec.id = 60000;
  rec.x = 2;
  rec.y = 2;
  ASSERT_TRUE(am.InsertNode(rec, ReorgPolicy::kFirstOrder).ok());
  EXPECT_TRUE(am.Find(60000).ok());
  std::remove(path.c_str());
}

TEST(FileImageTest, GridAmImagesAreNotSupported) {
  Network net = GenerateMinneapolisLikeMap(23);
  std::string path = TempPath("gridam_image.bin");
  {
    GridAm am(Opts());
    ASSERT_TRUE(am.Create(net).ok());
    ASSERT_TRUE(am.SaveImage(path).ok());  // saving is fine
  }
  GridAm am(Opts());
  EXPECT_TRUE(am.OpenImage(path).IsNotSupported());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ccam
