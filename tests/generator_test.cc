#include "src/graph/generator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/index/zorder.h"

namespace ccam {
namespace {

TEST(GeneratorTest, MinneapolisLikeMapMatchesPaperStatistics) {
  Network net = GenerateMinneapolisLikeMap(1995);
  // Paper: 1079 nodes, 3057 directed edges, |A| = 2.833, lambda = 3.20.
  EXPECT_EQ(net.NumNodes(), 1079u);
  EXPECT_NEAR(static_cast<double>(net.NumEdges()), 3057.0, 3057.0 * 0.08);
  EXPECT_NEAR(net.AvgOutDegree(), 2.833, 0.25);
  EXPECT_NEAR(net.AvgNeighborListSize(), 3.20, 0.35);
}

TEST(GeneratorTest, MapIsWeaklyConnected) {
  Network net = GenerateMinneapolisLikeMap(7);
  EXPECT_TRUE(net.IsWeaklyConnected());
}

TEST(GeneratorTest, DeterministicForSeed) {
  Network a = GenerateMinneapolisLikeMap(3);
  Network b = GenerateMinneapolisLikeMap(3);
  EXPECT_EQ(a.NumNodes(), b.NumNodes());
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  auto ea = a.Edges();
  auto eb = b.Edges();
  ASSERT_EQ(ea.size(), eb.size());
  for (size_t i = 0; i < ea.size(); ++i) {
    EXPECT_EQ(ea[i].from, eb[i].from);
    EXPECT_EQ(ea[i].to, eb[i].to);
    EXPECT_EQ(ea[i].cost, eb[i].cost);
  }
}

TEST(GeneratorTest, DifferentSeedsProduceDifferentMaps) {
  Network a = GenerateMinneapolisLikeMap(1);
  Network b = GenerateMinneapolisLikeMap(2);
  EXPECT_NE(a.NumEdges(), b.NumEdges());
}

TEST(GeneratorTest, NodeIdsAreDenseFromZero) {
  Network net = GenerateMinneapolisLikeMap(5);
  std::vector<NodeId> ids = net.NodeIds();
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_EQ(ids[i], static_cast<NodeId>(i));
  }
}

TEST(GeneratorTest, NodeIdsFollowZOrder) {
  Network net = GenerateMinneapolisLikeMap(5);
  // Compute the coordinate bounds, then verify ids ascend with Z-code.
  double min_c = 1e300, max_c = -1e300;
  for (NodeId id : net.NodeIds()) {
    const NetworkNode& n = net.node(id);
    min_c = std::min({min_c, n.x, n.y});
    max_c = std::max({max_c, n.x, n.y});
  }
  uint64_t prev = 0;
  bool first = true;
  for (NodeId id : net.NodeIds()) {
    const NetworkNode& n = net.node(id);
    uint64_t code = ZOrderFromPoint(n.x, n.y, min_c, max_c);
    if (!first) {
      EXPECT_GE(code, prev) << "node " << id;
    }
    prev = code;
    first = false;
  }
}

TEST(GeneratorTest, EdgeCostsArePositiveAndDistanceLike) {
  Network net = GenerateMinneapolisLikeMap(5);
  RoadMapOptions options;  // defaults used by the Minneapolis map
  double max_plausible = options.spacing * (1.0 + 2 * options.jitter) *
                         (1.0 + options.cost_spread) * 1.6;
  for (const auto& e : net.Edges()) {
    EXPECT_GT(e.cost, 0.0f);
    const NetworkNode& u = net.node(e.from);
    const NetworkNode& v = net.node(e.to);
    double dist = std::hypot(u.x - v.x, u.y - v.y);
    // Connectivity-patch edges can span farther; regular streets cannot.
    if (dist < options.spacing * 1.8) {
      EXPECT_LT(e.cost, max_plausible);
    }
  }
}

TEST(GeneratorTest, PayloadBytesRespected) {
  RoadMapOptions options;
  options.rows = 5;
  options.cols = 5;
  options.nodes_to_remove = 0;
  options.payload_bytes = 24;
  Network net = GenerateRoadMap(options);
  for (NodeId id : net.NodeIds()) {
    EXPECT_EQ(net.node(id).payload.size(), 24u);
  }
}

TEST(GeneratorTest, SmallGridHasExpectedShape) {
  RoadMapOptions options;
  options.rows = 4;
  options.cols = 6;
  options.nodes_to_remove = 0;
  options.street_keep_prob = 1.0;
  options.oneway_fraction = 0.0;
  Network net = GenerateRoadMap(options);
  EXPECT_EQ(net.NumNodes(), 24u);
  // Full bidirectional grid: 2 * (r*(c-1) + c*(r-1)) directed edges.
  EXPECT_EQ(net.NumEdges(), 2u * (4 * 5 + 6 * 3));
}

TEST(GeneratorTest, RandomGeometricNetworkConnectsClosePairs) {
  Network net = GenerateRandomGeometricNetwork(100, 200.0, 1000.0, 11);
  EXPECT_EQ(net.NumNodes(), 100u);
  EXPECT_TRUE(net.IsWeaklyConnected());
  for (const auto& e : net.Edges()) {
    const NetworkNode& u = net.node(e.from);
    const NetworkNode& v = net.node(e.to);
    double dist = std::hypot(u.x - v.x, u.y - v.y);
    // All but the connectivity patches respect the radius.
    EXPECT_LT(dist, 1500.0);
    EXPECT_NEAR(e.cost, dist, 1e-3);
  }
}

}  // namespace
}  // namespace ccam
