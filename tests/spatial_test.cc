#include "src/query/spatial.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "src/common/random.h"
#include "src/core/ccam.h"
#include "src/graph/generator.h"

namespace ccam {
namespace {

class SpatialTest : public ::testing::Test {
 protected:
  SpatialTest() : net_(GenerateMinneapolisLikeMap(1995)) {
    AccessMethodOptions options;
    options.page_size = 1024;
    options.buffer_pool_pages = 8;
    am_ = std::make_unique<Ccam>(options, CcamCreateMode::kStatic);
    EXPECT_TRUE(am_->Create(net_).ok());
    auto engine = SpatialQueryEngine::Build(am_.get());
    EXPECT_TRUE(engine.ok());
    engine_ = std::move(*engine);
  }

  std::set<NodeId> BruteForceWindow(double xmin, double ymin, double xmax,
                                    double ymax) const {
    std::set<NodeId> out;
    for (NodeId id : net_.NodeIds()) {
      const NetworkNode& n = net_.node(id);
      if (n.x >= xmin && n.x <= xmax && n.y >= ymin && n.y <= ymax) {
        out.insert(id);
      }
    }
    return out;
  }

  Network net_;
  std::unique_ptr<Ccam> am_;
  std::unique_ptr<SpatialQueryEngine> engine_;
};

TEST_F(SpatialTest, BuildIndexesEveryNode) {
  EXPECT_EQ(engine_->NumIndexedNodes(), net_.NumNodes());
}

TEST_F(SpatialTest, WindowQueryMatchesBruteForceZOrder) {
  Random rng(5);
  for (int trial = 0; trial < 30; ++trial) {
    double xmin = rng.NextDouble() * 2500;
    double ymin = rng.NextDouble() * 2500;
    double xmax = xmin + rng.NextDouble() * 800;
    double ymax = ymin + rng.NextDouble() * 800;
    auto res = engine_->WindowQuery(xmin, ymin, xmax, ymax,
                                    SpatialQueryEngine::IndexKind::kZOrderBTree);
    ASSERT_TRUE(res.ok());
    std::set<NodeId> got;
    for (const NodeRecord& rec : res->records) got.insert(rec.id);
    EXPECT_EQ(got, BruteForceWindow(xmin, ymin, xmax, ymax))
        << "trial " << trial;
  }
}

TEST_F(SpatialTest, WindowQueryMatchesBruteForceRTree) {
  Random rng(6);
  for (int trial = 0; trial < 30; ++trial) {
    double xmin = rng.NextDouble() * 2500;
    double ymin = rng.NextDouble() * 2500;
    double xmax = xmin + rng.NextDouble() * 800;
    double ymax = ymin + rng.NextDouble() * 800;
    auto res = engine_->WindowQuery(xmin, ymin, xmax, ymax,
                                    SpatialQueryEngine::IndexKind::kRTree);
    ASSERT_TRUE(res.ok());
    std::set<NodeId> got;
    for (const NodeRecord& rec : res->records) got.insert(rec.id);
    EXPECT_EQ(got, BruteForceWindow(xmin, ymin, xmax, ymax))
        << "trial " << trial;
  }
}

TEST_F(SpatialTest, BothIndexesAgree) {
  auto a = engine_->WindowQuery(500, 500, 1500, 1500,
                                SpatialQueryEngine::IndexKind::kZOrderBTree);
  auto b = engine_->WindowQuery(500, 500, 1500, 1500,
                                SpatialQueryEngine::IndexKind::kRTree);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->records.size(), b->records.size());
}

TEST_F(SpatialTest, BigMinSkippingActuallySkips) {
  // A small window far from the curve start must trigger BIGMIN jumps and
  // scan far fewer entries than the whole file.
  auto res = engine_->WindowQuery(2000, 2000, 2300, 2300,
                                  SpatialQueryEngine::IndexKind::kZOrderBTree);
  ASSERT_TRUE(res.ok());
  EXPECT_GT(res->bigmin_jumps, 0u);
  EXPECT_LT(res->entries_scanned, net_.NumNodes() / 2);
}

TEST_F(SpatialTest, EmptyWindow) {
  auto res = engine_->WindowQuery(-500, -500, -100, -100);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->records.empty());
}

TEST_F(SpatialTest, InvertedWindowRejected) {
  EXPECT_TRUE(engine_->WindowQuery(10, 10, 0, 0).status().IsInvalidArgument());
}

TEST_F(SpatialTest, WholeMapWindow) {
  auto res = engine_->WindowQuery(-1e6, -1e6, 1e6, 1e6);
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->records.size(), net_.NumNodes());
}

TEST_F(SpatialTest, NearestNeighborsMatchBruteForce) {
  Random rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    double qx = rng.NextDouble() * 3200;
    double qy = rng.NextDouble() * 3200;
    auto res = engine_->NearestNeighbors(qx, qy, 5);
    ASSERT_TRUE(res.ok());
    ASSERT_EQ(res->records.size(), 5u);
    // Brute-force 5 nearest.
    std::vector<std::pair<double, NodeId>> by_dist;
    for (NodeId id : net_.NodeIds()) {
      const NetworkNode& n = net_.node(id);
      by_dist.emplace_back(std::hypot(n.x - qx, n.y - qy), id);
    }
    std::sort(by_dist.begin(), by_dist.end());
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_EQ(res->records[i].id, by_dist[i].second)
          << "trial " << trial << " i " << i;
    }
  }
}

TEST_F(SpatialTest, InsertAndRemoveKeepIndexesInSync) {
  // Add a node to the file + engine, find it spatially, then remove it.
  NodeRecord rec;
  rec.id = 70000;
  rec.x = 1234.5;
  rec.y = 2345.6;
  ASSERT_TRUE(am_->InsertNode(rec, ReorgPolicy::kFirstOrder).ok());
  ASSERT_TRUE(engine_->InsertNode(rec.id, rec.x, rec.y).ok());
  auto res = engine_->WindowQuery(1230, 2340, 1240, 2350);
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->records.size(), 1u);
  EXPECT_EQ(res->records[0].id, 70000u);

  ASSERT_TRUE(engine_->RemoveNode(rec.id, rec.x, rec.y).ok());
  ASSERT_TRUE(am_->DeleteNode(rec.id, ReorgPolicy::kFirstOrder).ok());
  res = engine_->WindowQuery(1230, 2340, 1240, 2350);
  ASSERT_TRUE(res.ok());
  EXPECT_TRUE(res->records.empty());
  EXPECT_TRUE(
      engine_->RemoveNode(rec.id, rec.x, rec.y).IsNotFound());
}

TEST_F(SpatialTest, DataIoCountedPerQuery) {
  (void)am_->buffer_pool()->Reset();
  auto res = engine_->WindowQuery(0, 0, 600, 600);
  ASSERT_TRUE(res.ok());
  ASSERT_GT(res->records.size(), 5u);
  EXPECT_GT(res->data_page_accesses, 0u);
  // Fetching clustered records costs far fewer pages than records.
  EXPECT_LT(res->data_page_accesses, res->records.size());
}

}  // namespace
}  // namespace ccam
