#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace ccam {
namespace {

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 1000; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 1000);
}

TEST(ThreadPoolTest, SingleThreadPoolStillRunsTasks) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.WaitIdle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, TasksMaySubmitMoreTasks) {
  // A binary recursion submitted from inside worker tasks, mirroring how
  // the clusterer spawns right-children of each bisection. WaitIdle() must
  // observe the fixpoint (queue empty AND no task running), not just an
  // empty queue, or it would return while leaves are still being spawned.
  ThreadPool pool(4);
  std::atomic<int> leaves{0};
  std::function<void(int)> recurse = [&](int depth) {
    if (depth == 0) {
      leaves.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    pool.Submit([&recurse, depth] { recurse(depth - 1); });
    recurse(depth - 1);
  };
  pool.Submit([&recurse] { recurse(10); });
  pool.WaitIdle();
  EXPECT_EQ(leaves.load(), 1 << 10);
}

TEST(ThreadPoolTest, WaitIdleIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.WaitIdle();
    EXPECT_EQ(count.load(), (round + 1) * 50);
  }
}

TEST(ThreadPoolTest, DestructorDrainsPendingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    // No WaitIdle: destruction must run everything already queued.
  }
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturnsImmediately) {
  ThreadPool pool(3);
  pool.WaitIdle();  // nothing submitted; must not hang
  EXPECT_EQ(pool.num_threads(), 3);
}

TEST(ThreadPoolTest, ResolveThreadCount) {
  EXPECT_EQ(ThreadPool::ResolveThreadCount(1), 1);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(7), 7);
  EXPECT_EQ(ThreadPool::ResolveThreadCount(0), ThreadPool::HardwareThreads());
  EXPECT_EQ(ThreadPool::ResolveThreadCount(-3), ThreadPool::HardwareThreads());
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

TEST(ThreadPoolTest, NonPositiveConstructorDefaultsToHardware) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), ThreadPool::HardwareThreads());
}

}  // namespace
}  // namespace ccam
