#include "src/query/trace.h"

#include <gtest/gtest.h>

#include "src/core/ccam.h"
#include "src/graph/generator.h"

namespace ccam {
namespace {

TEST(TraceParseTest, ParsesEveryVerb) {
  auto ops = ParseTrace(
      "# a comment\n"
      "find 7\n"
      "get-successors 8\n"
      "get-a-successor 1 2\n"
      "insert-node 99 10.5 20.5\n"
      "insert-edge 1 99 3.25\n"
      "delete-edge 1 99\n"
      "delete-node 99\n"
      "route 1 2 3 4\n"
      "\n");
  ASSERT_TRUE(ops.ok()) << ops.status().ToString();
  ASSERT_EQ(ops->size(), 8u);
  EXPECT_EQ((*ops)[0].kind, TraceOp::Kind::kFind);
  EXPECT_EQ((*ops)[0].nodes, std::vector<NodeId>{7});
  EXPECT_EQ((*ops)[3].kind, TraceOp::Kind::kInsertNode);
  EXPECT_EQ((*ops)[3].x, 10.5);
  EXPECT_EQ((*ops)[4].cost, 3.25f);
  EXPECT_EQ((*ops)[7].nodes.size(), 4u);
}

TEST(TraceParseTest, InlineCommentsAndBlanksIgnored) {
  auto ops = ParseTrace("find 1 # trailing comment\n\n   \n");
  ASSERT_TRUE(ops.ok());
  EXPECT_EQ(ops->size(), 1u);
}

TEST(TraceParseTest, RejectsBadLines) {
  EXPECT_FALSE(ParseTrace("explode 1\n").ok());
  EXPECT_FALSE(ParseTrace("find\n").ok());
  EXPECT_FALSE(ParseTrace("get-a-successor 1\n").ok());
  EXPECT_FALSE(ParseTrace("insert-node 1 2\n").ok());
  EXPECT_FALSE(ParseTrace("route 1\n").ok());
  EXPECT_FALSE(ParseTrace("find 1 2\n").ok());  // trailing operand
  // Error mentions the line number.
  auto res = ParseTrace("find 1\nbogus\n");
  ASSERT_FALSE(res.ok());
  EXPECT_NE(res.status().message().find("line 2"), std::string::npos);
}

TEST(TraceParseTest, LoadMissingFileFails) {
  EXPECT_TRUE(LoadTrace("/no/such/trace").status().IsIOError());
}

class TraceReplayTest : public ::testing::Test {
 protected:
  TraceReplayTest() : net_(GenerateMinneapolisLikeMap(3)) {
    AccessMethodOptions options;
    options.page_size = 1024;
    am_ = std::make_unique<Ccam>(options, CcamCreateMode::kStatic);
    EXPECT_TRUE(am_->Create(net_).ok());
  }
  Network net_;
  std::unique_ptr<Ccam> am_;
};

TEST_F(TraceReplayTest, ReplayTalliesPerKind) {
  auto ops = ParseTrace(
      "find 1\n"
      "find 2\n"
      "get-successors 3\n"
      "find 424242\n");  // fails (no such node)
  ASSERT_TRUE(ops.ok());
  auto report = ReplayTrace(am_.get(), *ops, ReorgPolicy::kFirstOrder);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->total_ops, 4u);
  ASSERT_EQ(report->per_kind.size(), 2u);
  // std::map order: kFind < kGetSuccessors.
  EXPECT_EQ(report->per_kind[0].first, TraceOp::Kind::kFind);
  EXPECT_EQ(report->per_kind[0].second.count, 3u);
  EXPECT_EQ(report->per_kind[0].second.failed, 1u);
  EXPECT_EQ(report->per_kind[1].second.count, 1u);
}

TEST_F(TraceReplayTest, UpdateOpsMutateTheFile) {
  auto ops = ParseTrace(
      "insert-node 50000 1.0 2.0\n"
      "insert-edge 50000 3 7.5\n"
      "get-a-successor 50000 3\n"
      "delete-edge 50000 3\n"
      "delete-node 50000\n");
  ASSERT_TRUE(ops.ok());
  auto report = ReplayTrace(am_.get(), *ops, ReorgPolicy::kSecondOrder);
  ASSERT_TRUE(report.ok());
  for (const auto& [kind, stats] : report->per_kind) {
    EXPECT_EQ(stats.failed, 0u) << TraceOpKindName(kind);
  }
  EXPECT_TRUE(am_->Find(50000).status().IsNotFound());
  ASSERT_TRUE(am_->CheckFileInvariants().ok());
}

TEST_F(TraceReplayTest, RouteOpsEvaluate) {
  // Build a trace route from an actual pair of adjacent nodes.
  auto edges = net_.Edges();
  std::string text = "route " + std::to_string(edges[0].from) + " " +
                     std::to_string(edges[0].to) + "\n";
  auto ops = ParseTrace(text);
  ASSERT_TRUE(ops.ok());
  auto report = ReplayTrace(am_.get(), *ops, ReorgPolicy::kFirstOrder);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->per_kind[0].second.failed, 0u);
}

TEST_F(TraceReplayTest, ReportToStringReadable) {
  auto ops = ParseTrace("find 1\nfind 2\n");
  ASSERT_TRUE(ops.ok());
  auto report = ReplayTrace(am_.get(), *ops, ReorgPolicy::kFirstOrder);
  ASSERT_TRUE(report.ok());
  std::string text = report->ToString();
  EXPECT_NE(text.find("find: 2 ops"), std::string::npos);
  EXPECT_NE(text.find("2 operations"), std::string::npos);
}

}  // namespace
}  // namespace ccam
