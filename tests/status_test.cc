#include "src/common/status.h"

#include <gtest/gtest.h>

#include "src/common/result.h"

namespace ccam {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_EQ(s.code(), Status::Code::kOk);
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NoSpace("x").IsNoSpace());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::ShortRead("x").IsShortRead());
  EXPECT_TRUE(Status::ShortWrite("x").IsShortWrite());
  EXPECT_TRUE(Status::Overloaded("x").IsOverloaded());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_TRUE(Status::Quarantined("x").IsQuarantined());
}

TEST(StatusTest, LifecycleStatusToString) {
  EXPECT_EQ(Status::DeadlineExceeded("budget 5ms").ToString(),
            "DeadlineExceeded: budget 5ms");
  EXPECT_EQ(Status::Cancelled("shutdown").ToString(), "Cancelled: shutdown");
  EXPECT_EQ(Status::Quarantined("page 7").ToString(), "Quarantined: page 7");
  EXPECT_FALSE(Status::DeadlineExceeded("").IsCancelled());
  EXPECT_FALSE(Status::Quarantined("").IsCorruption());
  EXPECT_TRUE(
      Status::FromCode(Status::Code::kQuarantined, "x").IsQuarantined());
}

TEST(StatusTest, RetryableClassification) {
  // Transient transport failures are retryable.
  EXPECT_TRUE(Status::IOError("").IsRetryable());
  EXPECT_TRUE(Status::ShortRead("").IsRetryable());
  EXPECT_TRUE(Status::Overloaded("").IsRetryable());
  // Deterministic failures and lifecycle outcomes are terminal.
  EXPECT_FALSE(Status::OK().IsRetryable());
  EXPECT_FALSE(Status::Corruption("").IsRetryable());
  EXPECT_FALSE(Status::Quarantined("").IsRetryable());
  EXPECT_FALSE(Status::DeadlineExceeded("").IsRetryable());
  EXPECT_FALSE(Status::Cancelled("").IsRetryable());
  EXPECT_FALSE(Status::NotFound("").IsRetryable());
}

TEST(StatusTest, ShortTransferStatuses) {
  EXPECT_EQ(Status::ShortRead("7/64 bytes").ToString(),
            "ShortRead: 7/64 bytes");
  EXPECT_EQ(Status::ShortWrite("torn").ToString(), "ShortWrite: torn");
  // Partial transfers are their own codes, not generic I/O errors.
  EXPECT_FALSE(Status::ShortRead("").IsIOError());
  EXPECT_FALSE(Status::ShortWrite("").IsShortRead());
  EXPECT_TRUE(
      Status::FromCode(Status::Code::kShortRead, "x").IsShortRead());
  EXPECT_TRUE(Status::FromCode(Status::Code::kIOError, "x").IsIOError());
}

TEST(StatusTest, ToStringIncludesCodeAndMessage) {
  Status s = Status::NotFound("node 42");
  EXPECT_EQ(s.ToString(), "NotFound: node 42");
  EXPECT_EQ(s.message(), "node 42");
}

TEST(StatusTest, NonOkStatusesAreDistinct) {
  EXPECT_FALSE(Status::NotFound("").IsCorruption());
  EXPECT_FALSE(Status::IOError("").IsNotFound());
}

TEST(StatusTest, CopySemantics) {
  Status a = Status::Corruption("bad page");
  Status b = a;
  EXPECT_TRUE(b.IsCorruption());
  EXPECT_EQ(b.message(), "bad page");
  a = Status::OK();
  EXPECT_TRUE(a.ok());
  EXPECT_TRUE(b.IsCorruption());
}

Status Helper(bool fail) {
  CCAM_RETURN_NOT_OK(fail ? Status::IOError("disk gone") : Status::OK());
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkMacro) {
  EXPECT_TRUE(Helper(false).ok());
  EXPECT_TRUE(Helper(true).IsIOError());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(ResultTest, MoveOnlyValueWorks) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

Status UseAssignOrReturn(int v, int* out) {
  CCAM_ASSIGN_OR_RETURN(*out, ParsePositive(v));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(3, &out).ok());
  EXPECT_EQ(out, 3);
  EXPECT_TRUE(UseAssignOrReturn(-1, &out).IsInvalidArgument());
  EXPECT_EQ(out, 3);
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

}  // namespace
}  // namespace ccam
