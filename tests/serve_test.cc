// Query-serving layer tests: DRR scheduler semantics, token-bucket
// admission, the batched-vs-unbatched equivalence oracle (with exact
// per-session I/O conservation), anti-starvation under a flooding
// tenant, and the overload + shutdown-cancellation hammer that
// scripts/check_tsan.sh runs under ThreadSanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "src/core/ccam.h"
#include "src/core/query_session.h"
#include "src/graph/generator.h"
#include "src/query/aggregate.h"
#include "src/query/hierarchy.h"
#include "src/query/route_eval.h"
#include "src/query/search.h"
#include "src/serve/admission.h"
#include "src/serve/loadgen.h"
#include "src/serve/query_service.h"
#include "src/serve/scheduler.h"

namespace ccam {
namespace {

using serve::AdmissionController;
using serve::DrrScheduler;
using serve::LoadgenOptions;
using serve::QueryService;
using serve::QueryServiceOptions;
using serve::QueuedRequest;
using serve::ServeOp;
using serve::ServeRequest;
using serve::ServeResponse;
using serve::ServeTicketPtr;
using serve::TokenBucket;

Network TestNetwork() {
  RoadMapOptions gen;
  gen.rows = 24;
  gen.cols = 24;
  gen.nodes_to_remove = 6;
  gen.seed = 2024;
  return GenerateRoadMap(gen);
}

std::unique_ptr<Ccam> MakeFile(const Network& net, size_t page_size,
                               size_t pool_pages, bool overlay) {
  AccessMethodOptions options;
  options.page_size = page_size;
  options.buffer_pool_pages = pool_pages;
  if (overlay) options.hierarchy_overlay = true;
  auto am = std::make_unique<Ccam>(options, CcamCreateMode::kStatic);
  EXPECT_TRUE(am->Create(net).ok());
  return am;
}

QueuedRequest MakeQueued(uint32_t tenant, PageId region) {
  QueuedRequest item;
  item.request.tenant = tenant;
  item.request.route.nodes = {0};
  item.region = region;
  item.ticket = std::make_shared<serve::ServeTicket>();
  return item;
}

// --- DRR scheduler -------------------------------------------------------

TEST(DrrSchedulerTest, BatchesShareOneRegionAndConserveDepth) {
  DrrScheduler sched(/*quantum=*/8);
  for (int i = 0; i < 3; ++i) sched.Enqueue(MakeQueued(1, 10));
  for (int i = 0; i < 2; ++i) sched.Enqueue(MakeQueued(2, 10));
  sched.Enqueue(MakeQueued(3, 20));
  EXPECT_EQ(sched.depth(), 6u);

  std::vector<QueuedRequest> batch;
  EXPECT_EQ(sched.PopBatch(16, &batch), 5u);  // all region-10 work
  for (const QueuedRequest& item : batch) EXPECT_EQ(item.region, 10u);
  EXPECT_EQ(sched.depth(), 1u);

  batch.clear();
  EXPECT_EQ(sched.PopBatch(16, &batch), 1u);
  EXPECT_EQ(batch.front().region, 20u);
  EXPECT_TRUE(sched.empty());
  EXPECT_EQ(sched.PopBatch(16, &batch), 0u);  // empty pop leaves it alone
  EXPECT_EQ(batch.size(), 1u);
}

TEST(DrrSchedulerTest, RoundRobinAlternatesTenantsAcrossRegions) {
  DrrScheduler sched(/*quantum=*/1);
  // Two tenants, disjoint regions: turns must alternate.
  for (int i = 0; i < 3; ++i) sched.Enqueue(MakeQueued(1, 100));
  for (int i = 0; i < 3; ++i) sched.Enqueue(MakeQueued(2, 200));
  std::vector<uint32_t> order;
  std::vector<QueuedRequest> batch;
  while (sched.PopBatch(1, &batch) > 0) {
    order.push_back(batch.back().request.tenant);
    batch.clear();
  }
  EXPECT_EQ(order, (std::vector<uint32_t>{1, 2, 1, 2, 1, 2}));
}

TEST(DrrSchedulerTest, CrossTenantBatchingChargesTheOwner) {
  DrrScheduler sched(/*quantum=*/2);
  // Tenant 2's region-10 work is batched into tenant 1's turn; tenant 2
  // then owes deficit and tenant 3 gets served before it.
  sched.Enqueue(MakeQueued(1, 10));
  for (int i = 0; i < 4; ++i) sched.Enqueue(MakeQueued(2, 10));
  sched.Enqueue(MakeQueued(2, 30));
  sched.Enqueue(MakeQueued(3, 40));
  std::vector<QueuedRequest> batch;
  EXPECT_EQ(sched.PopBatch(5, &batch), 5u);  // 1's head + 4 of tenant 2
  batch.clear();
  ASSERT_EQ(sched.PopBatch(1, &batch), 1u);
  EXPECT_EQ(batch.front().request.tenant, 3u);  // tenant 2 is in debt
  batch.clear();
  ASSERT_EQ(sched.PopBatch(1, &batch), 1u);
  EXPECT_EQ(batch.front().request.tenant, 2u);  // debt paid off, served
  EXPECT_TRUE(sched.empty());
}

// --- Admission control ---------------------------------------------------

TEST(TokenBucketTest, RefillsAtRateUpToBurst) {
  TokenBucket bucket(/*rate=*/10.0, /*burst=*/5.0);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(bucket.TryAcquire(0));
  EXPECT_FALSE(bucket.TryAcquire(0));          // burst exhausted
  EXPECT_FALSE(bucket.TryAcquire(50000));      // +0.5 tokens: still < 1
  EXPECT_TRUE(bucket.TryAcquire(100000));      // +1.0 token at 100 ms
  EXPECT_FALSE(bucket.TryAcquire(100000));
  // A long idle period caps at burst, not unbounded credit.
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(bucket.TryAcquire(10000000));
  EXPECT_FALSE(bucket.TryAcquire(10000000));
}

TEST(TokenBucketTest, FractionalAccrualIsNeverTruncatedOverTenThousandTicks) {
  // Accrual regression: an awkward rate polled at an awkward interval, so
  // every refill leaves a fractional remainder. The integer ledger carries
  // the remainder instead of truncating it, keeping the admitted count
  // within 1% of configured-rate * elapsed (here it is exact up to the
  // final partial token).
  const double rate = 7.3;
  const double burst = 2.0;
  TokenBucket bucket(rate, burst);
  // Drain the burst first so the bucket is never full mid-run (a full
  // bucket legitimately forfeits accrual; that is policy, not loss).
  uint64_t admitted = 0;
  while (bucket.TryAcquire(0)) ++admitted;
  EXPECT_EQ(admitted, 2u);
  const uint64_t tick_us = 1370;  // 0.010001 tokens per tick
  const int kTicks = 10000;
  for (int i = 1; i <= kTicks; ++i) {
    if (bucket.TryAcquire(static_cast<uint64_t>(i) * tick_us)) ++admitted;
  }
  const double elapsed_s = kTicks * tick_us / 1e6;  // 13.7 s
  const double expected = burst + rate * elapsed_s;  // 102.01
  EXPECT_NEAR(static_cast<double>(admitted), expected, 0.01 * rate * elapsed_s)
      << "admitted rate drifted more than 1% from configured";
  EXPECT_EQ(admitted, 102u);  // exact: the carry loses nothing
}

TEST(TokenBucketTest, SubUnitBurstNeverStarves) {
  // Regression: a burst below one token used to cap the bucket beneath
  // the cost of a single request, so the balance could never reach 1 and
  // a positive-rate tenant was starved forever. Capacity is now floored
  // at one token: one initial admit, then exactly the configured rate.
  TokenBucket bucket(/*rate=*/0.5, /*burst=*/0.5);
  uint64_t admitted = 0;
  for (int i = 0; i <= 1000; ++i) {  // 100 s in 100 ms ticks
    if (bucket.TryAcquire(static_cast<uint64_t>(i) * 100000)) ++admitted;
  }
  EXPECT_EQ(admitted, 51u);  // 1 (floored burst) + 0.5/s * 100 s
}

TEST(AdmissionControllerTest, SubQpsTenantIsAdmittedAtItsConfiguredRate) {
  // Controller-level view of the same regression: tenant_burst defaults
  // to tenant_rate, so every sub-1-qps tenant used to inherit a
  // sub-unit burst and never pass the rate gate.
  AdmissionController::Options options;
  options.tenant_rate = 0.25;
  AdmissionController admission(options);
  AdmissionController::RejectGate gate;
  uint64_t admitted = 0;
  for (int i = 0; i <= 1200; ++i) {  // 120 s in 100 ms ticks
    if (admission.Admit(7, static_cast<uint64_t>(i) * 100000, &gate).ok()) {
      ++admitted;
      admission.OnEnqueue(7);
      admission.OnDequeue(7);
    }
  }
  EXPECT_EQ(admitted, 31u);  // 1 (floored burst) + 0.25/s * 120 s
}

TEST(AdmissionControllerTest, ThreeGatesRejectTyped) {
  AdmissionController::Options options;
  options.max_queue_depth = 4;
  options.max_tenant_depth = 2;
  options.tenant_rate = 10.0;
  options.tenant_burst = 100.0;
  AdmissionController admission(options);

  AdmissionController::RejectGate gate;
  EXPECT_TRUE(admission.Admit(1, 0, &gate).ok());
  admission.OnEnqueue(1);
  EXPECT_TRUE(admission.Admit(1, 0, &gate).ok());
  admission.OnEnqueue(1);
  Status s = admission.Admit(1, 0, &gate);  // tenant depth gate
  EXPECT_TRUE(s.IsOverloaded());
  EXPECT_EQ(gate, AdmissionController::RejectGate::kTenantDepth);

  EXPECT_TRUE(admission.Admit(2, 0, &gate).ok());
  admission.OnEnqueue(2);
  EXPECT_TRUE(admission.Admit(3, 0, &gate).ok());
  admission.OnEnqueue(3);
  s = admission.Admit(4, 0, &gate);  // global depth gate
  EXPECT_TRUE(s.IsOverloaded());
  EXPECT_EQ(gate, AdmissionController::RejectGate::kQueueFull);

  admission.OnDequeue(1);
  admission.OnDequeue(1);
  admission.OnDequeue(2);
  admission.OnDequeue(3);
  // Tenant 1 already consumed tokens above; drain the rest of the burst.
  int admitted = 0;
  while (admission.Admit(1, 0, &gate).ok()) ++admitted;
  EXPECT_EQ(gate, AdmissionController::RejectGate::kRateLimit);
  EXPECT_GT(admitted, 0);
}

// --- Batched vs unbatched equivalence oracle -----------------------------

serve::ServeResponse Oracle(QuerySession* session,
                            const ServeRequest& request) {
  ServeResponse response;
  switch (request.op) {
    case ServeOp::kRouteEval: {
      auto r = EvaluateRoute(session, request.route);
      if (r.ok()) {
        response.cost = r.value().total_cost;
        response.num_edges = r.value().num_edges;
      } else {
        response.status = r.status();
      }
      break;
    }
    case ServeOp::kAStar: {
      auto r = ShortestPathAStar(session, request.route.nodes.front(),
                                 request.route.nodes.back());
      if (r.ok()) {
        response.cost = r.value().cost;
        response.num_edges =
            r.value().path.empty() ? 0 : r.value().path.size() - 1;
        response.path = r.value().path;
      } else {
        response.status = r.status();
      }
      break;
    }
    case ServeOp::kHierarchy: {
      auto r = ShortestPathCH(session, request.route.nodes.front(),
                              request.route.nodes.back());
      if (r.ok()) {
        response.cost = r.value().cost;
        response.num_edges =
            r.value().path.empty() ? 0 : r.value().path.size() - 1;
        response.path = r.value().path;
      } else {
        response.status = r.status();
      }
      break;
    }
    case ServeOp::kAggregate: {
      auto r = AggregateRouteUnit(session, request.unit);
      if (r.ok()) {
        response.cost = r.value().total_edge_cost;
        response.num_edges = r.value().num_edges;
      } else {
        response.status = r.status();
      }
      break;
    }
  }
  return response;
}

TEST(QueryServiceTest, BatchedMatchesSerialOracleAndConservesIo) {
  Network net = TestNetwork();
  for (size_t page_size : {512u, 2048u}) {
    SCOPED_TRACE("page_size=" + std::to_string(page_size));
    auto file = MakeFile(net, page_size, /*pool_pages=*/16, /*overlay=*/true);
    ASSERT_TRUE(file->HasHierarchy());

    LoadgenOptions gen;
    gen.tenants = 6;
    gen.pool_size = 600;  // 500+ mixed requests, all four operations
    gen.zipf_theta = 0.8;
    gen.seed = 7 + page_size;
    std::vector<ServeRequest> pool =
        serve::BuildRequestPool(file.get(), gen);
    ASSERT_EQ(pool.size(), 600u);

    // Serial oracle on a plain session, before the service exists.
    std::vector<ServeResponse> expected;
    {
      auto session = file->OpenSession();
      for (const ServeRequest& request : pool) {
        expected.push_back(Oracle(session.get(), request));
      }
    }

    const IoStats disk_before = file->DataIoStats();
    const IoStats hier_before = file->HierarchyIoStats();

    QueryServiceOptions options;
    options.num_workers = 8;
    options.max_queue_depth = 100000;  // nothing may be shed in this test
    options.max_tenant_depth = 100000;
    QueryService service(file.get(), options);

    // Concurrent submitters, so batches genuinely mix tenants/threads.
    constexpr int kSubmitters = 4;
    std::vector<std::vector<ServeTicketPtr>> tickets(kSubmitters);
    {
      std::vector<std::thread> submitters;
      for (int t = 0; t < kSubmitters; ++t) {
        submitters.emplace_back([&, t] {
          for (size_t i = t; i < pool.size(); i += kSubmitters) {
            tickets[t].push_back(service.Submit(pool[i]));
          }
        });
      }
      for (auto& thread : submitters) thread.join();
    }
    size_t mismatches = 0;
    for (int t = 0; t < kSubmitters; ++t) {
      size_t k = 0;
      for (size_t i = t; i < pool.size(); i += kSubmitters, ++k) {
        const ServeResponse& got = tickets[t][k]->Wait();
        const ServeResponse& want = expected[i];
        if (got.status.code() != want.status.code() ||
            got.cost != want.cost || got.num_edges != want.num_edges ||
            got.path != want.path) {
          ++mismatches;
        }
        EXPECT_GE(got.batch_size, 1u);
      }
    }
    EXPECT_EQ(mismatches, 0u);

    service.Shutdown(/*drain=*/true);
    QueryService::Stats stats = service.GetStats();
    EXPECT_EQ(stats.submitted, pool.size());
    EXPECT_EQ(stats.completed, pool.size());
    EXPECT_EQ(stats.rejected, 0u);
    EXPECT_GT(stats.batched_requests, 0u);  // batching actually happened

    // Conservation: the workers' per-session counters sum exactly to the
    // file's global disk-read deltas, data and overlay alike.
    EXPECT_EQ(service.TotalSessionIoStats().reads,
              (file->DataIoStats() - disk_before).reads);
    EXPECT_EQ(service.TotalSessionHierarchyIoStats().reads,
              (file->HierarchyIoStats() - hier_before).reads);
  }
}

// --- Fairness: a flooding tenant cannot starve a polite one --------------

TEST(QueryServiceTest, FloodingTenantCannotStarvePoliteTenant) {
  Network net = TestNetwork();
  auto file = MakeFile(net, 1024, /*pool_pages=*/16, /*overlay=*/false);
  file->disk()->SetSimulatedReadLatencyMicros(100);

  LoadgenOptions gen;
  gen.tenants = 1;  // tenant ids are overwritten below
  gen.pool_size = 256;
  gen.seed = 99;
  std::vector<ServeRequest> pool = serve::BuildRequestPool(file.get(), gen);
  ASSERT_FALSE(pool.empty());

  QueryServiceOptions options;
  options.num_workers = 4;
  options.max_queue_depth = 256;
  options.max_tenant_depth = 64;  // the hog's allowance
  QueryService service(file.get(), options);

  std::atomic<bool> hog_done{false};
  std::vector<ServeTicketPtr> hog_tickets;
  std::thread hog([&] {
    // Tenant 7 floods: 4000 submissions as fast as possible.
    for (int i = 0; i < 4000; ++i) {
      ServeRequest request = pool[i % pool.size()];
      request.tenant = 7;
      hog_tickets.push_back(service.Submit(std::move(request)));
    }
    hog_done.store(true);
  });

  // Tenant 1 is polite: few requests, gently paced.
  uint64_t worst_us = 0;
  uint64_t polite_rejected = 0;
  for (int i = 0; i < 50; ++i) {
    ServeRequest request = pool[(i * 5) % pool.size()];
    request.tenant = 1;
    auto t0 = std::chrono::steady_clock::now();
    ServeTicketPtr ticket = service.Submit(std::move(request));
    const ServeResponse& response = ticket->Wait();
    uint64_t us = static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
    if (response.status.IsOverloaded()) {
      ++polite_rejected;
    } else if (us > worst_us) {
      worst_us = us;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  hog.join();
  uint64_t hog_rejected = 0;
  for (const ServeTicketPtr& ticket : hog_tickets) {
    if (ticket->Wait().status.IsOverloaded()) ++hog_rejected;
  }
  service.Shutdown(/*drain=*/true);

  // The hog hit its per-tenant allowance (it was shed), while the polite
  // tenant was never rejected and never waited behind the hog's backlog:
  // its worst observed end-to-end latency stays far under the time the
  // hog's 64-deep allowance would take to drain serially ahead of it.
  EXPECT_GT(hog_rejected, 0u);
  EXPECT_EQ(polite_rejected, 0u);
  EXPECT_LT(worst_us, 250000u);  // 250 ms; generous for CI machines
}

// --- Overload + cancellation during shutdown (TSan hammer) ---------------

TEST(QueryServiceTest, OverloadAndShutdownCancellationHammer) {
  Network net = TestNetwork();
  auto file = MakeFile(net, 1024, /*pool_pages=*/16, /*overlay=*/false);
  file->disk()->SetSimulatedReadLatencyMicros(50);

  LoadgenOptions gen;
  gen.tenants = 4;
  gen.pool_size = 128;
  gen.seed = 31;
  std::vector<ServeRequest> pool = serve::BuildRequestPool(file.get(), gen);
  ASSERT_FALSE(pool.empty());

  QueryServiceOptions options;
  options.num_workers = 8;
  options.max_queue_depth = 64;  // tiny: force Overloaded rejections
  QueryService service(file.get(), options);

  constexpr int kSubmitters = 4;
  constexpr int kPerThread = 2000;
  std::vector<std::vector<ServeTicketPtr>> tickets(kSubmitters);
  std::vector<std::thread> submitters;
  for (int t = 0; t < kSubmitters; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ServeRequest request = pool[(t * kPerThread + i) % pool.size()];
        request.tenant = static_cast<uint32_t>(t);
        tickets[t].push_back(service.Submit(std::move(request)));
      }
    });
  }
  // Cancel mid-stream: queued-but-unstarted work completes Overloaded.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.Shutdown(/*drain=*/false);
  for (auto& thread : submitters) thread.join();

  uint64_t done = 0, overloaded = 0, ok = 0;
  for (const auto& per_thread : tickets) {
    for (const ServeTicketPtr& ticket : per_thread) {
      const ServeResponse& response = ticket->Wait();
      ++done;
      if (response.status.IsOverloaded()) {
        ++overloaded;
      } else if (response.status.ok()) {
        ++ok;
      }
    }
  }
  // Every ticket completes exactly once, and the books balance.
  EXPECT_EQ(done, static_cast<uint64_t>(kSubmitters * kPerThread));
  EXPECT_EQ(done, ok + overloaded);
  QueryService::Stats stats = service.GetStats();
  EXPECT_EQ(stats.submitted, done);
  EXPECT_EQ(stats.completed + stats.rejected, done);
  EXPECT_EQ(stats.completed, ok);
  EXPECT_GT(overloaded, 0u);  // the tiny queue really shed load
}

// --- One-session-per-thread debug assertion ------------------------------

#ifndef NDEBUG
TEST(QuerySessionDeathTest, SecondThreadTripsTheContractAssert) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Network net = TestNetwork();
  auto file = MakeFile(net, 1024, /*pool_pages=*/16, /*overlay=*/false);
  auto session = file->OpenSession();
  NodeId node = file->PageMap().begin()->first;
  ASSERT_TRUE(session->Find(node).ok());  // binds to this thread
  EXPECT_DEATH(
      {
        std::thread other([&] { (void)session->Find(node); });
        other.join();
      },
      "one session per thread");
}

TEST(QuerySessionTest, RebindToCurrentThreadMovesTheBinding) {
  Network net = TestNetwork();
  auto file = MakeFile(net, 1024, /*pool_pages=*/16, /*overlay=*/false);
  auto session = file->OpenSession();
  NodeId node = file->PageMap().begin()->first;
  ASSERT_TRUE(session->Find(node).ok());
  std::thread worker([&] {
    session->RebindToCurrentThread();  // deliberate single-threaded handoff
    EXPECT_TRUE(session->Find(node).ok());
  });
  worker.join();
}
#endif  // NDEBUG

}  // namespace
}  // namespace ccam
