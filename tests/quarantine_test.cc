// Corruption containment tests: the buffer pool's bounded re-read of a
// failing page fetch (transient faults are rescued, persistent damage is
// quarantined), fast-fail of quarantined pages without re-paying the
// doomed I/O, the scrub/repair pass, the storage.quarantine.* metrics,
// and IoStats conservation in the presence of failed reads.

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/common/metrics.h"
#include "src/core/ccam.h"
#include "src/core/query_session.h"
#include "src/graph/generator.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/disk_manager.h"
#include "src/storage/page_quarantine.h"

namespace ccam {
namespace {

// --- PageQuarantine unit behavior ----------------------------------------

TEST(PageQuarantineTest, EmptySetPassesEveryCheck) {
  PageQuarantine q;
  EXPECT_EQ(q.size(), 0u);
  EXPECT_FALSE(q.Contains(7));
  EXPECT_TRUE(q.Check(7).ok());
}

TEST(PageQuarantineTest, AddCheckClearLifecycle) {
  PageQuarantine q;
  q.Add(7, "checksum mismatch");
  q.Add(7, "a later reason that must not win");  // idempotent
  q.Add(9, "short read");
  EXPECT_EQ(q.size(), 2u);
  EXPECT_TRUE(q.Contains(7));

  Status s = q.Check(7);
  EXPECT_TRUE(s.IsQuarantined()) << s.ToString();
  EXPECT_NE(s.message().find("page 7"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("checksum mismatch"), std::string::npos);
  EXPECT_EQ(s.message().find("later reason"), std::string::npos);

  auto entries = q.Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].first, 7u);  // ascending page id
  EXPECT_EQ(entries[1].first, 9u);

  EXPECT_TRUE(q.Clear(7));
  EXPECT_FALSE(q.Clear(7));  // already gone
  EXPECT_TRUE(q.Check(7).ok());
  q.ClearAll();
  EXPECT_EQ(q.size(), 0u);
  EXPECT_TRUE(q.Check(9).ok());
}

TEST(PageQuarantineTest, MetricsCountEveryTransition) {
  MetricsRegistry metrics;
  PageQuarantine q;
  q.SetMetrics(&metrics);
  q.Add(1, "bad");
  q.Add(1, "bad again");  // no-op: not a new entry
  q.Add(2, "bad");
  (void)q.Check(1);       // fastfail
  (void)q.Check(99);      // clean: no fastfail
  q.NoteRetrySuccess();
  EXPECT_TRUE(q.Clear(1));
  EXPECT_EQ(metrics.GetCounter("storage.quarantine.added")->value(), 2u);
  EXPECT_EQ(metrics.GetCounter("storage.quarantine.fastfail")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("storage.quarantine.cleared")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("storage.quarantine.retry_success")->value(),
            1u);
  EXPECT_EQ(metrics.GetGauge("storage.quarantine.size")->value(), 1);
}

TEST(PageQuarantineTest, GaugeSyncsToLiveSetOnAttach) {
  // Regression: attaching metrics after pages were already quarantined
  // left the size gauge stale at zero; the next Clear then published a
  // negative-walking value that read like an underflow. SetMetrics now
  // syncs the gauge to the live set.
  PageQuarantine q;
  q.Add(3, "bad");
  q.Add(4, "bad");
  MetricsRegistry metrics;
  q.SetMetrics(&metrics);
  EXPECT_EQ(metrics.GetGauge("storage.quarantine.size")->value(), 2);
  EXPECT_TRUE(q.Clear(3));
  EXPECT_EQ(metrics.GetGauge("storage.quarantine.size")->value(), 1);
  EXPECT_GE(metrics.GetGauge("storage.quarantine.size")->value(), 0);
}

// 8 threads race Add / Clear / ClearAll / Check over a small page-id
// space, maximizing duplicate adds and clears of absent pages. The
// conservation ledger must balance exactly — idempotent no-ops touch
// nothing — and the gauge must equal the surviving set. Run under TSan
// via scripts/check_tsan.sh.
TEST(PageQuarantineTest, EightThreadHammerConservesAddedMinusCleared) {
  MetricsRegistry metrics;
  PageQuarantine q;
  q.SetMetrics(&metrics);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  constexpr PageId kPages = 17;  // small space: plenty of collisions
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&q, t] {
      uint64_t rng = 0x9e3779b97f4a7c15ull * (t + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        PageId id = static_cast<PageId>((rng >> 33) % kPages);
        switch ((rng >> 60) & 3) {
          case 0:
            q.Add(id, "hammer");
            break;
          case 1:
            q.Clear(id);
            break;
          case 2:
            (void)q.Check(id);
            break;
          default:
            if (i % 512 == 0) {
              q.ClearAll();
            } else {
              q.Add(id, "hammer");
            }
        }
      }
    });
  }
  for (auto& w : workers) w.join();

  EXPECT_EQ(q.added() - q.cleared(), q.size());
  EXPECT_EQ(q.Entries().size(), q.size());
  EXPECT_EQ(metrics.GetGauge("storage.quarantine.size")->value(),
            static_cast<int64_t>(q.size()));
  EXPECT_EQ(metrics.GetCounter("storage.quarantine.added")->value(),
            q.added());
  EXPECT_EQ(metrics.GetCounter("storage.quarantine.cleared")->value(),
            q.cleared());
  EXPECT_GT(q.added(), 0u);
}

// --- Bounded re-read at the buffer pool ----------------------------------

class PoolRetryTest : public ::testing::Test {
 protected:
  PoolRetryTest() : faults_(11), disk_(64), pool_(&disk_, 2) {
    disk_.SetFaultInjector(&faults_);
    pool_.SetQuarantine(&quarantine_);
    quarantine_.SetMetrics(&metrics_);
  }

  // A written, flushed, evicted page: the next fetch is a genuine miss.
  PageId ColdPage(char fill) {
    PageId id;
    char* data = nullptr;
    EXPECT_TRUE(pool_.NewPage(&id, &data).ok());
    std::memset(data, fill, 64);
    EXPECT_TRUE(pool_.UnpinPage(id, true).ok());
    EXPECT_TRUE(pool_.FlushAll().ok());
    EXPECT_TRUE(pool_.Reset().ok());
    return id;
  }

  uint64_t Metric(const char* name) {
    return metrics_.GetCounter(name)->value();
  }

  MetricsRegistry metrics_;
  FaultInjector faults_;
  DiskManager disk_;
  BufferPool pool_;
  PageQuarantine quarantine_;
};

TEST_F(PoolRetryTest, TransientShortReadIsRescuedByRetry) {
  PageId p = ColdPage('a');
  // First read attempt returns a short transfer; the re-read succeeds.
  ASSERT_TRUE(faults_.Configure("disk.read=short:16@1").ok());
  auto res = pool_.FetchPage(p);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  EXPECT_EQ((*res)[0], 'a');
  EXPECT_EQ((*res)[63], 'a');  // full content, not the torn prefix
  (void)pool_.UnpinPage(p, false);
  EXPECT_EQ(quarantine_.size(), 0u);
  EXPECT_EQ(Metric("storage.quarantine.retry_success"), 1u);
  EXPECT_EQ(Metric("storage.quarantine.added"), 0u);
}

TEST_F(PoolRetryTest, TransientIoErrorIsRescuedByRetry) {
  PageId p = ColdPage('b');
  ASSERT_TRUE(faults_.Configure("disk.read=error:io@1").ok());
  auto res = pool_.FetchPage(p);
  ASSERT_TRUE(res.ok()) << res.status().ToString();
  (void)pool_.UnpinPage(p, false);
  EXPECT_EQ(quarantine_.size(), 0u);
  EXPECT_EQ(Metric("storage.quarantine.retry_success"), 1u);
}

TEST_F(PoolRetryTest, PersistentCorruptionQuarantinesAfterBoundedRetries) {
  PageId p = ColdPage('c');
  // Tear the page's next write so its stored seal no longer matches: with
  // read verification on, every read of it fails Corruption — real platter
  // damage, not an injected error.
  ASSERT_TRUE(faults_.Configure("disk.write=torn:16@1").ok());
  {
    std::string next(64, 'd');
    EXPECT_FALSE(disk_.WritePage(p, next.data()).ok());
  }
  faults_.Reset();
  disk_.SetVerifyChecksums(true);

  // Count read attempts via an armed-but-never-firing failpoint.
  ASSERT_TRUE(faults_.Configure("disk.read=error@1000000").ok());
  auto res = pool_.FetchPage(p);
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsCorruption()) << res.status().ToString();
  // Initial read + the pool's default two re-reads.
  EXPECT_EQ(faults_.HitCount("disk.read"), 3u);
  ASSERT_EQ(quarantine_.size(), 1u);
  EXPECT_TRUE(quarantine_.Contains(p));
  EXPECT_EQ(Metric("storage.quarantine.added"), 1u);

  // The next fetch fails fast with a typed status and zero disk reads.
  auto again = pool_.FetchPage(p);
  ASSERT_FALSE(again.ok());
  EXPECT_TRUE(again.status().IsQuarantined()) << again.status().ToString();
  EXPECT_EQ(faults_.HitCount("disk.read"), 3u);  // no new attempts
  EXPECT_EQ(Metric("storage.quarantine.fastfail"), 1u);

  // Failed reads never count as completed reads: conservation holds.
  EXPECT_EQ(disk_.stats().reads, 0u);
}

TEST_F(PoolRetryTest, PersistentIoErrorFailsWithoutQuarantining) {
  PageId p = ColdPage('e');
  // A device that always errors is transport trouble, not page damage:
  // the fetch fails typed IOError but nothing is quarantined (a later
  // fetch should retry the device rather than fast-fail forever).
  ASSERT_TRUE(faults_.Configure("disk.read=error:io@1+").ok());
  auto res = pool_.FetchPage(p);
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsIOError()) << res.status().ToString();
  EXPECT_EQ(faults_.HitCount("disk.read"), 3u);  // retries were attempted
  EXPECT_EQ(quarantine_.size(), 0u);
  EXPECT_EQ(Metric("storage.quarantine.added"), 0u);
}

TEST_F(PoolRetryTest, ReadRetriesKnobBoundsTheAttempts) {
  pool_.SetReadRetries(0);
  PageId p = ColdPage('f');
  ASSERT_TRUE(faults_.Configure("disk.read=error:corruption@1+").ok());
  auto res = pool_.FetchPage(p);
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsCorruption());
  EXPECT_EQ(faults_.HitCount("disk.read"), 1u);  // no re-reads at all
  EXPECT_TRUE(quarantine_.Contains(p));
}

// --- NetworkFile-level quarantine + scrub --------------------------------

Network SmallNetwork() {
  RoadMapOptions gen;
  gen.rows = 12;
  gen.cols = 12;
  gen.nodes_to_remove = 4;
  gen.seed = 515;
  return GenerateRoadMap(gen);
}

TEST(NetworkFileQuarantineTest, InjectedCorruptionQuarantinesAndScrubHeals) {
  Network net = SmallNetwork();
  AccessMethodOptions options;
  options.page_size = 512;
  options.buffer_pool_pages = 4;
  Ccam file(options, CcamCreateMode::kStatic);
  ASSERT_TRUE(file.Create(net).ok());

  MetricsRegistry metrics;
  file.SetMetrics(&metrics);
  FaultInjector faults(21);
  file.SetFaultInjector(&faults);

  // A data page that is currently not buffered: its fetch must hit disk.
  PageId victim = kInvalidPageId;
  NodeId victim_node = kInvalidNodeId;
  for (const auto& entry : file.PageMap()) {
    if (!file.buffer_pool()->Contains(entry.second)) {
      victim_node = entry.first;
      victim = entry.second;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidPageId);

  // Injected corruption on every read: the platter is intact, the
  // transport keeps returning damaged frames.
  ASSERT_TRUE(faults.Configure("disk.read=error:corruption@1+").ok());
  auto session = file.OpenSession();
  auto found = session->Find(victim_node);
  ASSERT_FALSE(found.ok());
  EXPECT_TRUE(found.status().IsCorruption()) << found.status().ToString();
  ASSERT_EQ(file.quarantine()->size(), 1u);
  EXPECT_TRUE(file.quarantine()->Contains(victim));

  // While quarantined, the same lookup fails fast with Quarantined.
  auto blocked = session->Find(victim_node);
  ASSERT_FALSE(blocked.ok());
  EXPECT_TRUE(blocked.status().IsQuarantined())
      << blocked.status().ToString();

  // Fault burst over; the scrub verifies the (undamaged) platter content
  // and releases the page.
  faults.Reset();
  size_t repaired = 0, remaining = 0;
  ASSERT_TRUE(file.ScrubQuarantined(&repaired, &remaining).ok());
  EXPECT_EQ(repaired, 1u);
  EXPECT_EQ(remaining, 0u);
  EXPECT_EQ(file.quarantine()->size(), 0u);
  EXPECT_EQ(metrics.GetCounter("storage.quarantine.cleared")->value(), 1u);

  // Reads flow again, and the books balance: the successful fetch is the
  // only completed disk read charged to the session.
  IoStats before = file.DataIoStats();
  auto healed = session->Find(victim_node);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  EXPECT_EQ((file.DataIoStats() - before).reads, 1u);
}

TEST(NetworkFileQuarantineTest, ScrubKeepsPagesThatStillFailVerification) {
  Network net = SmallNetwork();
  AccessMethodOptions options;
  options.page_size = 512;
  options.buffer_pool_pages = 4;
  Ccam file(options, CcamCreateMode::kStatic);
  ASSERT_TRUE(file.Create(net).ok());

  FaultInjector faults(22);
  file.SetFaultInjector(&faults);

  PageId victim = kInvalidPageId;
  for (const auto& entry : file.PageMap()) {
    if (!file.buffer_pool()->Contains(entry.second)) {
      victim = entry.second;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidPageId);

  // Genuine platter damage: tear a rewrite whose head DIFFERS from the
  // stored bytes, leaving modified-head/old-tail content under the stale
  // seal — read verification now fails.
  auto page = file.buffer_pool()->FetchPage(victim);
  ASSERT_TRUE(page.ok());
  std::vector<char> content(*page, *page + options.page_size);
  ASSERT_TRUE(file.buffer_pool()->UnpinPage(victim, false).ok());
  ASSERT_TRUE(file.buffer_pool()->Reset().ok());
  std::vector<char> mangled = content;
  for (size_t i = 0; i < 32; ++i) mangled[i] = static_cast<char>(~mangled[i]);
  ASSERT_TRUE(faults.Configure("disk.write=torn:32@1").ok());
  EXPECT_FALSE(file.disk()->WritePage(victim, mangled.data()).ok());
  faults.Reset();
  file.disk()->SetVerifyChecksums(true);

  auto res = file.buffer_pool()->FetchPage(victim);
  ASSERT_FALSE(res.ok());
  EXPECT_TRUE(res.status().IsCorruption());
  ASSERT_TRUE(file.quarantine()->Contains(victim));

  // The damage is real, so the scrub must NOT release the page.
  size_t repaired = 0, remaining = 0;
  ASSERT_TRUE(file.ScrubQuarantined(&repaired, &remaining).ok());
  EXPECT_EQ(repaired, 0u);
  EXPECT_EQ(remaining, 1u);
  EXPECT_TRUE(file.quarantine()->Contains(victim));

  // An out-of-band repair (rewrite reseals the page) plus scrub heals it.
  ASSERT_TRUE(file.disk()->WritePage(victim, content.data()).ok());
  ASSERT_TRUE(file.ScrubQuarantined(&repaired, &remaining).ok());
  EXPECT_EQ(repaired, 1u);
  EXPECT_EQ(remaining, 0u);
  auto healed = file.buffer_pool()->FetchPage(victim);
  ASSERT_TRUE(healed.ok()) << healed.status().ToString();
  (void)file.buffer_pool()->UnpinPage(victim, false);
}

}  // namespace
}  // namespace ccam
