#include "src/graph/route.h"

#include <gtest/gtest.h>

#include "src/graph/generator.h"

namespace ccam {
namespace {

class RouteTest : public ::testing::Test {
 protected:
  RouteTest() : net_(GenerateMinneapolisLikeMap(1995)) {}
  Network net_;
};

TEST_F(RouteTest, RandomWalksHaveRequestedLength) {
  for (int length : {10, 20, 30, 40}) {
    auto routes = GenerateRandomWalkRoutes(net_, 100, length, 42);
    ASSERT_EQ(routes.size(), 100u) << "length " << length;
    for (const Route& r : routes) {
      EXPECT_EQ(static_cast<int>(r.Length()), length);
    }
  }
}

TEST_F(RouteTest, RandomWalksAreValidRoutes) {
  auto routes = GenerateRandomWalkRoutes(net_, 50, 25, 7);
  for (const Route& r : routes) {
    EXPECT_TRUE(IsValidRoute(net_, r));
  }
}

TEST_F(RouteTest, WalksAvoidImmediateBacktrackWhenPossible) {
  auto routes = GenerateRandomWalkRoutes(net_, 50, 20, 9);
  int backtracks = 0, steps = 0;
  for (const Route& r : routes) {
    for (size_t i = 2; i < r.nodes.size(); ++i) {
      ++steps;
      if (r.nodes[i] == r.nodes[i - 2]) ++backtracks;
    }
  }
  // Backtracking happens only at (rare) dead ends.
  EXPECT_LT(backtracks, steps / 10);
}

TEST_F(RouteTest, DeterministicForSeed) {
  auto a = GenerateRandomWalkRoutes(net_, 10, 15, 3);
  auto b = GenerateRandomWalkRoutes(net_, 10, 15, 3);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].nodes, b[i].nodes);
  }
}

TEST_F(RouteTest, WeightsCountTraversals) {
  auto routes = GenerateRandomWalkRoutes(net_, 100, 10, 5);
  Network net = net_;
  DeriveEdgeWeightsFromRoutes(&net, routes);
  // Total weight equals total number of edge traversals.
  double total = net.TotalEdgeWeight();
  EXPECT_DOUBLE_EQ(total, 100.0 * 9.0);
  // Every traversed edge has weight >= 1; untouched edges have weight 0.
  for (const Route& r : routes) {
    for (size_t i = 0; i + 1 < r.nodes.size(); ++i) {
      EXPECT_GE(net.EdgeWeight(r.nodes[i], r.nodes[i + 1]), 1.0);
    }
  }
}

TEST_F(RouteTest, UnusedEdgesGetZeroWeight) {
  Network net = net_;
  DeriveEdgeWeightsFromRoutes(&net, {});  // no routes at all
  EXPECT_DOUBLE_EQ(net.TotalEdgeWeight(), 0.0);
}

TEST(RouteValidityTest, DetectsBrokenRoutes) {
  Network net;
  ASSERT_TRUE(net.AddNode(1, 0, 0).ok());
  ASSERT_TRUE(net.AddNode(2, 1, 0).ok());
  ASSERT_TRUE(net.AddEdge(1, 2, 1.0f).ok());
  EXPECT_TRUE(IsValidRoute(net, Route{{1, 2}}));
  EXPECT_FALSE(IsValidRoute(net, Route{{2, 1}}));   // wrong direction
  EXPECT_FALSE(IsValidRoute(net, Route{{1, 99}}));  // missing node
  EXPECT_TRUE(IsValidRoute(net, Route{{1}}));       // single node ok
  EXPECT_TRUE(IsValidRoute(net, Route{}));          // empty ok
}

TEST(RouteDegenerateTest, EmptyNetworkYieldsNoRoutes) {
  Network net;
  auto routes = GenerateRandomWalkRoutes(net, 5, 10, 1);
  EXPECT_TRUE(routes.empty());
}

}  // namespace
}  // namespace ccam
