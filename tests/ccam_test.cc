#include "src/core/ccam.h"

#include <gtest/gtest.h>

#include <set>

#include "src/graph/generator.h"

namespace ccam {
namespace {

AccessMethodOptions DefaultOptions() {
  AccessMethodOptions options;
  options.page_size = 1024;
  options.buffer_pool_pages = 8;
  options.maintain_bptree_index = true;
  return options;
}

/// The paper's Figure 1 example: a small network clustered into pages so
/// that most edges are unsplit.
Network Figure1Network() {
  // Nodes a..i (0..8): three natural clusters {a,b,c}, {d,e,f}, {g,h,i}.
  Network net;
  for (NodeId id = 0; id < 9; ++id) {
    EXPECT_TRUE(
        net.AddNode(id, (id % 3) * 10.0 + (id / 3) * 30.0, id / 3 * 10.0)
            .ok());
  }
  auto biedge = [&](NodeId u, NodeId v) {
    EXPECT_TRUE(net.AddBidirectionalEdge(u, v, 1.0f).ok());
  };
  biedge(0, 1);
  biedge(1, 2);
  biedge(0, 2);  // cluster 1
  biedge(3, 4);
  biedge(4, 5);
  biedge(3, 5);  // cluster 2
  biedge(6, 7);
  biedge(7, 8);
  biedge(6, 8);  // cluster 3
  biedge(2, 3);  // bridge 1-2
  biedge(5, 6);  // bridge 2-3
  return net;
}

TEST(CcamCreateTest, StaticCreateStoresEveryNode) {
  Network net = GenerateMinneapolisLikeMap(1995);
  Ccam am(DefaultOptions(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  EXPECT_EQ(am.PageMap().size(), net.NumNodes());
  ASSERT_TRUE(am.CheckFileInvariants().ok());
  for (NodeId id : net.NodeIds()) {
    auto rec = am.Find(id);
    ASSERT_TRUE(rec.ok()) << id;
    EXPECT_EQ(rec->id, id);
    EXPECT_EQ(rec->succ.size(), net.node(id).succ.size());
    EXPECT_EQ(rec->pred.size(), net.node(id).pred.size());
    EXPECT_EQ(rec->payload, net.node(id).payload);
  }
}

TEST(CcamCreateTest, Figure1ClustersIntoThreeishPages) {
  Network net = Figure1Network();
  AccessMethodOptions options = DefaultOptions();
  options.page_size = 256;  // fits ~3 of these records per page
  Ccam am(options, CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  // The three triangles must land on a page each: only the two bridges
  // (4 directed edges of 22) may be split.
  double crr = ComputeCrr(net, am.PageMap());
  EXPECT_DOUBLE_EQ(crr, 18.0 / 22.0);
  std::set<PageId> pages;
  for (const auto& [node, page] : am.PageMap()) pages.insert(page);
  EXPECT_EQ(pages.size(), 3u);
}

TEST(CcamCreateTest, StaticCrrIsHighOnRoadMap) {
  Network net = GenerateMinneapolisLikeMap(1995);
  Ccam am(DefaultOptions(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  // Paper Table 5: CCAM reaches CRR ~0.76 at 1 KiB pages.
  double crr = ComputeCrr(net, am.PageMap());
  EXPECT_GT(crr, 0.60);
  EXPECT_LT(crr, 0.95);
}

TEST(CcamCreateTest, IncrementalCreateStoresEveryNode) {
  Network net = GenerateMinneapolisLikeMap(1995);
  Ccam am(DefaultOptions(), CcamCreateMode::kIncremental);
  ASSERT_TRUE(am.Create(net).ok());
  EXPECT_EQ(am.PageMap().size(), net.NumNodes());
  ASSERT_TRUE(am.CheckFileInvariants().ok());
  // Records carry complete adjacency lists after the full create.
  for (NodeId id : net.NodeIds()) {
    auto rec = am.Find(id);
    ASSERT_TRUE(rec.ok());
    ASSERT_EQ(rec->succ.size(), net.node(id).succ.size()) << id;
  }
}

TEST(CcamCreateTest, IncrementalCrrCloseToStatic) {
  Network net = GenerateMinneapolisLikeMap(1995);
  Ccam s(DefaultOptions(), CcamCreateMode::kStatic);
  Ccam d(DefaultOptions(), CcamCreateMode::kIncremental);
  ASSERT_TRUE(s.Create(net).ok());
  ASSERT_TRUE(d.Create(net).ok());
  double crr_s = ComputeCrr(net, s.PageMap());
  double crr_d = ComputeCrr(net, d.PageMap());
  EXPECT_GE(crr_s, crr_d - 0.02);  // paper: CCAM-S consistently best
  EXPECT_GT(crr_d, 0.45);          // CCAM-D still performs well
}

TEST(CcamCreateTest, DoubleCreateRejected) {
  Network net = Figure1Network();
  Ccam am(DefaultOptions(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  EXPECT_FALSE(am.Create(net).ok());
}

TEST(CcamCreateTest, WeightedCreateFavorsHeavyEdges) {
  // Two triangles joined by a heavy bridge; a page holds ~4 records. With
  // WCRR clustering the heavy bridge must be unsplit.
  Network net;
  for (NodeId id = 0; id < 8; ++id) {
    ASSERT_TRUE(net.AddNode(id, id * 10.0, 0.0).ok());
  }
  for (NodeId id = 0; id + 1 < 8; ++id) {
    ASSERT_TRUE(net.AddBidirectionalEdge(id, id + 1, 1.0f).ok());
  }
  // Heavy access weight on the middle edge (3,4).
  net.SetEdgeWeight(3, 4, 500.0);
  net.SetEdgeWeight(4, 3, 500.0);

  AccessMethodOptions options = DefaultOptions();
  options.page_size = 256;
  options.use_access_weights = true;
  Ccam weighted(options, CcamCreateMode::kStatic);
  ASSERT_TRUE(weighted.Create(net).ok());
  const NodePageMap& map = weighted.PageMap();
  EXPECT_EQ(map.at(3), map.at(4));  // heavy edge co-paged
  EXPECT_GT(ComputeWcrr(net, map), 0.9);
}

TEST(CcamSearchTest, FindCostsOnePageRead) {
  Network net = GenerateMinneapolisLikeMap(1995);
  Ccam am(DefaultOptions(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  ASSERT_TRUE(am.buffer_pool()->Reset().ok());
  am.ResetIoStats();
  ASSERT_TRUE(am.Find(10).ok());
  EXPECT_EQ(am.DataIoStats().reads, 1u);
  EXPECT_EQ(am.DataIoStats().writes, 0u);
  // Second find of the same node: buffered, no I/O.
  ASSERT_TRUE(am.Find(10).ok());
  EXPECT_EQ(am.DataIoStats().reads, 1u);
}

TEST(CcamSearchTest, FindMissingNode) {
  Network net = Figure1Network();
  Ccam am(DefaultOptions(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  EXPECT_TRUE(am.Find(999).status().IsNotFound());
}

TEST(CcamSearchTest, GetASuccessorUsesBuffer) {
  Network net = Figure1Network();
  AccessMethodOptions options = DefaultOptions();
  options.page_size = 256;
  Ccam am(options, CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  ASSERT_TRUE(am.buffer_pool()->Reset().ok());
  // Nodes 0,1,2 share a page: after Find(0), Get-A-successor(0,1) is free.
  ASSERT_TRUE(am.Find(0).ok());
  am.ResetIoStats();
  auto rec = am.GetASuccessor(0, 1);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->id, 1u);
  EXPECT_EQ(am.DataIoStats().Accesses(), 0u);
  // Crossing to the third cluster costs a read.
  auto far_rec = am.Find(7);
  ASSERT_TRUE(far_rec.ok());
  EXPECT_EQ(am.DataIoStats().reads, 1u);
}

TEST(CcamSearchTest, GetSuccessorsReturnsAllInOrder) {
  Network net = GenerateMinneapolisLikeMap(1995);
  Ccam am(DefaultOptions(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  for (NodeId id : {0u, 100u, 500u}) {
    auto succ = am.GetSuccessors(id);
    ASSERT_TRUE(succ.ok());
    const NetworkNode& node = net.node(id);
    ASSERT_EQ(succ->size(), node.succ.size());
    for (size_t i = 0; i < succ->size(); ++i) {
      EXPECT_EQ((*succ)[i].id, node.succ[i].node);
    }
  }
}

TEST(CcamSearchTest, GetSuccessorsIoMatchesCostModelShape) {
  Network net = GenerateMinneapolisLikeMap(1995);
  Ccam am(DefaultOptions(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  double crr = ComputeCrr(net, am.PageMap());

  uint64_t total_io = 0;
  size_t total_succ = 0;
  int measured = 0;
  for (NodeId id = 0; id < net.NumNodes(); id += 2) {
    ASSERT_TRUE(am.buffer_pool()->Reset().ok());
    ASSERT_TRUE(am.Find(id).ok());  // bring page of id into memory
    am.ResetIoStats();
    auto succ = am.GetSuccessors(id);
    ASSERT_TRUE(succ.ok());
    total_io += am.DataIoStats().Accesses();
    total_succ += succ->size();
    ++measured;
  }
  double actual = static_cast<double>(total_io) / measured;
  double predicted =
      (1.0 - crr) * (static_cast<double>(total_succ) / measured);
  // Cold buffers per op: actual should track (1-alpha)*|A| closely.
  EXPECT_NEAR(actual, predicted, predicted * 0.35 + 0.05);
}

TEST(CcamIndexTest, BPlusTreeIndexStaysConsistent) {
  Network net = GenerateMinneapolisLikeMap(1995);
  Ccam am(DefaultOptions(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  ASSERT_NE(am.bptree_index(), nullptr);
  EXPECT_EQ(am.bptree_index()->NumEntries(), net.NumNodes());
  ASSERT_TRUE(am.IndexIoStats().has_value());
  // Index I/O is tracked separately from data I/O.
  am.ResetIoStats();
  ASSERT_TRUE(am.Find(3).ok());
  EXPECT_LE(am.DataIoStats().Accesses(), 1u);
}

TEST(CcamIndexTest, IndexOptional) {
  AccessMethodOptions options = DefaultOptions();
  options.maintain_bptree_index = false;
  Network net = Figure1Network();
  Ccam am(options, CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  EXPECT_EQ(am.bptree_index(), nullptr);
  EXPECT_FALSE(am.IndexIoStats().has_value());
  ASSERT_TRUE(am.Find(0).ok());
}

TEST(CcamStatsTest, BlockingFactorMatchesPaperBallpark) {
  Network net = GenerateMinneapolisLikeMap(1995);
  Ccam am(DefaultOptions(), CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  // Paper Table 5: gamma = 12.55 at 1 KiB. Within packing tolerance.
  EXPECT_GT(am.AvgBlockingFactor(), 8.0);
  EXPECT_LT(am.AvgBlockingFactor(), 14.0);
}

class CcamBlockSizeTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CcamBlockSizeTest, CrrGrowsWithBlockSize) {
  Network net = GenerateMinneapolisLikeMap(1995);
  AccessMethodOptions options = DefaultOptions();
  options.page_size = GetParam();
  Ccam am(options, CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  ASSERT_TRUE(am.CheckFileInvariants().ok());
  double crr = ComputeCrr(net, am.PageMap());
  EXPECT_GT(crr, 0.0);
  EXPECT_LE(crr, 1.0);
  // Spot-check monotonic trend endpoints (512 -> weaker, 4096 -> stronger).
  if (GetParam() == 512) EXPECT_LT(crr, 0.85);
  if (GetParam() == 4096) EXPECT_GT(crr, 0.80);
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, CcamBlockSizeTest,
                         ::testing::Values(512, 1024, 2048, 4096),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "block" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace ccam
