#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "src/baseline/grid_am.h"
#include "src/baseline/order_am.h"
#include "src/common/random.h"
#include "src/core/ccam.h"
#include "src/graph/generator.h"
#include "src/query/route_eval.h"

namespace ccam {
namespace {

/// Long randomized maintenance workload, executed simultaneously against
/// the paged access method and an in-memory Network mirror; the two must
/// agree at every checkpoint. This is the strongest whole-system property
/// test in the suite.
class WorkloadTest : public ::testing::TestWithParam<int> {};

TEST_P(WorkloadTest, RandomWorkloadMatchesInMemoryMirror) {
  Network net = GenerateMinneapolisLikeMap(100 + GetParam());
  AccessMethodOptions options;
  options.page_size = 1024;
  options.buffer_pool_pages = 8;
  options.maintain_bptree_index = true;

  std::unique_ptr<NetworkFile> am;
  ReorgPolicy policy = ReorgPolicy::kFirstOrder;
  switch (GetParam()) {
    case 0:
      am = std::make_unique<Ccam>(options, CcamCreateMode::kStatic);
      policy = ReorgPolicy::kSecondOrder;
      break;
    case 1:
      am = std::make_unique<Ccam>(options, CcamCreateMode::kIncremental);
      policy = ReorgPolicy::kHigherOrder;
      break;
    case 2:
      am = std::make_unique<OrderAm>(options, NodeOrderKind::kDfs);
      break;
    case 3:
      am = std::make_unique<GridAm>(options);
      break;
  }
  ASSERT_TRUE(am->Create(net).ok());

  Network mirror = net;
  Random rng(4242 + GetParam());
  NodeId next_new_id = 100000;
  std::vector<NodeId> removed_pool;

  auto any_node = [&](const Network& n) {
    std::vector<NodeId> ids = n.NodeIds();
    return ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
  };

  const int kSteps = 400;
  for (int step = 0; step < kSteps; ++step) {
    int op = rng.Uniform(6);
    if (op == 0) {  // delete a random node
      NodeId victim = any_node(mirror);
      ASSERT_TRUE(am->DeleteNode(victim, policy).ok()) << victim;
      ASSERT_TRUE(mirror.RemoveNode(victim).ok());
    } else if (op == 1) {  // insert a brand-new node wired to 2 anchors
      NodeId id = next_new_id++;
      NodeId a = any_node(mirror), b = any_node(mirror);
      NodeRecord rec;
      rec.id = id;
      rec.x = rng.NextDouble() * 3000;
      rec.y = rng.NextDouble() * 3000;
      rec.payload = "w";
      rec.succ.push_back({a, 1.0f});
      if (b != a) rec.pred.push_back({b, 2.0f});
      ASSERT_TRUE(am->InsertNode(rec, policy).ok());
      ASSERT_TRUE(mirror.AddNode(id, rec.x, rec.y, rec.payload).ok());
      ASSERT_TRUE(mirror.AddEdge(id, a, 1.0f).ok());
      if (b != a) ASSERT_TRUE(mirror.AddEdge(b, id, 2.0f).ok());
    } else if (op == 2) {  // insert a random edge
      NodeId u = any_node(mirror), v = any_node(mirror);
      if (u == v || mirror.HasEdge(u, v)) continue;
      float cost = static_cast<float>(1.0 + rng.NextDouble() * 10);
      ASSERT_TRUE(am->InsertEdge(u, v, cost, policy).ok());
      ASSERT_TRUE(mirror.AddEdge(u, v, cost).ok());
    } else if (op == 3) {  // delete a random existing edge
      auto edges = mirror.Edges();
      if (edges.empty()) continue;
      const auto& e = edges[rng.Uniform(static_cast<uint32_t>(edges.size()))];
      ASSERT_TRUE(am->DeleteEdge(e.from, e.to, policy).ok());
      ASSERT_TRUE(mirror.RemoveEdge(e.from, e.to).ok());
    } else {  // probe: Find + GetSuccessors on a random node
      NodeId probe = any_node(mirror);
      auto rec = am->Find(probe);
      ASSERT_TRUE(rec.ok()) << probe;
      const NetworkNode& mnode = mirror.node(probe);
      ASSERT_EQ(rec->succ.size(), mnode.succ.size()) << probe;
      ASSERT_EQ(rec->pred.size(), mnode.pred.size()) << probe;
      auto succ = am->GetSuccessors(probe);
      ASSERT_TRUE(succ.ok());
      ASSERT_EQ(succ->size(), mnode.succ.size());
    }

    if (step % 100 == 99) {
      ASSERT_TRUE(am->CheckFileInvariants().ok()) << "step " << step;
      ASSERT_EQ(am->PageMap().size(), mirror.NumNodes());
    }
  }

  // Final deep comparison: every record matches the mirror as a set.
  ASSERT_TRUE(am->CheckFileInvariants().ok());
  for (NodeId id : mirror.NodeIds()) {
    auto rec = am->Find(id);
    ASSERT_TRUE(rec.ok()) << id;
    auto sort_adj = [](std::vector<AdjEntry> list) {
      std::sort(list.begin(), list.end(),
                [](const AdjEntry& a, const AdjEntry& b) {
                  return a.node < b.node;
                });
      return list;
    };
    EXPECT_EQ(sort_adj(rec->succ), sort_adj(mirror.node(id).succ)) << id;
    EXPECT_EQ(sort_adj(rec->pred), sort_adj(mirror.node(id).pred)) << id;
  }
  // CRR is still meaningful after heavy churn.
  double crr = ComputeCrr(mirror, am->PageMap());
  EXPECT_GE(crr, 0.0);
  EXPECT_LE(crr, 1.0);
}

std::string WorkloadName(const ::testing::TestParamInfo<int>& info) {
  switch (info.param) {
    case 0:
      return "CcamS";
    case 1:
      return "CcamD";
    case 2:
      return "DfsAm";
    default:
      return "GridAm";
  }
}

INSTANTIATE_TEST_SUITE_P(Ams, WorkloadTest, ::testing::Values(0, 1, 2, 3),
                         WorkloadName);

TEST(EndToEndTest, RouteEvalImprovesWithCcamOverBfs) {
  // The headline end-to-end claim: identical queries, identical network,
  // fewer data page accesses under connectivity clustering.
  Network net = GenerateMinneapolisLikeMap(1995);
  auto routes = GenerateRandomWalkRoutes(net, 100, 30, 17);

  AccessMethodOptions options;
  options.page_size = 2048;
  options.buffer_pool_pages = 1;  // the paper's one-page buffer

  Ccam ccam_s(options, CcamCreateMode::kStatic);
  OrderAm bfs(options, NodeOrderKind::kBfs);
  ASSERT_TRUE(ccam_s.Create(net).ok());
  ASSERT_TRUE(bfs.Create(net).ok());

  auto mean_io = [&](AccessMethod* am) {
    uint64_t total = 0;
    for (const Route& r : routes) {
      EXPECT_TRUE(am->buffer_pool()->Reset().ok());
      auto res = EvaluateRoute(am, r);
      EXPECT_TRUE(res.ok());
      total += res->page_accesses;
    }
    return static_cast<double>(total) / routes.size();
  };
  double io_ccam = mean_io(&ccam_s);
  double io_bfs = mean_io(&bfs);
  EXPECT_LT(io_ccam, io_bfs * 0.6);
}

}  // namespace
}  // namespace ccam
