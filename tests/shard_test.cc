// Differential oracle, accounting-conservation, determinism, persistence
// and concurrency tests for the sharded network file (src/shard/):
//
//  * at 1 shard the sharded file IS the unsharded file — page map, disk
//    image behavior and per-query IoStats must match bit for bit;
//  * at 2/4/8 shards every route / aggregate / spatial / shortest-path
//    result must equal the unsharded baseline's (500+ route pairs across
//    the shard counts), with the halo copies keeping every cross-cut hop
//    local;
//  * per-shard session IoStats must sum exactly to the shard disks' reads
//    (the QuerySession conservation contract, lifted over the router);
//  * the coarse split and the router must be a pure function of the input
//    (identical across runs and thread counts);
//  * 8 concurrent reader threads must keep results and the conservation
//    ledger intact (run under TSan via scripts/check_tsan.sh).

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/metrics.h"
#include "src/core/ccam.h"
#include "src/core/query_session.h"
#include "src/graph/generator.h"
#include "src/graph/route.h"
#include "src/query/search.h"
#include "src/query/spatial.h"
#include "src/shard/shard_query.h"
#include "src/shard/sharded_network_file.h"

namespace ccam {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

AccessMethodOptions BaseOptions() {
  AccessMethodOptions options;
  options.page_size = 1024;
  options.buffer_pool_pages = 8;
  return options;
}

const Network& PaperNet() {
  static const Network* net = new Network(GenerateMinneapolisLikeMap(1995));
  return *net;
}

std::unique_ptr<Ccam> MakeBaseline(const Network& net) {
  auto am = std::make_unique<Ccam>(BaseOptions(), CcamCreateMode::kStatic);
  EXPECT_TRUE(am->Create(net).ok());
  return am;
}

std::unique_ptr<ShardedNetworkFile> MakeSharded(const Network& net,
                                                uint32_t num_shards,
                                                int num_threads = 0) {
  ShardedOptions sopts;
  sopts.num_shards = num_shards;
  sopts.am = BaseOptions();
  sopts.am.num_threads = num_threads;
  auto file = std::make_unique<ShardedNetworkFile>(sopts);
  EXPECT_TRUE(file->Create(net).ok()) << num_shards << " shards";
  return file;
}

std::vector<Route> OracleRoutes(const Network& net, int count,
                                uint64_t seed) {
  return GenerateRandomWalkRoutes(net, count, /*length=*/12, seed);
}

// --- 1-shard bit-identicality --------------------------------------------

TEST(ShardOracleTest, OneShardIsBitIdenticalToUnsharded) {
  const Network& net = PaperNet();
  auto baseline = MakeBaseline(net);
  auto sharded = MakeSharded(net, 1);

  // Identical logical placement: composed ids collapse to local ids.
  ASSERT_EQ(baseline->PageMap().size(), sharded->PageMap().size());
  for (const auto& kv : baseline->PageMap()) {
    auto it = sharded->PageMap().find(kv.first);
    ASSERT_NE(it, sharded->PageMap().end()) << "node " << kv.first;
    EXPECT_EQ(it->second, kv.second) << "node " << kv.first;
  }
  EXPECT_EQ(baseline->NumDataPages(), sharded->NumDataPages());
  EXPECT_EQ(sharded->NumCutEdges(), 0u);
  EXPECT_EQ(sharded->TotalHaloRecords(), 0u);

  // Identical accounting, query by query: both files replay the same
  // workload from a cold pool; every per-query access count and the
  // summed IoStats must match exactly.
  auto base_session = baseline->OpenSession();
  auto shard_session = sharded->OpenSession();
  std::vector<Route> routes = OracleRoutes(net, 100, 7);
  for (const Route& route : routes) {
    auto want = EvaluateRoute(base_session.get(), route);
    auto got = EvaluateRoute(shard_session.get(), route);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->total_cost, want->total_cost);
    EXPECT_EQ(got->num_edges, want->num_edges);
    EXPECT_EQ(got->page_accesses, want->page_accesses);
  }
  IoStats want_io = base_session->DataIoStats();
  IoStats got_io = shard_session->DataIoStats();
  EXPECT_EQ(got_io.reads, want_io.reads);
  EXPECT_EQ(got_io.writes, want_io.writes);
  EXPECT_EQ(baseline->DataIoStats().reads, sharded->DataIoStats().reads);
  EXPECT_EQ(shard_session->CutCrossings(), 0u);
}

// --- Differential oracle at 2/4/8 shards ---------------------------------

TEST(ShardOracleTest, RouteResultsMatchUnshardedAcrossShardCounts) {
  const Network& net = PaperNet();
  auto baseline = MakeBaseline(net);
  auto base_session = baseline->OpenSession();

  // 3 shard counts x 200 routes = 600 differential pairs.
  for (uint32_t shards : {2u, 4u, 8u}) {
    auto sharded = MakeSharded(net, shards);
    auto session = sharded->OpenSession();
    std::vector<Route> routes = OracleRoutes(net, 200, 1995 + shards);
    size_t multi = 0;
    for (const Route& route : routes) {
      auto want = EvaluateRoute(base_session.get(), route);
      ASSERT_TRUE(want.ok());

      // The facade session replays the identical call sequence, so even
      // the floating-point cost accumulates in the same order.
      auto facade = EvaluateRoute(session.get(), route);
      ASSERT_TRUE(facade.ok());
      EXPECT_EQ(facade->total_cost, want->total_cost);
      EXPECT_EQ(facade->num_edges, want->num_edges);

      // The stitched path sums per-segment; identical values, possibly
      // re-associated.
      auto stitched = EvaluateRouteSharded(session.get(), route);
      ASSERT_TRUE(stitched.ok());
      EXPECT_DOUBLE_EQ(stitched->eval.total_cost, want->total_cost);
      EXPECT_EQ(stitched->eval.num_edges, want->num_edges);
      EXPECT_GE(stitched->fanout, 1u);
      EXPECT_LE(stitched->fanout, shards);
      if (stitched->fanout > 1) ++multi;
    }
    // The partitioner keeps shards coherent, but 200 random walks across
    // 2+ shards must cross at least once — otherwise the oracle is not
    // actually exercising the stitching path.
    EXPECT_GT(multi, 0u) << shards << " shards";
    EXPECT_GT(session->CutCrossings(), 0u) << shards << " shards";
  }
}

TEST(ShardOracleTest, AggregateAndTourMatchUnsharded) {
  const Network& net = PaperNet();
  auto baseline = MakeBaseline(net);
  auto base_session = baseline->OpenSession();
  for (uint32_t shards : {2u, 4u, 8u}) {
    auto sharded = MakeSharded(net, shards);
    auto session = sharded->OpenSession();
    std::vector<Route> routes = OracleRoutes(net, 40, 42 + shards);
    for (const Route& route : routes) {
      RouteUnit unit;
      unit.name = "unit";
      for (size_t i = 1; i < route.nodes.size(); ++i) {
        unit.edges.emplace_back(route.nodes[i - 1], route.nodes[i]);
      }
      auto want = AggregateRouteUnit(base_session.get(), unit);
      ASSERT_TRUE(want.ok());
      size_t fanout = 0;
      auto got = AggregateRouteUnitSharded(session.get(), unit, &fanout);
      ASSERT_TRUE(got.ok());
      EXPECT_DOUBLE_EQ(got->total_edge_cost, want->total_edge_cost);
      EXPECT_EQ(got->min_edge_cost, want->min_edge_cost);
      EXPECT_EQ(got->max_edge_cost, want->max_edge_cost);
      EXPECT_EQ(got->num_edges, want->num_edges);
      EXPECT_EQ(got->num_nodes, want->num_nodes);
      EXPECT_GE(fanout, 1u);
    }
  }
}

TEST(ShardOracleTest, SpatialAndShortestPathMatchUnsharded) {
  const Network& net = PaperNet();
  auto baseline = MakeBaseline(net);
  auto base_session = baseline->OpenSession();
  auto base_engine = SpatialQueryEngine::Build(base_session.get());
  ASSERT_TRUE(base_engine.ok());

  for (uint32_t shards : {2u, 4u, 8u}) {
    auto sharded = MakeSharded(net, shards);
    auto session = sharded->OpenSession();

    // The facade exposes owned nodes only, so the spatial build sees the
    // same live set as the unsharded file — no double-counted halos.
    ASSERT_EQ(session->LiveNodeIds(), base_session->LiveNodeIds());
    auto engine = SpatialQueryEngine::Build(session.get());
    ASSERT_TRUE(engine.ok());

    const double windows[][4] = {{0, 0, 400, 400},
                                 {100, 100, 900, 500},
                                 {-50, -50, 2000, 2000},
                                 {300, 0, 600, 1200}};
    for (const auto& w : windows) {
      auto want = (*base_engine)->WindowQuery(w[0], w[1], w[2], w[3]);
      auto got = (*engine)->WindowQuery(w[0], w[1], w[2], w[3]);
      ASSERT_TRUE(want.ok());
      ASSERT_TRUE(got.ok());
      std::set<NodeId> want_ids, got_ids;
      for (const NodeRecord& r : want->records) want_ids.insert(r.id);
      for (const NodeRecord& r : got->records) got_ids.insert(r.id);
      EXPECT_EQ(got_ids, want_ids);
    }

    std::vector<NodeId> ids = base_session->LiveNodeIds();
    for (int i = 0; i < 12; ++i) {
      NodeId from = ids[(i * 131) % ids.size()];
      NodeId to = ids[(i * 197 + 89) % ids.size()];
      auto want = ShortestPathAStar(base_session.get(), from, to);
      auto got = ShortestPathAStar(session.get(), from, to);
      ASSERT_TRUE(want.ok());
      ASSERT_TRUE(got.ok());
      ASSERT_EQ(got->Found(), want->Found());
      if (want->Found()) {
        EXPECT_DOUBLE_EQ(got->cost, want->cost);
        EXPECT_EQ(got->path.size(), want->path.size());
      }
    }
  }
}

// --- Halo closure ---------------------------------------------------------

TEST(ShardFileTest, EveryNeighborOfAnOwnedNodeIsLocal) {
  const Network& net = PaperNet();
  auto sharded = MakeSharded(net, 4);
  for (uint32_t s = 0; s < 4; ++s) {
    const NodePageMap& present = sharded->shard(s)->PageMap();
    for (NodeId u : sharded->router().OwnedBy(s)) {
      for (NodeId v : net.Neighbors(u)) {
        EXPECT_TRUE(present.count(v))
            << "shard " << s << ": neighbor " << v << " of owned node " << u
            << " has no local (halo) record";
      }
    }
  }
  // Halo copies are bit-identical to the owner's record.
  auto session = sharded->OpenSession();
  for (uint32_t s = 0; s < 4; ++s) {
    auto shard_sess = sharded->shard(s)->OpenSession();
    int checked = 0;
    for (const auto& kv : sharded->shard(s)->PageMap()) {
      if (sharded->router().ShardOf(kv.first) == s) continue;  // owned
      auto halo = shard_sess->Find(kv.first);
      auto owner = session->Find(kv.first);
      ASSERT_TRUE(halo.ok());
      ASSERT_TRUE(owner.ok());
      EXPECT_TRUE(*halo == *owner) << "halo copy of " << kv.first;
      if (++checked >= 25) break;  // sample; full sweep is O(halo * pages)
    }
    EXPECT_GT(checked, 0) << "shard " << s << " has no halo records";
  }
}

// --- IoStats conservation -------------------------------------------------

TEST(ShardIoStatsTest, SessionStatsSumToShardDiskReads) {
  const Network& net = PaperNet();
  auto sharded = MakeSharded(net, 4);
  sharded->ResetIoStats();
  auto session = sharded->OpenSession();
  std::vector<Route> routes = OracleRoutes(net, 120, 3);
  for (const Route& route : routes) {
    ASSERT_TRUE(EvaluateRouteSharded(session.get(), route).ok());
  }
  // Facade sum == per-shard sum == the shard disks' global read counters
  // (single session, cold pools: every miss is this session's miss).
  uint64_t per_shard_sessions = 0;
  uint64_t per_shard_disks = 0;
  for (uint32_t s = 0; s < 4; ++s) {
    per_shard_sessions += session->ShardIoStats(s).reads;
    per_shard_disks += sharded->ShardIoStats(s).reads;
  }
  EXPECT_EQ(session->DataIoStats().reads, per_shard_sessions);
  EXPECT_EQ(per_shard_sessions, per_shard_disks);
  EXPECT_EQ(sharded->DataIoStats().reads, per_shard_disks);
  EXPECT_GT(per_shard_disks, 0u);
}

// --- Determinism ----------------------------------------------------------

TEST(ShardRouterTest, AssignmentIdenticalAcrossRunsAndThreadCounts) {
  const Network& net = PaperNet();
  auto one = MakeSharded(net, 4, /*num_threads=*/1);
  auto eight = MakeSharded(net, 4, /*num_threads=*/8);
  auto again = MakeSharded(net, 4, /*num_threads=*/1);

  EXPECT_EQ(one->router().Fingerprint(), eight->router().Fingerprint());
  EXPECT_EQ(one->router().Fingerprint(), again->router().Fingerprint());
  ASSERT_EQ(one->PageMap().size(), eight->PageMap().size());
  for (const auto& kv : one->PageMap()) {
    auto it = eight->PageMap().find(kv.first);
    ASSERT_NE(it, eight->PageMap().end());
    EXPECT_EQ(it->second, kv.second);
  }

  // Strongest form: the shard images themselves are byte-identical.
  ASSERT_TRUE(one->SaveImage(TempPath("det_a.img")).ok());
  ASSERT_TRUE(eight->SaveImage(TempPath("det_b.img")).ok());
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(
        ReadFileBytes(TempPath("det_a.img.shard" + std::to_string(s))),
        ReadFileBytes(TempPath("det_b.img.shard" + std::to_string(s))))
        << "shard " << s;
  }
  EXPECT_EQ(ReadFileBytes(TempPath("det_a.img.shardmap")),
            ReadFileBytes(TempPath("det_b.img.shardmap")));
}

TEST(ShardRouterTest, PlanForReturnsMinimalShardSet) {
  const Network& net = PaperNet();
  auto sharded = MakeSharded(net, 4);
  const ShardRouter& router = sharded->router();

  std::vector<NodeId> owned0 = router.OwnedBy(0);
  ASSERT_GE(owned0.size(), 3u);
  ShardPlan single = router.PlanFor({owned0[0], owned0[1], owned0[2]});
  EXPECT_TRUE(single.single());
  EXPECT_EQ(single.shards[0], 0u);

  std::vector<NodeId> owned3 = router.OwnedBy(3);
  ASSERT_FALSE(owned3.empty());
  ShardPlan multi = router.PlanFor({owned0[0], owned3[0], owned0[1]});
  EXPECT_EQ(multi.shards, (std::vector<uint32_t>{0u, 3u}));

  // Unknown nodes are skipped, not planned.
  ShardPlan unknown = router.PlanFor({9999999u});
  EXPECT_TRUE(unknown.empty());
}

// --- Persistence ----------------------------------------------------------

TEST(ShardFileTest, SaveOpenRoundTripPreservesEverything) {
  const Network& net = PaperNet();
  auto sharded = MakeSharded(net, 4);
  const std::string path = TempPath("roundtrip.img");
  ASSERT_TRUE(sharded->SaveImage(path).ok());

  ShardedOptions sopts;
  sopts.num_shards = 4;
  sopts.am = BaseOptions();
  ShardedNetworkFile reopened(sopts);
  ASSERT_TRUE(reopened.OpenImage(path).ok());

  EXPECT_EQ(reopened.router().Fingerprint(),
            sharded->router().Fingerprint());
  EXPECT_EQ(reopened.NumCutEdges(), sharded->NumCutEdges());
  for (uint32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(reopened.NumHaloRecords(s), sharded->NumHaloRecords(s));
  }
  ASSERT_EQ(reopened.PageMap().size(), sharded->PageMap().size());
  for (const auto& kv : sharded->PageMap()) {
    auto it = reopened.PageMap().find(kv.first);
    ASSERT_NE(it, reopened.PageMap().end());
    EXPECT_EQ(it->second, kv.second);
  }

  auto want_session = sharded->OpenSession();
  auto got_session = reopened.OpenSession();
  for (const Route& route : OracleRoutes(net, 50, 11)) {
    auto want = EvaluateRouteSharded(want_session.get(), route);
    auto got = EvaluateRouteSharded(got_session.get(), route);
    ASSERT_TRUE(want.ok());
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->eval.total_cost, want->eval.total_cost);
    EXPECT_EQ(got->eval.num_edges, want->eval.num_edges);
    EXPECT_EQ(got->cut_crossings, want->cut_crossings);
  }

  // A mismatched shard count is a typed error, not a misread.
  ShardedOptions wrong = sopts;
  wrong.num_shards = 8;
  ShardedNetworkFile mismatched(wrong);
  Status s = mismatched.OpenImage(path);
  EXPECT_FALSE(s.ok());
}

// --- Metrics --------------------------------------------------------------

TEST(ShardMetricsTest, ShardFamilyCollectsCrossingsAndFanout) {
  const Network& net = PaperNet();
  ShardedOptions sopts;
  sopts.num_shards = 4;
  sopts.am = BaseOptions();
  ShardedNetworkFile sharded(sopts);
  MetricsRegistry registry;
  sharded.SetMetrics(&registry);
  ASSERT_TRUE(sharded.Create(net).ok());

  auto session = sharded.OpenSession();
  for (const Route& route : OracleRoutes(net, 60, 5)) {
    ASSERT_TRUE(EvaluateRouteSharded(session.get(), route).ok());
  }
  sharded.PublishShardMetrics();

  EXPECT_EQ(registry.GetCounter("shard.cut_crossings")->value(),
            session->CutCrossings());
  EXPECT_GT(registry.GetHistogram("shard.router.fanout")->count(), 0u);
  EXPECT_EQ(registry.GetGauge("shard.count")->value(), 4);
  EXPECT_EQ(registry.GetGauge("shard.cut_edges")->value(),
            static_cast<int64_t>(sharded.NumCutEdges()));
  uint64_t gauge_reads = 0;
  for (uint32_t s = 0; s < 4; ++s) {
    gauge_reads += static_cast<uint64_t>(
        registry.GetGauge("shard." + std::to_string(s) + ".reads")->value());
  }
  EXPECT_EQ(gauge_reads, sharded.DataIoStats().reads);
}

// --- Concurrency (run under TSan via scripts/check_tsan.sh) ---------------

TEST(ShardConcurrencyTest, EightReaderHammerConservesAndAgrees) {
  const Network& net = PaperNet();
  auto baseline = MakeBaseline(net);
  auto sharded = MakeSharded(net, 4);
  sharded->ResetIoStats();

  // Serial oracle answers, computed up front.
  auto oracle_session = baseline->OpenSession();
  std::vector<Route> routes = OracleRoutes(net, 160, 23);
  std::vector<RouteEvalResult> expected;
  for (const Route& route : routes) {
    auto r = EvaluateRoute(oracle_session.get(), route);
    ASSERT_TRUE(r.ok());
    expected.push_back(*r);
  }

  constexpr int kThreads = 8;
  std::vector<uint64_t> session_reads(kThreads, 0);
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      auto session = sharded->OpenSession();
      for (size_t i = t; i < routes.size(); i += 2) {
        auto got = EvaluateRouteSharded(session.get(), routes[i]);
        if (!got.ok() ||
            got->eval.total_cost != expected[i].total_cost ||
            got->eval.num_edges != expected[i].num_edges) {
          ++mismatches[t];
        }
      }
      session_reads[t] = session->DataIoStats().reads;
    });
  }
  for (auto& w : workers) w.join();

  uint64_t total_session_reads = 0;
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(mismatches[t], 0) << "thread " << t;
    total_session_reads += session_reads[t];
  }
  // Every miss was charged to exactly one session: the per-stream
  // counters sum exactly to the shard disks' global reads.
  EXPECT_EQ(total_session_reads, sharded->DataIoStats().reads);
  EXPECT_GT(total_session_reads, 0u);
}

}  // namespace
}  // namespace ccam
