#include <gtest/gtest.h>

#include "src/baseline/grid_am.h"
#include "src/baseline/order_am.h"
#include "src/core/ccam.h"
#include "src/graph/generator.h"
#include "src/graph/route.h"

namespace ccam {
namespace {

AccessMethodOptions Opts(size_t page_size) {
  AccessMethodOptions options;
  options.page_size = page_size;
  options.buffer_pool_pages = 8;
  return options;
}

TEST(BaselineTest, NamesMatchThePaper) {
  EXPECT_EQ(OrderAm(Opts(1024), NodeOrderKind::kDfs).Name(), "DFS-AM");
  EXPECT_EQ(OrderAm(Opts(1024), NodeOrderKind::kBfs).Name(), "BFS-AM");
  EXPECT_EQ(OrderAm(Opts(1024), NodeOrderKind::kWeightedDfs).Name(),
            "WDFS-AM");
  EXPECT_EQ(GridAm(Opts(1024)).Name(), "Grid File");
  EXPECT_EQ(Ccam(Opts(1024), CcamCreateMode::kStatic).Name(), "CCAM-S");
  EXPECT_EQ(Ccam(Opts(1024), CcamCreateMode::kIncremental).Name(), "CCAM-D");
}

TEST(BaselineTest, OrderAmPacksSequentially) {
  Network net = GenerateMinneapolisLikeMap(1995);
  OrderAm am(Opts(1024), NodeOrderKind::kDfs);
  ASSERT_TRUE(am.Create(net).ok());
  EXPECT_EQ(am.PageMap().size(), net.NumNodes());
  ASSERT_TRUE(am.CheckFileInvariants().ok());
  // Pages must be reasonably full (first-fit sequential packing).
  EXPECT_GT(am.AvgBlockingFactor(), 8.0);
}

TEST(BaselineTest, GridAmPlacesNeighborsSpatially) {
  Network net = GenerateMinneapolisLikeMap(1995);
  GridAm am(Opts(1024));
  ASSERT_TRUE(am.Create(net).ok());
  EXPECT_EQ(am.PageMap().size(), net.NumNodes());
  ASSERT_TRUE(am.CheckFileInvariants().ok());
  // Spatial proximity correlates with connectivity on road maps, so the
  // grid file should still achieve a decent CRR (paper Figure 5).
  double crr = ComputeCrr(net, am.PageMap());
  EXPECT_GT(crr, 0.25);
}

/// The paper's headline ordering at 1 KiB pages (Table 5):
/// CCAM > DFS-AM > Grid File > BFS-AM on CRR.
TEST(BaselineTest, CrrOrderingMatchesPaper) {
  Network net = GenerateMinneapolisLikeMap(1995);

  Ccam ccam_s(Opts(1024), CcamCreateMode::kStatic);
  OrderAm dfs(Opts(1024), NodeOrderKind::kDfs);
  OrderAm bfs(Opts(1024), NodeOrderKind::kBfs);
  GridAm grid(Opts(1024));
  ASSERT_TRUE(ccam_s.Create(net).ok());
  ASSERT_TRUE(dfs.Create(net).ok());
  ASSERT_TRUE(bfs.Create(net).ok());
  ASSERT_TRUE(grid.Create(net).ok());

  double crr_ccam = ComputeCrr(net, ccam_s.PageMap());
  double crr_dfs = ComputeCrr(net, dfs.PageMap());
  double crr_bfs = ComputeCrr(net, bfs.PageMap());
  double crr_grid = ComputeCrr(net, grid.PageMap());

  EXPECT_GT(crr_ccam, crr_dfs);
  EXPECT_GT(crr_ccam, crr_grid);
  EXPECT_GT(crr_ccam, crr_bfs);
  EXPECT_GT(crr_dfs, crr_bfs);
  EXPECT_GT(crr_grid, crr_bfs);
  // BFS scatters neighbors across the frontier: very low CRR (paper: 0.098).
  EXPECT_LT(crr_bfs, 0.35);
}

TEST(BaselineTest, WdfsBenefitsFromRouteWeights) {
  Network net = GenerateMinneapolisLikeMap(1995);
  auto routes = GenerateRandomWalkRoutes(net, 100, 20, 3);
  DeriveEdgeWeightsFromRoutes(&net, routes);

  OrderAm wdfs(Opts(2048), NodeOrderKind::kWeightedDfs);
  OrderAm bfs(Opts(2048), NodeOrderKind::kBfs);
  ASSERT_TRUE(wdfs.Create(net).ok());
  ASSERT_TRUE(bfs.Create(net).ok());
  // WDFS follows the heavy edges, so its WCRR must clearly beat BFS.
  EXPECT_GT(ComputeWcrr(net, wdfs.PageMap()),
            ComputeWcrr(net, bfs.PageMap()));
}

TEST(BaselineTest, OrderAmInsertAppends) {
  Network net = GenerateMinneapolisLikeMap(5);
  OrderAm am(Opts(512), NodeOrderKind::kDfs);
  ASSERT_TRUE(am.Create(net).ok());
  size_t pages_before = am.NumDataPages();
  // Insert several isolated nodes: they pack into the append page(s),
  // not one page each.
  for (NodeId id = 90000; id < 90010; ++id) {
    NodeRecord rec;
    rec.id = id;
    rec.x = 1;
    rec.y = 1;
    ASSERT_TRUE(am.InsertNode(rec, ReorgPolicy::kFirstOrder).ok());
  }
  EXPECT_LE(am.NumDataPages(), pages_before + 2);
  ASSERT_TRUE(am.CheckFileInvariants().ok());
}

TEST(BaselineTest, GridAmInsertGoesToSpatialBucket) {
  Network net = GenerateMinneapolisLikeMap(5);
  GridAm am(Opts(1024));
  ASSERT_TRUE(am.Create(net).ok());
  // Insert a node at the position of an existing node: it must land on
  // that node's page (same bucket) when there is room.
  const NetworkNode& anchor = net.node(17);
  NodeRecord rec;
  rec.id = 91000;
  rec.x = anchor.x + 0.001;
  rec.y = anchor.y + 0.001;
  ASSERT_TRUE(am.InsertNode(rec, ReorgPolicy::kFirstOrder).ok());
  ASSERT_TRUE(am.CheckFileInvariants().ok());
  // Either co-paged with the anchor or the bucket split — in both cases
  // the file remains consistent and the node findable.
  EXPECT_TRUE(am.Find(91000).ok());
}

TEST(BaselineTest, GridAmSurvivesDenseInsertBurst) {
  Network net = GenerateMinneapolisLikeMap(5);
  GridAm am(Opts(512));
  ASSERT_TRUE(am.Create(net).ok());
  // Hammer one spatial spot with inserts to force repeated bucket splits.
  for (NodeId id = 92000; id < 92100; ++id) {
    NodeRecord rec;
    rec.id = id;
    rec.x = 500.0 + (id % 10) * 0.5;
    rec.y = 500.0 + (id % 7) * 0.5;
    ASSERT_TRUE(am.InsertNode(rec, ReorgPolicy::kFirstOrder).ok()) << id;
  }
  ASSERT_TRUE(am.CheckFileInvariants().ok());
  for (NodeId id = 92000; id < 92100; ++id) {
    EXPECT_TRUE(am.Find(id).ok());
  }
}

class BlockSizeOrderingTest : public ::testing::TestWithParam<size_t> {};

/// Figure 5's qualitative content, checked per block size.
TEST_P(BlockSizeOrderingTest, CcamBeatsBaselinesAtEveryBlockSize) {
  Network net = GenerateMinneapolisLikeMap(1995);
  Ccam ccam_s(Opts(GetParam()), CcamCreateMode::kStatic);
  OrderAm bfs(Opts(GetParam()), NodeOrderKind::kBfs);
  GridAm grid(Opts(GetParam()));
  ASSERT_TRUE(ccam_s.Create(net).ok());
  ASSERT_TRUE(bfs.Create(net).ok());
  ASSERT_TRUE(grid.Create(net).ok());
  double crr_ccam = ComputeCrr(net, ccam_s.PageMap());
  EXPECT_GT(crr_ccam, ComputeCrr(net, bfs.PageMap()));
  EXPECT_GT(crr_ccam, ComputeCrr(net, grid.PageMap()));
}

INSTANTIATE_TEST_SUITE_P(BlockSizes, BlockSizeOrderingTest,
                         ::testing::Values(512, 1024, 2048, 4096),
                         [](const ::testing::TestParamInfo<size_t>& info) {
                           return "block" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace ccam
