#include "src/core/cost_model.h"

#include <gtest/gtest.h>

#include "src/core/ccam.h"
#include "src/graph/generator.h"

namespace ccam {
namespace {

CostModelParams PaperParams() {
  // Table 5's CCAM row: alpha = 0.7606, |A| = 2.833, lambda = 3.20,
  // gamma = 12.55.
  return {0.7606, 2.833, 3.20, 12.55};
}

TEST(CostModelTest, Table3FormulasReproducePaperPredictions) {
  CostModelParams p = PaperParams();
  EXPECT_NEAR(PredictedGetSuccessorsCost(p), 0.680, 0.005);
  EXPECT_NEAR(PredictedGetASuccessorCost(p), 0.239, 0.001);
}

TEST(CostModelTest, Table5DeletePrediction) {
  CostModelParams p = PaperParams();
  // Predicted Delete() accesses (reads + writes) = 3.532 in Table 5.
  EXPECT_NEAR(PredictedDeleteAccesses(p, ReorgPolicy::kFirstOrder), 3.532,
              0.01);
}

TEST(CostModelTest, RouteEvaluationFormula) {
  CostModelParams p = PaperParams();
  EXPECT_DOUBLE_EQ(PredictedRouteEvaluationCost(p, 1), 1.0);
  EXPECT_NEAR(PredictedRouteEvaluationCost(p, 10), 1 + 9 * (1 - 0.7606),
              1e-12);
  EXPECT_DOUBLE_EQ(PredictedRouteEvaluationCost(p, 0), 0.0);
  // Longer routes cost more; higher alpha costs less.
  EXPECT_GT(PredictedRouteEvaluationCost(p, 40),
            PredictedRouteEvaluationCost(p, 10));
  CostModelParams better = p;
  better.alpha = 0.9;
  EXPECT_LT(PredictedRouteEvaluationCost(better, 40),
            PredictedRouteEvaluationCost(p, 40));
}

TEST(CostModelTest, Table4PolicyStructure) {
  CostModelParams p = PaperParams();
  // First and second order have identical worst-case read cost.
  EXPECT_DOUBLE_EQ(PredictedInsertReadCost(p, ReorgPolicy::kFirstOrder),
                   PredictedInsertReadCost(p, ReorgPolicy::kSecondOrder));
  EXPECT_DOUBLE_EQ(PredictedDeleteReadCost(p, ReorgPolicy::kFirstOrder),
                   PredictedDeleteReadCost(p, ReorgPolicy::kSecondOrder));
  // Higher order pays the gamma * lambda * (1 - alpha) surcharge.
  EXPECT_GT(PredictedInsertReadCost(p, ReorgPolicy::kHigherOrder),
            PredictedInsertReadCost(p, ReorgPolicy::kFirstOrder));
  EXPECT_NEAR(PredictedInsertReadCost(p, ReorgPolicy::kHigherOrder),
              3.20 + 12.55 * 3.20 * (1 - 0.7606), 1e-6);
}

TEST(CostModelTest, CostDecreasesWithCrr) {
  // "With a higher CRR, the cost of these operations is lower."
  CostModelParams lo{0.3, 2.8, 3.2, 12.0};
  CostModelParams hi{0.8, 2.8, 3.2, 12.0};
  EXPECT_GT(PredictedGetSuccessorsCost(lo), PredictedGetSuccessorsCost(hi));
  EXPECT_GT(PredictedGetASuccessorCost(lo), PredictedGetASuccessorCost(hi));
  EXPECT_GT(PredictedDeleteReadCost(lo, ReorgPolicy::kFirstOrder),
            PredictedDeleteReadCost(hi, ReorgPolicy::kFirstOrder));
}

TEST(CostModelTest, MeasureParamsFromLiveAccessMethod) {
  Network net = GenerateMinneapolisLikeMap(1995);
  AccessMethodOptions options;
  options.page_size = 1024;
  Ccam am(options, CcamCreateMode::kStatic);
  ASSERT_TRUE(am.Create(net).ok());
  CostModelParams p = MeasureCostModelParams(net, am);
  EXPECT_DOUBLE_EQ(p.alpha, ComputeCrr(net, am.PageMap()));
  EXPECT_NEAR(p.avg_succ, 2.83, 0.3);
  EXPECT_NEAR(p.lambda, 3.2, 0.4);
  EXPECT_GT(p.gamma, 8.0);
  EXPECT_LT(p.gamma, 14.0);
}

}  // namespace
}  // namespace ccam
