#include "src/index/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "src/common/random.h"

namespace ccam {
namespace {

TEST(RectTest, Basics) {
  Rect a{0, 0, 10, 10};
  Rect b{5, 5, 15, 15};
  Rect c{20, 20, 30, 30};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Contains(Rect{2, 2, 3, 3}));
  EXPECT_FALSE(a.Contains(b));
  EXPECT_DOUBLE_EQ(a.Area(), 100.0);
  Rect u = a.Union(c);
  EXPECT_DOUBLE_EQ(u.xmin, 0.0);
  EXPECT_DOUBLE_EQ(u.xmax, 30.0);
}

TEST(RectTest, DistanceSq) {
  Rect r{0, 0, 10, 10};
  EXPECT_DOUBLE_EQ(r.DistanceSq(5, 5), 0.0);   // inside
  EXPECT_DOUBLE_EQ(r.DistanceSq(13, 5), 9.0);  // right of
  EXPECT_DOUBLE_EQ(r.DistanceSq(13, 14), 25.0);  // corner
}

TEST(RTreeTest, EmptyTree) {
  RTree tree;
  EXPECT_EQ(tree.NumEntries(), 0u);
  EXPECT_TRUE(tree.Search(Rect{0, 0, 100, 100}).empty());
  EXPECT_TRUE(tree.KNearest(0, 0, 3).empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RTreeTest, InsertAndSearch) {
  RTree tree;
  tree.Insert(Rect::Point(1, 1), 11);
  tree.Insert(Rect::Point(5, 5), 55);
  tree.Insert(Rect{2, 2, 4, 4}, 99);
  auto hits = tree.Search(Rect{0, 0, 3, 3});
  std::set<uint64_t> got(hits.begin(), hits.end());
  EXPECT_EQ(got, (std::set<uint64_t>{11, 99}));
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RTreeTest, SplitsKeepInvariants) {
  RTree tree(6);
  Random rng(1);
  for (uint64_t i = 0; i < 500; ++i) {
    tree.Insert(Rect::Point(rng.NextDouble() * 100, rng.NextDouble() * 100),
                i);
  }
  EXPECT_EQ(tree.NumEntries(), 500u);
  EXPECT_GT(tree.Height(), 1);
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST(RTreeTest, SearchMatchesBruteForce) {
  RTree tree(8);
  Random rng(2);
  std::vector<std::pair<Rect, uint64_t>> data;
  for (uint64_t i = 0; i < 400; ++i) {
    double x = rng.NextDouble() * 100, y = rng.NextDouble() * 100;
    Rect r{x, y, x + rng.NextDouble() * 5, y + rng.NextDouble() * 5};
    tree.Insert(r, i);
    data.emplace_back(r, i);
  }
  for (int trial = 0; trial < 50; ++trial) {
    double x = rng.NextDouble() * 90, y = rng.NextDouble() * 90;
    Rect q{x, y, x + rng.NextDouble() * 20, y + rng.NextDouble() * 20};
    auto hits = tree.Search(q);
    std::set<uint64_t> got(hits.begin(), hits.end());
    std::set<uint64_t> expected;
    for (const auto& [r, v] : data) {
      if (r.Intersects(q)) expected.insert(v);
    }
    ASSERT_EQ(got, expected) << "trial " << trial;
  }
}

TEST(RTreeTest, DeleteRemovesAndCondenses) {
  RTree tree(5);
  Random rng(3);
  std::vector<std::pair<Rect, uint64_t>> data;
  for (uint64_t i = 0; i < 300; ++i) {
    Rect r = Rect::Point(rng.NextDouble() * 50, rng.NextDouble() * 50);
    tree.Insert(r, i);
    data.emplace_back(r, i);
  }
  for (size_t i = 0; i < data.size(); i += 2) {
    ASSERT_TRUE(tree.Delete(data[i].first, data[i].second).ok()) << i;
    if (i % 20 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "after delete " << i;
    }
  }
  EXPECT_EQ(tree.NumEntries(), 150u);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  // Deleted entries are gone; kept entries remain findable.
  for (size_t i = 0; i < data.size(); ++i) {
    auto hits = tree.Search(data[i].first);
    bool found =
        std::find(hits.begin(), hits.end(), data[i].second) != hits.end();
    EXPECT_EQ(found, i % 2 == 1) << i;
  }
}

TEST(RTreeTest, DeleteMissingFails) {
  RTree tree;
  tree.Insert(Rect::Point(1, 1), 7);
  EXPECT_TRUE(tree.Delete(Rect::Point(2, 2), 7).IsNotFound());
  EXPECT_TRUE(tree.Delete(Rect::Point(1, 1), 8).IsNotFound());
  EXPECT_TRUE(tree.Delete(Rect::Point(1, 1), 7).ok());
  EXPECT_EQ(tree.NumEntries(), 0u);
}

TEST(RTreeTest, DeleteEverything) {
  RTree tree(4);
  Random rng(4);
  std::vector<std::pair<Rect, uint64_t>> data;
  for (uint64_t i = 0; i < 200; ++i) {
    Rect r = Rect::Point(rng.NextDouble() * 10, rng.NextDouble() * 10);
    tree.Insert(r, i);
    data.emplace_back(r, i);
  }
  for (const auto& [r, v] : data) {
    ASSERT_TRUE(tree.Delete(r, v).ok());
  }
  EXPECT_EQ(tree.NumEntries(), 0u);
  EXPECT_EQ(tree.Height(), 1);
  ASSERT_TRUE(tree.CheckInvariants().ok());
}

TEST(RTreeTest, KNearestMatchesBruteForce) {
  RTree tree(8);
  Random rng(5);
  std::vector<std::pair<double, uint64_t>> by_dist;
  std::vector<std::pair<Rect, uint64_t>> data;
  const double qx = 50, qy = 50;
  for (uint64_t i = 0; i < 300; ++i) {
    double x = rng.NextDouble() * 100, y = rng.NextDouble() * 100;
    tree.Insert(Rect::Point(x, y), i);
    data.emplace_back(Rect::Point(x, y), i);
    by_dist.emplace_back(std::hypot(x - qx, y - qy), i);
  }
  std::sort(by_dist.begin(), by_dist.end());
  for (size_t k : {size_t{1}, size_t{5}, size_t{20}}) {
    auto got = tree.KNearest(qx, qy, k);
    ASSERT_EQ(got.size(), k);
    for (size_t i = 0; i < k; ++i) {
      EXPECT_EQ(got[i], by_dist[i].second) << "k=" << k << " i=" << i;
    }
  }
}

TEST(RTreeTest, KNearestClampsToSize) {
  RTree tree;
  tree.Insert(Rect::Point(1, 1), 1);
  tree.Insert(Rect::Point(2, 2), 2);
  EXPECT_EQ(tree.KNearest(0, 0, 10).size(), 2u);
}

TEST(RTreeTest, MixedInsertDeleteChurn) {
  RTree tree(6);
  Random rng(6);
  std::vector<std::pair<Rect, uint64_t>> live;
  uint64_t next = 0;
  for (int step = 0; step < 3000; ++step) {
    if (live.empty() || rng.Bernoulli(0.6)) {
      Rect r = Rect::Point(rng.NextDouble() * 100, rng.NextDouble() * 100);
      tree.Insert(r, next);
      live.emplace_back(r, next++);
    } else {
      size_t pick = rng.Uniform(static_cast<uint32_t>(live.size()));
      ASSERT_TRUE(tree.Delete(live[pick].first, live[pick].second).ok());
      live.erase(live.begin() + pick);
    }
    if (step % 250 == 0) {
      ASSERT_TRUE(tree.CheckInvariants().ok()) << "step " << step;
      ASSERT_EQ(tree.NumEntries(), live.size());
    }
  }
}

}  // namespace
}  // namespace ccam
