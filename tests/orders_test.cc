#include "src/graph/orders.h"

#include <gtest/gtest.h>

#include <set>

#include "src/graph/generator.h"

namespace ccam {
namespace {

Network PathGraph(int n) {
  Network net;
  for (int i = 0; i < n; ++i) {
    EXPECT_TRUE(net.AddNode(i, i, 0).ok());
  }
  for (int i = 0; i + 1 < n; ++i) {
    EXPECT_TRUE(net.AddBidirectionalEdge(i, i + 1, 1.0f).ok());
  }
  return net;
}

void ExpectPermutationOfAllNodes(const Network& net,
                                 const std::vector<NodeId>& order) {
  EXPECT_EQ(order.size(), net.NumNodes());
  std::set<NodeId> uniq(order.begin(), order.end());
  EXPECT_EQ(uniq.size(), net.NumNodes());
  for (NodeId id : order) EXPECT_TRUE(net.HasNode(id));
}

TEST(OrdersTest, DfsCoversAllNodes) {
  Network net = GenerateMinneapolisLikeMap(3);
  ExpectPermutationOfAllNodes(net, DfsOrder(net, 0));
}

TEST(OrdersTest, BfsCoversAllNodes) {
  Network net = GenerateMinneapolisLikeMap(3);
  ExpectPermutationOfAllNodes(net, BfsOrder(net, 0));
}

TEST(OrdersTest, WeightedDfsCoversAllNodes) {
  Network net = GenerateMinneapolisLikeMap(3);
  ExpectPermutationOfAllNodes(net, WeightedDfsOrder(net, 0));
}

TEST(OrdersTest, PathGraphDfsIsSequential) {
  Network net = PathGraph(8);
  std::vector<NodeId> order = DfsOrder(net, 0);
  std::vector<NodeId> expected{0, 1, 2, 3, 4, 5, 6, 7};
  EXPECT_EQ(order, expected);
}

TEST(OrdersTest, StarGraphBfsVisitsCenterThenLeaves) {
  Network net;
  ASSERT_TRUE(net.AddNode(0, 0, 0).ok());
  for (NodeId leaf : {1u, 2u, 3u, 4u}) {
    ASSERT_TRUE(net.AddNode(leaf, leaf, leaf).ok());
    ASSERT_TRUE(net.AddBidirectionalEdge(0, leaf, 1.0f).ok());
  }
  std::vector<NodeId> order = BfsOrder(net, 0);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order.size(), 5u);
}

TEST(OrdersTest, BfsOrderDiffersFromDfsOnGrids) {
  Network net = GenerateMinneapolisLikeMap(3);
  EXPECT_NE(DfsOrder(net, 0), BfsOrder(net, 0));
}

TEST(OrdersTest, DisconnectedGraphStillFullyCovered) {
  Network net;
  for (NodeId id : {0u, 1u, 10u, 11u}) {
    ASSERT_TRUE(net.AddNode(id, id, id).ok());
  }
  ASSERT_TRUE(net.AddBidirectionalEdge(0, 1, 1.0f).ok());
  ASSERT_TRUE(net.AddBidirectionalEdge(10, 11, 1.0f).ok());
  ExpectPermutationOfAllNodes(net, DfsOrder(net, 0));
  ExpectPermutationOfAllNodes(net, BfsOrder(net, 10));
}

TEST(OrdersTest, WeightedDfsPrefersHeavyEdges) {
  // Star with weighted spokes: WDFS from the center must explore the
  // heaviest spoke first.
  Network net;
  ASSERT_TRUE(net.AddNode(0, 0, 0).ok());
  for (NodeId leaf : {1u, 2u, 3u}) {
    ASSERT_TRUE(net.AddNode(leaf, leaf, leaf).ok());
    ASSERT_TRUE(net.AddBidirectionalEdge(0, leaf, 1.0f).ok());
  }
  net.SetEdgeWeight(0, 2, 100.0);
  net.SetEdgeWeight(2, 0, 100.0);
  std::vector<NodeId> order = WeightedDfsOrder(net, 0);
  ASSERT_GE(order.size(), 2u);
  EXPECT_EQ(order[0], 0u);
  EXPECT_EQ(order[1], 2u);
}

TEST(OrdersTest, TraversalTreatsDirectionAsUndirected) {
  // A directed chain 0 -> 1 -> 2: starting from node 2, DFS must still
  // reach everything through predecessor links.
  Network net;
  for (NodeId id : {0u, 1u, 2u}) ASSERT_TRUE(net.AddNode(id, id, 0).ok());
  ASSERT_TRUE(net.AddEdge(0, 1, 1.0f).ok());
  ASSERT_TRUE(net.AddEdge(1, 2, 1.0f).ok());
  std::vector<NodeId> order = DfsOrder(net, 2);
  EXPECT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0], 2u);
}

TEST(OrdersTest, MissingStartFallsBackToLowestId) {
  Network net = PathGraph(4);
  std::vector<NodeId> order = DfsOrder(net, 999);
  ExpectPermutationOfAllNodes(net, order);
  EXPECT_EQ(order[0], 0u);
}

}  // namespace
}  // namespace ccam
