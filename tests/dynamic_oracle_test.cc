#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include <filesystem>

#include "src/common/random.h"
#include "src/core/ccam.h"
#include "src/core/file_stats.h"
#include "src/graph/generator.h"
#include "src/storage/snapshot_manager.h"

namespace ccam {
namespace {

// Differential-oracle runner: replays a seeded mixed Insert/Delete/query
// workload against a Ccam file and an in-memory reference graph (a plain
// Network) in lockstep, comparing every query result and, periodically,
// the complete stored state. Zero divergence over the whole run is the
// acceptance bar.

int EnvInt(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

std::string TempPath(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir != nullptr ? dir : "/tmp") + "/" + name;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

AccessMethodOptions MakeOptions(size_t page_size, uint64_t seed,
                                int num_threads) {
  AccessMethodOptions opt;
  opt.page_size = page_size;
  opt.buffer_pool_pages = 8;
  opt.seed = seed;
  opt.num_threads = num_threads;
  return opt;
}

// Sorted (neighbor, cost) view of an adjacency list for order-insensitive
// comparison.
std::vector<std::pair<NodeId, float>> Sorted(const std::vector<AdjEntry>& v) {
  std::vector<std::pair<NodeId, float>> out;
  out.reserve(v.size());
  for (const AdjEntry& e : v) out.emplace_back(e.node, e.cost);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::pair<NodeId, float>> OracleSucc(const Network& net,
                                                 NodeId id) {
  return Sorted(net.node(id).succ);
}

// Compares the complete stored state against the oracle: same node set,
// same coordinates/payload, same successor- and predecessor-lists.
void ExpectFileMatchesOracle(Ccam* file, const Network& net,
                             const std::string& where) {
  ASSERT_EQ(file->PageMap().size(), net.NumNodes()) << where;
  for (NodeId id : net.NodeIds()) {
    auto rec = file->Find(id);
    ASSERT_TRUE(rec.ok()) << where << ": node " << id << ": "
                          << rec.status().ToString();
    const NetworkNode& node = net.node(id);
    EXPECT_EQ(rec->x, node.x) << where << ": node " << id;
    EXPECT_EQ(rec->y, node.y) << where << ": node " << id;
    EXPECT_EQ(rec->payload, node.payload) << where << ": node " << id;
    EXPECT_EQ(Sorted(rec->succ), Sorted(node.succ))
        << where << ": succ of " << id;
    EXPECT_EQ(Sorted(rec->pred), Sorted(node.pred))
        << where << ": pred of " << id;
  }
}

struct RunConfig {
  size_t page_size = 1024;
  uint64_t seed = 1995;
  int ops = 0;
  int num_threads = 1;
  ReorgPolicy policy = ReorgPolicy::kFirstOrder;
};

// Replays the seeded op stream; on return `*net` is the final oracle
// state. The stream (which ops run, in which order, with which operands)
// is a pure function of (seed, ops) — never of page size, thread count or
// policy — so two configs with the same seed see the same logical history.
void RunDifferentialWorkload(const RunConfig& cfg, Ccam* file, Network* net) {
  *net = GenerateRandomGeometricNetwork(64, /*radius=*/200.0,
                                        /*extent=*/1000.0, cfg.seed);
  ASSERT_TRUE(file->Create(*net).ok());
  Random rng(cfg.seed * 0x9e3779b97f4a7c15ULL + 1);
  NodeId next_id = 0;
  for (NodeId id : net->NodeIds()) next_id = std::max(next_id, id + 1);
  int divergences = 0;
  for (int i = 0; i < cfg.ops && divergences == 0; ++i) {
    std::vector<NodeId> live = net->NodeIds();
    ASSERT_FALSE(live.empty());
    auto pick = [&] {
      return live[rng.Uniform(static_cast<uint32_t>(live.size()))];
    };
    uint32_t kind = rng.Uniform(100);
    std::string where = "op " + std::to_string(i);
    if (kind < 18) {
      NodeRecord rec;
      rec.id = next_id++;
      rec.x = rng.NextDouble() * 1000.0;
      rec.y = rng.NextDouble() * 1000.0;
      rec.payload = std::string(1 + rng.Uniform(24), 'p');
      NodeId a = pick();
      float ca = 1.0f + static_cast<float>(rng.Uniform(9));
      rec.succ.push_back({a, ca});
      rec.pred.push_back({a, ca});
      ASSERT_TRUE(file->InsertNode(rec, cfg.policy).ok()) << where;
      ASSERT_TRUE(net->AddNode(rec.id, rec.x, rec.y, rec.payload).ok());
      ASSERT_TRUE(net->AddBidirectionalEdge(rec.id, a, ca).ok());
    } else if (kind < 30) {
      NodeId victim = pick();
      ASSERT_TRUE(file->DeleteNode(victim, cfg.policy).ok())
          << where << ": node " << victim;
      ASSERT_TRUE(net->RemoveNode(victim).ok());
    } else if (kind < 48) {
      NodeId u = pick();
      NodeId v = pick();
      float cost = 1.0f + static_cast<float>(rng.Uniform(9));
      Status st = file->InsertEdge(u, v, cost, cfg.policy);
      if (u == v || net->HasEdge(u, v)) {
        // The oracle predicts rejection; the file must agree.
        EXPECT_FALSE(st.ok()) << where;
      } else {
        ASSERT_TRUE(st.ok()) << where << ": " << st.ToString();
        ASSERT_TRUE(net->AddEdge(u, v, cost).ok());
      }
    } else if (kind < 58) {
      NodeId u = pick();
      const auto& succ = net->node(u).succ;
      if (succ.empty()) {
        EXPECT_TRUE(
            file->DeleteEdge(u, u + 1000000, cfg.policy).IsNotFound());
        continue;
      }
      NodeId v = succ[rng.Uniform(static_cast<uint32_t>(succ.size()))].node;
      ASSERT_TRUE(file->DeleteEdge(u, v, cfg.policy).ok()) << where;
      ASSERT_TRUE(net->RemoveEdge(u, v).ok());
    } else if (kind < 72) {
      // Point query, present node.
      NodeId id = pick();
      auto rec = file->Find(id);
      ASSERT_TRUE(rec.ok()) << where;
      if (Sorted(rec->succ) != OracleSucc(*net, id)) ++divergences;
      EXPECT_EQ(Sorted(rec->succ), OracleSucc(*net, id)) << where;
    } else if (kind < 80) {
      // Point query, absent node: both sides must say NotFound.
      EXPECT_TRUE(
          file->Find(next_id + 1 + rng.Uniform(1000)).status().IsNotFound())
          << where;
    } else if (kind < 92) {
      NodeId id = pick();
      auto succs = file->GetSuccessors(id);
      ASSERT_TRUE(succs.ok()) << where;
      std::vector<NodeId> got;
      for (const NodeRecord& r : *succs) got.push_back(r.id);
      std::sort(got.begin(), got.end());
      std::vector<NodeId> want;
      for (const AdjEntry& e : net->node(id).succ) want.push_back(e.node);
      std::sort(want.begin(), want.end());
      if (got != want) ++divergences;
      EXPECT_EQ(got, want) << where;
    } else {
      // Get-A-successor degenerates to Find(to) per the paper; both the
      // returned record and its back-edge view must match the oracle.
      NodeId u = pick();
      NodeId v = pick();
      auto rec = file->GetASuccessor(u, v);
      ASSERT_TRUE(rec.ok()) << where;
      EXPECT_EQ(rec->id, v) << where;
      EXPECT_EQ(rec->HasPredecessor(u), net->HasEdge(u, v)) << where;
    }
    // Periodic full-state audit (every op would be quadratic).
    if (i % 500 == 499) ExpectFileMatchesOracle(file, *net, where);
  }
  ExpectFileMatchesOracle(file, *net, "final");
}

class DynamicOracleTest : public ::testing::TestWithParam<size_t> {};

// Acceptance: zero divergence between the file and the in-memory oracle
// over the full seeded workload, at 1 KiB and 4 KiB pages. The default op
// count keeps the tier-1 run fast; the `faults`-configuration sweep
// (scripts/check_faults.sh) raises CCAM_ORACLE_OPS to 10000.
TEST_P(DynamicOracleTest, NoDivergenceFromInMemoryReference) {
  RunConfig cfg;
  cfg.page_size = GetParam();
  cfg.ops = EnvInt("CCAM_ORACLE_OPS", 1500);
  int seeds = EnvInt("CCAM_ORACLE_SEEDS", 1);
  for (int s = 0; s < seeds; ++s) {
    cfg.seed = 1995 + 31 * s;
    Ccam file(MakeOptions(cfg.page_size, cfg.seed, cfg.num_threads));
    Network net;
    RunDifferentialWorkload(cfg, &file, &net);
    if (::testing::Test::HasFatalFailure()) return;
    // The paper's bookkeeping must agree with the oracle: CollectFileStats
    // computes CRR from the *stored* records against the oracle's edge
    // set; a mismatch in either direction would skew it.
    auto stats = CollectFileStats(&file, net);
    ASSERT_TRUE(stats.ok()) << stats.status().ToString();
    EXPECT_EQ(stats->num_nodes, net.NumNodes());
  }
}

TEST_P(DynamicOracleTest, SecondOrderPolicyAlsoMatchesOracle) {
  RunConfig cfg;
  cfg.page_size = GetParam();
  cfg.policy = ReorgPolicy::kSecondOrder;
  cfg.ops = EnvInt("CCAM_ORACLE_OPS", 1500) / 3;
  Ccam file(MakeOptions(cfg.page_size, cfg.seed, cfg.num_threads));
  Network net;
  RunDifferentialWorkload(cfg, &file, &net);
}

// Satellite: the workload is deterministic — two runs with the same seed,
// and runs with different clustering thread counts, save byte-identical
// images.
TEST_P(DynamicOracleTest, ImageBytesDeterministicAcrossRunsAndThreads) {
  RunConfig cfg;
  cfg.page_size = GetParam();
  cfg.ops = 400;
  auto run = [&](int num_threads, const std::string& name) {
    cfg.num_threads = num_threads;
    Ccam file(MakeOptions(cfg.page_size, cfg.seed, num_threads));
    Network net;
    RunDifferentialWorkload(cfg, &file, &net);
    std::string path = TempPath(name);
    EXPECT_TRUE(file.SaveImage(path).ok());
    std::string bytes = ReadFileBytes(path);
    std::remove(path.c_str());
    return bytes;
  };
  std::string t1a = run(1, "ccam_oracle_t1a.img");
  if (::testing::Test::HasFatalFailure()) return;
  std::string t1b = run(1, "ccam_oracle_t1b.img");
  std::string t3 = run(3, "ccam_oracle_t3.img");
  EXPECT_EQ(t1a, t1b) << "same-seed runs diverged";
  EXPECT_EQ(t1a, t3) << "image depends on num_threads";
}

INSTANTIATE_TEST_SUITE_P(PageSizes, DynamicOracleTest,
                         ::testing::Values(1024u, 4096u));

// --- Snapshot store with interleaved background reorganizations -------------
// The same differential-oracle discipline against the versioned snapshot
// store: a seeded mutation+query stream runs while background
// reorganizations build and swap in fully reclustered versions. Every
// query result must match the in-memory oracle regardless of where the
// swaps land, every acknowledged mutation must still be visible after each
// swap, and the whole acked history must survive closing and reopening the
// store (recovery = image + delta-log replay).

// Full-state audit of the session-visible store against the oracle.
void ExpectSessionMatchesOracle(SnapshotSession* session, const Network& net,
                                const std::string& where) {
  ASSERT_EQ(session->LiveNodeIds(), net.NodeIds()) << where;
  for (NodeId id : net.NodeIds()) {
    auto rec = session->Find(id);
    ASSERT_TRUE(rec.ok()) << where << ": node " << id << ": "
                          << rec.status().ToString();
    const NetworkNode& node = net.node(id);
    EXPECT_EQ(rec->x, node.x) << where << ": node " << id;
    EXPECT_EQ(rec->payload, node.payload) << where << ": node " << id;
    EXPECT_EQ(Sorted(rec->succ), Sorted(node.succ))
        << where << ": succ of " << id;
    EXPECT_EQ(Sorted(rec->pred), Sorted(node.pred))
        << where << ": pred of " << id;
  }
}

TEST(SnapshotOracleTest, NoDivergenceFromInMemoryReferenceAcrossReorgs) {
  SnapshotOptions sopt;
  sopt.am = MakeOptions(1024, 1995, 1);
  sopt.dir = TempPath("ccam_snap_oracle_store");
  std::error_code ec;
  std::filesystem::remove_all(sopt.dir, ec);

  Network net = GenerateRandomGeometricNetwork(64, /*radius=*/200.0,
                                               /*extent=*/1000.0, 1995);
  auto created = SnapshotManager::Create(sopt, net);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  SnapshotManager* mgr = created->get();
  std::unique_ptr<SnapshotSession> session = mgr->OpenSession();

  const int ops = EnvInt("CCAM_ORACLE_OPS", 1500);
  Random rng(1995 * 0x9e3779b97f4a7c15ULL + 1);
  NodeId next_id = 0;
  for (NodeId id : net.NodeIds()) next_id = std::max(next_id, id + 1);
  int reorgs_started = 0;
  for (int i = 0; i < ops; ++i) {
    std::vector<NodeId> live = net.NodeIds();
    ASSERT_FALSE(live.empty());
    auto pick = [&] {
      return live[rng.Uniform(static_cast<uint32_t>(live.size()))];
    };
    uint32_t kind = rng.Uniform(100);
    std::string where = "op " + std::to_string(i);
    if (kind < 18) {
      DeltaRecord rec;
      rec.kind = DeltaRecord::Kind::kInsertNode;
      rec.node.id = next_id++;
      rec.node.x = rng.NextDouble() * 1000.0;
      rec.node.y = rng.NextDouble() * 1000.0;
      rec.node.payload = std::string(1 + rng.Uniform(24), 'p');
      NodeId a = pick();
      float ca = 1.0f + static_cast<float>(rng.Uniform(9));
      rec.node.succ.push_back({a, ca});
      rec.node.pred.push_back({a, ca});
      ASSERT_TRUE(mgr->InsertNode(rec.node).ok()) << where;
      ASSERT_TRUE(SnapshotManager::ApplyMutation(&net, rec).ok()) << where;
    } else if (kind < 30) {
      NodeId victim = pick();
      ASSERT_TRUE(mgr->DeleteNode(victim).ok()) << where;
      ASSERT_TRUE(net.RemoveNode(victim).ok());
    } else if (kind < 48) {
      NodeId u = pick();
      NodeId v = pick();
      float cost = 1.0f + static_cast<float>(rng.Uniform(9));
      Status st = mgr->InsertEdge(u, v, cost);
      if (u == v || net.HasEdge(u, v)) {
        // The oracle predicts rejection; the store must agree.
        EXPECT_FALSE(st.ok()) << where;
      } else {
        ASSERT_TRUE(st.ok()) << where << ": " << st.ToString();
        ASSERT_TRUE(net.AddEdge(u, v, cost).ok());
      }
    } else if (kind < 58) {
      NodeId u = pick();
      const auto& succ = net.node(u).succ;
      if (succ.empty()) {
        EXPECT_TRUE(mgr->DeleteEdge(u, u + 1000000).IsNotFound()) << where;
        continue;
      }
      NodeId v = succ[rng.Uniform(static_cast<uint32_t>(succ.size()))].node;
      ASSERT_TRUE(mgr->DeleteEdge(u, v).ok()) << where;
      ASSERT_TRUE(net.RemoveEdge(u, v).ok());
    } else if (kind < 75) {
      // Query ops refresh first — the serve layer's batch-boundary
      // contract: a session sees every mutation acked before its refresh,
      // however many background swaps landed in between.
      session->Refresh();
      NodeId id = pick();
      auto rec = session->Find(id);
      ASSERT_TRUE(rec.ok()) << where << ": " << rec.status().ToString();
      EXPECT_EQ(Sorted(rec->succ), OracleSucc(net, id)) << where;
    } else if (kind < 82) {
      session->Refresh();
      EXPECT_TRUE(
          session->Find(next_id + 1 + rng.Uniform(1000)).status().IsNotFound())
          << where;
    } else {
      session->Refresh();
      NodeId id = pick();
      auto succs = session->GetSuccessors(id);
      ASSERT_TRUE(succs.ok()) << where << ": " << succs.status().ToString();
      std::vector<NodeId> got;
      for (const NodeRecord& r : *succs) got.push_back(r.id);
      std::sort(got.begin(), got.end());
      std::vector<NodeId> want;
      for (const AdjEntry& e : net.node(id).succ) want.push_back(e.node);
      std::sort(want.begin(), want.end());
      EXPECT_EQ(got, want) << where;
    }
    // Interleave background reorganizations: kick one off every ~150 ops,
    // right in the middle of the mutation stream.
    if (i % 150 == 25 && !mgr->ReorgActive()) {
      Status st = mgr->StartBackgroundReorg();
      ASSERT_TRUE(st.ok() || st.IsAlreadyExists()) << st.ToString();
      if (st.ok()) ++reorgs_started;
    }
    // Periodically drain the swap and audit the complete state: every
    // mutation acked before the swap must still be visible after it.
    if (i % 500 == 499) {
      ASSERT_TRUE(mgr->WaitForReorg().ok());
      session->Refresh();
      ExpectSessionMatchesOracle(session.get(), net, where + " (post-swap)");
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
  ASSERT_TRUE(mgr->WaitForReorg().ok());
  EXPECT_GT(reorgs_started, 0) << "workload never exercised a swap";
  EXPECT_GE(mgr->ReorgCount(), static_cast<uint64_t>(reorgs_started));
  session->Refresh();
  ExpectSessionMatchesOracle(session.get(), net, "final");
  ASSERT_TRUE(mgr->CheckConsistency().ok());

  // Acked mutations must also survive closing and recovering the store:
  // reopen from disk alone and audit against the same oracle.
  session.reset();
  created->reset();
  auto reopened = SnapshotManager::Open(sopt);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  std::unique_ptr<SnapshotSession> again = (*reopened)->OpenSession();
  ExpectSessionMatchesOracle(again.get(), net, "reopened");
  ASSERT_TRUE((*reopened)->CheckConsistency().ok());
}

}  // namespace
}  // namespace ccam
