// Delta-log recovery fuzz under a concurrent reader: every torn-tail cut
// of the log recovers exactly the acked mutations whose frames survived
// complete (the crash contract), mid-record CRC damage inside the durable
// region fails loudly with a typed Corruption — never a silent blend —
// and a snapshot session pinned to the old version keeps serving its
// frozen view throughout, unaffected by on-disk damage to the log.

#include "src/storage/delta_log.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/coding.h"
#include "src/graph/generator.h"
#include "src/storage/snapshot_manager.h"

namespace ccam {
namespace {

namespace fs = std::filesystem;

std::string TempDirFor(const std::string& leaf) {
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = std::string(tmp != nullptr ? tmp : "/tmp") + "/" + leaf;
  std::error_code ec;
  fs::remove_all(dir, ec);
  return dir;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << path;
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

// Byte offsets where each complete frame of `bytes` ends.
std::vector<size_t> FrameBoundaries(const std::string& bytes) {
  std::vector<size_t> ends;
  size_t pos = 0;
  while (pos + DeltaLog::kFrameHeaderSize <= bytes.size()) {
    uint32_t length = DecodeFixed32(bytes.data() + pos + 9);
    size_t frame = DeltaLog::kFrameHeaderSize + length +
                   DeltaLog::kFrameTrailerSize;
    if (pos + frame > bytes.size()) break;
    pos += frame;
    ends.push_back(pos);
  }
  return ends;
}

// --- ScanFile-level fuzz: every cut point, every damaged frame ----------

TEST(DeltaLogRecoveryTest, EveryTornTailCutRecoversTheCompletePrefix) {
  std::string dir = TempDirFor("ccam_dlog_cuts");
  fs::create_directories(dir);
  std::vector<DeltaRecord> records;
  for (uint64_t i = 1; i <= 12; ++i) {
    DeltaRecord r;
    r.kind = DeltaRecord::Kind::kInsertEdge;
    r.lsn = i;
    r.u = static_cast<NodeId>(i);
    r.v = static_cast<NodeId>(i + 100);
    r.cost = 1.5f * static_cast<float>(i);
    records.push_back(r);
  }
  std::string log_path = dir + "/delta.log";
  ASSERT_TRUE(DeltaLog::WriteAll(log_path, records).ok());
  std::string bytes = ReadFileBytes(log_path);
  std::vector<size_t> ends = FrameBoundaries(bytes);
  ASSERT_EQ(ends.size(), records.size());

  // Cut the file at EVERY byte length and scan: the decoded prefix must be
  // exactly the records whose frames survived complete, and valid_bytes
  // must point at the last complete frame's end.
  std::string cut_path = dir + "/cut.log";
  for (size_t cut = 0; cut <= bytes.size(); ++cut) {
    WriteFileBytes(cut_path, bytes.substr(0, cut));
    size_t valid = 0;
    auto scan = DeltaLog::ScanFile(cut_path, &valid);
    ASSERT_TRUE(scan.ok()) << "cut=" << cut << ": "
                           << scan.status().ToString();
    size_t survivors = 0;
    while (survivors < ends.size() && ends[survivors] <= cut) ++survivors;
    ASSERT_EQ(scan->size(), survivors) << "cut=" << cut;
    EXPECT_EQ(valid, survivors == 0 ? 0 : ends[survivors - 1])
        << "cut=" << cut;
    for (size_t i = 0; i < survivors; ++i) {
      EXPECT_EQ((*scan)[i].lsn, records[i].lsn);
      EXPECT_EQ((*scan)[i].u, records[i].u);
      EXPECT_EQ((*scan)[i].v, records[i].v);
    }
  }
  std::error_code ec;
  fs::remove_all(dir, ec);
}

TEST(DeltaLogRecoveryTest, MidRecordDamageIsTypedCorruptionNeverSilent) {
  std::string dir = TempDirFor("ccam_dlog_damage");
  fs::create_directories(dir);
  std::vector<DeltaRecord> records;
  for (uint64_t i = 1; i <= 6; ++i) {
    DeltaRecord r;
    r.kind = DeltaRecord::Kind::kDeleteEdge;
    r.lsn = i;
    r.u = static_cast<NodeId>(i);
    r.v = static_cast<NodeId>(i + 7);
    records.push_back(r);
  }
  std::string log_path = dir + "/delta.log";
  ASSERT_TRUE(DeltaLog::WriteAll(log_path, records).ok());
  const std::string bytes = ReadFileBytes(log_path);
  std::vector<size_t> ends = FrameBoundaries(bytes);
  ASSERT_EQ(ends.size(), records.size());

  // Flip one byte at a time inside frames 2 and 4 — header, payload and
  // trailer positions alike. Damage must never decode as the full record
  // set or as garbage: either the scan fails with a typed Corruption, or
  // (when the flipped byte is in a length field, making the damage
  // indistinguishable from a torn tail) it decodes a clean, strictly
  // shorter prefix ending before the damaged frame.
  std::string hurt_path = dir + "/hurt.log";
  size_t corruptions = 0;
  for (size_t frame : {size_t{1}, size_t{3}}) {
    size_t begin = ends[frame - 1];
    for (size_t at = begin; at < ends[frame]; ++at) {
      std::string damaged = bytes;
      damaged[at] = static_cast<char>(damaged[at] ^ 0x40);
      WriteFileBytes(hurt_path, damaged);
      auto scan = DeltaLog::ScanFile(hurt_path);
      if (!scan.ok()) {
        EXPECT_TRUE(scan.status().IsCorruption())
            << "frame=" << frame << " at=" << at << ": "
            << scan.status().ToString();
        ++corruptions;
        continue;
      }
      ASSERT_LE(scan->size(), frame) << "frame=" << frame << " at=" << at;
      for (size_t i = 0; i < scan->size(); ++i) {
        EXPECT_EQ((*scan)[i].lsn, records[i].lsn);
        EXPECT_EQ((*scan)[i].u, records[i].u);
        EXPECT_EQ((*scan)[i].v, records[i].v);
      }
    }
  }
  // CRC damage (the common case) really is reported loudly.
  EXPECT_GT(corruptions, 20u);
  std::error_code ec;
  fs::remove_all(dir, ec);
}

// --- Store-level recovery while a session holds the old version ---------

TEST(DeltaLogRecoveryTest, StoreRecoveryUnderConcurrentReaderSession) {
  SnapshotOptions sopt;
  sopt.am.page_size = 1024;
  sopt.am.buffer_pool_pages = 8;
  sopt.am.num_threads = 1;
  sopt.dir = TempDirFor("ccam_dlog_store");
  Network net = GenerateRandomGeometricNetwork(120, 150.0, 1000.0, 77);
  auto mgr = SnapshotManager::Create(sopt, net);
  ASSERT_TRUE(mgr.ok()) << mgr.status().ToString();
  SnapshotManager* store = mgr->get();

  // A reader pins the PRE-mutation version and hammers it for the whole
  // test: its frozen view must stay fully readable no matter what lands in
  // the log or what recovery does to copies of the store on disk.
  std::vector<NodeId> ids = net.NodeIds();
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reader_errors{0};
  std::thread reader([&] {
    std::unique_ptr<SnapshotSession> session = store->OpenSession();
    while (!stop.load(std::memory_order_acquire)) {
      for (NodeId id : ids) {
        auto rec = session->Find(id);
        if (!rec.ok() || rec->id != id) {
          reader_errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
  });
  // Joins the reader even when an ASSERT unwinds the test body early.
  struct StopJoin {
    std::atomic<bool>* stop;
    std::thread* thread;
    ~StopJoin() {
      stop->store(true, std::memory_order_release);
      if (thread->joinable()) thread->join();
    }
  } guard{&stop, &reader};

  // Acked mutations: every one of these returned OK, so every one's frame
  // is durable in delta.log (Flush is the ack barrier).
  std::vector<std::pair<NodeId, NodeId>> acked;
  const size_t half = ids.size() / 2;
  // Pair ids half the id space apart: the generator assigns ids in spatial
  // order, so these pairs are far apart and the new edges don't exist yet.
  for (size_t i = 0; i + half < ids.size() && acked.size() < 16; i += 3) {
    NodeId u = ids[i], v = ids[i + half];
    if (net.HasEdge(u, v)) continue;
    Status s = store->InsertEdge(u, v, 3.25f);
    ASSERT_TRUE(s.ok()) << s.ToString();
    acked.emplace_back(u, v);
  }
  ASSERT_GE(acked.size(), 8u);

  const std::string log_bytes = ReadFileBytes(sopt.dir + "/delta.log");
  std::vector<size_t> ends = FrameBoundaries(log_bytes);
  ASSERT_EQ(ends.size(), acked.size());

  // Fuzz torn tails at the store level: copy the live store, cut its log
  // mid-frame, and Open the copy. Recovery must land on exactly the acked
  // prefix whose frames survived — and the physical file must be truncated
  // to the valid prefix so post-recovery appends are readable.
  for (size_t survivors : {size_t{0}, acked.size() / 2, acked.size()}) {
    SCOPED_TRACE("survivors=" + std::to_string(survivors));
    std::string copy = TempDirFor("ccam_dlog_store_cut");
    fs::copy(sopt.dir, copy);
    size_t keep = survivors == 0 ? 0 : ends[survivors - 1];
    // A torn tail: the complete prefix plus half of the next frame.
    size_t cut = keep < log_bytes.size()
                     ? keep + (ends[survivors] - keep) / 2
                     : keep;
    WriteFileBytes(copy + "/delta.log", log_bytes.substr(0, cut));

    SnapshotOptions copt = sopt;
    copt.dir = copy;
    auto reopened = SnapshotManager::Open(copt);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ(fs::file_size(copy + "/delta.log"), keep);  // tail chopped
    std::unique_ptr<SnapshotSession> session = (*reopened)->OpenSession();
    for (size_t i = 0; i < acked.size(); ++i) {
      // GetASuccessor degenerates to a record read, so probe edge
      // presence the honest way: read the source node and scan its
      // successor list for the target.
      auto rec = session->Find(acked[i].first);
      ASSERT_TRUE(rec.ok()) << rec.status().ToString();
      bool present = false;
      for (const auto& adj : rec->succ) {
        if (adj.node == acked[i].second) present = true;
      }
      if (i < survivors) {
        EXPECT_TRUE(present) << "acked edge " << i << " lost";
      } else {
        EXPECT_FALSE(present) << "unacked edge " << i << " resurrected";
      }
    }
    session.reset();
    reopened->reset();
    std::error_code ec;
    fs::remove_all(copy, ec);
  }

  // Mid-record CRC damage in the durable region: Open must refuse with a
  // typed Corruption, not recover a blend.
  {
    std::string copy = TempDirFor("ccam_dlog_store_crc");
    fs::copy(sopt.dir, copy);
    std::string damaged = log_bytes;
    size_t at = ends[1] - 2;  // inside frame 2's CRC trailer
    damaged[at] = static_cast<char>(damaged[at] ^ 0x01);
    WriteFileBytes(copy + "/delta.log", damaged);
    SnapshotOptions copt = sopt;
    copt.dir = copy;
    auto reopened = SnapshotManager::Open(copt);
    ASSERT_FALSE(reopened.ok());
    EXPECT_TRUE(reopened.status().IsCorruption())
        << reopened.status().ToString();
    std::error_code ec;
    fs::remove_all(copy, ec);
  }

  stop.store(true, std::memory_order_release);
  reader.join();
  // The pinned session never saw a single failed or wrong read.
  EXPECT_EQ(reader_errors.load(), 0u);

  std::error_code ec;
  fs::remove_all(sopt.dir, ec);
}

}  // namespace
}  // namespace ccam
