#ifndef CCAM_GRAPH_GRAPH_IO_H_
#define CCAM_GRAPH_GRAPH_IO_H_

#include <string>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/graph/network.h"

namespace ccam {

/// Plain-text network exchange format:
///
///   # comment lines start with '#'
///   n <id> <x> <y> [payload-hex]
///   e <u> <v> <cost> [weight]
///
/// Node lines must precede the edge lines that reference them. Weights are
/// optional and default to 1 (the uniform case).
Status SaveNetwork(const Network& network, const std::string& path);

Result<Network> LoadNetwork(const std::string& path);

/// Serialize / parse through strings (used by tests and for embedding).
std::string NetworkToString(const Network& network);
Result<Network> NetworkFromString(const std::string& text);

}  // namespace ccam

#endif  // CCAM_GRAPH_GRAPH_IO_H_
