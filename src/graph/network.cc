#include "src/graph/network.h"

#include <algorithm>
#include <queue>
#include <set>
#include <unordered_set>

namespace ccam {

namespace {

bool ListContains(const std::vector<AdjEntry>& list, NodeId id) {
  return std::any_of(list.begin(), list.end(),
                     [id](const AdjEntry& e) { return e.node == id; });
}

void ListErase(std::vector<AdjEntry>* list, NodeId id) {
  list->erase(std::remove_if(list->begin(), list->end(),
                             [id](const AdjEntry& e) { return e.node == id; }),
              list->end());
}

}  // namespace

Status Network::AddNode(NodeId id, double x, double y, std::string payload) {
  if (id == kInvalidNodeId) {
    return Status::InvalidArgument("reserved node-id");
  }
  auto [it, inserted] = nodes_.try_emplace(id);
  if (!inserted) {
    return Status::AlreadyExists("node " + std::to_string(id));
  }
  it->second.x = x;
  it->second.y = y;
  it->second.payload = std::move(payload);
  return Status::OK();
}

Status Network::RemoveNode(NodeId id) {
  auto it = nodes_.find(id);
  if (it == nodes_.end()) {
    return Status::NotFound("node " + std::to_string(id));
  }
  // Detach incident edges from the neighbors' lists.
  for (const AdjEntry& e : it->second.succ) {
    ListErase(&nodes_.at(e.node).pred, id);
    edge_weights_.erase(EdgeKey(id, e.node));
    --num_edges_;
  }
  for (const AdjEntry& e : it->second.pred) {
    ListErase(&nodes_.at(e.node).succ, id);
    edge_weights_.erase(EdgeKey(e.node, id));
    --num_edges_;
  }
  nodes_.erase(it);
  return Status::OK();
}

Status Network::AddEdge(NodeId u, NodeId v, float cost) {
  if (u == v) return Status::InvalidArgument("self-loop");
  auto uit = nodes_.find(u);
  auto vit = nodes_.find(v);
  if (uit == nodes_.end() || vit == nodes_.end()) {
    return Status::NotFound("edge endpoint missing");
  }
  if (ListContains(uit->second.succ, v)) {
    return Status::AlreadyExists("edge (" + std::to_string(u) + "," +
                                 std::to_string(v) + ")");
  }
  uit->second.succ.push_back({v, cost});
  vit->second.pred.push_back({u, cost});
  ++num_edges_;
  return Status::OK();
}

Status Network::AddBidirectionalEdge(NodeId u, NodeId v, float cost) {
  CCAM_RETURN_NOT_OK(AddEdge(u, v, cost));
  return AddEdge(v, u, cost);
}

Status Network::RemoveEdge(NodeId u, NodeId v) {
  auto uit = nodes_.find(u);
  auto vit = nodes_.find(v);
  if (uit == nodes_.end() || vit == nodes_.end() ||
      !ListContains(uit->second.succ, v)) {
    return Status::NotFound("edge (" + std::to_string(u) + "," +
                            std::to_string(v) + ")");
  }
  ListErase(&uit->second.succ, v);
  ListErase(&vit->second.pred, u);
  edge_weights_.erase(EdgeKey(u, v));
  --num_edges_;
  return Status::OK();
}

bool Network::HasEdge(NodeId u, NodeId v) const {
  auto it = nodes_.find(u);
  return it != nodes_.end() && ListContains(it->second.succ, v);
}

Status Network::EdgeCost(NodeId u, NodeId v, float* cost) const {
  auto it = nodes_.find(u);
  if (it != nodes_.end()) {
    for (const AdjEntry& e : it->second.succ) {
      if (e.node == v) {
        *cost = e.cost;
        return Status::OK();
      }
    }
  }
  return Status::NotFound("edge (" + std::to_string(u) + "," +
                          std::to_string(v) + ")");
}

std::vector<NodeId> Network::NodeIds() const {
  std::vector<NodeId> ids;
  ids.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) ids.push_back(id);
  return ids;
}

std::vector<Network::EdgeRecord> Network::Edges() const {
  std::vector<EdgeRecord> edges;
  edges.reserve(num_edges_);
  for (const auto& [id, node] : nodes_) {
    for (const AdjEntry& e : node.succ) {
      edges.push_back({id, e.node, e.cost});
    }
  }
  std::sort(edges.begin(), edges.end(),
            [](const EdgeRecord& a, const EdgeRecord& b) {
              return a.from != b.from ? a.from < b.from : a.to < b.to;
            });
  return edges;
}

std::vector<NodeId> Network::Neighbors(NodeId id) const {
  std::set<NodeId> out;
  const NetworkNode& n = nodes_.at(id);
  for (const AdjEntry& e : n.succ) out.insert(e.node);
  for (const AdjEntry& e : n.pred) out.insert(e.node);
  return {out.begin(), out.end()};
}

void Network::SetEdgeWeight(NodeId u, NodeId v, double w) {
  edge_weights_[EdgeKey(u, v)] = w;
}

double Network::EdgeWeight(NodeId u, NodeId v) const {
  auto it = edge_weights_.find(EdgeKey(u, v));
  return it != edge_weights_.end() ? it->second : 1.0;
}

void Network::ClearEdgeWeights() { edge_weights_.clear(); }

double Network::TotalEdgeWeight() const {
  double total = 0.0;
  for (const auto& [id, node] : nodes_) {
    for (const AdjEntry& e : node.succ) total += EdgeWeight(id, e.node);
  }
  return total;
}

double Network::AvgOutDegree() const {
  if (nodes_.empty()) return 0.0;
  return static_cast<double>(num_edges_) / static_cast<double>(nodes_.size());
}

double Network::AvgNeighborListSize() const {
  if (nodes_.empty()) return 0.0;
  size_t total = 0;
  for (const auto& [id, node] : nodes_) {
    std::set<NodeId> nbrs;
    for (const AdjEntry& e : node.succ) nbrs.insert(e.node);
    for (const AdjEntry& e : node.pred) nbrs.insert(e.node);
    total += nbrs.size();
  }
  return static_cast<double>(total) / static_cast<double>(nodes_.size());
}

Network Network::InducedSubnetwork(const std::vector<NodeId>& subset) const {
  std::unordered_set<NodeId> keep(subset.begin(), subset.end());
  Network sub;
  for (NodeId id : subset) {
    auto it = nodes_.find(id);
    if (it == nodes_.end()) continue;
    (void)sub.AddNode(id, it->second.x, it->second.y, it->second.payload);
  }
  for (NodeId id : subset) {
    auto it = nodes_.find(id);
    if (it == nodes_.end()) continue;
    for (const AdjEntry& e : it->second.succ) {
      if (keep.count(e.node)) {
        (void)sub.AddEdge(id, e.node, e.cost);
        auto wit = edge_weights_.find(EdgeKey(id, e.node));
        if (wit != edge_weights_.end()) {
          sub.SetEdgeWeight(id, e.node, wit->second);
        }
      }
    }
  }
  return sub;
}

bool Network::IsWeaklyConnected() const {
  if (nodes_.empty()) return true;
  std::unordered_set<NodeId> seen;
  std::queue<NodeId> frontier;
  NodeId start = nodes_.begin()->first;
  frontier.push(start);
  seen.insert(start);
  while (!frontier.empty()) {
    NodeId cur = frontier.front();
    frontier.pop();
    const NetworkNode& n = nodes_.at(cur);
    auto visit = [&](NodeId next) {
      if (seen.insert(next).second) frontier.push(next);
    };
    for (const AdjEntry& e : n.succ) visit(e.node);
    for (const AdjEntry& e : n.pred) visit(e.node);
  }
  return seen.size() == nodes_.size();
}

}  // namespace ccam
