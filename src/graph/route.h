#ifndef CCAM_GRAPH_ROUTE_H_
#define CCAM_GRAPH_ROUTE_H_

#include <cstdint>
#include <vector>

#include "src/graph/network.h"

namespace ccam {

/// A route: a sequence of nodes n1..nk connected by the directed edges
/// (n1,n2), ..., (n(k-1), nk). A route of length L has L nodes and L-1
/// edges, matching the paper's definition (Section 4.3).
struct Route {
  std::vector<NodeId> nodes;

  size_t Length() const { return nodes.size(); }
  bool Empty() const { return nodes.empty(); }
};

/// Returns true if every consecutive pair of `route` is a directed edge of
/// `network`.
bool IsValidRoute(const Network& network, const Route& route);

/// Generates `count` routes of exactly `length` nodes each by random walks
/// on the network (the paper's workload for Figure 6). A walk avoids
/// immediately backtracking over the edge it just traversed when another
/// successor exists; walks that hit a dead end are restarted from a new
/// random origin so that every returned route has the requested length.
std::vector<Route> GenerateRandomWalkRoutes(const Network& network, int count,
                                            int length, uint64_t seed);

/// Derives edge access weights from a set of routes: w(u,v) = number of
/// times edge (u,v) is traversed across all routes (paper Section 4.3).
/// Edges never traversed get weight 0. Weights are written into `network`.
void DeriveEdgeWeightsFromRoutes(Network* network,
                                 const std::vector<Route>& routes);

/// Generates `count` shortest-path routes between random origin/
/// destination pairs (in-memory Dijkstra) — the commuter workload the
/// paper's IVHS scenario motivates, as a more realistic alternative to
/// random walks. Unreachable OD pairs are redrawn; routes shorter than
/// `min_length` nodes are discarded and redrawn (give up after enough
/// attempts, so fewer than `count` routes may return on tiny networks).
std::vector<Route> GenerateShortestPathRoutes(const Network& network,
                                              int count, int min_length,
                                              uint64_t seed);

}  // namespace ccam

#endif  // CCAM_GRAPH_ROUTE_H_
