#ifndef CCAM_GRAPH_NETWORK_H_
#define CCAM_GRAPH_NETWORK_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"

namespace ccam {

/// Identifier of a network node. The benchmark generators assign node-ids in
/// Z-order of the node coordinates, matching the paper's convention that
/// "the Z-order of the node-id values" orders the secondary index.
using NodeId = uint32_t;

constexpr NodeId kInvalidNodeId = UINT32_MAX;

/// One directed edge endpoint as stored in a successor or predecessor list:
/// the opposite node and the edge cost (e.g. travel time).
struct AdjEntry {
  NodeId node = kInvalidNodeId;
  float cost = 0.0f;

  friend bool operator==(const AdjEntry& a, const AdjEntry& b) {
    return a.node == b.node && a.cost == b.cost;
  }
};

/// A network node: spatial position, an opaque attribute payload, and the
/// adjacency lists. `succ` holds outgoing edges (the adjacency list used by
/// network computations); `pred` holds incoming edges and exists to make
/// Insert()/Delete() able to patch the successor lists of neighbors.
struct NetworkNode {
  double x = 0.0;
  double y = 0.0;
  std::string payload;
  std::vector<AdjEntry> succ;
  std::vector<AdjEntry> pred;
};

/// Packs a directed edge (u,v) into a 64-bit key for weight lookup tables.
inline uint64_t EdgeKey(NodeId u, NodeId v) {
  return (static_cast<uint64_t>(u) << 32) | v;
}

/// In-memory model of a transportation network: a directed graph with
/// spatial node positions, per-edge traversal costs, and per-edge access
/// weights w(u,v) (the relative frequency with which a query accesses u and
/// v together — the numerator/denominator terms of WCRR).
///
/// The Network is the logical view of the data; the access methods in
/// src/core and src/baseline materialize it into paged files.
class Network {
 public:
  Network() = default;

  // Copyable: experiments clone a network before mutating it.
  Network(const Network&) = default;
  Network& operator=(const Network&) = default;
  Network(Network&&) = default;
  Network& operator=(Network&&) = default;

  /// Adds an isolated node. Fails with AlreadyExists if `id` is present.
  Status AddNode(NodeId id, double x, double y, std::string payload = {});

  /// Removes a node and all incident edges. Fails with NotFound if absent.
  Status RemoveNode(NodeId id);

  /// Adds the directed edge (u,v). Both endpoints must exist; duplicate
  /// edges are rejected with AlreadyExists.
  Status AddEdge(NodeId u, NodeId v, float cost);

  /// Adds both (u,v) and (v,u) with the same cost (a two-way street).
  Status AddBidirectionalEdge(NodeId u, NodeId v, float cost);

  /// Removes the directed edge (u,v). Fails with NotFound if absent.
  Status RemoveEdge(NodeId u, NodeId v);

  bool HasNode(NodeId id) const { return nodes_.count(id) > 0; }
  bool HasEdge(NodeId u, NodeId v) const;

  /// Returns the cost of edge (u,v); NotFound if the edge does not exist.
  Status EdgeCost(NodeId u, NodeId v, float* cost) const;

  const NetworkNode& node(NodeId id) const { return nodes_.at(id); }

  size_t NumNodes() const { return nodes_.size(); }
  /// Number of directed edges.
  size_t NumEdges() const { return num_edges_; }

  /// Node-ids in ascending order (deterministic iteration).
  std::vector<NodeId> NodeIds() const;

  /// All directed edges (u,v,cost), ordered by (u,v).
  struct EdgeRecord {
    NodeId from;
    NodeId to;
    float cost;
  };
  std::vector<EdgeRecord> Edges() const;

  /// The neighbor-list of `id` per the paper: the set of distinct nodes
  /// appearing in its successor-list or predecessor-list.
  std::vector<NodeId> Neighbors(NodeId id) const;

  /// --- Edge access weights (WCRR) -------------------------------------
  /// The access weight defaults to 1.0 for every edge (uniform case).
  void SetEdgeWeight(NodeId u, NodeId v, double w);
  double EdgeWeight(NodeId u, NodeId v) const;
  /// Resets all explicit weights back to the uniform default.
  void ClearEdgeWeights();
  /// Sum of w(u,v) over all directed edges.
  double TotalEdgeWeight() const;

  /// --- Statistics -------------------------------------------------------
  /// |A| in the paper: average successor-list length.
  double AvgOutDegree() const;
  /// lambda in the paper: average neighbor-list size.
  double AvgNeighborListSize() const;

  /// Builds the subnetwork induced by `subset` (nodes in subset plus all
  /// edges whose both endpoints lie in subset). Edge weights carry over.
  Network InducedSubnetwork(const std::vector<NodeId>& subset) const;

  /// True if the network is weakly connected (or empty).
  bool IsWeaklyConnected() const;

 private:
  std::map<NodeId, NetworkNode> nodes_;
  std::unordered_map<uint64_t, double> edge_weights_;  // only non-default
  size_t num_edges_ = 0;
};

}  // namespace ccam

#endif  // CCAM_GRAPH_NETWORK_H_
