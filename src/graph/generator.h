#ifndef CCAM_GRAPH_GENERATOR_H_
#define CCAM_GRAPH_GENERATOR_H_

#include <cstdint>

#include "src/graph/network.h"

namespace ccam {

/// Options for the synthetic road-map generator. The defaults are tuned so
/// that GenerateMinneapolisLikeMap() reproduces the statistics of the
/// Minneapolis road map used in the paper (1079 nodes, 3057 directed edges,
/// average successor-list size |A| ~= 2.83, average neighbor-list size
/// lambda ~= 3.2).
struct RoadMapOptions {
  int rows = 33;
  int cols = 33;
  /// Probability that a grid-adjacent street exists at all.
  double street_keep_prob = 0.77;
  /// Probability that an existing street is one-way (single directed edge).
  double oneway_fraction = 0.12;
  /// Spacing between grid lines in coordinate units.
  double spacing = 100.0;
  /// Positional jitter as a fraction of spacing (intersections are not on a
  /// perfect grid in a real city).
  double jitter = 0.25;
  /// Multiplicative spread applied to the Euclidean edge cost, modeling
  /// differing speeds/congestion: cost = distance * U(1-s, 1+s).
  double cost_spread = 0.3;
  /// Number of attribute bytes stored in each node's payload (tunes the
  /// record size / blocking factor).
  int payload_bytes = 8;
  /// Nodes removed at random after generation (a real map is not a perfect
  /// rectangle). 33*33 - 10 = 1079 nodes, the paper's node count.
  int nodes_to_remove = 10;
  uint64_t seed = 1995;
};

/// Generates a synthetic road map: a jittered grid with pruned streets and a
/// mix of one-way and two-way streets, patched to be weakly connected.
/// Node-ids are assigned in Z-order of the node coordinates, matching the
/// paper's secondary-index convention.
Network GenerateRoadMap(const RoadMapOptions& options);

/// The paper's evaluation network: a road map with the statistics of the
/// Minneapolis map (1079 nodes / ~3057 directed edges). This is the
/// substitution documented in DESIGN.md: the original map is proprietary,
/// and CRR/I-O behavior depends only on connectivity structure.
Network GenerateMinneapolisLikeMap(uint64_t seed = 1995);

/// Generates a random geometric network: `n` nodes uniform in the
/// [0, extent]^2 square, two-way edges between all pairs closer than
/// `radius`, edge cost = Euclidean distance. Used for scale experiments.
Network GenerateRandomGeometricNetwork(int n, double radius,
                                       double extent = 1000.0,
                                       uint64_t seed = 7);

/// Generates a ring-radial city (the classic European street plan):
/// `rings` concentric ring roads crossed by `radials` avenues, all two-way
/// streets, plus a center node joined to the innermost ring. Node-ids are
/// Z-ordered; edge cost = arc/segment length.
Network GenerateRingRadialCity(int rings, int radials,
                               double ring_spacing = 100.0,
                               uint64_t seed = 13);

/// Generates a scale-free network by preferential attachment (Barabási-
/// Albert, m edges per new node), with nodes placed at random positions.
/// Exercises CCAM on a decidedly non-planar "general network": hubs make
/// low cuts impossible, so every method's CRR drops — but the ordering is
/// preserved.
Network GenerateScaleFreeNetwork(int n, int edges_per_node = 2,
                                 double extent = 1000.0, uint64_t seed = 29);

}  // namespace ccam

#endif  // CCAM_GRAPH_GENERATOR_H_
