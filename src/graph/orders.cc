#include "src/graph/orders.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace ccam {

namespace {

/// Undirected adjacency of `id`: distinct neighbors, with the maximum access
/// weight over the (up to two) directed edges between the pair.
struct WeightedNeighbor {
  NodeId node;
  double weight;
};

std::vector<WeightedNeighbor> UndirectedNeighbors(const Network& network,
                                                  NodeId id) {
  std::vector<WeightedNeighbor> out;
  const NetworkNode& n = network.node(id);
  auto add = [&](NodeId other, double w) {
    for (WeightedNeighbor& existing : out) {
      if (existing.node == other) {
        existing.weight = std::max(existing.weight, w);
        return;
      }
    }
    out.push_back({other, w});
  };
  for (const AdjEntry& e : n.succ) add(e.node, network.EdgeWeight(id, e.node));
  for (const AdjEntry& e : n.pred) add(e.node, network.EdgeWeight(e.node, id));
  return out;
}

enum class Flavor { kDfs, kBfs, kWeightedDfs };

std::vector<NodeId> Traverse(const Network& network, NodeId start,
                             Flavor flavor) {
  std::vector<NodeId> all = network.NodeIds();
  std::vector<NodeId> order;
  order.reserve(all.size());
  std::unordered_set<NodeId> visited;

  auto run_from = [&](NodeId origin) {
    if (visited.count(origin)) return;
    if (flavor == Flavor::kBfs) {
      std::deque<NodeId> queue{origin};
      visited.insert(origin);
      while (!queue.empty()) {
        NodeId cur = queue.front();
        queue.pop_front();
        order.push_back(cur);
        auto nbrs = UndirectedNeighbors(network, cur);
        std::sort(nbrs.begin(), nbrs.end(),
                  [](const WeightedNeighbor& a, const WeightedNeighbor& b) {
                    return a.node < b.node;
                  });
        for (const WeightedNeighbor& nb : nbrs) {
          if (visited.insert(nb.node).second) queue.push_back(nb.node);
        }
      }
    } else {
      std::vector<NodeId> stack{origin};
      while (!stack.empty()) {
        NodeId cur = stack.back();
        stack.pop_back();
        if (!visited.insert(cur).second) continue;
        order.push_back(cur);
        auto nbrs = UndirectedNeighbors(network, cur);
        if (flavor == Flavor::kWeightedDfs) {
          // Explore highest weight first => push it last onto the stack.
          std::sort(nbrs.begin(), nbrs.end(),
                    [](const WeightedNeighbor& a, const WeightedNeighbor& b) {
                      if (a.weight != b.weight) return a.weight < b.weight;
                      return a.node > b.node;
                    });
        } else {
          // Explore lowest id first => push descending ids.
          std::sort(nbrs.begin(), nbrs.end(),
                    [](const WeightedNeighbor& a, const WeightedNeighbor& b) {
                      return a.node > b.node;
                    });
        }
        for (const WeightedNeighbor& nb : nbrs) {
          if (!visited.count(nb.node)) stack.push_back(nb.node);
        }
      }
    }
  };

  if (network.HasNode(start)) run_from(start);
  for (NodeId id : all) run_from(id);
  return order;
}

}  // namespace

std::vector<NodeId> DfsOrder(const Network& network, NodeId start) {
  return Traverse(network, start, Flavor::kDfs);
}

std::vector<NodeId> BfsOrder(const Network& network, NodeId start) {
  return Traverse(network, start, Flavor::kBfs);
}

std::vector<NodeId> WeightedDfsOrder(const Network& network, NodeId start) {
  return Traverse(network, start, Flavor::kWeightedDfs);
}

}  // namespace ccam
