#ifndef CCAM_GRAPH_ORDERS_H_
#define CCAM_GRAPH_ORDERS_H_

#include <cstdint>
#include <vector>

#include "src/graph/network.h"

namespace ccam {

/// Node orderings used by the topological-ordering baseline access methods
/// (DFS-AM, BFS-AM, WDFS-AM in the paper's Section 4). Traversals treat the
/// network as undirected (successor and predecessor links both count as
/// adjacency) so that weakly-connected road maps are fully covered; any
/// nodes unreachable from `start` are appended by continuing the traversal
/// from the lowest-id unvisited node.

/// Depth-first order from `start`; neighbors are visited in ascending id
/// order (deterministic).
std::vector<NodeId> DfsOrder(const Network& network, NodeId start);

/// Breadth-first order from `start`.
std::vector<NodeId> BfsOrder(const Network& network, NodeId start);

/// Depth-first order that explores neighbors in descending edge access
/// weight (the paper's WDFS-AM variant); ties break on ascending id.
std::vector<NodeId> WeightedDfsOrder(const Network& network, NodeId start);

}  // namespace ccam

#endif  // CCAM_GRAPH_ORDERS_H_
