#include "src/graph/route.h"

#include <algorithm>
#include <queue>
#include <unordered_map>

#include "src/common/random.h"

namespace ccam {

bool IsValidRoute(const Network& network, const Route& route) {
  for (NodeId id : route.nodes) {
    if (!network.HasNode(id)) return false;
  }
  for (size_t i = 0; i + 1 < route.nodes.size(); ++i) {
    if (!network.HasEdge(route.nodes[i], route.nodes[i + 1])) return false;
  }
  return true;
}

std::vector<Route> GenerateRandomWalkRoutes(const Network& network, int count,
                                            int length, uint64_t seed) {
  Random rng(seed);
  std::vector<NodeId> ids = network.NodeIds();
  std::vector<Route> routes;
  if (ids.empty() || length <= 0) return routes;
  routes.reserve(count);

  const int kMaxAttemptsPerRoute = 1000;
  while (static_cast<int>(routes.size()) < count) {
    Route route;
    int attempts = 0;
    while (static_cast<int>(route.nodes.size()) < length) {
      if (route.nodes.empty()) {
        if (++attempts > kMaxAttemptsPerRoute) break;
        route.nodes.push_back(ids[rng.Uniform(
            static_cast<uint32_t>(ids.size()))]);
        continue;
      }
      NodeId cur = route.nodes.back();
      const NetworkNode& node = network.node(cur);
      if (node.succ.empty()) {
        route.nodes.clear();  // dead end: restart from a new origin
        continue;
      }
      NodeId prev = route.nodes.size() >= 2
                        ? route.nodes[route.nodes.size() - 2]
                        : kInvalidNodeId;
      // Prefer not to immediately backtrack when another choice exists.
      std::vector<NodeId> choices;
      choices.reserve(node.succ.size());
      for (const AdjEntry& e : node.succ) {
        if (e.node != prev) choices.push_back(e.node);
      }
      if (choices.empty()) choices.push_back(prev);
      route.nodes.push_back(
          choices[rng.Uniform(static_cast<uint32_t>(choices.size()))]);
    }
    if (static_cast<int>(route.nodes.size()) == length) {
      routes.push_back(std::move(route));
    } else {
      break;  // network too degenerate to produce routes of this length
    }
  }
  return routes;
}

namespace {

/// In-memory Dijkstra for workload generation (queries over the paged
/// file use src/query/search.h instead).
std::vector<NodeId> ShortestPathNodes(const Network& network, NodeId src,
                                      NodeId dst) {
  std::unordered_map<NodeId, double> dist;
  std::unordered_map<NodeId, NodeId> parent;
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<Item>> open;
  open.push({0.0, src});
  dist[src] = 0.0;
  while (!open.empty()) {
    auto [d, u] = open.top();
    open.pop();
    if (d > dist[u] + 1e-12) continue;
    if (u == dst) break;
    for (const AdjEntry& e : network.node(u).succ) {
      double nd = d + e.cost;
      auto it = dist.find(e.node);
      if (it == dist.end() || nd < it->second) {
        dist[e.node] = nd;
        parent[e.node] = u;
        open.push({nd, e.node});
      }
    }
  }
  if (dist.find(dst) == dist.end()) return {};
  std::vector<NodeId> path{dst};
  NodeId cur = dst;
  while (cur != src) {
    cur = parent.at(cur);
    path.push_back(cur);
  }
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace

std::vector<Route> GenerateShortestPathRoutes(const Network& network,
                                              int count, int min_length,
                                              uint64_t seed) {
  Random rng(seed);
  std::vector<NodeId> ids = network.NodeIds();
  std::vector<Route> routes;
  if (ids.size() < 2) return routes;
  int attempts = 0;
  const int kMaxAttempts = count * 50;
  while (static_cast<int>(routes.size()) < count &&
         attempts++ < kMaxAttempts) {
    NodeId src = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
    NodeId dst = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
    if (src == dst) continue;
    std::vector<NodeId> path = ShortestPathNodes(network, src, dst);
    if (static_cast<int>(path.size()) < min_length) continue;
    routes.push_back(Route{std::move(path)});
  }
  return routes;
}

void DeriveEdgeWeightsFromRoutes(Network* network,
                                 const std::vector<Route>& routes) {
  std::unordered_map<uint64_t, double> counts;
  for (const Route& route : routes) {
    for (size_t i = 0; i + 1 < route.nodes.size(); ++i) {
      counts[EdgeKey(route.nodes[i], route.nodes[i + 1])] += 1.0;
    }
  }
  for (const auto& e : network->Edges()) {
    auto it = counts.find(EdgeKey(e.from, e.to));
    network->SetEdgeWeight(e.from, e.to,
                           it != counts.end() ? it->second : 0.0);
  }
}

}  // namespace ccam
