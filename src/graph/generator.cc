#include "src/graph/generator.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/random.h"
#include "src/index/zorder.h"

namespace ccam {

namespace {

struct RawNode {
  double x;
  double y;
};

/// Assigns node-ids 0..n-1 in Z-order of the raw coordinates. Returns the
/// permutation: `ids[i]` is the id given to raw node i.
std::vector<NodeId> AssignZOrderIds(const std::vector<RawNode>& raw) {
  double min_c = 0.0, max_c = 0.0;
  if (!raw.empty()) {
    min_c = max_c = raw[0].x;
    for (const RawNode& n : raw) {
      min_c = std::min({min_c, n.x, n.y});
      max_c = std::max({max_c, n.x, n.y});
    }
  }
  std::vector<size_t> order(raw.size());
  std::iota(order.begin(), order.end(), 0);
  std::vector<uint64_t> codes(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    codes[i] = ZOrderFromPoint(raw[i].x, raw[i].y, min_c, max_c);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t a, size_t b) { return codes[a] < codes[b]; });
  std::vector<NodeId> ids(raw.size());
  for (size_t rank = 0; rank < order.size(); ++rank) {
    ids[order[rank]] = static_cast<NodeId>(rank);
  }
  return ids;
}

double Distance(const RawNode& a, const RawNode& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

/// Connects weakly-connected components with two-way edges between their
/// spatially closest representative nodes, so the map is traversable.
void PatchConnectivity(Network* net) {
  std::vector<NodeId> ids = net->NodeIds();
  if (ids.empty()) return;
  // Union-find over weak connectivity.
  std::unordered_map<NodeId, NodeId> parent;
  for (NodeId id : ids) parent[id] = id;
  std::function<NodeId(NodeId)> find = [&](NodeId v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };
  for (const auto& e : net->Edges()) {
    NodeId a = find(e.from), b = find(e.to);
    if (a != b) parent[a] = b;
  }
  // Group nodes by component root.
  std::unordered_map<NodeId, std::vector<NodeId>> comps;
  for (NodeId id : ids) comps[find(id)].push_back(id);
  if (comps.size() <= 1) return;
  // Merge components into the largest one, linking nearest node pairs.
  auto main_it = std::max_element(
      comps.begin(), comps.end(), [](const auto& a, const auto& b) {
        return a.second.size() < b.second.size();
      });
  std::vector<NodeId> core = main_it->second;
  for (auto& [root, members] : comps) {
    if (root == main_it->first) continue;
    double best = 1e300;
    NodeId bu = members[0], bv = core[0];
    for (NodeId u : members) {
      const NetworkNode& un = net->node(u);
      for (NodeId v : core) {
        const NetworkNode& vn = net->node(v);
        double d = std::hypot(un.x - vn.x, un.y - vn.y);
        if (d < best) {
          best = d;
          bu = u;
          bv = v;
        }
      }
    }
    (void)net->AddBidirectionalEdge(bu, bv, static_cast<float>(best));
    core.insert(core.end(), members.begin(), members.end());
  }
}

}  // namespace

Network GenerateRoadMap(const RoadMapOptions& options) {
  Random rng(options.seed);
  const int rows = options.rows;
  const int cols = options.cols;
  const int n = rows * cols;

  // Place intersections on a jittered grid.
  std::vector<RawNode> raw(n);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      double jx = (rng.NextDouble() * 2.0 - 1.0) * options.jitter *
                  options.spacing;
      double jy = (rng.NextDouble() * 2.0 - 1.0) * options.jitter *
                  options.spacing;
      raw[r * cols + c] = {c * options.spacing + jx,
                           r * options.spacing + jy};
    }
  }

  // Decide which nodes survive (a city map is not a full rectangle).
  std::vector<bool> alive(n, true);
  int removed = 0;
  while (removed < options.nodes_to_remove && removed < n) {
    uint32_t pick = rng.Uniform(static_cast<uint32_t>(n));
    if (alive[pick]) {
      alive[pick] = false;
      ++removed;
    }
  }

  // Assign Z-order ids over surviving nodes only.
  std::vector<RawNode> surviving;
  std::vector<int> raw_index;  // surviving index -> raw index
  for (int i = 0; i < n; ++i) {
    if (alive[i]) {
      surviving.push_back(raw[i]);
      raw_index.push_back(i);
    }
  }
  std::vector<NodeId> ids = AssignZOrderIds(surviving);
  std::vector<NodeId> id_of_raw(n, kInvalidNodeId);
  for (size_t i = 0; i < raw_index.size(); ++i) {
    id_of_raw[raw_index[i]] = ids[i];
  }

  Network net;
  for (size_t i = 0; i < surviving.size(); ++i) {
    std::string payload(static_cast<size_t>(options.payload_bytes), '\0');
    // Fill the payload with deterministic attribute bytes.
    for (size_t b = 0; b < payload.size(); ++b) {
      payload[b] = static_cast<char>((ids[i] + b) & 0xff);
    }
    (void)net.AddNode(ids[i], surviving[i].x, surviving[i].y,
                      std::move(payload));
  }

  // Streets between grid-adjacent intersections.
  auto add_street = [&](int a, int b) {
    if (!alive[a] || !alive[b]) return;
    if (!rng.Bernoulli(options.street_keep_prob)) return;
    double dist = Distance(raw[a], raw[b]);
    double spread = 1.0 + (rng.NextDouble() * 2.0 - 1.0) * options.cost_spread;
    float cost = static_cast<float>(dist * spread);
    NodeId u = id_of_raw[a];
    NodeId v = id_of_raw[b];
    if (rng.Bernoulli(options.oneway_fraction)) {
      if (rng.Bernoulli(0.5)) std::swap(u, v);
      (void)net.AddEdge(u, v, cost);
    } else {
      (void)net.AddBidirectionalEdge(u, v, cost);
    }
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      int idx = r * cols + c;
      if (c + 1 < cols) add_street(idx, idx + 1);
      if (r + 1 < rows) add_street(idx, idx + cols);
    }
  }

  PatchConnectivity(&net);
  return net;
}

Network GenerateMinneapolisLikeMap(uint64_t seed) {
  RoadMapOptions options;
  options.seed = seed;
  return GenerateRoadMap(options);
}

Network GenerateRingRadialCity(int rings, int radials, double ring_spacing,
                               uint64_t seed) {
  Random rng(seed);
  const double kPi = 3.14159265358979323846;
  // Raw node layout: index 0 is the center; ring r (1-based) node k sits
  // at radius r * spacing, angle 2*pi*k/radials.
  std::vector<RawNode> raw;
  raw.push_back({0.0, 0.0});
  for (int r = 1; r <= rings; ++r) {
    for (int k = 0; k < radials; ++k) {
      double angle = 2.0 * kPi * k / radials;
      double radius = r * ring_spacing;
      raw.push_back({radius * std::cos(angle), radius * std::sin(angle)});
    }
  }
  std::vector<NodeId> ids = AssignZOrderIds(raw);

  Network net;
  for (size_t i = 0; i < raw.size(); ++i) {
    (void)net.AddNode(ids[i], raw[i].x, raw[i].y, std::string(8, '\0'));
  }
  auto raw_index = [&](int ring, int k) {
    return 1 + (ring - 1) * radials + ((k % radials + radials) % radials);
  };
  auto street = [&](int a, int b) {
    double dist = Distance(raw[a], raw[b]);
    (void)net.AddBidirectionalEdge(ids[a], ids[b],
                                   static_cast<float>(dist));
  };
  for (int r = 1; r <= rings; ++r) {
    for (int k = 0; k < radials; ++k) {
      street(raw_index(r, k), raw_index(r, k + 1));  // along the ring
      if (r > 1) street(raw_index(r, k), raw_index(r - 1, k));  // radial
    }
  }
  for (int k = 0; k < radials; ++k) {
    street(0, raw_index(1, k));  // spokes into the center
  }
  (void)rng;
  return net;
}

Network GenerateScaleFreeNetwork(int n, int edges_per_node, double extent,
                                 uint64_t seed) {
  Random rng(seed);
  const int m = std::max(1, edges_per_node);
  std::vector<RawNode> raw(n);
  for (int i = 0; i < n; ++i) {
    raw[i] = {rng.NextDouble() * extent, rng.NextDouble() * extent};
  }
  std::vector<NodeId> ids = AssignZOrderIds(raw);

  Network net;
  for (int i = 0; i < n; ++i) {
    (void)net.AddNode(ids[i], raw[i].x, raw[i].y, std::string(8, '\0'));
  }
  // Preferential attachment over raw indices: each new node i attaches to
  // m existing nodes sampled proportionally to degree (implemented with
  // the standard repeated-endpoints urn).
  std::vector<int> urn;  // every edge endpoint, repeated
  int start = std::min(n, m + 1);
  for (int i = 0; i < start; ++i) {
    for (int j = 0; j < i; ++j) {
      if (net.AddBidirectionalEdge(ids[i], ids[j],
                                   static_cast<float>(
                                       Distance(raw[i], raw[j]) + 1.0))
              .ok()) {
        urn.push_back(i);
        urn.push_back(j);
      }
    }
  }
  for (int i = start; i < n; ++i) {
    int attached = 0;
    int guard = 0;
    while (attached < m && guard++ < 100) {
      int target = urn.empty()
                       ? static_cast<int>(rng.Uniform(i))
                       : urn[rng.Uniform(static_cast<uint32_t>(urn.size()))];
      if (target == i || net.HasEdge(ids[i], ids[target])) continue;
      if (net.AddBidirectionalEdge(ids[i], ids[target],
                                   static_cast<float>(
                                       Distance(raw[i], raw[target]) + 1.0))
              .ok()) {
        urn.push_back(i);
        urn.push_back(target);
        ++attached;
      }
    }
  }
  PatchConnectivity(&net);
  return net;
}

Network GenerateRandomGeometricNetwork(int n, double radius, double extent,
                                       uint64_t seed) {
  Random rng(seed);
  std::vector<RawNode> raw(n);
  for (int i = 0; i < n; ++i) {
    raw[i] = {rng.NextDouble() * extent, rng.NextDouble() * extent};
  }
  std::vector<NodeId> ids = AssignZOrderIds(raw);

  Network net;
  for (int i = 0; i < n; ++i) {
    (void)net.AddNode(ids[i], raw[i].x, raw[i].y, std::string(8, '\0'));
  }
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      double d = Distance(raw[i], raw[j]);
      if (d <= radius) {
        (void)net.AddBidirectionalEdge(ids[i], ids[j],
                                       static_cast<float>(d));
      }
    }
  }
  PatchConnectivity(&net);
  return net;
}

}  // namespace ccam
