#include "src/graph/graph_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace ccam {

namespace {

const char kHexDigits[] = "0123456789abcdef";

std::string ToHex(const std::string& bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kHexDigits[c >> 4]);
    out.push_back(kHexDigits[c & 0xf]);
  }
  return out;
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

Result<std::string> FromHex(const std::string& hex) {
  if (hex.size() % 2 != 0) {
    return Status::Corruption("odd-length hex payload");
  }
  std::string out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = HexValue(hex[i]);
    int lo = HexValue(hex[i + 1]);
    if (hi < 0 || lo < 0) return Status::Corruption("bad hex digit");
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

}  // namespace

std::string NetworkToString(const Network& network) {
  std::ostringstream out;
  out.precision(17);
  out << "# ccam network: " << network.NumNodes() << " nodes, "
      << network.NumEdges() << " edges\n";
  for (NodeId id : network.NodeIds()) {
    const NetworkNode& n = network.node(id);
    out << "n " << id << " " << n.x << " " << n.y;
    if (!n.payload.empty()) out << " " << ToHex(n.payload);
    out << "\n";
  }
  for (const auto& e : network.Edges()) {
    out << "e " << e.from << " " << e.to << " " << e.cost;
    double w = network.EdgeWeight(e.from, e.to);
    if (w != 1.0) out << " " << w;
    out << "\n";
  }
  return out.str();
}

Result<Network> NetworkFromString(const std::string& text) {
  Network net;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    auto fail = [&](const std::string& why) {
      return Status::Corruption("line " + std::to_string(lineno) + ": " +
                                why);
    };
    if (tag == "n") {
      NodeId id;
      double x, y;
      std::string hex;
      if (!(ls >> id >> x >> y)) return fail("bad node line");
      std::string payload;
      if (ls >> hex) {
        auto decoded = FromHex(hex);
        if (!decoded.ok()) return decoded.status();
        payload = std::move(decoded).value();
      }
      Status s = net.AddNode(id, x, y, std::move(payload));
      if (!s.ok()) return fail(s.ToString());
    } else if (tag == "e") {
      NodeId u, v;
      float cost;
      if (!(ls >> u >> v >> cost)) return fail("bad edge line");
      Status s = net.AddEdge(u, v, cost);
      if (!s.ok()) return fail(s.ToString());
      double w;
      if (ls >> w) net.SetEdgeWeight(u, v, w);
    } else {
      return fail("unknown record tag '" + tag + "'");
    }
  }
  return net;
}

Status SaveNetwork(const Network& network, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out << NetworkToString(network);
  out.flush();
  if (!out) return Status::IOError("short write to " + path);
  return Status::OK();
}

Result<Network> LoadNetwork(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return NetworkFromString(buffer.str());
}

}  // namespace ccam
