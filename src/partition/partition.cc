#include "src/partition/partition.h"

#include <algorithm>
#include <numeric>
#include <unordered_set>
#include <vector>

#include "src/common/random.h"
#include "src/partition/bisect_internal.h"
#include "src/storage/record.h"

namespace ccam {

size_t PartitionGraph::TotalSize() const {
  return std::accumulate(node_sizes.begin(), node_sizes.end(), size_t{0});
}

PartitionGraph PartitionGraph::FromNetwork(const Network& network,
                                           const std::vector<NodeId>& subset,
                                           bool use_access_weights,
                                           size_t extra_node_bytes) {
  PartitionGraph g;
  std::unordered_map<NodeId, int> index;
  index.reserve(subset.size() * 2);
  g.ids.reserve(subset.size());
  for (NodeId id : subset) {
    if (!network.HasNode(id) || index.count(id)) continue;
    index[id] = static_cast<int>(g.ids.size());
    g.ids.push_back(id);
  }
  const size_t n = g.ids.size();
  g.node_sizes.resize(n);
  for (size_t i = 0; i < n; ++i) {
    g.node_sizes[i] =
        RecordSizeOf(g.ids[i], network.node(g.ids[i])) + extra_node_bytes;
  }

  // Collapse directed pairs into undirected edges. Tuples are sorted and
  // merged (instead of accumulated in a hash map) so both the edge set and
  // the adjacency layout are identical across standard libraries and runs —
  // the seed-BFS of the partitioners walks adjacency in storage order.
  struct Tuple {
    int a;
    int b;
    double w;
  };
  std::vector<Tuple> tuples;
  for (size_t i = 0; i < n; ++i) {
    NodeId u = g.ids[i];
    for (const AdjEntry& e : network.node(u).succ) {
      auto it = index.find(e.node);
      if (it == index.end()) continue;
      int a = static_cast<int>(i), b = it->second;
      if (a > b) std::swap(a, b);
      double w = use_access_weights ? network.EdgeWeight(u, e.node) : 1.0;
      tuples.push_back({a, b, w});
    }
  }
  std::sort(tuples.begin(), tuples.end(), [](const Tuple& x, const Tuple& y) {
    return x.a != y.a ? x.a < y.a : x.b < y.b;
  });
  size_t merged = 0;
  for (size_t k = 0; k < tuples.size();) {
    size_t j = k;
    double w = 0.0;
    while (j < tuples.size() && tuples[j].a == tuples[k].a &&
           tuples[j].b == tuples[k].b) {
      w += tuples[j].w;
      ++j;
    }
    // Zero-weight edges do not affect WCRR.
    if (w > 0.0) tuples[merged++] = {tuples[k].a, tuples[k].b, w};
    k = j;
  }
  tuples.resize(merged);

  // Build the CSR layout in one pass: count degrees, prefix-sum, fill.
  g.adj_start.assign(n + 1, 0);
  for (const Tuple& t : tuples) {
    ++g.adj_start[t.a + 1];
    ++g.adj_start[t.b + 1];
  }
  for (size_t i = 0; i < n; ++i) g.adj_start[i + 1] += g.adj_start[i];
  g.adj.resize(2 * tuples.size());
  std::vector<int> cursor(g.adj_start.begin(), g.adj_start.end() - 1);
  for (const Tuple& t : tuples) {
    g.adj[cursor[t.a]++] = {t.b, t.w};
    g.adj[cursor[t.b]++] = {t.a, t.w};
  }
  for (size_t i = 0; i < n; ++i) {
    std::sort(g.adj.begin() + g.adj_start[i], g.adj.begin() + g.adj_start[i + 1],
              [](const Adj& x, const Adj& y) { return x.to < y.to; });
  }
  return g;
}

const char* PartitionAlgorithmName(PartitionAlgorithm algo) {
  switch (algo) {
    case PartitionAlgorithm::kRatioCut:
      return "ratio-cut";
    case PartitionAlgorithm::kFm:
      return "fm";
    case PartitionAlgorithm::kKl:
      return "kl";
    case PartitionAlgorithm::kRandom:
      return "random";
  }
  return "unknown";
}

double CutWeight(const PartitionGraph& graph, const std::vector<bool>& side) {
  double cut = 0.0;
  for (size_t i = 0; i < graph.NumNodes(); ++i) {
    for (const PartitionGraph::Adj& e : graph.Neighbors(static_cast<int>(i))) {
      if (static_cast<size_t>(e.to) > i && side[i] != side[e.to]) {
        cut += e.weight;
      }
    }
  }
  return cut;
}

void SideSizes(const PartitionGraph& graph, const std::vector<bool>& side,
               size_t* size_a, size_t* size_b) {
  *size_a = 0;
  *size_b = 0;
  for (size_t i = 0; i < graph.node_sizes.size(); ++i) {
    (side[i] ? *size_b : *size_a) += graph.node_sizes[i];
  }
}

namespace partition_internal {

std::vector<bool> BfsSeed(const PartitionGraph& graph, size_t target_a,
                          uint64_t seed) {
  const size_t n = graph.NumNodes();
  std::vector<bool> side(n, true);  // true = side B; we grow A
  if (n == 0) return side;
  Random rng(seed);
  std::vector<bool> visited(n, false);
  size_t acc = 0;
  std::vector<int> frontier;
  int start = static_cast<int>(rng.Uniform(static_cast<uint32_t>(n)));
  frontier.push_back(start);
  size_t head = 0;
  int taken = 0;
  while (acc < target_a && taken < static_cast<int>(n)) {
    if (head >= frontier.size()) {
      // Disconnected remainder: continue from the next unvisited node.
      for (size_t i = 0; i < n; ++i) {
        if (!visited[i]) {
          frontier.push_back(static_cast<int>(i));
          break;
        }
      }
      if (head >= frontier.size()) break;
    }
    int cur = frontier[head++];
    if (visited[cur]) continue;
    visited[cur] = true;
    side[cur] = false;
    acc += graph.node_sizes[cur];
    ++taken;
    for (const PartitionGraph::Adj& e : graph.Neighbors(cur)) {
      if (!visited[e.to]) frontier.push_back(e.to);
    }
  }
  return side;
}

double MoveGain(const PartitionGraph& graph, const std::vector<bool>& side,
                int i) {
  double to_other = 0.0, to_own = 0.0;
  for (const PartitionGraph::Adj& e : graph.Neighbors(i)) {
    if (side[e.to] == side[i]) {
      to_own += e.weight;
    } else {
      to_other += e.weight;
    }
  }
  return to_other - to_own;
}

}  // namespace partition_internal

namespace {

Bisection RandomBisection(const PartitionGraph& graph, size_t min_side_size,
                          uint64_t seed) {
  Random rng(seed);
  std::vector<int> order(graph.NumNodes());
  std::iota(order.begin(), order.end(), 0);
  std::vector<int> shuffled;
  shuffled.reserve(order.size());
  {
    std::vector<int> tmp = order;
    rng.Shuffle(&tmp);
    shuffled = std::move(tmp);
  }
  Bisection result;
  result.side.assign(graph.NumNodes(), true);
  size_t total = graph.TotalSize();
  size_t target_a = std::max(min_side_size, total / 2);
  size_t acc = 0;
  for (int idx : shuffled) {
    if (acc >= target_a) break;
    result.side[idx] = false;
    acc += graph.node_sizes[idx];
  }
  SideSizes(graph, result.side, &result.size_a, &result.size_b);
  result.cut_weight = CutWeight(graph, result.side);
  return result;
}

}  // namespace

Bisection TwoWayPartition(const PartitionGraph& graph, size_t min_side_size,
                          PartitionAlgorithm algo, uint64_t seed) {
  switch (algo) {
    case PartitionAlgorithm::kRatioCut:
      return RatioCutBisect(graph, min_side_size, seed);
    case PartitionAlgorithm::kFm:
      return FmBisect(graph, min_side_size, seed);
    case PartitionAlgorithm::kKl:
      return KlBisect(graph, min_side_size, seed);
    case PartitionAlgorithm::kRandom:
      return RandomBisection(graph, min_side_size, seed);
  }
  return RandomBisection(graph, min_side_size, seed);
}

double ComputeCrr(const Network& network, const NodePageMap& page_of) {
  size_t total = 0;
  size_t unsplit = 0;
  for (const auto& e : network.Edges()) {
    ++total;
    auto u = page_of.find(e.from);
    auto v = page_of.find(e.to);
    if (u != page_of.end() && v != page_of.end() && u->second == v->second) {
      ++unsplit;
    }
  }
  return total == 0 ? 1.0 : static_cast<double>(unsplit) / total;
}

double CrrUpperBound(const Network& network, size_t page_capacity,
                     size_t per_record_overhead) {
  if (network.NumEdges() == 0) return 1.0;
  std::vector<NodeId> ids = network.NodeIds();
  std::vector<size_t> sizes;
  sizes.reserve(ids.size());
  for (NodeId id : ids) {
    sizes.push_back(RecordSizeOf(id, network.node(id)) +
                    per_record_overhead);
  }
  std::vector<size_t> sorted = sizes;
  std::sort(sorted.begin(), sorted.end());
  // Prefix sums of the smallest records: prefix[k] = bytes of the k
  // smallest records.
  std::vector<size_t> prefix(sorted.size() + 1, 0);
  for (size_t k = 0; k < sorted.size(); ++k) {
    prefix[k + 1] = prefix[k] + sorted[k];
  }
  auto max_coresidents = [&](size_t own_size) -> size_t {
    if (own_size > page_capacity) return 0;
    size_t budget = page_capacity - own_size;
    // Largest k with prefix[k] <= budget. The packing may include the
    // node's own record among the smallest — still a valid upper bound.
    size_t lo = 0, hi = sorted.size();
    while (lo < hi) {
      size_t mid = (lo + hi + 1) / 2;
      if (prefix[mid] <= budget) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    return lo;
  };

  double out_bound = 0.0, in_bound = 0.0;
  for (size_t i = 0; i < ids.size(); ++i) {
    size_t k = max_coresidents(sizes[i]);
    const NetworkNode& node = network.node(ids[i]);
    // Distinct successor / predecessor counts (co-residence is what caps
    // unsplit edges, and a neighbor appearing in both lists only needs to
    // be co-paged once).
    out_bound += std::min(node.succ.size(), k);
    in_bound += std::min(node.pred.size(), k);
  }
  double edges = static_cast<double>(network.NumEdges());
  return std::min(1.0, std::min(out_bound, in_bound) / edges);
}

double ComputeWcrr(const Network& network, const NodePageMap& page_of) {
  double total = 0.0;
  double unsplit = 0.0;
  for (const auto& e : network.Edges()) {
    double w = network.EdgeWeight(e.from, e.to);
    total += w;
    auto u = page_of.find(e.from);
    auto v = page_of.find(e.to);
    if (u != page_of.end() && v != page_of.end() && u->second == v->second) {
      unsplit += w;
    }
  }
  return total == 0.0 ? 1.0 : unsplit / total;
}

}  // namespace ccam
