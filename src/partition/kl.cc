#include <algorithm>
#include <unordered_map>
#include <vector>

#include "src/partition/bisect_internal.h"

namespace ccam {

namespace {

using partition_internal::BfsSeed;

/// Kernighan–Lin pair-swap bisection (the classic heuristic the paper cites
/// as an alternative basis for the clustering scheme). To keep passes
/// tractable on road-map-sized inputs, each swap step only examines the top
/// `kCandidates` D-value nodes from each side rather than all pairs — the
/// standard practical restriction.
constexpr size_t kCandidates = 24;

double PairWeight(const std::unordered_map<uint64_t, double>& weights, int a,
                  int b) {
  if (a > b) std::swap(a, b);
  auto it =
      weights.find((static_cast<uint64_t>(a) << 32) | static_cast<uint32_t>(b));
  return it == weights.end() ? 0.0 : it->second;
}

}  // namespace

Bisection KlBisect(const PartitionGraph& graph, size_t min_side_size,
                   uint64_t seed) {
  Bisection result;
  const size_t n = graph.NumNodes();
  if (n == 0) return result;
  size_t total = graph.TotalSize();
  std::vector<bool> side = BfsSeed(graph, total / 2, seed);

  std::unordered_map<uint64_t, double> pair_weights;
  for (size_t i = 0; i < n; ++i) {
    for (const PartitionGraph::Adj& e : graph.Neighbors(static_cast<int>(i))) {
      if (static_cast<size_t>(e.to) > i) {
        pair_weights[(static_cast<uint64_t>(i) << 32) |
                     static_cast<uint32_t>(e.to)] = e.weight;
      }
    }
  }

  size_t size_a, size_b;
  SideSizes(graph, side, &size_a, &size_b);

  const int kMaxPasses = 12;
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    std::vector<double> d(n);
    for (size_t i = 0; i < n; ++i) {
      d[i] = partition_internal::MoveGain(graph, side, static_cast<int>(i));
    }
    std::vector<bool> locked(n, false);

    struct Swap {
      int a;
      int b;
      double gain;
    };
    std::vector<Swap> swaps;
    double cumulative = 0.0, best = 0.0;
    size_t best_len = 0;
    size_t cur_a = size_a, cur_b = size_b;

    for (;;) {
      // Top unlocked candidates by D value on each side.
      std::vector<int> ca, cb;
      for (size_t i = 0; i < n; ++i) {
        if (!locked[i]) (side[i] ? cb : ca).push_back(static_cast<int>(i));
      }
      if (ca.empty() || cb.empty()) break;
      auto by_d = [&](int x, int y) { return d[x] > d[y]; };
      if (ca.size() > kCandidates) {
        std::partial_sort(ca.begin(), ca.begin() + kCandidates, ca.end(),
                          by_d);
        ca.resize(kCandidates);
      } else {
        std::sort(ca.begin(), ca.end(), by_d);
      }
      if (cb.size() > kCandidates) {
        std::partial_sort(cb.begin(), cb.begin() + kCandidates, cb.end(),
                          by_d);
        cb.resize(kCandidates);
      } else {
        std::sort(cb.begin(), cb.end(), by_d);
      }

      double best_gain = -1e300;
      int best_a = -1, best_b = -1;
      for (int a : ca) {
        for (int b : cb) {
          // Swapping a<->b changes side sizes by the size difference.
          size_t sa = graph.node_sizes[a], sb = graph.node_sizes[b];
          size_t new_a = cur_a - sa + sb;
          size_t new_b = cur_b - sb + sa;
          if (new_a < min_side_size || new_b < min_side_size) continue;
          double g = d[a] + d[b] - 2.0 * PairWeight(pair_weights, a, b);
          if (g > best_gain) {
            best_gain = g;
            best_a = a;
            best_b = b;
          }
        }
      }
      if (best_a < 0) break;

      // Tentatively swap and lock.
      locked[best_a] = locked[best_b] = true;
      size_t sa = graph.node_sizes[best_a], sb = graph.node_sizes[best_b];
      cur_a = cur_a - sa + sb;
      cur_b = cur_b - sb + sa;
      side[best_a] = true;
      side[best_b] = false;
      cumulative += best_gain;
      swaps.push_back({best_a, best_b, best_gain});
      if (cumulative > best + 1e-12) {
        best = cumulative;
        best_len = swaps.size();
      }
      // Refresh D values of the swapped pair's unlocked neighbors (only
      // their gains changed).
      auto refresh_neighbors = [&](int center) {
        for (const PartitionGraph::Adj& e : graph.Neighbors(center)) {
          if (!locked[e.to]) {
            d[e.to] = partition_internal::MoveGain(graph, side, e.to);
          }
        }
      };
      refresh_neighbors(best_a);
      refresh_neighbors(best_b);
    }

    // Roll back swaps beyond the best prefix.
    for (size_t k = swaps.size(); k > best_len; --k) {
      side[swaps[k - 1].a] = false;
      side[swaps[k - 1].b] = true;
    }
    SideSizes(graph, side, &size_a, &size_b);
    if (best <= 1e-12) break;
  }

  result.side = std::move(side);
  result.size_a = size_a;
  result.size_b = size_b;
  result.cut_weight = CutWeight(graph, result.side);
  return result;
}

}  // namespace ccam
