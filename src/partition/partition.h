#ifndef CCAM_PARTITION_PARTITION_H_
#define CCAM_PARTITION_PARTITION_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/graph/network.h"
#include "src/storage/page.h"

namespace ccam {

/// Compact undirected weighted graph over a node subset, the input format
/// of the two-way partitioners. Node weights are record sizes in bytes
/// ("sizeof(A) = sum of sizeof(record(i))" in the paper); edge weights are
/// either 1 (uniform CRR) or the access weights w(u,v) (WCRR).
struct PartitionGraph {
  struct Adj {
    int to;         // index into `ids`
    double weight;  // combined weight of the (u,v)/(v,u) directed pair
  };

  std::vector<NodeId> ids;          // index -> node id
  std::vector<size_t> node_sizes;   // index -> size in bytes
  /// CSR adjacency in a single allocation: the neighbors of node i occupy
  /// `adj[adj_start[i] .. adj_start[i+1])`, each per-node range sorted by
  /// `to`. Deterministic layout (no hash-order dependence), cache-friendly
  /// scans, and no per-node vector headers.
  std::vector<int> adj_start;  // size NumNodes() + 1
  std::vector<Adj> adj;

  /// Iterable neighbor range of node i.
  struct AdjSpan {
    const Adj* first;
    const Adj* last;
    const Adj* begin() const { return first; }
    const Adj* end() const { return last; }
    size_t size() const { return static_cast<size_t>(last - first); }
  };
  AdjSpan Neighbors(int i) const {
    return {adj.data() + adj_start[i], adj.data() + adj_start[i + 1]};
  }

  size_t NumNodes() const { return ids.size(); }
  size_t TotalSize() const;

  /// Builds the partition graph induced by `subset`. Directed edges (u,v)
  /// and (v,u) collapse into one undirected edge whose weight is the sum of
  /// the directed access weights (or the directed edge count if
  /// `use_access_weights` is false). `extra_node_bytes` is added to every
  /// node size (per-record page overhead such as the slot entry).
  static PartitionGraph FromNetwork(const Network& network,
                                    const std::vector<NodeId>& subset,
                                    bool use_access_weights,
                                    size_t extra_node_bytes = 0);
};

/// Result of a two-way partition: side[i] is false for side A, true for
/// side B.
struct Bisection {
  std::vector<bool> side;
  double cut_weight = 0.0;
  size_t size_a = 0;
  size_t size_b = 0;
};

/// The partitioning heuristic to use as the basis of the clustering scheme.
/// The paper uses Cheng & Wei's ratio-cut; "other graph partitioning
/// methods can also be used" — we provide KL and FM for the ablation.
enum class PartitionAlgorithm {
  kRatioCut,
  kFm,
  kKl,
  kRandom,
};

const char* PartitionAlgorithmName(PartitionAlgorithm algo);

/// Weight of edges crossing the bisection.
double CutWeight(const PartitionGraph& graph, const std::vector<bool>& side);

/// Byte sizes of the two sides.
void SideSizes(const PartitionGraph& graph, const std::vector<bool>& side,
               size_t* size_a, size_t* size_b);

/// Dispatches to the chosen two-way partitioner. Both sides are kept at or
/// above `min_side_size` bytes whenever the node granularity permits.
Bisection TwoWayPartition(const PartitionGraph& graph, size_t min_side_size,
                          PartitionAlgorithm algo, uint64_t seed);

/// Node -> data page assignment, the object CRR is measured on.
using NodePageMap = std::unordered_map<NodeId, PageId>;

/// CRR = (# directed edges with Page(u) == Page(v)) / (# directed edges).
/// Nodes missing from `page_of` never count as co-paged.
double ComputeCrr(const Network& network, const NodePageMap& page_of);

/// WCRR = sum of w(u,v) over co-paged edges / total weight.
double ComputeWcrr(const Network& network, const NodePageMap& page_of);

/// A provable upper bound on the CRR achievable by *any* assignment of
/// this network's records to pages of `page_capacity` bytes — a step
/// toward the paper's future work, "developing a formal analysis for
/// achievable CRR under different access methods".
///
/// Argument: a node u can be co-paged with at most k(u) other records,
/// where k(u) greedily packs the smallest records of the network beside
/// u's; hence at most min(out-degree(u), k(u)) of u's outgoing edges can
/// be unsplit. Summing over sources (and, symmetrically, over
/// destinations with in-degrees) bounds the number of unsplit edges.
double CrrUpperBound(const Network& network, size_t page_capacity,
                     size_t per_record_overhead = 4);

}  // namespace ccam

#endif  // CCAM_PARTITION_PARTITION_H_
