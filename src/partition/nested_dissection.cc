#include "src/partition/nested_dissection.h"

#include <algorithm>
#include <memory>
#include <utility>

#include "src/common/thread_pool.h"

namespace ccam {

namespace {

/// Splitmix64 finalizer (same permutation the clustering pipeline uses).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Seed for the bisection of `nodes`, derived from the subproblem's node
/// content, so the order is bit-identical for 1 vs N threads (a shared
/// counter would hand out seeds in task-completion order).
uint64_t SubsetSeed(uint64_t base, const std::vector<NodeId>& nodes) {
  uint64_t h = Mix64(base ^ static_cast<uint64_t>(nodes.size()));
  for (NodeId id : nodes) h = Mix64(h ^ id);
  return h;
}

struct DissectContext {
  const Network* network = nullptr;
  NestedDissectionOptions options;
};

/// Node of the dissection tree. Interior nodes own their two halves and the
/// separator between them; leaves carry a terminal subset ordered by id.
/// The order is collected left half, right half, separator — a pure
/// function of the recursion structure, not of task scheduling.
struct DissectNode {
  std::vector<NodeId> leaf;
  std::vector<NodeId> separator;
  std::unique_ptr<DissectNode> left;
  std::unique_ptr<DissectNode> right;
};

/// One dissection step: returns true when `nodes` terminates as a leaf
/// (stored into `slot`); otherwise fills `slot->separator` and the two
/// separator-free halves `left` / `right`.
bool DissectStep(const DissectContext& ctx, std::vector<NodeId>* nodes,
                 DissectNode* slot, std::vector<NodeId>* left,
                 std::vector<NodeId>* right) {
  if (nodes->size() <= ctx.options.leaf_size) {
    slot->leaf = std::move(*nodes);
    std::sort(slot->leaf.begin(), slot->leaf.end());
    return true;
  }
  PartitionGraph graph = PartitionGraph::FromNetwork(
      *ctx.network, *nodes, /*use_access_weights=*/false);
  Bisection bisection = TwoWayPartition(
      graph, graph.TotalSize() / 4, ctx.options.algorithm,
      SubsetSeed(ctx.options.seed, *nodes));
  left->clear();
  right->clear();
  slot->separator.clear();
  bool any_a = false, any_b = false;
  for (size_t i = 0; i < bisection.side.size(); ++i) {
    (bisection.side[i] ? any_b : any_a) = true;
  }
  if (!any_a || !any_b) {
    // Degenerate split (one empty side) would recurse forever: fall back to
    // an id-ordered halving with no separator.
    std::vector<NodeId> sorted = *nodes;
    std::sort(sorted.begin(), sorted.end());
    left->assign(sorted.begin(), sorted.begin() + sorted.size() / 2);
    right->assign(sorted.begin() + sorted.size() / 2, sorted.end());
    return false;
  }
  // Vertex separator: the side-B endpoints of cut edges. Removing it
  // disconnects the halves, so no shortcut ever needs to cross between
  // them below the separator's ranks.
  for (size_t i = 0; i < graph.NumNodes(); ++i) {
    if (!bisection.side[i]) {
      left->push_back(graph.ids[i]);
      continue;
    }
    bool boundary = false;
    for (const PartitionGraph::Adj& a : graph.Neighbors(static_cast<int>(i))) {
      if (!bisection.side[a.to]) {
        boundary = true;
        break;
      }
    }
    (boundary ? slot->separator : *right).push_back(graph.ids[i]);
  }
  std::sort(slot->separator.begin(), slot->separator.end());
  return false;
}

/// Sequential path: an explicit worklist over the same dissection tree
/// (same seeds, same collection order) as the parallel solver.
void SolveSequential(const DissectContext& ctx, std::vector<NodeId> nodes,
                     DissectNode* root) {
  std::vector<std::pair<std::vector<NodeId>, DissectNode*>> worklist;
  worklist.emplace_back(std::move(nodes), root);
  std::vector<NodeId> left, right;
  while (!worklist.empty()) {
    std::vector<NodeId> current = std::move(worklist.back().first);
    DissectNode* slot = worklist.back().second;
    worklist.pop_back();
    if (DissectStep(ctx, &current, slot, &left, &right)) continue;
    slot->left = std::make_unique<DissectNode>();
    slot->right = std::make_unique<DissectNode>();
    worklist.emplace_back(std::move(right), slot->right.get());
    worklist.emplace_back(std::move(left), slot->left.get());
  }
}

/// Task-parallel path: each task drills down the left spine of its subtree
/// and offloads right children to the pool. Seeds and output positions
/// depend only on subproblem content, so the schedule cannot influence the
/// resulting order.
class ParallelSolver {
 public:
  ParallelSolver(const DissectContext* ctx, ThreadPool* pool)
      : ctx_(ctx), pool_(pool) {}

  void Spawn(std::vector<NodeId> nodes, DissectNode* slot) {
    pool_->Submit([this, nodes = std::move(nodes), slot]() mutable {
      Run(std::move(nodes), slot);
    });
  }

 private:
  void Run(std::vector<NodeId> nodes, DissectNode* slot) {
    std::vector<NodeId> left, right;
    while (!DissectStep(*ctx_, &nodes, slot, &left, &right)) {
      slot->left = std::make_unique<DissectNode>();
      slot->right = std::make_unique<DissectNode>();
      Spawn(std::move(right), slot->right.get());
      nodes = std::move(left);
      slot = slot->left.get();
    }
  }

  const DissectContext* ctx_;
  ThreadPool* pool_;
};

/// Appends the order of `root` iteratively: left subtree, right subtree,
/// separator (post-order, so every separator outranks both halves).
void CollectOrder(DissectNode* root, std::vector<NodeId>* out) {
  struct Frame {
    DissectNode* node;
    bool expanded;
  };
  std::vector<Frame> stack{{root, false}};
  while (!stack.empty()) {
    Frame frame = stack.back();
    stack.pop_back();
    DissectNode* node = frame.node;
    if (!node->left) {
      out->insert(out->end(), node->leaf.begin(), node->leaf.end());
      continue;
    }
    if (frame.expanded) {
      out->insert(out->end(), node->separator.begin(), node->separator.end());
      continue;
    }
    stack.push_back({node, true});
    stack.push_back({node->right.get(), false});
    stack.push_back({node->left.get(), false});
  }
}

/// Below this size the pool cannot pay for itself; both paths produce the
/// identical order, so the gate is a pure performance choice.
constexpr size_t kMinParallelNodes = 512;

}  // namespace

Result<std::vector<NodeId>> NestedDissectionOrder(
    const Network& network, const std::vector<NodeId>& subset,
    const NestedDissectionOptions& options) {
  std::vector<NodeId> nodes;
  nodes.reserve(subset.size());
  for (NodeId id : subset) {
    if (!network.HasNode(id)) {
      return Status::InvalidArgument("subset node " + std::to_string(id) +
                                     " not in network");
    }
    nodes.push_back(id);
  }
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());

  DissectContext ctx;
  ctx.network = &network;
  ctx.options = options;
  if (ctx.options.leaf_size == 0) ctx.options.leaf_size = 1;

  DissectNode root;
  const size_t n = nodes.size();
  const int threads = ThreadPool::ResolveThreadCount(options.num_threads);
  if (threads > 1 && n >= kMinParallelNodes) {
    ThreadPool pool(threads);
    ParallelSolver solver(&ctx, &pool);
    solver.Spawn(std::move(nodes), &root);
    pool.WaitIdle();
  } else {
    SolveSequential(ctx, std::move(nodes), &root);
  }

  std::vector<NodeId> order;
  order.reserve(n);
  CollectOrder(&root, &order);
  return order;
}

}  // namespace ccam
