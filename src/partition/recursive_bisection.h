#ifndef CCAM_PARTITION_RECURSIVE_BISECTION_H_
#define CCAM_PARTITION_RECURSIVE_BISECTION_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/graph/network.h"
#include "src/partition/partition.h"

namespace ccam {

/// Options for cluster-nodes-into-pages (paper Figure 2).
struct ClusterOptions {
  /// Usable record bytes per data page (page size minus page header).
  size_t page_capacity = 1024;
  /// Per-record overhead added to every node size (slot entry bytes).
  size_t per_record_overhead = 4;
  /// The two-way partitioner used as the basis of the clustering.
  PartitionAlgorithm algorithm = PartitionAlgorithm::kRatioCut;
  /// Lower bound each bisection side must keep, as a fraction of the page
  /// capacity. The paper's MinPgSize = ceil(page-size / 2) is 0.5; lower
  /// values trade page fill (space) for cut quality (CRR).
  double min_fill_fraction = 0.5;
  /// Partition by access weights (WCRR) instead of uniform edge weights.
  bool use_access_weights = false;
  uint64_t seed = 42;
  /// Worker threads used by ClusterNodesIntoPages and RefinePagesPairwise.
  /// 0 selects std::thread::hardware_concurrency(); 1 runs the sequential
  /// legacy path (no pool). The node -> page result is bit-identical for
  /// every value: bisection seeds derive from each subproblem's node
  /// content, never from shared counters or scheduling order.
  int num_threads = 0;
};

/// The paper's connectivity-clustering algorithm: repeatedly applies
/// 2-way-partition-graph() to worklist subsets whose record bytes exceed
/// the page capacity, with MinPgSize = ceil(page_capacity / 2), until every
/// subset fits on a page. Returns the resulting page sets (each a list of
/// node-ids whose records total at most page_capacity bytes).
///
/// Every worklist subproblem after a bisection is independent, so large
/// inputs run as a deterministic task-parallel recursion over
/// `options.num_threads` workers; pages are emitted in left-to-right leaf
/// order of the recursion tree, making the result a pure function of the
/// input regardless of thread count or scheduling.
Result<std::vector<std::vector<NodeId>>> ClusterNodesIntoPages(
    const Network& network, const std::vector<NodeId>& subset,
    const ClusterOptions& options);

/// Pairwise M-way refinement (the paper's "M-way partitioning may further
/// improve the result"): for every pair of page sets connected by at least
/// one edge, re-runs the two-way partitioner on their union and keeps the
/// result if it reduces the number of split edges. `rounds` bounds the
/// number of sweeps. Returns the number of improved pairs.
///
/// Within a round the connected pairs are peeled into maximal
/// pair-disjoint matchings (sorted order, so results do not depend on hash
/// iteration); pairs of one batch share no page and are refined
/// concurrently on `options.num_threads` workers with content-derived
/// seeds — identical output for any thread count.
int RefinePagesPairwise(const Network& network,
                        std::vector<std::vector<NodeId>>* pages,
                        const ClusterOptions& options, int rounds = 1);

}  // namespace ccam

#endif  // CCAM_PARTITION_RECURSIVE_BISECTION_H_
