#ifndef CCAM_PARTITION_BISECT_INTERNAL_H_
#define CCAM_PARTITION_BISECT_INTERNAL_H_

#include <cstdint>
#include <vector>

#include "src/partition/partition.h"

namespace ccam {
namespace partition_internal {

/// Shared helpers for the two-way partitioners. Internal to src/partition.

/// Greedy BFS seed: grows side A from a random start node until it holds
/// roughly `target_a` bytes; produces contiguous (low-cut) initial sides on
/// planar road networks. Falls back to arbitrary fill for disconnected
/// remainders.
std::vector<bool> BfsSeed(const PartitionGraph& graph, size_t target_a,
                          uint64_t seed);

/// Gain of moving node i to the other side: (weight to other side) -
/// (weight to own side). Positive gain reduces the cut.
double MoveGain(const PartitionGraph& graph, const std::vector<bool>& side,
                int i);

}  // namespace partition_internal

/// Two-way partitioners (definitions in kl.cc / fm.cc / ratio_cut.cc).
Bisection KlBisect(const PartitionGraph& graph, size_t min_side_size,
                   uint64_t seed);
Bisection FmBisect(const PartitionGraph& graph, size_t min_side_size,
                   uint64_t seed);
Bisection RatioCutBisect(const PartitionGraph& graph, size_t min_side_size,
                         uint64_t seed);

}  // namespace ccam

#endif  // CCAM_PARTITION_BISECT_INTERNAL_H_
