#include "src/partition/recursive_bisection.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "src/storage/record.h"

namespace ccam {

namespace {

size_t SubsetBytes(const Network& network, const std::vector<NodeId>& subset,
                   size_t per_record_overhead) {
  size_t total = 0;
  for (NodeId id : subset) {
    total += RecordSizeOf(id, network.node(id)) + per_record_overhead;
  }
  return total;
}

/// Number of directed edges of `network` split across distinct page sets.
size_t SplitEdges(const Network& network,
                  const std::vector<std::vector<NodeId>>& pages) {
  std::unordered_map<NodeId, int> page_of;
  for (size_t p = 0; p < pages.size(); ++p) {
    for (NodeId id : pages[p]) page_of[id] = static_cast<int>(p);
  }
  size_t split = 0;
  for (const auto& e : network.Edges()) {
    auto u = page_of.find(e.from);
    auto v = page_of.find(e.to);
    if (u != page_of.end() && v != page_of.end() && u->second != v->second) {
      ++split;
    }
  }
  return split;
}

}  // namespace

Result<std::vector<std::vector<NodeId>>> ClusterNodesIntoPages(
    const Network& network, const std::vector<NodeId>& subset,
    const ClusterOptions& options) {
  const size_t capacity = options.page_capacity;
  const double fill =
      std::clamp(options.min_fill_fraction, 0.0, 0.5);
  const size_t min_pg_size =
      static_cast<size_t>(static_cast<double>(capacity) * fill + 0.5);

  // Every record must individually fit on a page.
  for (NodeId id : subset) {
    if (!network.HasNode(id)) {
      return Status::InvalidArgument("subset node " + std::to_string(id) +
                                     " not in network");
    }
    size_t sz =
        RecordSizeOf(id, network.node(id)) + options.per_record_overhead;
    if (sz > capacity) {
      return Status::NoSpace("record of node " + std::to_string(id) + " (" +
                             std::to_string(sz) +
                             " bytes) exceeds page capacity");
    }
  }

  std::vector<std::vector<NodeId>> worklist;  // F in the paper
  std::vector<std::vector<NodeId>> pages;     // P in the paper
  worklist.push_back(subset);
  uint64_t split_seed = options.seed;

  while (!worklist.empty()) {
    std::vector<NodeId> current = std::move(worklist.back());
    worklist.pop_back();
    if (current.empty()) continue;
    if (SubsetBytes(network, current, options.per_record_overhead) <=
        capacity) {
      pages.push_back(std::move(current));
      continue;
    }

    PartitionGraph graph =
        PartitionGraph::FromNetwork(network, current,
                                    options.use_access_weights,
                                    options.per_record_overhead);
    Bisection bisection = TwoWayPartition(graph, min_pg_size,
                                          options.algorithm, split_seed++);
    std::vector<NodeId> side_a, side_b;
    for (size_t i = 0; i < graph.NumNodes(); ++i) {
      (bisection.side[i] ? side_b : side_a).push_back(graph.ids[i]);
    }
    // Defensive fallback: a degenerate split (one empty side) would loop
    // forever, so split by id order instead.
    if (side_a.empty() || side_b.empty()) {
      std::vector<NodeId> sorted = current;
      std::sort(sorted.begin(), sorted.end());
      side_a.assign(sorted.begin(), sorted.begin() + sorted.size() / 2);
      side_b.assign(sorted.begin() + sorted.size() / 2, sorted.end());
    }
    for (auto& side : {&side_a, &side_b}) {
      if (SubsetBytes(network, *side, options.per_record_overhead) >
          capacity) {
        worklist.push_back(std::move(*side));
      } else {
        pages.push_back(std::move(*side));
      }
    }
  }
  return pages;
}

int RefinePagesPairwise(const Network& network,
                        std::vector<std::vector<NodeId>>* pages,
                        const ClusterOptions& options, int rounds) {
  const size_t min_pg_size = static_cast<size_t>(
      static_cast<double>(options.page_capacity) *
          std::clamp(options.min_fill_fraction, 0.0, 0.5) +
      0.5);
  int improved_total = 0;
  uint64_t seed = options.seed ^ 0x9e3779b97f4a7c15ULL;

  for (int round = 0; round < rounds; ++round) {
    // Identify connected page pairs via the split edges.
    std::unordered_map<NodeId, int> page_of;
    for (size_t p = 0; p < pages->size(); ++p) {
      for (NodeId id : (*pages)[p]) page_of[id] = static_cast<int>(p);
    }
    std::unordered_set<uint64_t> pairs;
    for (const auto& e : network.Edges()) {
      auto u = page_of.find(e.from);
      auto v = page_of.find(e.to);
      if (u == page_of.end() || v == page_of.end()) continue;
      int a = u->second, b = v->second;
      if (a == b) continue;
      if (a > b) std::swap(a, b);
      pairs.insert((static_cast<uint64_t>(a) << 32) |
                   static_cast<uint32_t>(b));
    }

    int improved = 0;
    for (uint64_t key : pairs) {
      int a = static_cast<int>(key >> 32);
      int b = static_cast<int>(key & 0xffffffffu);
      std::vector<NodeId> merged = (*pages)[a];
      merged.insert(merged.end(), (*pages)[b].begin(), (*pages)[b].end());

      std::vector<std::vector<NodeId>> before{(*pages)[a], (*pages)[b]};
      Network pair_net = network.InducedSubnetwork(merged);
      size_t before_split = SplitEdges(pair_net, before);

      PartitionGraph graph = PartitionGraph::FromNetwork(
          network, merged, options.use_access_weights,
          options.per_record_overhead);
      Bisection bisection =
          TwoWayPartition(graph, min_pg_size, options.algorithm, seed++);
      std::vector<NodeId> side_a, side_b;
      for (size_t i = 0; i < graph.NumNodes(); ++i) {
        (bisection.side[i] ? side_b : side_a).push_back(graph.ids[i]);
      }
      if (side_a.empty() || side_b.empty()) continue;
      // Respect page capacity.
      if (SubsetBytes(network, side_a, options.per_record_overhead) >
              options.page_capacity ||
          SubsetBytes(network, side_b, options.per_record_overhead) >
              options.page_capacity) {
        continue;
      }
      std::vector<std::vector<NodeId>> after{side_a, side_b};
      if (SplitEdges(pair_net, after) < before_split) {
        (*pages)[a] = std::move(side_a);
        (*pages)[b] = std::move(side_b);
        ++improved;
      }
    }
    improved_total += improved;
    if (improved == 0) break;
  }
  return improved_total;
}

}  // namespace ccam
