#include "src/partition/recursive_bisection.h"

#include <algorithm>
#include <memory>
#include <unordered_map>
#include <utility>

#include "src/common/thread_pool.h"
#include "src/storage/record.h"

namespace ccam {

namespace {

/// Splitmix64 finalizer: a cheap, well-mixed 64-bit permutation.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Seed for the bisection of `nodes`, derived from the subproblem's node
/// content. A subproblem's node sequence is itself a deterministic function
/// of the clustering input, so content-derived seeds make the page set
/// bit-identical for 1 vs N threads — a shared `seed++` counter would hand
/// out seeds in task-completion order instead.
uint64_t SubsetSeed(uint64_t base, const std::vector<NodeId>& nodes) {
  uint64_t h = Mix64(base ^ static_cast<uint64_t>(nodes.size()));
  for (NodeId id : nodes) h = Mix64(h ^ id);
  return h;
}

/// Read-only state shared by every subproblem of one clustering run. The
/// per-node record sizes are computed exactly once here — previously
/// RecordSizeOf was recomputed in the validity check, in every SubsetBytes
/// call and in every capacity check, three O(degree) walks per node per
/// worklist level.
struct ClusterContext {
  const Network* network = nullptr;
  ClusterOptions options;
  size_t capacity = 0;
  size_t min_pg_size = 0;
  std::unordered_map<NodeId, uint32_t> dense;  // node id -> dense index
  std::vector<size_t> bytes;  // dense index -> record size + overhead

  size_t SubsetBytes(const std::vector<NodeId>& nodes) const {
    size_t total = 0;
    for (NodeId id : nodes) total += bytes[dense.find(id)->second];
    return total;
  }
};

/// Node of the subproblem tree. Interior nodes own their two halves;
/// leaves carry a final page. Pages are collected in left-to-right leaf
/// order, so the page sequence is a pure function of the recursion
/// structure, not of task scheduling.
struct SubproblemNode {
  std::vector<NodeId> page;
  std::unique_ptr<SubproblemNode> left;
  std::unique_ptr<SubproblemNode> right;
};

/// One worklist step (paper Figure 2): returns true when `nodes` fits a
/// page (stored into `slot`); otherwise bisects it into `left` / `right`.
bool BisectStep(const ClusterContext& ctx, std::vector<NodeId>* nodes,
                SubproblemNode* slot, std::vector<NodeId>* left,
                std::vector<NodeId>* right) {
  if (nodes->empty() || ctx.SubsetBytes(*nodes) <= ctx.capacity) {
    slot->page = std::move(*nodes);
    return true;
  }
  PartitionGraph graph = PartitionGraph::FromNetwork(
      *ctx.network, *nodes, ctx.options.use_access_weights,
      ctx.options.per_record_overhead);
  Bisection bisection =
      TwoWayPartition(graph, ctx.min_pg_size, ctx.options.algorithm,
                      SubsetSeed(ctx.options.seed, *nodes));
  left->clear();
  right->clear();
  left->reserve(graph.NumNodes());
  right->reserve(graph.NumNodes());
  for (size_t i = 0; i < graph.NumNodes(); ++i) {
    (bisection.side[i] ? *right : *left).push_back(graph.ids[i]);
  }
  // Defensive fallback: a degenerate split (one empty side) would recurse
  // forever, so split by id order instead.
  if (left->empty() || right->empty()) {
    std::vector<NodeId> sorted = *nodes;
    std::sort(sorted.begin(), sorted.end());
    left->assign(sorted.begin(), sorted.begin() + sorted.size() / 2);
    right->assign(sorted.begin() + sorted.size() / 2, sorted.end());
  }
  return false;
}

/// Sequential legacy path: an explicit worklist over the same subproblem
/// tree (same seeds, same leaf order) as the parallel solver.
void SolveSequential(const ClusterContext& ctx, std::vector<NodeId> nodes,
                     SubproblemNode* root) {
  std::vector<std::pair<std::vector<NodeId>, SubproblemNode*>> worklist;
  worklist.emplace_back(std::move(nodes), root);
  std::vector<NodeId> left, right;
  while (!worklist.empty()) {
    std::vector<NodeId> current = std::move(worklist.back().first);
    SubproblemNode* slot = worklist.back().second;
    worklist.pop_back();
    if (BisectStep(ctx, &current, slot, &left, &right)) continue;
    slot->left = std::make_unique<SubproblemNode>();
    slot->right = std::make_unique<SubproblemNode>();
    worklist.emplace_back(std::move(right), slot->right.get());
    worklist.emplace_back(std::move(left), slot->left.get());
  }
}

/// Task-parallel path: every worklist subproblem is an independent task.
/// Each task drills down the left spine of its subtree and offloads right
/// children to the pool; seeds and output positions depend only on
/// subproblem content, so the schedule cannot influence the result.
class ParallelSolver {
 public:
  ParallelSolver(const ClusterContext* ctx, ThreadPool* pool)
      : ctx_(ctx), pool_(pool) {}

  void Spawn(std::vector<NodeId> nodes, SubproblemNode* slot) {
    pool_->Submit([this, nodes = std::move(nodes), slot]() mutable {
      Run(std::move(nodes), slot);
    });
  }

 private:
  void Run(std::vector<NodeId> nodes, SubproblemNode* slot) {
    std::vector<NodeId> left, right;
    while (!BisectStep(*ctx_, &nodes, slot, &left, &right)) {
      slot->left = std::make_unique<SubproblemNode>();
      slot->right = std::make_unique<SubproblemNode>();
      Spawn(std::move(right), slot->right.get());
      nodes = std::move(left);
      slot = slot->left.get();
    }
  }

  const ClusterContext* ctx_;
  ThreadPool* pool_;
};

/// Appends the leaf pages of `root` in left-to-right order (iteratively —
/// degenerate splits can make the tree deep).
void CollectPages(SubproblemNode* root,
                  std::vector<std::vector<NodeId>>* out) {
  std::vector<SubproblemNode*> stack{root};
  while (!stack.empty()) {
    SubproblemNode* node = stack.back();
    stack.pop_back();
    if (node->left) {
      stack.push_back(node->right.get());
      stack.push_back(node->left.get());
    } else if (!node->page.empty()) {
      out->push_back(std::move(node->page));
    }
  }
}

/// Below this size the pool cannot pay for itself (per-operation
/// reorganization sets are a handful of pages); both paths produce
/// bit-identical pages, so the gate is a pure performance choice.
constexpr size_t kMinParallelPages = 8;

}  // namespace

Result<std::vector<std::vector<NodeId>>> ClusterNodesIntoPages(
    const Network& network, const std::vector<NodeId>& subset,
    const ClusterOptions& options) {
  ClusterContext ctx;
  ctx.network = &network;
  ctx.options = options;
  ctx.capacity = options.page_capacity;
  const double fill = std::clamp(options.min_fill_fraction, 0.0, 0.5);
  ctx.min_pg_size =
      static_cast<size_t>(static_cast<double>(ctx.capacity) * fill + 0.5);

  // Validity check fused with the one-time record-size precomputation:
  // every record must individually fit on a page.
  ctx.dense.reserve(subset.size() * 2);
  ctx.bytes.reserve(subset.size());
  size_t total_bytes = 0;
  for (NodeId id : subset) {
    if (!network.HasNode(id)) {
      return Status::InvalidArgument("subset node " + std::to_string(id) +
                                     " not in network");
    }
    if (!ctx.dense.emplace(id, static_cast<uint32_t>(ctx.bytes.size()))
             .second) {
      continue;  // duplicate subset entry
    }
    size_t sz =
        RecordSizeOf(id, network.node(id)) + options.per_record_overhead;
    if (sz > ctx.capacity) {
      return Status::NoSpace("record of node " + std::to_string(id) + " (" +
                             std::to_string(sz) +
                             " bytes) exceeds page capacity");
    }
    ctx.bytes.push_back(sz);
    total_bytes += sz;
  }

  SubproblemNode root;
  const int threads = ThreadPool::ResolveThreadCount(options.num_threads);
  if (threads > 1 && total_bytes > kMinParallelPages * ctx.capacity) {
    ThreadPool pool(threads);
    ParallelSolver solver(&ctx, &pool);
    solver.Spawn(subset, &root);
    pool.WaitIdle();
  } else {
    SolveSequential(ctx, subset, &root);
  }

  std::vector<std::vector<NodeId>> pages;
  CollectPages(&root, &pages);
  return pages;
}

int RefinePagesPairwise(const Network& network,
                        std::vector<std::vector<NodeId>>* pages,
                        const ClusterOptions& options, int rounds) {
  const size_t capacity = options.page_capacity;
  const size_t min_pg_size = static_cast<size_t>(
      static_cast<double>(capacity) *
          std::clamp(options.min_fill_fraction, 0.0, 0.5) +
      0.5);
  const uint64_t seed_base = Mix64(options.seed ^ 0x9e3779b97f4a7c15ULL);

  // One-time dense node index, record sizes and CSR successor lists; the
  // per-round work is flat array scans from here on.
  const std::vector<NodeId> ids = network.NodeIds();
  const size_t n = ids.size();
  std::unordered_map<NodeId, uint32_t> dense;
  dense.reserve(n * 2);
  for (size_t i = 0; i < n; ++i) dense.emplace(ids[i], static_cast<uint32_t>(i));
  std::vector<size_t> bytes(n);
  for (size_t i = 0; i < n; ++i) {
    bytes[i] =
        RecordSizeOf(ids[i], network.node(ids[i])) + options.per_record_overhead;
  }
  std::vector<uint32_t> succ_start(n + 1, 0);
  for (size_t i = 0; i < n; ++i) {
    for (const AdjEntry& e : network.node(ids[i]).succ) {
      if (dense.count(e.node)) ++succ_start[i + 1];
    }
  }
  for (size_t i = 0; i < n; ++i) succ_start[i + 1] += succ_start[i];
  std::vector<uint32_t> succ_to(succ_start[n]);
  {
    std::vector<uint32_t> cursor(succ_start.begin(), succ_start.end() - 1);
    for (size_t i = 0; i < n; ++i) {
      for (const AdjEntry& e : network.node(ids[i]).succ) {
        auto it = dense.find(e.node);
        if (it != dense.end()) succ_to[cursor[i]++] = it->second;
      }
    }
  }

  // Incrementally maintained node -> page assignment, replacing the hash
  // map that used to be rebuilt from scratch every round.
  std::vector<int32_t> page_of(n, -1);
  for (size_t p = 0; p < pages->size(); ++p) {
    for (NodeId id : (*pages)[p]) {
      auto it = dense.find(id);
      if (it != dense.end()) page_of[it->second] = static_cast<int32_t>(p);
    }
  }

  // Split edges between two node sets, counted on the pair's own successor
  // lists only (previously an induced pair subnetwork was materialized and
  // *all* network edges scanned per candidate pair).
  auto count_split = [&](const std::vector<NodeId>& sa,
                         const std::vector<NodeId>& sb) -> size_t {
    std::unordered_map<uint32_t, char> side;
    side.reserve((sa.size() + sb.size()) * 2);
    for (NodeId id : sa) side.emplace(dense.find(id)->second, 0);
    for (NodeId id : sb) side.emplace(dense.find(id)->second, 1);
    size_t split = 0;
    for (const auto& [u, s] : side) {
      for (uint32_t k = succ_start[u]; k < succ_start[u + 1]; ++k) {
        auto it = side.find(succ_to[k]);
        if (it != side.end() && it->second != s) ++split;
      }
    }
    return split;
  };

  // Re-partitions the union of pages a and b; returns true (and installs
  // the new halves) when the split-edge count strictly improves. Touches
  // only pages[a], pages[b] and the page_of entries of their nodes, so
  // pair-disjoint refinements are independent.
  auto refine_pair = [&](int a, int b) -> bool {
    const std::vector<NodeId>& pa = (*pages)[a];
    const std::vector<NodeId>& pb = (*pages)[b];
    std::vector<NodeId> merged;
    merged.reserve(pa.size() + pb.size());
    merged.insert(merged.end(), pa.begin(), pa.end());
    merged.insert(merged.end(), pb.begin(), pb.end());

    const size_t before_split = count_split(pa, pb);
    PartitionGraph graph = PartitionGraph::FromNetwork(
        network, merged, options.use_access_weights,
        options.per_record_overhead);
    Bisection bisection = TwoWayPartition(graph, min_pg_size,
                                          options.algorithm,
                                          SubsetSeed(seed_base, merged));
    std::vector<NodeId> side_a, side_b;
    for (size_t i = 0; i < graph.NumNodes(); ++i) {
      (bisection.side[i] ? side_b : side_a).push_back(graph.ids[i]);
    }
    if (side_a.empty() || side_b.empty()) return false;
    // Respect page capacity.
    auto subset_bytes = [&](const std::vector<NodeId>& nodes) {
      size_t total = 0;
      for (NodeId id : nodes) total += bytes[dense.find(id)->second];
      return total;
    };
    if (subset_bytes(side_a) > capacity || subset_bytes(side_b) > capacity) {
      return false;
    }
    if (count_split(side_a, side_b) >= before_split) return false;
    for (NodeId id : side_a) page_of[dense.find(id)->second] = a;
    for (NodeId id : side_b) page_of[dense.find(id)->second] = b;
    (*pages)[a] = std::move(side_a);
    (*pages)[b] = std::move(side_b);
    return true;
  };

  const int threads = ThreadPool::ResolveThreadCount(options.num_threads);
  std::unique_ptr<ThreadPool> pool;  // created on the first parallel batch

  int improved_total = 0;
  for (int round = 0; round < rounds; ++round) {
    // Connected page pairs, collected into a sorted vector: refinement
    // order no longer depends on std::unordered_set hash iteration.
    std::vector<uint64_t> pairs;
    for (uint32_t u = 0; u < n; ++u) {
      const int32_t a = page_of[u];
      if (a < 0) continue;
      for (uint32_t k = succ_start[u]; k < succ_start[u + 1]; ++k) {
        const int32_t b = page_of[succ_to[k]];
        if (b < 0 || b == a) continue;
        const uint64_t lo = static_cast<uint64_t>(std::min(a, b));
        const uint64_t hi = static_cast<uint64_t>(std::max(a, b));
        pairs.push_back((lo << 32) | hi);
      }
    }
    std::sort(pairs.begin(), pairs.end());
    pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());

    // Peel maximal pair-disjoint matchings off the sorted pair list; the
    // pairs of one batch share no page, so their refinements commute and
    // can run concurrently without changing the result.
    int improved = 0;
    std::vector<uint64_t> remaining = std::move(pairs);
    std::vector<char> used(pages->size(), 0);
    while (!remaining.empty()) {
      std::fill(used.begin(), used.end(), 0);
      std::vector<std::pair<int, int>> batch;
      std::vector<uint64_t> deferred;
      for (uint64_t key : remaining) {
        const int a = static_cast<int>(key >> 32);
        const int b = static_cast<int>(key & 0xffffffffu);
        if (used[a] || used[b]) {
          deferred.push_back(key);
          continue;
        }
        used[a] = used[b] = 1;
        batch.emplace_back(a, b);
      }
      remaining = std::move(deferred);

      std::vector<char> batch_improved(batch.size(), 0);
      if (threads > 1 && batch.size() > 1) {
        if (!pool) pool = std::make_unique<ThreadPool>(threads);
        for (size_t i = 0; i < batch.size(); ++i) {
          pool->Submit([&, i] {
            batch_improved[i] = refine_pair(batch[i].first, batch[i].second);
          });
        }
        pool->WaitIdle();
      } else {
        for (size_t i = 0; i < batch.size(); ++i) {
          batch_improved[i] = refine_pair(batch[i].first, batch[i].second);
        }
      }
      for (char c : batch_improved) improved += c;
    }
    improved_total += improved;
    if (improved == 0) break;
  }
  return improved_total;
}

}  // namespace ccam
