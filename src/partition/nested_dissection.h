#ifndef CCAM_PARTITION_NESTED_DISSECTION_H_
#define CCAM_PARTITION_NESTED_DISSECTION_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/graph/network.h"
#include "src/partition/partition.h"

namespace ccam {

/// Options of the nested-dissection ordering. The defaults mirror the
/// clustering pipeline: the same two-way partitioner family, content-derived
/// seeds, and a num_threads knob whose every value produces the identical
/// order.
struct NestedDissectionOptions {
  /// Two-way partitioner used at every dissection level.
  PartitionAlgorithm algorithm = PartitionAlgorithm::kRatioCut;
  /// Subsets at or below this size stop dissecting and are ordered by
  /// ascending node id.
  size_t leaf_size = 16;
  /// Worker threads. 0 = hardware concurrency, 1 = sequential; the order is
  /// bit-identical for every value.
  int num_threads = 0;
  uint64_t seed = 42;
};

/// Derives a nested-dissection elimination order of `subset` from the
/// recursive-bisection partitioner: each level bisects the subset, derives a
/// vertex separator from the cut (the side-B endpoints of cut edges), orders
/// both separator-free halves recursively, and places the separator last.
/// Contracting nodes in this order keeps every separator — the nodes whose
/// elimination would create the densest shortcut cliques — at the top of the
/// hierarchy, which is what bounds the shortcut count (see PAPERS.md,
/// "Faster and Better Nested Dissection Orders for CCH").
///
/// The returned order lists nodes least-important-first (position = rank).
/// It is a pure function of (network, subset, options): per-subproblem seeds
/// are derived from subproblem content exactly as in ClusterNodesIntoPages,
/// so the task-parallel and sequential paths produce the same bytes.
Result<std::vector<NodeId>> NestedDissectionOrder(
    const Network& network, const std::vector<NodeId>& subset,
    const NestedDissectionOptions& options);

}  // namespace ccam

#endif  // CCAM_PARTITION_NESTED_DISSECTION_H_
