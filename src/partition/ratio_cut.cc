#include <cmath>
#include <set>
#include <utility>
#include <vector>

#include "src/partition/bisect_internal.h"

namespace ccam {

namespace {

using partition_internal::BfsSeed;
using partition_internal::MoveGain;

/// Ratio-cut objective (Cheng & Wei): cut / (|A| * |B|), with side sizes in
/// bytes. Smaller is better; the denominator rewards balanced, natural
/// cluster boundaries without forcing exact bisection — which is why the
/// paper adopts it for packing variable-size records into pages.
double Ratio(double cut, size_t size_a, size_t size_b) {
  if (size_a == 0 || size_b == 0) return 1e300;
  return cut / (static_cast<double>(size_a) * static_cast<double>(size_b));
}

/// One improvement pass in the style of Cheng & Wei's iterative shifting:
/// tentatively move the highest-gain feasible node (each node at most once
/// per pass, both sides kept at or above min_side_size), score every
/// applied prefix by the resulting ratio, keep the best prefix and roll
/// back the rest. Returns true if the ratio improved.
///
/// Selection is by cut gain from an ordered set rather than by evaluating
/// the resulting ratio of every candidate at every step: the exhaustive
/// rule costs O(n) per step — O(n^2) per pass — which made the *root*
/// bisection dominate cluster-nodes-into-pages on large networks and put a
/// hard Amdahl ceiling on the task-parallel clustering pipeline. The ratio
/// objective still decides which prefix survives, so balanced natural cuts
/// win as before, at O((n + m) log n) per pass.
bool RatioCutPass(const PartitionGraph& graph, std::vector<bool>* side,
                  size_t* size_a, size_t* size_b, size_t min_side_size) {
  const size_t n = graph.NumNodes();
  std::vector<double> gain(n);
  std::vector<bool> locked(n, false);
  std::set<std::pair<double, int>> pq;  // ascending; best gain = rbegin
  for (size_t i = 0; i < n; ++i) {
    gain[i] = MoveGain(graph, *side, static_cast<int>(i));
    pq.insert({gain[i], static_cast<int>(i)});
  }
  double cut = CutWeight(graph, *side);
  size_t a = *size_a, b = *size_b;
  const double initial_ratio = Ratio(cut, a, b);
  double best_ratio = initial_ratio;
  size_t best_len = 0;

  std::vector<int> moves;
  moves.reserve(n);

  while (!pq.empty()) {
    // Highest-gain move whose source side keeps min_side_size bytes.
    int chosen = -1;
    for (auto it = pq.rbegin(); it != pq.rend(); ++it) {
      int i = it->second;
      size_t sz = graph.node_sizes[i];
      size_t source = (*side)[i] ? b : a;
      if (source >= sz && source - sz >= min_side_size) {
        chosen = i;
        break;
      }
    }
    if (chosen < 0) break;
    pq.erase({gain[chosen], chosen});

    // Apply tentatively.
    locked[chosen] = true;
    size_t sz = graph.node_sizes[chosen];
    if ((*side)[chosen]) {
      b -= sz;
      a += sz;
    } else {
      a -= sz;
      b += sz;
    }
    (*side)[chosen] = !(*side)[chosen];
    cut -= gain[chosen];
    moves.push_back(chosen);
    double r = Ratio(cut, a, b);
    if (r < best_ratio - 1e-18) {
      best_ratio = r;
      best_len = moves.size();
    }
    // Moving `chosen` flips the sign of its contribution to each neighbor's
    // gain: a same-side edge became cross-side or vice versa.
    for (const PartitionGraph::Adj& e : graph.Neighbors(chosen)) {
      if (locked[e.to]) continue;
      pq.erase({gain[e.to], e.to});
      gain[e.to] = MoveGain(graph, *side, e.to);
      pq.insert({gain[e.to], e.to});
    }
  }

  // Roll back past the best prefix.
  for (size_t k = moves.size(); k > best_len; --k) {
    int i = moves[k - 1];
    size_t sz = graph.node_sizes[i];
    if ((*side)[i]) {
      b -= sz;
      a += sz;
    } else {
      a -= sz;
      b += sz;
    }
    (*side)[i] = !(*side)[i];
  }
  *size_a = a;
  *size_b = b;
  return best_ratio < initial_ratio - 1e-18;
}

}  // namespace

Bisection RatioCutBisect(const PartitionGraph& graph, size_t min_side_size,
                         uint64_t seed) {
  Bisection result;
  const size_t n = graph.NumNodes();
  if (n == 0) return result;
  size_t total = graph.TotalSize();
  result.side = BfsSeed(graph, total / 2, seed);
  SideSizes(graph, result.side, &result.size_a, &result.size_b);

  const int kMaxPasses = 16;
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    if (!RatioCutPass(graph, &result.side, &result.size_a, &result.size_b,
                      min_side_size)) {
      break;
    }
  }
  result.cut_weight = CutWeight(graph, result.side);
  return result;
}

}  // namespace ccam
