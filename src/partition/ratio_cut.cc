#include <cmath>
#include <vector>

#include "src/partition/bisect_internal.h"

namespace ccam {

namespace {

using partition_internal::BfsSeed;
using partition_internal::MoveGain;

/// Ratio-cut objective (Cheng & Wei): cut / (|A| * |B|), with side sizes in
/// bytes. Smaller is better; the denominator rewards balanced, natural
/// cluster boundaries without forcing exact bisection — which is why the
/// paper adopts it for packing variable-size records into pages.
double Ratio(double cut, size_t size_a, size_t size_b) {
  if (size_a == 0 || size_b == 0) return 1e300;
  return cut / (static_cast<double>(size_a) * static_cast<double>(size_b));
}

/// One improvement pass in the style of Cheng & Wei's iterative shifting:
/// tentatively move the node that minimizes the resulting ratio (each node
/// at most once per pass), remember the best prefix, and roll back the
/// rest. Returns true if the ratio improved.
bool RatioCutPass(const PartitionGraph& graph, std::vector<bool>* side,
                  size_t* size_a, size_t* size_b, size_t min_side_size) {
  const size_t n = graph.NumNodes();
  std::vector<double> gain(n);
  std::vector<bool> locked(n, false);
  for (size_t i = 0; i < n; ++i) {
    gain[i] = MoveGain(graph, *side, static_cast<int>(i));
  }
  double cut = CutWeight(graph, *side);
  size_t a = *size_a, b = *size_b;
  const double initial_ratio = Ratio(cut, a, b);
  double best_ratio = initial_ratio;
  size_t best_len = 0;

  struct Move {
    int node;
  };
  std::vector<Move> moves;
  moves.reserve(n);

  for (size_t step = 0; step < n; ++step) {
    int chosen = -1;
    double chosen_ratio = 1e300;
    for (size_t i = 0; i < n; ++i) {
      if (locked[i]) continue;
      size_t sz = graph.node_sizes[i];
      size_t na, nb;
      if ((*side)[i]) {  // B -> A
        if (b < sz || b - sz < min_side_size) continue;
        na = a + sz;
        nb = b - sz;
      } else {  // A -> B
        if (a < sz || a - sz < min_side_size) continue;
        na = a - sz;
        nb = b + sz;
      }
      double r = Ratio(cut - gain[i], na, nb);
      if (r < chosen_ratio) {
        chosen_ratio = r;
        chosen = static_cast<int>(i);
      }
    }
    if (chosen < 0) break;

    // Apply tentatively.
    locked[chosen] = true;
    size_t sz = graph.node_sizes[chosen];
    if ((*side)[chosen]) {
      b -= sz;
      a += sz;
    } else {
      a -= sz;
      b += sz;
    }
    (*side)[chosen] = !(*side)[chosen];
    cut -= gain[chosen];
    moves.push_back({chosen});
    if (chosen_ratio < best_ratio - 1e-18) {
      best_ratio = chosen_ratio;
      best_len = moves.size();
    }
    // Moving `chosen` flips the sign of its contribution to each neighbor's
    // gain: a same-side edge became cross-side or vice versa.
    for (const PartitionGraph::Adj& e : graph.adj[chosen]) {
      if (locked[e.to]) continue;
      gain[e.to] = MoveGain(graph, *side, e.to);
    }
    gain[chosen] = -gain[chosen];
  }

  // Roll back past the best prefix.
  for (size_t k = moves.size(); k > best_len; --k) {
    int i = moves[k - 1].node;
    size_t sz = graph.node_sizes[i];
    if ((*side)[i]) {
      b -= sz;
      a += sz;
    } else {
      a -= sz;
      b += sz;
    }
    (*side)[i] = !(*side)[i];
  }
  *size_a = a;
  *size_b = b;
  return best_ratio < initial_ratio - 1e-18;
}

}  // namespace

Bisection RatioCutBisect(const PartitionGraph& graph, size_t min_side_size,
                         uint64_t seed) {
  Bisection result;
  const size_t n = graph.NumNodes();
  if (n == 0) return result;
  size_t total = graph.TotalSize();
  result.side = BfsSeed(graph, total / 2, seed);
  SideSizes(graph, result.side, &result.size_a, &result.size_b);

  const int kMaxPasses = 16;
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    if (!RatioCutPass(graph, &result.side, &result.size_a, &result.size_b,
                      min_side_size)) {
      break;
    }
  }
  result.cut_weight = CutWeight(graph, result.side);
  return result;
}

}  // namespace ccam
