#include <cmath>
#include <set>
#include <vector>

#include "src/partition/bisect_internal.h"

namespace ccam {

namespace {

using partition_internal::BfsSeed;
using partition_internal::MoveGain;

/// One Fiduccia–Mattheyses pass: tentatively moves every node at most once
/// in descending gain order (subject to the minimum side size), then keeps
/// the best prefix. Returns true if the pass improved the cut.
bool FmPass(const PartitionGraph& graph, std::vector<bool>* side,
            size_t* size_a, size_t* size_b, size_t min_side_size) {
  const size_t n = graph.NumNodes();
  std::vector<double> gain(n);
  std::set<std::pair<double, int>> pq;  // ordered ascending; best = rbegin
  std::vector<bool> locked(n, false);
  for (size_t i = 0; i < n; ++i) {
    gain[i] = MoveGain(graph, *side, static_cast<int>(i));
    pq.insert({gain[i], static_cast<int>(i)});
  }

  struct Move {
    int node;
    double gain;
  };
  std::vector<Move> moves;
  moves.reserve(n);
  double cumulative = 0.0;
  double best = 0.0;
  size_t best_len = 0;

  size_t a = *size_a, b = *size_b;
  while (!pq.empty()) {
    // Highest-gain feasible move: moving i must leave its source side with
    // at least min_side_size bytes (and at least one node implicitly,
    // because sizes are positive).
    int chosen = -1;
    for (auto it = pq.rbegin(); it != pq.rend(); ++it) {
      int i = it->second;
      size_t source = (*side)[i] ? b : a;
      if (source >= graph.node_sizes[i] &&
          source - graph.node_sizes[i] >= min_side_size) {
        chosen = i;
        break;
      }
    }
    if (chosen < 0) break;
    pq.erase({gain[chosen], chosen});
    locked[chosen] = true;
    // Apply tentatively.
    bool from_b = (*side)[chosen];
    if (from_b) {
      b -= graph.node_sizes[chosen];
      a += graph.node_sizes[chosen];
    } else {
      a -= graph.node_sizes[chosen];
      b += graph.node_sizes[chosen];
    }
    (*side)[chosen] = !from_b;
    cumulative += gain[chosen];
    moves.push_back({chosen, gain[chosen]});
    if (cumulative > best + 1e-12) {
      best = cumulative;
      best_len = moves.size();
    }
    // Update the gains of unlocked neighbors.
    for (const PartitionGraph::Adj& e : graph.Neighbors(chosen)) {
      if (locked[e.to]) continue;
      pq.erase({gain[e.to], e.to});
      gain[e.to] = MoveGain(graph, *side, e.to);
      pq.insert({gain[e.to], e.to});
    }
  }

  // Roll back moves beyond the best prefix.
  for (size_t k = moves.size(); k > best_len; --k) {
    int i = moves[k - 1].node;
    bool from_b = (*side)[i];
    if (from_b) {
      b -= graph.node_sizes[i];
      a += graph.node_sizes[i];
    } else {
      a -= graph.node_sizes[i];
      b += graph.node_sizes[i];
    }
    (*side)[i] = !from_b;
  }
  *size_a = a;
  *size_b = b;
  return best > 1e-12;
}

}  // namespace

Bisection FmBisect(const PartitionGraph& graph, size_t min_side_size,
                   uint64_t seed) {
  Bisection result;
  const size_t n = graph.NumNodes();
  if (n == 0) return result;
  size_t total = graph.TotalSize();
  result.side = BfsSeed(graph, total / 2, seed);
  SideSizes(graph, result.side, &result.size_a, &result.size_b);

  const int kMaxPasses = 16;
  for (int pass = 0; pass < kMaxPasses; ++pass) {
    if (!FmPass(graph, &result.side, &result.size_a, &result.size_b,
                min_side_size)) {
      break;
    }
  }
  result.cut_weight = CutWeight(graph, result.side);
  return result;
}

}  // namespace ccam
