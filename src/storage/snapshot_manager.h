#ifndef CCAM_STORAGE_SNAPSHOT_MANAGER_H_
#define CCAM_STORAGE_SNAPSHOT_MANAGER_H_

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/common/metrics.h"
#include "src/common/request_context.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/core/ccam.h"
#include "src/storage/delta_log.h"

namespace ccam {

class SnapshotManager;
class SnapshotSession;

/// One immutable published image of the network plus the in-memory overlay
/// of mutations logged against it since it was published. The base file is
/// a fully reclustered Ccam with its own DiskManager and BufferPool, so
/// versions never share I/O state: readers of a retiring version keep
/// their buffered pages while the new version warms its own pool.
///
/// The overlay maps node-id -> the node's current full record (nullopt =
/// deleted). It only ever *grows* while the version is current; once a
/// newer version is published the overlay is frozen — the version is a
/// consistent snapshot of the instant it was superseded, which is exactly
/// what a reader pinned to it should keep seeing.
class SnapshotVersion {
 public:
  SnapshotVersion(uint64_t id, std::unique_ptr<Ccam> file)
      : id_(id), file_(std::move(file)) {}

  uint64_t id() const { return id_; }
  Ccam* file() const { return file_.get(); }

  /// True when the overlay has an entry for `id` (then `*out` is the
  /// overlay record, nullopt for a tombstone).
  bool OverlayLookup(NodeId id, std::optional<NodeRecord>* out) const {
    std::shared_lock<std::shared_mutex> lock(overlay_mu_);
    auto it = overlay_.find(id);
    if (it == overlay_.end()) return false;
    *out = it->second;
    return true;
  }

  size_t OverlaySize() const {
    std::shared_lock<std::shared_mutex> lock(overlay_mu_);
    return overlay_.size();
  }

  /// Node-ids visible in this version: the base image's page map plus
  /// overlay inserts, minus overlay tombstones. Ascending.
  std::vector<NodeId> LiveNodeIds() const;
  size_t NumLiveNodes() const;

  /// Sessions currently pinning this version.
  uint64_t refs() const { return refs_.load(std::memory_order_acquire); }

 private:
  friend class SnapshotManager;

  void OverlaySet(NodeId id, std::optional<NodeRecord> record) {
    std::unique_lock<std::shared_mutex> lock(overlay_mu_);
    overlay_[id] = std::move(record);
  }

  uint64_t id_;
  std::unique_ptr<Ccam> file_;
  mutable std::shared_mutex overlay_mu_;
  std::unordered_map<NodeId, std::optional<NodeRecord>> overlay_;
  std::atomic<uint64_t> refs_{0};
};

/// Tuning knobs of a snapshot store.
struct SnapshotOptions {
  /// Page size, pool size, partitioner and thread count of every version's
  /// base file (durability and hierarchy_overlay must stay off: the delta
  /// log is the store's durability mechanism, and overlays over a retiring
  /// base are out of scope — see docs/INTERNALS.md, "Snapshot lifecycle").
  AccessMethodOptions am;
  /// Directory holding MANIFEST, delta.log and the version images.
  std::string dir;
};

/// Versioned snapshot store: the immutable-snapshot + mutation-log split
/// of NetworkFile, with online reorganization by atomic version swap.
///
/// Layout of `dir`:
///   MANIFEST     current version id, image name, folded_lsn (CRC-sealed;
///                replaced only via MANIFEST.tmp + atomic rename — the
///                rename is the publish commit point)
///   v<N>.img     the version's base image (NetworkFile::SaveImage format)
///   delta.log    logical mutations since the current image's folded_lsn
///                (older frames may linger until the next compaction;
///                recovery filters by lsn, so they are harmless)
///
/// Mutations (single-writer) validate against the authoritative in-memory
/// network, append to the delta log and flush — the acknowledgment
/// barrier — then publish the affected nodes' new records into the current
/// version's overlay, where concurrent readers see them immediately.
///
/// Reorganization never touches the serving version: the reorganizer
/// copies the network under the writer lock (the cut), builds a fully
/// reclustered Ccam image off to the side (reusing the parallel
/// recursive-bisection clusterer), and publishes it by writing MANIFEST.tmp
/// and renaming it over MANIFEST. Readers keep their pinned version
/// throughout — a session re-acquires the current version only when it
/// calls Refresh() — and the old version's memory is released when its
/// session refcount drains. The old image file and the folded prefix of
/// the delta log are removed right after publication (the retire steps);
/// both are crash-safe because recovery trusts only MANIFEST.
///
/// Failpoints ("snapshot.*"), evaluated on the mutation and reorganization
/// protocol paths: snapshot.log.append, snapshot.log.flush (delta log),
/// snapshot.build (x2 around the image save), snapshot.publish (x3 around
/// the MANIFEST write + rename), snapshot.retire (x4 around image unlink
/// and log compaction). A kCrash action leaves the torn on-disk shape of
/// that instant and halts the store; tools/crashsim sweeps every site and
/// proves recovery lands on exactly the old or exactly the new version.
class SnapshotManager {
 public:
  ~SnapshotManager();

  SnapshotManager(const SnapshotManager&) = delete;
  SnapshotManager& operator=(const SnapshotManager&) = delete;

  /// Initializes a fresh store in options.dir (which must be empty or
  /// absent) from `initial`, publishing it as version 1.
  static Result<std::unique_ptr<SnapshotManager>> Create(
      const SnapshotOptions& options, const Network& initial);

  /// Recovers a store from options.dir: reads MANIFEST, opens the image it
  /// names, replays delta-log records with lsn > folded_lsn, and removes
  /// stray files (unpublished build images, leftover tmp files). A torn
  /// delta-log tail is truncated; damage inside the durable region is a
  /// typed Corruption.
  static Result<std::unique_ptr<SnapshotManager>> Open(
      const SnapshotOptions& options);

  /// --- Mutations (single-writer) ----------------------------------------
  /// Validated against the live network (typed NotFound / AlreadyExists on
  /// logical conflicts), acknowledged at the delta-log flush barrier, then
  /// visible to every session of the current version. InsertNode follows
  /// NetworkFile::InsertNode's convention: adjacency entries referring to
  /// absent nodes are dropped.
  Status InsertNode(const NodeRecord& record);
  Status DeleteNode(NodeId id);
  Status InsertEdge(NodeId u, NodeId v, float cost);
  Status DeleteEdge(NodeId u, NodeId v);

  /// Opens a read session pinned to the current version. One session per
  /// thread, like QuerySession; any number of sessions run concurrently
  /// with mutations and reorganizations.
  std::unique_ptr<SnapshotSession> OpenSession();

  /// --- Reorganization ----------------------------------------------------
  /// Builds and publishes a fully reclustered next version synchronously.
  Status ReorganizeNow();

  /// Starts the build on a background thread. Fails with AlreadyExists
  /// when a reorganization is already running.
  Status StartBackgroundReorg();

  /// Waits for the background build (if any) and returns its status.
  Status WaitForReorg();

  bool ReorgActive() const;

  /// Test hook: when gated, a reorganization completes its build, then
  /// parks before the publish step until ReleasePublishGate(). Lets tests
  /// compare reader behavior against a quiesced run while a build is
  /// provably in flight.
  void GatePublish(bool gate);
  void ReleasePublishGate();

  /// --- Introspection ------------------------------------------------------
  uint64_t CurrentVersionId() const;
  /// Versions still held in memory: the current one plus every retired
  /// version whose session refcount has not drained yet.
  size_t LiveVersionCount() const;
  /// Conservation counters: every session acquire is matched by exactly
  /// one release (asserted by tests/snapshot_swap_test.cc).
  uint64_t TotalAcquires() const {
    return total_acquires_.load(std::memory_order_acquire);
  }
  uint64_t TotalReleases() const {
    return total_releases_.load(std::memory_order_acquire);
  }
  uint64_t ReorgCount() const {
    return reorg_count_.load(std::memory_order_acquire);
  }
  /// Next log sequence number (1 + the last acknowledged mutation's lsn).
  uint64_t NextLsn() const;

  /// The data page anchoring `id`'s region in the current version: its
  /// base-image page, or the image's first page for nodes that exist only
  /// in the overlay (a placement hint for the serving layer's batching —
  /// never a correctness input). NotFound for absent or deleted nodes.
  Result<PageId> RegionOf(NodeId id);

  /// The authoritative logical network (the differential oracle's
  /// reference). Call while no mutation is in flight.
  const Network& network() const { return net_; }

  /// Structural invariants of the current version's base image plus a full
  /// comparison of the session-visible state (base + overlay) against the
  /// authoritative network. Call while quiescent.
  Status CheckConsistency();

  bool halted() const { return halted_.load(std::memory_order_acquire); }

  /// Attaches the injector consulted by the snapshot.* failpoints (the
  /// versions' private disks are deliberately not wired: the protocol's
  /// kill-point space is the snapshot.* set).
  void SetFaultInjector(FaultInjector* faults);

  /// Attaches the "snapshot.*" metric family: counters
  /// snapshot.publish / snapshot.retire / snapshot.acquire /
  /// snapshot.release / snapshot.mutations, gauge snapshot.live_versions,
  /// histogram snapshot.build_us. Null detaches; attach while quiescent.
  void SetMetrics(MetricsRegistry* metrics);
  MetricsRegistry* metrics() const { return metrics_; }

  const SnapshotOptions& options() const { return options_; }

  /// Validates `record` against `net` (logical preconditions only). Public
  /// so the crash harness can mirror the acknowledged stream through the
  /// exact same code path recovery replays.
  static Status ValidateMutation(const Network& net, const DeltaRecord& record);
  /// Applies a validated record; the single replay path shared by the
  /// mutation path, recovery and the crash harness's oracle, so all three
  /// produce identical networks.
  static Status ApplyMutation(Network* net, const DeltaRecord& record);

 private:
  friend class SnapshotSession;

  explicit SnapshotManager(const SnapshotOptions& options);

  std::shared_ptr<SnapshotVersion> Acquire();
  void Release(const std::shared_ptr<SnapshotVersion>& version);
  /// Nodes whose full records change when `record` is applied to `net`
  /// (evaluated before application; includes nodes being deleted).
  static std::vector<NodeId> AffectedNodes(const Network& net,
                                           const DeltaRecord& record);

  Status ApplyAndLog(DeltaRecord record);

  /// The full build/publish/retire protocol of one reorganization.
  Status DoReorganize();
  /// Publish + retire steps (the swap); requires mu_ held.
  Status PublishAndRetireLocked(std::unique_ptr<Ccam> file, uint64_t new_id,
                                uint64_t cut_lsn);

  /// Evaluates failpoint `point`; on a kCrash action runs `torn` (the
  /// site-specific torn on-disk effect, may be null) and halts the store.
  Status Failpoint(const char* point,
                   const std::function<void(size_t)>& torn = nullptr);

  Status WriteManifest(uint64_t version_id, const std::string& image_name,
                       uint64_t folded_lsn, size_t truncate_to);
  struct Manifest {
    uint64_t version_id = 0;
    std::string image_name;
    uint64_t folded_lsn = 0;
  };
  static Result<Manifest> ReadManifest(const std::string& path);

  std::string ManifestPath() const;
  std::string DeltaLogPath() const;
  std::string ImagePath(uint64_t version_id) const;
  static std::string ImageName(uint64_t version_id);

  SnapshotOptions options_;

  /// Guards net_, versions_, current_, the pending overlay, the delta log
  /// and the manifest I/O. Readers only take it inside Acquire/Release.
  mutable std::mutex mu_;
  Network net_;
  std::vector<std::shared_ptr<SnapshotVersion>> versions_;
  std::shared_ptr<SnapshotVersion> current_;
  uint64_t next_version_id_ = 1;
  uint64_t next_lsn_ = 1;
  uint64_t folded_lsn_ = 0;
  DeltaLog log_;
  /// Un-folded delta records (lsn > folded_lsn_), kept in memory so
  /// compaction can rewrite the log without re-reading the file.
  std::vector<DeltaRecord> retained_;

  /// Build state: mutations arriving while a build is in flight land in
  /// the pending overlay, which becomes the *new* version's overlay at
  /// publish (the new base contains the network as of the cut; the pending
  /// overlay is exactly the post-cut tail).
  bool build_active_ = false;
  std::unordered_map<NodeId, std::optional<NodeRecord>> pending_overlay_;

  std::thread reorg_thread_;
  bool reorg_thread_running_ = false;
  Status reorg_status_;

  /// Publish gate (test hook).
  std::mutex gate_mu_;
  std::condition_variable gate_cv_;
  bool gate_publish_ = false;
  bool gate_open_ = false;

  std::atomic<bool> halted_{false};
  std::atomic<uint64_t> total_acquires_{0};
  std::atomic<uint64_t> total_releases_{0};
  std::atomic<uint64_t> reorg_count_{0};

  FaultInjector* faults_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  MetricCounter* m_publish_ = nullptr;
  MetricCounter* m_retire_ = nullptr;
  MetricCounter* m_acquire_ = nullptr;
  MetricCounter* m_release_ = nullptr;
  MetricCounter* m_mutations_ = nullptr;
  MetricGauge* g_live_versions_ = nullptr;
  MetricHistogram* h_build_us_ = nullptr;
};

/// A read-only query stream over a SnapshotManager, pinned to one version.
/// Implements AccessMethod so every query driver runs against it
/// unchanged. Reads resolve through the pinned version's overlay first
/// (the in-memory mutation delta — no page I/O) and fall through to the
/// base image's thread-safe shared read path, charged to this session's
/// IoStats exactly like QuerySession. With an empty overlay the session
/// is I/O-for-I/O identical to a QuerySession on the base file — the
/// bit-identical-accounting guarantee tests/snapshot_swap_test.cc gates.
///
/// The session holds its version until Refresh() re-acquires the current
/// one: queries in flight never migrate between versions, an in-progress
/// batch keeps its page pins valid across a concurrent swap, and a
/// long-lived session simply keeps reading its (frozen) snapshot.
///
/// Concurrency contract: one session per thread, like QuerySession (same
/// debug-build thread binding; RebindToCurrentThread at handoffs).
class SnapshotSession : public AccessMethod {
 public:
  explicit SnapshotSession(SnapshotManager* manager)
      : manager_(manager), version_(manager->Acquire()) {}

  ~SnapshotSession() override { manager_->Release(version_); }

  SnapshotSession(const SnapshotSession&) = delete;
  SnapshotSession& operator=(const SnapshotSession&) = delete;

  std::string Name() const override {
    return version_->file()->Name() + "/snapshot-session";
  }

  /// Re-acquires the current version when it changed. Call only between
  /// queries (no pins or in-flight reads); per-session IoStats accumulate
  /// across refreshes.
  void Refresh();

  uint64_t version_id() const { return version_->id(); }
  SnapshotVersion* version() const { return version_.get(); }

  Status Create(const Network&) override {
    return Status::NotSupported("read-only snapshot session");
  }

  Result<NodeRecord> Find(NodeId id) override;
  Result<NodeRecord> GetASuccessor(NodeId from, NodeId to) override;
  Result<std::vector<NodeRecord>> GetSuccessors(NodeId id) override;

  Status InsertNode(const NodeRecord&, ReorgPolicy) override {
    return Status::NotSupported("read-only snapshot session");
  }
  Status DeleteNode(NodeId, ReorgPolicy) override {
    return Status::NotSupported("read-only snapshot session");
  }
  Status InsertEdge(NodeId, NodeId, float, ReorgPolicy) override {
    return Status::NotSupported("read-only snapshot session");
  }
  Status DeleteEdge(NodeId, NodeId, ReorgPolicy) override {
    return Status::NotSupported("read-only snapshot session");
  }

  IoStats DataIoStats() const override { return io_; }
  void ResetIoStats() override { io_ = IoStats{}; }

  const NodePageMap& PageMap() const override {
    return version_->file()->PageMap();
  }
  BufferPool* buffer_pool() override {
    return version_->file()->buffer_pool();
  }
  bool LastOpChangedStructure() const override { return false; }
  size_t NumDataPages() const override {
    return version_->file()->NumDataPages();
  }

  std::vector<NodeId> LiveNodeIds() const override {
    return version_->LiveNodeIds();
  }
  size_t NumLiveNodes() const override { return version_->NumLiveNodes(); }

  MetricsRegistry* metrics() const override { return manager_->metrics(); }

  /// Page pinning for the serving layer's region batching, identical to
  /// QuerySession::PinDataPage(s) but against the pinned version's pool.
  PageGuard PinDataPage(PageId id) {
    DebugCheckThread();
    return PageGuard(version_->file()->buffer_pool(), id, &io_);
  }
  Status PinDataPages(const std::vector<PageId>& ids,
                      std::vector<PageGuard>* guards) {
    DebugCheckThread();
    if (ctx_ != nullptr) CCAM_RETURN_NOT_OK(ctx_->Check());
    return version_->file()->buffer_pool()->FetchPages(ids, guards, &io_);
  }

  /// Lifecycle context for reads through this session, exactly like
  /// QuerySession::SetRequestContext: not owned, nullptr = checks off.
  void SetRequestContext(RequestContext* ctx) { ctx_ = ctx; }
  RequestContext* request_context() const override { return ctx_; }

  void RebindToCurrentThread() {
#ifndef NDEBUG
    bound_thread_ = std::this_thread::get_id();
#endif
  }

 private:
  void DebugCheckThread() {
#ifndef NDEBUG
    if (bound_thread_ == std::thread::id()) {
      bound_thread_ = std::this_thread::get_id();
    }
    assert(bound_thread_ == std::this_thread::get_id() &&
           "SnapshotSession used from two threads: open one session per "
           "thread (or RebindToCurrentThread() at a handoff)");
#endif
  }

  SnapshotManager* manager_;
  std::shared_ptr<SnapshotVersion> version_;
  RequestContext* ctx_ = nullptr;  // not owned; null = lifecycle checks off
  IoStats io_;  // per-session: the session is single-threaded by contract
#ifndef NDEBUG
  std::thread::id bound_thread_{};
#endif
};

}  // namespace ccam

#endif  // CCAM_STORAGE_SNAPSHOT_MANAGER_H_
