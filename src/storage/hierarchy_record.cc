#include "src/storage/hierarchy_record.h"

#include "src/common/coding.h"

namespace ccam {

namespace {

void EncodeArcs(std::string* out, const std::vector<HierarchyArc>& arcs) {
  for (const HierarchyArc& arc : arcs) {
    PutFixed32(out, arc.node);
    PutDouble(out, arc.cost);
    PutFixed32(out, arc.via);
  }
}

bool DecodeArcs(Decoder* dec, size_t count, std::vector<HierarchyArc>* arcs) {
  arcs->resize(count);
  for (size_t i = 0; i < count; ++i) {
    (*arcs)[i].node = dec->GetFixed32();
    (*arcs)[i].cost = dec->GetDouble();
    (*arcs)[i].via = dec->GetFixed32();
  }
  return dec->Ok();
}

}  // namespace

void HierarchyNodeRecord::EncodeTo(std::string* out) const {
  PutFixed32(out, id);
  PutFixed32(out, rank);
  PutFixed16(out, static_cast<uint16_t>(up.size()));
  PutFixed16(out, static_cast<uint16_t>(down.size()));
  EncodeArcs(out, up);
  EncodeArcs(out, down);
}

Result<HierarchyNodeRecord> HierarchyNodeRecord::Decode(
    std::string_view bytes) {
  Decoder dec(bytes.data(), bytes.size());
  HierarchyNodeRecord rec;
  rec.id = dec.GetFixed32();
  rec.rank = dec.GetFixed32();
  const size_t up_count = dec.GetFixed16();
  const size_t down_count = dec.GetFixed16();
  if (!dec.Ok() ||
      dec.Remaining() != (up_count + down_count) * kHierarchyArcBytes) {
    return Status::Corruption("hierarchy record truncated");
  }
  if (!DecodeArcs(&dec, up_count, &rec.up) ||
      !DecodeArcs(&dec, down_count, &rec.down)) {
    return Status::Corruption("hierarchy record arc list truncated");
  }
  return rec;
}

NodeId HierarchyNodeRecord::PeekId(std::string_view bytes) {
  if (bytes.size() < 4) return kInvalidNodeId;
  return DecodeFixed32(bytes.data());
}

Result<HierarchyArc> HierarchyNodeRecord::UpArcTo(NodeId node) const {
  for (const HierarchyArc& arc : up) {
    if (arc.node == node) return arc;
  }
  return Status::NotFound("no upward arc " + std::to_string(id) + " -> " +
                          std::to_string(node));
}

Result<HierarchyArc> HierarchyNodeRecord::DownArcFrom(NodeId node) const {
  for (const HierarchyArc& arc : down) {
    if (arc.node == node) return arc;
  }
  return Status::NotFound("no downward arc " + std::to_string(node) + " -> " +
                          std::to_string(id));
}

void HierarchyMeta::EncodeTo(std::string* out) const {
  PutFixed32(out, kHierarchyMetaMagic);
  PutFixed32(out, version);
  PutFixed64(out, num_nodes);
  PutFixed64(out, num_shortcuts);
}

Result<HierarchyMeta> HierarchyMeta::Decode(std::string_view bytes) {
  Decoder dec(bytes.data(), bytes.size());
  const uint32_t magic = dec.GetFixed32();
  HierarchyMeta meta;
  meta.version = dec.GetFixed32();
  meta.num_nodes = dec.GetFixed64();
  meta.num_shortcuts = dec.GetFixed64();
  if (!dec.Ok() || magic != kHierarchyMetaMagic) {
    return Status::Corruption("hierarchy metadata record invalid");
  }
  if (meta.version != kHierarchyFormatVersion) {
    return Status::Corruption("hierarchy overlay format version " +
                              std::to_string(meta.version) + " unsupported");
  }
  return meta;
}

}  // namespace ccam
