#ifndef CCAM_STORAGE_IO_STATS_H_
#define CCAM_STORAGE_IO_STATS_H_

#include <cstdint>

namespace ccam {

/// Page I/O counters. The paper's experiments report the *number of data
/// page accesses*; these counters are the source of that metric.
struct IoStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t allocs = 0;
  uint64_t frees = 0;

  uint64_t Accesses() const { return reads + writes; }

  friend IoStats operator-(const IoStats& a, const IoStats& b) {
    return {a.reads - b.reads, a.writes - b.writes, a.allocs - b.allocs,
            a.frees - b.frees};
  }

  friend bool operator==(const IoStats& a, const IoStats& b) {
    return a.reads == b.reads && a.writes == b.writes &&
           a.allocs == b.allocs && a.frees == b.frees;
  }
};

}  // namespace ccam

#endif  // CCAM_STORAGE_IO_STATS_H_
