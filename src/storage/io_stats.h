#ifndef CCAM_STORAGE_IO_STATS_H_
#define CCAM_STORAGE_IO_STATS_H_

#include <cstdint>

namespace ccam {

/// Page I/O counters. The paper's experiments report the *number of data
/// page accesses*; these counters are the source of that metric.
struct IoStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t allocs = 0;
  uint64_t frees = 0;

  uint64_t Accesses() const { return reads + writes; }

  /// Delta between two snapshots, per-field *saturating* at zero. A
  /// "before" snapshot can legitimately exceed "after" when the counters
  /// were reset in between — a session outliving a pool Reset(), a bench
  /// sampling across LoadFromFile() (which zeroes the disk counters) — and
  /// the old wrapping subtraction silently turned that into a huge bogus
  /// delta that poisoned every derived average. A saturated field reads as
  /// "no accesses since the reset", which is the honest lower bound.
  friend IoStats operator-(const IoStats& a, const IoStats& b) {
    auto sub = [](uint64_t x, uint64_t y) { return x >= y ? x - y : 0; };
    return {sub(a.reads, b.reads), sub(a.writes, b.writes),
            sub(a.allocs, b.allocs), sub(a.frees, b.frees)};
  }

  friend bool operator==(const IoStats& a, const IoStats& b) {
    return a.reads == b.reads && a.writes == b.writes &&
           a.allocs == b.allocs && a.frees == b.frees;
  }
};

}  // namespace ccam

#endif  // CCAM_STORAGE_IO_STATS_H_
