#include "src/storage/disk_manager.h"

#include <chrono>
#include <cstring>
#include <fstream>
#include <mutex>
#include <thread>

#include "src/common/coding.h"

namespace ccam {

DiskManager::DiskManager(size_t page_size) : page_size_(page_size) {}

namespace {

/// Status for an injected kError / kNoSpace action with page-id context.
Status InjectedStatus(const FaultAction& fault, const std::string& op,
                      PageId id) {
  std::string where = op + " of page " + std::to_string(id);
  if (fault.kind == FaultAction::Kind::kNoSpace) {
    return Status::NoSpace("simulated device full: " + where);
  }
  return Status::FromCode(fault.code, "injected " + op + " error: " + where);
}

Status HaltedStatus(const std::string& op) {
  return Status::IOError("device halted by simulated crash: " + op);
}

}  // namespace

Result<PageId> DiskManager::AllocatePage() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (halted()) return HaltedStatus("alloc");
  if (faults_ != nullptr) {
    if (auto fault = faults_->Hit("disk.alloc")) {
      if (fault->kind == FaultAction::Kind::kCrash) {
        halted_.store(true, std::memory_order_release);
        return Status::IOError("simulated crash during alloc");
      }
      return InjectedStatus(*fault, "alloc",
                            static_cast<PageId>(pages_.size()));
    }
  }
  allocs_.fetch_add(1, std::memory_order_relaxed);
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    allocated_[id] = true;
    std::memset(pages_[id].get(), 0, page_size_);
    return id;
  }
  PageId id = static_cast<PageId>(pages_.size());
  pages_.push_back(std::make_unique<char[]>(page_size_));
  std::memset(pages_.back().get(), 0, page_size_);
  allocated_.push_back(true);
  return id;
}

Status DiskManager::FreePage(PageId id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (halted()) return HaltedStatus("free of page " + std::to_string(id));
  if (faults_ != nullptr) {
    if (auto fault = faults_->Hit("disk.free")) {
      if (fault->kind == FaultAction::Kind::kCrash) {
        halted_.store(true, std::memory_order_release);
        return Status::IOError("simulated crash during free of page " +
                               std::to_string(id));
      }
      return InjectedStatus(*fault, "free", id);
    }
  }
  if (id >= pages_.size() || !allocated_[id]) {
    return Status::InvalidArgument("free of unallocated page " +
                                   std::to_string(id));
  }
  allocated_[id] = false;
  free_list_.push_back(id);
  frees_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

Status DiskManager::ReadPage(PageId id, char* out) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (halted()) return HaltedStatus("read of page " + std::to_string(id));
    if (id >= pages_.size() || !allocated_[id]) {
      return Status::IOError("read of unallocated page " + std::to_string(id));
    }
    if (faults_ != nullptr) {
      if (auto fault = faults_->Hit("disk.read")) {
        switch (fault->kind) {
          case FaultAction::Kind::kShort: {
            // A prefix transfers; the rest of the caller's buffer is
            // deterministic garbage (never the real page tail).
            size_t n = std::min(fault->bytes, page_size_);
            std::memcpy(out, pages_[id].get(), n);
            std::memset(out + n, 0xCD, page_size_ - n);
            return Status::ShortRead(
                "short read of page " + std::to_string(id) + ": " +
                std::to_string(n) + "/" + std::to_string(page_size_) +
                " bytes");
          }
          case FaultAction::Kind::kCrash:
            halted_.store(true, std::memory_order_release);
            return Status::IOError("simulated crash during read of page " +
                                   std::to_string(id));
          case FaultAction::Kind::kNoSpace:
          case FaultAction::Kind::kError:
            return InjectedStatus(*fault, "read", id);
        }
      }
    }
    std::memcpy(out, pages_[id].get(), page_size_);
    reads_.fetch_add(1, std::memory_order_relaxed);
  }
  // Latency is modeled outside the lock so in-flight reads overlap.
  uint32_t latency = read_latency_us_.load(std::memory_order_relaxed);
  if (latency != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(latency));
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const char* in) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (halted()) return HaltedStatus("write of page " + std::to_string(id));
  if (id >= pages_.size() || !allocated_[id]) {
    return Status::IOError("write of unallocated page " + std::to_string(id));
  }
  if (faults_ != nullptr) {
    if (auto fault = faults_->Hit("disk.write")) {
      switch (fault->kind) {
        case FaultAction::Kind::kShort:
        case FaultAction::Kind::kCrash: {
          // Torn write: a prefix lands, the page keeps its old tail.
          size_t n = std::min(fault->bytes, page_size_);
          std::memcpy(pages_[id].get(), in, n);
          if (fault->kind == FaultAction::Kind::kCrash) {
            halted_.store(true, std::memory_order_release);
            return Status::IOError(
                "simulated crash during write of page " + std::to_string(id) +
                " (torn after " + std::to_string(n) + " bytes)");
          }
          return Status::ShortWrite(
              "torn write of page " + std::to_string(id) + ": " +
              std::to_string(n) + "/" + std::to_string(page_size_) +
              " bytes");
        }
        case FaultAction::Kind::kNoSpace:
        case FaultAction::Kind::kError:
          return InjectedStatus(*fault, "write", id);
      }
    }
  }
  std::memcpy(pages_[id].get(), in, page_size_);
  writes_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

bool DiskManager::IsAllocated(PageId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return id < pages_.size() && allocated_[id];
}

size_t DiskManager::NumAllocatedPages() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return pages_.size() - free_list_.size();
}

IoStats DiskManager::stats() const {
  IoStats s;
  s.reads = reads_.load(std::memory_order_relaxed);
  s.writes = writes_.load(std::memory_order_relaxed);
  s.allocs = allocs_.load(std::memory_order_relaxed);
  s.frees = frees_.load(std::memory_order_relaxed);
  return s;
}

void DiskManager::ResetStats() { RestoreStats(IoStats{}); }

void DiskManager::RestoreStats(const IoStats& snapshot) {
  reads_.store(snapshot.reads, std::memory_order_relaxed);
  writes_.store(snapshot.writes, std::memory_order_relaxed);
  allocs_.store(snapshot.allocs, std::memory_order_relaxed);
  frees_.store(snapshot.frees, std::memory_order_relaxed);
}

namespace {
constexpr char kDiskMagic[8] = {'C', 'C', 'A', 'M', 'D', 'I', 'S', 'K'};
}  // namespace

Status DiskManager::SaveToFile(const std::string& path) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(kDiskMagic, sizeof(kDiskMagic));
  char header[8];
  EncodeFixed32(header, static_cast<uint32_t>(page_size_));
  EncodeFixed32(header + 4, static_cast<uint32_t>(pages_.size()));
  out.write(header, sizeof(header));
  for (size_t i = 0; i < pages_.size(); ++i) {
    char flag = allocated_[i] ? 1 : 0;
    out.write(&flag, 1);
    out.write(pages_[i].get(), static_cast<std::streamsize>(page_size_));
  }
  out.flush();
  if (!out) return Status::ShortWrite("short write to " + path);
  return Status::OK();
}

Status DiskManager::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kDiskMagic, sizeof(magic)) != 0) {
    return Status::Corruption("not a ccam disk image: " + path);
  }
  char header[8];
  in.read(header, sizeof(header));
  if (!in) return Status::Corruption("truncated image header");
  uint32_t page_size = DecodeFixed32(header);
  uint32_t num_pages = DecodeFixed32(header + 4);
  if (page_size != page_size_) {
    return Status::InvalidArgument(
        "image page size " + std::to_string(page_size) +
        " does not match manager page size " + std::to_string(page_size_));
  }
  std::vector<std::unique_ptr<char[]>> pages;
  std::vector<bool> allocated;
  std::vector<PageId> free_list;
  pages.reserve(num_pages);
  for (uint32_t i = 0; i < num_pages; ++i) {
    char flag;
    in.read(&flag, 1);
    auto buf = std::make_unique<char[]>(page_size_);
    in.read(buf.get(), static_cast<std::streamsize>(page_size_));
    if (!in) return Status::Corruption("truncated page data");
    pages.push_back(std::move(buf));
    allocated.push_back(flag != 0);
    if (flag == 0) free_list.push_back(i);
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  pages_ = std::move(pages);
  allocated_ = std::move(allocated);
  free_list_ = std::move(free_list);
  lock.unlock();
  // A restored image is a fresh device: any simulated crash-halt is over.
  halted_.store(false, std::memory_order_release);
  ResetStats();
  return Status::OK();
}

std::vector<PageId> DiskManager::AllocatedPageIds() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<PageId> out;
  for (PageId id = 0; id < pages_.size(); ++id) {
    if (allocated_[id]) out.push_back(id);
  }
  return out;
}

}  // namespace ccam
