#include "src/storage/disk_manager.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <mutex>
#include <thread>

#include "src/common/coding.h"
#include "src/storage/wal.h"

namespace ccam {

DiskManager::DiskManager(size_t page_size) : page_size_(page_size) {
  std::string zeros(page_size_, '\0');
  zero_seal_ = Crc32c(zeros.data(), zeros.size());
}

namespace {

/// Status for an injected kError / kNoSpace action with page-id context.
Status InjectedStatus(const FaultAction& fault, const std::string& op,
                      PageId id) {
  std::string where = op + " of page " + std::to_string(id);
  if (fault.kind == FaultAction::Kind::kNoSpace) {
    return Status::NoSpace("simulated device full: " + where);
  }
  return Status::FromCode(fault.code, "injected " + op + " error: " + where);
}

Status HaltedStatus(const std::string& op) {
  return Status::IOError("device halted by simulated crash: " + op);
}

}  // namespace

void DiskManager::SetFailpointPrefix(const std::string& prefix) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  prefix_ = prefix;
  fp_read_ = prefix + ".read";
  fp_write_ = prefix + ".write";
  fp_alloc_ = prefix + ".alloc";
  fp_free_ = prefix + ".free";
  MetricsRegistry* metrics = metrics_;
  lock.unlock();
  // Re-resolve the metric handles under the new prefix.
  if (metrics != nullptr) SetMetrics(metrics);
}

void DiskManager::SetMetrics(MetricsRegistry* metrics) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  metrics_ = metrics;
  if (metrics == nullptr) {
    m_reads_ = m_writes_ = m_allocs_ = m_frees_ = nullptr;
    m_read_us_ = m_write_us_ = nullptr;
    return;
  }
  m_reads_ = metrics->GetCounter(prefix_ + ".read");
  m_writes_ = metrics->GetCounter(prefix_ + ".write");
  m_allocs_ = metrics->GetCounter(prefix_ + ".alloc");
  m_frees_ = metrics->GetCounter(prefix_ + ".free");
  m_read_us_ = metrics->GetHistogram(prefix_ + ".read_us");
  m_write_us_ = metrics->GetHistogram(prefix_ + ".write_us");
}

void DiskManager::SetVerifyChecksums(bool verify) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  verify_checksums_ = verify;
}

bool DiskManager::verify_checksums() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return verify_checksums_;
}

Result<PageId> DiskManager::AllocatePage() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (halted()) return HaltedStatus("alloc");
  if (faults_ != nullptr) {
    if (auto fault = faults_->Hit(fp_alloc_)) {
      if (fault->kind == FaultAction::Kind::kCrash) {
        Halt();
        return Status::IOError("simulated crash during alloc");
      }
      return InjectedStatus(*fault, "alloc",
                            static_cast<PageId>(pages_.size()));
    }
  }
  allocs_.fetch_add(1, std::memory_order_relaxed);
  if (m_allocs_ != nullptr) m_allocs_->Inc();
  if (in_txn_) {
    PageId id;
    if (!txn_free_list_.empty()) {
      id = txn_free_list_.back();
      txn_free_list_.pop_back();
    } else {
      id = txn_next_page_++;
    }
    if (id >= txn_allocated_.size()) txn_allocated_.resize(id + 1, false);
    txn_allocated_[id] = true;
    txn_freed_.erase(std::remove(txn_freed_.begin(), txn_freed_.end(), id),
                     txn_freed_.end());
    auto [it, inserted] =
        staged_writes_.emplace(id, std::string(page_size_, '\0'));
    if (!inserted) it->second.assign(page_size_, '\0');
    if (std::find(touch_order_.begin(), touch_order_.end(), id) ==
        touch_order_.end()) {
      touch_order_.push_back(id);
    }
    return id;
  }
  if (!free_list_.empty()) {
    PageId id = free_list_.back();
    free_list_.pop_back();
    allocated_[id] = true;
    std::memset(pages_[id].get(), 0, page_size_);
    seals_[id] = zero_seal_;
    return id;
  }
  PageId id = static_cast<PageId>(pages_.size());
  pages_.push_back(std::make_unique<char[]>(page_size_));
  std::memset(pages_.back().get(), 0, page_size_);
  allocated_.push_back(true);
  seals_.push_back(zero_seal_);
  return id;
}

Status DiskManager::FreePage(PageId id) {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (halted()) return HaltedStatus("free of page " + std::to_string(id));
  if (faults_ != nullptr) {
    if (auto fault = faults_->Hit(fp_free_)) {
      if (fault->kind == FaultAction::Kind::kCrash) {
        Halt();
        return Status::IOError("simulated crash during free of page " +
                               std::to_string(id));
      }
      return InjectedStatus(*fault, "free", id);
    }
  }
  if (in_txn_) {
    if (id >= txn_allocated_.size() || !txn_allocated_[id]) {
      return Status::InvalidArgument("free of unallocated page " +
                                     std::to_string(id));
    }
    txn_allocated_[id] = false;
    staged_writes_.erase(id);
    // Only pages live on the platter before the transaction produce a net
    // free; a page both allocated and freed inside it is a no-op.
    if (id < allocated_.size() && allocated_[id] &&
        std::find(txn_freed_.begin(), txn_freed_.end(), id) ==
            txn_freed_.end()) {
      txn_freed_.push_back(id);
      if (std::find(touch_order_.begin(), touch_order_.end(), id) ==
          touch_order_.end()) {
        touch_order_.push_back(id);
      }
    }
    txn_free_list_.push_back(id);
    frees_.fetch_add(1, std::memory_order_relaxed);
    if (m_frees_ != nullptr) m_frees_->Inc();
    return Status::OK();
  }
  if (id >= pages_.size() || !allocated_[id]) {
    return Status::InvalidArgument("free of unallocated page " +
                                   std::to_string(id));
  }
  allocated_[id] = false;
  free_list_.push_back(id);
  frees_.fetch_add(1, std::memory_order_relaxed);
  if (m_frees_ != nullptr) m_frees_->Inc();
  return Status::OK();
}

Status DiskManager::ReadPage(PageId id, char* out) {
  // Metric handles are written only while the device is quiescent (attach
  // time), like the fault injector; the clock is read only when attached.
  MetricHistogram* read_hist = m_read_us_;
  std::chrono::steady_clock::time_point t0;
  if (read_hist != nullptr) t0 = std::chrono::steady_clock::now();
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    if (halted()) return HaltedStatus("read of page " + std::to_string(id));
    if (in_txn_) {
      // The staged overlay is authoritative while a transaction is open: a
      // staged page serves from memory (no device I/O), a staged free makes
      // the page unreadable.
      auto it = staged_writes_.find(id);
      if (it != staged_writes_.end()) {
        std::memcpy(out, it->second.data(), page_size_);
        return Status::OK();
      }
      if (id < txn_allocated_.size() && !txn_allocated_[id] &&
          id < allocated_.size() && allocated_[id]) {
        return Status::IOError("read of page freed in open transaction: " +
                               std::to_string(id));
      }
    }
    if (id >= pages_.size() || !allocated_[id]) {
      return Status::IOError("read of unallocated page " + std::to_string(id));
    }
    if (faults_ != nullptr) {
      if (auto fault = faults_->Hit(fp_read_)) {
        switch (fault->kind) {
          case FaultAction::Kind::kShort: {
            // A prefix transfers; the rest of the caller's buffer is
            // deterministic garbage (never the real page tail).
            size_t n = std::min(fault->bytes, page_size_);
            std::memcpy(out, pages_[id].get(), n);
            std::memset(out + n, 0xCD, page_size_ - n);
            return Status::ShortRead(
                "short read of page " + std::to_string(id) + ": " +
                std::to_string(n) + "/" + std::to_string(page_size_) +
                " bytes");
          }
          case FaultAction::Kind::kCrash:
            Halt();
            return Status::IOError("simulated crash during read of page " +
                                   std::to_string(id));
          case FaultAction::Kind::kNoSpace:
          case FaultAction::Kind::kError:
            return InjectedStatus(*fault, "read", id);
        }
      }
    }
    std::memcpy(out, pages_[id].get(), page_size_);
    if (verify_checksums_) {
      uint32_t crc = Crc32c(out, page_size_);
      if (crc != seals_[id]) {
        return Status::Corruption("page " + std::to_string(id) +
                                  " checksum mismatch: content crc32c " +
                                  std::to_string(crc) + " != seal " +
                                  std::to_string(seals_[id]));
      }
    }
    reads_.fetch_add(1, std::memory_order_relaxed);
    if (m_reads_ != nullptr) m_reads_->Inc();
  }
  // Latency is modeled outside the lock so in-flight reads overlap.
  uint32_t latency = read_latency_us_.load(std::memory_order_relaxed);
  if (latency != 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(latency));
  }
  if (read_hist != nullptr) {
    read_hist->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }
  return Status::OK();
}

Status DiskManager::WritePage(PageId id, const char* in) {
  MetricHistogram* write_hist = m_write_us_;
  std::chrono::steady_clock::time_point t0;
  if (write_hist != nullptr) t0 = std::chrono::steady_clock::now();
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (halted()) return HaltedStatus("write of page " + std::to_string(id));
  if (in_txn_) {
    // Staged: the overlay absorbs the write, the platter is untouched and
    // the device failpoints are evaluated when the commit applies it.
    if (id >= txn_allocated_.size() || !txn_allocated_[id]) {
      return Status::IOError("write of unallocated page " +
                             std::to_string(id));
    }
    auto [it, inserted] = staged_writes_.emplace(id, std::string());
    it->second.assign(in, page_size_);
    if (inserted) touch_order_.push_back(id);
    return Status::OK();
  }
  if (id >= pages_.size() || !allocated_[id]) {
    return Status::IOError("write of unallocated page " + std::to_string(id));
  }
  if (faults_ != nullptr) {
    if (auto fault = faults_->Hit(fp_write_)) {
      switch (fault->kind) {
        case FaultAction::Kind::kShort:
        case FaultAction::Kind::kCrash: {
          // Torn write: a prefix lands, the page keeps its old tail — and
          // its old seal, unless every byte transferred (a complete write
          // is a complete write, crash or not).
          size_t n = std::min(fault->bytes, page_size_);
          std::memcpy(pages_[id].get(), in, n);
          if (n == page_size_) seals_[id] = Crc32c(in, page_size_);
          if (fault->kind == FaultAction::Kind::kCrash) {
            Halt();
            return Status::IOError(
                "simulated crash during write of page " + std::to_string(id) +
                " (torn after " + std::to_string(n) + " bytes)");
          }
          return Status::ShortWrite(
              "torn write of page " + std::to_string(id) + ": " +
              std::to_string(n) + "/" + std::to_string(page_size_) +
              " bytes");
        }
        case FaultAction::Kind::kNoSpace:
        case FaultAction::Kind::kError:
          return InjectedStatus(*fault, "write", id);
      }
    }
  }
  std::memcpy(pages_[id].get(), in, page_size_);
  seals_[id] = Crc32c(in, page_size_);
  writes_.fetch_add(1, std::memory_order_relaxed);
  if (m_writes_ != nullptr) m_writes_->Inc();
  if (write_hist != nullptr) {
    write_hist->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }
  return Status::OK();
}

Status DiskManager::VerifyPage(PageId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (id >= pages_.size() || !allocated_[id]) {
    return Status::InvalidArgument("verify of unallocated page " +
                                   std::to_string(id));
  }
  uint32_t crc = Crc32c(pages_[id].get(), page_size_);
  if (crc != seals_[id]) {
    return Status::Corruption("page " + std::to_string(id) +
                              " checksum mismatch: content crc32c " +
                              std::to_string(crc) + " != seal " +
                              std::to_string(seals_[id]));
  }
  return Status::OK();
}

bool DiskManager::IsAllocated(PageId id) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (in_txn_ && id < txn_allocated_.size()) return txn_allocated_[id];
  return id < pages_.size() && allocated_[id];
}

size_t DiskManager::NumAllocatedPages() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  if (in_txn_) {
    size_t n = 0;
    for (bool live : txn_allocated_) n += live ? 1 : 0;
    return n;
  }
  return pages_.size() - free_list_.size();
}

IoStats DiskManager::stats() const {
  IoStats s;
  s.reads = reads_.load(std::memory_order_relaxed);
  s.writes = writes_.load(std::memory_order_relaxed);
  s.allocs = allocs_.load(std::memory_order_relaxed);
  s.frees = frees_.load(std::memory_order_relaxed);
  return s;
}

void DiskManager::ResetStats() { RestoreStats(IoStats{}); }

void DiskManager::RestoreStats(const IoStats& snapshot) {
  reads_.store(snapshot.reads, std::memory_order_relaxed);
  writes_.store(snapshot.writes, std::memory_order_relaxed);
  allocs_.store(snapshot.allocs, std::memory_order_relaxed);
  frees_.store(snapshot.frees, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Staged transactions
// ---------------------------------------------------------------------------

void DiskManager::ClearTxnStateLocked() {
  in_txn_ = false;
  staged_writes_.clear();
  touch_order_.clear();
  txn_freed_.clear();
  txn_allocated_.clear();
  txn_free_list_.clear();
  txn_next_page_ = 0;
}

Status DiskManager::BeginTxn() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (halted()) return HaltedStatus("begin transaction");
  if (in_txn_) {
    return Status::InvalidArgument("transaction already open");
  }
  in_txn_ = true;
  txn_allocated_.assign(allocated_.begin(), allocated_.end());
  txn_free_list_ = free_list_;
  txn_next_page_ = static_cast<PageId>(pages_.size());
  return Status::OK();
}

bool DiskManager::InTxn() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return in_txn_;
}

std::vector<PageId> DiskManager::TxnTouchedPages() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  return touch_order_;
}

void DiskManager::MaterializeAllocation(PageId id) {
  while (id >= pages_.size()) {
    pages_.push_back(std::make_unique<char[]>(page_size_));
    std::memset(pages_.back().get(), 0, page_size_);
    allocated_.push_back(false);
    seals_.push_back(zero_seal_);
  }
  allocated_[id] = true;
}

Status DiskManager::ApplyPlatterWrite(PageId id, const char* in) {
  if (faults_ != nullptr) {
    if (auto fault = faults_->Hit(fp_write_)) {
      switch (fault->kind) {
        case FaultAction::Kind::kShort:
        case FaultAction::Kind::kCrash: {
          size_t n = std::min(fault->bytes, page_size_);
          std::memcpy(pages_[id].get(), in, n);
          if (n == page_size_) seals_[id] = Crc32c(in, page_size_);
          // Any fault while applying a committed transaction halts the
          // device: a half-applied redo is exactly what recovery repairs,
          // and a device that fails redo writes cannot be trusted to stay
          // consistent. The WAL keeps the committed records until replay.
          Halt();
          return Status::IOError(
              "simulated crash during commit apply of page " +
              std::to_string(id) + " (torn after " + std::to_string(n) +
              " bytes)");
        }
        case FaultAction::Kind::kNoSpace:
        case FaultAction::Kind::kError: {
          Halt();
          return InjectedStatus(*fault, "commit apply", id);
        }
      }
    }
  }
  std::memcpy(pages_[id].get(), in, page_size_);
  seals_[id] = Crc32c(in, page_size_);
  writes_.fetch_add(1, std::memory_order_relaxed);
  if (m_writes_ != nullptr) m_writes_->Inc();
  return Status::OK();
}

Status DiskManager::CommitTxn() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!in_txn_) return Status::InvalidArgument("no open transaction");
  if (halted()) {
    ClearTxnStateLocked();
    return HaltedStatus("commit transaction");
  }
  uint64_t txn = ++txn_counter_;

  if (wal_ != nullptr) {
    // Log the whole transaction, then flush: the flush barrier is the
    // durability point. Any log failure — including an injected crash
    // inside an append — halts the device and aborts: nothing reached the
    // platter, so the pre-transaction state is intact.
    Status log_status = wal_->Append(Wal::RecordType::kBegin, txn, {});
    if (log_status.ok()) {
      for (PageId id : touch_order_) {
        auto it = staged_writes_.find(id);
        if (it == staged_writes_.end()) continue;  // freed in-transaction
        std::string payload;
        PutFixed32(&payload, id);
        payload += it->second;
        log_status = wal_->Append(Wal::RecordType::kPageImage, txn, payload);
        if (!log_status.ok()) break;
      }
    }
    if (log_status.ok()) {
      for (PageId id : txn_freed_) {
        std::string payload;
        PutFixed32(&payload, id);
        log_status = wal_->Append(Wal::RecordType::kPageFree, txn, payload);
        if (!log_status.ok()) break;
      }
    }
    if (log_status.ok()) {
      log_status = wal_->Append(Wal::RecordType::kCommit, txn, {});
    }
    if (log_status.ok()) log_status = wal_->Flush();
    if (!log_status.ok()) {
      Halt();
      ClearTxnStateLocked();
      return log_status;
    }
  }

  // Apply the overlay to the platter. From here the transaction is
  // committed: a crash below leaves the WAL holding everything Recover()
  // needs to finish the job.
  for (PageId id : touch_order_) {
    auto it = staged_writes_.find(id);
    if (it == staged_writes_.end()) continue;
    MaterializeAllocation(id);
    Status apply = ApplyPlatterWrite(id, it->second.data());
    if (!apply.ok()) {
      ClearTxnStateLocked();
      return apply;
    }
  }
  for (PageId id : txn_freed_) {
    allocated_[id] = false;
  }
  // Ids allocated then freed inside the transaction never materialized;
  // grow the platter so every id the adopted free list names exists.
  while (pages_.size() < txn_next_page_) {
    pages_.push_back(std::make_unique<char[]>(page_size_));
    std::memset(pages_.back().get(), 0, page_size_);
    allocated_.push_back(false);
    seals_.push_back(zero_seal_);
  }
  // The transaction's working free list evolved exactly as the platter's
  // would have; adopting it keeps allocation order identical to a
  // non-transactional run of the same operations.
  free_list_ = std::move(txn_free_list_);

  Status checkpoint = Status::OK();
  if (wal_ != nullptr) checkpoint = wal_->Truncate();
  ClearTxnStateLocked();
  return checkpoint;
}

Status DiskManager::AbortTxn() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  if (!in_txn_) return Status::InvalidArgument("no open transaction");
  ClearTxnStateLocked();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

Status DiskManager::Recover() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  // Recovery brings the device back from a simulated crash.
  halted_.store(false, std::memory_order_release);
  if (in_txn_) ClearTxnStateLocked();

  std::string bytes = loaded_wal_;
  if (bytes.empty() && wal_ != nullptr) bytes = wal_->durable();
  loaded_wal_.clear();
  if (bytes.empty()) {
    if (wal_ != nullptr) return wal_->Truncate();
    return Status::OK();
  }

  Wal scanner;
  scanner.RestoreDurable(std::move(bytes));
  auto scan = scanner.RecoverScan();
  CCAM_RETURN_NOT_OK(scan.status());
  const std::vector<Wal::Record>& records = scan.value();

  // Group into transactions. The commit protocol is strictly sequential —
  // one transaction at a time, flushed as a unit — so the durable log is a
  // sequence of complete transactions plus at most one uncommitted tail.
  struct PendingWrite {
    PageId id;
    const std::string* content;
  };
  bool open = false;
  uint64_t open_txn = 0;
  std::vector<PendingWrite> pending_writes;
  std::vector<PageId> pending_frees;
  size_t replayed = 0;
  for (const Wal::Record& rec : records) {
    switch (rec.type) {
      case Wal::RecordType::kBegin:
        if (open) {
          return Status::Corruption(
              "wal begin for txn " + std::to_string(rec.txn) +
              " inside open txn " + std::to_string(open_txn));
        }
        open = true;
        open_txn = rec.txn;
        pending_writes.clear();
        pending_frees.clear();
        break;
      case Wal::RecordType::kPageImage: {
        if (!open || rec.txn != open_txn) {
          return Status::Corruption("wal page-image outside its transaction");
        }
        if (rec.payload.size() != 4 + page_size_) {
          return Status::Corruption(
              "wal page-image payload is " +
              std::to_string(rec.payload.size()) + " bytes, want " +
              std::to_string(4 + page_size_));
        }
        PageId id = DecodeFixed32(rec.payload.data());
        pending_writes.push_back({id, &rec.payload});
        break;
      }
      case Wal::RecordType::kPageFree: {
        if (!open || rec.txn != open_txn) {
          return Status::Corruption("wal page-free outside its transaction");
        }
        if (rec.payload.size() != 4) {
          return Status::Corruption("wal page-free payload malformed");
        }
        pending_frees.push_back(DecodeFixed32(rec.payload.data()));
        break;
      }
      case Wal::RecordType::kCommit: {
        if (!open || rec.txn != open_txn) {
          return Status::Corruption("wal commit outside its transaction");
        }
        // The transaction is committed: redo it against the platter.
        for (const PendingWrite& w : pending_writes) {
          MaterializeAllocation(w.id);
          std::memcpy(pages_[w.id].get(), w.content->data() + 4, page_size_);
          seals_[w.id] = Crc32c(w.content->data() + 4, page_size_);
        }
        for (PageId id : pending_frees) {
          if (id >= pages_.size()) {
            return Status::Corruption("wal frees unknown page " +
                                      std::to_string(id));
          }
          allocated_[id] = false;
        }
        open = false;
        ++replayed;
        break;
      }
    }
  }
  // An open transaction with no commit record is the uncommitted tail the
  // crash cut off: it was never acknowledged, so it is discarded.
  (void)replayed;

  // Rebuild the free list the way LoadFromFile does — ascending — so a
  // recovered image allocates exactly like a freshly loaded one.
  free_list_.clear();
  for (PageId id = 0; id < pages_.size(); ++id) {
    if (!allocated_[id]) free_list_.push_back(id);
  }

  if (wal_ != nullptr) return wal_->Truncate();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Image persistence
// ---------------------------------------------------------------------------

namespace {
constexpr char kDiskMagic[8] = {'C', 'C', 'A', 'M', 'D', 'I', 'S', 'K'};
constexpr char kSealMagic[8] = {'C', 'C', 'A', 'M', 'S', 'E', 'A', 'L'};
constexpr char kWalMagic[8] = {'C', 'C', 'A', 'M', 'W', 'A', 'L', '0'};
}  // namespace

Status DiskManager::SaveToFile(const std::string& path) const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(kDiskMagic, sizeof(kDiskMagic));
  char header[8];
  EncodeFixed32(header, static_cast<uint32_t>(page_size_));
  EncodeFixed32(header + 4, static_cast<uint32_t>(pages_.size()));
  out.write(header, sizeof(header));
  for (size_t i = 0; i < pages_.size(); ++i) {
    char flag = allocated_[i] ? 1 : 0;
    out.write(&flag, 1);
    out.write(pages_[i].get(), static_cast<std::streamsize>(page_size_));
  }
  // v2 tail sections. Readers of the original format stop at the pages;
  // readers of this format find the seals and the durable WAL tail — the
  // platter image of the log device at capture time.
  out.write(kSealMagic, sizeof(kSealMagic));
  char count[4];
  EncodeFixed32(count, static_cast<uint32_t>(seals_.size()));
  out.write(count, sizeof(count));
  for (uint32_t seal : seals_) {
    char buf[4];
    EncodeFixed32(buf, seal);
    out.write(buf, sizeof(buf));
  }
  const std::string* wal_bytes = &loaded_wal_;
  if (wal_ != nullptr) wal_bytes = &wal_->durable();
  out.write(kWalMagic, sizeof(kWalMagic));
  char wal_len[8];
  EncodeFixed64(wal_len, wal_bytes->size());
  out.write(wal_len, sizeof(wal_len));
  out.write(wal_bytes->data(),
            static_cast<std::streamsize>(wal_bytes->size()));
  out.flush();
  if (!out) return Status::ShortWrite("short write to " + path);
  return Status::OK();
}

Status DiskManager::LoadFromFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kDiskMagic, sizeof(magic)) != 0) {
    return Status::Corruption("not a ccam disk image: " + path);
  }
  char header[8];
  in.read(header, sizeof(header));
  if (!in) return Status::Corruption("truncated image header");
  uint32_t page_size = DecodeFixed32(header);
  uint32_t num_pages = DecodeFixed32(header + 4);
  if (page_size != page_size_) {
    return Status::InvalidArgument(
        "image page size " + std::to_string(page_size) +
        " does not match manager page size " + std::to_string(page_size_));
  }
  std::vector<std::unique_ptr<char[]>> pages;
  std::vector<bool> allocated;
  std::vector<PageId> free_list;
  pages.reserve(num_pages);
  for (uint32_t i = 0; i < num_pages; ++i) {
    char flag;
    in.read(&flag, 1);
    auto buf = std::make_unique<char[]>(page_size_);
    in.read(buf.get(), static_cast<std::streamsize>(page_size_));
    if (!in) return Status::Corruption("truncated page data");
    pages.push_back(std::move(buf));
    allocated.push_back(flag != 0);
    if (flag == 0) free_list.push_back(i);
  }
  // Optional v2 tail sections: page seals, then the durable WAL bytes.
  // A legacy image ends at the pages; its seals are computed from content.
  std::vector<uint32_t> seals;
  std::string wal_bytes;
  char section[8];
  in.read(section, sizeof(section));
  if (in.gcount() == 0) {
    seals.reserve(num_pages);
    for (uint32_t i = 0; i < num_pages; ++i) {
      seals.push_back(Crc32c(pages[i].get(), page_size_));
    }
  } else if (in.gcount() == sizeof(section) &&
             std::memcmp(section, kSealMagic, sizeof(section)) == 0) {
    char count_buf[4];
    in.read(count_buf, sizeof(count_buf));
    if (!in) return Status::Corruption("truncated seal section");
    uint32_t count = DecodeFixed32(count_buf);
    if (count != num_pages) {
      return Status::Corruption("seal count " + std::to_string(count) +
                                " does not match page count " +
                                std::to_string(num_pages));
    }
    for (uint32_t i = 0; i < count; ++i) {
      char buf[4];
      in.read(buf, sizeof(buf));
      if (!in) return Status::Corruption("truncated seal section");
      seals.push_back(DecodeFixed32(buf));
    }
    in.read(section, sizeof(section));
    if (in.gcount() != 0) {
      if (in.gcount() != sizeof(section) ||
          std::memcmp(section, kWalMagic, sizeof(section)) != 0) {
        return Status::Corruption("unknown image section after seals");
      }
      char wal_len_buf[8];
      in.read(wal_len_buf, sizeof(wal_len_buf));
      if (!in) return Status::Corruption("truncated wal section");
      uint64_t wal_len = DecodeFixed64(wal_len_buf);
      wal_bytes.resize(wal_len);
      in.read(wal_bytes.data(), static_cast<std::streamsize>(wal_len));
      if (in.gcount() != static_cast<std::streamsize>(wal_len)) {
        return Status::Corruption("truncated wal section");
      }
    }
  } else {
    return Status::Corruption("unknown image section after pages");
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  pages_ = std::move(pages);
  allocated_ = std::move(allocated);
  free_list_ = std::move(free_list);
  seals_ = std::move(seals);
  loaded_wal_ = std::move(wal_bytes);
  if (in_txn_) ClearTxnStateLocked();
  lock.unlock();
  // A restored image is a fresh device: any simulated crash-halt is over.
  halted_.store(false, std::memory_order_release);
  ResetStats();
  return Status::OK();
}

Result<size_t> DiskManager::PeekPageSize(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kDiskMagic, sizeof(magic)) != 0) {
    return Status::Corruption("not a ccam disk image: " + path);
  }
  char header[8];
  in.read(header, sizeof(header));
  if (!in) return Status::Corruption("truncated image header");
  return static_cast<size_t>(DecodeFixed32(header));
}

std::vector<PageId> DiskManager::AllocatedPageIds() const {
  std::shared_lock<std::shared_mutex> lock(mu_);
  std::vector<PageId> out;
  for (PageId id = 0; id < pages_.size(); ++id) {
    if (allocated_[id]) out.push_back(id);
  }
  return out;
}

}  // namespace ccam
