#ifndef CCAM_STORAGE_BUFFER_POOL_H_
#define CCAM_STORAGE_BUFFER_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/storage/disk_manager.h"
#include "src/storage/io_stats.h"
#include "src/storage/page_quarantine.h"

namespace ccam {

/// Page replacement policy of the buffer pool.
enum class ReplacementPolicy {
  /// Least-recently-used (the default; matches the paper's buffering
  /// discussion).
  kLru,
  /// First-in-first-out: eviction order ignores re-references.
  kFifo,
  /// CLOCK (second-chance): an approximation of LRU with one reference
  /// bit per frame, as most real buffer managers implement.
  kClock,
};

const char* ReplacementPolicyName(ReplacementPolicy policy);

class PageGuard;

/// Fixed-capacity buffer pool over a DiskManager. Pages are pinned while
/// in use; unpinned pages are eviction candidates per the configured
/// replacement policy (LRU by default). Dirty pages are written back on
/// eviction or explicit flush.
///
/// The paper's experiments assume small data buffers (route evaluation uses
/// a single one-page buffer); the pool capacity is therefore a first-class
/// experiment parameter.
///
/// Thread safety. The frame table is split into shards, each protected by
/// its own latch; a page's shard is fixed by its id. Fetch / Unpin /
/// Contains / PinCount and the hit/miss counters are safe to call from any
/// number of threads concurrently; concurrent fetches of one page resolve
/// to a single disk read (followers wait and score a hit). Miss I/O runs
/// *outside* the shard latch, so misses in flight overlap even within one
/// shard. Structural operations (NewPage, Discard, FlushAll, Reset) keep
/// the file layer's single-writer discipline: they must not race with
/// other calls on the same pages.
///
/// Replacement state is per shard: each shard keeps its frames on an
/// intrusive doubly-linked list (LRU order for kLru, load order for
/// kFifo/kClock, with a per-shard CLOCK hand), making victim selection and
/// removal O(1) instead of the former O(capacity) scan. A single-shard
/// pool reproduces the classic unsharded replacement behavior bit for bit;
/// tiny pools (the paper's experiments) always get one shard.
class BufferPool {
 public:
  /// `num_shards` = 0 (the default) selects an automatic count,
  /// min(kMaxShards, hardware threads), clamped so that every shard keeps
  /// at least kMinFramesPerShard frames — pools smaller than
  /// 2 * kMinFramesPerShard pages therefore collapse to a single shard.
  /// Explicit counts are clamped to [1, capacity].
  BufferPool(DiskManager* disk, size_t capacity,
             ReplacementPolicy policy = ReplacementPolicy::kLru,
             size_t num_shards = 0);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  static constexpr size_t kMaxShards = 16;
  static constexpr size_t kMinFramesPerShard = 8;

  /// The shard count `num_shards` = 0 resolves to for a pool of
  /// `capacity` pages.
  static size_t AutoShardCount(size_t capacity);

  size_t capacity() const { return capacity_; }
  size_t num_shards() const { return shards_.size(); }
  size_t NumBuffered() const;

  /// Returns the frame holding page `id`, reading it from disk on a miss,
  /// and pins it. Fails when every frame of the page's shard is pinned.
  Result<char*> FetchPage(PageId id) { return FetchPage(id, nullptr); }

  /// FetchPage that additionally reports whether the fetch missed (i.e.
  /// charged one disk read). Per-session accounting is built on this.
  Result<char*> FetchPage(PageId id, bool* was_miss);

  /// Releases one pin; `dirty` marks the frame as modified.
  Status UnpinPage(PageId id, bool dirty);

  /// Multi-pin batch fetch: pins every distinct page of `ids` (duplicates
  /// collapse to one pin) and appends one guard per pinned page to
  /// `guards`. Pages are fetched in ascending id order so a batch touches
  /// each shard in a deterministic sequence. Misses are charged to `io`
  /// like PageGuard's. All-or-nothing: on the first failure every page
  /// pinned by this call is released and the error is returned — the
  /// region-batched execution path either holds its whole working set or
  /// none of it, so a failed batch never leaks pins into the pool.
  Status FetchPages(const std::vector<PageId>& ids,
                    std::vector<PageGuard>* guards, IoStats* io = nullptr);

  /// Allocates a fresh page on disk and installs an empty pinned frame for
  /// it (no disk read is charged; the caller formats the frame).
  Status NewPage(PageId* id, char** data);

  /// True if the page currently resides in the pool. Used to implement the
  /// paper's "check the buffered data-page first" step of
  /// Get-A-successor()/Get-successors() without incurring I/O.
  bool Contains(PageId id) const;

  /// Writes the frame back if dirty. No-op for clean or absent pages.
  Status FlushPage(PageId id);

  /// Flushes every dirty frame.
  Status FlushAll();

  /// Drops the frame without writing it back (used after FreePage). The
  /// page must not be pinned.
  void Discard(PageId id);

  /// Flushes and empties the pool.
  Status Reset();

  /// Hit/miss counters, sampled as one coherent pair. Both fields are
  /// updated together under the owning shard's latch at the moment a fetch
  /// *completes successfully* (a hit when the frame was resident or the
  /// caller joined a landed single-flight read; a miss when this fetch's
  /// own disk read completed) — so at any sampling instant
  /// `hits + misses` equals the number of successful fetches that have
  /// returned, even while other threads are mid-fetch. Failed fetches
  /// count as neither.
  struct Counters {
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  /// Aggregates the per-shard counters, taking each shard latch briefly so
  /// every shard contributes an internally consistent pair. Safe to call
  /// from any thread while fetches are in flight.
  Counters GetCounters() const;

  uint64_t hits() const { return GetCounters().hits; }
  uint64_t misses() const { return GetCounters().misses; }
  void ResetCounters();

  /// Attaches (or detaches) a metrics registry: fetch outcomes bump
  /// "buffer_pool.hit" / "buffer_pool.miss", evictions
  /// "buffer_pool.eviction", dirty write-backs "buffer_pool.writeback".
  /// Like the disk's SetMetrics, attach while the pool is quiescent.
  void SetMetrics(MetricsRegistry* metrics);

  /// Attaches (or with nullptr detaches) the corruption-containment set.
  /// With a quarantine attached, a fetch miss first fast-fails if the page
  /// is quarantined; a miss read that fails with Corruption or ShortRead is
  /// re-read up to the bounded retry budget (distinguishing a transient
  /// torn transfer from persistent damage), and on exhaustion the page id
  /// is quarantined so later fetches fail fast. Detached (the default) the
  /// fetch path is byte-for-byte the old single-attempt behavior. Attach
  /// while quiescent.
  void SetQuarantine(PageQuarantine* quarantine) { quarantine_ = quarantine; }
  PageQuarantine* quarantine() const { return quarantine_; }

  /// Re-reads attempted after a failed miss read before quarantining
  /// (default 2, i.e. up to 3 attempts total). Only meaningful with a
  /// quarantine attached.
  void SetReadRetries(int retries) { read_retries_ = retries < 0 ? 0 : retries; }

  int PinCount(PageId id) const;

 private:
  struct Shard;

  struct Frame {
    std::unique_ptr<char[]> data;
    PageId id = kInvalidPageId;
    int pin_count = 0;
    bool dirty = false;
    bool ref_bit = false;   // referenced since the hand passed (CLOCK)
    bool io_pending = false;  // the miss read is still in flight
    bool io_failed = false;   // the miss read failed; frame is unusable
    Frame* prev = nullptr;
    Frame* next = nullptr;
  };

  /// One latch-protected slice of the frame table. The intrusive list
  /// holds every frame of the shard: in recency order for kLru (head =
  /// coldest), in load order for kFifo and kClock. The hit/miss counters
  /// are guarded by `mu` (not atomics): they are only ever touched with
  /// the latch held, which is what lets GetCounters() read each shard's
  /// pair as a consistent unit.
  struct Shard {
    mutable std::mutex mu;
    std::condition_variable io_cv;  // wakes waiters when a miss read lands
    std::unordered_map<PageId, Frame> frames;
    Frame* head = nullptr;
    Frame* tail = nullptr;
    Frame* hand = nullptr;  // CLOCK hand (null = start at head)
    size_t capacity = 0;
    uint64_t hits = 0;
    uint64_t misses = 0;
  };

  Shard& ShardFor(PageId id) const {
    return *shards_[static_cast<size_t>(id) % shards_.size()];
  }

  static void ListPushBack(Shard* shard, Frame* frame);
  static void ListRemove(Shard* shard, Frame* frame);
  static void ListMoveToBack(Shard* shard, Frame* frame);

  /// Picks a victim per the replacement policy and evicts it (writing it
  /// back when dirty). Caller holds the shard latch.
  Status EvictOneLocked(Shard* shard);
  Status EvictFrameLocked(Shard* shard, Frame* frame);

  /// The miss read plus its bounded retries; runs outside the shard latch.
  /// Reports whether a retry rescued the fetch and, via quarantine_, files
  /// persistent failures.
  Status ReadWithRetry(PageId id, char* data);

  DiskManager* disk_;
  size_t capacity_;
  ReplacementPolicy policy_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Cached metric handles (null = metrics detached; see SetMetrics).
  MetricCounter* m_hit_ = nullptr;
  MetricCounter* m_miss_ = nullptr;
  MetricCounter* m_eviction_ = nullptr;
  MetricCounter* m_writeback_ = nullptr;

  /// Corruption containment (null = detached, the default).
  PageQuarantine* quarantine_ = nullptr;
  int read_retries_ = 2;
};

/// RAII pin: fetches a page on construction and unpins on destruction.
/// When `io` is given, a fetch miss charges one read to it — the basis of
/// the per-session accounting of concurrent query streams. A moved-from
/// or Release()d guard is inert; destruction after the pool was Reset()
/// is harmless (the unpin is a no-op error that the guard swallows).
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, PageId id, IoStats* io = nullptr);

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;
  ~PageGuard();

  bool ok() const { return data_ != nullptr; }
  const Status& status() const { return status_; }
  char* data() const { return data_; }
  PageId id() const { return id_; }

  /// Marks the page dirty so the unpin writes it back eventually.
  void MarkDirty() { dirty_ = true; }

  /// Unpins immediately (idempotent).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
  char* data_ = nullptr;
  bool dirty_ = false;
  Status status_;
};

}  // namespace ccam

#endif  // CCAM_STORAGE_BUFFER_POOL_H_
