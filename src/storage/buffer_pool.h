#ifndef CCAM_STORAGE_BUFFER_POOL_H_
#define CCAM_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/storage/disk_manager.h"

namespace ccam {

/// Page replacement policy of the buffer pool.
enum class ReplacementPolicy {
  /// Least-recently-used (the default; matches the paper's buffering
  /// discussion).
  kLru,
  /// First-in-first-out: eviction order ignores re-references.
  kFifo,
  /// CLOCK (second-chance): an approximation of LRU with one reference
  /// bit per frame, as most real buffer managers implement.
  kClock,
};

const char* ReplacementPolicyName(ReplacementPolicy policy);

/// Fixed-capacity buffer pool over a DiskManager. Pages are pinned while
/// in use; unpinned pages are eviction candidates per the configured
/// replacement policy (LRU by default). Dirty pages are written back on
/// eviction or explicit flush.
///
/// The paper's experiments assume small data buffers (route evaluation uses
/// a single one-page buffer); the pool capacity is therefore a first-class
/// experiment parameter.
class BufferPool {
 public:
  BufferPool(DiskManager* disk, size_t capacity,
             ReplacementPolicy policy = ReplacementPolicy::kLru);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  size_t capacity() const { return capacity_; }
  size_t NumBuffered() const { return frames_.size(); }

  /// Returns the frame holding page `id`, reading it from disk on a miss,
  /// and pins it. Fails when every frame is pinned.
  Result<char*> FetchPage(PageId id);

  /// Releases one pin; `dirty` marks the frame as modified.
  Status UnpinPage(PageId id, bool dirty);

  /// Allocates a fresh page on disk and installs an empty pinned frame for
  /// it (no disk read is charged; the caller formats the frame).
  Status NewPage(PageId* id, char** data);

  /// True if the page currently resides in the pool. Used to implement the
  /// paper's "check the buffered data-page first" step of
  /// Get-A-successor()/Get-successors() without incurring I/O.
  bool Contains(PageId id) const;

  /// Writes the frame back if dirty. No-op for clean or absent pages.
  Status FlushPage(PageId id);

  /// Flushes every dirty frame.
  Status FlushAll();

  /// Drops the frame without writing it back (used after FreePage). The
  /// page must not be pinned.
  void Discard(PageId id);

  /// Flushes and empties the pool.
  Status Reset();

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  void ResetCounters() { hits_ = misses_ = 0; }

  int PinCount(PageId id) const;

 private:
  struct Frame {
    std::unique_ptr<char[]> data;
    int pin_count = 0;
    bool dirty = false;
    uint64_t load_seq = 0;      // when the page entered the pool (FIFO)
    uint64_t last_use_seq = 0;  // last fetch (LRU)
    bool ref_bit = false;       // referenced since the hand passed (CLOCK)
  };

  /// Makes room for a new frame by evicting one unpinned page per the
  /// replacement policy.
  Status EvictOne();
  Status EvictPage(PageId victim);
  /// Removes `id` from the residency order vector.
  void ForgetResident(PageId id);

  DiskManager* disk_;
  size_t capacity_;
  ReplacementPolicy policy_;
  std::unordered_map<PageId, Frame> frames_;
  /// Pages in load order (CLOCK sweeps this circularly).
  std::vector<PageId> resident_order_;
  size_t clock_hand_ = 0;
  uint64_t seq_ = 0;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// RAII pin: fetches a page on construction and unpins on destruction.
class PageGuard {
 public:
  PageGuard() = default;
  PageGuard(BufferPool* pool, PageId id);

  PageGuard(const PageGuard&) = delete;
  PageGuard& operator=(const PageGuard&) = delete;
  PageGuard(PageGuard&& other) noexcept;
  PageGuard& operator=(PageGuard&& other) noexcept;
  ~PageGuard();

  bool ok() const { return data_ != nullptr; }
  const Status& status() const { return status_; }
  char* data() const { return data_; }
  PageId id() const { return id_; }

  /// Marks the page dirty so the unpin writes it back eventually.
  void MarkDirty() { dirty_ = true; }

  /// Unpins immediately (idempotent).
  void Release();

 private:
  BufferPool* pool_ = nullptr;
  PageId id_ = kInvalidPageId;
  char* data_ = nullptr;
  bool dirty_ = false;
  Status status_;
};

}  // namespace ccam

#endif  // CCAM_STORAGE_BUFFER_POOL_H_
