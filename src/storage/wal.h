#ifndef CCAM_STORAGE_WAL_H_
#define CCAM_STORAGE_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/common/metrics.h"
#include "src/common/result.h"
#include "src/common/status.h"

namespace ccam {

class DiskManager;

/// Statistics of the simulated log device. Appends and flushes are the
/// durability subsystem's analogue of page I/O: the crash harness seeds
/// kill points on them exactly as it does on page writes.
struct WalStats {
  uint64_t appends = 0;
  uint64_t flushes = 0;
  uint64_t truncates = 0;
  /// Bytes currently durable (survive a crash).
  uint64_t durable_bytes = 0;
  /// Bytes appended but not yet flushed (lost on a crash).
  uint64_t pending_bytes = 0;
};

/// Redo-only write-ahead log, modeled as an append-only simulated log
/// device with an explicit flush barrier.
///
/// Record frame (little-endian, fixed-width header):
///   [0]      type     u8   (RecordType)
///   [1..9)   txn      u64  (transaction id)
///   [9..13)  length   u32  (payload bytes)
///   [13..13+length)   payload
///   [.. +4)  crc32c   u32  over bytes [0, 13+length)
///
/// Durability model. Append() stages a frame in the volatile tail (the OS
/// write buffer); Flush() is the barrier that makes every staged byte
/// durable. A simulated crash loses the volatile tail and may leave a torn
/// prefix of the bytes in flight, so the durable log can end mid-frame —
/// RecoverScan() truncates that torn tail. A CRC mismatch on a *complete*
/// frame is different: that is damage inside the durable region (bit rot,
/// a mangled image) and surfaces as a typed Corruption, never as silent
/// acceptance and never as a wild decode.
///
/// Fault injection. When an injector is attached, Append() evaluates the
/// "wal.append" failpoint and Flush() evaluates "wal.flush". A kCrash
/// action makes a torn prefix of the in-flight bytes durable (`bytes` of
/// the volatile tail), then halts the attached device — composing with the
/// `disk.*` failpoints so one fault schedule can kill a workload inside
/// page writes and inside the log alike.
class Wal {
 public:
  enum class RecordType : uint8_t {
    kBegin = 1,      // transaction start; empty payload
    kPageImage = 2,  // payload: page id u32 + full page after-image
    kPageFree = 3,   // payload: page id u32
    kCommit = 4,     // transaction commit; empty payload
  };

  /// Fixed frame header bytes (type + txn + length) and trailer (crc).
  static constexpr size_t kFrameHeaderSize = 1 + 8 + 4;
  static constexpr size_t kFrameTrailerSize = 4;

  Wal() = default;

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Attaches the fault injector consulted by Append()/Flush() (nullptr
  /// detaches).
  void SetFaultInjector(FaultInjector* faults) { faults_ = faults; }

  /// Renames this log's failpoints and metric series to "<prefix>.append"
  /// etc. (default "wal"). The hierarchy overlay's log uses "hier.wal" so
  /// one fault schedule or metrics catalog can target either log without
  /// touching the other.
  void SetNamePrefix(const std::string& prefix);

  /// Attaches the disk whose halt state this log shares: a crash injected
  /// into the log halts the device, and a halted device fails every log
  /// operation — the log and the platter die together.
  void SetDevice(DiskManager* device) { device_ = device; }

  /// Attaches (or detaches) a metrics registry: successful operations bump
  /// "wal.append" / "wal.flush" / "wal.truncate" and each successful flush
  /// records its latency into the "wal.flush_us" histogram. Detached (the
  /// default) every site is one null-pointer test.
  void SetMetrics(MetricsRegistry* metrics);

  /// Appends one framed record to the volatile tail.
  Status Append(RecordType type, uint64_t txn, std::string_view payload);

  /// Flush barrier: every appended byte becomes durable.
  Status Flush();

  /// Checkpoint: discards the durable log and the volatile tail. Called
  /// once the pages a committed transaction touched are safely on the
  /// platter, and after recovery has replayed the log.
  Status Truncate();

  /// One decoded log record.
  struct Record {
    RecordType type;
    uint64_t txn = 0;
    std::string payload;
  };

  /// Scans the durable log: returns every complete, checksummed frame up
  /// to the first torn tail (an incomplete final frame, which is silently
  /// truncated — the crash contract) and fails with Corruption when a
  /// complete frame's CRC does not match (damage inside the durable
  /// region). Never reads out of bounds on any input.
  Result<std::vector<Record>> RecoverScan() const;

  /// The durable byte image (what a crash capture persists).
  const std::string& durable() const { return durable_; }

  /// Replaces the durable log with bytes restored from an image; the
  /// volatile tail is discarded.
  void RestoreDurable(std::string bytes);

  WalStats stats() const;
  void ResetStats();

 private:
  Status DeviceHalted(const char* op) const;

  std::string durable_;
  std::string pending_;
  uint64_t appends_ = 0;
  uint64_t flushes_ = 0;
  uint64_t truncates_ = 0;
  FaultInjector* faults_ = nullptr;
  DiskManager* device_ = nullptr;
  std::string prefix_ = "wal";
  std::string fp_append_ = "wal.append";
  std::string fp_flush_ = "wal.flush";
  /// Attached registry, remembered so SetNamePrefix can re-resolve the
  /// cached handles under the new names.
  MetricsRegistry* metrics_ = nullptr;

  /// Cached metric handles (null = metrics detached; see SetMetrics).
  MetricCounter* m_append_ = nullptr;
  MetricCounter* m_flush_ = nullptr;
  MetricCounter* m_truncate_ = nullptr;
  MetricHistogram* m_flush_us_ = nullptr;
};

const char* WalRecordTypeName(Wal::RecordType type);

}  // namespace ccam

#endif  // CCAM_STORAGE_WAL_H_
