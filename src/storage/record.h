#ifndef CCAM_STORAGE_RECORD_H_
#define CCAM_STORAGE_RECORD_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/graph/network.h"

namespace ccam {

/// The on-page representation of a network node: node data (coordinates +
/// attribute payload), the successor-list and the predecessor-list. Records
/// are variable-size, as the paper notes, because list lengths differ across
/// nodes.
///
/// Encoding (little-endian):
///   node_id   u32
///   x, y      f64 each
///   payload   u16 length + bytes
///   succ      u16 count + count * {node u32, cost f32}
///   pred      u16 count + count * {node u32, cost f32}
/// Fixed bytes of every encoded record (id + coords + three u16 counters).
constexpr size_t kNodeRecordFixedBytes = 4 + 8 + 8 + 2 + 2 + 2;
/// Bytes per successor- or predecessor-list entry (node-id + cost).
constexpr size_t kNodeRecordAdjEntryBytes = 4 + 4;

struct NodeRecord {
  NodeId id = kInvalidNodeId;
  double x = 0.0;
  double y = 0.0;
  std::string payload;
  std::vector<AdjEntry> succ;
  std::vector<AdjEntry> pred;

  /// Builds a record from the logical network node.
  static NodeRecord FromNetworkNode(NodeId id, const NetworkNode& node);

  /// Size in bytes of the encoded form.
  size_t EncodedSize() const;

  std::string Encode() const;

  static Result<NodeRecord> Decode(std::string_view bytes);

  /// Decodes only the node-id (the first field) — cheap existence checks.
  static NodeId PeekId(std::string_view bytes);

  /// Returns the cost of the successor edge to `to`, or NotFound.
  Result<float> SuccessorCost(NodeId to) const;

  bool HasSuccessor(NodeId to) const;
  bool HasPredecessor(NodeId from) const;

  /// The neighbor-list: distinct ids appearing in succ or pred.
  std::vector<NodeId> Neighbors() const;

  friend bool operator==(const NodeRecord& a, const NodeRecord& b) {
    return a.id == b.id && a.x == b.x && a.y == b.y &&
           a.payload == b.payload && a.succ == b.succ && a.pred == b.pred;
  }
};

/// Encoded size of the record a network node would produce, used as the
/// node weight during partitioning ("sizeof(record(i))" in the paper's
/// cluster-nodes-into-pages algorithm).
size_t RecordSizeOf(NodeId id, const NetworkNode& node);

}  // namespace ccam

#endif  // CCAM_STORAGE_RECORD_H_
