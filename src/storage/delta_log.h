#ifndef CCAM_STORAGE_DELTA_LOG_H_
#define CCAM_STORAGE_DELTA_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/storage/record.h"

namespace ccam {

/// One logical mutation against a published snapshot version. Unlike the
/// page-image WAL (src/storage/wal.h), which makes a *single file's* page
/// writes atomic, the delta log records mutations at the graph level — the
/// form that can be replayed against *any* base image, which is exactly
/// what the versioned snapshot swap needs: after a reorganization folds the
/// log into a freshly reclustered image, the same tail of records replays
/// against the new base as well as the old one.
struct DeltaRecord {
  enum class Kind : uint8_t {
    kInsertNode = 1,  // payload: encoded NodeRecord (full adjacency)
    kDeleteNode = 2,  // payload: node id u32
    kInsertEdge = 3,  // payload: u u32, v u32, cost f32
    kDeleteEdge = 4,  // payload: u u32, v u32
  };

  Kind kind = Kind::kInsertNode;
  /// Log sequence number, strictly increasing across the store's lifetime.
  /// The MANIFEST's folded_lsn says which prefix a published image already
  /// contains; recovery replays only records with lsn > folded_lsn.
  uint64_t lsn = 0;
  NodeRecord node;  // kInsertNode
  NodeId u = kInvalidNodeId;
  NodeId v = kInvalidNodeId;
  float cost = 0.0f;
};

const char* DeltaKindName(DeltaRecord::Kind kind);

/// Append-only log of DeltaRecords backed by a real file, with the same
/// frame format and crash contract as the WAL:
///
///   [0]      kind     u8
///   [1..9)   lsn      u64
///   [9..13)  length   u32  (payload bytes)
///   [13..13+length)   payload
///   [.. +4)  crc32c   u32  over bytes [0, 13+length)
///
/// Append() stages the frame in a volatile tail; Flush() writes it to the
/// file and is the acknowledgment barrier of the snapshot mutation path. A
/// crash injected at "snapshot.log.append" or "snapshot.log.flush" leaves
/// a torn prefix of the in-flight bytes in the file and halts the snapshot
/// store (via the halt flag shared with SnapshotManager). Scan() truncates
/// a torn tail silently — the crash contract — and fails loudly with
/// Corruption when a *complete* frame's CRC mismatches (damage inside the
/// durable region).
class DeltaLog {
 public:
  static constexpr size_t kFrameHeaderSize = 1 + 8 + 4;
  static constexpr size_t kFrameTrailerSize = 4;

  DeltaLog() = default;
  ~DeltaLog();

  DeltaLog(const DeltaLog&) = delete;
  DeltaLog& operator=(const DeltaLog&) = delete;

  /// Opens `path` for appending (creating it when absent). Any existing
  /// content is preserved; callers recover it with Scan() first.
  Status Open(const std::string& path);

  /// Closes the append stream (Open() reopens it; used around compaction,
  /// which replaces the file under the log).
  void Close();

  /// The snapshot store's halt flag: a crash injected into the log halts
  /// the whole store, and a halted store fails every log operation.
  void SetHaltFlag(std::atomic<bool>* halted) { halted_ = halted; }

  /// Injector consulted at "snapshot.log.append" / "snapshot.log.flush".
  void SetFaultInjector(FaultInjector* faults) { faults_ = faults; }

  /// Stages one framed record in the volatile tail.
  Status Append(const DeltaRecord& record);

  /// Durability barrier: writes the staged tail to the file and flushes.
  Status Flush();

  uint64_t appends() const { return appends_; }
  uint64_t flushes() const { return flushes_; }

  /// Encodes one record as a complete frame (used by Append and by the
  /// compaction writer).
  static std::string EncodeFrame(const DeltaRecord& record);

  /// Decodes every complete, checksummed frame of `path`, truncating a
  /// torn final frame. A missing file decodes as an empty log. When
  /// `valid_bytes` is non-null it receives the byte length of the decoded
  /// prefix — recovery must physically truncate the file to it before
  /// appending again, or post-recovery frames land after the torn garbage
  /// and are unreadable on the next scan.
  static Result<std::vector<DeltaRecord>> ScanFile(
      const std::string& path, size_t* valid_bytes = nullptr);

  /// Writes `records` as a fresh log at `path` (the compaction writer;
  /// callers handle tmp+rename). `truncate_to` < npos writes only that
  /// byte prefix — the torn-write shape of an injected crash.
  static Status WriteAll(const std::string& path,
                         const std::vector<DeltaRecord>& records,
                         size_t truncate_to = SIZE_MAX);

 private:
  Status Halted(const char* op) const;
  /// Writes `bytes` to the file and flushes (used for both complete and
  /// torn-prefix writes).
  Status WriteRaw(const std::string& bytes);

  std::string path_;
  std::FILE* file_ = nullptr;
  std::string pending_;
  uint64_t appends_ = 0;
  uint64_t flushes_ = 0;
  std::atomic<bool>* halted_ = nullptr;
  FaultInjector* faults_ = nullptr;
};

}  // namespace ccam

#endif  // CCAM_STORAGE_DELTA_LOG_H_
