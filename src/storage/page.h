#ifndef CCAM_STORAGE_PAGE_H_
#define CCAM_STORAGE_PAGE_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/common/status.h"

namespace ccam {

/// Identifier of a disk page within a DiskManager.
using PageId = uint32_t;

constexpr PageId kInvalidPageId = UINT32_MAX;

/// View over a slotted page holding variable-length records. The page does
/// not own its buffer; it interprets a `page_size`-byte region (typically a
/// buffer-pool frame).
///
/// Layout:
///   [0..2)  num_slots   (uint16)
///   [2..4)  heap_start  (uint16) -- lowest byte offset used by record data
///   [4..4 + 4*num_slots) slot array: per slot {offset uint16, size uint16};
///                        offset==0 marks an empty (reusable) slot
///   [heap_start..page_size) record heap, growing downward
///
/// Deleting a record leaves a hole in the heap; the page compacts itself
/// lazily when an insert does not fit contiguously but total free space
/// suffices.
class SlottedPage {
 public:
  SlottedPage(char* data, size_t page_size)
      : data_(data), page_size_(page_size) {}

  /// Formats a fresh page (zero slots, empty heap).
  static void Initialize(char* data, size_t page_size);

  /// Per-record space overhead (one slot array entry).
  static constexpr size_t kSlotOverhead = 4;
  static constexpr size_t kHeaderSize = 4;

  /// Largest record that fits on an empty page of `page_size`.
  static size_t MaxRecordSize(size_t page_size) {
    return page_size - kHeaderSize - kSlotOverhead;
  }

  /// Inserts a record; returns the slot number or -1 if it does not fit.
  int InsertRecord(std::string_view record);

  /// Removes the record in `slot`. Fails if the slot is empty/out of range.
  Status DeleteRecord(int slot);

  /// Replaces the record in `slot` (the record may move within the page).
  /// Fails with NoSpace when the new value does not fit.
  Status UpdateRecord(int slot, std::string_view record);

  /// Returns the record bytes in `slot`, or an empty view if the slot is
  /// empty or out of range. The view is invalidated by any mutation.
  std::string_view GetRecord(int slot) const;

  int NumSlots() const;
  /// Number of live (non-empty) records.
  int NumRecords() const;
  std::vector<int> LiveSlots() const;

  /// Total bytes of live record data (excluding slot overhead).
  size_t UsedBytes() const;

  /// Bytes available for a single new record right now, accounting for the
  /// slot entry the insert may need and assuming compaction may run.
  size_t FreeSpaceForRecord() const;

  /// Slides live records together to squeeze out holes.
  void Compact();

  /// Structural sanity check of the header and slot table against the page
  /// bounds: slot array below the heap, every live record inside
  /// [heap_start, page_size), no two records overlapping. Every offset the
  /// other accessors compute afterwards is then in bounds. Run on
  /// untrusted pages (crash recovery): a torn page fails with Corruption
  /// instead of provoking out-of-bounds reads.
  Status Validate() const;

 private:
  uint16_t heap_start() const;
  void set_heap_start(uint16_t v);
  void set_num_slots(uint16_t v);
  void GetSlot(int slot, uint16_t* offset, uint16_t* size) const;
  void SetSlot(int slot, uint16_t offset, uint16_t size);
  /// Contiguous free bytes between the slot array and the heap.
  size_t ContiguousFree(int extra_slots) const;

  char* data_;
  size_t page_size_;
};

}  // namespace ccam

#endif  // CCAM_STORAGE_PAGE_H_
