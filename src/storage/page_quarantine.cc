#include "src/storage/page_quarantine.h"

#include <algorithm>

namespace ccam {

std::vector<std::pair<PageId, std::string>> PageQuarantine::Entries() const {
  std::vector<std::pair<PageId, std::string>> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(entries_.size());
    for (const auto& kv : entries_) out.emplace_back(kv.first, kv.second.reason);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

void PageQuarantine::SetMetrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    m_added_ = nullptr;
    m_fastfail_ = nullptr;
    m_cleared_ = nullptr;
    m_retry_success_ = nullptr;
    g_size_ = nullptr;
    return;
  }
  m_added_ = metrics->GetCounter("storage.quarantine.added");
  m_fastfail_ = metrics->GetCounter("storage.quarantine.fastfail");
  m_cleared_ = metrics->GetCounter("storage.quarantine.cleared");
  m_retry_success_ = metrics->GetCounter("storage.quarantine.retry_success");
  g_size_ = metrics->GetGauge("storage.quarantine.size");
  // Sync the gauge to the live set: attaching after pages were already
  // quarantined must not leave it stale (a later Clear would then walk
  // it below the truth, reading like an underflow).
  std::lock_guard<std::mutex> lock(mu_);
  g_size_->Set(static_cast<int64_t>(entries_.size()));
}

}  // namespace ccam
