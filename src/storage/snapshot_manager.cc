#include "src/storage/snapshot_manager.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "src/common/coding.h"

namespace ccam {

namespace {

namespace fs = std::filesystem;

/// "CCAMSNAP", little-endian.
constexpr uint64_t kManifestMagic = 0x50414E534D414343ull;

Status WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("snapshot: cannot write " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::IOError("snapshot: write failed for " + path);
  return Status::OK();
}

Status RenameFile(const std::string& from, const std::string& to) {
  std::error_code ec;
  fs::rename(from, to, ec);
  if (ec) {
    return Status::IOError("snapshot: rename " + from + " -> " + to + ": " +
                           ec.message());
  }
  return Status::OK();
}

}  // namespace

// --- SnapshotVersion --------------------------------------------------------

std::vector<NodeId> SnapshotVersion::LiveNodeIds() const {
  const NodePageMap& base = file_->PageMap();
  std::vector<NodeId> ids;
  std::shared_lock<std::shared_mutex> lock(overlay_mu_);
  ids.reserve(base.size() + overlay_.size());
  for (const auto& kv : base) {
    auto it = overlay_.find(kv.first);
    if (it != overlay_.end() && !it->second.has_value()) continue;  // deleted
    ids.push_back(kv.first);
  }
  for (const auto& kv : overlay_) {
    if (kv.second.has_value() && base.find(kv.first) == base.end()) {
      ids.push_back(kv.first);
    }
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

size_t SnapshotVersion::NumLiveNodes() const {
  const NodePageMap& base = file_->PageMap();
  std::shared_lock<std::shared_mutex> lock(overlay_mu_);
  size_t n = base.size();
  for (const auto& kv : overlay_) {
    bool in_base = base.find(kv.first) != base.end();
    if (kv.second.has_value() && !in_base) ++n;
    if (!kv.second.has_value() && in_base) --n;
  }
  return n;
}

// --- SnapshotSession --------------------------------------------------------

void SnapshotSession::Refresh() {
  DebugCheckThread();
  if (manager_->CurrentVersionId() == version_->id()) return;
  std::shared_ptr<SnapshotVersion> next = manager_->Acquire();
  manager_->Release(version_);
  version_ = std::move(next);
}

Result<NodeRecord> SnapshotSession::Find(NodeId id) {
  DebugCheckThread();
  if (ctx_ != nullptr) CCAM_RETURN_NOT_OK(ctx_->Check());
  std::optional<NodeRecord> overlay;
  if (version_->OverlayLookup(id, &overlay)) {
    if (!overlay.has_value()) {
      return Status::NotFound("node " + std::to_string(id));
    }
    return *overlay;
  }
  return version_->file()->SharedFind(id, &io_);
}

Result<NodeRecord> SnapshotSession::GetASuccessor(NodeId from, NodeId to) {
  DebugCheckThread();
  if (ctx_ != nullptr) CCAM_RETURN_NOT_OK(ctx_->Check());
  std::optional<NodeRecord> overlay;
  if (version_->OverlayLookup(to, &overlay)) {
    if (!overlay.has_value()) {
      return Status::NotFound("node " + std::to_string(to));
    }
    return *overlay;
  }
  return version_->file()->SharedGetASuccessor(from, to, &io_);
}

Result<std::vector<NodeRecord>> SnapshotSession::GetSuccessors(NodeId id) {
  DebugCheckThread();
  if (ctx_ != nullptr) CCAM_RETURN_NOT_OK(ctx_->Check());
  std::optional<NodeRecord> overlay;
  if (version_->OverlayLookup(id, &overlay)) {
    if (!overlay.has_value()) {
      return Status::NotFound("node " + std::to_string(id));
    }
    // The anchor node mutated since this version published: its overlay
    // record carries the authoritative successor list. Resolve each
    // successor overlay-first; the base file serves the unchanged ones.
    std::vector<NodeRecord> out;
    out.reserve(overlay->succ.size());
    for (const AdjEntry& e : overlay->succ) {
      std::optional<NodeRecord> succ_overlay;
      if (version_->OverlayLookup(e.node, &succ_overlay)) {
        if (!succ_overlay.has_value()) {
          // Deleting e.node would have rewritten id's overlay record to
          // drop the edge; a tombstoned successor is a broken overlay.
          return Status::Corruption("snapshot overlay: successor " +
                                    std::to_string(e.node) + " of node " +
                                    std::to_string(id) + " is tombstoned");
        }
        out.push_back(*succ_overlay);
      } else {
        auto rec = version_->file()->SharedFind(e.node, &io_);
        if (!rec.ok()) return rec.status();
        out.push_back(std::move(*rec));
      }
    }
    return out;
  }
  // Anchor unchanged: its base successor list is current (any edge change
  // involving id would have patched id into the overlay). Individual
  // successor *records* may still have mutated — substitute those.
  auto base = version_->file()->SharedGetSuccessors(id, &io_);
  if (!base.ok()) return base;
  if (version_->OverlaySize() != 0) {
    for (NodeRecord& rec : *base) {
      std::optional<NodeRecord> succ_overlay;
      if (version_->OverlayLookup(rec.id, &succ_overlay)) {
        if (!succ_overlay.has_value()) {
          return Status::Corruption("snapshot overlay: successor " +
                                    std::to_string(rec.id) + " of node " +
                                    std::to_string(id) + " is tombstoned");
        }
        rec = *succ_overlay;
      }
    }
  }
  return base;
}

// --- SnapshotManager: lifecycle --------------------------------------------

SnapshotManager::SnapshotManager(const SnapshotOptions& options)
    : options_(options) {
  log_.SetHaltFlag(&halted_);
}

SnapshotManager::~SnapshotManager() {
  ReleasePublishGate();
  (void)WaitForReorg();
  log_.Close();
}

static Status ValidateSnapshotOptions(const SnapshotOptions& options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("snapshot store: empty directory");
  }
  if (options.am.durability) {
    return Status::InvalidArgument(
        "snapshot store: durability must be off (the delta log is the "
        "store's durability mechanism)");
  }
  if (options.am.hierarchy_overlay) {
    return Status::InvalidArgument(
        "snapshot store: hierarchy_overlay is not supported");
  }
  return Status::OK();
}

Result<std::unique_ptr<SnapshotManager>> SnapshotManager::Create(
    const SnapshotOptions& options, const Network& initial) {
  CCAM_RETURN_NOT_OK(ValidateSnapshotOptions(options));
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::IOError("snapshot store: cannot create " + options.dir +
                           ": " + ec.message());
  }
  std::unique_ptr<SnapshotManager> mgr(new SnapshotManager(options));
  if (fs::exists(mgr->ManifestPath())) {
    return Status::AlreadyExists("snapshot store already exists in " +
                                 options.dir + " (use Open)");
  }
  mgr->net_ = initial;
  auto file = std::make_unique<Ccam>(options.am);
  CCAM_RETURN_NOT_OK(file->Create(initial));
  CCAM_RETURN_NOT_OK(file->SaveImage(mgr->ImagePath(1)));
  CCAM_RETURN_NOT_OK(mgr->WriteManifest(1, ImageName(1), 0, SIZE_MAX));
  CCAM_RETURN_NOT_OK(
      RenameFile(mgr->ManifestPath() + ".tmp", mgr->ManifestPath()));
  CCAM_RETURN_NOT_OK(mgr->log_.Open(mgr->DeltaLogPath()));
  auto version = std::make_shared<SnapshotVersion>(1, std::move(file));
  mgr->current_ = version;
  mgr->versions_.push_back(std::move(version));
  mgr->next_version_id_ = 2;
  mgr->next_lsn_ = 1;
  mgr->folded_lsn_ = 0;
  return mgr;
}

Result<std::unique_ptr<SnapshotManager>> SnapshotManager::Open(
    const SnapshotOptions& options) {
  CCAM_RETURN_NOT_OK(ValidateSnapshotOptions(options));
  std::unique_ptr<SnapshotManager> mgr(new SnapshotManager(options));
  auto manifest = ReadManifest(mgr->ManifestPath());
  if (!manifest.ok()) return manifest.status();

  auto file = std::make_unique<Ccam>(options.am);
  CCAM_RETURN_NOT_OK(
      file->OpenImage(options.dir + "/" + manifest->image_name));
  auto net = file->ExportNetwork();
  if (!net.ok()) return net.status();
  mgr->net_ = std::move(*net);

  size_t log_valid_bytes = 0;
  auto records = DeltaLog::ScanFile(mgr->DeltaLogPath(), &log_valid_bytes);
  if (!records.ok()) return records.status();
  // Chop a torn tail off the physical file: the log reopens in append
  // mode, and a new frame written after torn garbage would be unreadable
  // on the next scan — a silent lost-ack.
  {
    std::error_code trunc_ec;
    if (fs::exists(mgr->DeltaLogPath(), trunc_ec) &&
        fs::file_size(mgr->DeltaLogPath(), trunc_ec) > log_valid_bytes) {
      fs::resize_file(mgr->DeltaLogPath(), log_valid_bytes, trunc_ec);
      if (trunc_ec) {
        return Status::IOError("snapshot store: cannot truncate torn log: " +
                               trunc_ec.message());
      }
    }
  }

  auto version =
      std::make_shared<SnapshotVersion>(manifest->version_id, std::move(file));
  uint64_t max_lsn = manifest->folded_lsn;
  for (const DeltaRecord& record : *records) {
    if (record.lsn <= manifest->folded_lsn) continue;  // already in the image
    if (record.lsn <= max_lsn) {
      return Status::Corruption("delta log: non-monotonic lsn " +
                                std::to_string(record.lsn));
    }
    Status valid = ValidateMutation(mgr->net_, record);
    if (!valid.ok()) {
      return Status::Corruption("delta log replay (lsn " +
                                std::to_string(record.lsn) + ", " +
                                DeltaKindName(record.kind) +
                                "): " + valid.ToString());
    }
    std::vector<NodeId> affected = AffectedNodes(mgr->net_, record);
    Status applied = ApplyMutation(&mgr->net_, record);
    if (!applied.ok()) {
      return Status::Corruption("delta log replay (lsn " +
                                std::to_string(record.lsn) +
                                "): " + applied.ToString());
    }
    for (NodeId id : affected) {
      std::optional<NodeRecord> rec;
      if (mgr->net_.HasNode(id)) {
        rec = NodeRecord::FromNetworkNode(id, mgr->net_.node(id));
      }
      version->OverlaySet(id, std::move(rec));
    }
    mgr->retained_.push_back(record);
    max_lsn = record.lsn;
  }
  mgr->folded_lsn_ = manifest->folded_lsn;
  mgr->next_lsn_ = max_lsn + 1;
  mgr->next_version_id_ = manifest->version_id + 1;
  mgr->current_ = version;
  mgr->versions_.push_back(std::move(version));
  CCAM_RETURN_NOT_OK(mgr->log_.Open(mgr->DeltaLogPath()));

  // Clear strays: unpublished build images, tmp files of interrupted
  // publishes/retires. Only MANIFEST, the delta log and the published
  // image are load-bearing.
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(options.dir, ec)) {
    std::string name = entry.path().filename().string();
    if (name == "MANIFEST" || name == "delta.log" ||
        name == manifest->image_name) {
      continue;
    }
    fs::remove(entry.path(), ec);
  }
  return mgr;
}

// --- SnapshotManager: manifest ---------------------------------------------

std::string SnapshotManager::ManifestPath() const {
  return options_.dir + "/MANIFEST";
}
std::string SnapshotManager::DeltaLogPath() const {
  return options_.dir + "/delta.log";
}
std::string SnapshotManager::ImageName(uint64_t version_id) {
  return "v" + std::to_string(version_id) + ".img";
}
std::string SnapshotManager::ImagePath(uint64_t version_id) const {
  return options_.dir + "/" + ImageName(version_id);
}

Status SnapshotManager::WriteManifest(uint64_t version_id,
                                      const std::string& image_name,
                                      uint64_t folded_lsn,
                                      size_t truncate_to) {
  std::string bytes;
  char buf[8];
  EncodeFixed64(buf, kManifestMagic);
  bytes.append(buf, 8);
  EncodeFixed64(buf, version_id);
  bytes.append(buf, 8);
  EncodeFixed64(buf, folded_lsn);
  bytes.append(buf, 8);
  EncodeFixed32(buf, static_cast<uint32_t>(image_name.size()));
  bytes.append(buf, 4);
  bytes += image_name;
  uint32_t crc = Crc32c(bytes.data(), bytes.size());
  EncodeFixed32(buf, crc);
  bytes.append(buf, 4);
  if (truncate_to < bytes.size()) bytes.resize(truncate_to);  // torn write
  return WriteFileBytes(ManifestPath() + ".tmp", bytes);
}

Result<SnapshotManager::Manifest> SnapshotManager::ReadManifest(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("snapshot manifest missing: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string bytes = ss.str();
  constexpr size_t kFixed = 8 + 8 + 8 + 4 + 4;
  if (bytes.size() < kFixed) {
    return Status::Corruption("snapshot manifest truncated");
  }
  if (DecodeFixed64(bytes.data()) != kManifestMagic) {
    return Status::Corruption("not a snapshot manifest");
  }
  uint32_t name_len = DecodeFixed32(bytes.data() + 24);
  if (bytes.size() != kFixed + name_len) {
    return Status::Corruption("snapshot manifest: bad length");
  }
  uint32_t stored = DecodeFixed32(bytes.data() + bytes.size() - 4);
  uint32_t actual = Crc32c(bytes.data(), bytes.size() - 4);
  if (stored != actual) {
    return Status::Corruption("snapshot manifest: checksum mismatch");
  }
  Manifest m;
  m.version_id = DecodeFixed64(bytes.data() + 8);
  m.folded_lsn = DecodeFixed64(bytes.data() + 16);
  m.image_name = bytes.substr(28, name_len);
  if (m.version_id == 0 || m.image_name.empty()) {
    return Status::Corruption("snapshot manifest: bad fields");
  }
  return m;
}

// --- SnapshotManager: mutation semantics -----------------------------------

Status SnapshotManager::ValidateMutation(const Network& net,
                                         const DeltaRecord& record) {
  switch (record.kind) {
    case DeltaRecord::Kind::kInsertNode:
      if (record.node.id == kInvalidNodeId) {
        return Status::InvalidArgument("insert-node: invalid node id");
      }
      if (net.HasNode(record.node.id)) {
        return Status::AlreadyExists("node " +
                                     std::to_string(record.node.id));
      }
      // Self-adjacency would fail at apply time (Network rejects
      // self-loops); refuse before the record is logged and acked.
      for (const AdjEntry& e : record.node.succ) {
        if (e.node == record.node.id) {
          return Status::InvalidArgument("insert-node: self-loop");
        }
      }
      for (const AdjEntry& e : record.node.pred) {
        if (e.node == record.node.id) {
          return Status::InvalidArgument("insert-node: self-loop");
        }
      }
      return Status::OK();
    case DeltaRecord::Kind::kDeleteNode:
      if (!net.HasNode(record.u)) {
        return Status::NotFound("node " + std::to_string(record.u));
      }
      return Status::OK();
    case DeltaRecord::Kind::kInsertEdge:
      if (record.u == record.v) {
        return Status::InvalidArgument("insert-edge: self-loop");
      }
      if (!net.HasNode(record.u)) {
        return Status::NotFound("node " + std::to_string(record.u));
      }
      if (!net.HasNode(record.v)) {
        return Status::NotFound("node " + std::to_string(record.v));
      }
      if (net.HasEdge(record.u, record.v)) {
        return Status::AlreadyExists("edge " + std::to_string(record.u) +
                                     "->" + std::to_string(record.v));
      }
      return Status::OK();
    case DeltaRecord::Kind::kDeleteEdge:
      if (!net.HasEdge(record.u, record.v)) {
        return Status::NotFound("edge " + std::to_string(record.u) + "->" +
                                std::to_string(record.v));
      }
      return Status::OK();
  }
  return Status::InvalidArgument("unknown delta kind");
}

Status SnapshotManager::ApplyMutation(Network* net,
                                      const DeltaRecord& record) {
  switch (record.kind) {
    case DeltaRecord::Kind::kInsertNode: {
      const NodeRecord& r = record.node;
      CCAM_RETURN_NOT_OK(net->AddNode(r.id, r.x, r.y, r.payload));
      // NetworkFile::InsertNode convention: adjacency entries whose
      // endpoint is absent are dropped; existing edges are kept as-is.
      for (const AdjEntry& e : r.succ) {
        if (net->HasNode(e.node) && !net->HasEdge(r.id, e.node)) {
          CCAM_RETURN_NOT_OK(net->AddEdge(r.id, e.node, e.cost));
        }
      }
      for (const AdjEntry& e : r.pred) {
        if (net->HasNode(e.node) && !net->HasEdge(e.node, r.id)) {
          CCAM_RETURN_NOT_OK(net->AddEdge(e.node, r.id, e.cost));
        }
      }
      return Status::OK();
    }
    case DeltaRecord::Kind::kDeleteNode:
      return net->RemoveNode(record.u);
    case DeltaRecord::Kind::kInsertEdge:
      return net->AddEdge(record.u, record.v, record.cost);
    case DeltaRecord::Kind::kDeleteEdge:
      return net->RemoveEdge(record.u, record.v);
  }
  return Status::InvalidArgument("unknown delta kind");
}

std::vector<NodeId> SnapshotManager::AffectedNodes(const Network& net,
                                                   const DeltaRecord& record) {
  std::vector<NodeId> out;
  switch (record.kind) {
    case DeltaRecord::Kind::kInsertNode:
      out.push_back(record.node.id);
      for (const AdjEntry& e : record.node.succ) {
        if (net.HasNode(e.node)) out.push_back(e.node);
      }
      for (const AdjEntry& e : record.node.pred) {
        if (net.HasNode(e.node)) out.push_back(e.node);
      }
      break;
    case DeltaRecord::Kind::kDeleteNode: {
      out.push_back(record.u);
      for (NodeId nbr : net.Neighbors(record.u)) out.push_back(nbr);
      break;
    }
    case DeltaRecord::Kind::kInsertEdge:
    case DeltaRecord::Kind::kDeleteEdge:
      out.push_back(record.u);
      out.push_back(record.v);
      break;
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

Status SnapshotManager::ApplyAndLog(DeltaRecord record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (halted()) return Status::IOError("snapshot store halted");
  CCAM_RETURN_NOT_OK(ValidateMutation(net_, record));
  record.lsn = next_lsn_;
  // Log-then-apply: the flush is the acknowledgment barrier. A crash
  // injected into the log leaves the in-memory state untouched (the torn
  // frame truncates away on recovery; a *complete* frame that slipped out
  // is the classic acked-vs-durable gap the strict oracle tolerates).
  CCAM_RETURN_NOT_OK(log_.Append(record));
  CCAM_RETURN_NOT_OK(log_.Flush());
  ++next_lsn_;
  std::vector<NodeId> affected = AffectedNodes(net_, record);
  Status applied = ApplyMutation(&net_, record);
  if (!applied.ok()) {
    // Validated mutations must apply; anything else is an internal
    // inconsistency between validate and apply. Halt rather than serve a
    // network that diverged from the acknowledged log.
    halted_.store(true, std::memory_order_release);
    return Status::Corruption("snapshot mutation applied inconsistently: " +
                              applied.ToString());
  }
  for (NodeId id : affected) {
    std::optional<NodeRecord> rec;
    if (net_.HasNode(id)) {
      rec = NodeRecord::FromNetworkNode(id, net_.node(id));
    }
    current_->OverlaySet(id, rec);
    if (build_active_) pending_overlay_[id] = std::move(rec);
  }
  retained_.push_back(std::move(record));
  if (m_mutations_ != nullptr) m_mutations_->Inc();
  return Status::OK();
}

Status SnapshotManager::InsertNode(const NodeRecord& record) {
  DeltaRecord r;
  r.kind = DeltaRecord::Kind::kInsertNode;
  r.node = record;
  r.u = record.id;
  return ApplyAndLog(std::move(r));
}

Status SnapshotManager::DeleteNode(NodeId id) {
  DeltaRecord r;
  r.kind = DeltaRecord::Kind::kDeleteNode;
  r.u = id;
  return ApplyAndLog(std::move(r));
}

Status SnapshotManager::InsertEdge(NodeId u, NodeId v, float cost) {
  DeltaRecord r;
  r.kind = DeltaRecord::Kind::kInsertEdge;
  r.u = u;
  r.v = v;
  r.cost = cost;
  return ApplyAndLog(std::move(r));
}

Status SnapshotManager::DeleteEdge(NodeId u, NodeId v) {
  DeltaRecord r;
  r.kind = DeltaRecord::Kind::kDeleteEdge;
  r.u = u;
  r.v = v;
  return ApplyAndLog(std::move(r));
}

// --- SnapshotManager: sessions ---------------------------------------------

std::unique_ptr<SnapshotSession> SnapshotManager::OpenSession() {
  return std::make_unique<SnapshotSession>(this);
}

std::shared_ptr<SnapshotVersion> SnapshotManager::Acquire() {
  std::lock_guard<std::mutex> lock(mu_);
  current_->refs_.fetch_add(1, std::memory_order_acq_rel);
  total_acquires_.fetch_add(1, std::memory_order_acq_rel);
  if (m_acquire_ != nullptr) m_acquire_->Inc();
  return current_;
}

void SnapshotManager::Release(const std::shared_ptr<SnapshotVersion>& version) {
  std::lock_guard<std::mutex> lock(mu_);
  version->refs_.fetch_sub(1, std::memory_order_acq_rel);
  total_releases_.fetch_add(1, std::memory_order_acq_rel);
  if (m_release_ != nullptr) m_release_->Inc();
  if (version != current_ && version->refs() == 0) {
    // The last session of a retired version drained: drop its file (and
    // buffer pool) from memory. The on-disk side retired at publish time.
    versions_.erase(std::remove(versions_.begin(), versions_.end(), version),
                    versions_.end());
    if (g_live_versions_ != nullptr) {
      g_live_versions_->Set(static_cast<int64_t>(versions_.size()));
    }
  }
}

uint64_t SnapshotManager::CurrentVersionId() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_->id();
}

size_t SnapshotManager::LiveVersionCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return versions_.size();
}

uint64_t SnapshotManager::NextLsn() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_lsn_;
}

Result<PageId> SnapshotManager::RegionOf(NodeId id) {
  std::lock_guard<std::mutex> lock(mu_);
  const NodePageMap& base = current_->file()->PageMap();
  std::optional<NodeRecord> overlay;
  if (current_->OverlayLookup(id, &overlay)) {
    if (!overlay.has_value()) {
      return Status::NotFound("node " + std::to_string(id));
    }
    auto it = base.find(id);
    if (it != base.end()) return it->second;
    // Overlay-only node (inserted since this version published). Any
    // allocated page works as a region hint — batching affinity, never
    // correctness — so use the lowest for determinism.
    PageId hint = kInvalidPageId;
    for (const auto& kv : base) hint = std::min(hint, kv.second);
    if (hint == kInvalidPageId) {
      return Status::NotFound("snapshot store has no data pages");
    }
    return hint;
  }
  auto it = base.find(id);
  if (it == base.end()) return Status::NotFound("node " + std::to_string(id));
  return it->second;
}

// --- SnapshotManager: reorganization ---------------------------------------

Status SnapshotManager::ReorganizeNow() { return DoReorganize(); }

Status SnapshotManager::StartBackgroundReorg() {
  std::lock_guard<std::mutex> lock(mu_);
  if (halted()) return Status::IOError("snapshot store halted");
  if (build_active_ || reorg_thread_running_) {
    return Status::AlreadyExists("reorganization already running");
  }
  if (reorg_thread_.joinable()) reorg_thread_.join();  // collect previous
  reorg_thread_running_ = true;
  reorg_thread_ = std::thread([this] {
    Status st = DoReorganize();
    std::lock_guard<std::mutex> inner(mu_);
    reorg_status_ = std::move(st);
    reorg_thread_running_ = false;
  });
  return Status::OK();
}

Status SnapshotManager::WaitForReorg() {
  std::thread t;
  {
    std::lock_guard<std::mutex> lock(mu_);
    t = std::move(reorg_thread_);
  }
  if (t.joinable()) t.join();
  std::lock_guard<std::mutex> lock(mu_);
  return reorg_status_;
}

bool SnapshotManager::ReorgActive() const {
  std::lock_guard<std::mutex> lock(mu_);
  // Covers the window between StartBackgroundReorg() and the spawned
  // thread reaching the cut — the same pair StartBackgroundReorg checks.
  return build_active_ || reorg_thread_running_;
}

void SnapshotManager::GatePublish(bool gate) {
  std::lock_guard<std::mutex> lock(gate_mu_);
  gate_publish_ = gate;
  gate_open_ = false;
}

void SnapshotManager::ReleasePublishGate() {
  {
    std::lock_guard<std::mutex> lock(gate_mu_);
    gate_open_ = true;
  }
  gate_cv_.notify_all();
}

Status SnapshotManager::Failpoint(const char* point,
                                  const std::function<void(size_t)>& torn) {
  if (faults_ == nullptr) return Status::OK();
  auto fault = faults_->Hit(point);
  if (!fault.has_value()) return Status::OK();
  if (fault->kind == FaultAction::Kind::kCrash) {
    if (torn) torn(fault->bytes);
    halted_.store(true, std::memory_order_release);
    return Status::IOError(std::string(point) + ": simulated crash");
  }
  return Status::FromCode(fault->code,
                          std::string("injected fault: ") + point);
}

Status SnapshotManager::DoReorganize() {
  Network cut;
  uint64_t cut_lsn = 0;
  uint64_t new_id = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (halted()) return Status::IOError("snapshot store halted");
    if (build_active_) {
      return Status::AlreadyExists("reorganization already running");
    }
    build_active_ = true;
    pending_overlay_.clear();
    cut = net_;                 // the cut: the new base's exact contents
    cut_lsn = next_lsn_ - 1;    // every lsn <= cut_lsn folds into the image
    new_id = next_version_id_;
  }
  auto finish = [this](Status st) {
    std::lock_guard<std::mutex> lock(mu_);
    build_active_ = false;
    pending_overlay_.clear();
    return st;
  };

  // --- Build: fully recluster the cut into a fresh file, off to the side.
  // No manager lock held — mutations and readers proceed concurrently; the
  // build file's private DiskManager/BufferPool never touch theirs.
  auto file = std::make_unique<Ccam>(options_.am);
  {
    ScopedLatencyTimer timer(h_build_us_);
    Status built = file->Create(cut);
    if (!built.ok()) return finish(built);
  }
  const std::string image = ImagePath(new_id);
  Status fp = Failpoint("snapshot.build", [&](size_t bytes) {
    // Crash mid-image-write: a torn prefix of the stray build image lands.
    // Recovery removes it — MANIFEST never learned the name.
    if (file->SaveImage(image).ok()) {
      std::error_code ec;
      fs::resize_file(image, bytes, ec);
    }
  });
  if (!fp.ok()) return finish(fp);
  Status saved = file->SaveImage(image);
  if (!saved.ok()) return finish(saved);
  fp = Failpoint("snapshot.build");  // complete stray image on disk
  if (!fp.ok()) return finish(fp);

  // --- Publish gate (test hook): park with the build done, swap pending.
  {
    std::unique_lock<std::mutex> glock(gate_mu_);
    gate_cv_.wait(glock, [this] { return !gate_publish_ || gate_open_; });
    gate_open_ = false;
  }

  // --- Publish + retire run under the manager lock (mutations pause for
  // the swap, never for the build).
  Status tail;
  {
    std::lock_guard<std::mutex> lock(mu_);
    tail = PublishAndRetireLocked(std::move(file), new_id, cut_lsn);
  }
  return finish(tail);
}

Status SnapshotManager::PublishAndRetireLocked(std::unique_ptr<Ccam> file,
                                               uint64_t new_id,
                                               uint64_t cut_lsn) {
  if (halted()) return Status::IOError("snapshot store halted");

  // --- Publish: MANIFEST.tmp, then the atomic rename — the commit point.
  Status fp = Failpoint("snapshot.publish", [&](size_t bytes) {
    (void)WriteManifest(new_id, ImageName(new_id), cut_lsn, bytes);
  });
  CCAM_RETURN_NOT_OK(fp);
  CCAM_RETURN_NOT_OK(
      WriteManifest(new_id, ImageName(new_id), cut_lsn, SIZE_MAX));
  CCAM_RETURN_NOT_OK(Failpoint("snapshot.publish"));  // tmp done, no rename
  CCAM_RETURN_NOT_OK(RenameFile(ManifestPath() + ".tmp", ManifestPath()));
  Status after = Failpoint("snapshot.publish");  // commit point crossed

  // The swap itself: in-memory state must match the durable commit even
  // when the injected crash fires right after the rename.
  auto next = std::make_shared<SnapshotVersion>(new_id, std::move(file));
  next->overlay_ = std::move(pending_overlay_);  // the post-cut tail
  pending_overlay_.clear();
  std::shared_ptr<SnapshotVersion> old = current_;
  current_ = next;
  versions_.push_back(std::move(next));
  ++next_version_id_;
  folded_lsn_ = cut_lsn;
  retained_.erase(
      std::remove_if(retained_.begin(), retained_.end(),
                     [&](const DeltaRecord& r) { return r.lsn <= cut_lsn; }),
      retained_.end());
  if (old->refs() == 0) {
    versions_.erase(std::remove(versions_.begin(), versions_.end(), old),
                    versions_.end());
  }
  reorg_count_.fetch_add(1, std::memory_order_acq_rel);
  if (m_publish_ != nullptr) m_publish_->Inc();
  if (g_live_versions_ != nullptr) {
    g_live_versions_->Set(static_cast<int64_t>(versions_.size()));
  }
  CCAM_RETURN_NOT_OK(after);

  // --- Retire: remove the old image, compact the delta log down to the
  // un-folded tail. Both steps are redundant with MANIFEST (recovery
  // filters by folded_lsn and deletes strays), so any crash here merely
  // leaves garbage for recovery to sweep.
  uint64_t old_id = old->id();
  CCAM_RETURN_NOT_OK(Failpoint("snapshot.retire"));  // before image unlink
  std::error_code ec;
  fs::remove(ImagePath(old_id), ec);
  const std::string log_tmp = DeltaLogPath() + ".tmp";
  fp = Failpoint("snapshot.retire", [&](size_t bytes) {
    (void)DeltaLog::WriteAll(log_tmp, retained_, bytes);  // torn tmp
  });
  CCAM_RETURN_NOT_OK(fp);
  log_.Close();
  CCAM_RETURN_NOT_OK(DeltaLog::WriteAll(log_tmp, retained_, SIZE_MAX));
  CCAM_RETURN_NOT_OK(Failpoint("snapshot.retire"));  // tmp done, no rename
  CCAM_RETURN_NOT_OK(RenameFile(log_tmp, DeltaLogPath()));
  CCAM_RETURN_NOT_OK(Failpoint("snapshot.retire"));  // after the rename
  CCAM_RETURN_NOT_OK(log_.Open(DeltaLogPath()));
  if (m_retire_ != nullptr) m_retire_->Inc();
  return Status::OK();
}

// --- SnapshotManager: consistency ------------------------------------------

namespace {

/// Order-insensitive record equality: adjacency-list *sets* must match, but
/// not their order — a network recovered via ExportNetwork rebuilds
/// predecessor lists in scan order, not insertion order.
bool CanonicallyEqual(NodeRecord a, NodeRecord b) {
  auto by_endpoint = [](const AdjEntry& x, const AdjEntry& y) {
    return x.node != y.node ? x.node < y.node : x.cost < y.cost;
  };
  std::sort(a.succ.begin(), a.succ.end(), by_endpoint);
  std::sort(b.succ.begin(), b.succ.end(), by_endpoint);
  std::sort(a.pred.begin(), a.pred.end(), by_endpoint);
  std::sort(b.pred.begin(), b.pred.end(), by_endpoint);
  return a == b;
}

}  // namespace

Status SnapshotManager::CheckConsistency() {
  std::lock_guard<std::mutex> lock(mu_);
  CCAM_RETURN_NOT_OK(current_->file()->CheckFileInvariants());
  CCAM_RETURN_NOT_OK(current_->file()->CheckGraphInvariants());
  std::vector<NodeId> visible = current_->LiveNodeIds();
  std::vector<NodeId> expected = net_.NodeIds();
  if (visible != expected) {
    return Status::Corruption(
        "snapshot: visible node set diverged from the network (" +
        std::to_string(visible.size()) + " visible vs " +
        std::to_string(expected.size()) + " expected)");
  }
  for (NodeId id : expected) {
    NodeRecord want = NodeRecord::FromNetworkNode(id, net_.node(id));
    std::optional<NodeRecord> got;
    std::optional<NodeRecord> overlay;
    if (current_->OverlayLookup(id, &overlay)) {
      got = std::move(overlay);
    } else {
      auto rec = current_->file()->SharedFind(id, nullptr);
      if (!rec.ok()) return rec.status();
      got = std::move(*rec);
    }
    if (!got.has_value() || !CanonicallyEqual(*got, want)) {
      return Status::Corruption("snapshot: record of node " +
                                std::to_string(id) +
                                " diverged from the network");
    }
  }
  return Status::OK();
}

// --- SnapshotManager: wiring ------------------------------------------------

void SnapshotManager::SetFaultInjector(FaultInjector* faults) {
  faults_ = faults;
  log_.SetFaultInjector(faults);
}

void SnapshotManager::SetMetrics(MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics != nullptr) {
    m_publish_ = metrics->GetCounter("snapshot.publish");
    m_retire_ = metrics->GetCounter("snapshot.retire");
    m_acquire_ = metrics->GetCounter("snapshot.acquire");
    m_release_ = metrics->GetCounter("snapshot.release");
    m_mutations_ = metrics->GetCounter("snapshot.mutations");
    g_live_versions_ = metrics->GetGauge("snapshot.live_versions");
    h_build_us_ = metrics->GetHistogram("snapshot.build_us");
  } else {
    m_publish_ = nullptr;
    m_retire_ = nullptr;
    m_acquire_ = nullptr;
    m_release_ = nullptr;
    m_mutations_ = nullptr;
    g_live_versions_ = nullptr;
    h_build_us_ = nullptr;
  }
}

}  // namespace ccam
