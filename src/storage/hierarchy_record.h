#ifndef CCAM_STORAGE_HIERARCHY_RECORD_H_
#define CCAM_STORAGE_HIERARCHY_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/graph/network.h"

namespace ccam {

/// One arc of the contraction-hierarchy overlay. `via` is the contracted
/// middle node a shortcut bypasses, or kInvalidNodeId for an original
/// network edge — the recursion anchor of shortcut unpacking. Costs are
/// doubles: a shortcut's cost is the *sum* of original (float) edge costs,
/// and the oracle contract is that CH distances equal Dijkstra's
/// double-accumulated distances.
struct HierarchyArc {
  NodeId node = kInvalidNodeId;  // the other endpoint
  double cost = 0.0;
  NodeId via = kInvalidNodeId;

  friend bool operator==(const HierarchyArc& a, const HierarchyArc& b) {
    return a.node == b.node && a.cost == b.cost && a.via == b.via;
  }
};

/// Fixed record prefix: id u32 + rank u32 + up count u16 + down count u16.
constexpr size_t kHierarchyRecordFixedBytes = 12;
/// Per-arc bytes: endpoint u32 + cost f64 + via u32.
constexpr size_t kHierarchyArcBytes = 16;

/// On-page record of one node of the contraction hierarchy: its rank in
/// the nested-dissection elimination order and its upward/downward
/// shortcut-graph adjacency. Every arc points to a *higher-ranked*
/// endpoint: `up` holds outgoing arcs id -> node, `down` holds incoming
/// arcs node -> id (stored here because the lower-ranked endpoint is the
/// one contracted — and hence frozen — first).
///
/// Layout (little-endian):
///   id        u32
///   rank      u32
///   up_count  u16
///   down_count u16
///   up arcs   up_count   x { node u32, cost f64, via u32 }
///   down arcs down_count x { node u32, cost f64, via u32 }
struct HierarchyNodeRecord {
  NodeId id = kInvalidNodeId;
  uint32_t rank = 0;
  std::vector<HierarchyArc> up;
  std::vector<HierarchyArc> down;

  size_t EncodedSize() const {
    return kHierarchyRecordFixedBytes +
           (up.size() + down.size()) * kHierarchyArcBytes;
  }

  /// Appends the encoded record to `out`.
  void EncodeTo(std::string* out) const;

  static Result<HierarchyNodeRecord> Decode(std::string_view bytes);

  /// Reads just the node id from an encoded record (the page-scan probe).
  static NodeId PeekId(std::string_view bytes);

  /// The upward arc to `node` / the downward arc from `node`; NotFound when
  /// absent. Shortcut unpacking resolves the two halves of a shortcut
  /// through its middle node's record with these.
  Result<HierarchyArc> UpArcTo(NodeId node) const;
  Result<HierarchyArc> DownArcFrom(NodeId node) const;
};

/// Magic stamped on the overlay's metadata record ("CHOV").
constexpr uint32_t kHierarchyMetaMagic = 0x43484f56;
constexpr uint32_t kHierarchyFormatVersion = 1;

/// Metadata record of the overlay file, stored alone on page 0 and written
/// last during the build: an overlay image without a decodable metadata
/// record is "no overlay", never a half-trusted one.
struct HierarchyMeta {
  uint32_t version = kHierarchyFormatVersion;
  uint64_t num_nodes = 0;
  uint64_t num_shortcuts = 0;

  size_t EncodedSize() const { return 4 + 4 + 8 + 8; }
  void EncodeTo(std::string* out) const;
  static Result<HierarchyMeta> Decode(std::string_view bytes);
};

}  // namespace ccam

#endif  // CCAM_STORAGE_HIERARCHY_RECORD_H_
