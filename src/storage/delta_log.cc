#include "src/storage/delta_log.h"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/common/coding.h"

namespace ccam {

namespace {

std::string EncodePayload(const DeltaRecord& record) {
  char buf[12];
  switch (record.kind) {
    case DeltaRecord::Kind::kInsertNode:
      return record.node.Encode();
    case DeltaRecord::Kind::kDeleteNode:
      EncodeFixed32(buf, record.u);
      return std::string(buf, 4);
    case DeltaRecord::Kind::kInsertEdge:
      EncodeFixed32(buf, record.u);
      EncodeFixed32(buf + 4, record.v);
      EncodeFloat(buf + 8, record.cost);
      return std::string(buf, 12);
    case DeltaRecord::Kind::kDeleteEdge:
      EncodeFixed32(buf, record.u);
      EncodeFixed32(buf + 4, record.v);
      return std::string(buf, 8);
  }
  return {};
}

Status DecodePayload(DeltaRecord* record, std::string_view payload) {
  switch (record->kind) {
    case DeltaRecord::Kind::kInsertNode: {
      auto rec = NodeRecord::Decode(payload);
      if (!rec.ok()) return rec.status();
      record->node = std::move(*rec);
      record->u = record->node.id;
      return Status::OK();
    }
    case DeltaRecord::Kind::kDeleteNode:
      if (payload.size() != 4) {
        return Status::Corruption("delta: bad delete-node payload");
      }
      record->u = DecodeFixed32(payload.data());
      return Status::OK();
    case DeltaRecord::Kind::kInsertEdge:
      if (payload.size() != 12) {
        return Status::Corruption("delta: bad insert-edge payload");
      }
      record->u = DecodeFixed32(payload.data());
      record->v = DecodeFixed32(payload.data() + 4);
      record->cost = DecodeFloat(payload.data() + 8);
      return Status::OK();
    case DeltaRecord::Kind::kDeleteEdge:
      if (payload.size() != 8) {
        return Status::Corruption("delta: bad delete-edge payload");
      }
      record->u = DecodeFixed32(payload.data());
      record->v = DecodeFixed32(payload.data() + 4);
      return Status::OK();
  }
  return Status::Corruption("delta: unknown record kind");
}

}  // namespace

const char* DeltaKindName(DeltaRecord::Kind kind) {
  switch (kind) {
    case DeltaRecord::Kind::kInsertNode:
      return "insert-node";
    case DeltaRecord::Kind::kDeleteNode:
      return "delete-node";
    case DeltaRecord::Kind::kInsertEdge:
      return "insert-edge";
    case DeltaRecord::Kind::kDeleteEdge:
      return "delete-edge";
  }
  return "unknown";
}

DeltaLog::~DeltaLog() { Close(); }

Status DeltaLog::Open(const std::string& path) {
  Close();
  path_ = path;
  file_ = std::fopen(path.c_str(), "ab");
  if (file_ == nullptr) {
    return Status::IOError("delta log: cannot open " + path);
  }
  return Status::OK();
}

void DeltaLog::Close() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

Status DeltaLog::Halted(const char* op) const {
  if (halted_ != nullptr && halted_->load(std::memory_order_acquire)) {
    return Status::IOError(std::string("delta log ") + op +
                           ": snapshot store halted");
  }
  return Status::OK();
}

Status DeltaLog::WriteRaw(const std::string& bytes) {
  if (file_ == nullptr) return Status::IOError("delta log not open");
  if (!bytes.empty() &&
      std::fwrite(bytes.data(), 1, bytes.size(), file_) != bytes.size()) {
    return Status::IOError("delta log: write failed");
  }
  std::fflush(file_);
  return Status::OK();
}

std::string DeltaLog::EncodeFrame(const DeltaRecord& record) {
  std::string payload = EncodePayload(record);
  std::string frame;
  frame.resize(kFrameHeaderSize);
  frame[0] = static_cast<char>(record.kind);
  EncodeFixed64(&frame[1], record.lsn);
  EncodeFixed32(&frame[9], static_cast<uint32_t>(payload.size()));
  frame += payload;
  uint32_t crc = Crc32c(frame.data(), frame.size());
  char trailer[4];
  EncodeFixed32(trailer, crc);
  frame.append(trailer, 4);
  return frame;
}

Status DeltaLog::Append(const DeltaRecord& record) {
  CCAM_RETURN_NOT_OK(Halted("append"));
  std::string frame = EncodeFrame(record);
  if (faults_ != nullptr) {
    if (auto fault = faults_->Hit("snapshot.log.append")) {
      if (fault->kind == FaultAction::Kind::kCrash) {
        // Power cut mid-append: a torn prefix of the in-flight frame
        // reaches the file, then the store halts.
        (void)WriteRaw(frame.substr(0, std::min(fault->bytes, frame.size())));
        if (halted_ != nullptr) {
          halted_->store(true, std::memory_order_release);
        }
        return Status::IOError("delta log append: simulated crash");
      }
      return Status::FromCode(fault->code, "injected fault: snapshot.log.append");
    }
  }
  pending_ += frame;
  ++appends_;
  return Status::OK();
}

Status DeltaLog::Flush() {
  CCAM_RETURN_NOT_OK(Halted("flush"));
  if (faults_ != nullptr) {
    if (auto fault = faults_->Hit("snapshot.log.flush")) {
      if (fault->kind == FaultAction::Kind::kCrash) {
        (void)WriteRaw(
            pending_.substr(0, std::min(fault->bytes, pending_.size())));
        pending_.clear();
        if (halted_ != nullptr) {
          halted_->store(true, std::memory_order_release);
        }
        return Status::IOError("delta log flush: simulated crash");
      }
      return Status::FromCode(fault->code, "injected fault: snapshot.log.flush");
    }
  }
  CCAM_RETURN_NOT_OK(WriteRaw(pending_));
  pending_.clear();
  ++flushes_;
  return Status::OK();
}

Result<std::vector<DeltaRecord>> DeltaLog::ScanFile(const std::string& path,
                                                    size_t* valid_bytes) {
  if (valid_bytes != nullptr) *valid_bytes = 0;
  std::vector<DeltaRecord> out;
  std::ifstream in(path, std::ios::binary);
  if (!in) return out;  // absent log = empty log
  std::ostringstream ss;
  ss << in.rdbuf();
  std::string bytes = ss.str();
  size_t pos = 0;
  while (pos + kFrameHeaderSize + kFrameTrailerSize <= bytes.size()) {
    uint8_t kind = static_cast<uint8_t>(bytes[pos]);
    uint64_t lsn = DecodeFixed64(bytes.data() + pos + 1);
    uint32_t length = DecodeFixed32(bytes.data() + pos + 9);
    size_t frame_size = kFrameHeaderSize + length + kFrameTrailerSize;
    if (pos + frame_size > bytes.size()) break;  // torn tail: truncate
    uint32_t stored = DecodeFixed32(bytes.data() + pos + kFrameHeaderSize +
                                    length);
    uint32_t actual = Crc32c(bytes.data() + pos, kFrameHeaderSize + length);
    if (stored != actual) {
      return Status::Corruption("delta log: checksum mismatch at offset " +
                                std::to_string(pos));
    }
    if (kind < 1 || kind > 4) {
      return Status::Corruption("delta log: unknown record kind " +
                                std::to_string(kind));
    }
    DeltaRecord record;
    record.kind = static_cast<DeltaRecord::Kind>(kind);
    record.lsn = lsn;
    CCAM_RETURN_NOT_OK(DecodePayload(
        &record,
        std::string_view(bytes.data() + pos + kFrameHeaderSize, length)));
    out.push_back(std::move(record));
    pos += frame_size;
  }
  if (valid_bytes != nullptr) *valid_bytes = pos;
  return out;
}

Status DeltaLog::WriteAll(const std::string& path,
                          const std::vector<DeltaRecord>& records,
                          size_t truncate_to) {
  std::string bytes;
  for (const DeltaRecord& record : records) bytes += EncodeFrame(record);
  if (truncate_to < bytes.size()) bytes.resize(truncate_to);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("delta log: cannot write " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out) return Status::IOError("delta log: write failed for " + path);
  return Status::OK();
}

}  // namespace ccam
