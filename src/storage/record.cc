#include "src/storage/record.h"

#include <algorithm>
#include <set>

#include "src/common/coding.h"

namespace ccam {

namespace {
constexpr size_t kFixedHeader = kNodeRecordFixedBytes;
constexpr size_t kAdjEntrySize = kNodeRecordAdjEntryBytes;
}  // namespace

NodeRecord NodeRecord::FromNetworkNode(NodeId id, const NetworkNode& node) {
  NodeRecord rec;
  rec.id = id;
  rec.x = node.x;
  rec.y = node.y;
  rec.payload = node.payload;
  rec.succ = node.succ;
  rec.pred = node.pred;
  return rec;
}

size_t NodeRecord::EncodedSize() const {
  return kFixedHeader + payload.size() +
         kAdjEntrySize * (succ.size() + pred.size());
}

std::string NodeRecord::Encode() const {
  std::string out;
  out.reserve(EncodedSize());
  PutFixed32(&out, id);
  PutDouble(&out, x);
  PutDouble(&out, y);
  PutFixed16(&out, static_cast<uint16_t>(payload.size()));
  PutFixed16(&out, static_cast<uint16_t>(succ.size()));
  PutFixed16(&out, static_cast<uint16_t>(pred.size()));
  out.append(payload);
  for (const AdjEntry& e : succ) {
    PutFixed32(&out, e.node);
    PutFloat(&out, e.cost);
  }
  for (const AdjEntry& e : pred) {
    PutFixed32(&out, e.node);
    PutFloat(&out, e.cost);
  }
  return out;
}

Result<NodeRecord> NodeRecord::Decode(std::string_view bytes) {
  Decoder dec(bytes.data(), bytes.size());
  NodeRecord rec;
  rec.id = dec.GetFixed32();
  rec.x = dec.GetDouble();
  rec.y = dec.GetDouble();
  uint16_t payload_len = dec.GetFixed16();
  uint16_t n_succ = dec.GetFixed16();
  uint16_t n_pred = dec.GetFixed16();
  if (!dec.Ok()) return Status::Corruption("truncated record header");
  rec.payload.resize(payload_len);
  dec.GetBytes(rec.payload.data(), payload_len);
  rec.succ.resize(n_succ);
  for (uint16_t i = 0; i < n_succ; ++i) {
    rec.succ[i].node = dec.GetFixed32();
    rec.succ[i].cost = dec.GetFloat();
  }
  rec.pred.resize(n_pred);
  for (uint16_t i = 0; i < n_pred; ++i) {
    rec.pred[i].node = dec.GetFixed32();
    rec.pred[i].cost = dec.GetFloat();
  }
  if (!dec.Ok()) return Status::Corruption("truncated record body");
  return rec;
}

NodeId NodeRecord::PeekId(std::string_view bytes) {
  if (bytes.size() < 4) return kInvalidNodeId;
  return DecodeFixed32(bytes.data());
}

Result<float> NodeRecord::SuccessorCost(NodeId to) const {
  for (const AdjEntry& e : succ) {
    if (e.node == to) return e.cost;
  }
  return Status::NotFound("no successor " + std::to_string(to));
}

bool NodeRecord::HasSuccessor(NodeId to) const {
  return std::any_of(succ.begin(), succ.end(),
                     [to](const AdjEntry& e) { return e.node == to; });
}

bool NodeRecord::HasPredecessor(NodeId from) const {
  return std::any_of(pred.begin(), pred.end(),
                     [from](const AdjEntry& e) { return e.node == from; });
}

std::vector<NodeId> NodeRecord::Neighbors() const {
  std::set<NodeId> out;
  for (const AdjEntry& e : succ) out.insert(e.node);
  for (const AdjEntry& e : pred) out.insert(e.node);
  return {out.begin(), out.end()};
}

size_t RecordSizeOf(NodeId id, const NetworkNode& node) {
  (void)id;
  return kFixedHeader + node.payload.size() +
         kAdjEntrySize * (node.succ.size() + node.pred.size());
}

}  // namespace ccam
