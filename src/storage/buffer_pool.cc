#include "src/storage/buffer_pool.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <thread>

namespace ccam {

const char* ReplacementPolicyName(ReplacementPolicy policy) {
  switch (policy) {
    case ReplacementPolicy::kLru:
      return "lru";
    case ReplacementPolicy::kFifo:
      return "fifo";
    case ReplacementPolicy::kClock:
      return "clock";
  }
  return "unknown";
}

size_t BufferPool::AutoShardCount(size_t capacity) {
  size_t hw = std::max(1u, std::thread::hardware_concurrency());
  size_t by_capacity = std::max<size_t>(1, capacity / kMinFramesPerShard);
  return std::min({kMaxShards, hw, by_capacity});
}

BufferPool::BufferPool(DiskManager* disk, size_t capacity,
                       ReplacementPolicy policy, size_t num_shards)
    : disk_(disk), capacity_(capacity), policy_(policy) {
  assert(capacity_ >= 1);
  size_t n = num_shards == 0 ? AutoShardCount(capacity_) : num_shards;
  n = std::clamp<size_t>(n, 1, capacity_);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    // Distribute the capacity as evenly as possible; the first
    // capacity % n shards take the remainder.
    shards_.back()->capacity = capacity_ / n + (i < capacity_ % n ? 1 : 0);
  }
}

void BufferPool::ListPushBack(Shard* shard, Frame* frame) {
  frame->prev = shard->tail;
  frame->next = nullptr;
  if (shard->tail != nullptr) {
    shard->tail->next = frame;
  } else {
    shard->head = frame;
  }
  shard->tail = frame;
}

void BufferPool::ListRemove(Shard* shard, Frame* frame) {
  if (shard->hand == frame) {
    // The CLOCK hand moves to the next frame in ring order, exactly as the
    // index adjustment of the former vector implementation did.
    shard->hand = frame->next != nullptr ? frame->next : shard->head;
    if (shard->hand == frame) shard->hand = nullptr;  // last frame removed
  }
  if (frame->prev != nullptr) {
    frame->prev->next = frame->next;
  } else {
    shard->head = frame->next;
  }
  if (frame->next != nullptr) {
    frame->next->prev = frame->prev;
  } else {
    shard->tail = frame->prev;
  }
  frame->prev = frame->next = nullptr;
}

void BufferPool::ListMoveToBack(Shard* shard, Frame* frame) {
  if (shard->tail == frame) return;
  ListRemove(shard, frame);
  ListPushBack(shard, frame);
}

Status BufferPool::EvictFrameLocked(Shard* shard, Frame* frame) {
  assert(frame->pin_count == 0);
  if (frame->dirty) {
    CCAM_RETURN_NOT_OK(disk_->WritePage(frame->id, frame->data.get()));
    if (m_writeback_ != nullptr) m_writeback_->Inc();
  }
  PageId id = frame->id;
  ListRemove(shard, frame);
  shard->frames.erase(id);
  if (m_eviction_ != nullptr) m_eviction_->Inc();
  return Status::OK();
}

Status BufferPool::EvictOneLocked(Shard* shard) {
  Frame* victim = nullptr;
  if (policy_ == ReplacementPolicy::kClock) {
    // Sweep the ring (list in load order), clearing reference bits; evict
    // the first unpinned unreferenced frame. Two full sweeps guarantee
    // progress when any frame is evictable.
    size_t n = shard->frames.size();
    Frame* cursor = shard->hand != nullptr ? shard->hand : shard->head;
    for (size_t step = 0; step < 2 * n && cursor != nullptr; ++step) {
      if (cursor->pin_count == 0) {
        if (cursor->ref_bit) {
          cursor->ref_bit = false;
        } else {
          victim = cursor;
          break;
        }
      }
      cursor = cursor->next != nullptr ? cursor->next : shard->head;
    }
    // The hand rests on the victim; ListRemove advances it to the next
    // frame, matching the unsharded implementation.
    if (victim != nullptr) shard->hand = victim;
  } else {
    // kLru: the list is in recency order, head coldest. kFifo: the list is
    // in load order, head oldest. Either way the first unpinned frame from
    // the head is the victim.
    for (Frame* f = shard->head; f != nullptr; f = f->next) {
      if (f->pin_count == 0) {
        victim = f;
        break;
      }
    }
  }
  if (victim == nullptr) {
    return Status::NoSpace("all buffer frames of the shard are pinned");
  }
  return EvictFrameLocked(shard, victim);
}

Result<char*> BufferPool::FetchPage(PageId id, bool* was_miss) {
  Shard& shard = ShardFor(id);
  std::unique_lock<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(id);
  if (it != shard.frames.end()) {
    Frame& frame = it->second;
    // Pin before any wait so the frame cannot be evicted under us.
    ++frame.pin_count;
    if (frame.io_pending) {
      shard.io_cv.wait(lock, [&frame] { return !frame.io_pending; });
    }
    if (frame.io_failed) {
      if (--frame.pin_count == 0) shard.frames.erase(id);
      return Status::IOError("concurrent read of page " + std::to_string(id) +
                             " failed");
    }
    ++shard.hits;
    if (m_hit_ != nullptr) m_hit_->Inc();
    frame.ref_bit = true;
    if (policy_ == ReplacementPolicy::kLru) ListMoveToBack(&shard, &frame);
    if (was_miss != nullptr) *was_miss = false;
    return frame.data.get();
  }
  // Quarantined pages fail fast before a frame or disk read is spent on
  // them: their reads already failed the bounded retries, so re-paying the
  // I/O would only stall this request behind a known-bad page.
  if (quarantine_ != nullptr) {
    CCAM_RETURN_NOT_OK(quarantine_->Check(id));
  }
  if (shard.frames.size() >= shard.capacity) {
    CCAM_RETURN_NOT_OK(EvictOneLocked(&shard));
  }
  Frame& frame = shard.frames[id];
  frame.id = id;
  frame.data = std::make_unique<char[]>(disk_->page_size());
  frame.pin_count = 1;
  frame.ref_bit = true;
  frame.io_pending = true;
  ListPushBack(&shard, &frame);
  // Read outside the latch: misses in flight overlap (the simulated disk
  // may model latency), and hits on other pages of the shard proceed.
  // The pin keeps the frame alive; followers of the same page wait on the
  // io_pending flag. `frame` stays valid across the unlock because
  // unordered_map never moves its nodes.
  lock.unlock();
  Status read_status = ReadWithRetry(id, frame.data.get());
  lock.lock();
  frame.io_pending = false;
  shard.io_cv.notify_all();
  if (!read_status.ok()) {
    frame.io_failed = true;
    ListRemove(&shard, &frame);
    if (--frame.pin_count == 0) shard.frames.erase(id);
    return read_status;
  }
  // The miss is counted only now — after its disk read completed and
  // under the shard latch — so a counter sample never sees a miss whose
  // read is still in flight (or one that subsequently failed), and
  // hits + misses always equals the successful fetches that returned.
  ++shard.misses;
  if (m_miss_ != nullptr) m_miss_->Inc();
  if (was_miss != nullptr) *was_miss = true;
  return frame.data.get();
}

Status BufferPool::ReadWithRetry(PageId id, char* data) {
  Status read_status = disk_->ReadPage(id, data);
  if (read_status.ok() || quarantine_ == nullptr) return read_status;
  // Only damage-shaped failures are worth re-reading: a torn transfer or a
  // checksum mismatch may be a transient fault (the injector's whole
  // point), while e.g. NotFound is deterministic.
  if (!read_status.IsCorruption() && !read_status.IsShortRead() &&
      !read_status.IsIOError()) {
    return read_status;
  }
  for (int attempt = 0; attempt < read_retries_; ++attempt) {
    Status retry_status = disk_->ReadPage(id, data);
    if (retry_status.ok()) {
      quarantine_->NoteRetrySuccess();
      return retry_status;
    }
    read_status = std::move(retry_status);
  }
  // Persistent damage: quarantine the page so later fetches fail fast
  // (this caller still sees the original typed failure). Device-level
  // IOError is not page damage — retried above, but never quarantined.
  if (read_status.IsCorruption() || read_status.IsShortRead()) {
    quarantine_->Add(id, read_status.ToString());
  }
  return read_status;
}

Status BufferPool::UnpinPage(PageId id, bool dirty) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(id);
  if (it == shard.frames.end()) {
    return Status::InvalidArgument("unpin of unbuffered page " +
                                   std::to_string(id));
  }
  Frame& frame = it->second;
  if (frame.pin_count <= 0) {
    return Status::InvalidArgument("unpin of unpinned page " +
                                   std::to_string(id));
  }
  frame.dirty |= dirty;
  --frame.pin_count;
  return Status::OK();
}

Status BufferPool::NewPage(PageId* id, char** data) {
  PageId fresh;
  CCAM_ASSIGN_OR_RETURN(fresh, disk_->AllocatePage());
  Shard& shard = ShardFor(fresh);
  std::unique_lock<std::mutex> lock(shard.mu);
  if (shard.frames.size() >= shard.capacity) {
    Status evicted = EvictOneLocked(&shard);
    if (!evicted.ok()) {
      // Roll the allocation back so a full pool leaves the disk unchanged
      // (the id returns to the free list and is reused next time).
      lock.unlock();
      (void)disk_->FreePage(fresh);
      return evicted;
    }
  }
  Frame& frame = shard.frames[fresh];
  frame.id = fresh;
  frame.data = std::make_unique<char[]>(disk_->page_size());
  std::memset(frame.data.get(), 0, disk_->page_size());
  frame.pin_count = 1;
  frame.dirty = true;  // never materialized on disk yet
  frame.ref_bit = true;
  ListPushBack(&shard, &frame);
  *id = fresh;
  *data = frame.data.get();
  return Status::OK();
}

bool BufferPool::Contains(PageId id) const {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.frames.count(id) > 0;
}

Status BufferPool::FlushPage(PageId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(id);
  if (it == shard.frames.end() || !it->second.dirty) return Status::OK();
  CCAM_RETURN_NOT_OK(disk_->WritePage(id, it->second.data.get()));
  it->second.dirty = false;
  if (m_writeback_ != nullptr) m_writeback_->Inc();
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (auto& [id, frame] : shard->frames) {
      if (frame.dirty) {
        CCAM_RETURN_NOT_OK(disk_->WritePage(id, frame.data.get()));
        frame.dirty = false;
        if (m_writeback_ != nullptr) m_writeback_->Inc();
      }
    }
  }
  return Status::OK();
}

void BufferPool::Discard(PageId id) {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(id);
  if (it == shard.frames.end()) return;
  assert(it->second.pin_count == 0);
  ListRemove(&shard, &it->second);
  shard.frames.erase(it);
}

Status BufferPool::Reset() {
  CCAM_RETURN_NOT_OK(FlushAll());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->frames.clear();
    shard->head = shard->tail = shard->hand = nullptr;
  }
  return Status::OK();
}

size_t BufferPool::NumBuffered() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->frames.size();
  }
  return total;
}

BufferPool::Counters BufferPool::GetCounters() const {
  Counters total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.hits += shard->hits;
    total.misses += shard->misses;
  }
  return total;
}

void BufferPool::ResetCounters() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->hits = 0;
    shard->misses = 0;
  }
}

void BufferPool::SetMetrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    m_hit_ = m_miss_ = m_eviction_ = m_writeback_ = nullptr;
    return;
  }
  m_hit_ = metrics->GetCounter("buffer_pool.hit");
  m_miss_ = metrics->GetCounter("buffer_pool.miss");
  m_eviction_ = metrics->GetCounter("buffer_pool.eviction");
  m_writeback_ = metrics->GetCounter("buffer_pool.writeback");
}

Status BufferPool::FetchPages(const std::vector<PageId>& ids,
                              std::vector<PageGuard>* guards, IoStats* io) {
  std::vector<PageId> distinct(ids);
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  std::vector<PageGuard> pinned;
  pinned.reserve(distinct.size());
  for (PageId id : distinct) {
    PageGuard guard(this, id, io);
    if (!guard.ok()) return guard.status();  // `pinned` unwinds the rest
    pinned.push_back(std::move(guard));
  }
  for (PageGuard& guard : pinned) guards->push_back(std::move(guard));
  return Status::OK();
}

int BufferPool::PinCount(PageId id) const {
  Shard& shard = ShardFor(id);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.frames.find(id);
  return it == shard.frames.end() ? 0 : it->second.pin_count;
}

PageGuard::PageGuard(BufferPool* pool, PageId id, IoStats* io)
    : pool_(pool), id_(id) {
  bool was_miss = false;
  auto res = pool->FetchPage(id, &was_miss);
  if (res.ok()) {
    data_ = *res;
    if (io != nullptr && was_miss) ++io->reads;
  } else {
    status_ = res.status();
    pool_ = nullptr;
  }
}

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_),
      id_(other.id_),
      data_(other.data_),
      dirty_(other.dirty_),
      status_(other.status_) {
  other.pool_ = nullptr;
  other.data_ = nullptr;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    data_ = other.data_;
    dirty_ = other.dirty_;
    status_ = other.status_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

PageGuard::~PageGuard() { Release(); }

void PageGuard::Release() {
  if (pool_ != nullptr && data_ != nullptr) {
    (void)pool_->UnpinPage(id_, dirty_);
  }
  pool_ = nullptr;
  data_ = nullptr;
}

}  // namespace ccam
