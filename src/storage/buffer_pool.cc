#include "src/storage/buffer_pool.h"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace ccam {

const char* ReplacementPolicyName(ReplacementPolicy policy) {
  switch (policy) {
    case ReplacementPolicy::kLru:
      return "lru";
    case ReplacementPolicy::kFifo:
      return "fifo";
    case ReplacementPolicy::kClock:
      return "clock";
  }
  return "unknown";
}

BufferPool::BufferPool(DiskManager* disk, size_t capacity,
                       ReplacementPolicy policy)
    : disk_(disk), capacity_(capacity), policy_(policy) {
  assert(capacity_ >= 1);
}

void BufferPool::ForgetResident(PageId id) {
  auto it = std::find(resident_order_.begin(), resident_order_.end(), id);
  if (it == resident_order_.end()) return;
  size_t idx = static_cast<size_t>(it - resident_order_.begin());
  resident_order_.erase(it);
  if (clock_hand_ > idx) --clock_hand_;
  if (!resident_order_.empty()) clock_hand_ %= resident_order_.size();
}

Status BufferPool::EvictPage(PageId victim) {
  auto it = frames_.find(victim);
  assert(it != frames_.end() && it->second.pin_count == 0);
  if (it->second.dirty) {
    CCAM_RETURN_NOT_OK(disk_->WritePage(victim, it->second.data.get()));
  }
  frames_.erase(it);
  ForgetResident(victim);
  return Status::OK();
}

Status BufferPool::EvictOne() {
  // Any unpinned frame at all?
  PageId victim = kInvalidPageId;
  if (policy_ == ReplacementPolicy::kClock) {
    // Sweep the residency ring, clearing reference bits; evict the first
    // unpinned unreferenced frame. Two full sweeps guarantee progress.
    size_t n = resident_order_.size();
    for (size_t step = 0; step < 2 * n; ++step) {
      PageId candidate = resident_order_[clock_hand_];
      Frame& frame = frames_.at(candidate);
      if (frame.pin_count == 0) {
        if (frame.ref_bit) {
          frame.ref_bit = false;
        } else {
          victim = candidate;
          break;
        }
      }
      clock_hand_ = (clock_hand_ + 1) % n;
    }
  } else {
    uint64_t best = UINT64_MAX;
    for (PageId id : resident_order_) {
      const Frame& frame = frames_.at(id);
      if (frame.pin_count > 0) continue;
      uint64_t key = policy_ == ReplacementPolicy::kFifo
                         ? frame.load_seq
                         : frame.last_use_seq;
      if (key < best) {
        best = key;
        victim = id;
      }
    }
  }
  if (victim == kInvalidPageId) {
    return Status::NoSpace("all buffer frames are pinned");
  }
  return EvictPage(victim);
}

Result<char*> BufferPool::FetchPage(PageId id) {
  ++seq_;
  auto it = frames_.find(id);
  if (it != frames_.end()) {
    ++hits_;
    Frame& frame = it->second;
    frame.last_use_seq = seq_;
    frame.ref_bit = true;
    ++frame.pin_count;
    return frame.data.get();
  }
  ++misses_;
  if (frames_.size() >= capacity_) {
    CCAM_RETURN_NOT_OK(EvictOne());
  }
  Frame frame;
  frame.data = std::make_unique<char[]>(disk_->page_size());
  CCAM_RETURN_NOT_OK(disk_->ReadPage(id, frame.data.get()));
  frame.pin_count = 1;
  frame.load_seq = seq_;
  frame.last_use_seq = seq_;
  frame.ref_bit = true;
  char* data = frame.data.get();
  frames_.emplace(id, std::move(frame));
  resident_order_.push_back(id);
  return data;
}

Status BufferPool::UnpinPage(PageId id, bool dirty) {
  auto it = frames_.find(id);
  if (it == frames_.end()) {
    return Status::InvalidArgument("unpin of unbuffered page " +
                                   std::to_string(id));
  }
  Frame& frame = it->second;
  if (frame.pin_count <= 0) {
    return Status::InvalidArgument("unpin of unpinned page " +
                                   std::to_string(id));
  }
  frame.dirty |= dirty;
  --frame.pin_count;
  return Status::OK();
}

Status BufferPool::NewPage(PageId* id, char** data) {
  ++seq_;
  if (frames_.size() >= capacity_) {
    CCAM_RETURN_NOT_OK(EvictOne());
  }
  *id = disk_->AllocatePage();
  Frame frame;
  frame.data = std::make_unique<char[]>(disk_->page_size());
  std::memset(frame.data.get(), 0, disk_->page_size());
  frame.pin_count = 1;
  frame.dirty = true;  // never materialized on disk yet
  frame.load_seq = seq_;
  frame.last_use_seq = seq_;
  frame.ref_bit = true;
  *data = frame.data.get();
  frames_.emplace(*id, std::move(frame));
  resident_order_.push_back(*id);
  return Status::OK();
}

bool BufferPool::Contains(PageId id) const { return frames_.count(id) > 0; }

Status BufferPool::FlushPage(PageId id) {
  auto it = frames_.find(id);
  if (it == frames_.end() || !it->second.dirty) return Status::OK();
  CCAM_RETURN_NOT_OK(disk_->WritePage(id, it->second.data.get()));
  it->second.dirty = false;
  return Status::OK();
}

Status BufferPool::FlushAll() {
  for (auto& [id, frame] : frames_) {
    if (frame.dirty) {
      CCAM_RETURN_NOT_OK(disk_->WritePage(id, frame.data.get()));
      frame.dirty = false;
    }
  }
  return Status::OK();
}

void BufferPool::Discard(PageId id) {
  auto it = frames_.find(id);
  if (it == frames_.end()) return;
  assert(it->second.pin_count == 0);
  frames_.erase(it);
  ForgetResident(id);
}

Status BufferPool::Reset() {
  CCAM_RETURN_NOT_OK(FlushAll());
  frames_.clear();
  resident_order_.clear();
  clock_hand_ = 0;
  return Status::OK();
}

int BufferPool::PinCount(PageId id) const {
  auto it = frames_.find(id);
  return it == frames_.end() ? 0 : it->second.pin_count;
}

PageGuard::PageGuard(BufferPool* pool, PageId id) : pool_(pool), id_(id) {
  auto res = pool->FetchPage(id);
  if (res.ok()) {
    data_ = *res;
  } else {
    status_ = res.status();
    pool_ = nullptr;
  }
}

PageGuard::PageGuard(PageGuard&& other) noexcept
    : pool_(other.pool_),
      id_(other.id_),
      data_(other.data_),
      dirty_(other.dirty_),
      status_(other.status_) {
  other.pool_ = nullptr;
  other.data_ = nullptr;
}

PageGuard& PageGuard::operator=(PageGuard&& other) noexcept {
  if (this != &other) {
    Release();
    pool_ = other.pool_;
    id_ = other.id_;
    data_ = other.data_;
    dirty_ = other.dirty_;
    status_ = other.status_;
    other.pool_ = nullptr;
    other.data_ = nullptr;
  }
  return *this;
}

PageGuard::~PageGuard() { Release(); }

void PageGuard::Release() {
  if (pool_ != nullptr && data_ != nullptr) {
    (void)pool_->UnpinPage(id_, dirty_);
  }
  pool_ = nullptr;
  data_ = nullptr;
}

}  // namespace ccam
