#include "src/storage/page.h"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <string>

#include "src/common/coding.h"

namespace ccam {

void SlottedPage::Initialize(char* data, size_t page_size) {
  std::memset(data, 0, page_size);
  EncodeFixed16(data, 0);  // num_slots
  EncodeFixed16(data + 2, static_cast<uint16_t>(page_size));  // heap_start
}

uint16_t SlottedPage::heap_start() const { return DecodeFixed16(data_ + 2); }

void SlottedPage::set_heap_start(uint16_t v) { EncodeFixed16(data_ + 2, v); }

int SlottedPage::NumSlots() const { return DecodeFixed16(data_); }

void SlottedPage::set_num_slots(uint16_t v) { EncodeFixed16(data_, v); }

void SlottedPage::GetSlot(int slot, uint16_t* offset, uint16_t* size) const {
  const char* entry = data_ + kHeaderSize + kSlotOverhead * slot;
  *offset = DecodeFixed16(entry);
  *size = DecodeFixed16(entry + 2);
}

void SlottedPage::SetSlot(int slot, uint16_t offset, uint16_t size) {
  char* entry = data_ + kHeaderSize + kSlotOverhead * slot;
  EncodeFixed16(entry, offset);
  EncodeFixed16(entry + 2, size);
}

int SlottedPage::NumRecords() const {
  int live = 0;
  for (int i = 0; i < NumSlots(); ++i) {
    uint16_t offset, size;
    GetSlot(i, &offset, &size);
    if (offset != 0) ++live;
  }
  return live;
}

std::vector<int> SlottedPage::LiveSlots() const {
  std::vector<int> out;
  for (int i = 0; i < NumSlots(); ++i) {
    uint16_t offset, size;
    GetSlot(i, &offset, &size);
    if (offset != 0) out.push_back(i);
  }
  return out;
}

size_t SlottedPage::UsedBytes() const {
  size_t used = 0;
  for (int i = 0; i < NumSlots(); ++i) {
    uint16_t offset, size;
    GetSlot(i, &offset, &size);
    if (offset != 0) used += size;
  }
  return used;
}

size_t SlottedPage::ContiguousFree(int extra_slots) const {
  size_t slots_end = kHeaderSize + kSlotOverhead * (NumSlots() + extra_slots);
  size_t heap = heap_start();
  return heap > slots_end ? heap - slots_end : 0;
}

size_t SlottedPage::FreeSpaceForRecord() const {
  // An insert can reuse an empty slot; otherwise it needs a new entry.
  bool has_empty_slot = NumRecords() < NumSlots();
  size_t slots_bytes =
      kHeaderSize + kSlotOverhead * (NumSlots() + (has_empty_slot ? 0 : 1));
  size_t used = UsedBytes();
  size_t total = slots_bytes + used;
  return total < page_size_ ? page_size_ - total : 0;
}

int SlottedPage::InsertRecord(std::string_view record) {
  if (record.empty() || record.size() > MaxRecordSize(page_size_)) return -1;
  // Find a reusable slot.
  int slot = -1;
  for (int i = 0; i < NumSlots(); ++i) {
    uint16_t offset, size;
    GetSlot(i, &offset, &size);
    if (offset == 0) {
      slot = i;
      break;
    }
  }
  int extra_slots = (slot == -1) ? 1 : 0;
  if (ContiguousFree(extra_slots) < record.size()) {
    // Total space may still suffice after squeezing out holes.
    size_t slots_bytes =
        kHeaderSize + kSlotOverhead * (NumSlots() + extra_slots);
    if (slots_bytes + UsedBytes() + record.size() > page_size_) return -1;
    Compact();
    if (ContiguousFree(extra_slots) < record.size()) return -1;
  }
  if (slot == -1) {
    slot = NumSlots();
    set_num_slots(static_cast<uint16_t>(slot + 1));
  }
  uint16_t new_start = static_cast<uint16_t>(heap_start() - record.size());
  std::memcpy(data_ + new_start, record.data(), record.size());
  set_heap_start(new_start);
  SetSlot(slot, new_start, static_cast<uint16_t>(record.size()));
  return slot;
}

Status SlottedPage::DeleteRecord(int slot) {
  if (slot < 0 || slot >= NumSlots()) {
    return Status::InvalidArgument("slot out of range");
  }
  uint16_t offset, size;
  GetSlot(slot, &offset, &size);
  if (offset == 0) return Status::NotFound("slot is empty");
  SetSlot(slot, 0, 0);
  // Reclaim heap space immediately when this was the lowest record.
  if (offset == heap_start()) {
    uint16_t new_start = static_cast<uint16_t>(page_size_);
    for (int i = 0; i < NumSlots(); ++i) {
      uint16_t o, s;
      GetSlot(i, &o, &s);
      if (o != 0) new_start = std::min(new_start, o);
    }
    set_heap_start(new_start);
  }
  // Trim trailing empty slots so the slot array can shrink.
  int slots = NumSlots();
  while (slots > 0) {
    uint16_t o, s;
    GetSlot(slots - 1, &o, &s);
    if (o != 0) break;
    --slots;
  }
  set_num_slots(static_cast<uint16_t>(slots));
  return Status::OK();
}

Status SlottedPage::UpdateRecord(int slot, std::string_view record) {
  if (slot < 0 || slot >= NumSlots()) {
    return Status::InvalidArgument("slot out of range");
  }
  uint16_t offset, size;
  GetSlot(slot, &offset, &size);
  if (offset == 0) return Status::NotFound("slot is empty");
  if (record.size() <= size) {
    // Shrink / equal: rewrite in place (leaves a hole behind the record on
    // shrink, reclaimed by the next compaction).
    std::memcpy(data_ + offset, record.data(), record.size());
    SetSlot(slot, offset, static_cast<uint16_t>(record.size()));
    return Status::OK();
  }
  // Grow: logically remove, compact, then write the (new or, if it does not
  // fit, the original) value into the freed slot. Clearing via SetSlot keeps
  // the slot index valid: only DeleteRecord trims the slot array.
  std::string old(GetRecord(slot));
  SetSlot(slot, 0, 0);
  size_t slots_bytes = kHeaderSize + kSlotOverhead * NumSlots();
  bool fits = slots_bytes + UsedBytes() + record.size() <= page_size_;
  Compact();
  std::string_view to_write = fits ? record : std::string_view(old);
  uint16_t new_start =
      static_cast<uint16_t>(heap_start() - to_write.size());
  std::memcpy(data_ + new_start, to_write.data(), to_write.size());
  set_heap_start(new_start);
  SetSlot(slot, new_start, static_cast<uint16_t>(to_write.size()));
  if (!fits) return Status::NoSpace("record does not fit after growth");
  return Status::OK();
}

std::string_view SlottedPage::GetRecord(int slot) const {
  if (slot < 0 || slot >= NumSlots()) return {};
  uint16_t offset, size;
  GetSlot(slot, &offset, &size);
  if (offset == 0) return {};
  return {data_ + offset, size};
}

Status SlottedPage::Validate() const {
  auto bad = [](const std::string& why) {
    return Status::Corruption("invalid slotted page: " + why);
  };
  size_t num_slots = DecodeFixed16(data_);
  size_t heap = DecodeFixed16(data_ + 2);
  size_t slots_end = kHeaderSize + kSlotOverhead * num_slots;
  if (heap > page_size_) return bad("heap start beyond page end");
  if (slots_end > heap) return bad("slot array overlaps heap");
  std::vector<std::pair<uint16_t, uint16_t>> live;  // (offset, size)
  for (size_t i = 0; i < num_slots; ++i) {
    uint16_t offset, size;
    GetSlot(static_cast<int>(i), &offset, &size);
    if (offset == 0) continue;
    if (offset < heap || offset + static_cast<size_t>(size) > page_size_) {
      return bad("slot " + std::to_string(i) + " out of bounds");
    }
    live.emplace_back(offset, size);
  }
  std::sort(live.begin(), live.end());
  for (size_t i = 1; i < live.size(); ++i) {
    if (static_cast<size_t>(live[i - 1].first) + live[i - 1].second >
        live[i].first) {
      return bad("overlapping records");
    }
  }
  return Status::OK();
}

void SlottedPage::Compact() {
  struct Entry {
    int slot;
    uint16_t offset;
    uint16_t size;
  };
  std::vector<Entry> live;
  for (int i = 0; i < NumSlots(); ++i) {
    uint16_t offset, size;
    GetSlot(i, &offset, &size);
    if (offset != 0) live.push_back({i, offset, size});
  }
  // Repack from the end of the page, highest original offset first so that
  // memmove never overwrites data it still needs.
  std::sort(live.begin(), live.end(), [](const Entry& a, const Entry& b) {
    return a.offset > b.offset;
  });
  uint16_t cursor = static_cast<uint16_t>(page_size_);
  for (const Entry& e : live) {
    cursor = static_cast<uint16_t>(cursor - e.size);
    if (cursor != e.offset) {
      std::memmove(data_ + cursor, data_ + e.offset, e.size);
    }
    SetSlot(e.slot, cursor, e.size);
  }
  set_heap_start(cursor);
}

}  // namespace ccam
