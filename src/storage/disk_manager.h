#ifndef CCAM_STORAGE_DISK_MANAGER_H_
#define CCAM_STORAGE_DISK_MANAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/storage/io_stats.h"
#include "src/storage/page.h"

namespace ccam {

/// Simulated disk: a growable array of fixed-size pages with exact I/O
/// accounting. The paper evaluates access methods by the *number of data
/// page accesses*, which this simulation counts deterministically; latency
/// is irrelevant to the reproduced results (see DESIGN.md, substitutions).
class DiskManager {
 public:
  explicit DiskManager(size_t page_size);

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  size_t page_size() const { return page_size_; }

  /// Allocates a zeroed page and returns its id. Freed pages are reused.
  PageId AllocatePage();

  /// Returns a page to the free list. Double-free is an error.
  Status FreePage(PageId id);

  /// Copies the page contents into `out` (page_size bytes). Counts a read.
  Status ReadPage(PageId id, char* out);

  /// Overwrites the page from `in` (page_size bytes). Counts a write.
  Status WritePage(PageId id, const char* in);

  bool IsAllocated(PageId id) const;

  /// Number of live (allocated, not freed) pages.
  size_t NumAllocatedPages() const;

  /// Ids of all live pages, ascending.
  std::vector<PageId> AllocatedPageIds() const;

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_ = IoStats{}; }
  /// Restores a previously captured snapshot — used by diagnostics scans
  /// that must not perturb experiment counters.
  void RestoreStats(const IoStats& snapshot) { stats_ = snapshot; }

  /// Writes the whole disk image (page size, allocation bitmap, page
  /// contents) to a real file. Counts no simulated I/O.
  Status SaveToFile(const std::string& path) const;

  /// Replaces this disk's contents with a previously saved image. The
  /// image's page size must match this manager's. Resets the I/O counters.
  Status LoadFromFile(const std::string& path);

 private:
  size_t page_size_;
  std::vector<std::unique_ptr<char[]>> pages_;
  std::vector<bool> allocated_;
  std::vector<PageId> free_list_;
  IoStats stats_;
};

}  // namespace ccam

#endif  // CCAM_STORAGE_DISK_MANAGER_H_
