#ifndef CCAM_STORAGE_DISK_MANAGER_H_
#define CCAM_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/common/metrics.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/storage/io_stats.h"
#include "src/storage/page.h"

namespace ccam {

class Wal;

/// Simulated disk: a growable array of fixed-size pages with exact I/O
/// accounting. The paper evaluates access methods by the *number of data
/// page accesses*, which this simulation counts deterministically; latency
/// is irrelevant to the reproduced results (see DESIGN.md, substitutions).
///
/// Thread safety. Reads are concurrent: ReadPage takes the structure lock
/// shared and bumps an atomic counter, so parallel query streams never
/// serialize on the disk. Structural mutations (Allocate/Free/Write/Load)
/// take the lock exclusively — the file layer keeps its single-writer
/// discipline, so this only guards against reads racing a writer.
///
/// Fault injection. When a FaultInjector is attached, every simulated I/O
/// evaluates a named failpoint first: "<prefix>.read", "<prefix>.write",
/// "<prefix>.alloc", "<prefix>.free" (prefix defaults to "disk"; index
/// disks use "index" so one schedule can target either device). Injected
/// faults surface as typed statuses — kShortRead / kShortWrite for partial
/// transfers (with page-id context), kNoSpace for a full device, the armed
/// code for plain errors — and a kCrash action tears the in-flight write
/// and halts the device (every later I/O fails until ClearHalt()). With no
/// injector attached the hot paths are branch-for-branch identical to the
/// fault-free build: one null pointer test, no counters, no locks beyond
/// the existing ones.
///
/// Checksums. Every complete WritePage stamps a sidecar CRC32C seal for
/// the page (a torn write keeps the page's *old* seal, so the mixed
/// old/new content no longer matches it). Seals live beside the platter,
/// not inside the SlottedPage header, so page capacity — and with it every
/// blocking-factor and I/O count the paper calibrates — is unchanged.
/// Verification on read is opt-in (SetVerifyChecksums): the durable file
/// layer turns it on; raw-device tests and paper experiments keep the
/// seed's exact read semantics. VerifyPage() checks one page on demand for
/// scrubbing.
///
/// Transactions. BeginTxn/CommitTxn/AbortTxn give the mutation path
/// atomic multi-page updates without touching the buffer pool: while a
/// transaction is open, WritePage / AllocatePage / FreePage land in a
/// volatile staged overlay and the platter is untouched (no-steal at the
/// device layer — an eviction mid-transaction stages, it cannot leak an
/// uncommitted page to the platter). CommitTxn appends begin + after-image
/// + free + commit records to the attached WAL, flushes it (the durability
/// point), applies the staged overlay to the platter through the ordinary
/// write failpoints, then truncates the log (checkpoint). AbortTxn
/// discards the overlay. Recover() replays committed transactions from a
/// loaded image's WAL tail and drops the uncommitted remainder.
class DiskManager {
 public:
  explicit DiskManager(size_t page_size);

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  size_t page_size() const { return page_size_; }

  /// Allocates a zeroed page and returns its id. Freed pages are reused.
  /// Fails only under injected faults (device full / halted).
  Result<PageId> AllocatePage();

  /// Returns a page to the free list. Double-free is an error.
  Status FreePage(PageId id);

  /// Copies the page contents into `out` (page_size bytes). Counts a read.
  /// An injected short read copies only a prefix and fills the tail of
  /// `out` with 0xCD; only complete transfers count toward the I/O stats.
  /// With checksum verification enabled, a page whose content does not
  /// match its seal fails with Corruption naming the page id.
  Status ReadPage(PageId id, char* out);

  /// Overwrites the page from `in` (page_size bytes). Counts a write.
  /// An injected torn write persists only a prefix (the page keeps its old
  /// tail — and its old seal); only complete transfers count toward the
  /// I/O stats and restamp the seal.
  Status WritePage(PageId id, const char* in);

  bool IsAllocated(PageId id) const;

  /// Number of live (allocated, not freed) pages.
  size_t NumAllocatedPages() const;

  /// Ids of all live pages, ascending.
  std::vector<PageId> AllocatedPageIds() const;

  /// Checks one live page's content against its CRC32C seal without
  /// counting I/O — the scrub primitive. Corruption names the page id.
  Status VerifyPage(PageId id) const;

  /// Turns on seal verification inside ReadPage. Off by default: the
  /// paper experiments and the raw-device tests rely on reads returning
  /// whatever bytes the platter holds (e.g. after a torn write).
  void SetVerifyChecksums(bool verify);
  bool verify_checksums() const;

  /// Snapshot of the I/O counters (by value: the counters are atomics).
  IoStats stats() const;
  void ResetStats();
  /// Restores a previously captured snapshot — used by diagnostics scans
  /// that must not perturb experiment counters.
  void RestoreStats(const IoStats& snapshot);

  /// Models disk latency for throughput experiments: every ReadPage sleeps
  /// this long *after* releasing the structure lock, so concurrent misses
  /// overlap like requests queued at a real device. 0 (the default) keeps
  /// reads instantaneous; accounting is identical either way.
  void SetSimulatedReadLatencyMicros(uint32_t micros) {
    read_latency_us_.store(micros, std::memory_order_relaxed);
  }
  uint32_t simulated_read_latency_micros() const {
    return read_latency_us_.load(std::memory_order_relaxed);
  }

  /// Attaches (or detaches, with nullptr) the fault injector. The injector
  /// is not owned and must outlive the manager or be detached first.
  void SetFaultInjector(FaultInjector* faults) { faults_ = faults; }
  FaultInjector* fault_injector() const { return faults_; }

  /// Attaches (or detaches) a metrics registry. Completed I/Os then bump
  /// "<prefix>.read" / "<prefix>.write" / "<prefix>.alloc" /
  /// "<prefix>.free" counters and feed "<prefix>.read_us" /
  /// "<prefix>.write_us" latency histograms (prefix as per
  /// SetFailpointPrefix, default "disk"). Detached (the default), every
  /// instrumentation site is one null-pointer test — the simulated I/O
  /// accounting the paper's tables are built on is untouched either way.
  void SetMetrics(MetricsRegistry* metrics);

  /// Renames this device's failpoints to "<prefix>.read" etc. (default
  /// "disk"). Index-file disks use "index" so fault schedules compose.
  void SetFailpointPrefix(const std::string& prefix);

  /// True once an injected kCrash fault fired: the simulated device halted
  /// mid-write and every subsequent I/O fails with kIOError. Snapshot
  /// (SaveToFile) and restore still work: they model reading the platter
  /// after the machine died, and count no simulated I/O.
  bool halted() const { return halted_.load(std::memory_order_acquire); }
  void Halt() { halted_.store(true, std::memory_order_release); }
  void ClearHalt() { halted_.store(false, std::memory_order_release); }

  /// Attaches (or detaches) the write-ahead log used by CommitTxn and
  /// included in saved images. Not owned. The WAL's crash halts route back
  /// here via Wal::SetDevice.
  void AttachWal(Wal* wal) { wal_ = wal; }
  Wal* wal() const { return wal_; }

  /// Opens a staged transaction: until CommitTxn/AbortTxn, writes, allocs
  /// and frees land in a volatile overlay and the platter is untouched.
  Status BeginTxn();
  bool InTxn() const;

  /// Pages the open transaction has touched (written, allocated or freed),
  /// in first-touch order. The caller uses this to invalidate cached
  /// frames when the transaction aborts.
  std::vector<PageId> TxnTouchedPages() const;

  /// Logs the staged overlay to the WAL (begin, after-images in
  /// first-touch order, frees, commit), flushes — the point after which
  /// the transaction survives any crash — then applies the overlay to the
  /// platter through the write failpoints and truncates the log. A crash
  /// injected before the flush aborts the transaction; one injected after
  /// it leaves a committed log that Recover() replays.
  Status CommitTxn();

  /// Discards the staged overlay; the platter keeps its pre-transaction
  /// state.
  Status AbortTxn();

  /// Replays the WAL tail carried by the most recently loaded image (or
  /// the attached WAL's durable bytes): committed transactions are applied
  /// in log order, an uncommitted tail is discarded, a torn final record
  /// is truncated, and a checksum-failing record fails with Corruption.
  /// Counts no simulated I/O. Safe to call on an image with no WAL tail.
  Status Recover();

  /// Writes the whole disk image (page size, allocation bitmap, page
  /// contents, page seals, and the attached WAL's durable bytes) to a real
  /// file. Counts no simulated I/O.
  Status SaveToFile(const std::string& path) const;

  /// Replaces this disk's contents with a previously saved image. The
  /// image's page size must match this manager's. Resets the I/O counters.
  /// Legacy images without seal/WAL sections load with seals computed from
  /// page content and an empty WAL tail.
  Status LoadFromFile(const std::string& path);

  /// Reads just the page size from an image header, without loading it —
  /// lets tools size a manager to fit an arbitrary image.
  static Result<size_t> PeekPageSize(const std::string& path);

 private:
  Status ApplyPlatterWrite(PageId id, const char* in);
  void MaterializeAllocation(PageId id);
  void ClearTxnStateLocked();

  size_t page_size_;
  uint32_t zero_seal_;
  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<char[]>> pages_;
  std::vector<bool> allocated_;
  std::vector<PageId> free_list_;
  /// Sidecar CRC32C of each page's last completely-written content.
  std::vector<uint32_t> seals_;
  bool verify_checksums_ = false;

  // Staged-transaction overlay (single-writer; guarded by mu_).
  bool in_txn_ = false;
  uint64_t txn_counter_ = 0;
  std::unordered_map<PageId, std::string> staged_writes_;
  std::vector<PageId> touch_order_;  // first-touch order, deduplicated
  std::vector<PageId> txn_freed_;    // net frees of pre-txn pages, in order
  std::vector<bool> txn_allocated_;  // staged view of the allocation bitmap
  std::vector<PageId> txn_free_list_;
  PageId txn_next_page_ = 0;

  /// WAL bytes carried by the most recently loaded image, pending replay.
  std::string loaded_wal_;

  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> allocs_{0};
  std::atomic<uint64_t> frees_{0};
  std::atomic<uint32_t> read_latency_us_{0};
  std::atomic<bool> halted_{false};
  FaultInjector* faults_ = nullptr;
  Wal* wal_ = nullptr;
  std::string prefix_ = "disk";
  std::string fp_read_ = "disk.read";
  std::string fp_write_ = "disk.write";
  std::string fp_alloc_ = "disk.alloc";
  std::string fp_free_ = "disk.free";

  /// Cached metric handles, resolved at attach time so the I/O paths never
  /// take the registry lock. All null when no registry is attached.
  MetricsRegistry* metrics_ = nullptr;
  MetricCounter* m_reads_ = nullptr;
  MetricCounter* m_writes_ = nullptr;
  MetricCounter* m_allocs_ = nullptr;
  MetricCounter* m_frees_ = nullptr;
  MetricHistogram* m_read_us_ = nullptr;
  MetricHistogram* m_write_us_ = nullptr;
};

}  // namespace ccam

#endif  // CCAM_STORAGE_DISK_MANAGER_H_
