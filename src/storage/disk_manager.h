#ifndef CCAM_STORAGE_DISK_MANAGER_H_
#define CCAM_STORAGE_DISK_MANAGER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/common/fault_injector.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/storage/io_stats.h"
#include "src/storage/page.h"

namespace ccam {

/// Simulated disk: a growable array of fixed-size pages with exact I/O
/// accounting. The paper evaluates access methods by the *number of data
/// page accesses*, which this simulation counts deterministically; latency
/// is irrelevant to the reproduced results (see DESIGN.md, substitutions).
///
/// Thread safety. Reads are concurrent: ReadPage takes the structure lock
/// shared and bumps an atomic counter, so parallel query streams never
/// serialize on the disk. Structural mutations (Allocate/Free/Write/Load)
/// take the lock exclusively — the file layer keeps its single-writer
/// discipline, so this only guards against reads racing a writer.
///
/// Fault injection. When a FaultInjector is attached, every simulated I/O
/// evaluates a named failpoint first: "disk.read", "disk.write",
/// "disk.alloc", "disk.free". Injected faults surface as typed statuses —
/// kShortRead / kShortWrite for partial transfers (with page-id context),
/// kNoSpace for a full device, the armed code for plain errors — and a
/// kCrash action tears the in-flight write and halts the device (every
/// later I/O fails until ClearHalt()). With no injector attached the hot
/// paths are branch-for-branch identical to the fault-free build: one null
/// pointer test, no counters, no locks beyond the existing ones.
class DiskManager {
 public:
  explicit DiskManager(size_t page_size);

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  size_t page_size() const { return page_size_; }

  /// Allocates a zeroed page and returns its id. Freed pages are reused.
  /// Fails only under injected faults (device full / halted).
  Result<PageId> AllocatePage();

  /// Returns a page to the free list. Double-free is an error.
  Status FreePage(PageId id);

  /// Copies the page contents into `out` (page_size bytes). Counts a read.
  /// An injected short read copies only a prefix and fills the tail of
  /// `out` with 0xCD; only complete transfers count toward the I/O stats.
  Status ReadPage(PageId id, char* out);

  /// Overwrites the page from `in` (page_size bytes). Counts a write.
  /// An injected torn write persists only a prefix (the page keeps its old
  /// tail); only complete transfers count toward the I/O stats.
  Status WritePage(PageId id, const char* in);

  bool IsAllocated(PageId id) const;

  /// Number of live (allocated, not freed) pages.
  size_t NumAllocatedPages() const;

  /// Ids of all live pages, ascending.
  std::vector<PageId> AllocatedPageIds() const;

  /// Snapshot of the I/O counters (by value: the counters are atomics).
  IoStats stats() const;
  void ResetStats();
  /// Restores a previously captured snapshot — used by diagnostics scans
  /// that must not perturb experiment counters.
  void RestoreStats(const IoStats& snapshot);

  /// Models disk latency for throughput experiments: every ReadPage sleeps
  /// this long *after* releasing the structure lock, so concurrent misses
  /// overlap like requests queued at a real device. 0 (the default) keeps
  /// reads instantaneous; accounting is identical either way.
  void SetSimulatedReadLatencyMicros(uint32_t micros) {
    read_latency_us_.store(micros, std::memory_order_relaxed);
  }
  uint32_t simulated_read_latency_micros() const {
    return read_latency_us_.load(std::memory_order_relaxed);
  }

  /// Attaches (or detaches, with nullptr) the fault injector. The injector
  /// is not owned and must outlive the manager or be detached first.
  void SetFaultInjector(FaultInjector* faults) { faults_ = faults; }
  FaultInjector* fault_injector() const { return faults_; }

  /// True once an injected kCrash fault fired: the simulated device halted
  /// mid-write and every subsequent I/O fails with kIOError. Snapshot
  /// (SaveToFile) and restore still work: they model reading the platter
  /// after the machine died, and count no simulated I/O.
  bool halted() const { return halted_.load(std::memory_order_acquire); }
  void ClearHalt() { halted_.store(false, std::memory_order_release); }

  /// Writes the whole disk image (page size, allocation bitmap, page
  /// contents) to a real file. Counts no simulated I/O.
  Status SaveToFile(const std::string& path) const;

  /// Replaces this disk's contents with a previously saved image. The
  /// image's page size must match this manager's. Resets the I/O counters.
  Status LoadFromFile(const std::string& path);

 private:
  size_t page_size_;
  mutable std::shared_mutex mu_;
  std::vector<std::unique_ptr<char[]>> pages_;
  std::vector<bool> allocated_;
  std::vector<PageId> free_list_;
  std::atomic<uint64_t> reads_{0};
  std::atomic<uint64_t> writes_{0};
  std::atomic<uint64_t> allocs_{0};
  std::atomic<uint64_t> frees_{0};
  std::atomic<uint32_t> read_latency_us_{0};
  std::atomic<bool> halted_{false};
  FaultInjector* faults_ = nullptr;
};

}  // namespace ccam

#endif  // CCAM_STORAGE_DISK_MANAGER_H_
