#ifndef CCAM_STORAGE_PAGE_QUARANTINE_H_
#define CCAM_STORAGE_PAGE_QUARANTINE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/storage/disk_manager.h"

namespace ccam {

/// Containment set for pages whose reads keep failing checksum or transfer
/// validation. After the buffer pool exhausts its bounded re-reads of a
/// page, the page id lands here; every later fetch of it fails fast with a
/// typed Quarantined status instead of re-paying the doomed I/O — one bad
/// page cannot keep stalling healthy traffic on retries of a read that
/// cannot succeed. A scrub/repair pass (NetworkFile::ScrubQuarantined, or
/// Clear() after an out-of-band fix) removes entries, at which point reads
/// flow again.
///
/// State machine per page: healthy → (re-reads exhausted) quarantined →
/// (scrub verifies or operator clears) healthy. Quarantined is sticky until
/// explicitly cleared: retries are the pool's job, not the caller's.
///
/// Thread safety: all methods are safe from any thread. The empty case —
/// every healthy deployment, all the time — is one relaxed atomic load, so
/// an idle quarantine adds no measurable cost to the fetch path.
class PageQuarantine {
 public:
  PageQuarantine() = default;
  PageQuarantine(const PageQuarantine&) = delete;
  PageQuarantine& operator=(const PageQuarantine&) = delete;

  /// True if `id` is quarantined. One atomic load when the set is empty.
  bool Contains(PageId id) const {
    if (count_.load(std::memory_order_acquire) == 0) return false;
    std::lock_guard<std::mutex> lock(mu_);
    return entries_.find(id) != entries_.end();
  }

  /// Fast-fail check for the fetch path: OK when the page is clean, a
  /// typed Quarantined status (carrying the original failure) otherwise.
  Status Check(PageId id) const {
    if (count_.load(std::memory_order_acquire) == 0) return Status::OK();
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(id);
    if (it == entries_.end()) return Status::OK();
    if (m_fastfail_ != nullptr) m_fastfail_->Inc();
    return Status::Quarantined("page " + std::to_string(id) +
                               " quarantined: " + it->second.reason);
  }

  /// Quarantines `id`, remembering why. Idempotent under the quarantine
  /// lock: a duplicate add (two readers losing the same page's re-read
  /// race, or a fast-fail path re-observing an entry a concurrent scrub
  /// is clearing) changes neither the set, the conservation counters, nor
  /// the gauge — so `added() - cleared() == size()` holds at every
  /// quiescent point. The first reason wins.
  void Add(PageId id, std::string reason) {
    std::lock_guard<std::mutex> lock(mu_);
    auto inserted = entries_.emplace(id, Entry{std::move(reason)});
    if (!inserted.second) return;
    count_.store(entries_.size(), std::memory_order_release);
    added_.fetch_add(1, std::memory_order_relaxed);
    if (m_added_ != nullptr) m_added_->Inc();
    if (g_size_ != nullptr) g_size_->Set(entries_.size());
  }

  /// Removes `id` after a repair; returns whether it was present.
  /// Idempotent like Add: clearing an absent page (a scrub racing an
  /// operator Clear) is a no-op on every ledger.
  bool Clear(PageId id) {
    std::lock_guard<std::mutex> lock(mu_);
    if (entries_.erase(id) == 0) return false;
    count_.store(entries_.size(), std::memory_order_release);
    cleared_.fetch_add(1, std::memory_order_relaxed);
    if (m_cleared_ != nullptr) m_cleared_->Inc();
    if (g_size_ != nullptr) g_size_->Set(entries_.size());
    return true;
  }

  void ClearAll() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!entries_.empty()) {
      cleared_.fetch_add(entries_.size(), std::memory_order_relaxed);
      if (m_cleared_ != nullptr) m_cleared_->Inc(entries_.size());
    }
    entries_.clear();
    count_.store(0, std::memory_order_release);
    if (g_size_ != nullptr) g_size_->Set(0);
  }

  size_t size() const { return count_.load(std::memory_order_acquire); }

  /// Lifetime conservation ledger, maintained under the quarantine lock
  /// whether or not metrics are attached: successful transitions only, so
  /// `added() - cleared() == size()` is an invariant (the 8-thread hammer
  /// in quarantine_test asserts it under add/clear/scrub races).
  uint64_t added() const { return added_.load(std::memory_order_relaxed); }
  uint64_t cleared() const {
    return cleared_.load(std::memory_order_relaxed);
  }

  /// Snapshot of (page, reason) pairs, ascending page id — the scrub
  /// pass's worklist and the operator-facing damage report.
  std::vector<std::pair<PageId, std::string>> Entries() const;

  /// Called by the buffer pool when a bounded re-read rescued a fetch (the
  /// fault was transient, nothing was quarantined).
  void NoteRetrySuccess() {
    if (m_retry_success_ != nullptr) m_retry_success_->Inc();
  }

  /// Attaches "storage.quarantine.{added,fastfail,cleared,retry_success}"
  /// counters and the "storage.quarantine.size" gauge. The gauge is
  /// synced to the current set size on attach — attaching after pages
  /// were already quarantined used to leave it stale at zero (and a later
  /// Clear then published a wrapped-looking negative walk). Null
  /// detaches; attach while quiescent, like every other SetMetrics in
  /// the repo.
  void SetMetrics(MetricsRegistry* metrics);

 private:
  struct Entry {
    std::string reason;
  };

  mutable std::mutex mu_;
  std::unordered_map<PageId, Entry> entries_;
  /// Mirrors entries_.size(); lets Contains/Check skip the lock when empty.
  std::atomic<size_t> count_{0};
  /// Lifetime successful adds/clears (see added()/cleared()).
  std::atomic<uint64_t> added_{0};
  std::atomic<uint64_t> cleared_{0};

  MetricCounter* m_added_ = nullptr;
  mutable MetricCounter* m_fastfail_ = nullptr;
  MetricCounter* m_cleared_ = nullptr;
  MetricCounter* m_retry_success_ = nullptr;
  MetricGauge* g_size_ = nullptr;
};

}  // namespace ccam

#endif  // CCAM_STORAGE_PAGE_QUARANTINE_H_
