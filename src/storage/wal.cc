#include "src/storage/wal.h"

#include <algorithm>
#include <chrono>

#include "src/common/coding.h"
#include "src/storage/disk_manager.h"

namespace ccam {

namespace {

/// A complete frame header always carries an authentic length under the
/// crash model (crashes truncate, they never rewrite bytes), so any length
/// beyond this bound is damage inside the durable region, not a torn tail.
constexpr size_t kMaxPayload = size_t{1} << 24;

void EncodeFrame(std::string* dst, Wal::RecordType type, uint64_t txn,
                 std::string_view payload) {
  size_t start = dst->size();
  dst->push_back(static_cast<char>(type));
  PutFixed64(dst, txn);
  PutFixed32(dst, static_cast<uint32_t>(payload.size()));
  dst->append(payload.data(), payload.size());
  uint32_t crc = Crc32c(dst->data() + start, dst->size() - start);
  PutFixed32(dst, crc);
}

}  // namespace

const char* WalRecordTypeName(Wal::RecordType type) {
  switch (type) {
    case Wal::RecordType::kBegin:
      return "begin";
    case Wal::RecordType::kPageImage:
      return "page-image";
    case Wal::RecordType::kPageFree:
      return "page-free";
    case Wal::RecordType::kCommit:
      return "commit";
  }
  return "unknown";
}

Status Wal::DeviceHalted(const char* op) const {
  if (device_ != nullptr && device_->halted()) {
    return Status::IOError(std::string("device halted by simulated crash: ") +
                           "wal " + op);
  }
  return Status::OK();
}

Status Wal::Append(RecordType type, uint64_t txn, std::string_view payload) {
  CCAM_RETURN_NOT_OK(DeviceHalted("append"));
  std::string frame;
  EncodeFrame(&frame, type, txn, payload);
  if (faults_ != nullptr) {
    if (auto fault = faults_->Hit(fp_append_)) {
      switch (fault->kind) {
        case FaultAction::Kind::kCrash: {
          // The crash catches this append mid-flight: a torn prefix of the
          // buffered bytes plus this frame reaches the platter, the rest is
          // lost with the volatile tail, and the device halts.
          std::string in_flight = pending_ + frame;
          size_t n = std::min(fault->bytes, in_flight.size());
          durable_.append(in_flight.data(), n);
          pending_.clear();
          if (device_ != nullptr) device_->Halt();
          return Status::IOError(
              "simulated crash during wal append of " +
              std::string(WalRecordTypeName(type)) + " record (torn after " +
              std::to_string(n) + " bytes)");
        }
        case FaultAction::Kind::kShort: {
          // A prefix of the frame reaches the buffer. The caller sees the
          // failure and aborts; the abort discards the mangled tail.
          size_t n = std::min(fault->bytes, frame.size());
          pending_.append(frame.data(), n);
          return Status::ShortWrite(
              "short wal append of " + std::string(WalRecordTypeName(type)) +
              " record: " + std::to_string(n) + "/" +
              std::to_string(frame.size()) + " bytes");
        }
        case FaultAction::Kind::kNoSpace:
          return Status::NoSpace("simulated log device full: wal append");
        case FaultAction::Kind::kError:
          return Status::FromCode(fault->code, "injected wal append error");
      }
    }
  }
  pending_ += frame;
  ++appends_;
  if (m_append_ != nullptr) m_append_->Inc();
  return Status::OK();
}

Status Wal::Flush() {
  CCAM_RETURN_NOT_OK(DeviceHalted("flush"));
  // Clock reads happen only with a histogram attached, and the latency is
  // recorded only when the flush succeeds — injected failures never feed
  // the series.
  MetricHistogram* flush_hist = m_flush_us_;
  std::chrono::steady_clock::time_point t0;
  if (flush_hist != nullptr) t0 = std::chrono::steady_clock::now();
  if (faults_ != nullptr) {
    if (auto fault = faults_->Hit(fp_flush_)) {
      switch (fault->kind) {
        case FaultAction::Kind::kCrash: {
          size_t n = std::min(fault->bytes, pending_.size());
          durable_.append(pending_.data(), n);
          pending_.clear();
          if (device_ != nullptr) device_->Halt();
          return Status::IOError("simulated crash during wal flush (torn after " +
                                 std::to_string(n) + " bytes)");
        }
        case FaultAction::Kind::kShort: {
          size_t n = std::min(fault->bytes, pending_.size());
          durable_.append(pending_.data(), n);
          pending_.erase(0, n);
          return Status::ShortWrite("short wal flush: " + std::to_string(n) +
                                    " bytes durable");
        }
        case FaultAction::Kind::kNoSpace:
          return Status::NoSpace("simulated log device full: wal flush");
        case FaultAction::Kind::kError:
          return Status::FromCode(fault->code, "injected wal flush error");
      }
    }
  }
  durable_ += pending_;
  pending_.clear();
  ++flushes_;
  if (m_flush_ != nullptr) m_flush_->Inc();
  if (flush_hist != nullptr) {
    auto dt = std::chrono::steady_clock::now() - t0;
    flush_hist->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(dt).count()));
  }
  return Status::OK();
}

Status Wal::Truncate() {
  CCAM_RETURN_NOT_OK(DeviceHalted("truncate"));
  durable_.clear();
  pending_.clear();
  ++truncates_;
  if (m_truncate_ != nullptr) m_truncate_->Inc();
  return Status::OK();
}

Result<std::vector<Wal::Record>> Wal::RecoverScan() const {
  std::vector<Record> records;
  const char* data = durable_.data();
  size_t size = durable_.size();
  size_t pos = 0;
  while (pos < size) {
    size_t remaining = size - pos;
    if (remaining < kFrameHeaderSize) break;  // torn tail: truncated header
    uint8_t raw_type = static_cast<uint8_t>(data[pos]);
    uint64_t txn = DecodeFixed64(data + pos + 1);
    uint32_t length = DecodeFixed32(data + pos + 9);
    if (raw_type < static_cast<uint8_t>(RecordType::kBegin) ||
        raw_type > static_cast<uint8_t>(RecordType::kCommit)) {
      return Status::Corruption("wal record at offset " + std::to_string(pos) +
                                " has invalid type " +
                                std::to_string(raw_type));
    }
    if (length > kMaxPayload) {
      return Status::Corruption("wal record at offset " + std::to_string(pos) +
                                " has implausible length " +
                                std::to_string(length));
    }
    size_t frame_size = kFrameHeaderSize + length + kFrameTrailerSize;
    if (remaining < frame_size) break;  // torn tail: truncated payload/crc
    uint32_t expected = DecodeFixed32(data + pos + kFrameHeaderSize + length);
    uint32_t actual = Crc32c(data + pos, kFrameHeaderSize + length);
    if (expected != actual) {
      return Status::Corruption("wal record at offset " + std::to_string(pos) +
                                " failed crc check");
    }
    Record rec;
    rec.type = static_cast<RecordType>(raw_type);
    rec.txn = txn;
    rec.payload.assign(data + pos + kFrameHeaderSize, length);
    records.push_back(std::move(rec));
    pos += frame_size;
  }
  return records;
}

void Wal::RestoreDurable(std::string bytes) {
  durable_ = std::move(bytes);
  pending_.clear();
}

WalStats Wal::stats() const {
  WalStats s;
  s.appends = appends_;
  s.flushes = flushes_;
  s.truncates = truncates_;
  s.durable_bytes = durable_.size();
  s.pending_bytes = pending_.size();
  return s;
}

void Wal::ResetStats() {
  appends_ = 0;
  flushes_ = 0;
  truncates_ = 0;
}

void Wal::SetMetrics(MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics == nullptr) {
    m_append_ = m_flush_ = m_truncate_ = nullptr;
    m_flush_us_ = nullptr;
    return;
  }
  m_append_ = metrics->GetCounter(prefix_ + ".append");
  m_flush_ = metrics->GetCounter(prefix_ + ".flush");
  m_truncate_ = metrics->GetCounter(prefix_ + ".truncate");
  m_flush_us_ = metrics->GetHistogram(prefix_ + ".flush_us");
}

void Wal::SetNamePrefix(const std::string& prefix) {
  prefix_ = prefix;
  fp_append_ = prefix + ".append";
  fp_flush_ = prefix + ".flush";
  SetMetrics(metrics_);  // re-resolve the cached handles under the new names
}

}  // namespace ccam
