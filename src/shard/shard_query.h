#ifndef CCAM_SHARD_SHARD_QUERY_H_
#define CCAM_SHARD_SHARD_QUERY_H_

#include "src/query/aggregate.h"
#include "src/query/route_eval.h"
#include "src/shard/sharded_network_file.h"

namespace ccam {

/// Outcome of one sharded route evaluation: the plain route-evaluation
/// aggregate plus the routing facts the shard layer adds.
struct ShardedRouteResult {
  RouteEvalResult eval;
  /// Shards the router planned for this route (1 = fast path).
  size_t fanout = 0;
  /// Route edges whose endpoints live in different shards.
  uint64_t cut_crossings = 0;
};

/// Route evaluation over a sharded file. The router first computes the
/// minimal shard set of the route's nodes:
///
///  * single shard — dispatches the whole route straight to that shard's
///    per-file QuerySession (the existing EvaluateRoute operator, zero
///    facade overhead);
///  * multiple shards — splits the route into maximal single-shard runs
///    and evaluates each run on its owner shard. A run deliberately
///    *includes* the first node past the cut: that node's record is the
///    shard's halo copy — bit-identical to the owner's — so the crossing
///    edge's cost is read locally and the next run re-anchors with one
///    Find() in the neighbor's own shard. Costs, edge counts and page
///    accesses sum across runs; no edge is counted twice.
///
/// Results are identical to evaluating the route on the facade session
/// (or on the unsharded file); only the dispatch differs.
Result<ShardedRouteResult> EvaluateRouteSharded(ShardedQuerySession* session,
                                                const Route& route);

/// Aggregate over a route-unit on a sharded file: single-shard units
/// dispatch to that shard's session (fast path), cross-shard units run on
/// the facade session, whose per-call owner routing resolves every edge
/// endpoint from its owning shard (halo copies keep each Get-A-successor
/// local). `fanout`, when given, receives the planned shard count.
Result<RouteUnitAggregate> AggregateRouteUnitSharded(
    ShardedQuerySession* session, const RouteUnit& unit,
    size_t* fanout = nullptr);

}  // namespace ccam

#endif  // CCAM_SHARD_SHARD_QUERY_H_
