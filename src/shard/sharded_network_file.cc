#include "src/shard/sharded_network_file.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <unordered_set>
#include <utility>

#include "src/partition/recursive_bisection.h"

namespace ccam {
namespace {

/// splitmix64 finalizer (same idiom as the clustering pipeline's
/// content-derived seeds).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Seed derived from the subproblem's node content, never from recursion
/// depth or scheduling, so the coarse split is a pure function of the
/// input for any thread count.
uint64_t SubsetSeed(uint64_t base, const std::vector<NodeId>& nodes) {
  uint64_t h = Mix64(base ^ static_cast<uint64_t>(nodes.size()));
  for (NodeId id : nodes) h = Mix64(h ^ id);
  return h;
}

bool IsPowerOfTwo(uint32_t v) { return v != 0 && (v & (v - 1)) == 0; }

IoStats SumStats(IoStats a, const IoStats& b) {
  a.reads += b.reads;
  a.writes += b.writes;
  a.allocs += b.allocs;
  a.frees += b.frees;
  return a;
}

}  // namespace

ShardedNetworkFile::ShardedNetworkFile(const ShardedOptions& options)
    : options_(options), halo_counts_(options.num_shards, 0) {}

ShardedNetworkFile::~ShardedNetworkFile() = default;

Status ShardedNetworkFile::Create(const Network& network) {
  const uint32_t n = options_.num_shards;
  if (!IsPowerOfTwo(n) || n > 256) {
    return Status::InvalidArgument(
        "num_shards must be a power of two in [1, 256], got " +
        std::to_string(n));
  }
  if (options_.am.hierarchy_overlay) {
    return Status::InvalidArgument(
        "hierarchy_overlay is not supported on sharded files: a per-shard "
        "contraction hierarchy over a subgraph is not globally correct");
  }
  if (network.NumNodes() < n) {
    return Status::InvalidArgument("fewer nodes than shards");
  }

  std::vector<std::vector<NodeId>> owned;
  if (n == 1) {
    owned.push_back(network.NodeIds());
  } else {
    CCAM_RETURN_NOT_OK(CoarsePartition(network, &owned));
  }
  return BuildShards(network, owned);
}

Status ShardedNetworkFile::CoarsePartition(
    const Network& network, std::vector<std::vector<NodeId>>* owned) const {
  // Recursive bisection down to num_shards leaves, emitted left-to-right.
  // Sides are re-sorted ascending before recursing so the subproblem (and
  // its content-derived seed) never depends on partitioner output order.
  struct Frame {
    std::vector<NodeId> ids;
    uint32_t parts;
  };
  std::vector<Frame> stack;
  stack.push_back({network.NodeIds(), options_.num_shards});
  std::vector<std::vector<NodeId>> leaves;
  while (!stack.empty()) {
    Frame f = std::move(stack.back());
    stack.pop_back();
    if (f.parts == 1) {
      leaves.push_back(std::move(f.ids));
      continue;
    }
    if (f.ids.size() < f.parts) {
      return Status::InvalidArgument("coarse split ran out of nodes");
    }
    PartitionGraph graph = PartitionGraph::FromNetwork(
        network, f.ids, options_.am.use_access_weights,
        SlottedPage::kSlotOverhead);
    const size_t total = graph.TotalSize();
    Bisection cut =
        TwoWayPartition(graph, total * 2 / 5, options_.am.partitioner,
                        SubsetSeed(options_.am.seed, f.ids));
    std::vector<NodeId> a, b;
    for (size_t i = 0; i < graph.ids.size(); ++i) {
      (cut.side[i] ? b : a).push_back(graph.ids[i]);
    }
    if (a.empty() || b.empty()) {
      return Status::InvalidArgument(
          "coarse shard bisection produced an empty side");
    }
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    // Right side pushed first: the stack pops the left side next, keeping
    // leaf emission in left-to-right recursion order.
    stack.push_back({std::move(b), f.parts / 2});
    stack.push_back({std::move(a), f.parts / 2});
  }
  *owned = std::move(leaves);
  return Status::OK();
}

Status ShardedNetworkFile::BuildShards(
    const Network& network, const std::vector<std::vector<NodeId>>& owned) {
  const uint32_t n = options_.num_shards;
  std::unordered_map<NodeId, uint32_t> owner;
  for (uint32_t s = 0; s < n; ++s) {
    for (NodeId id : owned[s]) owner[id] = s;
  }

  cut_edges_ = 0;
  for (NodeId u : network.NodeIds()) {
    for (const AdjEntry& e : network.node(u).succ) {
      auto it = owner.find(e.node);
      if (it != owner.end() && it->second != owner[u]) ++cut_edges_;
    }
  }

  // The per-shard clustering runs with exactly the options Ccam::Create
  // uses, so a 1-shard file lays out byte-identically to the unsharded
  // baseline (Create() even takes that path literally, below).
  ClusterOptions copts;
  copts.page_capacity = options_.am.page_size - SlottedPage::kHeaderSize;
  copts.per_record_overhead = SlottedPage::kSlotOverhead;
  copts.algorithm = options_.am.partitioner;
  copts.use_access_weights = options_.am.use_access_weights;
  copts.min_fill_fraction = options_.am.cluster_min_fill;
  copts.seed = options_.am.seed;
  copts.num_threads = options_.am.num_threads;

  shards_.clear();
  halo_counts_.assign(n, 0);
  for (uint32_t s = 0; s < n; ++s) {
    auto shard = std::make_unique<ShardFile>(options_.am);
    if (n == 1) {
      // The literal unsharded create: same clustering call, same seed,
      // same build path — bit-identical file.
      CCAM_RETURN_NOT_OK(shard->Create(network));
      halo_counts_[s] = 0;
    } else {
      std::unordered_set<NodeId> mine(owned[s].begin(), owned[s].end());
      std::vector<NodeId> halo;
      std::unordered_set<NodeId> halo_seen;
      for (NodeId u : owned[s]) {
        for (NodeId v : network.Neighbors(u)) {
          if (mine.count(v) == 0 && halo_seen.insert(v).second) {
            halo.push_back(v);
          }
        }
      }
      std::vector<NodeId> subset = owned[s];
      subset.insert(subset.end(), halo.begin(), halo.end());
      std::sort(subset.begin(), subset.end());
      std::vector<std::vector<NodeId>> pages;
      CCAM_ASSIGN_OR_RETURN(pages,
                            ClusterNodesIntoPages(network, subset, copts));
      CCAM_RETURN_NOT_OK(shard->CreateShard(network, pages));
      halo_counts_[s] = halo.size();
    }
    if (metrics_ != nullptr) shard->SetMetrics(metrics_);
    shards_.push_back(std::move(shard));
  }

  router_ = ShardRouter(n, std::move(owner));
  if (metrics_ != nullptr) router_.SetMetrics(metrics_);
  RebuildComposedPageMap();
  return Status::OK();
}

void ShardedNetworkFile::RebuildComposedPageMap() {
  page_of_.clear();
  page_of_.reserve(router_.owner_map().size());
  for (const auto& kv : router_.owner_map()) {
    const NodePageMap& local = shards_[kv.second]->PageMap();
    auto it = local.find(kv.first);
    if (it != local.end()) {
      page_of_[kv.first] = it->second * options_.num_shards + kv.second;
    }
  }
}

void ShardedNetworkFile::CountHalo() {
  std::vector<size_t> owned_count(options_.num_shards, 0);
  for (const auto& kv : router_.owner_map()) ++owned_count[kv.second];
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    halo_counts_[s] = shards_[s]->PageMap().size() - owned_count[s];
  }
}

Status ShardedNetworkFile::SaveImage(const std::string& path) {
  if (shards_.empty()) return Status::InvalidArgument("no shards to save");
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    CCAM_RETURN_NOT_OK(
        shards_[s]->SaveImage(path + ".shard" + std::to_string(s)));
  }
  // Deterministic manifest bytes (owners ascending), written to a temp
  // file and renamed so a crash never leaves a torn manifest beside
  // intact shard images.
  std::vector<std::pair<NodeId, uint32_t>> owners(
      router_.owner_map().begin(), router_.owner_map().end());
  std::sort(owners.begin(), owners.end());
  const std::string final_path = path + ".shardmap";
  const std::string tmp_path = final_path + ".tmp";
  {
    std::ofstream out(tmp_path, std::ios::trunc);
    if (!out) return Status::IOError("cannot write " + tmp_path);
    out << "ccam-shardmap 1\n";
    out << "shards " << options_.num_shards << "\n";
    out << "cut_edges " << cut_edges_ << "\n";
    out << "owners " << owners.size() << "\n";
    for (const auto& kv : owners) out << kv.first << " " << kv.second << "\n";
    out.flush();
    if (!out) return Status::IOError("short write to " + tmp_path);
  }
  if (std::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
    return Status::IOError("cannot publish " + final_path);
  }
  return Status::OK();
}

Status ShardedNetworkFile::OpenImage(const std::string& path) {
  std::ifstream in(path + ".shardmap");
  if (!in) return Status::IOError("cannot open " + path + ".shardmap");
  std::string magic;
  int version = 0;
  in >> magic >> version;
  if (magic != "ccam-shardmap" || version != 1) {
    return Status::Corruption("bad shardmap header in " + path);
  }
  std::string key;
  uint32_t saved_shards = 0;
  uint64_t saved_cut = 0;
  size_t num_owners = 0;
  in >> key >> saved_shards;
  if (key != "shards") return Status::Corruption("shardmap: missing shards");
  in >> key >> saved_cut;
  if (key != "cut_edges") {
    return Status::Corruption("shardmap: missing cut_edges");
  }
  in >> key >> num_owners;
  if (key != "owners") return Status::Corruption("shardmap: missing owners");
  if (saved_shards != options_.num_shards) {
    return Status::InvalidArgument(
        "shardmap has " + std::to_string(saved_shards) +
        " shards but options ask for " + std::to_string(options_.num_shards));
  }
  std::unordered_map<NodeId, uint32_t> owner;
  owner.reserve(num_owners);
  for (size_t i = 0; i < num_owners; ++i) {
    NodeId id = 0;
    uint32_t s = 0;
    if (!(in >> id >> s) || s >= saved_shards) {
      return Status::Corruption("shardmap: truncated owner table");
    }
    owner[id] = s;
  }

  shards_.clear();
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    auto shard = std::make_unique<ShardFile>(options_.am);
    CCAM_RETURN_NOT_OK(
        shard->OpenImage(path + ".shard" + std::to_string(s)));
    if (metrics_ != nullptr) shard->SetMetrics(metrics_);
    shards_.push_back(std::move(shard));
  }
  cut_edges_ = saved_cut;
  router_ = ShardRouter(options_.num_shards, std::move(owner));
  if (metrics_ != nullptr) router_.SetMetrics(metrics_);
  RebuildComposedPageMap();
  halo_counts_.assign(options_.num_shards, 0);
  CountHalo();
  return Status::OK();
}

IoStats ShardedNetworkFile::DataIoStats() const {
  IoStats sum;
  for (const auto& shard : shards_) sum = SumStats(sum, shard->DataIoStats());
  return sum;
}

IoStats ShardedNetworkFile::ShardIoStats(uint32_t s) const {
  return shards_[s]->DataIoStats();
}

void ShardedNetworkFile::ResetIoStats() {
  for (const auto& shard : shards_) shard->ResetIoStats();
}

size_t ShardedNetworkFile::NumDataPages() const {
  size_t sum = 0;
  for (const auto& shard : shards_) sum += shard->NumDataPages();
  return sum;
}

size_t ShardedNetworkFile::TotalHaloRecords() const {
  size_t sum = 0;
  for (size_t h : halo_counts_) sum += h;
  return sum;
}

std::unique_ptr<ShardedQuerySession> ShardedNetworkFile::OpenSession() {
  return std::make_unique<ShardedQuerySession>(this);
}

void ShardedNetworkFile::SetMetrics(MetricsRegistry* metrics) {
  metrics_ = metrics;
  for (const auto& shard : shards_) shard->SetMetrics(metrics);
  router_.SetMetrics(metrics);
}

void ShardedNetworkFile::PublishShardMetrics() {
  if (metrics_ == nullptr) return;
  metrics_->GetGauge("shard.count")->Set(options_.num_shards);
  metrics_->GetGauge("shard.cut_edges")->Set(
      static_cast<int64_t>(cut_edges_));
  for (uint32_t s = 0; s < options_.num_shards; ++s) {
    const std::string prefix = "shard." + std::to_string(s) + ".";
    metrics_->GetGauge(prefix + "reads")
        ->Set(static_cast<int64_t>(shards_[s]->DataIoStats().reads));
    metrics_->GetGauge(prefix + "pages")
        ->Set(static_cast<int64_t>(shards_[s]->NumDataPages()));
    metrics_->GetGauge(prefix + "halo")
        ->Set(static_cast<int64_t>(halo_counts_[s]));
  }
}

ShardedQuerySession::ShardedQuerySession(ShardedNetworkFile* file)
    : file_(file) {
  sessions_.reserve(file_->num_shards());
  for (uint32_t s = 0; s < file_->num_shards(); ++s) {
    sessions_.push_back(file_->shards_[s]->OpenSession());
  }
  if (file_->metrics() != nullptr) {
    m_crossings_ = file_->metrics()->GetCounter("shard.cut_crossings");
  }
}

std::string ShardedQuerySession::Name() const {
  return "Sharded(" + std::to_string(file_->num_shards()) + ")/session";
}

Result<NodeRecord> ShardedQuerySession::Find(NodeId id) {
  uint32_t s = router().ShardOf(id);
  if (s == ShardRouter::kInvalidShard) {
    return Status::NotFound("node " + std::to_string(id) +
                            " not owned by any shard");
  }
  return sessions_[s]->Find(id);
}

Result<NodeRecord> ShardedQuerySession::GetASuccessor(NodeId from,
                                                      NodeId to) {
  uint32_t sf = router().ShardOf(from);
  if (sf == ShardRouter::kInvalidShard) {
    return Status::NotFound("node " + std::to_string(from) +
                            " not owned by any shard");
  }
  uint32_t st = router().ShardOf(to);
  if (st != ShardRouter::kInvalidShard && st != sf) {
    // The hop crosses the coarse cut; the successor's record is still
    // local to `from`'s shard (its halo copy), so no second shard is
    // touched — this counter is the price a sharper partitioner would
    // lower, the coarse analogue of a split edge in the CRR.
    ++cut_crossings_;
    if (m_crossings_ != nullptr) m_crossings_->Inc();
  }
  return sessions_[sf]->GetASuccessor(from, to);
}

Result<std::vector<NodeRecord>> ShardedQuerySession::GetSuccessors(
    NodeId id) {
  uint32_t s = router().ShardOf(id);
  if (s == ShardRouter::kInvalidShard) {
    return Status::NotFound("node " + std::to_string(id) +
                            " not owned by any shard");
  }
  return sessions_[s]->GetSuccessors(id);
}

IoStats ShardedQuerySession::DataIoStats() const {
  IoStats sum;
  for (const auto& session : sessions_) {
    sum = SumStats(sum, session->DataIoStats());
  }
  return sum;
}

IoStats ShardedQuerySession::ShardIoStats(uint32_t s) const {
  return sessions_[s]->DataIoStats();
}

void ShardedQuerySession::ResetIoStats() {
  for (const auto& session : sessions_) session->ResetIoStats();
}

BufferPool* ShardedQuerySession::buffer_pool() {
  return sessions_[0]->buffer_pool();
}

std::vector<NodeId> ShardedQuerySession::LiveNodeIds() const {
  std::vector<NodeId> ids;
  ids.reserve(router().owner_map().size());
  for (const auto& kv : router().owner_map()) ids.push_back(kv.first);
  std::sort(ids.begin(), ids.end());
  return ids;
}

void ShardedQuerySession::SetRequestContext(RequestContext* ctx) {
  ctx_ = ctx;
  for (const auto& session : sessions_) session->SetRequestContext(ctx);
}

}  // namespace ccam
