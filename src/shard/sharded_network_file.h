#ifndef CCAM_SHARD_SHARDED_NETWORK_FILE_H_
#define CCAM_SHARD_SHARDED_NETWORK_FILE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/ccam.h"
#include "src/core/query_session.h"
#include "src/shard/shard_router.h"

namespace ccam {

class ShardedQuerySession;

/// One shard of a sharded network file: a plain CCAM file whose pages hold
/// the shard's owned nodes plus halo copies of every boundary neighbor.
/// Halo records are encoded from the same global network as the owner's
/// copy, so they are bit-identical — a query served from a halo copy
/// returns exactly what the owning shard would return.
///
/// Shard files are read-only after creation: mutating one copy of a
/// halo-replicated record would silently diverge the others, so every
/// mutation entry point returns NotSupported. Rebuild the shards from the
/// authoritative network instead.
class ShardFile : public Ccam {
 public:
  explicit ShardFile(const AccessMethodOptions& options)
      : Ccam(options, CcamCreateMode::kStatic) {}

  /// Materializes `pages` (owned + halo node sets) from the *global*
  /// network, so every stored record carries its complete adjacency.
  Status CreateShard(const Network& global,
                     const std::vector<std::vector<NodeId>>& pages) {
    return BuildFromAssignment(global, pages);
  }

  Status InsertNode(const NodeRecord&, ReorgPolicy) override {
    return Status::NotSupported("shard files are read-only (halo copies)");
  }
  Status DeleteNode(NodeId, ReorgPolicy) override {
    return Status::NotSupported("shard files are read-only (halo copies)");
  }
  Status InsertEdge(NodeId, NodeId, float, ReorgPolicy) override {
    return Status::NotSupported("shard files are read-only (halo copies)");
  }
  Status DeleteEdge(NodeId, NodeId, ReorgPolicy) override {
    return Status::NotSupported("shard files are read-only (halo copies)");
  }

  /// Halo records deliberately reference nodes owned by other shards, so
  /// the base class's every-endpoint-present symmetry check would reject
  /// every multi-shard file. The shard-local invariant is file-structural:
  /// every mapped record present, decodable, and indexed exactly once.
  /// Cross-shard closure (every boundary successor has a halo copy) is the
  /// ShardedNetworkFile's responsibility at build time.
  Status CheckGraphInvariants() override { return CheckFileInvariants(); }
};

/// Options of a sharded file: the per-shard access-method knobs plus the
/// shard count.
struct ShardedOptions {
  /// Number of shard files; must be a power of two (the coarse splitter is
  /// the same recursive bisection the page clustering uses). 1 collapses
  /// to a single plain CCAM file with bit-identical layout and accounting.
  uint32_t num_shards = 1;
  /// Applied to every shard file (page size, pool, partitioner, seed...).
  /// `hierarchy_overlay` must be off: a per-shard contraction hierarchy
  /// over a subgraph is not globally correct.
  AccessMethodOptions am;
};

/// A network split across N CCAM shard files, each with its own
/// DiskManager, BufferPool and (with durability on) WAL. The split reuses
/// the deterministic recursive-bisection partitioner one level up: shards
/// are the coarse cut, pages within each shard the fine cut, so the
/// cut-minimizing property that gives CCAM its CRR also keeps cross-shard
/// edges — and therefore cross-shard query traffic — low.
///
/// Each shard stores its owned nodes plus *halo* copies of every
/// cross-cut neighbor (successor or predecessor of an owned node that
/// lives in another shard). A query anchored at an owned node therefore
/// never needs a remote read to resolve one hop across the cut: the
/// neighbor's record is local, bit-identical to the owner's copy.
///
/// At num_shards == 1 the file *is* a plain CCAM file: same clustering
/// input, same seed, same page ids, same disk layout — the differential
/// oracle compares results and IoStats bit-for-bit against the unsharded
/// baseline.
class ShardedNetworkFile {
 public:
  explicit ShardedNetworkFile(const ShardedOptions& options);
  ~ShardedNetworkFile();

  /// Coarse-partitions `network` into num_shards owned sets, computes the
  /// halo of each, clusters each shard's node set into pages, and builds
  /// the shard files. Deterministic: the same network, options and shard
  /// count produce byte-identical shard files for any num_threads.
  Status Create(const Network& network);

  /// Writes each shard image to `path`.shard<k> and the owner-map
  /// manifest to `path`.shardmap.
  Status SaveImage(const std::string& path);

  /// Opens a previously saved sharded image set (manifest + shard
  /// images). The options must match the saved shard count.
  Status OpenImage(const std::string& path);

  uint32_t num_shards() const { return options_.num_shards; }
  NetworkFile* shard(uint32_t s) { return shards_[s].get(); }
  const ShardRouter& router() const { return router_; }

  /// Sum of the per-shard data-disk counters.
  IoStats DataIoStats() const;
  /// One shard's data-disk counters.
  IoStats ShardIoStats(uint32_t s) const;
  void ResetIoStats();

  /// Sum of the per-shard live data pages (halo copies included — they
  /// are real storage).
  size_t NumDataPages() const;

  /// Logical node -> composed page id (`local_page * num_shards + shard`),
  /// owned nodes only: halo copies are physical duplication, not logical
  /// placement. At 1 shard the composed id equals the local id, making
  /// the map bit-identical to the unsharded file's.
  const NodePageMap& PageMap() const { return page_of_; }

  /// Halo records stored by shard `s`, and their total.
  size_t NumHaloRecords(uint32_t s) const { return halo_counts_[s]; }
  size_t TotalHaloRecords() const;

  /// Directed edges of the source network whose endpoints live in
  /// different shards (the coarse analogue of 1 - CRR).
  uint64_t NumCutEdges() const { return cut_edges_; }

  /// Opens a read-only session routing every call to the owning shard's
  /// per-file session. One session per thread; any number of sessions may
  /// run concurrently.
  std::unique_ptr<ShardedQuerySession> OpenSession();

  /// Attaches `metrics` to every shard file (their disk./buffer_pool.*
  /// series aggregate across shards), the router ("shard.router.*"), and
  /// the facade's "shard.*" family. Null detaches.
  void SetMetrics(MetricsRegistry* metrics);
  MetricsRegistry* metrics() const { return metrics_; }

  /// Publishes point-in-time per-shard gauges: "shard.count",
  /// "shard.cut_edges", "shard.<k>.reads", "shard.<k>.pages",
  /// "shard.<k>.halo".
  void PublishShardMetrics();

 private:
  friend class ShardedQuerySession;

  /// Recursive-bisection coarse split of the whole network into
  /// num_shards owned sets (balanced record bytes, minimized cut), each
  /// ascending. Content-derived seeds: identical output for any thread
  /// count.
  Status CoarsePartition(const Network& network,
                         std::vector<std::vector<NodeId>>* owned) const;

  Status BuildShards(const Network& network,
                     const std::vector<std::vector<NodeId>>& owned);
  void RebuildComposedPageMap();
  void CountHalo();

  ShardedOptions options_;
  std::vector<std::unique_ptr<ShardFile>> shards_;
  ShardRouter router_;
  NodePageMap page_of_;
  std::vector<size_t> halo_counts_;
  uint64_t cut_edges_ = 0;
  MetricsRegistry* metrics_ = nullptr;
};

/// A read-only query stream over a ShardedNetworkFile, implementing the
/// AccessMethod interface so every existing query driver (route
/// evaluation, A*, traversals, aggregation, the spatial engine) runs
/// against a sharded file unchanged. Each call routes to the owning
/// shard's QuerySession; per-shard accesses accumulate in that session
/// and DataIoStats() returns their sum, so the sharded accounting sums
/// exactly to the unsharded baseline on a 1-shard configuration.
///
/// Concurrency contract: one sharded session per thread (it wraps one
/// per-shard QuerySession each, which bind to the first reading thread).
/// Sessions never run concurrently with mutations — shard files are
/// read-only anyway.
class ShardedQuerySession : public AccessMethod {
 public:
  explicit ShardedQuerySession(ShardedNetworkFile* file);

  std::string Name() const override;

  Status Create(const Network&) override {
    return Status::NotSupported("read-only sharded session");
  }

  Result<NodeRecord> Find(NodeId id) override;
  Result<NodeRecord> GetASuccessor(NodeId from, NodeId to) override;
  Result<std::vector<NodeRecord>> GetSuccessors(NodeId id) override;

  Status InsertNode(const NodeRecord&, ReorgPolicy) override {
    return Status::NotSupported("read-only sharded session");
  }
  Status DeleteNode(NodeId, ReorgPolicy) override {
    return Status::NotSupported("read-only sharded session");
  }
  Status InsertEdge(NodeId, NodeId, float, ReorgPolicy) override {
    return Status::NotSupported("read-only sharded session");
  }
  Status DeleteEdge(NodeId, NodeId, ReorgPolicy) override {
    return Status::NotSupported("read-only sharded session");
  }

  /// Sum of this stream's per-shard session counters.
  IoStats DataIoStats() const override;
  /// This stream's accesses against shard `s` alone.
  IoStats ShardIoStats(uint32_t s) const;
  void ResetIoStats() override;

  const NodePageMap& PageMap() const override { return file_->PageMap(); }
  /// Shard 0's pool (interface requirement; per-shard pools are reached
  /// through shard_session(s)->buffer_pool()).
  BufferPool* buffer_pool() override;
  bool LastOpChangedStructure() const override { return false; }
  size_t NumDataPages() const override { return file_->NumDataPages(); }

  /// Owned nodes only (ascending): halo copies must not be visible as
  /// live nodes or spatial builds and component sweeps would double-count
  /// boundary records.
  std::vector<NodeId> LiveNodeIds() const override;
  size_t NumLiveNodes() const override {
    return file_->router().NumOwnedNodes();
  }

  MetricsRegistry* metrics() const override { return file_->metrics(); }

  /// Attaches the lifecycle context to every per-shard session.
  void SetRequestContext(RequestContext* ctx);
  RequestContext* request_context() const override { return ctx_; }

  /// The underlying per-shard session (the single-shard fast path
  /// dispatches existing per-file operators straight at one of these).
  QuerySession* shard_session(uint32_t s) { return sessions_[s].get(); }
  const ShardRouter& router() const { return file_->router(); }
  ShardedNetworkFile* file() const { return file_; }

  /// Edges this stream traversed whose endpoints live in different shards
  /// (each also bumps the "shard.cut_crossings" counter when metrics are
  /// attached).
  uint64_t CutCrossings() const { return cut_crossings_; }

 private:
  ShardedNetworkFile* file_;
  std::vector<std::unique_ptr<QuerySession>> sessions_;
  RequestContext* ctx_ = nullptr;
  uint64_t cut_crossings_ = 0;
  MetricCounter* m_crossings_ = nullptr;
};

}  // namespace ccam

#endif  // CCAM_SHARD_SHARDED_NETWORK_FILE_H_
