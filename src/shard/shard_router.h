#ifndef CCAM_SHARD_SHARD_ROUTER_H_
#define CCAM_SHARD_SHARD_ROUTER_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/metrics.h"
#include "src/graph/network.h"

namespace ccam {

/// The shard set one query must touch, ascending and deduplicated. A
/// single-shard plan lets the caller dispatch straight to that shard's
/// per-file operators (the fast path); a multi-shard plan means partial
/// results must be stitched at halo nodes.
struct ShardPlan {
  std::vector<uint32_t> shards;
  bool single() const { return shards.size() == 1; }
  bool empty() const { return shards.empty(); }
};

/// Maps node-ids to their owning shard and query node-sets to the minimal
/// shard set they touch. The owner map is the coarse recursive-bisection
/// assignment computed at Create() time; routing is a pure lookup, so two
/// routers built from the same network and shard count answer identically
/// regardless of thread count or call order (see Fingerprint()).
///
/// Thread safety: the owner map is immutable after construction, so every
/// const method is safe from any thread. The optional metrics (fan-out
/// histogram, single/multi counters) are lock-free.
class ShardRouter {
 public:
  static constexpr uint32_t kInvalidShard = UINT32_MAX;

  ShardRouter() = default;
  ShardRouter(uint32_t num_shards, std::unordered_map<NodeId, uint32_t> owner)
      : num_shards_(num_shards), owner_(std::move(owner)) {}

  uint32_t num_shards() const { return num_shards_; }
  size_t NumOwnedNodes() const { return owner_.size(); }

  /// Owning shard of `id`, or kInvalidShard for an unknown node.
  uint32_t ShardOf(NodeId id) const {
    auto it = owner_.find(id);
    return it == owner_.end() ? kInvalidShard : it->second;
  }

  /// Minimal shard set touched by a query over `ids` (a route's node
  /// sequence, an aggregate unit's endpoints, a window result). Unknown
  /// nodes are skipped — the per-shard operator reports them as NotFound.
  /// Records the plan in the router metrics when attached.
  ShardPlan PlanFor(const std::vector<NodeId>& ids) const;

  /// Owned node-ids of shard `s`, ascending (deterministic order).
  std::vector<NodeId> OwnedBy(uint32_t s) const;

  const std::unordered_map<NodeId, uint32_t>& owner_map() const {
    return owner_;
  }

  /// Order-independent hash of the (node, shard) assignment — two routers
  /// with equal fingerprints route every query identically. Determinism
  /// tests compare fingerprints across runs and thread counts.
  uint64_t Fingerprint() const;

  /// Attaches "shard.router.fanout" (histogram of shards per plan) and
  /// "shard.router.{single,multi}" counters. Null detaches.
  void SetMetrics(MetricsRegistry* metrics);

 private:
  uint32_t num_shards_ = 0;
  std::unordered_map<NodeId, uint32_t> owner_;

  mutable MetricHistogram* h_fanout_ = nullptr;
  mutable MetricCounter* m_single_ = nullptr;
  mutable MetricCounter* m_multi_ = nullptr;
};

}  // namespace ccam

#endif  // CCAM_SHARD_SHARD_ROUTER_H_
