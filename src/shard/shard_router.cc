#include "src/shard/shard_router.h"

#include <algorithm>

namespace ccam {
namespace {

/// splitmix64 finalizer — the same mixing the clustering pipeline uses for
/// content-derived seeds, duplicated here to keep the layers decoupled.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ShardPlan ShardRouter::PlanFor(const std::vector<NodeId>& ids) const {
  ShardPlan plan;
  for (NodeId id : ids) {
    uint32_t s = ShardOf(id);
    if (s == kInvalidShard) continue;
    if (std::find(plan.shards.begin(), plan.shards.end(), s) ==
        plan.shards.end()) {
      plan.shards.push_back(s);
    }
  }
  std::sort(plan.shards.begin(), plan.shards.end());
  if (h_fanout_ != nullptr) h_fanout_->Record(plan.shards.size());
  if (plan.single()) {
    if (m_single_ != nullptr) m_single_->Inc();
  } else if (plan.shards.size() > 1) {
    if (m_multi_ != nullptr) m_multi_->Inc();
  }
  return plan;
}

std::vector<NodeId> ShardRouter::OwnedBy(uint32_t s) const {
  std::vector<NodeId> ids;
  for (const auto& kv : owner_) {
    if (kv.second == s) ids.push_back(kv.first);
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

uint64_t ShardRouter::Fingerprint() const {
  // Commutative combine (sum of per-entry hashes) so hash-map iteration
  // order cannot leak into the value.
  uint64_t h = Mix64(num_shards_) + Mix64(owner_.size());
  for (const auto& kv : owner_) {
    h += Mix64((static_cast<uint64_t>(kv.first) << 8) ^ kv.second);
  }
  return h;
}

void ShardRouter::SetMetrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    h_fanout_ = nullptr;
    m_single_ = nullptr;
    m_multi_ = nullptr;
    return;
  }
  h_fanout_ = metrics->GetHistogram("shard.router.fanout");
  m_single_ = metrics->GetCounter("shard.router.single");
  m_multi_ = metrics->GetCounter("shard.router.multi");
}

}  // namespace ccam
