#include "src/shard/shard_query.h"

#include <unordered_set>

namespace ccam {

Result<ShardedRouteResult> EvaluateRouteSharded(ShardedQuerySession* session,
                                                const Route& route) {
  ShardedRouteResult result;
  if (route.nodes.empty()) return result;
  const ShardRouter& router = session->router();
  ShardPlan plan = router.PlanFor(route.nodes);
  if (plan.empty()) {
    return Status::NotFound("route uses no node owned by any shard");
  }
  result.fanout = plan.shards.size();

  if (plan.single()) {
    // Fast path: the whole route lives in one shard; run the existing
    // per-file operator on that shard's session directly.
    CCAM_ASSIGN_OR_RETURN(
        result.eval,
        EvaluateRoute(session->shard_session(plan.shards[0]), route));
    return result;
  }

  // Stitch: walk maximal same-owner runs. Run k spans [start..i] where
  // node i is the first whose owner differs from the run's — included so
  // the crossing edge resolves against the halo copy; run k+1 then starts
  // at i in i's own shard.
  size_t start = 0;
  uint32_t owner = router.ShardOf(route.nodes[0]);
  if (owner == ShardRouter::kInvalidShard) {
    return Status::NotFound("route origin not owned by any shard");
  }
  for (size_t i = 1; i <= route.nodes.size(); ++i) {
    uint32_t next_owner =
        i < route.nodes.size() ? router.ShardOf(route.nodes[i]) : owner;
    if (next_owner == ShardRouter::kInvalidShard) {
      return Status::NotFound("route node " +
                              std::to_string(route.nodes[i]) +
                              " not owned by any shard");
    }
    if (i < route.nodes.size() && next_owner == owner) continue;

    Route segment;
    size_t end = i < route.nodes.size() ? i + 1 : i;  // halo-inclusive
    segment.nodes.assign(route.nodes.begin() + start,
                         route.nodes.begin() + end);
    RouteEvalResult part;
    CCAM_ASSIGN_OR_RETURN(
        part, EvaluateRoute(session->shard_session(owner), segment));
    result.eval.total_cost += part.total_cost;
    result.eval.num_edges += part.num_edges;
    result.eval.page_accesses += part.page_accesses;

    if (i < route.nodes.size()) {
      ++result.cut_crossings;
      start = i;
      owner = next_owner;
    }
  }
  return result;
}

Result<RouteUnitAggregate> AggregateRouteUnitSharded(
    ShardedQuerySession* session, const RouteUnit& unit, size_t* fanout) {
  std::vector<NodeId> endpoints;
  endpoints.reserve(unit.edges.size() * 2);
  for (const auto& edge : unit.edges) {
    endpoints.push_back(edge.first);
    endpoints.push_back(edge.second);
  }
  ShardPlan plan = session->router().PlanFor(endpoints);
  if (fanout != nullptr) *fanout = plan.shards.size();
  if (plan.single()) {
    return AggregateRouteUnit(session->shard_session(plan.shards[0]), unit);
  }
  // Cross-shard unit: the facade session resolves every endpoint from its
  // owning shard, with halo copies keeping each hop local.
  return AggregateRouteUnit(session, unit);
}

}  // namespace ccam
