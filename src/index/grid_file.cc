#include "src/index/grid_file.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/coding.h"
#include "src/storage/page.h"

namespace ccam {

namespace {

constexpr size_t kEntryBytes = 8 + 8 + 8;

std::string EncodeEntry(double x, double y, uint64_t value) {
  std::string out;
  PutDouble(&out, x);
  PutDouble(&out, y);
  PutFixed64(&out, value);
  return out;
}

/// Grid entries are fixed-width; a record of any other length means the
/// slot directory or the record bytes are damaged, and decoding it anyway
/// would yield silent garbage coordinates. Surface that as Corruption.
Status DecodeEntry(std::string_view bytes, GridFile::Entry* e) {
  if (bytes.size() != kEntryBytes) {
    return Status::Corruption("grid entry of " + std::to_string(bytes.size()) +
                              " bytes (expected " +
                              std::to_string(kEntryBytes) + ")");
  }
  Decoder dec(bytes.data(), bytes.size());
  e->x = dec.GetDouble();
  e->y = dec.GetDouble();
  e->value = dec.GetFixed64();
  if (!dec.Ok()) return Status::Corruption("truncated grid entry");
  return Status::OK();
}

}  // namespace

GridFile::GridFile(DiskManager* disk, BufferPool* pool)
    : disk_(disk), pool_(pool) {
  x_scale_.push_back(-std::numeric_limits<double>::infinity());
  y_scale_.push_back(-std::numeric_limits<double>::infinity());
  PageId bucket;
  char* data = nullptr;
  Status s = pool_->NewPage(&bucket, &data);
  (void)s;
  SlottedPage::Initialize(data, disk_->page_size());
  (void)pool_->UnpinPage(bucket, true);
  dir_.push_back(bucket);
  buckets_[bucket] = Region{0, 1, 0, 1};
}

int GridFile::ColumnOf(double x) const {
  // Last column whose lower boundary is <= x.
  auto it = std::upper_bound(x_scale_.begin(), x_scale_.end(), x);
  return static_cast<int>(it - x_scale_.begin()) - 1;
}

int GridFile::RowOf(double y) const {
  auto it = std::upper_bound(y_scale_.begin(), y_scale_.end(), y);
  return static_cast<int>(it - y_scale_.begin()) - 1;
}

PageId GridFile::BucketOf(double x, double y) const {
  return DirAt(ColumnOf(x), RowOf(y));
}

Status GridFile::LoadEntries(PageId bucket, std::vector<Entry>* out) const {
  auto res = pool_->FetchPage(bucket);
  if (!res.ok()) return res.status();
  SlottedPage page(*res, disk_->page_size());
  for (int slot : page.LiveSlots()) {
    Entry e;
    Status s = DecodeEntry(page.GetRecord(slot), &e);
    if (!s.ok()) {
      (void)pool_->UnpinPage(bucket, false);
      return s;
    }
    out->push_back(e);
  }
  (void)pool_->UnpinPage(bucket, false);
  return Status::OK();
}

Status GridFile::StoreEntries(PageId bucket, const std::vector<Entry>& entries) {
  auto res = pool_->FetchPage(bucket);
  if (!res.ok()) return res.status();
  SlottedPage page(*res, disk_->page_size());
  SlottedPage::Initialize(*res, disk_->page_size());
  for (const Entry& e : entries) {
    if (page.InsertRecord(EncodeEntry(e.x, e.y, e.value)) < 0) {
      (void)pool_->UnpinPage(bucket, true);
      return Status::NoSpace("bucket overflow during redistribution");
    }
  }
  (void)pool_->UnpinPage(bucket, true);
  return Status::OK();
}

Status GridFile::Insert(double x, double y, uint64_t value) {
  if (!std::isfinite(x) || !std::isfinite(y)) {
    return Status::InvalidArgument("non-finite coordinate");
  }
  for (int attempt = 0; attempt < 64; ++attempt) {
    PageId bucket = BucketOf(x, y);
    auto res = pool_->FetchPage(bucket);
    if (!res.ok()) return res.status();
    SlottedPage page(*res, disk_->page_size());
    // Reject exact duplicates.
    for (int slot : page.LiveSlots()) {
      Entry e;
      Status ds = DecodeEntry(page.GetRecord(slot), &e);
      if (!ds.ok()) {
        (void)pool_->UnpinPage(bucket, false);
        return ds;
      }
      if (e.x == x && e.y == y && e.value == value) {
        (void)pool_->UnpinPage(bucket, false);
        return Status::AlreadyExists("duplicate grid entry");
      }
    }
    int slot = page.InsertRecord(EncodeEntry(x, y, value));
    (void)pool_->UnpinPage(bucket, slot >= 0);
    if (slot >= 0) {
      ++num_entries_;
      return Status::OK();
    }
    CCAM_RETURN_NOT_OK(SplitBucket(bucket));
  }
  return Status::NoSpace("grid bucket cannot be split further");
}

void GridFile::RefineScaleX(int col, double split_at) {
  // Column `col` splits into col (left) and col+1 (right of split_at).
  x_scale_.insert(x_scale_.begin() + col + 1, split_at);
  int old_cols = NumCols() - 1;
  int rows = NumRows();
  std::vector<PageId> new_dir(static_cast<size_t>(NumCols()) * rows);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < NumCols(); ++c) {
      int old_c = c <= col ? c : c - 1;
      new_dir[r * NumCols() + c] = dir_[r * old_cols + old_c];
    }
  }
  dir_ = std::move(new_dir);
  for (auto& [id, region] : buckets_) {
    if (region.x0 > col) ++region.x0;
    if (region.x1 > col) ++region.x1;
  }
}

void GridFile::RefineScaleY(int row, double split_at) {
  y_scale_.insert(y_scale_.begin() + row + 1, split_at);
  int cols = NumCols();
  std::vector<PageId> new_dir(static_cast<size_t>(cols) * NumRows());
  for (int r = 0; r < NumRows(); ++r) {
    int old_r = r <= row ? r : r - 1;
    for (int c = 0; c < cols; ++c) {
      new_dir[r * cols + c] = dir_[old_r * cols + c];
    }
  }
  dir_ = std::move(new_dir);
  for (auto& [id, region] : buckets_) {
    if (region.y0 > row) ++region.y0;
    if (region.y1 > row) ++region.y1;
  }
}

Status GridFile::SplitBucket(PageId bucket) {
  Region region = buckets_.at(bucket);
  std::vector<Entry> entries;
  CCAM_RETURN_NOT_OK(LoadEntries(bucket, &entries));

  bool spans_x = region.x1 - region.x0 > 1;
  bool spans_y = region.y1 - region.y0 > 1;
  if (!spans_x && !spans_y) {
    // Single cell: refine a linear scale through the median coordinate.
    auto median_split = [&](bool use_x) -> bool {
      std::vector<double> coords;
      coords.reserve(entries.size());
      for (const Entry& e : entries) coords.push_back(use_x ? e.x : e.y);
      std::sort(coords.begin(), coords.end());
      double lo = coords.front(), hi = coords.back();
      if (lo == hi) return false;  // cannot separate along this dimension
      double mid = coords[coords.size() / 2];
      if (mid == lo) {
        // Choose the smallest coordinate strictly above lo instead.
        auto it = std::upper_bound(coords.begin(), coords.end(), lo);
        mid = *it;
      }
      if (use_x) {
        RefineScaleX(region.x0, mid);
      } else {
        RefineScaleY(region.y0, mid);
      }
      return true;
    };
    bool refined = split_x_next_ ? median_split(true) : median_split(false);
    if (!refined) {
      refined = split_x_next_ ? median_split(false) : median_split(true);
      if (!refined) {
        return Status::NoSpace("all bucket entries at one point");
      }
    } else {
      split_x_next_ = !split_x_next_;
    }
    // The region now spans two cells in the refined dimension.
    region = buckets_.at(bucket);
    spans_x = region.x1 - region.x0 > 1;
    spans_y = region.y1 - region.y0 > 1;
  }

  // Split the (multi-cell) region in half; prefer the wider dimension.
  Region left = region, right = region;
  if ((region.x1 - region.x0) >= (region.y1 - region.y0) && spans_x) {
    int mid = (region.x0 + region.x1) / 2;
    left.x1 = mid;
    right.x0 = mid;
  } else {
    int mid = (region.y0 + region.y1) / 2;
    left.y1 = mid;
    right.y0 = mid;
  }

  PageId new_bucket;
  char* data = nullptr;
  CCAM_RETURN_NOT_OK(pool_->NewPage(&new_bucket, &data));
  SlottedPage::Initialize(data, disk_->page_size());
  (void)pool_->UnpinPage(new_bucket, true);

  buckets_[bucket] = left;
  buckets_[new_bucket] = right;
  for (int r = right.y0; r < right.y1; ++r) {
    for (int c = right.x0; c < right.x1; ++c) {
      SetDirAt(c, r, new_bucket);
    }
  }

  // Redistribute entries by directory lookup.
  std::vector<Entry> stay, move;
  for (const Entry& e : entries) {
    int c = ColumnOf(e.x), r = RowOf(e.y);
    if (c >= right.x0 && c < right.x1 && r >= right.y0 && r < right.y1) {
      move.push_back(e);
    } else {
      stay.push_back(e);
    }
  }
  CCAM_RETURN_NOT_OK(StoreEntries(bucket, stay));
  CCAM_RETURN_NOT_OK(StoreEntries(new_bucket, move));
  return Status::OK();
}

Status GridFile::Delete(double x, double y, uint64_t value) {
  PageId bucket = BucketOf(x, y);
  auto res = pool_->FetchPage(bucket);
  if (!res.ok()) return res.status();
  SlottedPage page(*res, disk_->page_size());
  for (int slot : page.LiveSlots()) {
    Entry e;
    Status ds = DecodeEntry(page.GetRecord(slot), &e);
    if (!ds.ok()) {
      (void)pool_->UnpinPage(bucket, false);
      return ds;
    }
    if (e.x == x && e.y == y && e.value == value) {
      Status s = page.DeleteRecord(slot);
      (void)pool_->UnpinPage(bucket, true);
      if (s.ok()) --num_entries_;
      return s;
    }
  }
  (void)pool_->UnpinPage(bucket, false);
  return Status::NotFound("grid entry not found");
}

Result<std::vector<uint64_t>> GridFile::Search(double x, double y) const {
  PageId bucket = BucketOf(x, y);
  auto res = pool_->FetchPage(bucket);
  if (!res.ok()) return res.status();
  SlottedPage page(*res, disk_->page_size());
  std::vector<uint64_t> out;
  for (int slot : page.LiveSlots()) {
    Entry e;
    Status ds = DecodeEntry(page.GetRecord(slot), &e);
    if (!ds.ok()) {
      (void)pool_->UnpinPage(bucket, false);
      return ds;
    }
    if (e.x == x && e.y == y) out.push_back(e.value);
  }
  (void)pool_->UnpinPage(bucket, false);
  return out;
}

Result<std::vector<GridFile::Entry>> GridFile::RangeQuery(double xmin,
                                                          double ymin,
                                                          double xmax,
                                                          double ymax) const {
  if (xmin > xmax || ymin > ymax) {
    return Status::InvalidArgument("inverted query rectangle");
  }
  int c0 = ColumnOf(xmin), c1 = ColumnOf(xmax);
  int r0 = RowOf(ymin), r1 = RowOf(ymax);
  std::vector<PageId> seen;
  std::vector<Entry> out;
  for (int r = r0; r <= r1; ++r) {
    for (int c = c0; c <= c1; ++c) {
      PageId bucket = DirAt(c, r);
      if (std::find(seen.begin(), seen.end(), bucket) != seen.end()) {
        continue;
      }
      seen.push_back(bucket);
      std::vector<Entry> entries;
      CCAM_RETURN_NOT_OK(LoadEntries(bucket, &entries));
      for (const Entry& e : entries) {
        if (e.x >= xmin && e.x <= xmax && e.y >= ymin && e.y <= ymax) {
          out.push_back(e);
        }
      }
    }
  }
  return out;
}

Status GridFile::CheckInvariants() const {
  // Bucket regions must tile the directory exactly.
  for (int r = 0; r < NumRows(); ++r) {
    for (int c = 0; c < NumCols(); ++c) {
      PageId b = DirAt(c, r);
      auto it = buckets_.find(b);
      if (it == buckets_.end()) {
        return Status::Corruption("directory points at unknown bucket");
      }
      const Region& region = it->second;
      if (c < region.x0 || c >= region.x1 || r < region.y0 ||
          r >= region.y1) {
        return Status::Corruption("cell outside its bucket region");
      }
    }
  }
  // Every stored entry must live in the bucket its cell points to.
  size_t counted = 0;
  for (const auto& [bucket, region] : buckets_) {
    std::vector<Entry> entries;
    CCAM_RETURN_NOT_OK(LoadEntries(bucket, &entries));
    for (const Entry& e : entries) {
      if (BucketOf(e.x, e.y) != bucket) {
        return Status::Corruption("entry misplaced across buckets");
      }
    }
    counted += entries.size();
  }
  if (counted != num_entries_) {
    return Status::Corruption("entry count mismatch");
  }
  return Status::OK();
}

}  // namespace ccam
