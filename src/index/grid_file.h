#ifndef CCAM_INDEX_GRID_FILE_H_
#define CCAM_INDEX_GRID_FILE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/disk_manager.h"

namespace ccam {

/// Grid File (Nievergelt, Hinterberger & Sevcik): a symmetric multi-key
/// point index. Space is carved by two orthogonal linear scales into a
/// directory of cells; each cell points to a data bucket (disk page), and
/// several cells may share one bucket. Bucket overflow splits the bucket
/// region — refining a linear scale only when the region is a single cell.
///
/// This is one of the paper's baseline access methods ("Grid File" in
/// Figures 5-6 / Table 5) and an alternative secondary index for CCAM. The
/// directory and scales are kept in memory (the paper's cost model treats
/// index structures as buffered); buckets live on disk pages.
///
/// Entries are (x, y, value) with value an opaque uint64. Multiple entries
/// may share coordinates; (x, y, value) triples are unique.
class GridFile {
 public:
  /// Buckets are allocated from `disk` through `pool`; both must outlive
  /// the grid file.
  GridFile(DiskManager* disk, BufferPool* pool);

  GridFile(const GridFile&) = delete;
  GridFile& operator=(const GridFile&) = delete;

  Status Insert(double x, double y, uint64_t value);

  /// Removes the exact (x, y, value) entry.
  Status Delete(double x, double y, uint64_t value);

  /// All values stored at exactly (x, y).
  Result<std::vector<uint64_t>> Search(double x, double y) const;

  struct Entry {
    double x;
    double y;
    uint64_t value;
  };

  /// All entries with xmin <= x <= xmax and ymin <= y <= ymax.
  Result<std::vector<Entry>> RangeQuery(double xmin, double ymin, double xmax,
                                        double ymax) const;

  /// The bucket page holding (x, y) — used by the Grid-File access method
  /// to identify the data page of a node.
  PageId BucketOf(double x, double y) const;

  size_t NumEntries() const { return num_entries_; }
  size_t NumBuckets() const { return buckets_.size(); }
  size_t DirectoryCells() const {
    return x_scale_.size() * y_scale_.size();
  }

  /// Verifies that every entry is reachable through its directory cell and
  /// that bucket regions tile the directory. For tests.
  Status CheckInvariants() const;

 private:
  /// Rectangular block of directory cells served by one bucket.
  struct Region {
    int x0, x1;  // [x0, x1) columns
    int y0, y1;  // [y0, y1) rows
  };

  int ColumnOf(double x) const;
  int RowOf(double y) const;
  PageId DirAt(int col, int row) const { return dir_[row * NumCols() + col]; }
  void SetDirAt(int col, int row, PageId b) {
    dir_[row * NumCols() + col] = b;
  }
  int NumCols() const { return static_cast<int>(x_scale_.size()); }
  int NumRows() const { return static_cast<int>(y_scale_.size()); }

  /// Splits `bucket` (full) so the pending insert can proceed. May refine a
  /// linear scale. Fails with NoSpace when every entry in the bucket is at
  /// one identical point.
  Status SplitBucket(PageId bucket);

  /// Inserts a new split value into a scale, widening the directory.
  void RefineScaleX(int col, double split_at);
  void RefineScaleY(int row, double split_at);

  Status LoadEntries(PageId bucket, std::vector<Entry>* out) const;
  Status StoreEntries(PageId bucket, const std::vector<Entry>& entries);

  DiskManager* disk_;
  BufferPool* pool_;
  /// x_scale_[i] is the *lower* boundary of column i; x_scale_[0] is
  /// -infinity conceptually (stored as lowest double).
  std::vector<double> x_scale_;
  std::vector<double> y_scale_;
  std::vector<PageId> dir_;  // row-major NumRows x NumCols
  std::unordered_map<PageId, Region> buckets_;
  size_t num_entries_ = 0;
  bool split_x_next_ = true;  // alternate refinement dimension
};

}  // namespace ccam

#endif  // CCAM_INDEX_GRID_FILE_H_
