#ifndef CCAM_INDEX_ZORDER_H_
#define CCAM_INDEX_ZORDER_H_

#include <cstdint>
#include <vector>

namespace ccam {

/// Z-order (Morton) curve utilities. The secondary index of CCAM is a B+
/// tree ordered by the Z-order of node coordinates (Orenstein & Merrett);
/// the generators also use Z-order to assign node-ids spatially.

/// Interleaves the bits of (x, y) into a 64-bit Morton code; bit i of x maps
/// to bit 2i, bit i of y to bit 2i+1.
uint64_t ZOrderEncode(uint32_t x, uint32_t y);

/// Inverse of ZOrderEncode.
void ZOrderDecode(uint64_t code, uint32_t* x, uint32_t* y);

/// Quantizes a point in [min, max]^2 onto a 2^16 x 2^16 grid and encodes it.
/// Values outside the range are clamped.
uint64_t ZOrderFromPoint(double x, double y, double min_coord,
                         double max_coord);

/// BIGMIN for Z-order range queries (Tropf & Herzog): given a query
/// rectangle [min_code, max_code] (Morton codes of its low/high corners) and
/// a code `current` that lies inside the code interval but outside the
/// rectangle, returns the smallest code >= current that is inside the
/// rectangle. Enables skipping dead Z-curve segments during range scans.
uint64_t ZOrderBigMin(uint64_t current, uint64_t min_code, uint64_t max_code);

/// True if the point encoded by `code` lies in the rectangle spanned by the
/// points encoded by `min_code` and `max_code` (component-wise).
bool ZOrderInRect(uint64_t code, uint64_t min_code, uint64_t max_code);

}  // namespace ccam

#endif  // CCAM_INDEX_ZORDER_H_
