#include "src/index/bptree.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "src/common/coding.h"

namespace ccam {

namespace {

// Node layout offsets (see header comment in bptree.h).
constexpr size_t kTypeOffset = 0;
constexpr size_t kCountOffset = 2;
constexpr size_t kPtrOffset = 4;      // next_leaf (leaf) / child0 (internal)
constexpr size_t kEntriesOffset = 8;
constexpr size_t kLeafEntrySize = 16;
constexpr size_t kInternalEntrySize = 12;

bool IsLeaf(const char* node) { return node[kTypeOffset] == 0; }

void SetLeaf(char* node, bool leaf) {
  node[kTypeOffset] = leaf ? 0 : 1;
  node[1] = 0;
}

int Count(const char* node) { return DecodeFixed16(node + kCountOffset); }

void SetCount(char* node, int count) {
  EncodeFixed16(node + kCountOffset, static_cast<uint16_t>(count));
}

// --- leaf accessors -------------------------------------------------------

PageId NextLeaf(const char* node) { return DecodeFixed32(node + kPtrOffset); }

void SetNextLeaf(char* node, PageId id) {
  EncodeFixed32(node + kPtrOffset, id);
}

uint64_t LeafKey(const char* node, int i) {
  return DecodeFixed64(node + kEntriesOffset + kLeafEntrySize * i);
}

uint64_t LeafValue(const char* node, int i) {
  return DecodeFixed64(node + kEntriesOffset + kLeafEntrySize * i + 8);
}

void SetLeafEntry(char* node, int i, uint64_t key, uint64_t value) {
  EncodeFixed64(node + kEntriesOffset + kLeafEntrySize * i, key);
  EncodeFixed64(node + kEntriesOffset + kLeafEntrySize * i + 8, value);
}

void LeafShift(char* node, int from, int to, int n) {
  std::memmove(node + kEntriesOffset + kLeafEntrySize * to,
               node + kEntriesOffset + kLeafEntrySize * from,
               kLeafEntrySize * n);
}

/// First position whose key is >= `key`.
int LeafLowerBound(const char* node, uint64_t key) {
  int lo = 0, hi = Count(node);
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (LeafKey(node, mid) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

// --- internal accessors ---------------------------------------------------

uint64_t InternalKey(const char* node, int i) {
  return DecodeFixed64(node + kEntriesOffset + kInternalEntrySize * i);
}

PageId InternalChild(const char* node, int i) {
  if (i == 0) return DecodeFixed32(node + kPtrOffset);
  return DecodeFixed32(node + kEntriesOffset +
                       kInternalEntrySize * (i - 1) + 8);
}

void SetInternalKey(char* node, int i, uint64_t key) {
  EncodeFixed64(node + kEntriesOffset + kInternalEntrySize * i, key);
}

void SetInternalChild(char* node, int i, PageId child) {
  if (i == 0) {
    EncodeFixed32(node + kPtrOffset, child);
  } else {
    EncodeFixed32(node + kEntriesOffset + kInternalEntrySize * (i - 1) + 8,
                  child);
  }
}

void InternalShift(char* node, int from, int to, int n) {
  std::memmove(node + kEntriesOffset + kInternalEntrySize * to,
               node + kEntriesOffset + kInternalEntrySize * from,
               kInternalEntrySize * n);
}

/// Child index covering `key`: the number of separator keys <= key.
int ChildIndexFor(const char* node, uint64_t key) {
  int lo = 0, hi = Count(node);
  while (lo < hi) {
    int mid = (lo + hi) / 2;
    if (InternalKey(node, mid) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

size_t BPlusTree::LeafCapacity() const {
  return (disk_->page_size() - kEntriesOffset) / kLeafEntrySize;
}

size_t BPlusTree::InternalCapacity() const {
  return (disk_->page_size() - kEntriesOffset) / kInternalEntrySize;
}

Status BPlusTree::ValidateNode(const char* node, PageId page) const {
  uint8_t type = static_cast<uint8_t>(node[kTypeOffset]);
  if (type > 1) {
    return Status::Corruption("b+tree page " + std::to_string(page) +
                              ": invalid node type " + std::to_string(type));
  }
  size_t cap = (type == 0) ? LeafCapacity() : InternalCapacity();
  size_t count = static_cast<size_t>(Count(node));
  if (count > cap) {
    return Status::Corruption("b+tree page " + std::to_string(page) +
                              ": entry count " + std::to_string(count) +
                              " exceeds capacity " + std::to_string(cap));
  }
  return Status::OK();
}

BPlusTree::BPlusTree(DiskManager* disk, BufferPool* pool)
    : disk_(disk), pool_(pool) {
  assert(LeafCapacity() >= 4 && InternalCapacity() >= 4);
  char* data = nullptr;
  Status s = pool_->NewPage(&root_, &data);
  assert(s.ok());
  (void)s;
  SetLeaf(data, true);
  SetCount(data, 0);
  SetNextLeaf(data, kInvalidPageId);
  (void)pool_->UnpinPage(root_, true);
}

Result<PageId> BPlusTree::FindLeaf(uint64_t key) const {
  PageId page = root_;
  // A well-formed tree reaches a leaf in exactly height_ fetches; the bound
  // turns a corrupt child-pointer cycle into Corruption, not a hang.
  for (int depth = 0; depth < height_; ++depth) {
    auto res = pool_->FetchPage(page);
    if (!res.ok()) return res.status();
    char* data = *res;
    Status valid = ValidateNode(data, page);
    if (!valid.ok()) {
      (void)pool_->UnpinPage(page, false);
      return valid;
    }
    if (IsLeaf(data)) {
      (void)pool_->UnpinPage(page, false);
      return page;
    }
    PageId next = InternalChild(data, ChildIndexFor(data, key));
    (void)pool_->UnpinPage(page, false);
    page = next;
  }
  return Status::Corruption("b+tree descent exceeded height " +
                            std::to_string(height_) +
                            " without reaching a leaf");
}

Result<uint64_t> BPlusTree::Find(uint64_t key) const {
  PageId leaf;
  {
    auto res = FindLeaf(key);
    if (!res.ok()) return res.status();
    leaf = *res;
  }
  auto res = pool_->FetchPage(leaf);
  if (!res.ok()) return res.status();
  char* data = *res;
  Status valid = ValidateNode(data, leaf);
  if (!valid.ok()) {
    (void)pool_->UnpinPage(leaf, false);
    return valid;
  }
  int pos = LeafLowerBound(data, key);
  bool found = pos < Count(data) && LeafKey(data, pos) == key;
  uint64_t value = found ? LeafValue(data, pos) : 0;
  (void)pool_->UnpinPage(leaf, false);
  if (!found) return Status::NotFound("key " + std::to_string(key));
  return value;
}

Status BPlusTree::InsertRecursive(PageId page, uint64_t key, uint64_t value,
                                  bool upsert, SplitResult* split) {
  auto res = pool_->FetchPage(page);
  if (!res.ok()) return res.status();
  char* data = *res;
  Status valid = ValidateNode(data, page);
  if (!valid.ok()) {
    (void)pool_->UnpinPage(page, false);
    return valid;
  }

  if (IsLeaf(data)) {
    int count = Count(data);
    int pos = LeafLowerBound(data, key);
    if (pos < count && LeafKey(data, pos) == key) {
      Status s;
      if (upsert) {
        SetLeafEntry(data, pos, key, LeafValue(data, pos));
        SetLeafEntry(data, pos, key, value);
      } else {
        s = Status::AlreadyExists("key " + std::to_string(key));
      }
      (void)pool_->UnpinPage(page, upsert);
      return s;
    }
    if (static_cast<size_t>(count) < LeafCapacity()) {
      LeafShift(data, pos, pos + 1, count - pos);
      SetLeafEntry(data, pos, key, value);
      SetCount(data, count + 1);
      ++num_entries_;
      (void)pool_->UnpinPage(page, true);
      return Status::OK();
    }
    // Split the leaf: left keeps the lower half, right gets the rest.
    PageId right_id;
    char* right = nullptr;
    Status s = pool_->NewPage(&right_id, &right);
    if (!s.ok()) {
      (void)pool_->UnpinPage(page, false);
      return s;
    }
    SetLeaf(right, true);
    int total = count + 1;
    int left_count = total / 2;
    // Build the merged sequence conceptually; move entries beyond
    // left_count into the right node, inserting the new entry in place.
    struct Entry {
      uint64_t key;
      uint64_t value;
    };
    std::vector<Entry> merged;
    merged.reserve(total);
    for (int i = 0; i < count; ++i) {
      if (i == pos) merged.push_back({key, value});
      merged.push_back({LeafKey(data, i), LeafValue(data, i)});
    }
    if (pos == count) merged.push_back({key, value});
    for (int i = 0; i < left_count; ++i) {
      SetLeafEntry(data, i, merged[i].key, merged[i].value);
    }
    SetCount(data, left_count);
    for (int i = left_count; i < total; ++i) {
      SetLeafEntry(right, i - left_count, merged[i].key, merged[i].value);
    }
    SetCount(right, total - left_count);
    SetNextLeaf(right, NextLeaf(data));
    SetNextLeaf(data, right_id);
    split->split = true;
    split->separator = merged[left_count].key;
    split->right = right_id;
    ++num_entries_;
    (void)pool_->UnpinPage(right_id, true);
    (void)pool_->UnpinPage(page, true);
    return Status::OK();
  }

  // Internal node.
  int idx = ChildIndexFor(data, key);
  PageId child = InternalChild(data, idx);
  SplitResult child_split;
  Status s = InsertRecursive(child, key, value, upsert, &child_split);
  if (!s.ok() || !child_split.split) {
    (void)pool_->UnpinPage(page, false);
    return s;
  }
  int count = Count(data);
  if (static_cast<size_t>(count) < InternalCapacity()) {
    InternalShift(data, idx, idx + 1, count - idx);
    SetInternalKey(data, idx, child_split.separator);
    SetInternalChild(data, idx + 1, child_split.right);
    SetCount(data, count + 1);
    (void)pool_->UnpinPage(page, true);
    return Status::OK();
  }
  // Split the internal node around the middle key, which moves up.
  struct Item {
    uint64_t key;
    PageId child;  // child to the right of key
  };
  std::vector<Item> items;
  items.reserve(count + 1);
  for (int i = 0; i < count; ++i) {
    items.push_back({InternalKey(data, i), InternalChild(data, i + 1)});
  }
  items.insert(items.begin() + idx,
               {child_split.separator, child_split.right});
  int total = count + 1;
  int mid = total / 2;  // items[mid].key is promoted

  PageId right_id;
  char* right = nullptr;
  s = pool_->NewPage(&right_id, &right);
  if (!s.ok()) {
    (void)pool_->UnpinPage(page, false);
    return s;
  }
  SetLeaf(right, false);
  // Left keeps items [0, mid); right gets items (mid, total).
  for (int i = 0; i < mid; ++i) {
    SetInternalKey(data, i, items[i].key);
    SetInternalChild(data, i + 1, items[i].child);
  }
  SetCount(data, mid);
  SetInternalChild(right, 0, items[mid].child);
  for (int i = mid + 1; i < total; ++i) {
    SetInternalKey(right, i - mid - 1, items[i].key);
    SetInternalChild(right, i - mid, items[i].child);
  }
  SetCount(right, total - mid - 1);
  split->split = true;
  split->separator = items[mid].key;
  split->right = right_id;
  (void)pool_->UnpinPage(right_id, true);
  (void)pool_->UnpinPage(page, true);
  return Status::OK();
}

Status BPlusTree::Insert(uint64_t key, uint64_t value) {
  SplitResult split;
  CCAM_RETURN_NOT_OK(InsertRecursive(root_, key, value, false, &split));
  if (split.split) {
    PageId new_root;
    char* data = nullptr;
    CCAM_RETURN_NOT_OK(pool_->NewPage(&new_root, &data));
    SetLeaf(data, false);
    SetCount(data, 1);
    SetInternalChild(data, 0, root_);
    SetInternalKey(data, 0, split.separator);
    SetInternalChild(data, 1, split.right);
    (void)pool_->UnpinPage(new_root, true);
    root_ = new_root;
    ++height_;
  }
  return Status::OK();
}

Status BPlusTree::Put(uint64_t key, uint64_t value) {
  SplitResult split;
  CCAM_RETURN_NOT_OK(InsertRecursive(root_, key, value, true, &split));
  if (split.split) {
    PageId new_root;
    char* data = nullptr;
    CCAM_RETURN_NOT_OK(pool_->NewPage(&new_root, &data));
    SetLeaf(data, false);
    SetCount(data, 1);
    SetInternalChild(data, 0, root_);
    SetInternalKey(data, 0, split.separator);
    SetInternalChild(data, 1, split.right);
    (void)pool_->UnpinPage(new_root, true);
    root_ = new_root;
    ++height_;
  }
  return Status::OK();
}

Status BPlusTree::FixChildUnderflow(char* parent, PageId parent_id,
                                    int child_pos) {
  (void)parent_id;
  PageId child_id = InternalChild(parent, child_pos);
  auto child_res = pool_->FetchPage(child_id);
  if (!child_res.ok()) return child_res.status();
  char* child = *child_res;
  Status child_valid = ValidateNode(child, child_id);
  if (!child_valid.ok()) {
    (void)pool_->UnpinPage(child_id, false);
    return child_valid;
  }
  bool child_is_leaf = IsLeaf(child);
  size_t min_count =
      (child_is_leaf ? LeafCapacity() : InternalCapacity()) / 2;

  auto try_sibling = [&](int sib_pos, bool sib_is_left) -> Result<bool> {
    PageId sib_id = InternalChild(parent, sib_pos);
    auto sib_res = pool_->FetchPage(sib_id);
    if (!sib_res.ok()) return sib_res.status();
    char* sib = *sib_res;
    Status sib_valid = ValidateNode(sib, sib_id);
    if (!sib_valid.ok()) {
      (void)pool_->UnpinPage(sib_id, false);
      return sib_valid;
    }
    int sib_count = Count(sib);
    int child_count = Count(child);
    int sep_pos = sib_is_left ? child_pos - 1 : child_pos;

    if (static_cast<size_t>(sib_count) > min_count) {
      // Borrow one entry through the parent separator.
      if (child_is_leaf) {
        if (sib_is_left) {
          LeafShift(child, 0, 1, child_count);
          SetLeafEntry(child, 0, LeafKey(sib, sib_count - 1),
                       LeafValue(sib, sib_count - 1));
          SetCount(sib, sib_count - 1);
          SetCount(child, child_count + 1);
          SetInternalKey(parent, sep_pos, LeafKey(child, 0));
        } else {
          SetLeafEntry(child, child_count, LeafKey(sib, 0),
                       LeafValue(sib, 0));
          SetCount(child, child_count + 1);
          LeafShift(sib, 1, 0, sib_count - 1);
          SetCount(sib, sib_count - 1);
          SetInternalKey(parent, sep_pos, LeafKey(sib, 0));
        }
      } else {
        uint64_t sep = InternalKey(parent, sep_pos);
        if (sib_is_left) {
          // Rotate right: parent separator moves down in front of child,
          // sibling's last key moves up.
          PageId old_child0 = InternalChild(child, 0);
          InternalShift(child, 0, 1, child_count);
          SetInternalKey(child, 0, sep);
          SetInternalChild(child, 1, old_child0);
          SetInternalChild(child, 0, InternalChild(sib, sib_count));
          SetInternalKey(parent, sep_pos, InternalKey(sib, sib_count - 1));
          SetCount(sib, sib_count - 1);
          SetCount(child, child_count + 1);
        } else {
          // Rotate left: parent separator moves down at the end of child,
          // sibling's first key moves up.
          SetInternalKey(child, child_count, sep);
          SetInternalChild(child, child_count + 1, InternalChild(sib, 0));
          SetInternalKey(parent, sep_pos, InternalKey(sib, 0));
          SetInternalChild(sib, 0, InternalChild(sib, 1));
          InternalShift(sib, 1, 0, sib_count - 1);
          SetCount(sib, sib_count - 1);
          SetCount(child, child_count + 1);
        }
      }
      (void)pool_->UnpinPage(sib_id, true);
      return true;
    }

    // Merge child and sibling (always fits: both are at/below minimum).
    char* left = sib_is_left ? sib : child;
    char* right = sib_is_left ? child : sib;
    PageId right_id = sib_is_left ? child_id : sib_id;
    int left_count = Count(left);
    int right_count = Count(right);
    if (child_is_leaf) {
      for (int i = 0; i < right_count; ++i) {
        SetLeafEntry(left, left_count + i, LeafKey(right, i),
                     LeafValue(right, i));
      }
      SetCount(left, left_count + right_count);
      SetNextLeaf(left, NextLeaf(right));
    } else {
      uint64_t sep = InternalKey(parent, sep_pos);
      SetInternalKey(left, left_count, sep);
      SetInternalChild(left, left_count + 1, InternalChild(right, 0));
      for (int i = 0; i < right_count; ++i) {
        SetInternalKey(left, left_count + 1 + i, InternalKey(right, i));
        SetInternalChild(left, left_count + 2 + i,
                         InternalChild(right, i + 1));
      }
      SetCount(left, left_count + 1 + right_count);
    }
    // Remove separator and right child pointer from the parent.
    int pcount = Count(parent);
    InternalShift(parent, sep_pos + 1, sep_pos, pcount - sep_pos - 1);
    SetCount(parent, pcount - 1);
    (void)pool_->UnpinPage(sib_id, true);
    // Free the right page (it may be `child`; unpin first).
    if (right_id == child_id) {
      (void)pool_->UnpinPage(child_id, true);
      child = nullptr;
    }
    pool_->Discard(right_id);
    (void)disk_->FreePage(right_id);
    return true;
  };

  Result<bool> handled = false;
  if (child_pos > 0) {
    handled = try_sibling(child_pos - 1, true);
  } else {
    handled = try_sibling(child_pos + 1, false);
  }
  if (!handled.ok()) {
    if (child != nullptr) (void)pool_->UnpinPage(child_id, true);
    return handled.status();
  }
  if (child != nullptr) (void)pool_->UnpinPage(child_id, true);
  return Status::OK();
}

Status BPlusTree::DeleteRecursive(PageId page, uint64_t key,
                                  bool* underflow) {
  auto res = pool_->FetchPage(page);
  if (!res.ok()) return res.status();
  char* data = *res;
  Status valid = ValidateNode(data, page);
  if (!valid.ok()) {
    (void)pool_->UnpinPage(page, false);
    return valid;
  }

  if (IsLeaf(data)) {
    int count = Count(data);
    int pos = LeafLowerBound(data, key);
    if (pos >= count || LeafKey(data, pos) != key) {
      (void)pool_->UnpinPage(page, false);
      return Status::NotFound("key " + std::to_string(key));
    }
    LeafShift(data, pos + 1, pos, count - pos - 1);
    SetCount(data, count - 1);
    --num_entries_;
    *underflow = static_cast<size_t>(count - 1) < LeafCapacity() / 2;
    (void)pool_->UnpinPage(page, true);
    return Status::OK();
  }

  int idx = ChildIndexFor(data, key);
  PageId child = InternalChild(data, idx);
  bool child_underflow = false;
  Status s = DeleteRecursive(child, key, &child_underflow);
  if (!s.ok()) {
    (void)pool_->UnpinPage(page, false);
    return s;
  }
  if (child_underflow) {
    s = FixChildUnderflow(data, page, idx);
    if (!s.ok()) {
      (void)pool_->UnpinPage(page, true);
      return s;
    }
  }
  *underflow = static_cast<size_t>(Count(data)) < InternalCapacity() / 2;
  (void)pool_->UnpinPage(page, true);
  return Status::OK();
}

Status BPlusTree::Delete(uint64_t key) {
  bool underflow = false;
  CCAM_RETURN_NOT_OK(DeleteRecursive(root_, key, &underflow));
  // Collapse an empty internal root.
  auto res = pool_->FetchPage(root_);
  if (!res.ok()) return res.status();
  char* data = *res;
  Status valid = ValidateNode(data, root_);
  if (!valid.ok()) {
    (void)pool_->UnpinPage(root_, false);
    return valid;
  }
  if (!IsLeaf(data) && Count(data) == 0) {
    PageId old_root = root_;
    root_ = InternalChild(data, 0);
    --height_;
    (void)pool_->UnpinPage(old_root, false);
    pool_->Discard(old_root);
    (void)disk_->FreePage(old_root);
  } else {
    (void)pool_->UnpinPage(root_, false);
  }
  return Status::OK();
}

Status BPlusTree::BulkLoad(
    const std::vector<std::pair<uint64_t, uint64_t>>& entries,
    double fill_factor) {
  // Free the existing tree by rebuilding the manager-side pages lazily: we
  // walk and free all nodes first.
  std::vector<PageId> stack{root_};
  while (!stack.empty()) {
    PageId page = stack.back();
    stack.pop_back();
    auto res = pool_->FetchPage(page);
    if (!res.ok()) return res.status();
    char* data = *res;
    Status valid = ValidateNode(data, page);
    if (!valid.ok()) {
      (void)pool_->UnpinPage(page, false);
      return valid;
    }
    if (!IsLeaf(data)) {
      for (int i = 0; i <= Count(data); ++i) {
        stack.push_back(InternalChild(data, i));
      }
    }
    (void)pool_->UnpinPage(page, false);
    pool_->Discard(page);
    CCAM_RETURN_NOT_OK(disk_->FreePage(page));
  }
  num_entries_ = 0;
  height_ = 1;

  const size_t min_leaf = LeafCapacity() / 2;
  size_t per_leaf =
      std::clamp<size_t>(static_cast<size_t>(LeafCapacity() * fill_factor),
                         std::max<size_t>(1, min_leaf), LeafCapacity());

  // Chunk the entries so no leaf (except a lone root leaf) is below the
  // minimum fill: whenever the default chunk would leave an underfull
  // tail, either absorb the tail into one final leaf or leave exactly
  // min_leaf entries for it.
  std::vector<size_t> chunk_sizes;
  {
    size_t remaining = entries.size();
    while (remaining > 0) {
      size_t take;
      if (remaining <= LeafCapacity()) {
        take = remaining;
      } else {
        take = per_leaf;
        if (remaining - take < min_leaf) take = remaining - min_leaf;
      }
      chunk_sizes.push_back(take);
      remaining -= take;
    }
  }

  // Build the leaf level.
  struct LevelEntry {
    uint64_t first_key;
    PageId page;
  };
  std::vector<LevelEntry> level;
  PageId prev_leaf = kInvalidPageId;
  char* prev_data = nullptr;
  size_t start = 0;
  for (size_t chunk = 0; chunk < chunk_sizes.size();
       start += chunk_sizes[chunk], ++chunk) {
    size_t n = chunk_sizes[chunk];
    PageId id;
    char* data = nullptr;
    CCAM_RETURN_NOT_OK(pool_->NewPage(&id, &data));
    SetLeaf(data, true);
    SetNextLeaf(data, kInvalidPageId);
    for (size_t i = 0; i < n; ++i) {
      if (i > 0 && entries[start + i].first <= entries[start + i - 1].first) {
        (void)pool_->UnpinPage(id, true);
        return Status::InvalidArgument("bulk-load input not sorted/unique");
      }
      SetLeafEntry(data, static_cast<int>(i), entries[start + i].first,
                   entries[start + i].second);
    }
    SetCount(data, static_cast<int>(n));
    if (prev_data != nullptr) {
      SetNextLeaf(prev_data, id);
      (void)pool_->UnpinPage(prev_leaf, true);
    }
    prev_leaf = id;
    prev_data = data;
    level.push_back({entries[start].first, id});
    num_entries_ += n;
  }
  if (prev_data != nullptr) {
    (void)pool_->UnpinPage(prev_leaf, true);
  }
  if (level.empty()) {
    PageId id;
    char* data = nullptr;
    CCAM_RETURN_NOT_OK(pool_->NewPage(&id, &data));
    SetLeaf(data, true);
    SetCount(data, 0);
    SetNextLeaf(data, kInvalidPageId);
    (void)pool_->UnpinPage(id, true);
    root_ = id;
    return Status::OK();
  }

  // Build internal levels until one node remains. The same underfull-tail
  // rule applies, measured in children: an internal node holding c
  // children has c-1 keys and must reach InternalCapacity()/2 keys unless
  // it is the root.
  const size_t max_children = InternalCapacity() + 1;
  const size_t min_children = InternalCapacity() / 2 + 1;
  size_t per_internal =
      std::clamp<size_t>(static_cast<size_t>(InternalCapacity() *
                                             fill_factor) + 1,
                         min_children, max_children);
  while (level.size() > 1) {
    std::vector<LevelEntry> next_level;
    size_t i = 0;
    while (i < level.size()) {
      size_t remaining = level.size() - i;
      size_t take;
      if (remaining <= max_children) {
        take = remaining;
      } else {
        take = per_internal;
        if (remaining - take < min_children) take = remaining - min_children;
      }
      PageId id;
      char* data = nullptr;
      CCAM_RETURN_NOT_OK(pool_->NewPage(&id, &data));
      SetLeaf(data, false);
      SetInternalChild(data, 0, level[i].page);
      for (size_t k = 1; k < take; ++k) {
        SetInternalKey(data, static_cast<int>(k - 1),
                       level[i + k].first_key);
        SetInternalChild(data, static_cast<int>(k), level[i + k].page);
      }
      SetCount(data, static_cast<int>(take - 1));
      (void)pool_->UnpinPage(id, true);
      next_level.push_back({level[i].first_key, id});
      i += take;
    }
    level = std::move(next_level);
    ++height_;
  }
  root_ = level[0].page;
  return Status::OK();
}

void BPlusTree::Iterator::Load() {
  valid_ = false;
  if (tree_ == nullptr) return;
  // The hop bound turns a corrupt next_leaf cycle (of exhausted leaves)
  // into an invalid iterator instead of an infinite walk. A damaged node
  // likewise ends the iteration; CheckInvariants reports it as Corruption.
  size_t max_hops = tree_->disk_->NumAllocatedPages() + 1;
  for (size_t hops = 0; leaf_ != kInvalidPageId && hops < max_hops; ++hops) {
    auto res = tree_->pool_->FetchPage(leaf_);
    if (!res.ok()) return;
    char* data = *res;
    if (!tree_->ValidateNode(data, leaf_).ok() || !IsLeaf(data)) {
      (void)tree_->pool_->UnpinPage(leaf_, false);
      return;
    }
    if (pos_ >= Count(data)) {
      PageId next = NextLeaf(data);
      (void)tree_->pool_->UnpinPage(leaf_, false);
      leaf_ = next;
      pos_ = 0;
      continue;
    }
    key_ = LeafKey(data, pos_);
    value_ = LeafValue(data, pos_);
    valid_ = true;
    (void)tree_->pool_->UnpinPage(leaf_, false);
    return;
  }
}

void BPlusTree::Iterator::Next() {
  if (!valid_) return;
  ++pos_;
  Load();
}

BPlusTree::Iterator BPlusTree::Begin() const { return Seek(0); }

BPlusTree::Iterator BPlusTree::Seek(uint64_t key) const {
  Iterator it;
  it.tree_ = this;
  auto res = FindLeaf(key);
  if (!res.ok()) return it;
  it.leaf_ = *res;
  auto page = pool_->FetchPage(it.leaf_);
  if (!page.ok()) return it;
  it.pos_ = LeafLowerBound(*page, key);
  (void)pool_->UnpinPage(it.leaf_, false);
  it.Load();
  return it;
}

std::vector<std::pair<uint64_t, uint64_t>> BPlusTree::RangeScan(
    uint64_t min_key, uint64_t max_key) const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  for (Iterator it = Seek(min_key); it.Valid() && it.key() <= max_key;
       it.Next()) {
    out.emplace_back(it.key(), it.value());
  }
  return out;
}

Status BPlusTree::CheckSubtree(PageId page, int depth, uint64_t lo,
                               bool has_lo, uint64_t hi, bool has_hi,
                               int* leaf_depth) const {
  auto res = pool_->FetchPage(page);
  if (!res.ok()) return res.status();
  char* data = *res;
  auto fail = [&](const std::string& why) {
    (void)pool_->UnpinPage(page, false);
    return Status::Corruption("page " + std::to_string(page) + ": " + why);
  };
  Status valid = ValidateNode(data, page);
  if (!valid.ok()) {
    (void)pool_->UnpinPage(page, false);
    return valid;
  }
  int count = Count(data);
  bool is_root = page == root_;
  if (IsLeaf(data)) {
    if (*leaf_depth == -1) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return fail("uneven leaf depth");
    }
    if (!is_root && static_cast<size_t>(count) < LeafCapacity() / 2) {
      return fail("leaf under minimum fill");
    }
    for (int i = 0; i < count; ++i) {
      uint64_t k = LeafKey(data, i);
      if (i > 0 && LeafKey(data, i - 1) >= k) return fail("unsorted leaf");
      if (has_lo && k < lo) return fail("leaf key below bound");
      if (has_hi && k >= hi) return fail("leaf key above bound");
    }
    (void)pool_->UnpinPage(page, false);
    return Status::OK();
  }
  if (!is_root && static_cast<size_t>(count) < InternalCapacity() / 2) {
    return fail("internal under minimum fill");
  }
  if (count < 1) return fail("internal node with no keys");
  for (int i = 0; i < count; ++i) {
    uint64_t k = InternalKey(data, i);
    if (i > 0 && InternalKey(data, i - 1) >= k) {
      return fail("unsorted internal keys");
    }
    if (has_lo && k < lo) return fail("internal key below bound");
    if (has_hi && k >= hi) return fail("internal key above bound");
  }
  // Copy children and keys before recursing (the frame may be evicted).
  std::vector<PageId> children;
  std::vector<uint64_t> keys;
  for (int i = 0; i <= count; ++i) children.push_back(InternalChild(data, i));
  for (int i = 0; i < count; ++i) keys.push_back(InternalKey(data, i));
  (void)pool_->UnpinPage(page, false);
  for (int i = 0; i <= count; ++i) {
    uint64_t child_lo = (i == 0) ? lo : keys[i - 1];
    bool child_has_lo = (i == 0) ? has_lo : true;
    uint64_t child_hi = (i == count) ? hi : keys[i];
    bool child_has_hi = (i == count) ? has_hi : true;
    CCAM_RETURN_NOT_OK(CheckSubtree(children[i], depth + 1, child_lo,
                                    child_has_lo, child_hi, child_has_hi,
                                    leaf_depth));
  }
  return Status::OK();
}

Status BPlusTree::CheckInvariants() const {
  int leaf_depth = -1;
  CCAM_RETURN_NOT_OK(
      CheckSubtree(root_, 0, 0, false, 0, false, &leaf_depth));
  // Leaf chain must enumerate exactly num_entries_ keys in order.
  size_t seen = 0;
  uint64_t prev = 0;
  bool first = true;
  for (Iterator it = Begin(); it.Valid(); it.Next()) {
    if (!first && it.key() <= prev) {
      return Status::Corruption("leaf chain out of order");
    }
    prev = it.key();
    first = false;
    ++seen;
  }
  if (seen != num_entries_) {
    return Status::Corruption("entry count mismatch: chain " +
                              std::to_string(seen) + " vs counter " +
                              std::to_string(num_entries_));
  }
  return Status::OK();
}

}  // namespace ccam
