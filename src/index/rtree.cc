#include "src/index/rtree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <queue>

namespace ccam {

Rect Rect::Union(const Rect& o) const {
  return {std::min(xmin, o.xmin), std::min(ymin, o.ymin),
          std::max(xmax, o.xmax), std::max(ymax, o.ymax)};
}

double Rect::DistanceSq(double x, double y) const {
  double dx = 0.0, dy = 0.0;
  if (x < xmin) {
    dx = xmin - x;
  } else if (x > xmax) {
    dx = x - xmax;
  }
  if (y < ymin) {
    dy = ymin - y;
  } else if (y > ymax) {
    dy = y - ymax;
  }
  return dx * dx + dy * dy;
}

/// Either a leaf entry (value) or a child subtree, always with its MBR.
struct RTree::NodeEntry {
  Rect rect;
  uint64_t value = 0;               // leaf entries
  std::unique_ptr<Node> child;      // internal entries
};

struct RTree::Node {
  bool leaf = true;
  Node* parent = nullptr;
  std::vector<NodeEntry> entries;
};

RTree::RTree(int max_entries)
    : max_entries_(std::max(4, max_entries)),
      min_entries_(std::max(1, static_cast<int>(max_entries * 0.4))),
      root_(std::make_unique<Node>()) {}

RTree::~RTree() = default;

Rect RTree::NodeMbr(const Node* node) const {
  Rect mbr = node->entries.empty() ? Rect{} : node->entries[0].rect;
  for (size_t i = 1; i < node->entries.size(); ++i) {
    mbr = mbr.Union(node->entries[i].rect);
  }
  return mbr;
}

RTree::Node* RTree::ChooseLeaf(Node* node, const Rect& rect) const {
  while (!node->leaf) {
    // Guttman: descend into the child needing least area enlargement,
    // breaking ties on smaller area.
    double best_enlarge = 1e300, best_area = 1e300;
    Node* best = nullptr;
    for (NodeEntry& e : node->entries) {
      double area = e.rect.Area();
      double enlarged = e.rect.Union(rect).Area() - area;
      if (enlarged < best_enlarge ||
          (enlarged == best_enlarge && area < best_area)) {
        best_enlarge = enlarged;
        best_area = area;
        best = e.child.get();
      }
    }
    node = best;
  }
  return node;
}

void RTree::SplitNode(Node* node) {
  // Guttman quadratic split: pick the pair of entries wasting the most
  // area as seeds, then assign the rest greedily by enlargement preference.
  std::vector<NodeEntry> entries = std::move(node->entries);
  node->entries.clear();
  size_t seed_a = 0, seed_b = 1;
  double worst = -1e300;
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      double waste = entries[i].rect.Union(entries[j].rect).Area() -
                     entries[i].rect.Area() - entries[j].rect.Area();
      if (waste > worst) {
        worst = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  auto sibling = std::make_unique<Node>();
  sibling->leaf = node->leaf;

  std::vector<NodeEntry> pool;
  pool.reserve(entries.size());
  Rect mbr_a = entries[seed_a].rect;
  Rect mbr_b = entries[seed_b].rect;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i == seed_a) {
      node->entries.push_back(std::move(entries[i]));
    } else if (i == seed_b) {
      sibling->entries.push_back(std::move(entries[i]));
    } else {
      pool.push_back(std::move(entries[i]));
    }
  }

  size_t remaining = pool.size();
  std::vector<bool> placed(pool.size(), false);
  size_t group_a = 1, group_b = 1;
  const size_t total = pool.size() + 2;
  while (remaining > 0) {
    // Force-assign when a group must take all the rest to reach min fill.
    if (group_a + remaining == static_cast<size_t>(min_entries_)) {
      for (size_t i = 0; i < pool.size(); ++i) {
        if (!placed[i]) {
          mbr_a = mbr_a.Union(pool[i].rect);
          node->entries.push_back(std::move(pool[i]));
          placed[i] = true;
        }
      }
      break;
    }
    if (group_b + remaining == static_cast<size_t>(min_entries_)) {
      for (size_t i = 0; i < pool.size(); ++i) {
        if (!placed[i]) {
          mbr_b = mbr_b.Union(pool[i].rect);
          sibling->entries.push_back(std::move(pool[i]));
          placed[i] = true;
        }
      }
      break;
    }
    // Pick the unplaced entry with the strongest group preference.
    size_t pick = 0;
    double best_diff = -1.0;
    bool prefer_a = true;
    for (size_t i = 0; i < pool.size(); ++i) {
      if (placed[i]) continue;
      double da = mbr_a.Union(pool[i].rect).Area() - mbr_a.Area();
      double db = mbr_b.Union(pool[i].rect).Area() - mbr_b.Area();
      double diff = std::fabs(da - db);
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
        prefer_a = da < db || (da == db && group_a <= group_b);
      }
    }
    if (prefer_a) {
      mbr_a = mbr_a.Union(pool[pick].rect);
      node->entries.push_back(std::move(pool[pick]));
      ++group_a;
    } else {
      mbr_b = mbr_b.Union(pool[pick].rect);
      sibling->entries.push_back(std::move(pool[pick]));
      ++group_b;
    }
    placed[pick] = true;
    --remaining;
  }
  (void)total;

  for (NodeEntry& e : sibling->entries) {
    if (e.child) e.child->parent = sibling.get();
  }

  if (node->parent == nullptr) {
    // Grow a new root above node and sibling.
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    auto old_root = std::move(root_);
    old_root->parent = new_root.get();
    sibling->parent = new_root.get();
    NodeEntry left{NodeMbr(old_root.get()), 0, std::move(old_root)};
    NodeEntry right{NodeMbr(sibling.get()), 0, std::move(sibling)};
    new_root->entries.push_back(std::move(left));
    new_root->entries.push_back(std::move(right));
    root_ = std::move(new_root);
    return;
  }

  Node* parent = node->parent;
  sibling->parent = parent;
  // Refresh node's MBR entry in the parent and add the sibling.
  for (NodeEntry& e : parent->entries) {
    if (e.child.get() == node) {
      e.rect = NodeMbr(node);
      break;
    }
  }
  Rect sib_mbr = NodeMbr(sibling.get());
  parent->entries.push_back(NodeEntry{sib_mbr, 0, std::move(sibling)});
  if (parent->entries.size() > static_cast<size_t>(max_entries_)) {
    SplitNode(parent);
  } else {
    AdjustUpward(parent);
  }
}

void RTree::AdjustUpward(Node* node) {
  while (node->parent != nullptr) {
    Node* parent = node->parent;
    for (NodeEntry& e : parent->entries) {
      if (e.child.get() == node) {
        e.rect = NodeMbr(node);
        break;
      }
    }
    node = parent;
  }
}

void RTree::Insert(const Rect& rect, uint64_t value) {
  Node* leaf = ChooseLeaf(root_.get(), rect);
  leaf->entries.push_back(NodeEntry{rect, value, nullptr});
  ++num_entries_;
  if (leaf->entries.size() > static_cast<size_t>(max_entries_)) {
    SplitNode(leaf);
  } else {
    AdjustUpward(leaf);
  }
}

void RTree::CondenseChild(Node* parent, size_t child_idx,
                          std::vector<NodeEntry>* orphans) {
  // Remove the underfull child and queue its entries for reinsertion.
  std::unique_ptr<Node> child = std::move(parent->entries[child_idx].child);
  parent->entries.erase(parent->entries.begin() + child_idx);
  // Flatten the subtree into leaf-level orphan entries.
  std::vector<Node*> stack{child.get()};
  std::vector<std::unique_ptr<Node>> keep_alive;
  while (!stack.empty()) {
    Node* cur = stack.back();
    stack.pop_back();
    for (NodeEntry& e : cur->entries) {
      if (cur->leaf) {
        orphans->push_back(NodeEntry{e.rect, e.value, nullptr});
      } else {
        stack.push_back(e.child.get());
        keep_alive.push_back(std::move(e.child));
      }
    }
  }
}

bool RTree::DeleteRecursive(Node* node, const Rect& rect, uint64_t value,
                            std::vector<NodeEntry>* orphans) {
  if (node->leaf) {
    for (size_t i = 0; i < node->entries.size(); ++i) {
      if (node->entries[i].rect == rect && node->entries[i].value == value) {
        node->entries.erase(node->entries.begin() + i);
        return true;
      }
    }
    return false;
  }
  for (size_t i = 0; i < node->entries.size(); ++i) {
    if (!node->entries[i].rect.Contains(rect)) continue;
    if (DeleteRecursive(node->entries[i].child.get(), rect, value, orphans)) {
      Node* child = node->entries[i].child.get();
      if (child->entries.size() < static_cast<size_t>(min_entries_)) {
        CondenseChild(node, i, orphans);
      } else {
        node->entries[i].rect = NodeMbr(child);
      }
      return true;
    }
  }
  return false;
}

Status RTree::Delete(const Rect& rect, uint64_t value) {
  std::vector<NodeEntry> orphans;
  if (!DeleteRecursive(root_.get(), rect, value, &orphans)) {
    return Status::NotFound("r-tree entry not found");
  }
  --num_entries_;
  // Shrink the root while it has a single child.
  while (!root_->leaf && root_->entries.size() == 1) {
    std::unique_ptr<Node> child = std::move(root_->entries[0].child);
    child->parent = nullptr;
    root_ = std::move(child);
  }
  if (!root_->leaf && root_->entries.empty()) {
    root_ = std::make_unique<Node>();
  }
  // Reinsert orphaned leaf entries.
  num_entries_ -= orphans.size();
  for (NodeEntry& e : orphans) {
    Insert(e.rect, e.value);
  }
  AdjustUpward(root_.get());
  return Status::OK();
}

std::vector<uint64_t> RTree::Search(const Rect& query) const {
  std::vector<uint64_t> out;
  std::vector<const Node*> stack{root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const NodeEntry& e : node->entries) {
      if (!e.rect.Intersects(query)) continue;
      if (node->leaf) {
        out.push_back(e.value);
      } else {
        stack.push_back(e.child.get());
      }
    }
  }
  return out;
}

std::vector<uint64_t> RTree::KNearest(double x, double y, size_t k) const {
  struct QueueItem {
    double dist_sq;
    const Node* node;    // nullptr for leaf entries
    uint64_t value;
    bool operator>(const QueueItem& o) const { return dist_sq > o.dist_sq; }
  };
  std::priority_queue<QueueItem, std::vector<QueueItem>,
                      std::greater<QueueItem>>
      queue;
  queue.push({0.0, root_.get(), 0});
  std::vector<uint64_t> out;
  while (!queue.empty() && out.size() < k) {
    QueueItem item = queue.top();
    queue.pop();
    if (item.node == nullptr) {
      out.push_back(item.value);
      continue;
    }
    for (const NodeEntry& e : item.node->entries) {
      if (item.node->leaf) {
        queue.push({e.rect.DistanceSq(x, y), nullptr, e.value});
      } else {
        queue.push({e.rect.DistanceSq(x, y), e.child.get(), 0});
      }
    }
  }
  return out;
}

int RTree::Height() const {
  int h = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    node = node->entries[0].child.get();
    ++h;
  }
  return h;
}

Status RTree::CheckNode(const Node* node, int depth, int* leaf_depth,
                        size_t* counted) const {
  if (node->entries.size() > static_cast<size_t>(max_entries_)) {
    return Status::Corruption("node over capacity");
  }
  if (node != root_.get() &&
      node->entries.size() < static_cast<size_t>(min_entries_)) {
    return Status::Corruption("node under minimum fill");
  }
  if (node->leaf) {
    if (*leaf_depth == -1) {
      *leaf_depth = depth;
    } else if (*leaf_depth != depth) {
      return Status::Corruption("uneven leaf depth");
    }
    *counted += node->entries.size();
    return Status::OK();
  }
  for (const NodeEntry& e : node->entries) {
    if (e.child == nullptr) {
      return Status::Corruption("internal entry without child");
    }
    if (e.child->parent != node) {
      return Status::Corruption("broken parent pointer");
    }
    Rect mbr = NodeMbr(e.child.get());
    if (!(e.rect == mbr)) {
      return Status::Corruption("stale MBR");
    }
    CCAM_RETURN_NOT_OK(CheckNode(e.child.get(), depth + 1, leaf_depth,
                                 counted));
  }
  return Status::OK();
}

Status RTree::CheckInvariants() const {
  int leaf_depth = -1;
  size_t counted = 0;
  CCAM_RETURN_NOT_OK(CheckNode(root_.get(), 0, &leaf_depth, &counted));
  if (counted != num_entries_) {
    return Status::Corruption("entry count mismatch");
  }
  return Status::OK();
}

}  // namespace ccam
