#ifndef CCAM_INDEX_RTREE_H_
#define CCAM_INDEX_RTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/status.h"

namespace ccam {

/// Axis-aligned rectangle used by the R-tree.
struct Rect {
  double xmin = 0.0, ymin = 0.0, xmax = 0.0, ymax = 0.0;

  static Rect Point(double x, double y) { return {x, y, x, y}; }

  double Area() const { return (xmax - xmin) * (ymax - ymin); }
  bool Intersects(const Rect& o) const {
    return xmin <= o.xmax && o.xmin <= xmax && ymin <= o.ymax &&
           o.ymin <= ymax;
  }
  bool Contains(const Rect& o) const {
    return xmin <= o.xmin && o.xmax <= xmax && ymin <= o.ymin &&
           o.ymax <= ymax;
  }
  /// Smallest rectangle covering both.
  Rect Union(const Rect& o) const;
  /// Squared distance from a point to this rectangle (0 when inside).
  double DistanceSq(double x, double y) const;

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.xmin == b.xmin && a.ymin == b.ymin && a.xmax == b.xmax &&
           a.ymax == b.ymax;
  }
};

/// Guttman R-tree with quadratic split — the paper's "other access methods
/// such as R-tree ... can alternatively be created on top of the data file
/// as secondary indices in CCAM". In-memory (secondary indices are assumed
/// buffered by the paper's cost model).
class RTree {
 public:
  /// `max_entries` is the node fan-out M; the minimum fill is M * 0.4.
  explicit RTree(int max_entries = 8);
  ~RTree();

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  void Insert(const Rect& rect, uint64_t value);

  /// Removes the exact (rect, value) entry; NotFound when absent.
  Status Delete(const Rect& rect, uint64_t value);

  /// Values of all entries intersecting `query`.
  std::vector<uint64_t> Search(const Rect& query) const;

  /// The k entries nearest to (x, y) by rectangle distance, nearest first.
  std::vector<uint64_t> KNearest(double x, double y, size_t k) const;

  size_t NumEntries() const { return num_entries_; }
  int Height() const;

  /// Structural check for tests: MBR containment, fan-out and (non-root)
  /// minimum fill, uniform leaf depth, entry count.
  Status CheckInvariants() const;

 private:
  struct Node;
  struct NodeEntry;

  Node* ChooseLeaf(Node* node, const Rect& rect) const;
  void SplitNode(Node* node);
  void AdjustUpward(Node* node);
  bool DeleteRecursive(Node* node, const Rect& rect, uint64_t value,
                       std::vector<NodeEntry>* orphans);
  void CondenseChild(Node* parent, size_t child_idx,
                     std::vector<NodeEntry>* orphans);
  Rect NodeMbr(const Node* node) const;
  Status CheckNode(const Node* node, int depth, int* leaf_depth,
                   size_t* counted) const;

  int max_entries_;
  int min_entries_;
  std::unique_ptr<Node> root_;
  size_t num_entries_ = 0;
};

}  // namespace ccam

#endif  // CCAM_INDEX_RTREE_H_
