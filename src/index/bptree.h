#ifndef CCAM_INDEX_BPTREE_H_
#define CCAM_INDEX_BPTREE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"
#include "src/storage/buffer_pool.h"
#include "src/storage/disk_manager.h"

namespace ccam {

/// Paged B+ tree mapping uint64 keys to uint64 values — the secondary index
/// of CCAM (paper Section 2.1: a B+ tree over the Z-order of the node
/// coordinates mapping node-ids to data-page addresses). Keys are unique.
///
/// Page layouts (little-endian):
///   common header: type u8 (0 leaf / 1 internal), pad u8, count u16
///   leaf:     header + next_leaf u32 + count * {key u64, value u64}
///   internal: header + child0 u32   + count * {key u64, child u32}
/// In an internal node, child0 covers keys < key[0]; child[i] (i >= 1)
/// covers keys in [key[i-1], key[i]); the last child covers >= key[count-1].
class BPlusTree {
 public:
  /// Creates an empty tree whose nodes live on `disk` via `pool`. The
  /// caller keeps ownership of both; they must outlive the tree. The index
  /// typically uses its own DiskManager so index I/O never pollutes the
  /// data-page counters (the paper assumes index pages are buffered).
  BPlusTree(DiskManager* disk, BufferPool* pool);

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Inserts a new key. Fails with AlreadyExists on duplicates.
  Status Insert(uint64_t key, uint64_t value);

  /// Upsert: inserts or overwrites.
  Status Put(uint64_t key, uint64_t value);

  /// Returns the value for `key` or NotFound.
  Result<uint64_t> Find(uint64_t key) const;

  /// Removes `key`. Fails with NotFound when absent.
  Status Delete(uint64_t key);

  /// Replaces the whole tree with `entries` (must be sorted by key, unique)
  /// packed at `fill_factor` of leaf capacity.
  Status BulkLoad(const std::vector<std::pair<uint64_t, uint64_t>>& entries,
                  double fill_factor = 0.8);

  size_t NumEntries() const { return num_entries_; }
  int Height() const { return height_; }

  /// Forward iterator over (key, value) pairs in key order.
  class Iterator {
   public:
    bool Valid() const { return valid_; }
    uint64_t key() const { return key_; }
    uint64_t value() const { return value_; }
    /// Advances; invalid once past the last entry.
    void Next();

   private:
    friend class BPlusTree;
    const BPlusTree* tree_ = nullptr;
    PageId leaf_ = kInvalidPageId;
    int pos_ = 0;
    bool valid_ = false;
    uint64_t key_ = 0;
    uint64_t value_ = 0;
    void Load();
  };

  /// Iterator at the smallest key.
  Iterator Begin() const;
  /// Iterator at the smallest key >= `key`.
  Iterator Seek(uint64_t key) const;

  /// Collects all entries with min_key <= key <= max_key.
  std::vector<std::pair<uint64_t, uint64_t>> RangeScan(uint64_t min_key,
                                                       uint64_t max_key) const;

  /// Verifies structural invariants (ordering, balance, minimum fill).
  /// Intended for tests; returns Corruption describing the first violation.
  Status CheckInvariants() const;

 private:
  struct SplitResult {
    bool split = false;
    uint64_t separator = 0;
    PageId right = kInvalidPageId;
  };

  size_t LeafCapacity() const;
  size_t InternalCapacity() const;

  /// Sanity-checks a node fetched from disk before any accessor decodes it:
  /// the type byte must be 0/1 and the entry count must fit the node
  /// capacity, else every entry accessor reads past the page. Returns
  /// Corruption naming the page so a damaged index surfaces as a typed
  /// error instead of undefined decode behavior.
  Status ValidateNode(const char* node, PageId page) const;

  Status InsertRecursive(PageId page, uint64_t key, uint64_t value,
                         bool upsert, SplitResult* split);
  Status DeleteRecursive(PageId page, uint64_t key, bool* underflow);
  /// Repairs the underflowed child at position `child_pos` of internal page
  /// `parent` by borrowing from or merging with a sibling.
  Status FixChildUnderflow(char* parent, PageId parent_id, int child_pos);
  Result<PageId> FindLeaf(uint64_t key) const;
  Status CheckSubtree(PageId page, int depth, uint64_t lo, bool has_lo,
                      uint64_t hi, bool has_hi, int* leaf_depth) const;

  DiskManager* disk_;
  BufferPool* pool_;
  PageId root_ = kInvalidPageId;
  int height_ = 1;  // 1 = root is a leaf
  size_t num_entries_ = 0;
};

}  // namespace ccam

#endif  // CCAM_INDEX_BPTREE_H_
