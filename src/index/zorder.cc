#include "src/index/zorder.h"

#include <algorithm>

namespace ccam {

namespace {

/// Spreads the low 32 bits of `v` so that bit i lands at bit 2i.
uint64_t SpreadBits(uint64_t v) {
  v &= 0xffffffffULL;
  v = (v | (v << 16)) & 0x0000ffff0000ffffULL;
  v = (v | (v << 8)) & 0x00ff00ff00ff00ffULL;
  v = (v | (v << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  v = (v | (v << 2)) & 0x3333333333333333ULL;
  v = (v | (v << 1)) & 0x5555555555555555ULL;
  return v;
}

/// Inverse of SpreadBits.
uint32_t CompactBits(uint64_t v) {
  v &= 0x5555555555555555ULL;
  v = (v | (v >> 1)) & 0x3333333333333333ULL;
  v = (v | (v >> 2)) & 0x0f0f0f0f0f0f0f0fULL;
  v = (v | (v >> 4)) & 0x00ff00ff00ff00ffULL;
  v = (v | (v >> 8)) & 0x0000ffff0000ffffULL;
  v = (v | (v >> 16)) & 0x00000000ffffffffULL;
  return static_cast<uint32_t>(v);
}

}  // namespace

uint64_t ZOrderEncode(uint32_t x, uint32_t y) {
  return SpreadBits(x) | (SpreadBits(y) << 1);
}

void ZOrderDecode(uint64_t code, uint32_t* x, uint32_t* y) {
  *x = CompactBits(code);
  *y = CompactBits(code >> 1);
}

uint64_t ZOrderFromPoint(double x, double y, double min_coord,
                         double max_coord) {
  const double range = max_coord - min_coord;
  auto quantize = [&](double v) -> uint32_t {
    if (range <= 0.0) return 0;
    double t = (v - min_coord) / range;
    t = std::clamp(t, 0.0, 1.0);
    return static_cast<uint32_t>(t * 65535.0);
  };
  return ZOrderEncode(quantize(x), quantize(y));
}

bool ZOrderInRect(uint64_t code, uint64_t min_code, uint64_t max_code) {
  uint32_t x, y, xmin, ymin, xmax, ymax;
  ZOrderDecode(code, &x, &y);
  ZOrderDecode(min_code, &xmin, &ymin);
  ZOrderDecode(max_code, &xmax, &ymax);
  return x >= xmin && x <= xmax && y >= ymin && y <= ymax;
}

uint64_t ZOrderBigMin(uint64_t current, uint64_t min_code,
                      uint64_t max_code) {
  // Tropf-Herzog BIGMIN: walk the bits of the codes from most significant to
  // least significant, maintaining candidate min/max codes, and track the
  // best "load" value (smallest in-rectangle code greater than `current`).
  auto load_ones_below = [](uint64_t code, int bit) {
    // Sets bit `bit` to 0 and all lower same-dimension bits to 1; bits of
    // the other dimension are untouched.
    uint64_t dim_mask = (bit % 2 == 0) ? 0x5555555555555555ULL
                                       : 0xaaaaaaaaaaaaaaaaULL;
    uint64_t below = (bit == 63) ? ~0ULL >> 1 : ((1ULL << bit) - 1);
    return (code & ~(1ULL << bit)) | (dim_mask & below);
  };
  auto load_zeros_below = [](uint64_t code, int bit) {
    // Sets bit `bit` to 1 and all lower same-dimension bits to 0.
    uint64_t dim_mask = (bit % 2 == 0) ? 0x5555555555555555ULL
                                       : 0xaaaaaaaaaaaaaaaaULL;
    uint64_t below = (bit == 63) ? ~0ULL >> 1 : ((1ULL << bit) - 1);
    return ((code | (1ULL << bit)) & ~(dim_mask & below));
  };

  uint64_t bigmin = 0;
  bool bigmin_set = false;
  uint64_t zmin = min_code;
  uint64_t zmax = max_code;

  for (int bit = 63; bit >= 0; --bit) {
    uint64_t mask = 1ULL << bit;
    int bits = ((current & mask) ? 4 : 0) | ((zmin & mask) ? 2 : 0) |
               ((zmax & mask) ? 1 : 0);
    switch (bits) {
      case 0:  // 0,0,0: continue
        break;
      case 1:  // current=0, zmin=0, zmax=1
        bigmin = load_zeros_below(zmin, bit);
        bigmin_set = true;
        zmax = load_ones_below(zmax, bit);
        break;
      case 3:  // current=0, zmin=1, zmax=1: whole range above current
        return zmin;
      case 4:  // current=1, zmin=0, zmax=0: range below current
        return bigmin_set ? bigmin : zmin;
      case 5:  // current=1, zmin=0, zmax=1
        zmin = load_zeros_below(zmin, bit);
        break;
      case 7:  // 1,1,1: continue
        break;
      default:
        // Cases 2 and 6 (zmin=1, zmax=0 in this bit) cannot occur for a
        // valid rectangle; fall through defensively.
        break;
    }
  }
  return bigmin_set ? bigmin : zmin;
}

}  // namespace ccam
