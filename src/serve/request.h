#ifndef CCAM_SERVE_REQUEST_H_
#define CCAM_SERVE_REQUEST_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/graph/route.h"
#include "src/query/aggregate.h"
#include "src/storage/record.h"

namespace ccam {
namespace serve {

/// Query operations the service executes. Every operation maps onto one of
/// the read-only drivers in src/query; the set matches the aggregate-query
/// workload the paper's IVHS scenario serves to many concurrent users.
enum class ServeOp : uint8_t {
  /// EvaluateRoute over `route` (Figure 6's operation).
  kRouteEval,
  /// ShortestPathAStar from route.front() to route.back().
  kAStar,
  /// ShortestPathCH from route.front() to route.back() (needs an overlay).
  kHierarchy,
  /// AggregateRouteUnit over `unit`.
  kAggregate,
};

const char* ServeOpName(ServeOp op);

/// One client request. The origin node anchors the request to a region
/// (the data page that stores the origin): the dispatcher uses it for
/// worker affinity and the scheduler for same-region batching.
struct ServeRequest {
  ServeOp op = ServeOp::kRouteEval;
  /// Paying tenant (admission control and fair scheduling are per-tenant).
  uint32_t tenant = 0;
  /// Simulated end user issuing the request — an opaque tag from a space
  /// of millions; carried through to the response for client bookkeeping.
  uint64_t user = 0;
  /// Route for kRouteEval (full node sequence) and the OD pair for
  /// kAStar / kHierarchy (front() and back()).
  Route route;
  /// Route-unit for kAggregate.
  RouteUnit unit;

  /// Absolute completion deadline in steady-clock microseconds
  /// (RequestContext::NowMicros scale); 0 = no deadline. An expired
  /// request is shed at admission or dequeue with a typed
  /// DeadlineExceeded rejection; one that expires mid-execution unwinds
  /// cooperatively with the same status (the batch runs under the
  /// tightest deadline of its deadlined members).
  int64_t deadline_us = 0;

  /// The node whose data page defines the request's region.
  NodeId Origin() const {
    if (op == ServeOp::kAggregate) {
      return unit.edges.empty() ? kInvalidNodeId : unit.edges.front().first;
    }
    return route.nodes.empty() ? kInvalidNodeId : route.nodes.front();
  }
};

/// Completion record of one request. The semantic payload (`cost`,
/// `num_edges`, `path`) is whatever the underlying driver produced, flattened
/// so the equivalence oracle can compare batched and unbatched runs
/// field by field.
struct ServeResponse {
  Status status;
  double cost = 0.0;        // total route / path / aggregate edge cost
  uint64_t num_edges = 0;   // edges traversed / aggregated
  std::vector<NodeId> path;  // kAStar / kHierarchy only
  /// Accounting: microseconds queued before execution started, and the
  /// occupancy of the region batch this request executed in (1 = ran
  /// alone; rejected requests report 0).
  uint64_t queue_us = 0;
  uint32_t batch_size = 0;
  /// Completion time on the service's steady-microsecond clock
  /// (QueryService::NowMicros scale). A client that timestamps Submit on
  /// the same clock gets exact end-to-end latency without having to
  /// observe the completion itself — the load generator relies on this.
  uint64_t done_us = 0;
};

/// Shared completion slot returned by QueryService::Submit. The service
/// fulfills it exactly once — from a worker thread on execution, or
/// immediately on the submit path when admission rejects the request —
/// and clients block on Wait(). Rejections are typed: a rejected ticket's
/// status IsOverloaded().
class ServeTicket {
 public:
  /// Blocks until the response is ready and returns it.
  const ServeResponse& Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return done_; });
    return response_;
  }

  bool done() const {
    std::lock_guard<std::mutex> lock(mu_);
    return done_;
  }

  /// Called by the service exactly once per ticket.
  void Fulfill(ServeResponse response) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      response_ = std::move(response);
      done_ = true;
    }
    cv_.notify_all();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool done_ = false;
  ServeResponse response_;
};

using ServeTicketPtr = std::shared_ptr<ServeTicket>;

}  // namespace serve
}  // namespace ccam

#endif  // CCAM_SERVE_REQUEST_H_
