#include "src/serve/circuit_breaker.h"

namespace ccam {

bool CircuitBreaker::Classify(const Status& s, FailureClass* out) {
  switch (s.code()) {
    case Status::Code::kIOError:
    case Status::Code::kShortRead:
      *out = FailureClass::kIo;
      return true;
    case Status::Code::kCorruption:
    case Status::Code::kQuarantined:
      *out = FailureClass::kCorruption;
      return true;
    case Status::Code::kDeadlineExceeded:
      *out = FailureClass::kDeadline;
      return true;
    default:
      return false;
  }
}

const char* CircuitBreaker::ClassName(FailureClass c) {
  switch (c) {
    case FailureClass::kIo:
      return "io";
    case FailureClass::kCorruption:
      return "corruption";
    case FailureClass::kDeadline:
      return "deadline";
  }
  return "unknown";
}

Status CircuitBreaker::Allow(int64_t now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < kNumClasses; ++i) {
    ClassState& cs = classes_[i];
    if (!cs.open) continue;
    if (now_us - cs.opened_at_us >= options_.cooldown_us) {
      // Half-open: admit one probe and restart the window, so at most one
      // request per cooldown reaches execution while the class is open —
      // and a probe that never reports back cannot wedge the breaker.
      cs.opened_at_us = now_us;
      continue;
    }
    return Status::Overloaded(
        std::string("circuit breaker open (") +
        ClassName(static_cast<FailureClass>(i)) + ")");
  }
  return Status::OK();
}

void CircuitBreaker::OnResult(const Status& s, int64_t now_us) {
  FailureClass c;
  std::lock_guard<std::mutex> lock(mu_);
  if (!Classify(s, &c)) {
    // A healthy execution: the service is serving again — close every
    // breaker and forget the streaks.
    for (ClassState& cs : classes_) {
      cs.consecutive_failures = 0;
      cs.open = false;
    }
    return;
  }
  ClassState& cs = classes_[static_cast<size_t>(c)];
  ++cs.consecutive_failures;
  if (!cs.open && cs.consecutive_failures >= options_.trip_threshold) {
    cs.open = true;
    cs.opened_at_us = now_us;
    ++trips_;
  } else if (cs.open) {
    // A failed probe re-opens the cooldown window from now.
    cs.opened_at_us = now_us;
  }
}

bool CircuitBreaker::IsOpen(FailureClass c, int64_t now_us) {
  (void)now_us;
  std::lock_guard<std::mutex> lock(mu_);
  return classes_[static_cast<size_t>(c)].open;
}

}  // namespace ccam
