#ifndef CCAM_SERVE_SCHEDULER_H_
#define CCAM_SERVE_SCHEDULER_H_

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "src/serve/request.h"
#include "src/storage/page.h"

namespace ccam {
namespace serve {

/// One queued request, annotated with its region (the data page of its
/// origin node) and its enqueue timestamp for queue-wait accounting.
struct QueuedRequest {
  ServeRequest request;
  ServeTicketPtr ticket;
  PageId region = kInvalidPageId;
  uint64_t enqueue_us = 0;
};

/// Deficit-round-robin fair scheduler with region-batched dequeue. Each
/// worker of the query service owns one instance (guarded by the worker's
/// lock); requests are kept in per-tenant FIFO queues and served in DRR
/// order: tenants take turns, each turn adds `quantum` to the tenant's
/// deficit, and a tenant may start one batch per unit of deficit. A tenant
/// flooding its queue therefore cannot crowd out others — it just deepens
/// its own backlog — while an idle tenant carries no deficit (deficits
/// reset when a tenant's queue drains, the classic DRR rule that prevents
/// saved-up bursts).
///
/// Dequeue is region-batched: PopBatch picks the next request by DRR,
/// then greedily gathers more queued requests for the *same region* — from
/// the same tenant first, then from every other active tenant — up to the
/// batch cap. Cross-tenant fills are charged to their own tenant's deficit
/// (which may go briefly negative; the tenant is then skipped on its next
/// turns until quantum accrual catches up), so opportunistic batching
/// shifts *when* a tenant's requests run, never *how many* run per round.
class DrrScheduler {
 public:
  /// `quantum` = requests a tenant may start per DRR turn.
  explicit DrrScheduler(uint32_t quantum = 8)
      : quantum_(quantum > 0 ? quantum : 1) {}

  void Enqueue(QueuedRequest item);

  /// Pops the next DRR-selected request plus up to `max_batch - 1` more
  /// requests of the same region into `out`. Returns the number popped
  /// (0 = scheduler empty). All popped items share one region.
  size_t PopBatch(size_t max_batch, std::vector<QueuedRequest>* out);

  /// Pops up to `max` additional queued requests of region `region` into
  /// `out`, charging deficits as PopBatch does. The batching-window path
  /// uses this to top up a batch that waited for more same-region work.
  size_t PopSameRegion(PageId region, size_t max,
                       std::vector<QueuedRequest>* out);

  /// Pops every queued request (shutdown cancellation path).
  void DrainAll(std::vector<QueuedRequest>* out);

  size_t depth() const { return depth_; }
  bool empty() const { return depth_ == 0; }

  /// Queued requests of one tenant (tests).
  size_t TenantDepth(uint32_t tenant) const;

 private:
  struct TenantQueue {
    std::deque<QueuedRequest> items;
    int64_t deficit = 0;
    bool in_ring = false;
  };

  /// Advances the DRR ring until a tenant with work and deficit >= 1 is
  /// found, adding quantum on each first visit. Returns nullptr when no
  /// tenant can be served (scheduler empty).
  TenantQueue* NextEligibleTenant();

  /// Removes drained tenants from the ring and resets their deficit.
  void CompactRing();

  uint32_t quantum_;
  size_t depth_ = 0;
  std::unordered_map<uint32_t, TenantQueue> tenants_;
  std::vector<uint32_t> ring_;  // active tenants, round-robin order
  size_t cursor_ = 0;
  /// True while the cursor tenant is mid-turn: quantum is added once per
  /// turn (on arrival), not once per PopBatch call.
  bool turn_started_ = false;
};

}  // namespace serve
}  // namespace ccam

#endif  // CCAM_SERVE_SCHEDULER_H_
