#ifndef CCAM_SERVE_CIRCUIT_BREAKER_H_
#define CCAM_SERVE_CIRCUIT_BREAKER_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <string>

#include "src/common/status.h"

namespace ccam {

/// Per-failure-class circuit breaker for the serving layer. Each class
/// tracks consecutive failures; when a class reaches its trip threshold
/// the breaker *opens* for that class and admission sheds matching traffic
/// with a typed Overloaded rejection — a storage device returning errors
/// on every read should cost one rejection per request, not a queued
/// execution that fails the same way. After `cooldown_us` the breaker
/// goes *half-open*: one probe request per cooldown window is admitted; a
/// healthy execution closes the breaker, a classified failure restarts
/// the window. (Granting a probe restarts the window too, so a probe that
/// never reports — cancelled at shutdown — cannot wedge the breaker.)
///
/// Classes (failures elsewhere — NotFound, InvalidArgument — are request
/// errors, not service health, and never trip anything):
///   kIo         <- IOError / ShortRead (transport-level read failures)
///   kCorruption <- Corruption / Quarantined (data damage)
///   kDeadline   <- DeadlineExceeded (the service can't meet its budgets)
///
/// Thread safety: all methods are safe from any thread; one leaf-level
/// mutex, never held across I/O or another lock.
class CircuitBreaker {
 public:
  enum class FailureClass { kIo = 0, kCorruption = 1, kDeadline = 2 };
  static constexpr size_t kNumClasses = 3;

  struct Options {
    /// Consecutive failures of one class that open its breaker.
    uint64_t trip_threshold = 8;
    /// Microseconds an open breaker sheds load before probing again.
    int64_t cooldown_us = 50000;
  };

  explicit CircuitBreaker(const Options& options) : options_(options) {}
  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  /// Classifies a status, or returns false for statuses that are not
  /// service-health signals.
  static bool Classify(const Status& s, FailureClass* out);

  static const char* ClassName(FailureClass c);

  /// Admission check at `now_us`: OK to proceed, or a typed Overloaded
  /// status naming the open class. In the half-open state exactly one
  /// caller per cooldown window gets through as the probe.
  Status Allow(int64_t now_us);

  /// Reports the outcome of an executed request. OK (and statuses outside
  /// every class) reset all consecutive-failure counts and close any
  /// half-open breaker; a classified failure bumps its class and may trip.
  void OnResult(const Status& s, int64_t now_us);

  /// True if the class's breaker is currently open (test/metrics view).
  bool IsOpen(FailureClass c, int64_t now_us);

  /// Number of times any class tripped open (test/metrics view).
  uint64_t trip_count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return trips_;
  }

 private:
  struct ClassState {
    uint64_t consecutive_failures = 0;
    bool open = false;
    /// Start of the current cooldown window (trip, failed probe, or the
    /// grant of the previous probe — whichever came last).
    int64_t opened_at_us = 0;
  };

  Options options_;
  mutable std::mutex mu_;
  std::array<ClassState, kNumClasses> classes_;
  uint64_t trips_ = 0;
};

}  // namespace ccam

#endif  // CCAM_SERVE_CIRCUIT_BREAKER_H_
