#include "src/serve/admission.h"

namespace ccam {
namespace serve {

AdmissionController::AdmissionController(const Options& options)
    : options_(options) {
  if (options_.max_tenant_depth == 0) {
    options_.max_tenant_depth = options_.max_queue_depth / 4;
    if (options_.max_tenant_depth == 0) options_.max_tenant_depth = 1;
  }
  if (options_.tenant_burst <= 0.0) {
    options_.tenant_burst = options_.tenant_rate;
  }
}

Status AdmissionController::Admit(uint32_t tenant, uint64_t now_us,
                                  RejectGate* gate) {
  if (gate != nullptr) *gate = RejectGate::kNone;
  if (queue_depth_ >= options_.max_queue_depth) {
    if (gate != nullptr) *gate = RejectGate::kQueueFull;
    return Status::Overloaded("request queue full (" +
                              std::to_string(queue_depth_) + " queued)");
  }
  auto depth = tenant_depth_.find(tenant);
  if (depth != tenant_depth_.end() &&
      depth->second >= options_.max_tenant_depth) {
    if (gate != nullptr) *gate = RejectGate::kTenantDepth;
    return Status::Overloaded("tenant " + std::to_string(tenant) +
                              " queue allowance exhausted (" +
                              std::to_string(depth->second) + " queued)");
  }
  if (options_.tenant_rate > 0.0) {
    auto [bucket, inserted] = buckets_.try_emplace(
        tenant, options_.tenant_rate, options_.tenant_burst);
    (void)inserted;
    if (!bucket->second.TryAcquire(now_us)) {
      if (gate != nullptr) *gate = RejectGate::kRateLimit;
      return Status::Overloaded("tenant " + std::to_string(tenant) +
                                " over rate limit");
    }
  }
  return Status::OK();
}

void AdmissionController::OnEnqueue(uint32_t tenant) {
  ++queue_depth_;
  ++tenant_depth_[tenant];
}

void AdmissionController::OnDequeue(uint32_t tenant) {
  --queue_depth_;
  auto it = tenant_depth_.find(tenant);
  if (it != tenant_depth_.end() && it->second > 0) --it->second;
}

size_t AdmissionController::TenantDepth(uint32_t tenant) const {
  auto it = tenant_depth_.find(tenant);
  return it == tenant_depth_.end() ? 0 : it->second;
}

}  // namespace serve
}  // namespace ccam
