#include "src/serve/loadgen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>
#include <unordered_map>
#include <utility>

#include "src/common/random.h"

namespace ccam {
namespace serve {

namespace {

/// Zipf(theta) sampler over ranks [0, n): P(rank i) ~ 1/(i+1)^theta.
/// Precomputes the CDF once; sampling is a binary search.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double theta) : cdf_(n) {
    double sum = 0.0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      cdf_[i] = sum;
    }
    for (size_t i = 0; i < n; ++i) cdf_[i] /= sum;
  }

  size_t Sample(Random* rng) const {
    double u = rng->NextDouble();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    return it == cdf_.end() ? cdf_.size() - 1
                            : static_cast<size_t>(it - cdf_.begin());
  }

 private:
  std::vector<double> cdf_;
};

uint64_t NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

std::vector<ServeRequest> BuildRequestPool(NetworkFile* file,
                                           const LoadgenOptions& options) {
  std::vector<ServeRequest> pool;
  const NodePageMap& page_of = file->PageMap();
  if (page_of.empty() || options.pool_size == 0) return pool;

  // Invert node->page and pull the stored adjacency once, so walk
  // generation below is pure in-memory work.
  std::unordered_map<PageId, std::vector<NodeId>> nodes_on_page;
  std::unordered_map<NodeId, std::vector<NodeId>> successors;
  std::vector<PageId> pages;
  for (const auto& [node, page] : page_of) {
    auto [it, inserted] = nodes_on_page.try_emplace(page);
    if (inserted) pages.push_back(page);
    it->second.push_back(node);
    auto recs = file->GetSuccessors(node);
    if (recs.ok()) {
      auto& succ = successors[node];
      succ.reserve(recs.value().size());
      for (const NodeRecord& rec : recs.value()) succ.push_back(rec.id);
    }
  }
  // Deterministic iteration order regardless of hash-map layout.
  std::sort(pages.begin(), pages.end());
  for (auto& [page, nodes] : nodes_on_page) {
    (void)page;
    std::sort(nodes.begin(), nodes.end());
  }

  Random rng(options.seed);
  // Shuffle which pages are "hot" so the skew does not trivially follow
  // page-id order (which correlates with creation order).
  rng.Shuffle(&pages);
  ZipfSampler zipf(pages.size(), options.zipf_theta);

  const bool has_hierarchy = file->HasHierarchy();
  const double w_route = std::max(0.0, options.w_route_eval);
  const double w_astar = std::max(0.0, options.w_astar);
  const double w_agg = std::max(0.0, options.w_aggregate);
  const double w_hier = has_hierarchy ? std::max(0.0, options.w_hierarchy) : 0;
  double w_total = w_route + w_astar + w_agg + w_hier;
  if (w_total <= 0.0) w_total = 1.0;

  pool.reserve(options.pool_size);
  for (size_t i = 0; i < options.pool_size; ++i) {
    const std::vector<NodeId>& nodes = nodes_on_page[pages[zipf.Sample(&rng)]];
    NodeId origin = nodes[rng.Uniform(static_cast<uint32_t>(nodes.size()))];

    // Random walk from the origin (no immediate backtracking when another
    // successor exists); may end early at a dead end.
    std::vector<NodeId> walk{origin};
    NodeId prev = kInvalidNodeId;
    while (walk.size() < static_cast<size_t>(options.route_hops) + 1) {
      const std::vector<NodeId>& succ = successors[walk.back()];
      if (succ.empty()) break;
      NodeId next = succ[rng.Uniform(static_cast<uint32_t>(succ.size()))];
      if (next == prev && succ.size() > 1) {
        next = succ[rng.Uniform(static_cast<uint32_t>(succ.size()))];
        if (next == prev) break;  // twice unlucky: accept the short walk
      }
      prev = walk.back();
      walk.push_back(next);
    }

    ServeRequest request;
    request.tenant = rng.Uniform(options.tenants > 0 ? options.tenants : 1);
    request.user = (static_cast<uint64_t>(rng.Next()) << 32 | rng.Next()) %
                   (options.users > 0 ? options.users : 1);
    double pick = rng.NextDouble() * w_total;
    if ((pick -= w_route) < 0.0 || walk.size() < 2) {
      request.op = ServeOp::kRouteEval;
      request.route.nodes = walk;
    } else if ((pick -= w_astar) < 0.0) {
      request.op = ServeOp::kAStar;
      request.route.nodes = {walk.front(), walk.back()};
    } else if ((pick -= w_agg) < 0.0) {
      request.op = ServeOp::kAggregate;
      request.unit.name = "unit-" + std::to_string(i);
      for (size_t k = 0; k + 1 < walk.size(); ++k) {
        request.unit.edges.emplace_back(walk[k], walk[k + 1]);
      }
    } else {
      request.op = ServeOp::kHierarchy;
      request.route.nodes = {walk.front(), walk.back()};
    }
    pool.push_back(std::move(request));
  }
  return pool;
}

LoadReport RunLoad(QueryService* service, NetworkFile* file,
                   const std::vector<ServeRequest>& pool,
                   const LoadgenOptions& options) {
  LoadReport report;
  if (pool.empty()) return report;

  const IoStats disk_before = file->DataIoStats();
  const uint64_t hits_before = file->buffer_pool()->hits();
  const uint64_t misses_before = file->buffer_pool()->misses();
  const IoStats session_before = service->TotalSessionIoStats();

  struct Issued {
    ServeTicketPtr ticket;
    uint64_t submit_us;
  };
  std::vector<Issued> issued;
  issued.reserve(static_cast<size_t>(options.offered_qps *
                                     options.duration_sec * 1.2) +
                 16);

  // Open loop: exponential inter-arrival times at the offered rate; when
  // the submitter falls behind schedule it submits immediately rather than
  // thinning the arrivals (the backlog is the service's problem).
  Random rng(options.seed ^ 0x9e3779b97f4a7c15ULL);
  const double rate =
      options.offered_qps > 0.0 ? options.offered_qps : 1000.0;
  const uint64_t start_us = NowMicros();
  const uint64_t end_us =
      start_us + static_cast<uint64_t>(options.duration_sec * 1e6);
  double next_us = static_cast<double>(start_us);
  size_t cursor = 0;
  for (;;) {
    const uint64_t now = NowMicros();
    if (now >= end_us) break;
    if (static_cast<double>(now) < next_us) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          static_cast<uint64_t>(next_us - static_cast<double>(now))));
    }
    const uint64_t submit_us = NowMicros();
    if (submit_us >= end_us) break;
    ServeRequest request = pool[cursor % pool.size()];
    if (options.deadline_budget_us != 0) {
      request.deadline_us =
          static_cast<int64_t>(submit_us + options.deadline_budget_us);
    }
    issued.push_back({service->Submit(std::move(request)), submit_us});
    ++cursor;
    double u = rng.NextDouble();
    if (u <= 0.0) u = 1e-12;
    next_us += -std::log(u) * 1e6 / rate;
  }

  // Wait out every ticket, then measure exact end-to-end latencies from
  // the service-stamped completion times (same steady clock as submit_us).
  std::vector<uint64_t> latencies;
  latencies.reserve(issued.size());
  double occupancy_sum = 0.0;
  uint64_t batched = 0;
  uint64_t last_done_us = start_us;
  for (const Issued& entry : issued) {
    const ServeResponse& response = entry.ticket->Wait();
    if (response.status.IsOverloaded()) {
      ++report.rejected;
      continue;
    }
    if (response.status.IsDeadlineExceeded()) {
      // A missed budget is not a completion and not an admission
      // rejection: count it separately and keep it out of the latency
      // percentiles, which are defined over completed requests.
      ++report.deadline_failures;
      continue;
    }
    ++report.completed;
    latencies.push_back(response.done_us > entry.submit_us
                            ? response.done_us - entry.submit_us
                            : 0);
    occupancy_sum += response.batch_size;
    if (response.batch_size > 1) ++batched;
    if (response.done_us > last_done_us) last_done_us = response.done_us;
  }

  report.submitted = issued.size();
  report.elapsed_sec =
      static_cast<double>(last_done_us - start_us) * 1e-6;
  if (report.elapsed_sec <= 0.0) report.elapsed_sec = 1e-9;
  report.qps = static_cast<double>(report.completed) / report.elapsed_sec;
  report.reject_rate = report.submitted == 0
                           ? 0.0
                           : static_cast<double>(report.rejected) /
                                 static_cast<double>(report.submitted);
  if (!latencies.empty()) {
    std::sort(latencies.begin(), latencies.end());
    auto pct = [&](double p) {
      size_t idx = static_cast<size_t>(p * static_cast<double>(
                                               latencies.size() - 1));
      return latencies[idx];
    };
    report.p50_us = pct(0.50);
    report.p95_us = pct(0.95);
    report.p99_us = pct(0.99);
    double sum = 0.0;
    for (uint64_t v : latencies) sum += static_cast<double>(v);
    report.mean_latency_us = sum / static_cast<double>(latencies.size());
  }
  if (report.completed > 0) {
    report.mean_batch_occupancy =
        occupancy_sum / static_cast<double>(report.completed);
    report.batched_fraction = static_cast<double>(batched) /
                              static_cast<double>(report.completed);
  }

  const IoStats disk_after = file->DataIoStats();
  const IoStats session_after = service->TotalSessionIoStats();
  report.disk_reads = (disk_after - disk_before).reads;
  report.session_reads = (session_after - session_before).reads;
  report.conserved = report.disk_reads == report.session_reads;
  const uint64_t hits = file->buffer_pool()->hits() - hits_before;
  const uint64_t misses = file->buffer_pool()->misses() - misses_before;
  report.hit_rate = hits + misses == 0
                        ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(hits + misses);
  return report;
}

}  // namespace serve
}  // namespace ccam
