#ifndef CCAM_SERVE_LOADGEN_H_
#define CCAM_SERVE_LOADGEN_H_

#include <cstdint>
#include <vector>

#include "src/core/network_file.h"
#include "src/serve/query_service.h"
#include "src/serve/request.h"

namespace ccam {
namespace serve {

/// Workload shape for the open-loop load generator (bench/serve_load, the
/// ccam_cli `serve` subcommand, and the serving tests all drive the
/// service through this one implementation).
struct LoadgenOptions {
  /// Paying tenants; requests pick one uniformly.
  uint32_t tenants = 4;
  /// Simulated end-user population (request.user is sampled from it).
  uint64_t users = 1000000;
  /// Aggregate offered arrival rate, requests/second (open loop: arrivals
  /// do not slow down when the service backs up — that is what the
  /// admission controller is for).
  double offered_qps = 2000.0;
  /// Run length in seconds.
  double duration_sec = 2.0;
  /// Hot-spot skew: requests' origin pages follow a zipf(theta) over the
  /// file's data pages (0 = uniform). The IVHS story: everyone asks about
  /// the same downtown interchanges at rush hour.
  double zipf_theta = 0.9;
  /// Route length (nodes) for route-eval walks; OD searches and
  /// aggregates derive from the same walks.
  int route_hops = 8;
  /// Operation mix, by weight (need not sum to 1).
  double w_route_eval = 0.5;
  double w_astar = 0.2;
  double w_aggregate = 0.2;
  /// Used only when the file has a valid hierarchy overlay.
  double w_hierarchy = 0.1;
  /// Distinct precomputed requests to cycle through.
  size_t pool_size = 4096;
  uint64_t seed = 42;
  /// Per-request deadline budget in microseconds; each submitted request
  /// carries deadline = submit time + budget. 0 (the default) submits
  /// deadline-free traffic — the zero-overhead idle path.
  uint64_t deadline_budget_us = 0;
};

/// What one load run measured. Latency percentiles are client-observed
/// end-to-end (submit to completion, exact — not histogram buckets) over
/// completed requests only; rejected requests count into reject_rate.
struct LoadReport {
  uint64_t submitted = 0;
  uint64_t completed = 0;
  uint64_t rejected = 0;
  double elapsed_sec = 0.0;
  double qps = 0.0;  // completed / elapsed
  double reject_rate = 0.0;
  uint64_t p50_us = 0;
  uint64_t p95_us = 0;
  uint64_t p99_us = 0;
  double mean_latency_us = 0.0;
  /// Mean region-batch occupancy over completed requests, and the
  /// fraction that shared a batch with at least one other request.
  double mean_batch_occupancy = 0.0;
  double batched_fraction = 0.0;
  /// Accounting over the run: data-page reads charged to the workers'
  /// sessions, the file's global disk-read delta, and whether they agree
  /// (the paper's conservation invariant, extended to the service).
  uint64_t session_reads = 0;
  uint64_t disk_reads = 0;
  bool conserved = false;
  /// Data buffer pool hit rate over the run.
  double hit_rate = 0.0;
  /// Requests that missed their deadline (shed at admission or dequeue,
  /// or expired mid-execution). Only populated when deadline_budget_us
  /// is nonzero; excluded from completed/latency accounting.
  uint64_t deadline_failures = 0;
};

/// Builds `options.pool_size` requests whose origins follow the zipf
/// hot-spot skew over the file's data pages. Routes are random walks over
/// the stored adjacency (so route-eval and aggregate requests are valid by
/// construction); OD searches use each walk's endpoints. Reads the file
/// single-threaded — call before starting the service and snapshot I/O
/// counters afterwards.
std::vector<ServeRequest> BuildRequestPool(NetworkFile* file,
                                           const LoadgenOptions& options);

/// Runs one open-loop load: submits `pool` requests round-robin with
/// exponential inter-arrival times at `options.offered_qps` for
/// `options.duration_sec`, waits for every ticket, and reports. The
/// service must be freshly constructed over `file` (its sessions' counters
/// start at zero) with no other traffic during the run, or the
/// conservation check is meaningless.
LoadReport RunLoad(QueryService* service, NetworkFile* file,
                   const std::vector<ServeRequest>& pool,
                   const LoadgenOptions& options);

}  // namespace serve
}  // namespace ccam

#endif  // CCAM_SERVE_LOADGEN_H_
