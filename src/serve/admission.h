#ifndef CCAM_SERVE_ADMISSION_H_
#define CCAM_SERVE_ADMISSION_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "src/common/status.h"

namespace ccam {
namespace serve {

/// Classic token bucket: `rate` tokens per second accrue continuously up
/// to a cap of `burst`; a request consumes one token or is refused. Time
/// is passed in explicitly (microseconds on any monotonic scale), which
/// keeps the arithmetic deterministic and unit-testable without sleeping.
///
/// The ledger is integer micro-tokens (1 token = 10^6 micro-tokens) with
/// an explicit sub-micro-token carry: each refill accrues
/// `rate_micro_per_sec * dt_us + carry` and keeps the remainder modulo
/// 10^6 for the next refill, so no fraction of a token is ever truncated
/// away — over any horizon the admitted count is exactly
/// floor(rate * elapsed) + initial burst, drift-free at high rates and
/// fine ticks alike. The burst capacity is floored at one token: a cap
/// below the cost of a single request could otherwise never admit
/// anything (the default burst is `rate` seconds' worth, so sub-1-qps
/// tenants used to starve permanently).
///
/// Not thread-safe: the admission controller serializes access.
class TokenBucket {
 public:
  /// Micro-tokens per token: the ledger's fixed-point scale.
  static constexpr uint64_t kScale = 1'000'000;

  /// `rate` <= 0 disables limiting (TryAcquire always succeeds).
  TokenBucket(double rate, double burst)
      : rate_upus_(rate <= 0.0 ? 0
                               : static_cast<uint64_t>(rate * 1e6 + 0.5)),
        capacity_u_(burst <= 1.0
                        ? kScale
                        : static_cast<uint64_t>(burst * kScale + 0.5)),
        tokens_u_(capacity_u_) {}

  /// Consumes one token accrued by `now_us` if available.
  bool TryAcquire(uint64_t now_us) {
    if (rate_upus_ == 0) return true;
    if (now_us > last_us_) {
      // rate_upus_ is micro-tokens per second; dt is microseconds. The
      // product is micro-token-microseconds, divided down by 10^6 with
      // the remainder carried — never truncated — into the next refill.
      unsigned __int128 accrued =
          static_cast<unsigned __int128>(rate_upus_) * (now_us - last_us_) +
          carry_upus_;
      unsigned __int128 whole = accrued / kScale;
      if (whole >= capacity_u_ - tokens_u_) {
        tokens_u_ = capacity_u_;  // full bucket forfeits the remainder
        carry_upus_ = 0;
      } else {
        tokens_u_ += static_cast<uint64_t>(whole);
        carry_upus_ = static_cast<uint64_t>(accrued % kScale);
      }
      last_us_ = now_us;
    }
    if (tokens_u_ < kScale) return false;
    tokens_u_ -= kScale;
    return true;
  }

  /// Whole-token view of the ledger (tests, introspection).
  double tokens() const {
    return static_cast<double>(tokens_u_) / static_cast<double>(kScale);
  }

 private:
  uint64_t rate_upus_;    // micro-tokens accrued per second; 0 = unlimited
  uint64_t capacity_u_;   // burst cap in micro-tokens, >= one token
  uint64_t tokens_u_;     // current balance in micro-tokens
  uint64_t carry_upus_ = 0;  // sub-micro-token remainder of the last refill
  uint64_t last_us_ = 0;
};

/// Per-tenant admission policy of the query service, applied on the submit
/// path before a request may enter the bounded queue. Three independent
/// gates, each with a typed Overloaded rejection:
///
///  * global queue depth   — the service's total backlog is bounded;
///  * per-tenant depth     — one tenant may only occupy a fraction of the
///                           queue, so a flooding tenant exhausts its own
///                           allowance while others keep being admitted
///                           (the anti-starvation half of fairness; the
///                           DRR scheduler is the service-order half);
///  * per-tenant rate      — a token bucket smoothing each tenant to its
///                           contracted request rate with bounded burst.
///
/// Not thread-safe: the service calls Admit under its submit lock.
class AdmissionController {
 public:
  struct Options {
    /// Total queued-but-unexecuted requests across all tenants.
    size_t max_queue_depth = 1024;
    /// Queued requests any single tenant may hold. 0 = a quarter of
    /// max_queue_depth (so three misbehaving tenants still cannot squeeze
    /// a fourth out of the queue entirely).
    size_t max_tenant_depth = 0;
    /// Token-bucket rate per tenant in requests/second; <= 0 disables.
    double tenant_rate = 0.0;
    /// Token-bucket burst capacity; <= 0 defaults to tenant_rate (one
    /// second of burst).
    double tenant_burst = 0.0;
  };

  /// Which gate refused an arrival (for the service's rejection metrics).
  enum class RejectGate { kNone, kQueueFull, kTenantDepth, kRateLimit };

  explicit AdmissionController(const Options& options);

  /// Decides one arrival from `tenant` at monotonic time `now_us`. OK
  /// admits (the caller must then Enqueue/Dequeue-account below);
  /// otherwise a typed Overloaded status names the exhausted gate (and
  /// `gate`, when given, identifies it programmatically).
  Status Admit(uint32_t tenant, uint64_t now_us, RejectGate* gate = nullptr);

  /// Queue-depth accounting hooks, called when an admitted request enters
  /// the scheduler and when it leaves for execution.
  void OnEnqueue(uint32_t tenant);
  void OnDequeue(uint32_t tenant);

  size_t queue_depth() const { return queue_depth_; }
  size_t TenantDepth(uint32_t tenant) const;

 private:
  Options options_;
  size_t queue_depth_ = 0;
  std::unordered_map<uint32_t, size_t> tenant_depth_;
  std::unordered_map<uint32_t, TokenBucket> buckets_;
};

}  // namespace serve
}  // namespace ccam

#endif  // CCAM_SERVE_ADMISSION_H_
