#ifndef CCAM_SERVE_ADMISSION_H_
#define CCAM_SERVE_ADMISSION_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "src/common/status.h"

namespace ccam {
namespace serve {

/// Classic token bucket: `rate` tokens per second accrue continuously up
/// to a cap of `burst`; a request consumes one token or is refused. Time
/// is passed in explicitly (microseconds on any monotonic scale), which
/// keeps the arithmetic deterministic and unit-testable without sleeping.
/// Not thread-safe: the admission controller serializes access.
class TokenBucket {
 public:
  /// `rate` <= 0 disables limiting (TryAcquire always succeeds).
  TokenBucket(double rate, double burst)
      : rate_(rate), burst_(burst > 0 ? burst : 1.0), tokens_(burst_) {}

  /// Consumes one token accrued by `now_us` if available.
  bool TryAcquire(uint64_t now_us) {
    if (rate_ <= 0.0) return true;
    if (now_us > last_us_) {
      tokens_ += rate_ * static_cast<double>(now_us - last_us_) * 1e-6;
      if (tokens_ > burst_) tokens_ = burst_;
      last_us_ = now_us;
    }
    if (tokens_ < 1.0) return false;
    tokens_ -= 1.0;
    return true;
  }

  double tokens() const { return tokens_; }

 private:
  double rate_;
  double burst_;
  double tokens_;
  uint64_t last_us_ = 0;
};

/// Per-tenant admission policy of the query service, applied on the submit
/// path before a request may enter the bounded queue. Three independent
/// gates, each with a typed Overloaded rejection:
///
///  * global queue depth   — the service's total backlog is bounded;
///  * per-tenant depth     — one tenant may only occupy a fraction of the
///                           queue, so a flooding tenant exhausts its own
///                           allowance while others keep being admitted
///                           (the anti-starvation half of fairness; the
///                           DRR scheduler is the service-order half);
///  * per-tenant rate      — a token bucket smoothing each tenant to its
///                           contracted request rate with bounded burst.
///
/// Not thread-safe: the service calls Admit under its submit lock.
class AdmissionController {
 public:
  struct Options {
    /// Total queued-but-unexecuted requests across all tenants.
    size_t max_queue_depth = 1024;
    /// Queued requests any single tenant may hold. 0 = a quarter of
    /// max_queue_depth (so three misbehaving tenants still cannot squeeze
    /// a fourth out of the queue entirely).
    size_t max_tenant_depth = 0;
    /// Token-bucket rate per tenant in requests/second; <= 0 disables.
    double tenant_rate = 0.0;
    /// Token-bucket burst capacity; <= 0 defaults to tenant_rate (one
    /// second of burst).
    double tenant_burst = 0.0;
  };

  /// Which gate refused an arrival (for the service's rejection metrics).
  enum class RejectGate { kNone, kQueueFull, kTenantDepth, kRateLimit };

  explicit AdmissionController(const Options& options);

  /// Decides one arrival from `tenant` at monotonic time `now_us`. OK
  /// admits (the caller must then Enqueue/Dequeue-account below);
  /// otherwise a typed Overloaded status names the exhausted gate (and
  /// `gate`, when given, identifies it programmatically).
  Status Admit(uint32_t tenant, uint64_t now_us, RejectGate* gate = nullptr);

  /// Queue-depth accounting hooks, called when an admitted request enters
  /// the scheduler and when it leaves for execution.
  void OnEnqueue(uint32_t tenant);
  void OnDequeue(uint32_t tenant);

  size_t queue_depth() const { return queue_depth_; }
  size_t TenantDepth(uint32_t tenant) const;

 private:
  Options options_;
  size_t queue_depth_ = 0;
  std::unordered_map<uint32_t, size_t> tenant_depth_;
  std::unordered_map<uint32_t, TokenBucket> buckets_;
};

}  // namespace serve
}  // namespace ccam

#endif  // CCAM_SERVE_ADMISSION_H_
