#ifndef CCAM_SERVE_QUERY_SERVICE_H_
#define CCAM_SERVE_QUERY_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/random.h"
#include "src/common/request_context.h"
#include "src/common/thread_pool.h"
#include "src/core/network_file.h"
#include "src/core/query_session.h"
#include "src/storage/snapshot_manager.h"
#include "src/serve/admission.h"
#include "src/serve/circuit_breaker.h"
#include "src/serve/request.h"
#include "src/serve/scheduler.h"

namespace ccam {
namespace serve {

/// Tuning knobs of the query service.
struct QueryServiceOptions {
  /// Worker threads, each owning one QuerySession. 0 = the data buffer
  /// pool's shard count (one worker per pool shard, the natural affinity
  /// grain), floored at 1.
  int num_workers = 0;
  /// Admission control (see AdmissionController::Options).
  size_t max_queue_depth = 1024;
  size_t max_tenant_depth = 0;
  double tenant_rate = 0.0;
  double tenant_burst = 0.0;
  /// DRR quantum: requests one tenant may start per scheduling turn.
  uint32_t drr_quantum = 8;
  /// Region batching: the largest number of same-region requests one
  /// worker executes off a single page pin. 1 disables grouping.
  size_t max_batch = 16;
  /// How long a worker may hold an underfull batch open waiting for more
  /// same-region arrivals. 0 (the default) makes batching purely
  /// opportunistic — only requests already queued join a batch — so low
  /// loads pay no added latency and p99 tracks the unbatched path.
  uint32_t batch_window_us = 0;
  /// Master switch for region-batched execution. Off = every request is
  /// dispatched and executed alone (the baseline the serve_load bench
  /// compares against).
  bool region_batching = true;
  /// Dispatch requests to the worker owning their origin page (true), or
  /// spray them round-robin (false, the affinity-free baseline).
  bool region_affinity = true;
  /// Total execution attempts per request for retryable failures (IOError
  /// / ShortRead — transient transport faults). 1 (the default) disables
  /// retries; larger values re-execute a failed request individually with
  /// jittered backoff, skipping the retry when the request's deadline
  /// passed or the service is stopping. Deterministic failures
  /// (Corruption, Quarantined) and lifecycle statuses are never retried.
  int retry_max_attempts = 1;
  /// Upper bound of the jittered backoff before each retry attempt; the
  /// k-th retry sleeps uniform(0, k * retry_backoff_us].
  uint32_t retry_backoff_us = 200;
  /// Circuit breaker: consecutive same-class failures (I/O, corruption,
  /// deadline — see CircuitBreaker) that trip admission into shedding
  /// matching load with typed Overloaded rejections. 0 (the default)
  /// disables the breaker entirely.
  uint64_t breaker_trip_threshold = 0;
  /// Microseconds an open breaker sheds before admitting a probe.
  int64_t breaker_cooldown_us = 50000;
  /// Seed of the retry-backoff jitter streams.
  uint64_t seed = 42;
};

/// Multi-tenant serving front end over one read-only NetworkFile — the
/// scaling step after the concurrent read path: where QuerySession made
/// many threads *correct*, the service makes many *clients* efficient by
/// exploiting CCAM's clustering across concurrent queries, so one hot
/// page fetch serves many requests.
///
/// Pipeline: Submit() stamps the request's region (the data page of its
/// origin node, i.e. its connectivity cluster), passes per-tenant
/// admission control (token-bucket rate limit, bounded global and
/// per-tenant queue depth — rejections are typed Overloaded), and enqueues
/// it with the worker that owns the region (region % workers, mirroring
/// the buffer pool's page->shard map). Each worker drains its own
/// deficit-round-robin scheduler: it pops the next tenant's request plus
/// every queued request touching the same region (up to max_batch), pins
/// the region's page once through its session, and executes the batch
/// through the drivers' batch entry points — so the page fetch that the
/// first request pays is a buffer hit for the rest.
///
/// Accounting: all reads go through the workers' QuerySessions, so the
/// paper's conservation invariant extends to the whole service — the sum
/// of the workers' per-session IoStats equals the file's global disk
/// reads (TotalSessionIoStats; verified by tests/serve_test.cc).
///
/// Thread safety: Submit is safe from any number of client threads.
/// Construction, SetMetrics, Shutdown and the stats accessors follow the
/// usual quiescence rules (SetMetrics before serving; stats after
/// Shutdown or from the owning thread).
class QueryService {
 public:
  QueryService(NetworkFile* file, const QueryServiceOptions& options);

  /// Serves a snapshot store instead of a single file: each worker owns a
  /// SnapshotSession pinned to one published version, refreshed only at
  /// batch boundaries — an in-flight batch keeps its version (and its page
  /// pins) across a concurrent swap, which is exactly the session-drain
  /// contract the reorganizer's retirement waits on. Regions are stamped
  /// via SnapshotManager::RegionOf against the version current at submit
  /// time; a request executed after a swap may pin a page id from the
  /// older layout, which degrades only batching affinity, never results.
  /// Mutations and background reorganizations may run concurrently with
  /// serving.
  QueryService(SnapshotManager* manager, const QueryServiceOptions& options);

  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Submits one request; never blocks on execution. The returned ticket
  /// completes with the query's response — or immediately with a typed
  /// Overloaded status when admission control refuses it (queue full,
  /// tenant over rate/depth allowance, or service shutting down).
  ServeTicketPtr Submit(ServeRequest request);

  /// Stops the service. `drain` = true executes everything already
  /// queued before returning; false cancels queued-but-unstarted requests
  /// (their tickets complete with Overloaded("cancelled: ...")). Either
  /// way no new request is accepted once Shutdown begins, in-flight
  /// batches run to completion, and every ever-issued ticket is complete
  /// when Shutdown returns. Idempotent; the destructor drains.
  void Shutdown(bool drain = true);

  /// Attaches the "serve.*" metric family (null detaches). Call while
  /// quiescent, like every other SetMetrics in the stack; the handles are
  /// cached so a detached service pays one null test per event.
  void SetMetrics(MetricsRegistry* metrics);

  /// Sum of the worker sessions' data-page IoStats. With every read going
  /// through the sessions, this equals the file's global disk-read delta
  /// over the service's lifetime. Call while quiescent.
  IoStats TotalSessionIoStats() const;
  /// Same for hierarchy-overlay reads.
  IoStats TotalSessionHierarchyIoStats() const;

  /// Monotonic service counters (safe to sample any time).
  struct Stats {
    uint64_t submitted = 0;
    uint64_t admitted = 0;
    uint64_t rejected = 0;   // refused without execution: admission
                             // rejections, invalid requests, cancellations,
                             // deadline/breaker shedding
    uint64_t completed = 0;  // executed requests (any typed outcome)
    uint64_t batches = 0;    // batches executed (incl. singletons)
    uint64_t batched_requests = 0;  // requests that shared a batch (size>1)
    uint64_t shed_deadline = 0;     // of rejected: expired before execution
    uint64_t shed_breaker = 0;      // of rejected: circuit breaker open
    uint64_t retries = 0;           // re-execution attempts performed
  };
  Stats GetStats() const;

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Current queued-but-unexecuted requests (sampled under the lock).
  size_t queue_depth();

 private:
  struct Worker {
    std::mutex mu;
    std::condition_variable cv;
    DrrScheduler scheduler;
    /// Exactly one of the two is set: `session` against a NetworkFile,
    /// `snap_session` against a SnapshotManager.
    std::unique_ptr<QuerySession> session;
    std::unique_ptr<SnapshotSession> snap_session;
    /// Lifecycle context re-stamped per batch (deadlined subsets execute
    /// under the tightest member deadline) and jitter stream for retry
    /// backoff. Worker-thread-only.
    RequestContext ctx;
    Random rng;
  };

  void StartWorkers(int n);
  void WorkerLoop(Worker* worker);
  void ExecuteBatch(Worker* worker, std::vector<QueuedRequest>* batch);
  /// Executes the requests at `indices` of `batch` through the drivers'
  /// batch entry points, writing each result into `responses`. The
  /// lifecycle context (if any) is already attached to the session.
  void ExecuteOps(AccessMethod* am, std::vector<QueuedRequest>* batch,
                  const std::vector<size_t>& indices,
                  std::vector<ServeResponse>* responses);
  /// Attaches/detaches the worker's RequestContext on its session.
  void SetSessionContext(Worker* worker, RequestContext* ctx);
  void CancelBatch(std::vector<QueuedRequest>* batch, const char* why);
  AccessMethod* SessionOf(Worker* worker) const {
    return worker->session != nullptr
               ? static_cast<AccessMethod*>(worker->session.get())
               : static_cast<AccessMethod*>(worker->snap_session.get());
  }

  /// Microseconds on the steady clock (the service's common time base).
  static uint64_t NowMicros();

  NetworkFile* file_;                   // null in snapshot mode
  SnapshotManager* manager_ = nullptr;  // null in file mode
  QueryServiceOptions options_;

  std::mutex admission_mu_;
  AdmissionController admission_;
  bool accepting_ = true;

  /// Per-failure-class load shedding; non-null iff breaker_trip_threshold
  /// > 0. Leaf-level lock, consulted at admission and fed by executions.
  std::unique_ptr<CircuitBreaker> breaker_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> round_robin_{0};
  /// The worker pool; one long-lived WorkerLoop task per worker.
  std::unique_ptr<ThreadPool> pool_;
  bool shut_down_ = false;

  std::atomic<uint64_t> n_submitted_{0};
  std::atomic<uint64_t> n_admitted_{0};
  std::atomic<uint64_t> n_rejected_{0};
  std::atomic<uint64_t> n_completed_{0};
  std::atomic<uint64_t> n_batches_{0};
  std::atomic<uint64_t> n_batched_requests_{0};
  std::atomic<uint64_t> n_shed_deadline_{0};
  std::atomic<uint64_t> n_shed_breaker_{0};
  std::atomic<uint64_t> n_retries_{0};

  /// Cached "serve.*" metric handles (null = metrics detached).
  MetricCounter* m_submitted_ = nullptr;
  MetricCounter* m_admitted_ = nullptr;
  MetricCounter* m_rejected_queue_ = nullptr;
  MetricCounter* m_rejected_tenant_ = nullptr;
  MetricCounter* m_rejected_rate_ = nullptr;
  MetricCounter* m_rejected_shutdown_ = nullptr;
  MetricCounter* m_completed_ = nullptr;
  MetricCounter* m_batches_ = nullptr;
  MetricCounter* m_batched_requests_ = nullptr;
  MetricCounter* m_shed_deadline_ = nullptr;
  MetricCounter* m_shed_breaker_ = nullptr;
  MetricCounter* m_retries_ = nullptr;
  MetricGauge* g_queue_depth_ = nullptr;
  MetricHistogram* h_queue_wait_us_ = nullptr;
  MetricHistogram* h_exec_us_ = nullptr;
  MetricHistogram* h_latency_us_ = nullptr;
  MetricHistogram* h_batch_occupancy_ = nullptr;
};

}  // namespace serve
}  // namespace ccam

#endif  // CCAM_SERVE_QUERY_SERVICE_H_
