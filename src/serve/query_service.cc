#include "src/serve/query_service.h"

#include <chrono>
#include <thread>
#include <utility>

#include "src/query/aggregate.h"
#include "src/query/hierarchy.h"
#include "src/query/route_eval.h"
#include "src/query/search.h"

namespace ccam {
namespace serve {

const char* ServeOpName(ServeOp op) {
  switch (op) {
    case ServeOp::kRouteEval:
      return "route_eval";
    case ServeOp::kAStar:
      return "astar";
    case ServeOp::kHierarchy:
      return "hierarchy";
    case ServeOp::kAggregate:
      return "aggregate";
  }
  return "unknown";
}

uint64_t QueryService::NowMicros() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

QueryService::QueryService(NetworkFile* file,
                           const QueryServiceOptions& options)
    : file_(file),
      options_(options),
      admission_(AdmissionController::Options{
          options.max_queue_depth, options.max_tenant_depth,
          options.tenant_rate, options.tenant_burst}) {
  int n = options_.num_workers;
  if (n <= 0) n = static_cast<int>(file_->buffer_pool()->num_shards());
  StartWorkers(n);
}

QueryService::QueryService(SnapshotManager* manager,
                           const QueryServiceOptions& options)
    : file_(nullptr),
      manager_(manager),
      options_(options),
      admission_(AdmissionController::Options{
          options.max_queue_depth, options.max_tenant_depth,
          options.tenant_rate, options.tenant_burst}) {
  int n = options_.num_workers;
  if (n <= 0) {
    // Same affinity grain as file mode: one worker per data-pool shard of
    // the (current) version. A throwaway probe session reads the count —
    // it lives and dies on this constructor thread.
    auto probe = manager_->OpenSession();
    n = static_cast<int>(probe->buffer_pool()->num_shards());
  }
  StartWorkers(n);
}

void QueryService::StartWorkers(int n) {
  if (n < 1) n = 1;
  if (options_.max_batch == 0) options_.max_batch = 1;
  if (options_.retry_max_attempts < 1) options_.retry_max_attempts = 1;
  if (options_.breaker_trip_threshold > 0) {
    breaker_ = std::make_unique<CircuitBreaker>(CircuitBreaker::Options{
        options_.breaker_trip_threshold, options_.breaker_cooldown_us});
  }
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    auto w = std::make_unique<Worker>();
    w->scheduler = DrrScheduler(options_.drr_quantum);
    w->rng = Random(options_.seed ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    if (file_ != nullptr) {
      w->session = file_->OpenSession();
    } else {
      w->snap_session = manager_->OpenSession();
    }
    workers_.push_back(std::move(w));
  }
  pool_ = std::make_unique<ThreadPool>(n);
  for (auto& w : workers_) {
    Worker* wp = w.get();
    pool_->Submit([this, wp] { WorkerLoop(wp); });
  }
}

QueryService::~QueryService() { Shutdown(/*drain=*/true); }

void QueryService::SetMetrics(MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    m_submitted_ = m_admitted_ = m_rejected_queue_ = m_rejected_tenant_ =
        m_rejected_rate_ = m_rejected_shutdown_ = m_completed_ = m_batches_ =
            m_batched_requests_ = m_shed_deadline_ = m_shed_breaker_ =
                m_retries_ = nullptr;
    g_queue_depth_ = nullptr;
    h_queue_wait_us_ = h_exec_us_ = h_latency_us_ = h_batch_occupancy_ =
        nullptr;
    return;
  }
  m_submitted_ = metrics->GetCounter("serve.submitted");
  m_admitted_ = metrics->GetCounter("serve.admitted");
  m_rejected_queue_ = metrics->GetCounter("serve.rejected_queue_full");
  m_rejected_tenant_ = metrics->GetCounter("serve.rejected_tenant_depth");
  m_rejected_rate_ = metrics->GetCounter("serve.rejected_rate_limited");
  m_rejected_shutdown_ = metrics->GetCounter("serve.rejected_shutdown");
  m_completed_ = metrics->GetCounter("serve.completed");
  m_batches_ = metrics->GetCounter("serve.batches");
  m_batched_requests_ = metrics->GetCounter("serve.batched_requests");
  m_shed_deadline_ = metrics->GetCounter("serve.shed_deadline");
  m_shed_breaker_ = metrics->GetCounter("serve.shed_breaker");
  m_retries_ = metrics->GetCounter("serve.retries");
  g_queue_depth_ = metrics->GetGauge("serve.queue_depth");
  h_queue_wait_us_ = metrics->GetHistogram("serve.queue_wait_us");
  h_exec_us_ = metrics->GetHistogram("serve.batch_exec_us");
  h_latency_us_ = metrics->GetHistogram("serve.latency_us");
  h_batch_occupancy_ = metrics->GetHistogram("serve.batch_occupancy");
}

ServeTicketPtr QueryService::Submit(ServeRequest request) {
  auto ticket = std::make_shared<ServeTicket>();
  n_submitted_.fetch_add(1, std::memory_order_relaxed);
  if (m_submitted_ != nullptr) m_submitted_->Inc();

  auto reject = [&](Status status, MetricCounter* counter) {
    n_rejected_.fetch_add(1, std::memory_order_relaxed);
    if (counter != nullptr) counter->Inc();
    ServeResponse response;
    response.status = std::move(status);
    response.done_us = NowMicros();
    ticket->Fulfill(std::move(response));
    return ticket;
  };

  const NodeId origin = request.Origin();
  if (origin == kInvalidNodeId) {
    return reject(Status::InvalidArgument("request has no origin node"),
                  nullptr);
  }
  PageId region = kInvalidPageId;
  if (manager_ != nullptr) {
    auto r = manager_->RegionOf(origin);
    if (!r.ok()) {
      return reject(
          Status::NotFound("origin node " + std::to_string(origin) +
                           " is not stored in the snapshot store"),
          nullptr);
    }
    region = *r;
  } else {
    auto it = file_->PageMap().find(origin);
    if (it == file_->PageMap().end()) {
      return reject(
          Status::NotFound("origin node " + std::to_string(origin) +
                           " is not stored in the file"),
          nullptr);
    }
    region = it->second;
  }

  const uint64_t now = NowMicros();
  // Shed already-expired requests before they cost a queue slot: the
  // client's budget is gone, executing would only delay live traffic.
  if (request.deadline_us != 0 &&
      static_cast<int64_t>(now) >= request.deadline_us) {
    n_shed_deadline_.fetch_add(1, std::memory_order_relaxed);
    return reject(Status::DeadlineExceeded("expired before admission"),
                  m_shed_deadline_);
  }
  if (breaker_ != nullptr) {
    Status allow = breaker_->Allow(static_cast<int64_t>(now));
    if (!allow.ok()) {
      n_shed_breaker_.fetch_add(1, std::memory_order_relaxed);
      return reject(std::move(allow), m_shed_breaker_);
    }
  }
  Worker* w = nullptr;
  if (options_.region_affinity) {
    w = workers_[region % workers_.size()].get();
  } else {
    w = workers_[round_robin_.fetch_add(1, std::memory_order_relaxed) %
                 workers_.size()]
            .get();
  }

  {
    // One critical section covers the admission decision and the worker
    // enqueue (lock order: admission_mu_ -> worker mu, same as Shutdown),
    // so a cancelling Shutdown can never slip between "admitted" and
    // "queued" and leave a ticket nobody will fulfill.
    std::lock_guard<std::mutex> lock(admission_mu_);
    if (!accepting_) {
      return reject(Status::Overloaded("service shutting down"),
                    m_rejected_shutdown_);
    }
    AdmissionController::RejectGate gate;
    Status admit = admission_.Admit(request.tenant, now, &gate);
    if (!admit.ok()) {
      MetricCounter* counter = nullptr;
      switch (gate) {
        case AdmissionController::RejectGate::kQueueFull:
          counter = m_rejected_queue_;
          break;
        case AdmissionController::RejectGate::kTenantDepth:
          counter = m_rejected_tenant_;
          break;
        case AdmissionController::RejectGate::kRateLimit:
          counter = m_rejected_rate_;
          break;
        case AdmissionController::RejectGate::kNone:
          break;
      }
      return reject(std::move(admit), counter);
    }
    admission_.OnEnqueue(request.tenant);
    if (g_queue_depth_ != nullptr) {
      g_queue_depth_->Set(static_cast<int64_t>(admission_.queue_depth()));
    }

    QueuedRequest item;
    item.request = std::move(request);
    item.ticket = ticket;
    item.region = region;
    item.enqueue_us = now;
    {
      std::lock_guard<std::mutex> wlock(w->mu);
      w->scheduler.Enqueue(std::move(item));
    }
  }
  n_admitted_.fetch_add(1, std::memory_order_relaxed);
  if (m_admitted_ != nullptr) m_admitted_->Inc();
  w->cv.notify_one();
  return ticket;
}

void QueryService::WorkerLoop(Worker* worker) {
  // The service constructed this session on its own thread; the worker
  // adopts it here, at the single-threaded handoff.
  if (worker->session != nullptr) worker->session->RebindToCurrentThread();
  if (worker->snap_session != nullptr) {
    worker->snap_session->RebindToCurrentThread();
  }
  std::vector<QueuedRequest> batch;
  const size_t cap = options_.region_batching ? options_.max_batch : 1;
  std::unique_lock<std::mutex> lock(worker->mu);
  for (;;) {
    worker->cv.wait(lock, [&] {
      return stop_.load(std::memory_order_acquire) ||
             !worker->scheduler.empty();
    });
    if (worker->scheduler.empty()) {
      if (stop_.load(std::memory_order_acquire)) return;
      continue;
    }
    batch.clear();
    if (worker->scheduler.PopBatch(cap, &batch) == 0) continue;
    if (options_.region_batching && options_.batch_window_us > 0 &&
        batch.size() < cap && !stop_.load(std::memory_order_acquire)) {
      // Bounded batching window: hold the underfull batch open briefly for
      // more same-region arrivals. Bounded by the deadline, so the added
      // p99 at low load is at most batch_window_us (and the default window
      // is 0: purely opportunistic batching, no waiting at all).
      const auto deadline =
          std::chrono::steady_clock::now() +
          std::chrono::microseconds(options_.batch_window_us);
      while (batch.size() < cap && !stop_.load(std::memory_order_acquire)) {
        const bool timed_out =
            worker->cv.wait_until(lock, deadline) == std::cv_status::timeout;
        worker->scheduler.PopSameRegion(batch.front().region,
                                        cap - batch.size(), &batch);
        if (timed_out) break;
      }
    }
    lock.unlock();
    // Batch boundary: re-acquire the current snapshot version before
    // executing. In-flight batches never migrate versions — the refresh
    // happens strictly between batches, with no pins held — so a reader
    // drains off a retired version one batch after a swap publishes.
    if (worker->snap_session != nullptr) worker->snap_session->Refresh();
    ExecuteBatch(worker, &batch);
    lock.lock();
  }
}

void QueryService::SetSessionContext(Worker* worker, RequestContext* ctx) {
  if (worker->session != nullptr) {
    worker->session->SetRequestContext(ctx);
  } else {
    worker->snap_session->SetRequestContext(ctx);
  }
}

void QueryService::ExecuteOps(AccessMethod* am,
                              std::vector<QueuedRequest>* batch,
                              const std::vector<size_t>& indices,
                              std::vector<ServeResponse>* responses) {
  std::vector<size_t> by_op[4];
  for (size_t i : indices) {
    by_op[static_cast<size_t>((*batch)[i].request.op)].push_back(i);
  }

  const std::vector<size_t>& route_idx =
      by_op[static_cast<size_t>(ServeOp::kRouteEval)];
  if (!route_idx.empty()) {
    std::vector<const Route*> routes;
    routes.reserve(route_idx.size());
    for (size_t i : route_idx) routes.push_back(&(*batch)[i].request.route);
    auto results = EvaluateRouteBatch(am, routes);
    for (size_t k = 0; k < route_idx.size(); ++k) {
      ServeResponse& r = (*responses)[route_idx[k]];
      if (results[k].ok()) {
        r.cost = results[k].value().total_cost;
        r.num_edges = results[k].value().num_edges;
      } else {
        r.status = results[k].status();
      }
    }
  }

  const std::vector<size_t>& astar_idx =
      by_op[static_cast<size_t>(ServeOp::kAStar)];
  if (!astar_idx.empty()) {
    std::vector<std::pair<NodeId, NodeId>> pairs;
    pairs.reserve(astar_idx.size());
    for (size_t i : astar_idx) {
      const Route& route = (*batch)[i].request.route;
      pairs.emplace_back(route.nodes.front(), route.nodes.back());
    }
    auto results = ShortestPathAStarBatch(am, pairs);
    for (size_t k = 0; k < astar_idx.size(); ++k) {
      ServeResponse& r = (*responses)[astar_idx[k]];
      if (results[k].ok()) {
        r.cost = results[k].value().cost;
        r.num_edges = results[k].value().path.empty()
                          ? 0
                          : results[k].value().path.size() - 1;
        r.path = std::move(results[k].value().path);
      } else {
        r.status = results[k].status();
      }
    }
  }

  const std::vector<size_t>& ch_idx =
      by_op[static_cast<size_t>(ServeOp::kHierarchy)];
  if (!ch_idx.empty()) {
    std::vector<std::pair<NodeId, NodeId>> pairs;
    pairs.reserve(ch_idx.size());
    for (size_t i : ch_idx) {
      const Route& route = (*batch)[i].request.route;
      pairs.emplace_back(route.nodes.front(), route.nodes.back());
    }
    auto results = ShortestPathCHBatch(am, pairs);
    for (size_t k = 0; k < ch_idx.size(); ++k) {
      ServeResponse& r = (*responses)[ch_idx[k]];
      if (results[k].ok()) {
        r.cost = results[k].value().cost;
        r.num_edges = results[k].value().path.empty()
                          ? 0
                          : results[k].value().path.size() - 1;
        r.path = std::move(results[k].value().path);
      } else {
        r.status = results[k].status();
      }
    }
  }

  const std::vector<size_t>& agg_idx =
      by_op[static_cast<size_t>(ServeOp::kAggregate)];
  if (!agg_idx.empty()) {
    std::vector<const RouteUnit*> units;
    units.reserve(agg_idx.size());
    for (size_t i : agg_idx) units.push_back(&(*batch)[i].request.unit);
    auto results = AggregateRouteUnitBatch(am, units);
    for (size_t k = 0; k < agg_idx.size(); ++k) {
      ServeResponse& r = (*responses)[agg_idx[k]];
      if (results[k].ok()) {
        r.cost = results[k].value().total_edge_cost;
        r.num_edges = results[k].value().num_edges;
      } else {
        r.status = results[k].status();
      }
    }
  }
}

void QueryService::ExecuteBatch(Worker* worker,
                                std::vector<QueuedRequest>* batch) {
  const uint64_t start_us = NowMicros();
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    for (const QueuedRequest& item : *batch) {
      admission_.OnDequeue(item.request.tenant);
    }
    if (g_queue_depth_ != nullptr) {
      g_queue_depth_->Set(static_cast<int64_t>(admission_.queue_depth()));
    }
  }

  // Shed members whose deadline expired while they sat in the queue: they
  // count as rejected (shed without execution), keeping
  // completed + rejected == submitted exact.
  {
    size_t kept = 0;
    uint64_t shed = 0;
    for (size_t i = 0; i < batch->size(); ++i) {
      QueuedRequest& item = (*batch)[i];
      if (item.request.deadline_us != 0 &&
          static_cast<int64_t>(start_us) >= item.request.deadline_us) {
        ServeResponse response;
        response.status = Status::DeadlineExceeded("expired in queue");
        response.done_us = start_us;
        item.ticket->Fulfill(std::move(response));
        ++shed;
        continue;
      }
      if (kept != i) (*batch)[kept] = std::move(item);
      ++kept;
    }
    if (shed > 0) {
      batch->resize(kept);
      n_rejected_.fetch_add(shed, std::memory_order_relaxed);
      n_shed_deadline_.fetch_add(shed, std::memory_order_relaxed);
      if (m_shed_deadline_ != nullptr) m_shed_deadline_->Inc(shed);
    }
    if (batch->empty()) return;
  }

  // Pin the batch's region page once through the worker's session: the one
  // fetch (charged to this session iff it misses the shared pool) then
  // serves every request of the batch as a buffer hit.
  std::vector<PageGuard> pins;
  if (options_.region_batching && batch->front().region != kInvalidPageId) {
    // In snapshot mode the region was stamped against the version current
    // at submit time; after a swap the page id may be gone from this
    // worker's version, in which case the pin simply fails — batching
    // affinity degrades for that batch, results are untouched. A
    // quarantined or corrupt region page also fails the pin; the requests
    // still execute and surface their own typed statuses.
    if (worker->snap_session != nullptr) {
      (void)worker->snap_session->PinDataPages({batch->front().region},
                                               &pins);
    } else {
      (void)worker->session->PinDataPages({batch->front().region}, &pins);
    }
  }

  const size_t n = batch->size();
  std::vector<ServeResponse> responses(n);
  AccessMethod* am = SessionOf(worker);

  // Deadline-free requests execute with no context attached — exactly the
  // pre-lifecycle code path, so healthy traffic keeps serial-oracle
  // results even when deadlined requests share its batch. The deadlined
  // subset runs under the tightest member deadline (the batch shares page
  // fetches, so the strictest budget governs the shared work).
  std::vector<size_t> free_idx;
  std::vector<size_t> dl_idx;
  int64_t tightest = 0;
  for (size_t i = 0; i < n; ++i) {
    const int64_t d = (*batch)[i].request.deadline_us;
    if (d == 0) {
      free_idx.push_back(i);
    } else {
      dl_idx.push_back(i);
      if (tightest == 0 || d < tightest) tightest = d;
    }
  }
  if (!free_idx.empty()) ExecuteOps(am, batch, free_idx, &responses);
  if (!dl_idx.empty()) {
    worker->ctx.Reset(tightest);
    SetSessionContext(worker, &worker->ctx);
    ExecuteOps(am, batch, dl_idx, &responses);
    SetSessionContext(worker, nullptr);
  }

  // Retry retryable failures (transient transport faults) individually
  // with jittered backoff. Deterministic failures and lifecycle statuses
  // never re-execute, and a retry is skipped once the request's own
  // deadline passed or the service is stopping. Without faults no status
  // is retryable and this costs one branch per batch.
  if (options_.retry_max_attempts > 1) {
    std::vector<size_t> one(1);
    for (size_t i = 0; i < n; ++i) {
      for (int attempt = 1; attempt < options_.retry_max_attempts &&
                            responses[i].status.IsRetryable();
           ++attempt) {
        if (stop_.load(std::memory_order_acquire)) break;
        const int64_t deadline = (*batch)[i].request.deadline_us;
        if (deadline != 0 && RequestContext::NowMicros() >= deadline) break;
        if (options_.retry_backoff_us > 0) {
          const uint32_t cap =
              options_.retry_backoff_us * static_cast<uint32_t>(attempt);
          std::this_thread::sleep_for(
              std::chrono::microseconds(worker->rng.Uniform(cap) + 1));
        }
        n_retries_.fetch_add(1, std::memory_order_relaxed);
        if (m_retries_ != nullptr) m_retries_->Inc();
        responses[i] = ServeResponse();
        one[0] = i;
        if (deadline != 0) {
          worker->ctx.Reset(deadline);
          SetSessionContext(worker, &worker->ctx);
        }
        ExecuteOps(am, batch, one, &responses);
        if (deadline != 0) SetSessionContext(worker, nullptr);
      }
    }
  }

  // Executed outcomes feed the per-class breaker: streaks of I/O,
  // corruption, or deadline failures trip admission into shedding.
  if (breaker_ != nullptr) {
    const int64_t now = RequestContext::NowMicros();
    for (size_t i = 0; i < n; ++i) {
      breaker_->OnResult(responses[i].status, now);
    }
  }

  pins.clear();  // unpin before fulfilling: clients may re-query promptly

  const uint64_t end_us = NowMicros();
  for (size_t i = 0; i < n; ++i) {
    QueuedRequest& item = (*batch)[i];
    ServeResponse& r = responses[i];
    r.queue_us = start_us > item.enqueue_us ? start_us - item.enqueue_us : 0;
    r.batch_size = static_cast<uint32_t>(n);
    r.done_us = end_us;
    if (h_queue_wait_us_ != nullptr) h_queue_wait_us_->Record(r.queue_us);
    if (h_latency_us_ != nullptr) {
      h_latency_us_->Record(end_us > item.enqueue_us
                                ? end_us - item.enqueue_us
                                : 0);
    }
    item.ticket->Fulfill(std::move(r));
  }
  n_completed_.fetch_add(n, std::memory_order_relaxed);
  n_batches_.fetch_add(1, std::memory_order_relaxed);
  if (n > 1) n_batched_requests_.fetch_add(n, std::memory_order_relaxed);
  if (m_completed_ != nullptr) m_completed_->Inc(n);
  if (m_batches_ != nullptr) m_batches_->Inc();
  if (n > 1 && m_batched_requests_ != nullptr) m_batched_requests_->Inc(n);
  if (h_exec_us_ != nullptr) h_exec_us_->Record(end_us - start_us);
  if (h_batch_occupancy_ != nullptr) h_batch_occupancy_->Record(n);
}

void QueryService::CancelBatch(std::vector<QueuedRequest>* batch,
                               const char* why) {
  if (batch->empty()) return;
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    for (const QueuedRequest& item : *batch) {
      admission_.OnDequeue(item.request.tenant);
    }
    if (g_queue_depth_ != nullptr) {
      g_queue_depth_->Set(static_cast<int64_t>(admission_.queue_depth()));
    }
  }
  const uint64_t now = NowMicros();
  for (QueuedRequest& item : *batch) {
    ServeResponse response;
    response.status = Status::Overloaded(why);
    response.done_us = now;
    item.ticket->Fulfill(std::move(response));
  }
  n_rejected_.fetch_add(batch->size(), std::memory_order_relaxed);
  if (m_rejected_shutdown_ != nullptr) {
    m_rejected_shutdown_->Inc(batch->size());
  }
}

void QueryService::Shutdown(bool drain) {
  {
    std::lock_guard<std::mutex> lock(admission_mu_);
    if (shut_down_) return;
    shut_down_ = true;
    accepting_ = false;
  }
  if (!drain) {
    std::vector<QueuedRequest> cancelled;
    for (auto& w : workers_) {
      std::lock_guard<std::mutex> lock(w->mu);
      w->scheduler.DrainAll(&cancelled);
    }
    CancelBatch(&cancelled, "cancelled: service shutting down");
  }
  stop_.store(true, std::memory_order_release);
  for (auto& w : workers_) w->cv.notify_all();
  // Workers exit once their scheduler is empty (immediately after a
  // cancelling drain; after executing the backlog otherwise); destroying
  // the pool joins them.
  pool_.reset();
}

IoStats QueryService::TotalSessionIoStats() const {
  IoStats total;
  for (const auto& w : workers_) {
    IoStats s = w->session != nullptr ? w->session->DataIoStats()
                                      : w->snap_session->DataIoStats();
    total.reads += s.reads;
    total.writes += s.writes;
    total.allocs += s.allocs;
    total.frees += s.frees;
  }
  return total;
}

IoStats QueryService::TotalSessionHierarchyIoStats() const {
  IoStats total;
  for (const auto& w : workers_) {
    IoStats s = w->session != nullptr ? w->session->HierarchyIoStats()
                                      : w->snap_session->HierarchyIoStats();
    total.reads += s.reads;
    total.writes += s.writes;
    total.allocs += s.allocs;
    total.frees += s.frees;
  }
  return total;
}

QueryService::Stats QueryService::GetStats() const {
  Stats stats;
  stats.submitted = n_submitted_.load(std::memory_order_relaxed);
  stats.admitted = n_admitted_.load(std::memory_order_relaxed);
  stats.rejected = n_rejected_.load(std::memory_order_relaxed);
  stats.completed = n_completed_.load(std::memory_order_relaxed);
  stats.batches = n_batches_.load(std::memory_order_relaxed);
  stats.batched_requests = n_batched_requests_.load(std::memory_order_relaxed);
  stats.shed_deadline = n_shed_deadline_.load(std::memory_order_relaxed);
  stats.shed_breaker = n_shed_breaker_.load(std::memory_order_relaxed);
  stats.retries = n_retries_.load(std::memory_order_relaxed);
  return stats;
}

size_t QueryService::queue_depth() {
  std::lock_guard<std::mutex> lock(admission_mu_);
  return admission_.queue_depth();
}

}  // namespace serve
}  // namespace ccam
