#include "src/serve/scheduler.h"

#include <utility>

namespace ccam {
namespace serve {

void DrrScheduler::Enqueue(QueuedRequest item) {
  TenantQueue& q = tenants_[item.request.tenant];
  if (!q.in_ring) {
    q.in_ring = true;
    ring_.push_back(item.request.tenant);
  }
  q.items.push_back(std::move(item));
  ++depth_;
}

DrrScheduler::TenantQueue* DrrScheduler::NextEligibleTenant() {
  while (depth_ > 0 && !ring_.empty()) {
    if (cursor_ >= ring_.size()) cursor_ = 0;
    TenantQueue& q = tenants_[ring_[cursor_]];
    if (q.items.empty()) {
      // Drained between turns: leaves the ring, deficit resets (the
      // classic DRR rule — an idle tenant banks no credit).
      q.in_ring = false;
      q.deficit = 0;
      ring_.erase(ring_.begin() + cursor_);
      turn_started_ = false;
      continue;
    }
    if (!turn_started_) {
      q.deficit += quantum_;
      turn_started_ = true;
    }
    if (q.deficit >= 1) return &q;
    // Still paying off a cross-tenant batching debt: skip this round,
    // carrying the deficit; quantum accrues again on the next visit.
    ++cursor_;
    turn_started_ = false;
  }
  return nullptr;
}

size_t DrrScheduler::PopBatch(size_t max_batch,
                              std::vector<QueuedRequest>* out) {
  TenantQueue* q = NextEligibleTenant();
  if (q == nullptr) return 0;
  QueuedRequest head = std::move(q->items.front());
  q->items.pop_front();
  --depth_;
  q->deficit -= 1;
  PageId region = head.region;
  out->push_back(std::move(head));
  size_t popped = 1;
  if (max_batch > 1) {
    popped += PopSameRegion(region, max_batch - 1, out);
  }
  // The turn ends when the tenant's allowance or queue is exhausted;
  // otherwise the next PopBatch continues it without re-adding quantum.
  // (PopSameRegion may already have drained and unlinked the tenant, in
  // which case the cursor has moved on and must not advance again.)
  if (q->in_ring && (q->items.empty() || q->deficit < 1)) {
    ++cursor_;
    turn_started_ = false;
  }
  CompactRing();
  return popped;
}

size_t DrrScheduler::PopSameRegion(PageId region, size_t max,
                                   std::vector<QueuedRequest>* out) {
  if (max == 0 || depth_ == 0 || ring_.empty()) return 0;
  size_t popped = 0;
  const size_t n = ring_.size();
  const size_t start = cursor_ < n ? cursor_ : 0;
  for (size_t i = 0; i < n && popped < max; ++i) {
    TenantQueue& q = tenants_[ring_[(start + i) % n]];
    for (auto it = q.items.begin(); it != q.items.end() && popped < max;) {
      if (it->region == region) {
        out->push_back(std::move(*it));
        it = q.items.erase(it);
        --depth_;
        q.deficit -= 1;  // batching ahead of turn is charged, not free
        ++popped;
      } else {
        ++it;
      }
    }
  }
  CompactRing();
  return popped;
}

void DrrScheduler::DrainAll(std::vector<QueuedRequest>* out) {
  for (auto& [tenant, q] : tenants_) {
    (void)tenant;
    while (!q.items.empty()) {
      out->push_back(std::move(q.items.front()));
      q.items.pop_front();
      --depth_;
    }
    q.in_ring = false;
    q.deficit = 0;
  }
  ring_.clear();
  cursor_ = 0;
  turn_started_ = false;
}

size_t DrrScheduler::TenantDepth(uint32_t tenant) const {
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.items.size();
}

void DrrScheduler::CompactRing() {
  for (size_t i = 0; i < ring_.size();) {
    TenantQueue& q = tenants_[ring_[i]];
    if (!q.items.empty()) {
      ++i;
      continue;
    }
    q.in_ring = false;
    q.deficit = 0;
    if (i < cursor_) {
      --cursor_;
    } else if (i == cursor_) {
      turn_started_ = false;
    }
    ring_.erase(ring_.begin() + i);
  }
  if (cursor_ >= ring_.size()) cursor_ = 0;
}

}  // namespace serve
}  // namespace ccam
