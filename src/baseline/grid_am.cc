#include "src/baseline/grid_am.h"

#include <algorithm>
#include <cmath>

namespace ccam {

/// A node of the in-memory bucket tree. Leaves own one data page; interior
/// nodes split space at `split` along `split_x` (x when true, else y).
struct GridAm::Bucket {
  bool leaf = true;
  PageId page = kInvalidPageId;
  bool split_x = true;
  double split = 0.0;
  std::unique_ptr<Bucket> lo;
  std::unique_ptr<Bucket> hi;
};

GridAm::GridAm(const AccessMethodOptions& options) : NetworkFile(options) {}

GridAm::~GridAm() = default;

GridAm::Bucket* GridAm::LeafFor(double x, double y) const {
  Bucket* cur = root_.get();
  while (cur != nullptr && !cur->leaf) {
    double v = cur->split_x ? x : y;
    cur = (v < cur->split) ? cur->lo.get() : cur->hi.get();
  }
  return cur;
}

namespace {

struct CreateItem {
  NodeId id;
  double x;
  double y;
  size_t bytes;
};

}  // namespace

Status GridAm::Create(const Network& network) {
  // Recursively split the node set along the wider dimension's median until
  // each subset's records fit on one page; build the bucket tree alongside.
  std::vector<CreateItem> items;
  for (NodeId id : network.NodeIds()) {
    const NetworkNode& node = network.node(id);
    items.push_back({id, node.x, node.y,
                     RecordSizeOf(id, node) + SlottedPage::kSlotOverhead});
  }
  const size_t capacity = PageCapacity();
  for (const CreateItem& item : items) {
    if (item.bytes > capacity) {
      return Status::NoSpace("record larger than a page");
    }
  }

  std::vector<std::vector<NodeId>> pages;
  struct Task {
    std::vector<CreateItem> items;
    Bucket* bucket;
  };
  root_ = std::make_unique<Bucket>();
  std::vector<Task> stack;
  stack.push_back({std::move(items), root_.get()});
  while (!stack.empty()) {
    Task task = std::move(stack.back());
    stack.pop_back();
    size_t bytes = 0;
    for (const CreateItem& item : task.items) bytes += item.bytes;
    if (bytes <= capacity) {
      task.bucket->leaf = true;
      // Page id assigned after BuildFromAssignment; remember the subset
      // index via the page order (pages are created in push order).
      std::vector<NodeId> subset;
      for (const CreateItem& item : task.items) subset.push_back(item.id);
      pages.push_back(std::move(subset));
      // Temporarily stash the subset index in `split` (patched below).
      task.bucket->split = static_cast<double>(pages.size() - 1);
      continue;
    }
    // Split along the wider extent's median coordinate.
    double xmin = 1e300, xmax = -1e300, ymin = 1e300, ymax = -1e300;
    for (const CreateItem& item : task.items) {
      xmin = std::min(xmin, item.x);
      xmax = std::max(xmax, item.x);
      ymin = std::min(ymin, item.y);
      ymax = std::max(ymax, item.y);
    }
    bool split_x = (xmax - xmin) >= (ymax - ymin);
    auto coord = [&split_x](const CreateItem& item) {
      return split_x ? item.x : item.y;
    };
    std::sort(task.items.begin(), task.items.end(),
              [&](const CreateItem& a, const CreateItem& b) {
                return coord(a) < coord(b);
              });
    size_t mid = task.items.size() / 2;
    double split_at = coord(task.items[mid]);
    if (split_at == coord(task.items.front())) {
      // Degenerate along this dimension; try the other one.
      split_x = !split_x;
      std::sort(task.items.begin(), task.items.end(),
                [&](const CreateItem& a, const CreateItem& b) {
                  return coord(a) < coord(b);
                });
      split_at = coord(task.items[task.items.size() / 2]);
      if (split_at == coord(task.items.front())) {
        return Status::NoSpace("coincident nodes exceed a page");
      }
    }
    std::vector<CreateItem> lo_items, hi_items;
    for (CreateItem& item : task.items) {
      (coord(item) < split_at ? lo_items : hi_items)
          .push_back(std::move(item));
    }
    task.bucket->leaf = false;
    task.bucket->split_x = split_x;
    task.bucket->split = split_at;
    task.bucket->lo = std::make_unique<Bucket>();
    task.bucket->hi = std::make_unique<Bucket>();
    stack.push_back({std::move(lo_items), task.bucket->lo.get()});
    stack.push_back({std::move(hi_items), task.bucket->hi.get()});
  }

  CCAM_RETURN_NOT_OK(BuildFromAssignment(network, pages));

  // Patch the leaves: subset i landed on the page of its first node.
  std::vector<Bucket*> leaves;
  std::vector<Bucket*> walk{root_.get()};
  while (!walk.empty()) {
    Bucket* b = walk.back();
    walk.pop_back();
    if (b->leaf) {
      leaves.push_back(b);
    } else {
      walk.push_back(b->lo.get());
      walk.push_back(b->hi.get());
    }
  }
  for (Bucket* leaf : leaves) {
    size_t subset = static_cast<size_t>(leaf->split);
    leaf->split = 0.0;
    if (subset < pages.size() && !pages[subset].empty()) {
      leaf->page = page_of_.at(pages[subset][0]);
      leaf_of_page_[leaf->page] = leaf;
    } else {
      // Empty subset: give the leaf its own fresh page.
      PageId page;
      CCAM_ASSIGN_OR_RETURN(page, NewDataPage());
      leaf->page = page;
      leaf_of_page_[page] = leaf;
    }
  }
  return Status::OK();
}

Status GridAm::SplitLeaf(Bucket* leaf, std::vector<NodeRecord> pending) {
  last_op_structural_ = true;
  // Median split along the wider dimension of the records at hand.
  double xmin = 1e300, xmax = -1e300, ymin = 1e300, ymax = -1e300;
  for (const NodeRecord& r : pending) {
    xmin = std::min(xmin, r.x);
    xmax = std::max(xmax, r.x);
    ymin = std::min(ymin, r.y);
    ymax = std::max(ymax, r.y);
  }
  bool split_x = (xmax - xmin) >= (ymax - ymin);
  auto coord = [&split_x](const NodeRecord& r) { return split_x ? r.x : r.y; };
  auto by_coord = [&](const NodeRecord& a, const NodeRecord& b) {
    return coord(a) < coord(b);
  };
  std::sort(pending.begin(), pending.end(), by_coord);
  double split_at = coord(pending[pending.size() / 2]);
  if (split_at == coord(pending.front())) {
    split_x = !split_x;
    std::sort(pending.begin(), pending.end(), by_coord);
    split_at = coord(pending[pending.size() / 2]);
    if (split_at == coord(pending.front())) {
      return Status::NoSpace("coincident records cannot be split");
    }
  }
  std::vector<NodeId> lo_ids, hi_ids;
  for (const NodeRecord& r : pending) {
    (coord(r) < split_at ? lo_ids : hi_ids).push_back(r.id);
  }
  PageId lo_page = leaf->page;
  PageId hi_page;
  CCAM_ASSIGN_OR_RETURN(hi_page, NewDataPage());

  std::unordered_map<NodeId, NodeRecord> by_id;
  for (NodeRecord& rec : pending) by_id.emplace(rec.id, std::move(rec));
  CCAM_RETURN_NOT_OK(RewritePages({lo_page, hi_page}, {lo_ids, hi_ids},
                                  by_id));

  leaf->leaf = false;
  leaf->split_x = split_x;
  leaf->split = split_at;
  leaf->lo = std::make_unique<Bucket>();
  leaf->lo->page = lo_page;
  leaf->hi = std::make_unique<Bucket>();
  leaf->hi->page = hi_page;
  leaf_of_page_[lo_page] = leaf->lo.get();
  leaf_of_page_[hi_page] = leaf->hi.get();
  return Status::OK();
}

Status GridAm::SplitPage(PageId page, std::vector<NodeRecord> pending) {
  auto it = leaf_of_page_.find(page);
  if (it == leaf_of_page_.end()) {
    // Unknown page (shouldn't happen): fall back to order split.
    return NetworkFile::SplitPage(page, std::move(pending));
  }
  return SplitLeaf(it->second, std::move(pending));
}

PageId GridAm::ChoosePageForInsert(const NodeRecord& record) {
  if (root_ == nullptr) return kInvalidPageId;  // first ever insert
  size_t need = record.EncodedSize();
  for (int attempt = 0; attempt < 32; ++attempt) {
    Bucket* leaf = LeafFor(record.x, record.y);
    if (leaf == nullptr) return kInvalidPageId;
    auto fs = free_space_.find(leaf->page);
    if (fs != free_space_.end() && fs->second >= need) return leaf->page;
    // Bucket full: split it and retry the descent.
    auto records = RecordsOnPage(leaf->page);
    if (!records.ok()) return kInvalidPageId;
    if (records->empty()) return leaf->page;  // empty but tracked stale
    Status s = SplitLeaf(leaf, std::move(*records));
    if (!s.ok()) return kInvalidPageId;
  }
  return kInvalidPageId;
}

Status GridAm::OpenImage(const std::string& path) {
  (void)path;
  return Status::NotSupported(
      "GridAm cannot restore its bucket tree from a disk image; rebuild "
      "with Create()");
}

Status GridAm::HandleUnderflow(PageId home,
                               const std::vector<PageId>& nbr_pages) {
  // Grid buckets stay sparse rather than merging: the directory region
  // still maps to the page. (The paper studies reorganization policies
  // only for CCAM.)
  (void)home;
  (void)nbr_pages;
  return Status::OK();
}

Status GridAm::ReorganizeForPolicy(ReorgPolicy policy,
                                   std::vector<PageId> touched) {
  // Spatial buckets are never connectivity-reclustered.
  (void)policy;
  (void)touched;
  return Status::OK();
}

void GridAm::OnRecordPlaced(NodeId id, PageId page) {
  (void)id;
  if (root_ == nullptr) {
    root_ = std::make_unique<Bucket>();
    root_->page = page;
    leaf_of_page_[page] = root_.get();
  }
}

}  // namespace ccam
