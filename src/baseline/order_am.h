#ifndef CCAM_BASELINE_ORDER_AM_H_
#define CCAM_BASELINE_ORDER_AM_H_

#include <string>
#include <vector>

#include "src/core/network_file.h"

namespace ccam {

/// Node-ordering flavor of a topological-ordering access method.
enum class NodeOrderKind {
  kDfs,          // DFS-AM: depth-first traversal order
  kBfs,          // BFS-AM: breadth-first traversal order
  kWeightedDfs,  // WDFS-AM: depth-first by descending edge access weight
};

/// Topological-ordering baseline access methods (paper Section 4): the
/// extension of ordered-file clustering (Larson & Deshpande; Banerjee et
/// al.) to general graphs. Create() linearizes the nodes by a traversal
/// from a random start node and packs records into pages in that order;
/// inserts append to the most recent page with room.
class OrderAm : public NetworkFile {
 public:
  OrderAm(const AccessMethodOptions& options, NodeOrderKind kind);

  std::string Name() const override;

  Status Create(const Network& network) override;

  /// Restores from an image; the append cursor resumes at the last page.
  Status OpenImage(const std::string& path) override;

 protected:
  /// Append placement: the most recently filled page, if it has room.
  PageId ChoosePageForInsert(const NodeRecord& record) override;

  /// Splits an overflowing page by the file order (node-id halves) rather
  /// than by connectivity.
  Status SplitPage(PageId page, std::vector<NodeRecord> pending) override;

  void OnRecordPlaced(NodeId id, PageId page) override;

 private:
  NodeOrderKind kind_;
  PageId append_page_ = kInvalidPageId;
};

}  // namespace ccam

#endif  // CCAM_BASELINE_ORDER_AM_H_
