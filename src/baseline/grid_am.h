#ifndef CCAM_BASELINE_GRID_AM_H_
#define CCAM_BASELINE_GRID_AM_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/network_file.h"

namespace ccam {

/// Grid-File access method (the paper's "Grid file" baseline): a
/// proximity-based placement that stores node records in spatial buckets.
/// Data pages correspond to the buckets of a kd-style recursive grid over
/// the node coordinates; buckets split along the wider dimension's median
/// when they overflow. Connectivity is never consulted — the method only
/// exploits the correlation between spatial proximity and connectivity,
/// which is why it trails CCAM on CRR but wins on Insert() (paper
/// Section 4.2).
class GridAm : public NetworkFile {
 public:
  explicit GridAm(const AccessMethodOptions& options);
  ~GridAm() override;

  std::string Name() const override { return "Grid File"; }

  Status Create(const Network& network) override;

  /// The in-memory bucket tree cannot be reconstructed from a bare disk
  /// image (the split history is not persisted), so images are read-only
  /// for this method.
  Status OpenImage(const std::string& path) override;

 protected:
  /// Spatial placement: the bucket containing (x, y), split on demand
  /// until it has room.
  PageId ChoosePageForInsert(const NodeRecord& record) override;

  /// Splits an overflowing bucket along the median of the wider dimension.
  Status SplitPage(PageId page, std::vector<NodeRecord> pending) override;

  /// Grid buckets tolerate sparseness: no page merging on underflow.
  Status HandleUnderflow(PageId home,
                         const std::vector<PageId>& nbr_pages) override;

  /// Spatial buckets are never connectivity-reclustered.
  Status ReorganizeForPolicy(ReorgPolicy policy,
                             std::vector<PageId> touched) override;

  void OnRecordPlaced(NodeId id, PageId page) override;

 private:
  struct Bucket;

  /// Descends to the bucket leaf containing (x, y); nullptr before Create.
  Bucket* LeafFor(double x, double y) const;

  /// Splits `leaf`'s page contents in two spatially, turning the leaf into
  /// an interior node. `pending` is the logical page content.
  Status SplitLeaf(Bucket* leaf, std::vector<NodeRecord> pending);

  std::unique_ptr<Bucket> root_;
  std::unordered_map<PageId, Bucket*> leaf_of_page_;
};

}  // namespace ccam

#endif  // CCAM_BASELINE_GRID_AM_H_
