#include "src/baseline/order_am.h"

#include <algorithm>

#include "src/common/random.h"
#include "src/graph/orders.h"

namespace ccam {

OrderAm::OrderAm(const AccessMethodOptions& options, NodeOrderKind kind)
    : NetworkFile(options), kind_(kind) {}

std::string OrderAm::Name() const {
  switch (kind_) {
    case NodeOrderKind::kDfs:
      return "DFS-AM";
    case NodeOrderKind::kBfs:
      return "BFS-AM";
    case NodeOrderKind::kWeightedDfs:
      return "WDFS-AM";
  }
  return "Order-AM";
}

Status OrderAm::Create(const Network& network) {
  std::vector<NodeId> ids = network.NodeIds();
  if (ids.empty()) return BuildFromAssignment(network, {});
  Random rng(options_.seed);
  NodeId start = ids[rng.Uniform(static_cast<uint32_t>(ids.size()))];
  std::vector<NodeId> order;
  switch (kind_) {
    case NodeOrderKind::kDfs:
      order = DfsOrder(network, start);
      break;
    case NodeOrderKind::kBfs:
      order = BfsOrder(network, start);
      break;
    case NodeOrderKind::kWeightedDfs:
      order = WeightedDfsOrder(network, start);
      break;
  }

  // Pack records into pages in traversal order, first-fit.
  std::vector<std::vector<NodeId>> pages;
  std::vector<NodeId> current;
  size_t used = 0;
  const size_t capacity = PageCapacity();
  for (NodeId id : order) {
    size_t need =
        RecordSizeOf(id, network.node(id)) + SlottedPage::kSlotOverhead;
    if (need > capacity) {
      return Status::NoSpace("record larger than a page");
    }
    if (used + need > capacity) {
      pages.push_back(std::move(current));
      current.clear();
      used = 0;
    }
    current.push_back(id);
    used += need;
  }
  if (!current.empty()) pages.push_back(std::move(current));
  CCAM_RETURN_NOT_OK(BuildFromAssignment(network, pages));
  if (!pages.empty()) {
    append_page_ = page_of_.at(pages.back().back());
  }
  return Status::OK();
}

Status OrderAm::OpenImage(const std::string& path) {
  CCAM_RETURN_NOT_OK(NetworkFile::OpenImage(path));
  auto pages = disk_.AllocatedPageIds();
  append_page_ = pages.empty() ? kInvalidPageId : pages.back();
  return Status::OK();
}

PageId OrderAm::ChoosePageForInsert(const NodeRecord& record) {
  size_t need = record.EncodedSize();
  if (append_page_ != kInvalidPageId && disk_.IsAllocated(append_page_)) {
    auto it = free_space_.find(append_page_);
    if (it != free_space_.end() && it->second >= need) return append_page_;
  }
  // The caller allocates a fresh page; OnRecordPlaced records it as the
  // new append target.
  return kInvalidPageId;
}

void OrderAm::OnRecordPlaced(NodeId id, PageId page) {
  (void)id;
  append_page_ = page;
}

Status OrderAm::SplitPage(PageId page, std::vector<NodeRecord> pending) {
  last_op_structural_ = true;
  std::sort(pending.begin(), pending.end(),
            [](const NodeRecord& a, const NodeRecord& b) {
              return a.id < b.id;
            });
  size_t total = 0;
  for (const NodeRecord& r : pending) {
    total += r.EncodedSize() + SlottedPage::kSlotOverhead;
  }
  std::vector<NodeId> left, right;
  size_t acc = 0;
  for (const NodeRecord& r : pending) {
    size_t sz = r.EncodedSize() + SlottedPage::kSlotOverhead;
    if (acc + sz <= total / 2 || left.empty()) {
      left.push_back(r.id);
      acc += sz;
    } else {
      right.push_back(r.id);
    }
  }
  std::unordered_map<NodeId, NodeRecord> by_id;
  for (NodeRecord& rec : pending) by_id.emplace(rec.id, std::move(rec));
  return RewritePages({page}, {left, right}, by_id);
}

}  // namespace ccam
