#ifndef CCAM_QUERY_AGGREGATE_H_
#define CCAM_QUERY_AGGREGATE_H_

#include <string>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/core/access_method.h"
#include "src/graph/route.h"

namespace ccam {

/// A route-unit (paper Section 1.1): a named collection of arcs with
/// common characteristics — a bus route, a pipeline, a named highway.
/// Aggregate queries over route-units retrieve all member nodes and edges
/// to derive summary properties for decision support.
struct RouteUnit {
  std::string name;
  std::vector<std::pair<NodeId, NodeId>> edges;
};

/// Aggregates over one route-unit.
struct RouteUnitAggregate {
  double total_edge_cost = 0.0;
  double min_edge_cost = 0.0;
  double max_edge_cost = 0.0;
  size_t num_edges = 0;
  size_t num_nodes = 0;  // distinct nodes touched
  uint64_t page_accesses = 0;
};

/// Retrieves every node of the route-unit through the access method and
/// folds the member edge costs. Missing nodes/edges fail with NotFound.
Result<RouteUnitAggregate> AggregateRouteUnit(AccessMethod* am,
                                              const RouteUnit& unit);

/// Region-batched entry point: aggregates `units` back-to-back under one
/// "query.aggregate_batch" span, one Result per unit in input order (a
/// per-unit failure fails only its own entry). Route-units anchored in one
/// cluster share that cluster's pages out of the buffers across the batch.
std::vector<Result<RouteUnitAggregate>> AggregateRouteUnitBatch(
    AccessMethod* am, const std::vector<const RouteUnit*>& units);

/// Tour evaluation (paper future work): evaluates a closed route (the last
/// node must equal the first, or the closing edge must exist). Returns the
/// route-evaluation aggregate of the closed tour.
struct TourEvalResult {
  double total_cost = 0.0;
  size_t num_edges = 0;
  uint64_t page_accesses = 0;
};
Result<TourEvalResult> EvaluateTour(AccessMethod* am, const Route& tour);

/// Location-allocation evaluation (paper future work): given candidate
/// facility nodes, computes for each reachable demand node the distance
/// from its nearest facility (one multi-source Dijkstra over the paged
/// network) and summarizes the allocation cost.
struct LocationAllocationResult {
  double total_cost = 0.0;   // sum of nearest-facility distances
  double max_cost = 0.0;     // worst served demand
  size_t num_served = 0;     // reachable demand nodes
  size_t num_unserved = 0;   // demand nodes unreachable from any facility
  uint64_t page_accesses = 0;
};
Result<LocationAllocationResult> EvaluateLocationAllocation(
    AccessMethod* am, const std::vector<NodeId>& facilities,
    const std::vector<NodeId>& demands);

}  // namespace ccam

#endif  // CCAM_QUERY_AGGREGATE_H_
