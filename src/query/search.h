#ifndef CCAM_QUERY_SEARCH_H_
#define CCAM_QUERY_SEARCH_H_

#include <vector>

#include "src/common/result.h"
#include "src/core/access_method.h"

namespace ccam {

/// Outcome of a shortest-path search over an access method.
struct SearchResult {
  std::vector<NodeId> path;  // src..dst inclusive; empty if unreachable
  double cost = 0.0;
  size_t nodes_expanded = 0;
  uint64_t page_accesses = 0;

  bool Found() const { return !path.empty(); }
};

/// Dijkstra over the paged network, expanding nodes with Get-successors()
/// (the paper's motivating use of the operation in graph search). Every
/// record access goes through the access method, so the returned
/// `page_accesses` reflects the clustering quality.
Result<SearchResult> ShortestPathDijkstra(AccessMethod* am, NodeId src,
                                          NodeId dst);

/// A* with a Euclidean-distance heuristic scaled by `heuristic_weight`
/// (the generators produce edge costs ~ distance * U(1-s, 1+s); a weight
/// of 1-s keeps the heuristic admissible).
Result<SearchResult> ShortestPathAStar(AccessMethod* am, NodeId src,
                                       NodeId dst,
                                       double heuristic_weight = 0.7);

/// Region-batched entry point: runs the origin/destination pairs
/// back-to-back under one "query.astar_batch" span, returning one Result
/// per pair in input order (a per-pair failure fails only its own entry).
/// Batched searches that start from one region re-expand that region's
/// pages out of the shared buffers instead of re-reading them per query.
std::vector<Result<SearchResult>> ShortestPathAStarBatch(
    AccessMethod* am, const std::vector<std::pair<NodeId, NodeId>>& pairs,
    double heuristic_weight = 0.7);

/// Multi-source Dijkstra: shortest distance from any of `sources` to every
/// reachable node. Returns (node, distance) pairs and charges the I/O to
/// `page_accesses`. Used by location-allocation evaluation.
struct MultiSourceResult {
  std::vector<std::pair<NodeId, double>> distances;
  uint64_t page_accesses = 0;
};
Result<MultiSourceResult> MultiSourceDistances(
    AccessMethod* am, const std::vector<NodeId>& sources);

}  // namespace ccam

#endif  // CCAM_QUERY_SEARCH_H_
